// Command elastic-scale demonstrates HOG's elasticity (§IV.C): the pool
// grows mid-run by submitting more worker-node jobs to the grid, the HDFS
// balancer spreads existing data onto the fresh nodes, and job throughput
// rises. The paper extends HOG from 132 to 1101 nodes the same way.
//
// The growth and the balancer round are scripted as a Scenario; the pool
// retargets are narrated live from the typed event stream.
package main

import (
	"fmt"
	"log"

	"hog"
)

func build(seed int64, opts ...hog.Option) *hog.System {
	sys, err := hog.New(append([]hog.Option{
		hog.WithHOGPool(40, hog.ChurnStable),
		hog.WithSeed(seed),
	}, opts...)...)
	if err != nil {
		log.Fatalf("elastic-scale: %v", err)
	}
	return sys
}

func main() {
	narrator := hog.ObserverFunc(func(e hog.Event) {
		if e.Type == hog.EvPoolRetarget {
			fmt.Printf("  [t=%.0fs] pool target set to %d nodes\n", e.Time.Seconds(), e.Value)
		}
	})
	// Grow the pool to 120 nodes seven minutes into the workload, then run
	// one balancer round so existing blocks spread onto the fresh workers.
	sys := build(5,
		hog.WithObserver(narrator),
		hog.WithScenario(hog.NewScenario("elastic scale-out").
			RetargetPool(hog.Minutes(7), 120).
			RebalanceAt(hog.Seconds(700), 0.01, 200)),
	)

	fmt.Println("== elastic scale-out during the workload ==")
	res := sys.RunWorkload(hog.GenerateWorkload(5, 0.5))
	fmt.Printf("\n  final pool size: %d workers\n", sys.Pool.AliveCount())
	fmt.Printf("  workload response: %.0f s, jobs failed: %d\n", res.ResponseTime.Seconds(), res.JobsFailed)
	fmt.Printf("  provisioned %d workers in total (%d survived churn)\n",
		res.Pool.Provisioned, sys.Pool.AliveCount())
	fmt.Printf("  balancer moves completed: %d\n", res.NN.BalancerMoves)

	// Compare with staying at 40 nodes.
	base := build(5)
	bres := base.RunWorkload(hog.GenerateWorkload(5, 0.5))
	fmt.Printf("\n  fixed 40-node pool response: %.0f s (scale-out saved %.0f s)\n",
		bres.ResponseTime.Seconds(), bres.ResponseTime.Seconds()-res.ResponseTime.Seconds())
}
