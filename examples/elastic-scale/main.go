// Command elastic-scale demonstrates HOG's elasticity (§IV.C): the pool
// grows mid-run by submitting more worker-node jobs to the grid, the HDFS
// balancer spreads existing data onto the fresh nodes, and job throughput
// rises. The paper extends HOG from 132 to 1101 nodes the same way.
package main

import (
	"fmt"

	"hog"
)

func main() {
	cfg := hog.HOGConfig(40, hog.ChurnStable, 5)
	sys := hog.NewSystem(cfg)
	sched := hog.GenerateWorkload(5, 0.5)

	// Grow the pool to 120 nodes seven minutes in, then balance.
	sys.Eng.After(420*hog.Seconds(1), func() {
		fmt.Printf("  [t=%.0fs] scaling pool 40 -> 120 nodes\n", sys.Eng.Now().Seconds())
		sys.Pool.SetTarget(120)
	})
	sys.Eng.After(700*hog.Seconds(1), func() {
		moves := sys.NN.BalanceOnce(0.01, 200)
		fmt.Printf("  [t=%.0fs] HDFS balancer started %d block moves (alive=%d)\n",
			sys.Eng.Now().Seconds(), moves, sys.Pool.AliveCount())
	})

	fmt.Println("== elastic scale-out during the workload ==")
	res := sys.RunWorkload(sched)
	fmt.Printf("\n  final pool size: %d workers\n", sys.Pool.AliveCount())
	fmt.Printf("  workload response: %.0f s, jobs failed: %d\n", res.ResponseTime.Seconds(), res.JobsFailed)
	fmt.Printf("  provisioned %d workers in total (%d survived churn)\n",
		res.Pool.Provisioned, sys.Pool.AliveCount())
	fmt.Printf("  balancer moves completed: %d\n", res.NN.BalancerMoves)

	// Compare with staying at 40 nodes.
	base := hog.NewSystem(hog.HOGConfig(40, hog.ChurnStable, 5))
	bres := base.RunWorkload(hog.GenerateWorkload(5, 0.5))
	fmt.Printf("\n  fixed 40-node pool response: %.0f s (scale-out saved %.0f s)\n",
		bres.ResponseTime.Seconds(), bres.ResponseTime.Seconds()-res.ResponseTime.Seconds())
}
