// Command node-fluctuation reproduces the paper's Figure 5 / Table IV study
// at example scale: three 55-node HOG runs — two under stable churn, one
// under unstable churn — plotting the reported-alive node count over the
// workload execution and integrating the area beneath each curve. The paper
// shows response time tracks node fluctuation (5b < 5a < 5c).
//
// Each run carries an EventLog, so the churn behind every curve is counted
// directly from the typed event stream: joins, preemptions, and dead-node
// declarations.
package main

import (
	"fmt"
	"log"

	"hog"
)

func main() {
	type run struct {
		label string
		churn hog.ChurnProfile
		seed  int64
	}
	runs := []run{
		{"5a: 55 stable nodes", hog.ChurnStable, 21},
		{"5b: 55 stable nodes", hog.ChurnStable, 22},
		{"5c: 55 unstable nodes", hog.ChurnUnstable, 23},
	}
	sched := hog.GenerateWorkload(7, 0.35)
	fmt.Printf("workload: %d jobs\n\n", len(sched.Jobs))
	fmt.Println("Run                      Response(s)      Area(node-s)  Preempted  DeclaredDead")
	type row struct {
		label      string
		rep        *hog.Series
		start, end hog.Time
	}
	var rows []row
	for _, r := range runs {
		// Counts cover every observed type; only the two we inspect as
		// events are worth retaining.
		events, collect := hog.WithEvents(hog.EvNodePreempted, hog.EvNodeDead)
		sys, err := hog.New(
			hog.WithHOGPool(55, r.churn),
			hog.WithSeed(r.seed),
			collect,
		)
		if err != nil {
			log.Fatalf("node-fluctuation: %v", err)
		}
		res := sys.RunWorkload(sched)
		rows = append(rows, row{r.label, res.Reported, res.Start, res.End})
		fmt.Printf("%-24s %11.0f %17.0f  %9d  %12d\n",
			r.label, res.ResponseTime.Seconds(), res.Area,
			events.Count(hog.EvNodePreempted), events.Count(hog.EvNodeDead))
	}
	fmt.Println("\nNode availability during execution (cf. paper Figure 5):")
	for _, r := range rows {
		fmt.Println()
		fmt.Print(r.rep.ASCIIPlot(68, 8, r.start, r.end))
	}
	fmt.Println("\nAs in Table IV, larger node fluctuation (smaller area relative to")
	fmt.Println("the run length) comes with longer workload response time.")
}
