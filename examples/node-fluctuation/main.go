// Command node-fluctuation reproduces the paper's Figure 5 / Table IV study
// at example scale: three 55-node HOG runs — two under stable churn, one
// under unstable churn — plotting the reported-alive node count over the
// workload execution and integrating the area beneath each curve. The paper
// shows response time tracks node fluctuation (5b < 5a < 5c).
package main

import (
	"fmt"

	"hog"
)

func main() {
	type run struct {
		label string
		churn hog.ChurnProfile
		seed  int64
	}
	runs := []run{
		{"5a: 55 stable nodes", hog.ChurnStable, 21},
		{"5b: 55 stable nodes", hog.ChurnStable, 22},
		{"5c: 55 unstable nodes", hog.ChurnUnstable, 23},
	}
	sched := hog.GenerateWorkload(7, 0.35)
	fmt.Printf("workload: %d jobs\n\n", len(sched.Jobs))
	fmt.Println("Run                      Response(s)      Area(node-s)")
	type row struct {
		label      string
		resp       float64
		area       float64
		rep        *hog.Series
		start, end hog.Time
	}
	var rows []row
	for _, r := range runs {
		sys := hog.NewSystem(hog.HOGConfig(55, r.churn, r.seed))
		res := sys.RunWorkload(sched)
		rows = append(rows, row{r.label, res.ResponseTime.Seconds(), res.Area, res.Reported, res.Start, res.End})
		fmt.Printf("%-24s %11.0f %17.0f\n", r.label, res.ResponseTime.Seconds(), res.Area)
	}
	fmt.Println("\nNode availability during execution (cf. paper Figure 5):")
	for _, r := range rows {
		fmt.Println()
		fmt.Print(r.rep.ASCIIPlot(68, 8, r.start, r.end))
	}
	fmt.Println("\nAs in Table IV, larger node fluctuation (smaller area relative to")
	fmt.Println("the run length) comes with longer workload response time.")
}
