// Command dna-kmers is a blastreduce-flavoured bioinformatics pipeline — the
// paper's introduction motivates HOG with exactly this class of user
// ("researchers developed blastreduce based on Hadoop MapReduce to analyze
// DNA sequences"). It chains two real MapReduce jobs on the in-process
// engine: k-mer counting over synthetic reads, then a histogram of k-mer
// multiplicities (the standard genome-assembly diagnostic).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"

	"hog"
)

const k = 8

func synthesizeReads(n, length int, seed int64) string {
	r := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	// A reference genome with repeated motifs so k-mer counts vary.
	ref := make([]byte, 4096)
	for i := range ref {
		ref[i] = bases[r.Intn(4)]
	}
	copy(ref[1024:], ref[:512]) // duplicated region: doubled k-mer counts
	var sb strings.Builder
	for i := 0; i < n; i++ {
		start := r.Intn(len(ref) - length)
		sb.Write(ref[start : start+length])
		sb.WriteByte('\n')
	}
	return sb.String()
}

func main() {
	reads := synthesizeReads(3000, 64, 7)

	countKmers := hog.JobConfig{
		Name: "kmer-count",
		Mapper: hog.MapperFunc(func(_, read string, emit hog.Emit) error {
			for i := 0; i+k <= len(read); i++ {
				emit(read[i:i+k], "1")
			}
			return nil
		}),
		Reducer: hog.ReducerFunc(func(kmer string, ones []string, emit hog.Emit) error {
			emit(kmer, strconv.Itoa(len(ones)))
			return nil
		}),
		NumReducers: 8,
		SplitSize:   16 << 10,
	}
	countKmers.Combiner = hog.ReducerFunc(func(kmer string, ones []string, emit hog.Emit) error {
		total := 0
		for _, v := range ones {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			total += n
		}
		emit(kmer, strconv.Itoa(total))
		return nil
	})
	countKmers.Reducer = countKmers.Combiner

	histogram := hog.JobConfig{
		Name: "multiplicity-histogram",
		Mapper: hog.MapperFunc(func(_, line string, emit hog.Emit) error {
			if line == "" {
				return nil
			}
			tab := strings.IndexByte(line, '\t')
			if tab < 0 {
				return nil
			}
			emit(fmt.Sprintf("%06s", line[tab+1:]), "1")
			return nil
		}),
		Reducer: hog.ReducerFunc(func(mult string, ones []string, emit hog.Emit) error {
			emit(mult, strconv.Itoa(len(ones)))
			return nil
		}),
		NumReducers: 1,
	}

	res, err := hog.RunJobChain([]hog.JobStage{
		{Name: "count", Job: countKmers},
		{Name: "histogram", Job: histogram},
	}, []string{reads})
	if err != nil {
		log.Fatal(err)
	}

	counts := res.Stages[0]
	fmt.Printf("== %d-mer counting ==\n", k)
	fmt.Printf("  reads: 3000 x 64bp, map tasks: %d, distinct %d-mers: %d\n",
		counts.Counters.MapTasks, k, counts.Counters.ReduceInputKeys)
	fmt.Printf("  combiner shrank map output %d -> %d records\n",
		counts.Counters.MapOutputRecords, counts.Counters.CombineOutRecords)

	fmt.Println("\n== multiplicity histogram (top rows) ==")
	fmt.Println("  multiplicity  #kmers")
	rows := res.Final.Flatten()
	shown := 0
	for _, kv := range rows {
		fmt.Printf("  %12s  %6s\n", strings.TrimLeft(kv.Key, "0"), kv.Value)
		shown++
		if shown >= 10 {
			break
		}
	}
	fmt.Printf("  (%d multiplicity classes total)\n", len(rows))
	fmt.Println("\nOn HOG this pipeline runs unchanged across OSG sites; here it")
	fmt.Println("executes on the in-process engine with identical semantics.")
}
