// Command site-failure demonstrates HOG's third failure domain (§III.B.1):
// an entire OSG site disappears mid-workload. With site-aware placement and
// replication 10 every block survives and the workload completes; with flat
// placement and replication 2 the same outage destroys data and fails jobs.
package main

import (
	"fmt"

	"hog"
)

func run(label string, repl int, siteAware bool) {
	cfg := hog.HOGConfig(60, hog.ChurnNone, 11)
	cfg.HDFS.Replication = repl
	cfg.HDFS.SiteAware = siteAware

	sys := hog.NewSystem(cfg)
	sched := hog.GenerateWorkload(11, 0.3)

	// Schedule the outage: 300 s into the run, the largest site's batch
	// system preempts every one of our glide-ins at once (e.g. a core
	// network failure or a higher-priority user claiming the whole pool).
	sys.Eng.After(300*hog.Seconds(1), func() {
		killed := sys.Pool.PreemptSite(0, 1.0)
		fmt.Printf("  [t=%.0fs] site FNAL_FERMIGRID failed: %d workers lost\n",
			sys.Eng.Now().Seconds(), killed)
	})

	res := sys.RunWorkload(sched)
	fmt.Printf("%s\n", label)
	fmt.Printf("  replication=%d siteAware=%v\n", repl, siteAware)
	fmt.Printf("  response %.0f s, jobs failed %d, blocks lost %d, re-replications %d\n\n",
		res.ResponseTime.Seconds(), res.JobsFailed, res.NN.BlocksLost, res.NN.ReplicationsDone)
}

func main() {
	fmt.Println("== whole-site failure during the workload ==")
	run("HOG (the paper's configuration):", 10, true)
	run("naive grid deployment:", 2, false)
	fmt.Println("Site awareness guarantees replicas span sites, so a whole-site")
	fmt.Println("outage cannot take out every copy of a block; replication 10")
	fmt.Println("additionally rides out simultaneous preemptions faster than the")
	fmt.Println("namenode can re-replicate (paper §III.B.1).")
}
