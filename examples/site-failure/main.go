// Command site-failure demonstrates HOG's third failure domain (§III.B.1):
// an entire OSG site disappears mid-workload. With site-aware placement and
// replication 10 every block survives and the workload completes; with flat
// placement and replication 2 the same outage destroys data and fails jobs.
//
// The outage is a first-class Scenario — addressed by site name, anchored to
// the workload start, validated before the run — and the data damage is read
// off the typed event stream instead of end-of-run aggregates alone.
package main

import (
	"fmt"
	"log"

	"hog"
)

func run(label string, repl int, siteAware bool) {
	// Watch the fault land, live, through the event stream.
	narrator := hog.ObserverFunc(func(e hog.Event) {
		if e.Type == hog.EvSiteOutage {
			fmt.Printf("  [t=%.0fs] site %s failed: %d workers lost\n",
				e.Time.Seconds(), e.Site, e.Value)
		}
	})
	events, collect := hog.WithEvents(hog.EvBlockLost, hog.EvReplicationDone)

	sys, err := hog.New(
		hog.WithHOGPool(60, hog.ChurnNone),
		hog.WithSeed(11),
		hog.WithHDFS(func(c *hog.HDFSConfig) {
			c.Replication = repl
			c.SiteAware = siteAware
		}),
		hog.WithObserver(narrator),
		collect,
		// Five minutes into the run, the largest site's batch system preempts
		// every one of our glide-ins at once (e.g. a core network failure or
		// a higher-priority user claiming the whole pool).
		hog.WithScenario(hog.NewScenario("whole-site outage").
			SiteOutageAt(hog.Minutes(5), "FNAL_FERMIGRID", 1.0)),
	)
	if err != nil {
		log.Fatalf("site-failure: %v", err)
	}

	res := sys.RunWorkload(hog.GenerateWorkload(11, 0.3))
	fmt.Printf("%s\n", label)
	fmt.Printf("  replication=%d siteAware=%v\n", repl, siteAware)
	fmt.Printf("  response %.0f s, jobs failed %d, blocks lost %d, re-replications %d\n\n",
		res.ResponseTime.Seconds(), res.JobsFailed,
		events.Count(hog.EvBlockLost), events.Count(hog.EvReplicationDone))
}

func main() {
	fmt.Println("== whole-site failure during the workload ==")
	run("HOG (the paper's configuration):", 10, true)
	run("naive grid deployment:", 2, false)
	fmt.Println("Site awareness guarantees replicas span sites, so a whole-site")
	fmt.Println("outage cannot take out every copy of a block; replication 10")
	fmt.Println("additionally rides out simultaneous preemptions faster than the")
	fmt.Println("namenode can re-replicate (paper §III.B.1).")
}
