// Command quickstart runs a real word-count MapReduce job on the in-process
// engine — the Hadoop programming model the paper leaves unchanged — and
// then replays the same class of job on a simulated 25-node HOG pool to show
// both halves of the library in one sitting.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"hog"
)

const gettysburg = `Four score and seven years ago our fathers brought forth
on this continent a new nation conceived in liberty and dedicated to the
proposition that all men are created equal Now we are engaged in a great
civil war testing whether that nation or any nation so conceived and so
dedicated can long endure`

func main() {
	// Part 1: a real MapReduce job, Hadoop-style.
	wordCount := hog.JobConfig{
		Name: "wordcount",
		Mapper: hog.MapperFunc(func(_, line string, emit hog.Emit) error {
			for _, w := range strings.Fields(strings.ToLower(line)) {
				emit(w, "1")
			}
			return nil
		}),
		Reducer: hog.ReducerFunc(func(key string, values []string, emit hog.Emit) error {
			sum := 0
			for _, v := range values {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				sum += n
			}
			emit(key, strconv.Itoa(sum))
			return nil
		}),
		NumReducers: 2,
	}
	// The combiner is the reducer (associative sum), as in Hadoop wordcount.
	wordCount.Combiner = wordCount.Reducer

	out, err := hog.RunJob(wordCount, []string{gettysburg})
	if err != nil {
		log.Fatalf("wordcount: %v", err)
	}
	fmt.Println("== word count (top words) ==")
	for _, w := range []string{"nation", "and", "that", "conceived"} {
		fmt.Printf("  %-10s %v\n", w, out.Lookup(w))
	}
	fmt.Printf("  (%d map tasks, %d reduce tasks, %d distinct keys)\n",
		out.Counters.MapTasks, out.Counters.ReduceTasks, out.Counters.ReduceInputKeys)

	// Part 2: the same workload shape on a simulated HOG pool.
	fmt.Println("\n== simulated HOG pool (25 nodes, stable churn) ==")
	sched := hog.GenerateWorkload(42, 0.1) // 10% of the paper's 88-job schedule
	sys, err := hog.New(hog.WithHOGPool(25, hog.ChurnStable), hog.WithSeed(42))
	if err != nil {
		log.Fatalf("simulated pool: %v", err)
	}
	res := sys.RunWorkload(sched)
	fmt.Printf("  jobs: %d submitted, %d failed\n", len(res.JobResponses)+res.JobsFailed, res.JobsFailed)
	fmt.Printf("  workload response time: %.0f s\n", res.ResponseTime.Seconds())
	fmt.Printf("  job response times: %v\n", res.Summary())
	fmt.Printf("  map locality: %d node-local / %d site-local / %d remote\n",
		res.MapLocality[0], res.MapLocality[1], res.MapLocality[2])
	fmt.Printf("  preemptions survived: %d\n", res.Pool.Preempted+res.Pool.BatchPreempted)
}
