// Command facebook-workload reproduces the heart of the paper's evaluation
// (§IV.B, Figure 4) at example scale: the Facebook-derived submission
// schedule runs on the Table III dedicated cluster and on HOG pools of
// several sizes, printing the equivalent-performance comparison. An
// EventLog on each pool run breaks map placement down by locality level,
// the mechanism behind the crossover.
//
// Run with -full for the paper's complete 88-job schedule (slower); the
// default uses a 35% scale for a quick demonstration.
package main

import (
	"flag"
	"fmt"
	"log"

	"hog"
)

func main() {
	full := flag.Bool("full", false, "run the full 88-job schedule")
	seed := flag.Int64("seed", 1, "workload and simulation seed")
	flag.Parse()

	scale := 0.35
	if *full {
		scale = 1.0
	}
	sched := hog.GenerateWorkload(*seed, scale)
	fmt.Printf("schedule: %d jobs over %.0f s (mean gap 14 s)\n\n",
		len(sched.Jobs), sched.Span().Seconds())

	cluster, err := hog.New(hog.WithDedicatedCluster(), hog.WithSeed(*seed))
	if err != nil {
		log.Fatalf("facebook-workload: %v", err)
	}
	cres := cluster.RunWorkload(sched)
	fmt.Printf("dedicated cluster (100 cores): response %.0f s\n\n", cres.ResponseTime.Seconds())

	fmt.Println("  HOG nodes   response(s)   vs cluster   node-local maps")
	for _, n := range []int{40, 60, 100, 140} {
		events, collect := hog.WithEvents(hog.EvTaskLaunched)
		sys, err := hog.New(
			hog.WithHOGPool(n, hog.ChurnStable),
			hog.WithSeed(*seed),
			collect,
		)
		if err != nil {
			log.Fatalf("facebook-workload: %v", err)
		}
		res := sys.RunWorkload(sched)
		local, maps := 0, 0
		for _, e := range events.Events() {
			if e.Kind != hog.MapTaskKind {
				continue
			}
			maps++
			if e.Locality == 0 {
				local++
			}
		}
		marker := ""
		if res.ResponseTime <= cres.ResponseTime {
			marker = "  <- equivalent performance reached"
		}
		fmt.Printf("  %9d   %11.0f   %+6.1f%%   %6.1f%% of %d%s\n",
			n, res.ResponseTime.Seconds(),
			100*(res.ResponseTime.Seconds()/cres.ResponseTime.Seconds()-1),
			100*float64(local)/float64(max(maps, 1)), maps, marker)
	}
	fmt.Println("\nThe paper finds HOG needs [99,100] nodes to match the 100-core")
	fmt.Println("cluster; the crossover here lands in the same band at full scale.")
}
