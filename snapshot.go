package hog

import (
	"hog/internal/core"
	"hog/internal/snapshot"
)

// Deterministic snapshot/restore and what-if forking (docs/SNAPSHOT.md).
//
// A snapshot is a versioned, self-contained byte container capturing a
// system's reproduction recipe — configuration, scenario specs, workload
// schedule, and clock — plus a layer-by-layer census of the live state.
// Restore rebuilds the system and deterministically replays it to the
// snapshot instant, then verifies the census section by section; from there
// the run continues exactly as the original would have, event for event.

// SnapshotVersion is the container format version this build reads and
// writes. Restore rejects other versions with a descriptive error.
const SnapshotVersion = snapshot.Version

// ScenarioSpec is the declarative, JSON-serialisable form of a Scenario, as
// stored in snapshots and accepted by `hogsim serve`'s /fork endpoint. Build
// one from a Scenario with its Spec method; turn it back into a Scenario
// with ScenarioFromSpec.
type ScenarioSpec = core.ScenarioSpec

// ScenarioFromSpec rebuilds a Scenario from its declarative spec. Scenarios
// containing When steps (arbitrary Go predicates) have no spec form.
func ScenarioFromSpec(spec ScenarioSpec) (*Scenario, error) {
	return core.ScenarioFromSpec(spec)
}

// Snapshot captures sys into a versioned snapshot container. The system must
// be freshly built or mid-workload (StartWorkload + RunTo); finished runs
// and diverged fork branches cannot be snapshotted.
func Snapshot(sys *System) ([]byte, error) { return snapshot.Save(sys) }

// Restore rebuilds the system a snapshot captured and replays it to the
// snapshot instant. The restored run is byte-identical to the original from
// that point on: same events in the same order, same results document.
// Observers passed here see the replayed history from the first node join.
// Restore fails with a descriptive error on corrupt or truncated
// containers, foreign versions, and any post-replay census mismatch.
func Restore(data []byte, obs ...Observer) (*System, error) {
	return snapshot.Restore(data, obs...)
}

// Fork restores one system per divergence from a single snapshot: a nil
// divergence is a control branch continuing unchanged; a non-nil Scenario is
// applied at the snapshot instant (timed steps anchor there, not at the
// workload start). Every branch replays the identical history up to the
// fork, so branch deltas are attributable to the divergence alone.
func Fork(data []byte, divergences []*Scenario, obs ...Observer) ([]*System, error) {
	return snapshot.Fork(data, divergences, obs...)
}
