// Package hog is the public facade of the HOG reproduction: Hadoop
// MapReduce on the Open Science Grid (He, Weitzel, Swanson, Lu — SC
// Companion 2012), rebuilt as a Go library.
//
// The package exposes three layers:
//
//   - The grid-scale simulation stack: a deterministic discrete-event
//     reproduction of HOG — glide-in worker pools over five OSG sites with
//     preemption, HDFS with site-aware placement and replication 10, and
//     Hadoop MapReduce 1.0 scheduling — plus the paper's dedicated
//     comparison cluster. Systems are built with New and functional options,
//     observed through the typed event stream (Observer, EventLog), and
//     driven through scripted fault injection (Scenario); the legacy
//     NewSystem(Config) facade remains for existing callers.
//   - A real, concurrent, in-process MapReduce engine (RunJob, Mapper,
//     Reducer, ...) with the Hadoop programming model the paper promises to
//     leave unchanged.
//   - The HOD (Hadoop On Demand) baseline (RunHOD) from the paper's
//     related-work comparison.
//
// See docs/API.md for the Option/Observer/Scenario surface, docs/HARNESS.md
// for the experiment suite and its JSON results document, and docs/PERF.md
// for the performance notes.
package hog

import (
	"context"

	"hog/internal/core"
	"hog/internal/experiments"
	"hog/internal/grid"
	"hog/internal/harness"
	"hog/internal/hdfs"
	"hog/internal/hod"
	"hog/internal/mapred"
	"hog/internal/metrics"
	"hog/internal/mrlocal"
	"hog/internal/sim"
	"hog/internal/workload"
)

// Simulation stack.
type (
	// Config describes a simulated system (HOG pool or dedicated cluster).
	Config = core.Config
	// GridConfig is the elastic glide-in part of a Config.
	GridConfig = core.GridConfig
	// StaticGroup describes a homogeneous group of dedicated cluster nodes.
	StaticGroup = core.StaticGroup
	// JobCosts is the loadgen-like benchmark job cost model.
	JobCosts = core.JobCosts
	// System is a running simulated platform.
	System = core.System
	// Result aggregates one workload execution.
	Result = core.Result
	// ZombieMode selects preempted-daemon behaviour (paper §IV.D.1).
	ZombieMode = core.ZombieMode
	// Policies selects the pluggable scheduling, speculation, placement,
	// and replication policies by registry name (docs/POLICIES.md).
	Policies = core.Policies
	// FairPoolConfig parameterises one fair-share pool ("fair" scheduler);
	// distinct from PoolConfig, which shapes the glide-in worker pool.
	FairPoolConfig = mapred.PoolConfig
	// ChurnProfile selects grid hostility (none, stable, unstable).
	ChurnProfile = grid.ChurnProfile
	// SiteConfig describes one grid site.
	SiteConfig = grid.SiteConfig
	// Schedule is a job submission schedule.
	Schedule = workload.Schedule
	// WorkloadBin is one row of the paper's Table I / Table II.
	WorkloadBin = workload.Bin
	// Series is a step time series (node availability, Figure 5).
	Series = metrics.Series
	// Summary holds order statistics over durations.
	Summary = metrics.Summary
	// FloatSummary holds mean/min/max/stddev over a float sample.
	FloatSummary = metrics.FloatSummary
	// Time is a simulated timestamp/duration in integer microseconds.
	Time = sim.Time
)

// Zombie-handling modes (paper §IV.D.1).
const (
	ZombieFixed     = core.ZombieFixed
	ZombieUnfixed   = core.ZombieUnfixed
	ZombieDiskCheck = core.ZombieDiskCheck
)

// Churn profiles for the OSG sites.
const (
	ChurnNone     = grid.ChurnNone
	ChurnStable   = grid.ChurnStable
	ChurnUnstable = grid.ChurnUnstable
)

// NewSystem builds a simulated system from cfg, panicking on an invalid
// configuration. It is the legacy facade, retained so existing callers
// compile unchanged; new code should prefer New, which takes functional
// options and returns an error through the same validator.
func NewSystem(cfg Config) *System { return core.New(cfg) }

// HOGConfig returns the paper's HOG setup at the given pool size and churn:
// five OSG sites, one map and one reduce slot per node, replication 10,
// site awareness, and 30-second dead timeouts.
func HOGConfig(targetNodes int, churn ChurnProfile, seed int64) Config {
	return core.HOGConfig(targetNodes, churn, seed)
}

// DedicatedClusterConfig returns the paper's Table III comparison cluster
// (30 nodes, 100 cores, 100 map and 30 reduce slots).
func DedicatedClusterConfig(seed int64) Config { return core.DedicatedClusterConfig(seed) }

// OSGSites returns the five sites of the paper's Listing 1 with a churn
// profile applied.
func OSGSites(churn ChurnProfile) []SiteConfig { return grid.OSGSites(churn) }

// GenerateWorkload builds the paper's Facebook submission schedule (88 jobs
// from Table II's bins, exponential inter-arrival with a 14-second mean).
// scale 1.0 reproduces the paper; smaller values shrink per-bin job counts
// for quick runs.
func GenerateWorkload(seed int64, scale float64) *Schedule {
	return workload.Generate(seed, workload.Config{Scale: scale})
}

// FacebookBins returns the paper's Table I.
func FacebookBins() []WorkloadBin { return workload.Table1() }

// TruncatedBins returns the paper's Table II (the six bins actually run).
func TruncatedBins() []WorkloadBin { return workload.Table2() }

// Real in-process MapReduce engine.
type (
	// Mapper transforms one input record into intermediate records.
	Mapper = mrlocal.Mapper
	// Reducer folds all values of a key into output records.
	Reducer = mrlocal.Reducer
	// MapperFunc adapts a function to Mapper.
	MapperFunc = mrlocal.MapperFunc
	// ReducerFunc adapts a function to Reducer.
	ReducerFunc = mrlocal.ReducerFunc
	// Emit receives records from map and reduce functions.
	Emit = mrlocal.Emit
	// Partitioner assigns keys to reduce partitions.
	Partitioner = mrlocal.Partitioner
	// HashPartitioner is the default key partitioner.
	HashPartitioner = mrlocal.HashPartitioner
	// JobConfig describes an in-process MapReduce job.
	JobConfig = mrlocal.Config
	// JobOutput is a finished in-process job's result.
	JobOutput = mrlocal.Output
	// KeyValue is an intermediate or output record.
	KeyValue = mrlocal.KeyValue
)

// RunJob executes an in-process MapReduce job over the given documents.
func RunJob(cfg JobConfig, docs []string) (*JobOutput, error) { return mrlocal.Run(cfg, docs) }

// JobStage is one stage of a chained in-process pipeline.
type JobStage = mrlocal.Stage

// RunJobChain executes MapReduce jobs back to back, each stage consuming the
// previous stage's key\tvalue output — the standard Hadoop job-chaining
// idiom, which HOG runs unchanged.
func RunJobChain(stages []JobStage, docs []string) (*mrlocal.ChainResult, error) {
	return mrlocal.RunChain(stages, docs)
}

// HOD baseline.
type (
	// HODConfig parameterises the Hadoop On Demand baseline.
	HODConfig = hod.Config
	// HODResult is a whole-schedule HOD execution.
	HODResult = hod.Result
)

// RunHOD executes a schedule under HOD semantics: a fresh per-job cluster
// with provisioning and staging overhead (paper §V).
func RunHOD(sched *Schedule, cfg HODConfig) *HODResult { return hod.Run(sched, cfg) }

// DefaultHODConfig returns a HOD setup with the given per-job cluster size.
func DefaultHODConfig(nodesPerJob int, seed int64) HODConfig {
	return hod.DefaultConfig(nodesPerJob, seed)
}

// Experiment suite: the paper's evaluation as a parallel trial matrix with
// a versioned JSON results document (see docs/HARNESS.md).
type (
	// ExperimentOptions controls experiment cost (scale, seeds, node sweep).
	ExperimentOptions = experiments.Options
	// ResultsDoc is the versioned JSON results document of a suite run.
	ResultsDoc = harness.Doc
	// TrialResult is one executed trial of the experiment matrix.
	TrialResult = harness.TrialResult
	// TrialMetrics holds one trial's named scalar measurements.
	TrialMetrics = harness.Metrics
)

// QuickOptions returns cheap experiment options for smoke runs.
func QuickOptions() ExperimentOptions { return experiments.Quick() }

// FullOptions returns the paper-scale experiment options.
func FullOptions() ExperimentOptions { return experiments.Full() }

// SchedulerPolicyNames lists the registered job-ordering policies, sorted.
func SchedulerPolicyNames() []string { return mapred.SchedulerPolicyNames() }

// SpeculationPolicyNames lists the registered straggler criteria, sorted.
func SpeculationPolicyNames() []string { return mapred.SpeculationPolicyNames() }

// PlacementPolicyNames lists the registered block-placement policies, sorted.
func PlacementPolicyNames() []string { return hdfs.PlacementPolicyNames() }

// ReplicationOrderNames lists the registered block-recovery orderings,
// sorted.
func ReplicationOrderNames() []string { return hdfs.ReplicationOrderNames() }

// ExperimentIDs lists the runnable experiment ids (hogbench -list).
func ExperimentIDs() []string {
	var ids []string
	for _, s := range harness.Specs() {
		ids = append(ids, s.ID)
	}
	return ids
}

// RunSuite expands the named experiments ("all" for everything) into the
// trial matrix, executes it across a bounded pool of workers, and returns
// the results document. For a fixed seed set the document is bit-identical
// regardless of worker count.
func RunSuite(ctx context.Context, ids []string, opts ExperimentOptions, workers int) (*ResultsDoc, error) {
	return harness.RunSuite(ctx, ids, opts, workers)
}

// Seconds converts float seconds to a simulated Time.
func Seconds(s float64) Time { return sim.Seconds(s) }

// Minutes converts float minutes to a simulated Time.
func Minutes(m float64) Time { return sim.Minutes(m) }

// Hours converts float hours to a simulated Time.
func Hours(h float64) Time { return sim.Hours(h) }
