module hog

go 1.21
