package hog

import (
	"hog/internal/core"
	"hog/internal/event"
)

// Typed event stream. Every simulated system emits a deterministic sequence
// of events — same seed and options, same sequence, whether zero or many
// observers are attached; with none attached the stream costs nothing.
// See docs/API.md for the full catalogue and contract.
type (
	// Event is one fact about a run: a node lifecycle change, a data event,
	// job/task progress, or an injected fault.
	Event = event.Event
	// EventType discriminates the Event union.
	EventType = event.Type
	// TaskKind distinguishes map from reduce in task events.
	TaskKind = event.TaskKind
	// Observer receives events synchronously; it must treat them as
	// read-only facts and never call back into the simulation.
	Observer = event.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = event.ObserverFunc
	// EventLog is a bundled Observer that records events with per-type
	// filters, per-type counts, and a determinism fingerprint.
	EventLog = event.Log
)

// Event types.
const (
	EvJobSubmitted    = event.JobSubmitted
	EvJobFinished     = event.JobFinished
	EvTaskLaunched    = event.TaskLaunched
	EvTaskFinished    = event.TaskFinished
	EvNodeJoined      = event.NodeJoined
	EvNodePreempted   = event.NodePreempted
	EvNodeDead        = event.NodeDead
	EvZombieDetected  = event.ZombieDetected
	EvBlockLost       = event.BlockLost
	EvReplicationDone = event.ReplicationDone
	EvSiteOutage      = event.SiteOutage
	EvPoolRetarget    = event.PoolRetarget
	// Master failure and recovery (see docs/FAULTS.md).
	EvMasterCrashed       = event.MasterCrashed
	EvMasterRecovered     = event.MasterRecovered
	EvSafeModeEntered     = event.SafeModeEntered
	EvSafeModeExited      = event.SafeModeExited
	EvTrackerReregistered = event.TrackerReregistered
	// Partition, gray-failure, and corruption faults (see docs/FAULTS.md).
	EvPartitionStarted    = event.PartitionStarted
	EvPartitionHealed     = event.PartitionHealed
	EvNodeDegraded        = event.NodeDegraded
	EvNodeRestored        = event.NodeRestored
	EvNodeRecovered       = event.NodeRecovered
	EvReplicaCorrupted    = event.ReplicaCorrupted
	EvCorruptReadDetected = event.CorruptReadDetected
	EvReplicaInvalidated  = event.ReplicaInvalidated
	EvPipelineRecovered   = event.PipelineRecovered
	EvMasterGiveUp        = event.MasterGiveUp
)

// Task kinds for task events.
const (
	MapTaskKind    = event.MapTask
	ReduceTaskKind = event.ReduceTask
)

// NewEventLog returns an event collector. With no arguments it retains every
// event; otherwise only the listed types are retained (per-type counts still
// cover everything observed).
func NewEventLog(types ...EventType) *EventLog { return event.NewLog(types...) }

// Scenario is an ordered, validated script of fault-injection and operations
// actions (site outages, churn bursts, pool retargets, balancer rounds, WAN
// degradation, condition-triggered steps), installed with System.Apply or
// the WithScenario option. Timed steps anchor to the workload start.
type Scenario = core.Scenario

// NewScenario starts an empty scenario; chain action methods onto it:
//
//	hog.NewScenario("failover drill").
//		SiteOutageAt(hog.Minutes(5), "FNAL_FERMIGRID", 1.0).
//		RetargetWhenAliveBelow(40, 80)
func NewScenario(name string) *Scenario { return core.NewScenario(name) }
