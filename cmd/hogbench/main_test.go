package main

import (
	"sort"
	"strings"
	"testing"

	"hog/internal/harness"
)

// TestListTextCoversRegistries pins -list to the two registries it renders:
// every harness experiment id (plus the table4 alias) and every policy name
// must appear, and the policy listings must be sorted.
func TestListTextCoversRegistries(t *testing.T) {
	out := listText()
	for _, s := range harness.Specs() {
		if !strings.Contains(out, s.ID) {
			t.Errorf("-list output missing experiment %q", s.ID)
		}
	}
	if !strings.Contains(out, "table4") {
		t.Error("-list output missing the table4 alias")
	}
	for _, pf := range policyFlags() {
		if !strings.Contains(out, "-"+pf.flag) {
			t.Errorf("-list output missing policy flag -%s", pf.flag)
		}
		names := pf.names()
		if !sort.StringsAreSorted(names) {
			t.Errorf("-%s registry names not sorted: %v", pf.flag, names)
		}
		if len(names) < 2 {
			t.Errorf("-%s has %d registered policies, want at least a default and an alternative", pf.flag, len(names))
		}
		for _, n := range names {
			if !strings.Contains(out, n) {
				t.Errorf("-list output missing policy %q", n)
			}
		}
	}
}

// TestRunnersCoverEverySpec guards the printer map against a spec added
// without a text formatter (runners panics on the gap).
func TestRunnersCoverEverySpec(t *testing.T) {
	rs := runners()
	if want := len(harness.Specs()) + 1; len(rs) != want { // +1: table4 alias
		t.Fatalf("got %d runners, want %d", len(rs), want)
	}
}

// TestCheckPolicyName pins the friendly unknown-policy error.
func TestCheckPolicyName(t *testing.T) {
	pf := policyFlags()[0] // -sched
	if err := checkPolicyName(pf, ""); err != nil {
		t.Errorf("empty policy name should keep the default, got %v", err)
	}
	if err := checkPolicyName(pf, "fifo"); err != nil {
		t.Errorf("registered name rejected: %v", err)
	}
	err := checkPolicyName(pf, "nope")
	if err == nil {
		t.Fatal("unknown policy name accepted")
	}
	for _, want := range []string{"nope", "-sched", "fifo", "fair"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
