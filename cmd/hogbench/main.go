// Command hogbench regenerates the paper's tables and figures plus the
// repository's ablation studies.
//
// Usage:
//
//	hogbench -exp all                  # everything, paper scale (several minutes)
//	hogbench -exp fig4 -quick          # one experiment, reduced scale
//	hogbench -exp all -parallel 8      # trial matrix across 8 workers
//	hogbench -exp all -json -out r.json # versioned JSON results document
//	hogbench -list                     # show available experiment ids
//
// Experiment ids map to the paper via DESIGN.md's per-experiment index.
// With -json or -parallel > 1 the run goes through internal/harness: the
// experiments are expanded into a trial matrix and executed across a
// bounded worker pool; for a fixed seed set the JSON document is
// bit-identical for any -parallel value (docs/HARNESS.md records the
// schema and the determinism contract). Without either flag the classic
// sequential text report is printed unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"slices"
	"strings"

	"hog/internal/experiments"
	"hog/internal/harness"
	"hog/internal/hdfs"
	"hog/internal/mapred"
)

type runner struct {
	id    string
	desc  string
	alias bool // duplicates another id; skipped in -exp all
	run   func(w io.Writer, opts experiments.Options)
}

// printers maps experiment ids to their classic text formatters. Ids and
// descriptions come from harness.Specs(), so the text and harness paths
// can never drift apart.
var printers = map[string]func(io.Writer, experiments.Options){
	"table1":    func(w io.Writer, _ experiments.Options) { experiments.PrintTable1(w) },
	"table2":    func(w io.Writer, _ experiments.Options) { experiments.PrintTable2(w) },
	"table3":    experiments.PrintTable3,
	"fig4":      experiments.PrintFig4,
	"fig5":      experiments.PrintFig5Table4,
	"site":      experiments.PrintSiteFailure,
	"repl":      experiments.PrintReplicationSweep,
	"heartbeat": experiments.PrintHeartbeatSweep,
	"zombie":    experiments.PrintZombieSweep,
	"disk":      experiments.PrintDiskOverflow,
	"ncopy":     experiments.PrintRedundantCopies,
	"delay":     experiments.PrintDelayScheduling,
	"hod":       experiments.PrintHODComparison,
	"grid":      experiments.PrintLargeGrid,
	"mega":      experiments.PrintMegaGrid,
	"giga":      experiments.PrintGigaGrid,
	"sched":     experiments.PrintSchedScale,
	"events":    experiments.PrintEventCounts,
	"chaos":     experiments.PrintChaos,
	"chaos2":    experiments.PrintChaos2,
	"policy":    experiments.PrintPolicy,
	"whatif":    experiments.PrintWhatIf,
}

// runners derives the text-path registry from the harness spec registry,
// inserting the table4 alias after fig5.
func runners() []runner {
	var out []runner
	for _, s := range harness.Specs() {
		p, ok := printers[s.ID]
		if !ok {
			panic(fmt.Sprintf("hogbench: no printer for experiment %q", s.ID))
		}
		out = append(out, runner{id: s.ID, desc: s.Desc, run: p})
		if s.ID == "fig5" {
			out = append(out, runner{id: "table4", desc: "Table IV (alias of fig5)", alias: true, run: p})
		}
	}
	return out
}

// policyFlags describes the global policy-forcing flags: each row is one
// decision point with its flag name and registry listing. listText and the
// flag validation both walk this table, so -list can never drift from what
// the flags accept.
type policyFlag struct {
	flag  string
	desc  string
	names func() []string
}

func policyFlags() []policyFlag {
	return []policyFlag{
		{"sched", "job-ordering policy", mapred.SchedulerPolicyNames},
		{"place", "block-placement policy", hdfs.PlacementPolicyNames},
		{"spec", "straggler criterion", mapred.SpeculationPolicyNames},
		{"repl", "block-recovery order", hdfs.ReplicationOrderNames},
	}
}

// listText renders the -list output: the experiment registry followed by the
// policy registries (already sorted by their Names functions).
func listText() string {
	var b strings.Builder
	for _, r := range runners() {
		fmt.Fprintf(&b, "%-10s %s\n", r.id, r.desc)
	}
	b.WriteString("\npolicies (forced globally by flag; swept by -exp policy):\n")
	for _, p := range policyFlags() {
		fmt.Fprintf(&b, "  -%-6s %-22s %s\n", p.flag, p.desc, strings.Join(p.names(), ", "))
	}
	return b.String()
}

// checkPolicyName validates one policy flag value against its registry,
// returning a usage error naming the valid choices. Empty keeps the default.
func checkPolicyName(pf policyFlag, val string) error {
	if val == "" || slices.Contains(pf.names(), val) {
		return nil
	}
	return fmt.Errorf("unknown %s %q for -%s; known: %s",
		pf.desc, val, pf.flag, strings.Join(pf.names(), ", "))
}

// experimentIDs returns every runnable -exp value, aliases included.
func experimentIDs() []string {
	var ids []string
	for _, r := range runners() {
		ids = append(ids, r.id)
	}
	return ids
}

// main delegates to run so deferred profile writers flush on every exit
// path — os.Exit would skip them and leave truncated pprof files.
func main() {
	if code := run(); code != 0 {
		os.Exit(code)
	}
}

func run() int {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	quick := flag.Bool("quick", false, "reduced scale and single seed")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Float64("scale", 0, "override workload scale (0 = preset)")
	scan := flag.Bool("scan", false, "force the linear-scan scheduler baseline (results must be bit-identical)")
	heap := flag.Bool("heap", false, "force the binary-heap event queue baseline (results must be bit-identical)")
	seq := flag.Bool("seq", false, "force the sequential timing-wheel engine instead of the sharded parallel default (results must be bit-identical)")
	schedPol := flag.String("sched", "", "force a job-ordering policy in every run (see -list)")
	placePol := flag.String("place", "", "force a block-placement policy in every run (see -list)")
	specPol := flag.String("spec", "", "force a straggler criterion in every run (see -list)")
	replPol := flag.String("repl", "", "force a block-recovery order in every run (see -list)")
	parallel := flag.Int("parallel", 1, "worker pool size for the trial matrix")
	jsonOut := flag.Bool("json", false, "emit the versioned JSON results document")
	outPath := flag.String("out", "", "write output to this file instead of stdout")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settled live-heap numbers, not allocation noise
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	rs := runners()
	if *list {
		fmt.Print(listText())
		return 0
	}

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	opts.ScanScheduler = *scan
	opts.HeapScheduler = *heap
	opts.SequentialEngine = *seq
	opts.SchedulerPolicy = *schedPol
	opts.PlacementPolicy = *placePol
	opts.SpeculationPolicy = *specPol
	opts.ReplicationOrder = *replPol
	for i, val := range []string{*schedPol, *placePol, *specPol, *replPol} {
		if err := checkPolicyName(policyFlags()[i], val); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	// Validate the id before touching -out, so a typo can't truncate a
	// previous artifact.
	valid := *exp == "all"
	for _, r := range rs {
		if r.id == *exp {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s (use -list for details)\n",
			*exp, strings.Join(experimentIDs(), ", "))
		return 2
	}

	if *jsonOut || *parallel > 1 {
		if err := runHarness(*exp, opts, *parallel, *jsonOut, *outPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		return 0
	}

	out, err := openOut(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, r := range rs {
		if *exp != "all" && *exp != r.id {
			continue
		}
		if *exp == "all" && r.alias {
			continue
		}
		start := time.Now()
		r.run(out, opts)
		fmt.Fprintf(out, "[%s done in %.1fs]\n\n", r.id, time.Since(start).Seconds())
	}
	if err := closeOut(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return 0
}

// openOut returns stdout, or the named file when -out is set.
func openOut(path string) (*os.File, error) {
	if path == "" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

// closeOut closes an openOut file, leaving stdout alone.
func closeOut(f *os.File) error {
	if f == os.Stdout {
		return nil
	}
	return f.Close()
}

// runHarness executes the trial matrix through the parallel harness and
// emits the results as JSON or a generic text table. Timing goes to stderr
// so the document stays bit-identical across worker counts.
func runHarness(exp string, opts experiments.Options, parallel int, jsonOut bool, outPath string) error {
	// Validate the selection and open the output before the (potentially
	// minutes-long) run, so neither a bad id nor a bad path discards it.
	if _, err := harness.Select(exp); err != nil {
		return err
	}
	out, err := openOut(outPath)
	if err != nil {
		return err
	}
	start := time.Now()
	doc, err := harness.RunSuite(context.Background(), []string{exp}, opts, parallel)
	if err != nil {
		closeOut(out)
		return err
	}
	trials := 0
	for _, e := range doc.Experiments {
		trials += len(e.Trials)
	}
	fmt.Fprintf(os.Stderr, "[%d trials on %d workers in %.1fs]\n", trials, parallel, time.Since(start).Seconds())
	if jsonOut {
		if err := doc.WriteJSON(out); err != nil {
			closeOut(out)
			return err
		}
	} else {
		doc.WriteText(out)
	}
	return closeOut(out)
}
