// Command hogbench regenerates the paper's tables and figures plus the
// repository's ablation studies.
//
// Usage:
//
//	hogbench -exp all            # everything, paper scale (several minutes)
//	hogbench -exp fig4 -quick    # one experiment, reduced scale
//	hogbench -list               # show available experiment ids
//
// Experiment ids map to the paper via DESIGN.md's per-experiment index.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hog/internal/experiments"
)

type runner struct {
	id   string
	desc string
	run  func(opts experiments.Options)
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	quick := flag.Bool("quick", false, "reduced scale and single seed")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Float64("scale", 0, "override workload scale (0 = preset)")
	flag.Parse()

	out := os.Stdout
	runners := []runner{
		{"table1", "Table I: Facebook workload bins", func(experiments.Options) { experiments.PrintTable1(out) }},
		{"table2", "Table II: truncated workload", func(experiments.Options) { experiments.PrintTable2(out) }},
		{"table3", "Table III: dedicated cluster baseline", func(o experiments.Options) { experiments.PrintTable3(out, o) }},
		{"fig4", "Figure 4: equivalent performance sweep", func(o experiments.Options) { experiments.PrintFig4(out, o) }},
		{"fig5", "Figure 5 + Table IV: node fluctuation", func(o experiments.Options) { experiments.PrintFig5Table4(out, o) }},
		{"table4", "Table IV (alias of fig5)", func(o experiments.Options) { experiments.PrintFig5Table4(out, o) }},
		{"site", "A-SITE: whole-site failure ablation", func(o experiments.Options) { experiments.PrintSiteFailure(out, o) }},
		{"repl", "A-REPL: replication factor sweep", func(o experiments.Options) { experiments.PrintReplicationSweep(out, o) }},
		{"heartbeat", "A-HB: dead timeout 30s vs 15min", func(o experiments.Options) { experiments.PrintHeartbeatSweep(out, o) }},
		{"zombie", "A-ZOMBIE: abandoned datanode modes", func(o experiments.Options) { experiments.PrintZombieSweep(out, o) }},
		{"disk", "A-DISK: intermediate-data disk overflow", func(o experiments.Options) { experiments.PrintDiskOverflow(out, o) }},
		{"ncopy", "A-NCOPY: redundant task copies", func(o experiments.Options) { experiments.PrintRedundantCopies(out, o) }},
		{"delay", "A-DELAY: FIFO vs delay scheduling", func(o experiments.Options) { experiments.PrintDelayScheduling(out, o) }},
		{"hod", "A-HOD: Hadoop On Demand baseline", func(o experiments.Options) { experiments.PrintHODComparison(out, o) }},
		{"grid", "LARGE-GRID: ~1000 nodes across 12 sites", func(o experiments.Options) { experiments.PrintLargeGrid(out, o) }},
	}

	if *list {
		for _, r := range runners {
			fmt.Printf("%-10s %s\n", r.id, r.desc)
		}
		return
	}

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.id {
			continue
		}
		// table4 duplicates fig5 in -exp all.
		if *exp == "all" && r.id == "table4" {
			continue
		}
		ran = true
		start := time.Now()
		r.run(opts)
		fmt.Fprintf(out, "[%s done in %.1fs]\n\n", r.id, time.Since(start).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
}
