package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// mkdoc builds a hog-results document from {experiment: {rowKey: value}}
// where rowKey is "point/metric" and every trial uses seed 1.
func mkdoc(t *testing.T, exps []string, metrics map[string]map[string]float64) *doc {
	t.Helper()
	var d doc
	d.Schema = "hog-results"
	d.SchemaVersion = 1
	for _, id := range exps {
		e := experiment{ID: id}
		byPoint := map[string]map[string]float64{}
		for row, v := range metrics[id] {
			point, metric, ok := strings.Cut(row, "/")
			if !ok {
				t.Fatalf("bad row key %q", row)
			}
			if byPoint[point] == nil {
				byPoint[point] = map[string]float64{}
			}
			byPoint[point][metric] = v
		}
		// Deterministic trial order keeps test failure output stable.
		var points []string
		for p := range byPoint {
			points = append(points, p)
		}
		sort.Strings(points)
		for _, p := range points {
			e.Trials = append(e.Trials, struct {
				Point   string             `json:"point"`
				Seed    int64              `json:"seed"`
				Metrics map[string]float64 `json:"metrics"`
			}{Point: p, Seed: 1, Metrics: byPoint[p]})
		}
		d.Experiments = append(d.Experiments, e)
	}
	return &d
}

func TestCompareCleanPass(t *testing.T) {
	old := mkdoc(t, []string{"fig4", "giga"}, map[string]map[string]float64{
		"fig4": {"nodes=100/response_s": 500},
		"giga": {"nodes=100000/response_s": 724.8, "nodes=100000/events_fired": 449948},
	})
	r := compare(old, old, 0.5, 1, nil)
	if !r.ok() || r.Compared != 3 || r.failed() != 0 {
		t.Fatalf("identical documents did not pass cleanly: %+v", r)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	old := mkdoc(t, []string{"fig4"}, map[string]map[string]float64{
		"fig4": {"nodes=100/response_s": 500},
	})
	cand := mkdoc(t, []string{"fig4"}, map[string]map[string]float64{
		"fig4": {"nodes=100/response_s": 1200},
	})
	r := compare(old, cand, 0.5, 1, nil)
	if r.ok() || r.failed() != 1 {
		t.Fatalf("140%% drift passed a 50%% gate: %+v", r)
	}
	if g := r.Regressions[0]; g.Key != "fig4/nodes=100/seed=1/response_s" || g.Old != 500 || g.New != 1200 {
		t.Fatalf("regression row mangled: %+v", g)
	}
}

// TestMissingRowFails pins the gate this PR adds: a row present in the
// baseline but dropped from an experiment the new document still covers is a
// lost measurement, not acceptable drift.
func TestMissingRowFails(t *testing.T) {
	old := mkdoc(t, []string{"giga"}, map[string]map[string]float64{
		"giga": {"nodes=100000/response_s": 724.8, "nodes=100000/events_fired": 449948},
	})
	cand := mkdoc(t, []string{"giga"}, map[string]map[string]float64{
		"giga": {"nodes=100000/response_s": 724.8},
	})
	r := compare(old, cand, 0.5, 1, nil)
	if r.ok() {
		t.Fatal("dropped row passed the gate")
	}
	if len(r.MissingRows) != 1 || r.MissingRows[0] != "giga/nodes=100000/seed=1/events_fired" {
		t.Fatalf("missing rows = %v", r.MissingRows)
	}
	if r.failed() != 0 || r.Compared != 1 {
		t.Fatalf("unexpected side effects: %+v", r)
	}
}

// TestSubsetDocumentPasses keeps the chaos job's usage working: a new
// document covering only one of the baseline's experiments is informational,
// not fatal, as long as that experiment's rows are complete.
func TestSubsetDocumentPasses(t *testing.T) {
	old := mkdoc(t, []string{"fig4", "chaos"}, map[string]map[string]float64{
		"fig4":  {"nodes=100/response_s": 500},
		"chaos": {"schedule=0/violations": 0},
	})
	cand := mkdoc(t, []string{"chaos"}, map[string]map[string]float64{
		"chaos": {"schedule=0/violations": 0},
	})
	r := compare(old, cand, 0.5, 1, nil)
	if !r.ok() {
		t.Fatalf("subset document failed: %+v", r)
	}
	if len(r.BaselineOnly) != 1 || r.BaselineOnly[0] != "fig4" {
		t.Fatalf("baseline-only = %v", r.BaselineOnly)
	}
}

func TestRequireMissingExperimentFails(t *testing.T) {
	old := mkdoc(t, []string{"fig4"}, map[string]map[string]float64{
		"fig4": {"nodes=100/response_s": 500},
	})
	r := compare(old, old, 0.5, 1, []string{"fig4", "giga"})
	if r.ok() {
		t.Fatal("missing required experiment passed the gate")
	}
	if len(r.RequiredMissing) != 1 || r.RequiredMissing[0] != "giga" {
		t.Fatalf("required-missing = %v", r.RequiredMissing)
	}
}

// TestAppendSummary checks the GITHUB_STEP_SUMMARY writer: it must append —
// earlier steps' sections survive — and the table must carry the verdict,
// the per-experiment rollup, and the offending rows.
func TestAppendSummary(t *testing.T) {
	old := mkdoc(t, []string{"giga"}, map[string]map[string]float64{
		"giga": {"nodes=100000/response_s": 724.8, "nodes=100000/events_fired": 449948},
	})
	cand := mkdoc(t, []string{"giga"}, map[string]map[string]float64{
		"giga": {"nodes=100000/response_s": 3000},
	})
	r := compare(old, cand, 0.5, 1, nil)

	path := filepath.Join(t.TempDir(), "summary.md")
	if err := os.WriteFile(path, []byte("# earlier step\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendSummary(path, r, "BENCH_baseline.json", "BENCH_suite.json"); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf)
	for _, want := range []string{
		"# earlier step",
		"❌ fail",
		"| giga | 1 | 1 | 1 | 0 |",
		"| giga/nodes=100000/seed=1/response_s | 724.8 | 3000 |",
		"**Rows missing from the new document:** giga/nodes=100000/seed=1/events_fired",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary missing %q:\n%s", want, got)
		}
	}
}

// TestLoadRejectsForeignSchema keeps benchcheck from silently comparing
// arbitrary JSON.
func TestLoadRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.json")
	buf, _ := json.Marshal(map[string]any{"schema": "not-hog"})
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil {
		t.Fatal("foreign schema loaded without error")
	}
}

// TestRealBaselineSelfCompare runs the real committed baseline against
// itself: zero drift, zero missing rows, giga present — the steady state the
// CI gate relies on.
func TestRealBaselineSelfCompare(t *testing.T) {
	d, err := load("../../BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	r := compare(d, d, 0.5, 1, []string{"fig4", "mega", "giga", "chaos", "events"})
	if !r.ok() || r.failed() != 0 || len(r.MissingRows) != 0 {
		t.Fatalf("baseline does not self-compare cleanly: %+v", r)
	}
}
