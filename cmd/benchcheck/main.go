// Command benchcheck compares two hog-results JSON documents (see
// docs/HARNESS.md) metric by metric and fails when the new run regresses
// past a tolerance — the CI gate that turns the committed BENCH_baseline.json
// into an accumulating benchmark trajectory.
//
// Usage:
//
//	benchcheck -old BENCH_baseline.json -new BENCH_suite.json [-tol 0.5] [-require giga,chaos]
//
// Every (experiment, point, seed, metric) present in both documents is
// compared as |new-old| <= tol * max(|old|, floor). The simulated metrics
// are deterministic for a fixed seed set, so in the steady state the gate
// passes with zero drift; the generous default tolerance exists so that
// deliberate model changes (new scheduling policy, recalibrated costs) can
// land without ceremony, while a rewrite that silently halves throughput or
// doubles failures trips it.
//
// Whole experiments may come and go — a document that covers only a subset
// of the baseline's experiments (the chaos job gates BENCH_chaos.json alone)
// is fine. But within an experiment both documents claim to cover, a row
// present in the baseline and absent from the new document is a silently
// dropped measurement and fails the gate, as does any -require experiment id
// missing from the new document.
//
// When the GITHUB_STEP_SUMMARY environment variable names a file (as it does
// inside a GitHub Actions step), a markdown comparison table is appended to
// it, so the per-experiment drift shows up on the workflow summary page.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

type doc struct {
	Schema        string       `json:"schema"`
	SchemaVersion int          `json:"schema_version"`
	Experiments   []experiment `json:"experiments"`
}

type experiment struct {
	ID     string `json:"id"`
	Trials []struct {
		Point   string             `json:"point"`
		Seed    int64              `json:"seed"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"trials"`
}

func load(path string) (*doc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != "hog-results" {
		return nil, fmt.Errorf("%s: schema %q is not hog-results", path, d.Schema)
	}
	return &d, nil
}

// rows indexes one experiment's trial metrics by "point/seed=N/metric".
func rows(e experiment) map[string]float64 {
	out := make(map[string]float64)
	for _, t := range e.Trials {
		for k, v := range t.Metrics {
			out[fmt.Sprintf("%s/seed=%d/%s", t.Point, t.Seed, k)] = v
		}
	}
	return out
}

// regression is one metric that drifted past its limit.
type regression struct {
	Key                    string
	Old, New, Drift, Limit float64
}

// expRow is the per-experiment rollup the markdown table prints.
type expRow struct {
	ID                               string
	Compared, Failed, Missing, Added int
}

// report is the outcome of comparing two documents. Fatal conditions are
// regressions, rows missing within a shared experiment, required experiments
// absent from the new document, and an empty comparison.
type report struct {
	Exps            []expRow
	Regressions     []regression
	MissingRows     []string // rows dropped from an experiment both documents cover
	RequiredMissing []string // -require experiment ids absent from the new document
	BaselineOnly    []string // whole experiments absent from the new document (informational)
	NewOnly         []string // whole experiments absent from the baseline (informational)
	Compared        int
	Tol             float64
}

func (r *report) failed() int { return len(r.Regressions) }

func (r *report) ok() bool {
	return r.Compared > 0 && r.failed() == 0 && len(r.MissingRows) == 0 && len(r.RequiredMissing) == 0
}

// compare evaluates the new document against the baseline. Iteration order
// follows the baseline's experiment order with rows sorted, so output is
// deterministic.
func compare(oldDoc, newDoc *doc, tol, floor float64, require []string) *report {
	r := &report{Tol: tol}
	newExps := make(map[string]experiment, len(newDoc.Experiments))
	for _, e := range newDoc.Experiments {
		newExps[e.ID] = e
	}
	oldIDs := make(map[string]bool, len(oldDoc.Experiments))
	for _, oe := range oldDoc.Experiments {
		oldIDs[oe.ID] = true
		ne, ok := newExps[oe.ID]
		if !ok {
			r.BaselineOnly = append(r.BaselineOnly, oe.ID)
			continue
		}
		oldRows, newRows := rows(oe), rows(ne)
		keys := make([]string, 0, len(oldRows))
		for k := range oldRows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		row := expRow{ID: oe.ID}
		for _, k := range keys {
			ov := oldRows[k]
			nv, ok := newRows[k]
			if !ok {
				row.Missing++
				r.MissingRows = append(r.MissingRows, oe.ID+"/"+k)
				continue
			}
			row.Compared++
			r.Compared++
			limit := tol * math.Max(math.Abs(ov), floor)
			if drift := math.Abs(nv - ov); drift > limit {
				row.Failed++
				r.Regressions = append(r.Regressions, regression{Key: oe.ID + "/" + k, Old: ov, New: nv, Drift: drift, Limit: limit})
			}
		}
		for k := range newRows {
			if _, ok := oldRows[k]; !ok {
				row.Added++
			}
		}
		r.Exps = append(r.Exps, row)
	}
	for _, ne := range newDoc.Experiments {
		if !oldIDs[ne.ID] {
			r.NewOnly = append(r.NewOnly, ne.ID)
		}
	}
	for _, id := range require {
		if _, ok := newExps[id]; !ok {
			r.RequiredMissing = append(r.RequiredMissing, id)
		}
	}
	return r
}

// print writes the plain-text report: one line per fatal condition, then the
// one-line rollup CI logs always show.
func (r *report) print(w io.Writer) {
	for _, g := range r.Regressions {
		fmt.Fprintf(w, "REGRESSION %s: old=%.6g new=%.6g (drift %.6g > %.6g)\n", g.Key, g.Old, g.New, g.Drift, g.Limit)
	}
	for _, k := range r.MissingRows {
		fmt.Fprintf(w, "MISSING ROW %s: present in baseline, absent from new document\n", k)
	}
	for _, id := range r.RequiredMissing {
		fmt.Fprintf(w, "MISSING EXPERIMENT %s: required but absent from new document\n", id)
	}
	fmt.Fprintf(w, "benchcheck: %d compared, %d failed, %d rows missing, baseline-only %v, new-only %v (tol %.0f%%)\n",
		r.Compared, r.failed(), len(r.MissingRows), r.BaselineOnly, r.NewOnly, 100*r.Tol)
	if r.Compared == 0 {
		fmt.Fprintln(w, "benchcheck: no overlapping metrics; baseline needs refreshing")
	}
}

// markdown writes the GitHub step-summary table: a per-experiment rollup and,
// when something tripped, the offending rows.
func (r *report) markdown(w io.Writer, oldPath, newPath string) {
	verdict := "✅ pass"
	if !r.ok() {
		verdict = "❌ fail"
	}
	fmt.Fprintf(w, "### benchcheck: `%s` vs `%s` — %s\n\n", oldPath, newPath, verdict)
	fmt.Fprintf(w, "| experiment | compared | failed | missing | new-only rows |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|\n")
	for _, e := range r.Exps {
		fmt.Fprintf(w, "| %s | %d | %d | %d | %d |\n", e.ID, e.Compared, e.Failed, e.Missing, e.Added)
	}
	fmt.Fprintln(w)
	if len(r.Regressions) > 0 {
		fmt.Fprintf(w, "| regression | old | new | drift | limit |\n|---|---:|---:|---:|---:|\n")
		for _, g := range r.Regressions {
			fmt.Fprintf(w, "| %s | %.6g | %.6g | %.6g | %.6g |\n", g.Key, g.Old, g.New, g.Drift, g.Limit)
		}
		fmt.Fprintln(w)
	}
	if len(r.MissingRows) > 0 {
		fmt.Fprintf(w, "**Rows missing from the new document:** %s\n\n", strings.Join(r.MissingRows, ", "))
	}
	if len(r.RequiredMissing) > 0 {
		fmt.Fprintf(w, "**Required experiments missing:** %s\n\n", strings.Join(r.RequiredMissing, ", "))
	}
	if len(r.BaselineOnly) > 0 {
		fmt.Fprintf(w, "Baseline-only experiments (not gated): %s\n\n", strings.Join(r.BaselineOnly, ", "))
	}
}

// appendSummary appends the markdown report to path — the file GitHub names
// via GITHUB_STEP_SUMMARY, which may already hold earlier steps' sections.
func appendSummary(path string, r *report, oldPath, newPath string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	r.markdown(f, oldPath, newPath)
	return f.Close()
}

func main() {
	oldPath := flag.String("old", "", "baseline hog-results document")
	newPath := flag.String("new", "", "candidate hog-results document")
	tol := flag.Float64("tol", 0.5, "allowed relative drift per metric")
	floor := flag.Float64("floor", 1.0, "absolute scale floor so near-zero metrics aren't all noise")
	require := flag.String("require", "", "comma-separated experiment ids that must be present in the new document")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -old and -new are required")
		os.Exit(2)
	}
	oldDoc, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	newDoc, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	var req []string
	for _, id := range strings.Split(*require, ",") {
		if id = strings.TrimSpace(id); id != "" {
			req = append(req, id)
		}
	}
	r := compare(oldDoc, newDoc, *tol, *floor, req)
	r.print(os.Stdout)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if err := appendSummary(path, r, *oldPath, *newPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck: step summary:", err)
		}
	}
	if !r.ok() {
		os.Exit(1)
	}
}
