// Command benchcheck compares two hog-results JSON documents (see
// docs/HARNESS.md) metric by metric and fails when the new run regresses
// past a tolerance — the CI gate that turns the committed BENCH_baseline.json
// into an accumulating benchmark trajectory.
//
// Usage:
//
//	benchcheck -old BENCH_baseline.json -new BENCH_suite.json [-tol 0.5]
//
// Every (experiment, point, seed, metric) present in both documents is
// compared as |new-old| <= tol * max(|old|, floor). The simulated metrics
// are deterministic for a fixed seed set, so in the steady state the gate
// passes with zero drift; the generous default tolerance exists so that
// deliberate model changes (new scheduling policy, recalibrated costs) can
// land without ceremony, while a rewrite that silently halves throughput or
// doubles failures trips it. Metrics present on only one side are reported
// but not fatal: experiments are expected to come and go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

type doc struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`
	Experiments   []struct {
		ID     string `json:"id"`
		Trials []struct {
			Point   string             `json:"point"`
			Seed    int64              `json:"seed"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"trials"`
	} `json:"experiments"`
}

func load(path string) (*doc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != "hog-results" {
		return nil, fmt.Errorf("%s: schema %q is not hog-results", path, d.Schema)
	}
	return &d, nil
}

// flatten indexes every trial metric by "experiment/point/seed/metric".
func flatten(d *doc) map[string]float64 {
	out := make(map[string]float64)
	for _, e := range d.Experiments {
		for _, t := range e.Trials {
			for k, v := range t.Metrics {
				out[fmt.Sprintf("%s/%s/seed=%d/%s", e.ID, t.Point, t.Seed, k)] = v
			}
		}
	}
	return out
}

func main() {
	oldPath := flag.String("old", "", "baseline hog-results document")
	newPath := flag.String("new", "", "candidate hog-results document")
	tol := flag.Float64("tol", 0.5, "allowed relative drift per metric")
	floor := flag.Float64("floor", 1.0, "absolute scale floor so near-zero metrics aren't all noise")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -old and -new are required")
		os.Exit(2)
	}
	oldDoc, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	newDoc, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	oldM, newM := flatten(oldDoc), flatten(newDoc)
	compared, missing, added, failed := 0, 0, 0, 0
	for k, ov := range oldM {
		nv, ok := newM[k]
		if !ok {
			missing++
			continue
		}
		compared++
		limit := *tol * math.Max(math.Abs(ov), *floor)
		if math.Abs(nv-ov) > limit {
			failed++
			fmt.Printf("REGRESSION %s: old=%.6g new=%.6g (drift %.6g > %.6g)\n", k, ov, nv, math.Abs(nv-ov), limit)
		}
	}
	for k := range newM {
		if _, ok := oldM[k]; !ok {
			added++
		}
	}
	fmt.Printf("benchcheck: %d compared, %d failed, %d baseline-only, %d new-only (tol %.0f%%)\n",
		compared, failed, missing, added, 100**tol)
	if compared == 0 {
		fmt.Println("benchcheck: no overlapping metrics; baseline needs refreshing")
		os.Exit(1)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
