// Command genworkload emits the paper's Facebook-derived submission schedule
// (§IV.A, Tables I/II) as a table, CSV, or JSON for use by external tooling.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"hog/internal/workload"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "schedule seed")
		scale  = flag.Float64("scale", 1.0, "workload scale")
		format = flag.String("format", "table", "output format: table|csv|json")
		bins   = flag.Bool("bins", false, "print the bin tables instead of a schedule")
	)
	flag.Parse()

	if *bins {
		fmt.Println("Table I (Facebook bins):")
		for _, b := range workload.Table1() {
			fmt.Printf("  bin %d: maps %-9s (%2.0f%% at FB) -> bench %4d maps x %2d jobs\n",
				b.Bin, b.MapsAtFacebook, b.PercentAtFacebook, b.Maps, b.Jobs)
		}
		fmt.Println("Table II (truncated, with reduces):")
		for _, b := range workload.Table2() {
			fmt.Printf("  bin %d: %4d maps, %2d reduces, %2d jobs\n", b.Bin, b.Maps, b.Reduces, b.Jobs)
		}
		return
	}

	s := workload.Generate(*seed, workload.Config{Scale: *scale})
	switch *format {
	case "table":
		fmt.Printf("# %d jobs, span %.0fs, mean gap %.0fs, seed %d\n",
			len(s.Jobs), s.Span().Seconds(), s.MeanInterarrival.Seconds(), s.Seed)
		fmt.Println("# submit(s)  name              bin  maps  reduces  input(MB)")
		for _, j := range s.Jobs {
			fmt.Printf("%10.1f  %-16s %4d  %4d  %7d  %9.0f\n",
				j.Submit.Seconds(), j.Name, j.Bin, j.Maps, j.Reduces, j.InputBytes/1e6)
		}
	case "csv":
		w := csv.NewWriter(os.Stdout)
		_ = w.Write([]string{"submit_s", "name", "bin", "maps", "reduces", "input_bytes"})
		for _, j := range s.Jobs {
			_ = w.Write([]string{
				strconv.FormatFloat(j.Submit.Seconds(), 'f', 3, 64),
				j.Name,
				strconv.Itoa(j.Bin),
				strconv.Itoa(j.Maps),
				strconv.Itoa(j.Reduces),
				strconv.FormatFloat(j.InputBytes, 'f', 0, 64),
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
}
