// hogsim serve: hold one warm simulation in memory behind a small HTTP API.
//
// The service is the operational face of the snapshot subsystem
// (docs/SNAPSHOT.md): a cluster day is warmed up once, then clients can
// inspect it (GET /state), download a deterministic snapshot of it
// (GET /snapshot), advance it (POST /advance), fork what-if branches off it
// without disturbing it (POST /fork), and stream the typed event bus
// (GET /events, server-sent events).
//
// All simulation access is serialised by one mutex: the simulator is
// single-threaded by design, and the service exists for determinism, not
// throughput.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"hog/internal/core"
	"hog/internal/event"
	"hog/internal/metrics"
	"hog/internal/sim"
	"hog/internal/snapshot"
	"hog/internal/workload"
)

func serveMain(args []string) int {
	fs := flag.NewFlagSet("hogsim serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "localhost:8080", "listen address")
		nodes     = fs.Int("nodes", 100, "HOG pool target size")
		churnName = fs.String("churn", "stable", "grid churn: none|stable|unstable")
		seed      = fs.Int64("seed", 1, "simulation and workload seed")
		scale     = fs.Float64("scale", 1.0, "workload scale (1.0 = 88 jobs)")
		warm      = fs.Float64("warm", 0, "advance this many seconds into the workload before serving")
	)
	fs.Parse(args)

	churn, ok := churnProfiles[*churnName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown churn %q\n", *churnName)
		return 2
	}
	srv, err := newServer(core.HOGConfig(*nodes, churn, *seed),
		workload.Generate(*seed, workload.Config{Scale: *scale}), sim.Seconds(*warm))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "hogsim serve: %d-node pool warm at t=%.0f s, listening on http://%s\n",
		*nodes, srv.sys.Eng.Now().Seconds(), *addr)
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.routes(),
		// Header and idle deadlines bound connection-level stalls; the
		// endpoint bodies get their own per-request deadline in routes().
		// No WriteTimeout: /events streams for the client's lifetime.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "hogsim serve: caught %v, draining\n", sig)
	}
	// Release the /events streams first — Shutdown waits for in-flight
	// handlers, and an SSE handler only returns once told to.
	srv.close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// ringCap bounds the in-memory event history replayed to new /events
// subscribers. At 100-node scale a full day is a few hundred thousand
// events; the ring keeps the most recent slice.
const ringCap = 4096

// server is one warm simulation plus its event fan-out.
type server struct {
	mu  sync.Mutex // serialises all simulation access
	sys *core.System

	evmu    sync.Mutex // guards ring and subs
	ring    []event.Event
	subs    map[int]chan event.Event
	nextSub int

	done      chan struct{} // closed on shutdown; releases /events handlers
	closeOnce sync.Once
}

// newServer builds the system, subscribes the server to its event bus,
// starts the workload, and warms it up to runStart+warm.
func newServer(cfg core.Config, sched *workload.Schedule, warm sim.Time) (*server, error) {
	s := &server{subs: make(map[int]chan event.Event), done: make(chan struct{})}
	sys, err := core.NewSystem(cfg, s)
	if err != nil {
		return nil, err
	}
	s.sys = sys
	if err := sys.StartWorkload(sched); err != nil {
		return nil, err
	}
	if warm > 0 {
		if err := sys.RunTo(sys.RunStart() + warm); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// HandleEvent implements event.Observer: every simulation event lands in the
// replay ring and fans out to live /events subscribers. Slow subscribers drop
// events rather than stall the simulation.
func (s *server) HandleEvent(e event.Event) {
	s.evmu.Lock()
	defer s.evmu.Unlock()
	if len(s.ring) == ringCap {
		copy(s.ring, s.ring[1:])
		s.ring = s.ring[:ringCap-1]
	}
	s.ring = append(s.ring, e)
	for _, ch := range s.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// close releases every live /events subscriber and makes the server refuse
// further streaming; it is idempotent and safe from any goroutine.
func (s *server) close() {
	s.closeOnce.Do(func() { close(s.done) })
}

// subscribers reports the live /events subscriber count (tests use it to
// check that disconnected clients are reaped).
func (s *server) subscribers() int {
	s.evmu.Lock()
	defer s.evmu.Unlock()
	return len(s.subs)
}

// requestTimeout bounds each non-streaming request body. Fork branches run
// whole simulations under the lock, so the bound is generous; only a wedged
// request should ever hit it.
const requestTimeout = 30 * time.Second

func (s *server) routes() http.Handler {
	// Method dispatch is by hand: the module's language floor predates the
	// Go 1.22 ServeMux method patterns. Every endpoint except the SSE
	// stream gets a per-request deadline; /events is exempt because it
	// legitimately runs forever (and TimeoutHandler cannot stream anyway).
	bounded := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, requestTimeout, "request timed out\n")
	}
	mux := http.NewServeMux()
	mux.Handle("/state", bounded(method("GET", s.handleState)))
	mux.Handle("/snapshot", bounded(method("GET", s.handleSnapshot)))
	mux.Handle("/advance", bounded(method("POST", s.handleAdvance)))
	mux.Handle("/fork", bounded(method("POST", s.handleFork)))
	mux.HandleFunc("/events", method("GET", s.handleEvents))
	return mux
}

// method rejects requests whose method doesn't match.
func method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires %s", r.URL.Path, want))
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// stateReply is the GET /state document: run phase and clock plus the full
// layer-by-layer census the snapshot subsystem verifies restores against.
type stateReply struct {
	Phase  string          `json:"phase"`
	NowS   float64         `json:"now_s"`
	Jobs   int             `json:"jobs_submitted"`
	Census snapshot.Census `json:"census"`
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	reply := stateReply{
		Phase:  s.sys.Phase().String(),
		NowS:   s.sys.Eng.Now().Seconds(),
		Census: snapshot.TakeCensus(s.sys),
	}
	if sched := s.sys.RunSchedule(); sched != nil {
		reply.Jobs = len(sched.Jobs)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, reply)
}

// handleSnapshot serves the versioned snapshot container as a download;
// restore it with `hogsim restore -in FILE` or snapshot.Restore.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	data, err := snapshot.Save(s.sys)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="hogsim.snap"`)
	w.Write(data)
}

// advanceRequest moves the warm simulation's clock forward.
type advanceRequest struct {
	ToS float64 `json:"to_s"` // absolute simulated target instant
	ByS float64 `json:"by_s"` // or: seconds beyond the current instant
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req advanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.mu.Lock()
	target := sim.Seconds(req.ToS)
	if req.ByS > 0 {
		target = s.sys.Eng.Now() + sim.Seconds(req.ByS)
	}
	err := s.sys.RunTo(target)
	reply := stateReply{Phase: s.sys.Phase().String(), NowS: s.sys.Eng.Now().Seconds()}
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// forkRequest names the what-if branches to run. A branch with no divergence
// is a baseline; a divergence is a scenario spec (docs/SNAPSHOT.md) anchored
// at the fork instant.
type forkRequest struct {
	Branches []forkBranch `json:"branches"`
}

type forkBranch struct {
	Name       string             `json:"name"`
	Divergence *core.ScenarioSpec `json:"divergence,omitempty"`
}

// forkReply summarises one completed branch.
type forkReply struct {
	Name        string  `json:"name"`
	ForkedAtS   float64 `json:"forked_at_s"`
	ResponseS   float64 `json:"response_s"`
	P50S        float64 `json:"p50_s"`
	P95S        float64 `json:"p95_s"`
	P99S        float64 `json:"p99_s"`
	Jobs        int     `json:"jobs"`
	JobsFailed  int     `json:"jobs_failed"`
	Fingerprint uint64  `json:"event_fingerprint"`
}

// handleFork snapshots the warm simulation and runs each requested branch to
// completion on its own restored copy — the served system is never disturbed.
// Branches run serially under the lock: the reply is deterministic, and the
// endpoint's job is reproducibility, not latency.
func (s *server) handleFork(w http.ResponseWriter, r *http.Request) {
	var req forkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Branches) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fork needs at least one branch"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := snapshot.Save(s.sys)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	forkedAt := s.sys.Eng.Now().Seconds()
	replies := make([]forkReply, 0, len(req.Branches))
	for _, b := range req.Branches {
		log := event.NewLog()
		sys, err := snapshot.Restore(data, log)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("branch %q: %w", b.Name, err))
			return
		}
		if b.Divergence != nil {
			sc, err := core.ScenarioFromSpec(*b.Divergence)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("branch %q: %w", b.Name, err))
				return
			}
			if err := sys.ApplyDivergence(sc); err != nil {
				writeError(w, http.StatusConflict, fmt.Errorf("branch %q: %w", b.Name, err))
				return
			}
		}
		res := sys.FinishWorkload()
		sum := metrics.Summarize(res.JobResponses)
		replies = append(replies, forkReply{
			Name:        b.Name,
			ForkedAtS:   forkedAt,
			ResponseS:   res.ResponseTime.Seconds(),
			P50S:        sum.P50.Seconds(),
			P95S:        sum.P95.Seconds(),
			P99S:        sum.P99.Seconds(),
			Jobs:        len(res.JobResponses),
			JobsFailed:  res.JobsFailed,
			Fingerprint: log.Fingerprint(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"branches": replies})
}

// sseEvent is the JSON shape of one event on the /events stream.
type sseEvent struct {
	TimeS    float64 `json:"time_s"`
	Type     string  `json:"type"`
	Node     int     `json:"node"`
	Site     string  `json:"site,omitempty"`
	Job      int     `json:"job"`
	Task     int     `json:"task"`
	Kind     string  `json:"kind,omitempty"`
	Locality int     `json:"locality"`
	Block    int64   `json:"block"`
	Value    int     `json:"value"`
	Detail   string  `json:"detail,omitempty"`
}

func toSSE(e event.Event) sseEvent {
	out := sseEvent{
		TimeS:    e.Time.Seconds(),
		Type:     e.Type.String(),
		Node:     int(e.Node),
		Site:     e.Site,
		Job:      e.Job,
		Task:     e.Task,
		Locality: int(e.Locality),
		Block:    e.Block,
		Value:    e.Value,
		Detail:   e.Detail,
	}
	if e.Type == event.TaskLaunched || e.Type == event.TaskFinished {
		out.Kind = e.Kind.String()
	}
	return out
}

// handleEvents streams the typed event bus as server-sent events: the replay
// ring first (so a fresh subscriber sees the warm-up history), then live
// events as /advance and /fork drive the clock.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	s.evmu.Lock()
	replay := make([]event.Event, len(s.ring))
	copy(replay, s.ring)
	ch := make(chan event.Event, 1024)
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.evmu.Unlock()
	defer func() {
		s.evmu.Lock()
		delete(s.subs, id)
		s.evmu.Unlock()
	}()

	emit := func(e event.Event) bool {
		data, err := json.Marshal(toSSE(e))
		if err != nil {
			return false
		}
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
		return err == nil
	}
	for _, e := range replay {
		if !emit(e) {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case e := <-ch:
			if !emit(e) {
				return
			}
			flusher.Flush()
		}
	}
}
