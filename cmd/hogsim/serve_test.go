package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/sim"
	"hog/internal/snapshot"
	"hog/internal/workload"
)

// testServer warms a small pool 10 minutes into a reduced workload.
func testServer(t *testing.T) *server {
	t.Helper()
	cfg := core.HOGConfig(60, grid.ChurnStable, 7)
	sched := workload.Generate(7, workload.Config{Scale: 0.05})
	srv, err := newServer(cfg, sched, 10*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestServeStateAndSnapshot(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	var state stateReply
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if state.Phase != "started" {
		t.Fatalf("phase = %q, want started", state.Phase)
	}
	if state.NowS < 600 {
		t.Fatalf("now = %.0f s, want >= warm-up 600 s", state.NowS)
	}
	if state.Census.Grid == nil || state.Census.Grid.Alive == 0 {
		t.Fatalf("census reports no live nodes: %+v", state.Census.Grid)
	}

	// The downloaded snapshot must restore into the same census.
	resp, err = http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /snapshot = %d: %s", resp.StatusCode, data)
	}
	restored, err := snapshot.Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Eng.Now().Seconds(); got != state.NowS {
		t.Fatalf("restored clock %.6f s, served clock %.6f s", got, state.NowS)
	}
}

func TestServeForkDeterministicBranches(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	outage := core.ScenarioSpec{
		Name: "outage",
		Steps: []core.StepSpec{
			{Verb: "site-outage", At: 30 * sim.Second, Site: "UCSDT2", Frac: 0.9},
		},
	}
	body, _ := json.Marshal(forkRequest{Branches: []forkBranch{
		{Name: "baseline"},
		{Name: "outage", Divergence: &outage},
	}})

	fork := func() []forkReply {
		resp, err := http.Post(ts.URL+"/fork", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /fork = %d: %s", resp.StatusCode, msg)
		}
		var reply struct {
			Branches []forkReply `json:"branches"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		return reply.Branches
	}

	first, second := fork(), fork()
	if len(first) != 2 {
		t.Fatalf("got %d branches, want 2", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("branch %q not deterministic across forks:\n%+v\n%+v",
				first[i].Name, first[i], second[i])
		}
	}
	if first[0].Fingerprint == first[1].Fingerprint {
		t.Fatalf("baseline and outage branches have identical event fingerprints %#x", first[0].Fingerprint)
	}

	// Forking must not disturb the served system.
	resp, err := http.Get(ts.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	var state stateReply
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if state.Phase != "started" {
		t.Fatalf("after forks the served system is %q, want started", state.Phase)
	}
}

func TestServeForkRejectsBadScenario(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	bad := core.ScenarioSpec{Name: "bad", Steps: []core.StepSpec{{Verb: "no-such-verb"}}}
	body, _ := json.Marshal(forkRequest{Branches: []forkBranch{{Name: "bad", Divergence: &bad}}})
	resp, err := http.Post(ts.URL+"/fork", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /fork with unknown verb = %d (%s), want 400", resp.StatusCode, msg)
	}
}

func TestServeEventsReplay(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// The warm-up ring replays immediately; read a few frames and check the
	// SSE shape without waiting for live traffic.
	sc := bufio.NewScanner(resp.Body)
	var events, data int
	for sc.Scan() && data < 5 {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			events++
		case strings.HasPrefix(line, "data: "):
			data++
			var e sseEvent
			if err := json.Unmarshal([]byte(line[len("data: "):]), &e); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			if e.Type == "" {
				t.Fatalf("SSE event with empty type: %q", line)
			}
		}
	}
	if events < 5 || data < 5 {
		t.Fatalf("replayed %d event lines / %d data lines, want >= 5 of each", events, data)
	}
}

// subscribeEvents opens an /events stream and reads until the replay ring
// has started flowing, proving the handler is registered and live.
func subscribeEvents(t *testing.T, ctx context.Context, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", url+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading first byte of /events: %v", err)
	}
	return resp
}

// waitSubscribers polls the subscriber count until it reaches want.
func waitSubscribers(t *testing.T, srv *server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.subscribers() != want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.subscribers(); got != want {
		t.Fatalf("subscribers = %d, want %d", got, want)
	}
}

func TestServeEventsClientReaped(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	resp := subscribeEvents(t, ctx, ts.URL)
	defer resp.Body.Close()
	waitSubscribers(t, srv, 1)

	// Drop the client. The handler must notice the dead connection and
	// deregister the subscriber instead of fanning out to it forever.
	cancel()
	waitSubscribers(t, srv, 0)
}

func TestServeShutdownDrainsSubscribers(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp := subscribeEvents(t, ctx, ts.URL)
	defer resp.Body.Close()
	waitSubscribers(t, srv, 1)

	// Graceful shutdown releases the stream from the server side: the
	// handler returns (the subscriber table empties) and the client sees
	// its stream end rather than hang.
	srv.close()
	waitSubscribers(t, srv, 0)
	if _, err := io.Copy(io.Discard, resp.Body); err != nil && err != io.EOF {
		t.Fatalf("drained stream ended with %v, want clean EOF", err)
	}
}
