// Command hogsim runs a single HOG (or dedicated-cluster) scenario with
// every knob on the command line and prints a result summary — the ad-hoc
// exploration companion to cmd/hogbench's fixed experiments.
//
// Examples:
//
//	hogsim -nodes 100 -churn stable -seed 1
//	hogsim -nodes 55 -churn unstable -zombie unfixed -plot
//	hogsim -cluster
//	hogsim -nodes 60 -repl 3 -site-aware=false -dead-timeout 900
package main

import (
	"flag"
	"fmt"
	"os"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/sim"
	"hog/internal/traceio"
	"hog/internal/workload"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 100, "HOG pool target size")
		churnName   = flag.String("churn", "stable", "grid churn: none|stable|unstable")
		seed        = flag.Int64("seed", 1, "simulation and workload seed")
		scale       = flag.Float64("scale", 1.0, "workload scale (1.0 = 88 jobs)")
		cluster     = flag.Bool("cluster", false, "run the Table III dedicated cluster instead of HOG")
		repl        = flag.Int("repl", 0, "override HDFS replication factor")
		siteAware   = flag.Bool("site-aware", true, "enable site-aware placement")
		deadTimeout = flag.Float64("dead-timeout", 0, "override dead timeout in seconds")
		zombieName  = flag.String("zombie", "fixed", "preempted daemon mode: fixed|unfixed|disk-check")
		copies      = flag.Int("copies", 0, "max task copies (future-work redundancy when > 2)")
		plot        = flag.Bool("plot", false, "print the node-availability plot")
		seriesCSV   = flag.String("series-csv", "", "write the node-availability series to this CSV file")
		schedCSV    = flag.String("sched", "", "replay a schedule CSV (from genworkload) instead of generating one")
	)
	flag.Parse()

	var cfg core.Config
	if *cluster {
		cfg = core.DedicatedClusterConfig(*seed)
	} else {
		churn, ok := map[string]grid.ChurnProfile{
			"none": grid.ChurnNone, "stable": grid.ChurnStable, "unstable": grid.ChurnUnstable,
		}[*churnName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown churn %q\n", *churnName)
			os.Exit(2)
		}
		cfg = core.HOGConfig(*nodes, churn, *seed)
		zombie, ok := map[string]core.ZombieMode{
			"fixed": core.ZombieFixed, "unfixed": core.ZombieUnfixed, "disk-check": core.ZombieDiskCheck,
		}[*zombieName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown zombie mode %q\n", *zombieName)
			os.Exit(2)
		}
		cfg.Zombie = zombie
	}
	if *repl > 0 {
		cfg.HDFS.Replication = *repl
	}
	cfg.HDFS.SiteAware = *siteAware
	if *deadTimeout > 0 {
		cfg.HDFS.DeadTimeout = sim.Seconds(*deadTimeout)
		cfg.MapRed.TrackerTimeout = sim.Seconds(*deadTimeout)
	}
	if *copies > 0 {
		cfg.MapRed.MaxTaskCopies = *copies
		cfg.MapRed.EagerRedundancy = *copies > 2
	}

	var sched *workload.Schedule
	if *schedCSV != "" {
		f, err := os.Open(*schedCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sched, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		sched = workload.Generate(*seed, workload.Config{Scale: *scale})
	}
	sys := core.New(cfg)
	res := sys.RunWorkload(sched)

	fmt.Printf("workload: %d jobs over %.0fs (scale %.2f, seed %d)\n",
		len(sched.Jobs), sched.Span().Seconds(), *scale, *seed)
	fmt.Printf("response time: %.0f s\n", res.ResponseTime.Seconds())
	fmt.Printf("jobs: %d ok, %d failed\n", len(res.JobResponses), res.JobsFailed)
	fmt.Printf("job responses: %v\n", res.Summary())
	fmt.Printf("map locality: %d node-local / %d site-local / %d remote\n",
		res.MapLocality[0], res.MapLocality[1], res.MapLocality[2])
	fmt.Printf("attempts: %d map (%d failed, %d spec), %d reduce (%d failed, %d spec), %d maps re-executed\n",
		res.Counters.MapAttemptsStarted, res.Counters.MapAttemptsFailed, res.Counters.SpeculativeMaps,
		res.Counters.ReduceAttemptsStarted, res.Counters.ReduceAttemptsFailed, res.Counters.SpeculativeReduces,
		res.Counters.MapsReExecuted)
	fmt.Printf("hdfs: %d blocks created, %d lost, %d re-replications (%.1f GB)\n",
		res.NN.BlocksCreated, res.NN.BlocksLost, res.NN.ReplicationsDone, res.NN.BytesReplicated/1e9)
	fmt.Printf("network: %.1f GB moved, %.1f GB cross-site\n",
		res.Net.BytesTotal/1e9, res.Net.BytesCrossSite/1e9)
	if !*cluster {
		fmt.Printf("pool: %d provisioned, %d preempted (%d batch), %d killed, area %.0f node-s\n",
			res.Pool.Provisioned, res.Pool.Preempted, res.Pool.BatchPreempted, res.Pool.Killed, res.Area)
	}
	// Per-bin breakdown: the paper bins jobs "to make it possible to compare
	// jobs in the same bin within and across experiments" (§IV.A).
	if len(res.JobResponses) > 0 {
		fmt.Println("per-bin response times:")
		fmt.Println("  bin  jobs  mean(s)  worst(s)")
		for _, bs := range workload.SummarizeByBin(res.JobBins, res.JobResponses) {
			fmt.Printf("  %3d  %4d  %7.0f  %8.0f\n",
				bs.Bin, bs.Jobs, bs.MeanResp.Seconds(), bs.WorstResp.Seconds())
		}
	}
	if *plot {
		fmt.Println()
		fmt.Print(res.Reported.ASCIIPlot(72, 10, res.Start, res.End))
	}
	if *seriesCSV != "" {
		f, err := os.Create(*seriesCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = traceio.WriteSeriesCSV(f, res.Reported)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("node series written to %s\n", *seriesCSV)
	}
}
