// Command hogsim runs a single HOG (or dedicated-cluster) scenario with
// every knob on the command line and prints a result summary — the ad-hoc
// exploration companion to cmd/hogbench's fixed experiments.
//
// Examples:
//
//	hogsim -nodes 100 -churn stable -seed 1
//	hogsim -nodes 55 -churn unstable -zombie unfixed -plot
//	hogsim -cluster
//	hogsim -nodes 60 -repl 3 -site-aware=false -dead-timeout 900
//
// Beyond the classic one-shot mode, two subcommands expose the snapshot
// subsystem (docs/SNAPSHOT.md):
//
//	hogsim -nodes 100 -snapshot-at 600 -snapshot-out snap.hog
//	    run normally, but save a mid-run snapshot 600 s into the workload
//	hogsim restore -in snap.hog
//	    restore a snapshot and run it to completion; the report is
//	    byte-identical to the uninterrupted run's
//	hogsim serve -nodes 100 -warm 600 -addr localhost:8080
//	    hold a warm simulation in memory behind an HTTP API: download
//	    snapshots, fork what-if branches, stream the event bus (SSE)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/sim"
	"hog/internal/snapshot"
	"hog/internal/traceio"
	"hog/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			os.Exit(serveMain(os.Args[2:]))
		case "restore":
			os.Exit(restoreMain(os.Args[2:]))
		}
	}
	os.Exit(simMain(os.Args[1:]))
}

// churnProfiles maps the -churn flag values shared by simMain and serveMain.
var churnProfiles = map[string]grid.ChurnProfile{
	"none": grid.ChurnNone, "stable": grid.ChurnStable, "unstable": grid.ChurnUnstable,
}

func simMain(args []string) int {
	fs := flag.NewFlagSet("hogsim", flag.ExitOnError)
	var (
		nodes       = fs.Int("nodes", 100, "HOG pool target size")
		churnName   = fs.String("churn", "stable", "grid churn: none|stable|unstable")
		seed        = fs.Int64("seed", 1, "simulation and workload seed")
		scale       = fs.Float64("scale", 1.0, "workload scale (1.0 = 88 jobs)")
		cluster     = fs.Bool("cluster", false, "run the Table III dedicated cluster instead of HOG")
		repl        = fs.Int("repl", 0, "override HDFS replication factor")
		siteAware   = fs.Bool("site-aware", true, "enable site-aware placement")
		deadTimeout = fs.Float64("dead-timeout", 0, "override dead timeout in seconds")
		zombieName  = fs.String("zombie", "fixed", "preempted daemon mode: fixed|unfixed|disk-check")
		copies      = fs.Int("copies", 0, "max task copies (future-work redundancy when > 2)")
		plot        = fs.Bool("plot", false, "print the node-availability plot")
		seriesCSV   = fs.String("series-csv", "", "write the node-availability series to this CSV file")
		schedCSV    = fs.String("sched", "", "replay a schedule CSV (from genworkload) instead of generating one")
		snapAt      = fs.Float64("snapshot-at", 0, "with -snapshot-out: save the snapshot this many seconds into the workload")
		snapOut     = fs.String("snapshot-out", "", "save a mid-run snapshot to this file (restore with: hogsim restore -in FILE)")
	)
	fs.Parse(args)

	var cfg core.Config
	if *cluster {
		cfg = core.DedicatedClusterConfig(*seed)
	} else {
		churn, ok := churnProfiles[*churnName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown churn %q\n", *churnName)
			return 2
		}
		cfg = core.HOGConfig(*nodes, churn, *seed)
		zombie, ok := map[string]core.ZombieMode{
			"fixed": core.ZombieFixed, "unfixed": core.ZombieUnfixed, "disk-check": core.ZombieDiskCheck,
		}[*zombieName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown zombie mode %q\n", *zombieName)
			return 2
		}
		cfg.Zombie = zombie
	}
	if *repl > 0 {
		cfg.HDFS.Replication = *repl
	}
	cfg.HDFS.SiteAware = *siteAware
	if *deadTimeout > 0 {
		cfg.HDFS.DeadTimeout = sim.Seconds(*deadTimeout)
		cfg.MapRed.TrackerTimeout = sim.Seconds(*deadTimeout)
	}
	if *copies > 0 {
		cfg.MapRed.MaxTaskCopies = *copies
		cfg.MapRed.EagerRedundancy = *copies > 2
	}

	var sched *workload.Schedule
	if *schedCSV != "" {
		f, err := os.Open(*schedCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		sched, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		sched = workload.Generate(*seed, workload.Config{Scale: *scale})
	}
	sys := core.New(cfg)

	var res *core.Result
	if *snapOut != "" {
		// Mid-run snapshot: run to the cut instant, save, then finish the
		// run as if nothing happened — RunTo never disturbs the event order,
		// so the report below is byte-identical to the uninterrupted run's
		// (and to `hogsim restore -in` on the saved file).
		if err := sys.StartWorkload(sched); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := sys.RunTo(sys.RunStart() + sim.Seconds(*snapAt)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		data, err := snapshot.Save(sys)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(*snapOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "snapshot: %d bytes at t=%.0f s -> %s\n",
			len(data), sys.Eng.Now().Seconds(), *snapOut)
		res = sys.FinishWorkload()
	} else {
		res = sys.RunWorkload(sched)
	}

	printReport(os.Stdout, sched, res, cfg.Grid != nil)
	if *plot {
		fmt.Println()
		fmt.Print(res.Reported.ASCIIPlot(72, 10, res.Start, res.End))
	}
	if *seriesCSV != "" {
		f, err := os.Create(*seriesCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		err = traceio.WriteSeriesCSV(f, res.Reported)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("node series written to %s\n", *seriesCSV)
	}
	return 0
}

// restoreMain implements `hogsim restore -in FILE`: restore a snapshot and
// run it to completion. Because restore replays the recipe deterministically,
// the report is byte-identical to the uninterrupted run's — CI cmps the two.
func restoreMain(args []string) int {
	fs := flag.NewFlagSet("hogsim restore", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file to restore (required)")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "hogsim restore: -in FILE is required")
		return 2
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	sys, err := snapshot.Restore(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if sys.Phase() != core.PhaseStarted {
		fmt.Fprintf(os.Stderr, "hogsim restore: snapshot holds a %v system with no workload in flight\n", sys.Phase())
		return 1
	}
	fmt.Fprintf(os.Stderr, "restored %s at t=%.0f s; running to completion\n", *in, sys.Eng.Now().Seconds())
	res := sys.FinishWorkload()
	printReport(os.Stdout, sys.RunSchedule(), res, sys.Config().Grid != nil)
	return 0
}

// printReport writes the classic hogsim summary. Everything here must be
// derivable from a restored snapshot alone (schedule, config, result), so
// `hogsim restore` output can be cmp'd against the uninterrupted run's.
func printReport(w io.Writer, sched *workload.Schedule, res *core.Result, pool bool) {
	fmt.Fprintf(w, "workload: %d jobs over %.0fs (seed %d)\n",
		len(sched.Jobs), sched.Span().Seconds(), sched.Seed)
	fmt.Fprintf(w, "response time: %.0f s\n", res.ResponseTime.Seconds())
	fmt.Fprintf(w, "jobs: %d ok, %d failed\n", len(res.JobResponses), res.JobsFailed)
	fmt.Fprintf(w, "job responses: %v\n", res.Summary())
	fmt.Fprintf(w, "map locality: %d node-local / %d site-local / %d remote\n",
		res.MapLocality[0], res.MapLocality[1], res.MapLocality[2])
	fmt.Fprintf(w, "attempts: %d map (%d failed, %d spec), %d reduce (%d failed, %d spec), %d maps re-executed\n",
		res.Counters.MapAttemptsStarted, res.Counters.MapAttemptsFailed, res.Counters.SpeculativeMaps,
		res.Counters.ReduceAttemptsStarted, res.Counters.ReduceAttemptsFailed, res.Counters.SpeculativeReduces,
		res.Counters.MapsReExecuted)
	fmt.Fprintf(w, "hdfs: %d blocks created, %d lost, %d re-replications (%.1f GB)\n",
		res.NN.BlocksCreated, res.NN.BlocksLost, res.NN.ReplicationsDone, res.NN.BytesReplicated/1e9)
	fmt.Fprintf(w, "network: %.1f GB moved, %.1f GB cross-site\n",
		res.Net.BytesTotal/1e9, res.Net.BytesCrossSite/1e9)
	if pool {
		fmt.Fprintf(w, "pool: %d provisioned, %d preempted (%d batch), %d killed, area %.0f node-s\n",
			res.Pool.Provisioned, res.Pool.Preempted, res.Pool.BatchPreempted, res.Pool.Killed, res.Area)
	}
	// Per-bin breakdown: the paper bins jobs "to make it possible to compare
	// jobs in the same bin within and across experiments" (§IV.A).
	if len(res.JobResponses) > 0 {
		fmt.Fprintln(w, "per-bin response times:")
		fmt.Fprintln(w, "  bin  jobs  mean(s)  worst(s)")
		for _, bs := range workload.SummarizeByBin(res.JobBins, res.JobResponses) {
			fmt.Fprintf(w, "  %3d  %4d  %7.0f  %8.0f\n",
				bs.Bin, bs.Jobs, bs.MeanResp.Seconds(), bs.WorstResp.Seconds())
		}
	}
}
