package hdfs

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"

	"hog/internal/netmodel"
)

// Census is a deterministic digest of namenode state, recorded in snapshots
// and re-checked after a deterministic replay: any field diverging means
// the replay did not reconstruct the filesystem the snapshot saw.
type Census struct {
	Datanodes     int     `json:"datanodes"`
	AliveNodes    int     `json:"alive_nodes"`
	Blocks        int     `json:"blocks"`
	Files         int     `json:"files"`
	NextBlock     BlockID `json:"next_block"`
	ReplQueue     int     `json:"repl_queue"`
	ReplStreams   int     `json:"repl_streams"`
	Down          bool    `json:"down"`
	SafeMode      bool    `json:"safe_mode"`
	PendingWrites int     `json:"pending_writes"`
	Stats         Stats   `json:"stats"`
	// Fault-injection state (corruption.go); zero — and omitted — fault-free,
	// so fault-free documents match builds that predate these faults.
	CorruptReplicas int    `json:"corrupt_replicas,omitempty"`
	GrayNodes       int    `json:"gray_nodes,omitempty"`
	HeldReplicas    int    `json:"held_replicas,omitempty"`
	Hash            uint64 `json:"hash"`
}

// Census digests the namenode's current state. The hash walks every
// datanode in the deterministic dnOrder (ID, liveness, replica count) and
// every block in ascending block-ID order (size, liveness flags, sorted
// replica set), so two namenodes agreeing on the counts but placing
// replicas differently still differ.
func (nn *Namenode) Census() Census {
	c := Census{
		Datanodes:     len(nn.datanodes),
		Blocks:        len(nn.blocks),
		Files:         len(nn.files),
		NextBlock:     nn.nextBlock,
		ReplQueue:     nn.replQueue.len(),
		ReplStreams:   nn.replStreams,
		Down:          nn.down,
		SafeMode:      nn.safeMode,
		PendingWrites: len(nn.pendingWrites),
		Stats:         nn.stats,
	}
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, d := range nn.dnOrder {
		if d.Alive {
			c.AliveNodes++
			put(1)
		} else {
			put(0)
		}
		put(uint64(d.ID))
		put(uint64(len(d.blocks)))
		// Fault state folds in only when present, so fault-free hashes match
		// builds that predate gray nodes and partition-heal recovery.
		if d.gray {
			c.GrayNodes++
			put(^uint64(0) - 1)
		}
		if len(d.held) > 0 {
			c.HeldReplicas += len(d.held)
			put(^uint64(0) - 2)
			put(uint64(len(d.held)))
		}
	}
	bids := make([]BlockID, 0, len(nn.blocks))
	for bid := range nn.blocks {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	reps := make([]netmodel.NodeID, 0, 16)
	for _, bid := range bids {
		blk := nn.blocks[bid]
		put(uint64(bid))
		put(math.Float64bits(blk.Size))
		flags := uint64(0)
		if blk.lost {
			flags |= 1
		}
		if blk.writing {
			flags |= 2
		}
		put(flags)
		reps = reps[:0]
		for id := range blk.replicas {
			reps = append(reps, id)
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
		for _, id := range reps {
			put(uint64(id))
		}
		put(uint64(len(blk.pending)))
		if len(blk.corrupt) > 0 {
			c.CorruptReplicas += len(blk.corrupt)
			put(^uint64(0) - 3)
			reps = reps[:0]
			for id := range blk.corrupt {
				reps = append(reps, id)
			}
			sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
			for _, id := range reps {
				put(uint64(id))
			}
		}
	}
	c.Hash = h.Sum64()
	return c
}
