package hdfs

import (
	"fmt"
	"sort"

	"hog/internal/netmodel"
)

// CreateFile allocates the namespace entry and block list for a file of the
// given size. repl <= 0 uses the configured default. Blocks have no replicas
// until written (WriteFile) or seeded (SeedFile).
func (nn *Namenode) CreateFile(name string, size float64, repl int) *FileInfo {
	if _, ok := nn.files[name]; ok {
		panic(fmt.Sprintf("hdfs: file %q already exists", name))
	}
	if repl <= 0 {
		repl = nn.cfg.Replication
	}
	f := &FileInfo{Name: name, Size: size, Replication: repl}
	for remaining := size; remaining > 0; remaining -= nn.cfg.BlockSize {
		bs := nn.cfg.BlockSize
		if remaining < bs {
			bs = remaining
		}
		b := &BlockInfo{
			ID:       nn.nextBlock,
			File:     name,
			Size:     bs,
			replicas: make(map[netmodel.NodeID]struct{}),
			pending:  make(map[netmodel.NodeID]struct{}),
		}
		nn.nextBlock++
		nn.blocks[b.ID] = b
		nn.stats.BlocksCreated++
		f.Blocks = append(f.Blocks, b.ID)
	}
	if nn.safeMode {
		// Blocks born during safe mode count toward the exit threshold's
		// denominator (they have no replicas yet, so not the numerator).
		nn.smTotal += len(f.Blocks)
	}
	nn.files[name] = f
	return f
}

// SeedFile creates a file and instantly places its replicas, charging disk
// space but consuming no simulated time. The paper stages input data before
// starting the workload clock ("Then, we start to upload input data and
// execute the evaluation workload"); SeedFile models the already-uploaded
// state.
func (nn *Namenode) SeedFile(name string, size float64, repl int) *FileInfo {
	f := nn.CreateFile(name, size, repl)
	for _, bid := range f.Blocks {
		b := nn.blocks[bid]
		targets := nn.chooseTargets(-1, b.Size, f.Replication, nil)
		for _, tid := range targets {
			if nn.disk.Reserve(tid, b.Size) {
				nn.addReplica(b, tid)
			}
		}
		if len(b.replicas) < f.Replication {
			nn.queueReplication(bid)
		}
	}
	nn.pumpReplication()
	return f
}

// DeleteFile removes a file, releasing the disk space of all its replicas.
func (nn *Namenode) DeleteFile(name string) {
	f, ok := nn.files[name]
	if !ok {
		return
	}
	for _, bid := range f.Blocks {
		b := nn.blocks[bid]
		if nn.down || nn.safeMode || nn.awaiting > 0 {
			// While degraded, the replica map understates reality: copies can
			// sit on datanodes the restarted namenode has not heard from yet
			// (or, while down, on every former holder). Reclaim the space by
			// physical inventory instead, so deletion never leaks disk and a
			// later block report cannot resurrect a deleted block.
			for _, d := range nn.dnOrder {
				if _, held := d.blocks[bid]; held {
					delete(d.blocks, bid)
					nn.disk.Release(d.ID, b.Size)
				}
			}
			ids := make([]netmodel.NodeID, 0, len(b.replicas))
			for id := range b.replicas {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				nn.dropReplica(b, id)
			}
			if nn.safeMode && !b.lost && !b.writing {
				nn.smTotal-- // dropReplica above settled smReported
			}
			delete(nn.replQueued, bid)
			nn.forgetCorrupt(b)
			delete(nn.blocks, bid)
			continue
		}
		// Sort before dropping so the placement hook fires in a
		// deterministic order (as markDead does for its victims).
		ids := make([]netmodel.NodeID, 0, len(b.replicas))
		for id := range b.replicas {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if d, ok := nn.datanodes[id]; ok {
				delete(d.blocks, bid)
			}
			nn.disk.Release(id, b.Size)
			nn.dropReplica(b, id)
		}
		delete(nn.replQueued, bid)
		nn.forgetCorrupt(b)
		delete(nn.blocks, bid)
	}
	delete(nn.files, name)
}

func (nn *Namenode) addReplica(b *BlockInfo, id netmodel.NodeID) {
	d, ok := nn.datanodes[id]
	if !ok || !d.Alive {
		return
	}
	if nn.down {
		// The master is gone: the copy lands physically on the datanode, but
		// no namenode soft state records it. A post-restart block report
		// reconciles the two views.
		d.blocks[b.ID] = struct{}{}
		return
	}
	_, had := b.replicas[id]
	if nn.safeMode && !b.writing && !had && len(b.replicas) == 0 {
		if b.lost {
			// A block written off before the crash resurfaces: it joins the
			// threshold's denominator along with its report.
			nn.smTotal++
		}
		nn.smReported++
	}
	b.replicas[id] = struct{}{}
	b.lost = false
	d.blocks[b.ID] = struct{}{}
	if !had && nn.OnPlacementChange != nil {
		nn.OnPlacementChange(b.ID, id, true)
	}
}

// finishWrite marks a block's client write pipeline complete. A pipeline
// started before a crash can finish while the restarted namenode is still
// rebuilding; the block then joins the safe-mode accounting it was excluded
// from while writing.
func (nn *Namenode) finishWrite(b *BlockInfo) {
	if !b.writing {
		return
	}
	b.writing = false
	if nn.safeMode && !b.lost {
		nn.smTotal++
		if len(b.replicas) > 0 {
			nn.smReported++
		}
	}
}

// dropReplica removes the block->node replica record and fires the placement
// hook. Callers own the datanode-side bookkeeping (d.blocks) and the disk
// accounting, which differ per removal path.
func (nn *Namenode) dropReplica(b *BlockInfo, id netmodel.NodeID) {
	if _, ok := b.replicas[id]; !ok {
		return
	}
	delete(b.replicas, id)
	if nn.safeMode && !b.writing && len(b.replicas) == 0 {
		nn.smReported--
	}
	if nn.OnPlacementChange != nil {
		nn.OnPlacementChange(b.ID, id, false)
	}
}

// WriteFile writes a file of the given size from the node writer: each block
// is replicated through a write pipeline (writer -> t1 -> t2 -> ...), blocks
// written sequentially as HDFS clients do. done receives the number of block
// replicas that could not be materialised (0 means a fully replicated file).
// Under-replicated blocks are queued for background recovery.
//
// While the namenode is crashed or in safe mode the write is queued and
// performed when normal service resumes — safe mode serves reads of reported
// blocks but refuses namespace mutations, like Hadoop's.
func (nn *Namenode) WriteFile(writer netmodel.NodeID, name string, size float64, repl int, done func(skipped int)) {
	if nn.down || nn.safeMode {
		nn.pendingWrites = append(nn.pendingWrites, func() {
			nn.writeFileNow(writer, name, size, repl, done)
		})
		return
	}
	nn.writeFileNow(writer, name, size, repl, done)
}

func (nn *Namenode) writeFileNow(writer netmodel.NodeID, name string, size float64, repl int, done func(skipped int)) {
	f := nn.CreateFile(name, size, repl)
	// Blocks await their turn in the sequential pipeline; until a block's
	// write finishes, its zero-replica state is in-progress, not stranded.
	for _, bid := range f.Blocks {
		nn.blocks[bid].writing = true
	}
	skipped := 0
	var writeBlock func(i int)
	writeBlock = func(i int) {
		if i >= len(f.Blocks) {
			if done != nil {
				done(skipped)
			}
			return
		}
		b := nn.blocks[f.Blocks[i]]
		if b == nil {
			// The file was deleted mid-write (e.g. a losing speculative
			// attempt was torn down); abandon the rest quietly.
			return
		}
		targets := nn.chooseTargets(writer, b.Size, f.Replication, nil)
		skipped += f.Replication - len(targets)
		if len(targets) == 0 {
			nn.finishWrite(b)
			nn.queueReplication(b.ID)
			writeBlock(i + 1)
			return
		}
		// Reserve space up front; a target that cannot hold the block is
		// dropped from the pipeline, and a target the previous hop cannot
		// reach (a partition landed between placement and pipeline setup) is
		// dropped the same way — Hadoop's pipeline recovery: close the chain
		// around the bad node and continue with the survivors.
		var pipeline []netmodel.NodeID
		prevHop := writer
		for _, tid := range targets {
			if !nn.net.Reachable(prevHop, tid) {
				skipped++
				nn.stats.WriteReplicasSkipped++
				nn.recoverPipelineHop(b.ID, tid)
				continue
			}
			if nn.disk.Reserve(tid, b.Size) {
				pipeline = append(pipeline, tid)
				prevHop = tid
			} else {
				skipped++
				nn.stats.WriteReplicasSkipped++
			}
		}
		if len(pipeline) == 0 {
			nn.finishWrite(b)
			nn.queueReplication(b.ID)
			writeBlock(i + 1)
			return
		}
		// The pipeline streams: writer->t1 overlaps t1->t2, so the block is
		// durable when the slowest hop finishes. Hops run as concurrent
		// flows; completion is the last hop's completion.
		remainingHops := 0
		hopDone := func(tid netmodel.NodeID) func() {
			return func() {
				if _, exists := nn.blocks[b.ID]; !exists {
					// File deleted mid-write; give the space back.
					nn.disk.Release(tid, b.Size)
					return
				}
				d, ok := nn.datanodes[tid]
				switch {
				case ok && d.Alive && !d.gray && nn.net.MasterReachable(tid):
					nn.addReplica(b, tid)
				case ok && d.Alive:
					// The hop went gray or was partitioned mid-write: its ack
					// cannot reach (or cannot be trusted by) the namenode, so
					// the replica is not committed — pipeline recovery drops
					// the hop and the block re-replicates in the background.
					nn.disk.Release(tid, b.Size)
					skipped++
					nn.stats.WriteReplicasSkipped++
					nn.recoverPipelineHop(b.ID, tid)
				default:
					nn.disk.Release(tid, b.Size)
					skipped++
					nn.stats.WriteReplicasSkipped++
				}
				remainingHops--
				if remainingHops == 0 {
					nn.finishWrite(b)
					if len(b.replicas) < f.Replication {
						nn.queueReplication(b.ID)
						nn.pumpReplication()
					}
					writeBlock(i + 1)
				}
			}
		}
		// Batch the hop starts: only the writer-local disk hop joins the
		// network synchronously (network hops join after their propagation
		// latency, in their own events), so today this coalesces that one
		// join with the start bookkeeping — and keeps the pipeline start at
		// one rebalance if zero-latency hops are ever added.
		prev := writer
		nn.net.Batch(func() {
			for _, tid := range pipeline {
				remainingHops++
				if prev == tid {
					nn.net.StartDiskIO(tid, b.Size, hopDone(tid))
				} else {
					nn.net.StartFlow(prev, tid, b.Size, hopDone(tid))
				}
				prev = tid
			}
		})
	}
	writeBlock(0)
}

// ReadSource picks the best replica of a block for a reader: the reader's
// own disk, then a replica in the reader's site, then any replica (the map
// scheduler's locality levels reuse this order). ok is false when the block
// has no live replicas.
func (nn *Namenode) ReadSource(reader netmodel.NodeID, bid BlockID) (src netmodel.NodeID, local bool, ok bool) {
	b := nn.blocks[bid]
	if b == nil || len(b.replicas) == 0 {
		return 0, false, false
	}
	if _, here := b.replicas[reader]; here {
		return reader, true, true
	}
	readerSite := ""
	if d, okd := nn.datanodes[reader]; okd {
		readerSite = d.Site
	}
	var sameSite, any []netmodel.NodeID
	for id := range b.replicas {
		d := nn.datanodes[id]
		if d == nil || !d.Alive {
			continue
		}
		if !nn.net.Reachable(id, reader) {
			// A partition severs the replica from this reader; other readers
			// (same side of the cut) may still use it.
			continue
		}
		any = append(any, id)
		if readerSite != "" && d.Site == readerSite {
			sameSite = append(sameSite, id)
		}
	}
	// Sort before the random pick: the candidates came from map iteration,
	// and determinism requires a stable order under the seeded RNG.
	pick := func(ids []netmodel.NodeID) netmodel.NodeID {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids[nn.eng.Rand().Intn(len(ids))]
	}
	if len(sameSite) > 0 {
		return pick(sameSite), false, true
	}
	if len(any) > 0 {
		return pick(any), false, true
	}
	return 0, false, false
}

// ReadBlock transfers a block to the reader with checksum verification,
// replica failover, and capped exponential backoff; see corruption.go.
