package hdfs_test

// The placement invariants property lives in internal/audit as
// CheckSeededFilePlacement so the unit test here and the chaos runner in
// internal/experiments enforce the same contract. This external test file
// builds the namenode through the exported API only — exactly what the
// audit package sees.

import (
	"testing"
	"testing/quick"

	"hog/internal/audit"
	"hog/internal/disk"
	"hog/internal/hdfs"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// Property: a freshly seeded file satisfies every placement invariant — full
// replication on distinct alive nodes, and cross-site spread whenever the
// replication factor allows it — for any factor in [1,10] and any seed.
func TestPlacementInvariantsProperty(t *testing.T) {
	domains := []string{"fnal.gov", "wc1-fnal.gov", "ucsd.edu", "aglt2.org", "mit.edu"}
	f := func(replRaw, seedRaw uint8) bool {
		repl := int(replRaw)%10 + 1
		eng := sim.New(int64(seedRaw) + 100)
		net := netmodel.New(eng, netmodel.Config{})
		dt := disk.NewTracker()
		nn := hdfs.NewNamenode(eng, net, dt, hdfs.Config{Replication: repl, SiteAware: true})
		for _, dom := range domains {
			sid := net.AddSite(dom, 300e6, 300e6)
			for i := 0; i < 3; i++ {
				id := net.AddNode(sid, "wn."+dom)
				dt.SetCapacity(id, 10e9)
				nn.Register(id, "wn."+dom)
			}
		}
		nn.Start()
		nn.SeedFile("/p", hdfs.DefaultBlockSize, repl)
		if err := audit.CheckSeededFilePlacement(nn, "/p"); err != nil {
			t.Logf("repl=%d seed=%d: %v", repl, seedRaw, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
