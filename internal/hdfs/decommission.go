package hdfs

import "hog/internal/netmodel"

// Decommission gracefully retires a datanode: its replicas are first copied
// elsewhere, and done is invoked once the node holds no block whose
// replication would drop below target without it. This is how an elastic
// HOG pool should shrink without churning the replication monitor (paper
// §VI: "To shrink and grow HOG, we need to consider how the data blocks
// will be moved and replicated").
//
// The node keeps serving reads while draining. Preemption during a drain is
// handled by the normal dead-node path.
func (nn *Namenode) Decommission(id netmodel.NodeID, done func()) {
	d, ok := nn.datanodes[id]
	if !ok || !d.Alive {
		if done != nil {
			done()
		}
		return
	}
	if nn.decommissioning == nil {
		nn.decommissioning = make(map[netmodel.NodeID]func())
	}
	nn.decommissioning[id] = done
	// Queue every hosted block for an extra copy. The placement policy
	// excludes decommissioning nodes from new targets, so the copies land
	// elsewhere.
	bids := make([]BlockID, 0, len(d.blocks))
	for bid := range d.blocks {
		bids = append(bids, bid)
	}
	sortBlockIDs(bids)
	for _, bid := range bids {
		nn.queueReplication(bid)
	}
	nn.pumpReplication()
	nn.checkDecommission(id)
}

// Decommissioning reports whether the node is draining.
func (nn *Namenode) Decommissioning(id netmodel.NodeID) bool {
	_, ok := nn.decommissioning[id]
	return ok
}

// checkDecommission completes a drain when every block on the node has
// enough replicas elsewhere.
func (nn *Namenode) checkDecommission(id netmodel.NodeID) {
	done, ok := nn.decommissioning[id]
	if !ok {
		return
	}
	d := nn.datanodes[id]
	if d == nil {
		delete(nn.decommissioning, id)
		return
	}
	for bid := range d.blocks {
		b := nn.blocks[bid]
		if b == nil {
			continue
		}
		// Count replicas excluding this node.
		others := len(b.replicas)
		if _, here := b.replicas[id]; here {
			others--
		}
		if others < nn.targetReplication(b) {
			return // still needed
		}
	}
	// Fully drained: drop its replicas (space is reclaimed by the caller
	// shutting the node down) and finish.
	bids := make([]BlockID, 0, len(d.blocks))
	for bid := range d.blocks {
		bids = append(bids, bid)
	}
	sortBlockIDs(bids)
	for _, bid := range bids {
		b := nn.blocks[bid]
		if b == nil {
			continue
		}
		nn.dropReplica(b, id)
		nn.disk.Release(id, b.Size)
	}
	d.blocks = make(map[BlockID]struct{})
	delete(nn.decommissioning, id)
	if done != nil {
		done()
	}
}

func sortBlockIDs(bids []BlockID) {
	for i := 1; i < len(bids); i++ {
		for j := i; j > 0 && bids[j] < bids[j-1]; j-- {
			bids[j], bids[j-1] = bids[j-1], bids[j]
		}
	}
}
