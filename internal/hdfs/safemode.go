package hdfs

import (
	"sort"

	"hog/internal/event"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// This file models namenode failure and recovery (docs/FAULTS.md). The
// namenode's soft state — the block→replica map, the recovery queue, the
// in-flight stream set — is exactly what a real namenode holds only in RAM;
// the namespace (files, block lists, sizes) is what it journals to disk.
// Crash drops the former and keeps the latter. Restart enters safe mode and
// rebuilds the replica map from datanode block reports (Reregister), leaving
// safe mode when a configurable fraction of known blocks has at least one
// reported replica (or on timeout). Replication, balancing, and writes are
// deferred while degraded; reads of reported blocks keep working.

// Crash drops the namenode's soft state: every in-flight replication stream
// is abandoned, the recovery queue is cleared, decommission drains are
// forgotten (their completion callbacks never fire), and the replica map
// empties. Physical state survives — datanodes keep their blocks and disk
// reservations — which is precisely what block reports reconcile later.
func (nn *Namenode) Crash() {
	if nn.down {
		return
	}
	nn.down = true
	// A crash while still rebuilding from an earlier crash abandons that
	// safe-mode pass; the next Restart starts a fresh one.
	nn.safeMode = false
	if nn.safeTimer != nil {
		nn.safeTimer.Cancel()
		nn.safeTimer = nil
	}
	nn.smTotal, nn.smReported = 0, 0
	nn.Stop()

	// Abandon in-flight replication streams. The copy's destination space is
	// returned: the partial copy is garbage without a namenode to commit it.
	streams := make([]*replStream, 0, len(nn.streams))
	for st := range nn.streams {
		streams = append(streams, st)
	}
	sort.Slice(streams, func(i, j int) bool {
		if streams[i].bid != streams[j].bid {
			return streams[i].bid < streams[j].bid
		}
		if streams[i].dst != streams[j].dst {
			return streams[i].dst < streams[j].dst
		}
		return streams[i].src < streams[j].src
	})
	for _, st := range streams {
		st.flow.Cancel()
		delete(nn.streams, st)
		nn.replStreams--
		if b := nn.blocks[st.bid]; b != nil {
			delete(b.pending, st.dst)
			nn.disk.Release(st.dst, b.Size)
		}
	}
	nn.replQueue = blockRing{}
	nn.replQueued = make(map[BlockID]struct{})
	nn.decommissioning = nil

	// Empty the replica map in deterministic order so the placement hook
	// (the MapReduce scheduler index) sees a well-defined removal sequence.
	bids := make([]BlockID, 0, len(nn.blocks))
	for bid := range nn.blocks {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	for _, bid := range bids {
		b := nn.blocks[bid]
		ids := make([]netmodel.NodeID, 0, len(b.replicas))
		for id := range b.replicas {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			nn.dropReplica(b, id)
		}
	}
	if nn.Events.Active() {
		ev := event.At(event.MasterCrashed, nn.eng.Now())
		ev.Detail = "namenode"
		nn.Events.Emit(ev)
	}
}

// Restart brings a crashed namenode back in safe mode: every live datanode
// owes a block report, and normal service (replication, balancing, writes)
// resumes only once SafeModeThreshold of the known blocks have at least one
// reported replica — or after SafeModeTimeout, whichever comes first.
func (nn *Namenode) Restart() {
	if !nn.down {
		return
	}
	now := nn.eng.Now()
	nn.down = false
	nn.safeMode = true
	nn.safeModeSince = now
	nn.awaiting = 0
	for _, d := range nn.dnOrder {
		d.awaitingReport = false
		if d.Alive {
			d.awaitingReport = true
			nn.awaiting++
			// Grace-stamp so the dead scan, once it resumes, measures from
			// the restart rather than charging nodes for the outage.
			d.LastHeartbeat = now
		}
	}
	nn.smTotal, nn.smReported = 0, 0
	for _, b := range nn.blocks {
		// A block still being written cannot be fully reported — it joins
		// the accounting when its write pipeline finishes.
		if b.lost || b.writing {
			continue
		}
		nn.smTotal++
		if len(b.replicas) > 0 {
			nn.smReported++
		}
	}
	if nn.Events.Active() {
		ev := event.At(event.MasterRecovered, now)
		ev.Detail = "namenode"
		nn.Events.Emit(ev)
		ev = event.At(event.SafeModeEntered, now)
		ev.Value = nn.smTotal
		nn.Events.Emit(ev)
	}
	nn.safeTimer = nn.eng.After(nn.cfg.SafeModeTimeout, func() {
		nn.safeTimer = nil
		nn.exitSafeMode()
	})
	nn.maybeExitSafeMode()
}

// Reregister is a datanode's block report to a restarted namenode: the full
// list of blocks it physically holds, from which the replica map is rebuilt.
// It also counts as a heartbeat. Late reports (after safe mode already
// exited) are still accepted and any replicas the exit sweep scheduled on
// top are tolerated as over-replication.
func (nn *Namenode) Reregister(id netmodel.NodeID) {
	if nn.down {
		return
	}
	d := nn.datanodes[id]
	if d == nil || !d.Alive {
		return
	}
	d.LastHeartbeat = nn.eng.Now()
	nn.clearAwaiting(d)
	bids := make([]BlockID, 0, len(d.blocks))
	for bid := range d.blocks {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	for _, bid := range bids {
		b := nn.blocks[bid]
		if b == nil {
			// The file was deleted while this node was out of touch; the
			// degraded DeleteFile path reclaims space by physical scan, so
			// a stale entry here holds no reservation.
			delete(d.blocks, bid)
			continue
		}
		nn.addReplica(b, id)
	}
	if nn.safeMode {
		nn.maybeExitSafeMode()
		return
	}
	// Late report: top up anything the exit sweep could not cover.
	for _, bid := range bids {
		if b := nn.blocks[bid]; b != nil && len(b.replicas)+len(b.pending) < nn.targetReplication(b) {
			nn.queueReplication(bid)
		}
	}
	nn.pumpReplication()
}

func (nn *Namenode) clearAwaiting(d *DatanodeInfo) {
	if d.awaitingReport {
		d.awaitingReport = false
		nn.awaiting--
	}
}

func (nn *Namenode) maybeExitSafeMode() {
	if !nn.safeMode {
		return
	}
	if nn.smTotal == 0 || float64(nn.smReported) >= nn.cfg.SafeModeThreshold*float64(nn.smTotal) {
		nn.exitSafeMode()
	}
}

// exitSafeMode resumes normal service: unreported blocks whose holders might
// still report are deferred, unreported blocks with no possible holder are
// declared lost, under-replicated blocks are queued, the dead scan restarts,
// and writes queued while degraded are performed.
func (nn *Namenode) exitSafeMode() {
	if !nn.safeMode {
		return
	}
	nn.safeMode = false
	if nn.safeTimer != nil {
		nn.safeTimer.Cancel()
		nn.safeTimer = nil
	}
	reported := nn.smReported
	// Live nodes that never reported get a fresh heartbeat stamp (they are
	// given the full dead timeout to show up) and their physical inventory
	// defers loss declarations for the blocks only they still hold.
	deferred := make(map[BlockID]struct{})
	now := nn.eng.Now()
	for _, d := range nn.dnOrder {
		if d.Alive && d.awaitingReport {
			d.LastHeartbeat = now
			for bid := range d.blocks {
				deferred[bid] = struct{}{}
			}
		}
	}
	bids := make([]BlockID, 0, len(nn.blocks))
	for bid := range nn.blocks {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	for _, bid := range bids {
		b := nn.blocks[bid]
		// In-progress writes look unreplicated but are not: their pipeline
		// queues its own recovery when it finishes.
		if b.lost || b.writing {
			continue
		}
		n := len(b.replicas) + len(b.pending)
		if n == 0 {
			if _, held := deferred[bid]; !held {
				nn.loseBlock(b)
			}
			continue
		}
		if n < nn.targetReplication(b) {
			nn.queueReplication(bid)
		}
	}
	nn.Start()
	if nn.Events.Active() {
		ev := event.At(event.SafeModeExited, now)
		ev.Value = reported
		nn.Events.Emit(ev)
	}
	writes := nn.pendingWrites
	nn.pendingWrites = nil
	for _, w := range writes {
		w()
	}
	nn.pumpReplication()
}

// Down reports whether the namenode is crashed.
func (nn *Namenode) Down() bool { return nn.down }

// InSafeMode reports whether the namenode is rebuilding from block reports.
func (nn *Namenode) InSafeMode() bool { return nn.safeMode }

// Degraded reports whether the namenode is crashed or in safe mode — the
// states in which clients should back off and retry rather than treat
// missing replicas as data loss.
func (nn *Namenode) Degraded() bool { return nn.down || nn.safeMode }

// SafeModeSince returns when the current (or last) safe-mode pass began.
func (nn *Namenode) SafeModeSince() sim.Time { return nn.safeModeSince }

// ForEachBlock visits every known block in ascending ID order — the
// deterministic iteration the audit sweep needs.
func (nn *Namenode) ForEachBlock(fn func(*BlockInfo)) {
	bids := make([]BlockID, 0, len(nn.blocks))
	for bid := range nn.blocks {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	for _, bid := range bids {
		fn(nn.blocks[bid])
	}
}
