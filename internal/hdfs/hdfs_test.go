package hdfs

import (
	"fmt"
	"testing"
	"testing/quick"

	"hog/internal/disk"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// harness bundles a namenode over a 5-site network with nodesPerSite
// registered datanodes of 10 GB each.
type harness struct {
	eng  *sim.Engine
	net  *netmodel.Network
	dt   *disk.Tracker
	nn   *Namenode
	all  []netmodel.NodeID
	site map[netmodel.NodeID]string
}

var testDomains = []string{"fnal.gov", "wc1-fnal.gov", "ucsd.edu", "aglt2.org", "mit.edu"}

func newHarness(t *testing.T, seed int64, nodesPerSite int, cfg Config) *harness {
	t.Helper()
	h := &harness{
		eng:  sim.New(seed),
		site: make(map[netmodel.NodeID]string),
	}
	h.net = netmodel.New(h.eng, netmodel.Config{})
	h.dt = disk.NewTracker()
	h.nn = NewNamenode(h.eng, h.net, h.dt, cfg)
	for _, dom := range testDomains {
		sid := h.net.AddSite(dom, 300e6, 300e6)
		for i := 0; i < nodesPerSite; i++ {
			host := "wn." + dom
			id := h.net.AddNode(sid, host)
			h.dt.SetCapacity(id, 10e9)
			h.nn.Register(id, host)
			h.all = append(h.all, id)
			h.site[id] = dom
		}
	}
	h.nn.Start()
	return h
}

// heartbeatAll keeps every currently-alive datanode fresh via a ticker.
func (h *harness) heartbeatAll(except map[netmodel.NodeID]bool) *sim.Ticker {
	return h.eng.Every(3*sim.Second, func() {
		for _, id := range h.all {
			if except == nil || !except[id] {
				h.nn.Heartbeat(id)
			}
		}
	})
}

func TestSeedFilePlacesReplicas(t *testing.T) {
	h := newHarness(t, 1, 4, Config{Replication: 3})
	f := h.nn.SeedFile("/in/f1", 5*DefaultBlockSize, 0)
	if len(f.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(f.Blocks))
	}
	for _, bid := range f.Blocks {
		b := h.nn.Block(bid)
		if b.NumReplicas() != 3 {
			t.Fatalf("block %d has %d replicas, want 3", bid, b.NumReplicas())
		}
	}
}

func TestSeedFilePartialBlock(t *testing.T) {
	h := newHarness(t, 1, 2, Config{})
	f := h.nn.SeedFile("/in/small", 1.5*DefaultBlockSize, 3)
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(f.Blocks))
	}
	if got := h.nn.Block(f.Blocks[1]).Size; got != 0.5*DefaultBlockSize {
		t.Fatalf("tail block size = %.0f, want half block", got)
	}
}

func TestSiteAwareSpreadsAcrossSites(t *testing.T) {
	h := newHarness(t, 2, 4, Config{Replication: 10, SiteAware: true})
	f := h.nn.SeedFile("/in/spread", DefaultBlockSize, 10)
	b := h.nn.Block(f.Blocks[0])
	if b.NumReplicas() != 10 {
		t.Fatalf("replicas = %d, want 10", b.NumReplicas())
	}
	sites := h.nn.SitesOf(b)
	if len(sites) != 5 {
		t.Fatalf("10 replicas cover %d sites (%v), want all 5", len(sites), sites)
	}
	// Per-site balance: 10 replicas over 5 sites = exactly 2 each.
	perSite := map[string]int{}
	for _, id := range b.Replicas() {
		perSite[h.site[id]]++
	}
	for s, c := range perSite {
		if c != 2 {
			t.Fatalf("site %s has %d replicas, want 2 (%v)", s, c, perSite)
		}
	}
}

func TestSiteAwareMinimumTwoSites(t *testing.T) {
	h := newHarness(t, 3, 4, Config{Replication: 2, SiteAware: true})
	for i := 0; i < 10; i++ {
		f := h.nn.SeedFile("/in/two"+string(rune('a'+i)), DefaultBlockSize, 2)
		b := h.nn.Block(f.Blocks[0])
		if sites := h.nn.SitesOf(b); len(sites) < 2 {
			t.Fatalf("2 replicas on %d sites, want 2 (site failure domain)", len(sites))
		}
	}
}

func TestWriteFilePipelineAndLocality(t *testing.T) {
	h := newHarness(t, 4, 4, Config{Replication: 3, SiteAware: true})
	tk := h.heartbeatAll(nil)
	defer tk.Stop()
	writer := h.all[0]
	doneSkipped := -1
	h.nn.WriteFile(writer, "/out/r1", 2*DefaultBlockSize, 3, func(sk int) { doneSkipped = sk })
	h.eng.RunUntil(10 * sim.Minute)
	if doneSkipped != 0 {
		t.Fatalf("write skipped %d replicas, want 0", doneSkipped)
	}
	f := h.nn.File("/out/r1")
	for _, bid := range f.Blocks {
		b := h.nn.Block(bid)
		if b.NumReplicas() != 3 {
			t.Fatalf("block %d replicas = %d, want 3", bid, b.NumReplicas())
		}
		if _, onWriter := b.replicas[writer]; !onWriter {
			t.Fatal("first replica should land on the writing node")
		}
	}
	// Disk accounting: writer holds 2 blocks.
	if got := h.dt.Used(writer); got != 2*DefaultBlockSize {
		t.Fatalf("writer disk used = %.0f, want 2 blocks", got)
	}
}

func TestWriteFileTakesTime(t *testing.T) {
	h := newHarness(t, 5, 4, Config{Replication: 3})
	tk := h.heartbeatAll(nil)
	defer tk.Stop()
	var doneAt sim.Time
	h.nn.WriteFile(h.all[0], "/out/timed", DefaultBlockSize, 3, func(int) { doneAt = h.eng.Now() })
	h.eng.RunUntil(10 * sim.Minute)
	if doneAt == 0 {
		t.Fatal("write never completed")
	}
	// 64 MB over at least one WAN hop (10 MB/s default flow cap on 12.5)
	// must take seconds, not microseconds.
	if doneAt < sim.Second {
		t.Fatalf("write completed at %v, implausibly fast", doneAt)
	}
}

func TestReadSourceLocalityOrder(t *testing.T) {
	h := newHarness(t, 6, 4, Config{Replication: 3, SiteAware: true})
	f := h.nn.SeedFile("/in/read", DefaultBlockSize, 3)
	b := h.nn.Block(f.Blocks[0])
	reps := b.Replicas()
	// Reader = a replica holder: local.
	if src, local, ok := h.nn.ReadSource(reps[0], b.ID); !ok || !local || src != reps[0] {
		t.Fatalf("local read not detected: src=%d local=%v ok=%v", src, local, ok)
	}
	// Reader on same site as a replica but not holding one: same-site remote.
	var sameSiteReader netmodel.NodeID = -1
	holder := map[netmodel.NodeID]bool{}
	for _, r := range reps {
		holder[r] = true
	}
	for _, id := range h.all {
		if !holder[id] && h.siteHasReplica(b, h.site[id]) {
			sameSiteReader = id
			break
		}
	}
	if sameSiteReader >= 0 {
		src, local, ok := h.nn.ReadSource(sameSiteReader, b.ID)
		if !ok || local {
			t.Fatalf("same-site read wrong: local=%v ok=%v", local, ok)
		}
		if h.site[src] != h.site[sameSiteReader] {
			t.Fatalf("read source site %s, want reader's site %s", h.site[src], h.site[sameSiteReader])
		}
	}
}

func (h *harness) siteHasReplica(b *BlockInfo, site string) bool {
	for _, id := range b.Replicas() {
		if h.site[id] == site {
			return true
		}
	}
	return false
}

func TestReadBlockMissing(t *testing.T) {
	h := newHarness(t, 7, 2, Config{})
	got := true
	h.nn.ReadBlock(h.all[0], BlockID(9999), func(ok bool) { got = ok })
	h.eng.RunUntil(sim.Minute)
	if got {
		t.Fatal("read of unknown block should fail")
	}
}

func TestDeadDatanodeTriggersReplication(t *testing.T) {
	h := newHarness(t, 8, 4, Config{Replication: 3, DeadTimeout: 30 * sim.Second, SiteAware: true})
	f := h.nn.SeedFile("/in/recover", 4*DefaultBlockSize, 3)
	victim := h.nn.Block(f.Blocks[0]).Replicas()[0]
	dead := map[netmodel.NodeID]bool{victim: true}
	tk := h.heartbeatAll(dead)
	defer tk.Stop()
	h.eng.RunUntil(30 * sim.Minute)
	if d := h.nn.Datanode(victim); d.Alive {
		t.Fatal("victim not declared dead after heartbeat timeout")
	}
	if h.nn.Stats().DatanodesDead != 1 {
		t.Fatalf("DatanodesDead = %d, want 1", h.nn.Stats().DatanodesDead)
	}
	for _, bid := range f.Blocks {
		b := h.nn.Block(bid)
		if b.NumReplicas() != 3 {
			t.Fatalf("block %d replicas = %d after recovery, want 3", bid, b.NumReplicas())
		}
		if _, still := b.replicas[victim]; still {
			t.Fatal("dead node still listed as replica")
		}
	}
	if h.nn.Stats().ReplicationsDone == 0 {
		t.Fatal("no re-replications recorded")
	}
}

func TestDeadTimeoutConfigMatters(t *testing.T) {
	detectAt := func(timeout sim.Time) sim.Time {
		h := newHarness(t, 9, 2, Config{Replication: 3, DeadTimeout: timeout})
		h.nn.SeedFile("/in/t", DefaultBlockSize, 3)
		var deadAt sim.Time
		h.nn.OnDatanodeDead = func(netmodel.NodeID) { deadAt = h.eng.Now() }
		dead := map[netmodel.NodeID]bool{h.all[0]: true}
		tk := h.heartbeatAll(dead)
		h.nn.ForceDead(h.all[0]) // ensure the node has no pending heartbeat; use explicit path
		tk.Stop()
		return deadAt
	}
	// Direct comparison via the scan path instead: HOG's 30 s timeout must
	// detect far sooner than the traditional 900 s.
	hogDetect := detectDeadAfter(t, 30*sim.Second)
	stockDetect := detectDeadAfter(t, 900*sim.Second)
	if hogDetect >= stockDetect {
		t.Fatalf("HOG detect %v !< stock detect %v", hogDetect, stockDetect)
	}
	if hogDetect > 60*sim.Second {
		t.Fatalf("HOG detect %v, want <= ~35s", hogDetect)
	}
	_ = detectAt
}

func detectDeadAfter(t *testing.T, timeout sim.Time) sim.Time {
	t.Helper()
	h := newHarness(t, 10, 2, Config{Replication: 3, DeadTimeout: timeout})
	var deadAt sim.Time = -1
	h.nn.OnDatanodeDead = func(netmodel.NodeID) {
		if deadAt < 0 {
			deadAt = h.eng.Now()
		}
	}
	dead := map[netmodel.NodeID]bool{h.all[0]: true}
	tk := h.heartbeatAll(dead)
	defer tk.Stop()
	h.eng.RunUntil(2000 * sim.Second)
	if deadAt < 0 {
		t.Fatalf("node never declared dead with timeout %v", timeout)
	}
	return deadAt
}

func TestBlockLossWhenAllReplicasDie(t *testing.T) {
	h := newHarness(t, 11, 2, Config{Replication: 2, DeadTimeout: 30 * sim.Second, SiteAware: true})
	f := h.nn.SeedFile("/in/doomed", DefaultBlockSize, 2)
	b := h.nn.Block(f.Blocks[0])
	lost := 0
	h.nn.OnBlockLost = func(*BlockInfo) { lost++ }
	for _, id := range b.Replicas() {
		h.nn.ForceDead(id)
	}
	if !b.Lost() || lost != 1 {
		t.Fatalf("block lost=%v lostCalls=%d, want true/1", b.Lost(), lost)
	}
	if h.nn.Stats().BlocksLost != 1 {
		t.Fatalf("BlocksLost = %d, want 1", h.nn.Stats().BlocksLost)
	}
	if _, _, ok := h.nn.ReadSource(h.all[3], b.ID); ok {
		t.Fatal("lost block should have no read source")
	}
}

func TestHigherReplicationSurvivesSiteBatchKill(t *testing.T) {
	// Kill an entire site; replication 10 (site-aware) must lose nothing,
	// replication 2 without site awareness should lose some blocks.
	lostWith := func(repl int, siteAware bool, seed int64) int {
		h := newHarness(t, seed, 4, Config{Replication: repl, SiteAware: siteAware, DeadTimeout: 30 * sim.Second})
		for i := 0; i < 20; i++ {
			h.nn.SeedFile("/in/sb"+string(rune('a'+i)), DefaultBlockSize, repl)
		}
		// Nodes 0..3 are all on site fnal.gov.
		for i := 0; i < 4; i++ {
			h.nn.ForceDead(h.all[i])
		}
		return h.nn.Stats().BlocksLost
	}
	if lost := lostWith(10, true, 12); lost != 0 {
		t.Fatalf("replication 10 site-aware lost %d blocks on site failure, want 0", lost)
	}
	lostLow := 0
	for seed := int64(13); seed < 19; seed++ {
		lostLow += lostWith(2, false, seed)
	}
	if lostLow == 0 {
		t.Fatal("replication 2 flat placement never lost a block across 6 site-failure trials; model suspicious")
	}
}

func TestDeleteFileReleasesDisk(t *testing.T) {
	h := newHarness(t, 14, 2, Config{Replication: 3})
	h.nn.SeedFile("/in/del", 3*DefaultBlockSize, 3)
	var used float64
	for _, id := range h.all {
		used += h.dt.Used(id)
	}
	if used != 9*DefaultBlockSize {
		t.Fatalf("used = %.0f, want 9 blocks", used)
	}
	h.nn.DeleteFile("/in/del")
	for _, id := range h.all {
		if h.dt.Used(id) != 0 {
			t.Fatalf("node %d still holds %.0f bytes after delete", id, h.dt.Used(id))
		}
	}
	if h.nn.File("/in/del") != nil {
		t.Fatal("file still present after delete")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	h := newHarness(t, 15, 1, Config{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	h.nn.Register(h.all[0], "dup.fnal.gov")
}

func TestDuplicateCreatePanics(t *testing.T) {
	h := newHarness(t, 16, 1, Config{})
	h.nn.CreateFile("/x", DefaultBlockSize, 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate CreateFile did not panic")
		}
	}()
	h.nn.CreateFile("/x", DefaultBlockSize, 1)
}

func TestBalancerReducesSpread(t *testing.T) {
	h := newHarness(t, 17, 4, Config{Replication: 1, SiteAware: false})
	// Seed many single-replica blocks, then register fresh empty nodes and
	// balance toward them.
	for i := 0; i < 30; i++ {
		h.nn.SeedFile("/in/bal"+string(rune('a'+i)), DefaultBlockSize, 1)
	}
	fresh := make([]netmodel.NodeID, 0, 5)
	for i := 0; i < 5; i++ {
		id := h.net.AddNode(h.net.SiteOf(h.all[0]), "fresh.fnal.gov")
		h.dt.SetCapacity(id, 10e9)
		h.nn.Register(id, "fresh.fnal.gov")
		fresh = append(fresh, id)
		h.all = append(h.all, id)
	}
	tk := h.heartbeatAll(nil)
	defer tk.Stop()
	spread := func() (hi, lo float64) {
		lo = 1
		for _, id := range h.all {
			u := h.dt.Utilization(id)
			if u > hi {
				hi = u
			}
			if u < lo {
				lo = u
			}
		}
		return
	}
	hiBefore, loBefore := spread()
	moves := h.nn.BalanceOnce(0.001, 20)
	if moves == 0 {
		t.Fatal("balancer made no moves on an imbalanced cluster")
	}
	h.eng.RunUntil(30 * sim.Minute)
	hiAfter, loAfter := spread()
	if !(hiAfter-loAfter < hiBefore-loBefore) {
		t.Fatalf("utilisation spread did not shrink: before [%f,%f], after [%f,%f]",
			loBefore, hiBefore, loAfter, hiAfter)
	}
	var moved float64
	for _, id := range fresh {
		moved += h.dt.Used(id)
	}
	if moved == 0 {
		t.Fatal("no data moved to fresh nodes")
	}
}

// TestBalanceOnceNoOvershoot is the regression test for the stale-utilization
// bug: BalanceOnce computed per-node utilizations once per round and never
// adjusted them as moves were scheduled, so with one fresh node and many
// equally over-full sources, every source shipped it a block (15 moves, the
// destination overshooting far past the mean). With src/dst utilizations
// updated incrementally after each startMove, the round stops as soon as the
// destination enters the balance band (~5 moves here).
func TestBalanceOnceNoOvershoot(t *testing.T) {
	h := newHarness(t, 18, 3, Config{Replication: 1, SiteAware: false})
	// Deterministic skew: funnel 5 blocks onto each node in turn by starving
	// every other node's capacity during its seeding round.
	for _, id := range h.all {
		for _, other := range h.all {
			if other == id {
				h.dt.SetCapacity(other, 1e9)
			} else {
				h.dt.SetCapacity(other, 1e6)
			}
		}
		h.nn.SeedFile(fmt.Sprintf("/skew%d", id), 5*DefaultBlockSize, 1)
	}
	for _, id := range h.all {
		h.dt.SetCapacity(id, 1e9)
		if h.dt.Used(id) != 5*DefaultBlockSize {
			t.Fatalf("node %d holds %.0f bytes, want exactly 5 blocks", id, h.dt.Used(id))
		}
	}
	// One fresh empty node: utilizations are 15 x 0.32 plus one 0, mean 0.3.
	fresh := h.net.AddNode(h.net.SiteOf(h.all[0]), "fresh.fnal.gov")
	h.dt.SetCapacity(fresh, 1e9)
	h.nn.Register(fresh, "fresh.fnal.gov")
	h.all = append(h.all, fresh)
	tk := h.heartbeatAll(nil)
	defer tk.Stop()

	moves := h.nn.BalanceOnce(0.01, 100)
	if moves == 0 {
		t.Fatal("balancer made no moves on an imbalanced cluster")
	}
	if moves > 6 {
		t.Fatalf("balancer scheduled %d moves into one fresh node (stale-utilization overshoot); want <= 6", moves)
	}
	h.eng.RunUntil(30 * sim.Minute)
	if u := h.dt.Utilization(fresh); u > 0.5 {
		t.Fatalf("fresh node at %.2f utilization after one round; overshot the balance band", u)
	}
}

// TestBalancePumpedDestinationDoesNotHaltRound: once utilizations update
// in-round, the under-full tail is no longer sorted — a small-capacity
// destination pumped into the band after one block must be skipped, not
// treated as the end of the under-full list, or every remaining source
// stops moving and a second still-empty destination never fills.
func TestBalancePumpedDestinationDoesNotHaltRound(t *testing.T) {
	h := newHarness(t, 19, 3, Config{Replication: 1, SiteAware: false})
	for _, id := range h.all {
		for _, other := range h.all {
			if other == id {
				h.dt.SetCapacity(other, 1e9)
			} else {
				h.dt.SetCapacity(other, 1e6)
			}
		}
		h.nn.SeedFile(fmt.Sprintf("/pump%d", id), 5*DefaultBlockSize, 1)
	}
	for _, id := range h.all {
		h.dt.SetCapacity(id, 1e9)
	}
	// Two empty destinations: big first, then the tiny one, which gets the
	// higher ID and therefore sorts to the very tail among the zeros. One
	// block pumps the tiny node straight past the band.
	big := h.net.AddNode(h.net.SiteOf(h.all[0]), "big.fnal.gov")
	h.dt.SetCapacity(big, 1e9)
	h.nn.Register(big, "big.fnal.gov")
	tiny := h.net.AddNode(h.net.SiteOf(h.all[0]), "tiny.fnal.gov")
	h.dt.SetCapacity(tiny, 0.2e9)
	h.nn.Register(tiny, "tiny.fnal.gov")
	h.all = append(h.all, big, tiny)
	tk := h.heartbeatAll(nil)
	defer tk.Stop()

	moves := h.nn.BalanceOnce(0.01, 100)
	// The tiny node absorbs one block; the big one must still fill toward
	// the mean (~5 more) instead of the round halting at the pumped entry.
	if moves < 4 {
		t.Fatalf("round stalled after the pumped destination: %d moves", moves)
	}
	h.eng.RunUntil(30 * sim.Minute)
	if h.dt.Used(big) == 0 {
		t.Fatal("big destination received no blocks; pumped tail entry halted the round")
	}
}

// TestPlacementInvariantsProperty moved to placement_audit_test.go: the
// property is now audit.CheckSeededFilePlacement, shared with the chaos
// runner, and the test exercises it through the exported API.

// Property: recovery restores the full replication factor after killing any
// single replica holder, given enough surviving capacity.
func TestRecoveryProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		h := newHarness(t, int64(seedRaw)+200, 3, Config{Replication: 3, DeadTimeout: 30 * sim.Second})
		fi := h.nn.SeedFile("/r", 2*DefaultBlockSize, 3)
		victim := h.nn.Block(fi.Blocks[0]).Replicas()[0]
		dead := map[netmodel.NodeID]bool{victim: true}
		tk := h.heartbeatAll(dead)
		defer tk.Stop()
		h.eng.RunUntil(20 * sim.Minute)
		for _, bid := range fi.Blocks {
			if h.nn.Block(bid).NumReplicas() != 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
