package hdfs

import (
	"fmt"
	"sort"

	"hog/internal/netmodel"
)

// This file defines the pluggable block-placement and re-replication-order
// policies. The candidate machinery (gatherCandidates, spreadAcrossSites)
// and the recovery ring stay on the Namenode as the shared substrate; a
// policy only decides which candidates become targets and which queued block
// recovers next. Policies are selected by name through Config.PlacementPolicy
// and Config.ReplicationOrder (see internal/core's Policies block); the
// defaults reproduce the pre-extraction behaviour bit for bit, which
// placement_equiv_test.go pins.

// PlacementPolicy chooses replica targets for new writes and for recovery
// copies. Implementations must draw randomness only through the candidate
// substrate (gatherCandidates shuffles with the engine RNG) so runs stay
// deterministic.
type PlacementPolicy interface {
	// Name returns the registry name the policy was constructed under.
	Name() string
	// ChooseTargets picks up to n distinct live datanodes with room for a
	// block of the given size, excluding the nodes in exclude. writer, if a
	// live datanode, may be preferred for the first replica. Fewer than n
	// targets mean the cluster cannot satisfy the request right now.
	ChooseTargets(nn *Namenode, writer netmodel.NodeID, size float64, n int, exclude map[netmodel.NodeID]struct{}) []netmodel.NodeID
	// ReplicationTargets picks up to n targets for re-replicating block b,
	// accounting for its existing and in-flight replicas.
	ReplicationTargets(nn *Namenode, b *BlockInfo, n int) []netmodel.NodeID
}

// ReplicationOrder decides which queued under-replicated block the recovery
// pump serves next. The ring and its coalescing set stay on the Namenode;
// Next removes and returns one entry (policies may pick any position) or
// reports false when the queue is empty. Entries may be stale — the pump
// re-validates every block after Next.
type ReplicationOrder interface {
	// Name returns the registry name the policy was constructed under.
	Name() string
	// Next removes and returns the next block to recover; ok is false when
	// the queue is empty.
	Next(nn *Namenode) (bid BlockID, ok bool)
}

// Registry names of the built-in policies.
const (
	PlacementGrid     = "grid"
	PlacementRandom   = "random"
	ReplicationFIFO   = "fifo"
	ReplicationRarest = "rarest"
)

var placementPolicies = map[string]func() PlacementPolicy{
	PlacementGrid:   func() PlacementPolicy { return gridPlacement{} },
	PlacementRandom: func() PlacementPolicy { return randomPlacement{} },
}

var replicationOrders = map[string]func() ReplicationOrder{
	ReplicationFIFO:   func() ReplicationOrder { return fifoOrder{} },
	ReplicationRarest: func() ReplicationOrder { return rarestOrder{} },
}

// NewPlacementPolicy constructs the named placement policy; the empty name
// selects the default ("grid", the paper's site-aware rule).
func NewPlacementPolicy(name string) (PlacementPolicy, error) {
	if name == "" {
		name = PlacementGrid
	}
	mk, ok := placementPolicies[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: unknown placement policy %q (have %v)", name, PlacementPolicyNames())
	}
	return mk(), nil
}

// NewReplicationOrder constructs the named re-replication order; the empty
// name selects the default ("fifo", recovery in loss order).
func NewReplicationOrder(name string) (ReplicationOrder, error) {
	if name == "" {
		name = ReplicationFIFO
	}
	mk, ok := replicationOrders[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: unknown replication order %q (have %v)", name, ReplicationOrderNames())
	}
	return mk(), nil
}

// PlacementPolicyNames returns the registered placement policy names, sorted.
func PlacementPolicyNames() []string { return sortedNames(placementPolicies) }

// ReplicationOrderNames returns the registered replication-order names,
// sorted.
func ReplicationOrderNames() []string { return sortedNames(replicationOrders) }

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PlacementPolicyName returns the active placement policy's registry name.
func (nn *Namenode) PlacementPolicyName() string { return nn.place.Name() }

// ReplicationOrderName returns the active replication order's registry name.
func (nn *Namenode) ReplicationOrderName() string { return nn.replOrder.Name() }

// gridPlacement is HOG's policy: replica one on the writer when possible,
// then — under Config.SiteAware — a greedy spread so replicas cover as many
// sites as possible before doubling up (the paper's generalisation of
// Hadoop's source-rack + one-other-rack rule to the site failure domain).
// Without site awareness it degrades to uniform random placement, the
// paper's implicit topology-blind baseline.
type gridPlacement struct{}

func (gridPlacement) Name() string { return PlacementGrid }

func (gridPlacement) ChooseTargets(nn *Namenode, writer netmodel.NodeID, size float64, n int, exclude map[netmodel.NodeID]struct{}) []netmodel.NodeID {
	if n <= 0 {
		return nil
	}
	cands := nn.gatherCandidates(size, exclude)
	if len(cands) == 0 {
		return nil
	}

	var targets []netmodel.NodeID
	skipIx := -1

	// Replica 1: the writer itself when possible (data locality for the
	// producing task).
	if w, ok := nn.datanodes[writer]; ok && w.Alive {
		if _, ex := exclude[writer]; !ex && nn.disk.Free(writer) >= size {
			for i := range cands {
				if cands[i].ID == writer {
					targets = append(targets, writer)
					skipIx = i
					break
				}
			}
		}
	}

	if !nn.cfg.SiteAware {
		for i := 0; len(targets) < n && i < len(cands); i++ {
			if i == skipIx {
				continue
			}
			targets = append(targets, cands[i].ID)
		}
		return targets
	}

	// Site-aware spreading, seeded with the replicas chosen so far.
	for s := range nn.siteCounts {
		nn.siteCounts[s] = 0
	}
	for _, id := range targets {
		nn.siteCounts[nn.datanodes[id].siteIx]++
	}
	return nn.spreadAcrossSites(cands, skipIx, n, targets)
}

func (gridPlacement) ReplicationTargets(nn *Namenode, b *BlockInfo, n int) []netmodel.NodeID {
	exclude := make(map[netmodel.NodeID]struct{}, len(b.replicas)+len(b.pending))
	for id := range b.replicas {
		exclude[id] = struct{}{}
	}
	for id := range b.pending {
		exclude[id] = struct{}{}
	}
	if !nn.cfg.SiteAware {
		return gridPlacement{}.ChooseTargets(nn, -1, b.Size, n, exclude)
	}
	if n <= 0 {
		return nil
	}
	cands := nn.gatherCandidates(b.Size, exclude)
	if len(cands) == 0 {
		return nil
	}
	// Candidate pool as in ChooseTargets, but seeded with the existing
	// replicas' site counts.
	for s := range nn.siteCounts {
		nn.siteCounts[s] = 0
	}
	for id := range b.replicas {
		if d, ok := nn.datanodes[id]; ok {
			nn.siteCounts[d.siteIx]++
		}
	}
	for id := range b.pending {
		if d, ok := nn.datanodes[id]; ok {
			nn.siteCounts[d.siteIx]++
		}
	}
	return nn.spreadAcrossSites(cands, -1, n, nil)
}

// randomPlacement scatters replicas uniformly at random with no writer
// preference and no site awareness — the widest spread the candidate pool
// allows, and the ablation baseline that shows what HOG's grid awareness
// buys. The shuffled candidate order is the random draw.
type randomPlacement struct{}

func (randomPlacement) Name() string { return PlacementRandom }

func (randomPlacement) ChooseTargets(nn *Namenode, _ netmodel.NodeID, size float64, n int, exclude map[netmodel.NodeID]struct{}) []netmodel.NodeID {
	if n <= 0 {
		return nil
	}
	cands := nn.gatherCandidates(size, exclude)
	var targets []netmodel.NodeID
	for i := 0; len(targets) < n && i < len(cands); i++ {
		targets = append(targets, cands[i].ID)
	}
	return targets
}

func (randomPlacement) ReplicationTargets(nn *Namenode, b *BlockInfo, n int) []netmodel.NodeID {
	exclude := make(map[netmodel.NodeID]struct{}, len(b.replicas)+len(b.pending))
	for id := range b.replicas {
		exclude[id] = struct{}{}
	}
	for id := range b.pending {
		exclude[id] = struct{}{}
	}
	return randomPlacement{}.ChooseTargets(nn, -1, b.Size, n, exclude)
}

// fifoOrder recovers blocks in the order their under-replication was
// noticed — the pre-extraction behaviour, one ring pop per stream slot.
type fifoOrder struct{}

func (fifoOrder) Name() string { return ReplicationFIFO }

func (fifoOrder) Next(nn *Namenode) (BlockID, bool) {
	if nn.replQueue.len() == 0 {
		return 0, false
	}
	return nn.replQueue.pop(), true
}

// rarestOrder recovers the most endangered block first: fewest effective
// replicas plus in-flight copies, ties broken by lowest block ID. Deleted
// blocks (stale ring entries) count as rarity -1 so they flush out
// immediately; the pump's validity check discards them. The scan is O(queue)
// per stream slot — acceptable for a recovery path that is bounded by
// MaxReplicationStreams, and the price of not recovering a singly-replicated
// block behind a churn burst's backlog of nine-replica blocks.
type rarestOrder struct{}

func (rarestOrder) Name() string { return ReplicationRarest }

func (rarestOrder) Next(nn *Namenode) (BlockID, bool) {
	q := &nn.replQueue
	if q.len() == 0 {
		return 0, false
	}
	best, bestHave, bestBid := 0, 0, BlockID(0)
	for i := 0; i < q.len(); i++ {
		bid := q.at(i)
		have := -1
		if b := nn.blocks[bid]; b != nil {
			have = nn.effectiveReplicas(b) + len(b.pending)
		}
		if i == 0 || have < bestHave || (have == bestHave && bid < bestBid) {
			best, bestHave, bestBid = i, have, bid
		}
	}
	return q.removeAt(best), true
}
