package hdfs

import (
	"sort"

	"hog/internal/netmodel"
)

// BalanceOnce runs one round of the HDFS balancer (the paper: users "can use
// the HDFS balancer to balance the data distribution" after growing the
// pool). It moves block replicas from nodes whose disk utilisation exceeds
// the cluster mean by more than threshold to nodes below the mean by more
// than threshold, preserving placement invariants (no duplicate replica on a
// node). Moves are simulated transfers; the returned count is the number of
// moves started. maxMoves bounds a round.
func (nn *Namenode) BalanceOnce(threshold float64, maxMoves int) int {
	if nn.down || nn.safeMode {
		// No balancing against a crashed or still-rebuilding namenode: its
		// replica map understates reality until block reports finish.
		return 0
	}
	type util struct {
		d *DatanodeInfo
		u float64
	}
	var all []util
	var sum float64
	for _, d := range nn.datanodes {
		if !d.Alive {
			continue
		}
		u := nn.disk.Utilization(d.ID)
		all = append(all, util{d, u})
		sum += u
	}
	if len(all) == 0 {
		return 0
	}
	mean := sum / float64(len(all))
	sort.Slice(all, func(i, j int) bool {
		if all[i].u != all[j].u {
			return all[i].u > all[j].u
		}
		return all[i].d.ID < all[j].d.ID
	})
	moves := 0
	for oi := range all {
		over := &all[oi]
		if moves >= maxMoves || over.u <= mean+threshold {
			// The list is sorted by descending utilisation and scheduled
			// moves only lower the entries above this one, so nothing further
			// down can still be over-full.
			break
		}
		// Candidate blocks of this source, in ascending BlockID order: one
		// sort per source per round instead of one per (source, target)
		// probe, and an order that never depends on map iteration — the
		// balancer's move set is identical on every run over identical
		// state (see TestBalanceOnceDeterministic).
		srcCands := nn.sortedBlocksOf(over.d)
		// Move blocks from the tail (most underutilised) upward, keeping the
		// working utilisations current as moves are scheduled: without the
		// adjustment one round kept draining the same over-full node against
		// its stale pre-round utilisation and overshot both endpoints.
		for i := len(all) - 1; i > oi && moves < maxMoves && over.u > mean+threshold; i-- {
			under := &all[i]
			if under.u >= mean-threshold {
				// Skip rather than stop: scheduled moves may have pumped this
				// tail entry into the band while entries further up are still
				// under-full, so ascending order no longer holds here.
				continue
			}
			bid, ok := nn.pickMovableBlock(srcCands, under.d)
			if !ok {
				continue
			}
			size := nn.blocks[bid].Size
			if nn.startMove(bid, over.d.ID, under.d.ID) {
				moves++
				if c := nn.disk.Capacity(over.d.ID); c > 0 {
					over.u -= size / c
				}
				if c := nn.disk.Capacity(under.d.ID); c > 0 {
					under.u += size / c
				}
			}
		}
	}
	return moves
}

// sortedBlocksOf returns the blocks hosted on d in ascending BlockID order
// — the deterministic candidate order every balancer probe walks.
func (nn *Namenode) sortedBlocksOf(d *DatanodeInfo) []BlockID {
	ids := make([]BlockID, 0, len(d.blocks))
	for bid := range d.blocks {
		ids = append(ids, bid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// pickMovableBlock finds the first candidate block (ascending BlockID) that
// dst does not already host, is not in flight to dst, and fits on dst.
func (nn *Namenode) pickMovableBlock(cands []BlockID, dst *DatanodeInfo) (BlockID, bool) {
	for _, bid := range cands {
		b := nn.blocks[bid]
		if b == nil {
			continue
		}
		if _, dup := b.replicas[dst.ID]; dup {
			continue
		}
		if _, pend := b.pending[dst.ID]; pend {
			continue
		}
		if nn.disk.Free(dst.ID) >= b.Size {
			return bid, true
		}
	}
	return 0, false
}

// startMove copies a block src->dst and drops the src replica once the copy
// is durable, mirroring the balancer's copy-then-delete protocol.
func (nn *Namenode) startMove(bid BlockID, src, dst netmodel.NodeID) bool {
	b := nn.blocks[bid]
	if b == nil {
		return false
	}
	if !nn.disk.Reserve(dst, b.Size) {
		return false
	}
	b.pending[dst] = struct{}{}
	nn.net.StartFlow(src, dst, b.Size, func() {
		delete(b.pending, dst)
		if nn.blocks[bid] == nil { // file deleted mid-move
			nn.disk.Release(dst, b.Size)
			return
		}
		if d, ok := nn.datanodes[dst]; !ok || !d.Alive {
			nn.disk.Release(dst, b.Size)
			return
		}
		nn.addReplica(b, dst)
		nn.stats.BalancerMoves++
		// Drop the source replica only if the block stays at or above its
		// target without it.
		if sd, ok := nn.datanodes[src]; ok {
			if _, has := b.replicas[src]; has && len(b.replicas) > nn.targetReplication(b) {
				nn.dropReplica(b, src)
				delete(sd.blocks, bid)
				nn.disk.Release(src, b.Size)
			}
		}
	})
	return true
}
