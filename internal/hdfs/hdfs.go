// Package hdfs reimplements the slice of the Hadoop Distributed File System
// that HOG modifies and depends on (paper §II.A, §III.B.1): a namenode block
// map with heartbeat-driven failure detection, replica placement policies
// (stock rack awareness generalised to HOG's site awareness), pipelined
// replicated writes, a re-replication monitor that restores the target
// replication factor after node loss, and a balancer.
//
// Time and data movement are simulated: block transfers are netmodel flows,
// local reads/writes are disk I/O, and heartbeats are driven by the daemons
// in internal/core. Protocol state machines (registration, dead-node
// detection, under-replication queues) are implemented faithfully enough
// that the paper's parameter changes — replication 3 → 10 and dead timeout
// 15 min → 30 s — are plain configuration here too.
package hdfs

import (
	"fmt"
	"sort"

	"hog/internal/disk"
	"hog/internal/event"
	"hog/internal/netmodel"
	"hog/internal/sim"
	"hog/internal/topology"
)

// BlockID identifies an HDFS block.
type BlockID int64

// DefaultBlockSize is 64 MB (paper §II.A).
const DefaultBlockSize = 64e6

// Config holds namenode parameters.
type Config struct {
	// BlockSize in bytes; files are split into blocks of this size.
	BlockSize float64
	// Replication is the default replication factor for new files. HOG
	// raises this from Hadoop's 3 to 10 (§III.B.1).
	Replication int
	// DeadTimeout is how long without a heartbeat before a datanode is
	// declared dead. HOG: 30 s; stock Hadoop: 15 min (§III.B).
	DeadTimeout sim.Time
	// CheckInterval is how often the namenode scans for expired datanodes.
	CheckInterval sim.Time
	// MaxReplicationStreams bounds concurrent re-replication transfers so
	// recovery does not saturate the network (namenode throttling).
	MaxReplicationStreams int
	// SiteAware selects the placement policy: HOG's site awareness (true)
	// or flat random placement (false), the paper's implicit baseline for
	// a grid deployment without topology knowledge.
	SiteAware bool
	// SafeModeThreshold is the fraction of known blocks that must have at
	// least one reported replica before a restarted namenode leaves safe
	// mode (Hadoop's dfs.safemode.threshold.pct).
	SafeModeThreshold float64
	// SafeModeTimeout bounds how long a restarted namenode waits for block
	// reports before leaving safe mode anyway, treating still-unreported
	// blocks as suspect. Datanodes that never report are handled by the
	// ordinary dead-node path afterwards.
	SafeModeTimeout sim.Time
	// PlacementPolicy names the replica-placement policy (policy.go
	// registry); empty selects "grid", the paper's site-aware rule.
	PlacementPolicy string
	// ReplicationOrder names the recovery-queue ordering; empty selects
	// "fifo", recovery in loss order.
	ReplicationOrder string
}

// DefaultConfig returns stock-Hadoop-like parameters.
func DefaultConfig() Config {
	return Config{
		BlockSize:             DefaultBlockSize,
		Replication:           3,
		DeadTimeout:           900 * sim.Second,
		CheckInterval:         5 * sim.Second,
		MaxReplicationStreams: 16,
		SiteAware:             true,
		SafeModeThreshold:     0.999,
		SafeModeTimeout:       10 * sim.Minute,
	}
}

// HOGConfig returns the paper's HOG settings: replication 10, 30 s dead
// timeout, site-aware placement.
func HOGConfig() Config {
	c := DefaultConfig()
	c.Replication = 10
	c.DeadTimeout = 30 * sim.Second
	return c
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BlockSize <= 0 {
		c.BlockSize = d.BlockSize
	}
	if c.Replication <= 0 {
		c.Replication = d.Replication
	}
	if c.DeadTimeout <= 0 {
		c.DeadTimeout = d.DeadTimeout
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = d.CheckInterval
	}
	if c.MaxReplicationStreams <= 0 {
		c.MaxReplicationStreams = d.MaxReplicationStreams
	}
	if c.SafeModeThreshold <= 0 || c.SafeModeThreshold > 1 {
		c.SafeModeThreshold = d.SafeModeThreshold
	}
	if c.SafeModeTimeout <= 0 {
		c.SafeModeTimeout = d.SafeModeTimeout
	}
	return c
}

// DatanodeInfo is the namenode's view of one datanode.
type DatanodeInfo struct {
	ID            netmodel.NodeID
	Hostname      string
	Site          string
	Alive         bool
	LastHeartbeat sim.Time
	blocks        map[BlockID]struct{}
	// held preserves the physical inventory (block -> size) of a node the
	// namenode declared dead but whose hardware may still be running behind a
	// network partition: markDead captures blocks here instead of discarding
	// them, and RecoverDatanode hands them back when the partition heals
	// (corruption.go). Sizes ride along so space pinned by a file deleted
	// during the outage can be reclaimed at recovery. physLost marks nodes
	// whose hardware is genuinely gone (preemption, kill, disk overflow) —
	// nothing is held or recoverable.
	held     map[BlockID]float64
	physLost bool
	// gray marks a node under injected gray degradation (slow disk, flaky
	// heartbeats); placement refuses it while flagged.
	gray bool
	// awaitingReport is set when a restarted namenode is waiting for this
	// datanode's block report (see safemode.go).
	awaitingReport bool
	// siteIx is the dense index of Site in the namenode's site registry;
	// the placement hot path counts replicas per site through it instead of
	// hashing site name strings.
	siteIx int
}

// Blocks returns the number of block replicas hosted on the datanode.
func (d *DatanodeInfo) Blocks() int { return len(d.blocks) }

// HasBlock reports whether the datanode physically hosts a replica of the
// block (audit helpers; the namenode's own paths use the map directly).
func (d *DatanodeInfo) HasBlock(bid BlockID) bool {
	_, ok := d.blocks[bid]
	return ok
}

// Gray reports whether the node is flagged for gray degradation.
func (d *DatanodeInfo) Gray() bool { return d.gray }

// HeldBlocks returns the number of replicas preserved across a dead-marking
// for possible partition-heal recovery.
func (d *DatanodeInfo) HeldBlocks() int { return len(d.held) }

// PhysicallyLost reports whether the node's hardware is genuinely gone.
func (d *DatanodeInfo) PhysicallyLost() bool { return d.physLost }

// BlockInfo is the namenode's record of one block.
type BlockInfo struct {
	ID       BlockID
	File     string
	Size     float64
	replicas map[netmodel.NodeID]struct{}
	pending  map[netmodel.NodeID]struct{} // in-flight replication targets
	// corrupt records replicas whose on-disk bytes are bad (scenario-injected).
	// It is physical truth the namenode does not act on until a reader's
	// checksum verification catches it (corruption.go); markers survive
	// partition-induced replica drops and die only with the hardware, with
	// invalidation after detection, or with the file.
	corrupt map[netmodel.NodeID]struct{}
	lost    bool
	// writing marks a block whose client write pipeline has not finished:
	// it legitimately has no replicas and no pending copies yet, so loss
	// declaration and safe-mode report accounting must leave it alone.
	writing bool
}

// Replicas returns the IDs of live replicas in unspecified order.
func (b *BlockInfo) Replicas() []netmodel.NodeID {
	out := make([]netmodel.NodeID, 0, len(b.replicas))
	for id := range b.replicas {
		out = append(out, id)
	}
	return out
}

// NumReplicas returns the live replica count.
func (b *BlockInfo) NumReplicas() int { return len(b.replicas) }

// NumPending returns the number of in-flight copies toward this block.
func (b *BlockInfo) NumPending() int { return len(b.pending) }

// NumCorrupt returns the number of replicas marked physically corrupt.
func (b *BlockInfo) NumCorrupt() int { return len(b.corrupt) }

// CorruptOn reports whether the replica on id is physically corrupt.
func (b *BlockInfo) CorruptOn(id netmodel.NodeID) bool {
	_, ok := b.corrupt[id]
	return ok
}

// Lost reports whether all replicas (and pending copies) were lost.
func (b *BlockInfo) Lost() bool { return b.lost }

// WriteInProgress reports whether the block's client write pipeline is still
// running — the window in which zero replicas is normal, not an anomaly.
func (b *BlockInfo) WriteInProgress() bool { return b.writing }

// FileInfo records a file's blocks and its replication factor.
type FileInfo struct {
	Name        string
	Size        float64
	Replication int
	Blocks      []BlockID
}

// Stats counts namenode events.
type Stats struct {
	BlocksCreated        int
	BlocksLost           int
	DatanodesDead        int
	ReplicationsDone     int
	BytesReplicated      float64
	WriteReplicasSkipped int // pipeline targets that died or overflowed mid-write
	BalancerMoves        int
	// Corruption and recovery counters (corruption.go). CorruptAcked counts
	// reads that returned corrupt bytes to a caller as good data; checksum
	// verification makes that impossible, and the audit layer asserts it
	// stays zero.
	ReplicasCorrupted    int
	CorruptReadsDetected int
	ReplicasInvalidated  int
	CorruptAcked         int
	PipelineRecoveries   int
	NodesRecovered       int
	ReplicasRecovered    int
}

// Namenode is the HDFS master. It lives on the stable central server in HOG
// (paper §III.B), but even the central server can crash: Crash drops the
// namenode's soft state and Restart rebuilds it from datanode block reports
// behind a safe-mode gate (see safemode.go and docs/FAULTS.md).
type Namenode struct {
	eng    *sim.Engine
	net    *netmodel.Network
	disk   *disk.Tracker
	cfg    Config
	mapper *topology.Mapper

	datanodes map[netmodel.NodeID]*DatanodeInfo
	// dnOrder holds every registered datanode in ascending ID order — the
	// deterministic base order the placement policy and the dead scan need,
	// maintained incrementally instead of sorted per call.
	dnOrder []*DatanodeInfo
	// siteIx assigns each distinct awareness site a dense index; siteCands
	// and siteCounts are reusable scratch for the placement policy's
	// per-site greedy spread (see chooseTargets).
	siteIx     map[string]int
	siteCands  [][]int32
	siteCounts []int
	siteHeads  []int
	candBuf    []*DatanodeInfo
	blocks     map[BlockID]*BlockInfo
	files      map[string]*FileInfo
	nextBlock  BlockID

	replQueue   blockRing
	replQueued  map[BlockID]struct{}
	replStreams int
	streams     map[*replStream]struct{}

	// place and replOrder are the active placement and recovery-order
	// policies (policy.go), resolved by name from the configuration.
	place     PlacementPolicy
	replOrder ReplicationOrder

	decommissioning map[netmodel.NodeID]func()

	// corruptCount and grayCount summarise fault-injection state (corruption.go)
	// so the census can gate its fold-in on "any present" without scanning.
	corruptCount int
	grayCount    int

	// Master failure and recovery state (safemode.go). down is true between
	// Crash and Restart; safeMode is true from Restart until enough block
	// reports arrive. smTotal/smReported track the safe-mode exit threshold;
	// pendingWrites queues WriteFile calls issued while degraded.
	down          bool
	safeMode      bool
	safeModeSince sim.Time
	safeTimer     *sim.Timer
	smTotal       int
	smReported    int
	pendingWrites []func()
	// awaiting counts live datanodes that still owe a block report; while
	// non-zero, deletions must reclaim space by physical inventory because
	// the replica map understates who holds what.
	awaiting int

	stats Stats

	// OnDatanodeDead is invoked after a datanode is declared dead and its
	// replicas are queued for recovery.
	OnDatanodeDead func(id netmodel.NodeID)
	// OnBlockLost is invoked when the last replica of a block disappears.
	OnBlockLost func(b *BlockInfo)
	// OnPlacementChange is invoked after a block replica appears on (added)
	// or disappears from (removed) a datanode — replication, writes,
	// balancer moves, decommission drains, node death, file deletion. The
	// MapReduce scheduler index subscribes to keep its per-node and per-site
	// pending-task sets in sync with block placement; NewJobTracker chains
	// onto any previously installed callback.
	OnPlacementChange func(bid BlockID, node netmodel.NodeID, added bool)

	// Events receives NodeDead, BlockLost, and ReplicationDone events when
	// observers are subscribed; nil is a valid, inactive bus.
	Events *event.Bus

	checker *sim.Ticker
}

// NewNamenode creates a namenode; Start must be called to begin dead-node
// scanning.
func NewNamenode(eng *sim.Engine, net *netmodel.Network, dt *disk.Tracker, cfg Config) *Namenode {
	nn := &Namenode{
		eng:        eng,
		net:        net,
		disk:       dt,
		cfg:        cfg.withDefaults(),
		mapper:     topology.NewMapper(),
		datanodes:  make(map[netmodel.NodeID]*DatanodeInfo),
		siteIx:     make(map[string]int),
		blocks:     make(map[BlockID]*BlockInfo),
		files:      make(map[string]*FileInfo),
		replQueued: make(map[BlockID]struct{}),
		streams:    make(map[*replStream]struct{}),
	}
	var err error
	if nn.place, err = NewPlacementPolicy(nn.cfg.PlacementPolicy); err != nil {
		panic(err)
	}
	if nn.replOrder, err = NewReplicationOrder(nn.cfg.ReplicationOrder); err != nil {
		panic(err)
	}
	return nn
}

// Config returns the namenode's effective configuration.
func (nn *Namenode) Config() Config { return nn.cfg }

// Stats returns a copy of the counters.
func (nn *Namenode) Stats() Stats { return nn.stats }

// Start begins periodic dead-datanode detection.
func (nn *Namenode) Start() {
	if nn.checker != nil {
		return
	}
	nn.checker = nn.eng.Every(nn.cfg.CheckInterval, nn.checkDead)
}

// Stop halts periodic scanning.
func (nn *Namenode) Stop() {
	if nn.checker != nil {
		nn.checker.Stop()
		nn.checker = nil
	}
}

// Register adds a datanode. The namenode derives the node's site by running
// the site-awareness mapping on its hostname, exactly once per new node
// (paper: the topology script "is executed each time a new node is
// discovered by the namenode").
func (nn *Namenode) Register(id netmodel.NodeID, hostname string) *DatanodeInfo {
	if _, ok := nn.datanodes[id]; ok {
		panic(fmt.Sprintf("hdfs: datanode %d registered twice", id))
	}
	d := &DatanodeInfo{
		ID:            id,
		Hostname:      hostname,
		Site:          nn.mapper.Site(hostname),
		Alive:         true,
		LastHeartbeat: nn.eng.Now(),
		blocks:        make(map[BlockID]struct{}),
	}
	ix, ok := nn.siteIx[d.Site]
	if !ok {
		ix = len(nn.siteIx)
		nn.siteIx[d.Site] = ix
		nn.siteCands = append(nn.siteCands, nil)
		nn.siteCounts = append(nn.siteCounts, 0)
		nn.siteHeads = append(nn.siteHeads, 0)
	}
	d.siteIx = ix
	nn.datanodes[id] = d
	// Nodes register with ascending IDs in practice; the insertion walk is
	// a no-op then, and keeps dnOrder correct if they ever do not.
	nn.dnOrder = append(nn.dnOrder, d)
	for i := len(nn.dnOrder) - 1; i > 0 && nn.dnOrder[i-1].ID > id; i-- {
		nn.dnOrder[i], nn.dnOrder[i-1] = nn.dnOrder[i-1], nn.dnOrder[i]
	}
	return d
}

// Heartbeat records a datanode heartbeat.
func (nn *Namenode) Heartbeat(id netmodel.NodeID) {
	nn.HeartbeatDatanode(nn.datanodes[id])
}

// HeartbeatDatanode is Heartbeat for callers that already hold the info —
// the per-beat driver loop over ten thousand workers skips ten thousand map
// probes this way. Heartbeats to a crashed namenode are lost; the sender is
// expected to notice and retry (see the master backoff in internal/core).
func (nn *Namenode) HeartbeatDatanode(d *DatanodeInfo) {
	if nn.down {
		return
	}
	if d != nil && d.Alive {
		d.LastHeartbeat = nn.eng.Now()
	}
}

// Datanode returns the info for id, or nil.
func (nn *Namenode) Datanode(id netmodel.NodeID) *DatanodeInfo { return nn.datanodes[id] }

// AliveDatanodes returns live datanodes in ID order.
func (nn *Namenode) AliveDatanodes() []*DatanodeInfo {
	var out []*DatanodeInfo
	for _, d := range nn.dnOrder {
		if d.Alive {
			out = append(out, d)
		}
	}
	return out
}

// File returns the file record, or nil.
func (nn *Namenode) File(name string) *FileInfo { return nn.files[name] }

// Block returns the block record, or nil.
func (nn *Namenode) Block(id BlockID) *BlockInfo { return nn.blocks[id] }

// UnderReplicated returns the current length of the recovery queue.
func (nn *Namenode) UnderReplicated() int { return len(nn.replQueued) }

func (nn *Namenode) checkDead() {
	now := nn.eng.Now()
	// Collect victims from dnOrder: markDead queues replication work and
	// draws from the engine RNG, so processing order must not depend on map
	// iteration — dnOrder is already the deterministic ascending-ID order
	// the old sort produced, without the per-scan sort. The collection scan
	// itself is read-only, so at 100k-datanode scale it fans out across
	// parallel chunks; merging the per-chunk candidates in chunk order
	// reproduces the plain loop's order exactly, and only then does the
	// mutating markDead pass run, serially.
	var parts [sim.ScanChunks][]*DatanodeInfo
	nn.eng.ParallelScan(len(nn.dnOrder), 4096, func(c, lo, hi int) {
		for _, d := range nn.dnOrder[lo:hi] {
			if d.Alive && now-d.LastHeartbeat > nn.cfg.DeadTimeout {
				parts[c] = append(parts[c], d)
			}
		}
	})
	for _, doomed := range parts {
		for _, d := range doomed {
			nn.markDead(d)
		}
	}
}

// markDead declares a datanode dead: its replicas are dropped and every
// affected block is queued for re-replication (paper §II.A: "the Namenode
// will automatically replicate those blocks of this lost node onto some
// other datanodes").
func (nn *Namenode) markDead(d *DatanodeInfo) {
	if !d.Alive {
		return
	}
	d.Alive = false
	nn.clearAwaiting(d)
	nn.stats.DatanodesDead++
	if nn.Events.Active() {
		ev := event.At(event.NodeDead, nn.eng.Now())
		ev.Node = d.ID
		ev.Site = d.Site
		nn.Events.Emit(ev)
	}
	nn.cancelStreamsTouching(d.ID)
	// Sort for determinism: the recovery queue order must not depend on map
	// iteration.
	bids := make([]BlockID, 0, len(d.blocks))
	for bid := range d.blocks {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	for _, bid := range bids {
		b := nn.blocks[bid]
		nn.dropReplica(b, d.ID)
		if nn.down || nn.safeMode {
			// While degraded the replica map understates reality (unreported
			// datanodes may still hold copies), so neither loss declarations
			// nor recovery queueing are sound here; the safe-mode exit sweep
			// re-derives both from the rebuilt block map.
			continue
		}
		if len(b.replicas) == 0 && len(b.pending) == 0 {
			nn.loseBlock(b)
			continue
		}
		nn.queueReplication(bid)
	}
	if d.physLost {
		d.held = nil
	} else {
		// The hardware may still be running behind a network partition:
		// remember what it physically holds so a heal can hand the replicas
		// back (RecoverDatanode) instead of re-copying every block. Genuinely
		// lost nodes (preemption, kill, overflow) are flagged physLost by the
		// owner of the hardware before or shortly after this point.
		d.held = make(map[BlockID]float64, len(d.blocks))
		for bid := range d.blocks {
			if b := nn.blocks[bid]; b != nil {
				d.held[bid] = b.Size
			}
		}
	}
	d.blocks = make(map[BlockID]struct{})
	if done, draining := nn.decommissioning[d.ID]; draining {
		// A preempted node cannot finish draining; the dead-node path above
		// now owns its blocks, so complete the decommission immediately
		// rather than leaving a stale entry until some later stream pokes
		// checkAllDecommissions.
		delete(nn.decommissioning, d.ID)
		if done != nil {
			done()
		}
	}
	if nn.OnDatanodeDead != nil {
		nn.OnDatanodeDead(d.ID)
	}
	nn.pumpReplication()
}

// ForceDead immediately declares a datanode dead, bypassing the heartbeat
// timeout (used by tests and by voluntary decommission).
func (nn *Namenode) ForceDead(id netmodel.NodeID) {
	if d, ok := nn.datanodes[id]; ok {
		nn.markDead(d)
	}
}

func (nn *Namenode) loseBlock(b *BlockInfo) {
	if b.lost {
		return
	}
	b.lost = true
	nn.stats.BlocksLost++
	if nn.Events.Active() {
		ev := event.At(event.BlockLost, nn.eng.Now())
		ev.Block = int64(b.ID)
		ev.Detail = b.File
		nn.Events.Emit(ev)
	}
	if nn.OnBlockLost != nil {
		nn.OnBlockLost(b)
	}
}
