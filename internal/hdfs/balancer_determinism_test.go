package hdfs

import (
	"fmt"
	"sort"
	"testing"

	"hog/internal/netmodel"
	"hog/internal/sim"
)

// balancerState builds a deliberately imbalanced namenode: all file data is
// seeded while only the first site's datanodes have capacity registered, so
// every replica lands there; then the remaining sites get their disks and
// the balancer has obvious work to do.
func balancerState(t *testing.T, seed int64) *harness {
	t.Helper()
	h := newHarness(t, seed, 3, Config{Replication: 2, SiteAware: true})
	// Starve all but site 0 so seeding concentrates replicas.
	for i, id := range h.all {
		if i >= 3 {
			h.dt.SetCapacity(id, 0)
		}
	}
	for f := 0; f < 4; f++ {
		h.nn.SeedFile(fmt.Sprintf("/in/f%d", f), 6*DefaultBlockSize, 0)
	}
	for i, id := range h.all {
		if i >= 3 {
			h.dt.SetCapacity(id, 10e9)
		}
	}
	return h
}

// pendingMoves captures the scheduled move set as sorted (block, dst) pairs.
func pendingMoves(nn *Namenode) []string {
	var out []string
	for bid, b := range nn.blocks {
		for dst := range b.pending {
			out = append(out, fmt.Sprintf("%d->%d", bid, dst))
		}
	}
	sort.Strings(out)
	return out
}

// TestBalanceOnceDeterministic is the regression test for balancer move
// determinism: two BalanceOnce rounds over identically constructed state
// must schedule exactly the same move set — the candidate walk is the
// per-source sorted block order, never map iteration order.
func TestBalanceOnceDeterministic(t *testing.T) {
	a := balancerState(t, 7)
	b := balancerState(t, 7)
	movesA := a.nn.BalanceOnce(0.01, 50)
	movesB := b.nn.BalanceOnce(0.01, 50)
	if movesA == 0 {
		t.Fatal("balancer scheduled no moves on an imbalanced cluster")
	}
	if movesA != movesB {
		t.Fatalf("move counts diverge: %d vs %d", movesA, movesB)
	}
	setA, setB := pendingMoves(a.nn), pendingMoves(b.nn)
	if fmt.Sprint(setA) != fmt.Sprint(setB) {
		t.Fatalf("move sets diverge:\n%v\nvs\n%v", setA, setB)
	}
	// Completing the transfers must land both runs in identical placement.
	a.heartbeatAll(nil)
	b.heartbeatAll(nil)
	a.eng.RunUntil(10 * sim.Minute)
	b.eng.RunUntil(10 * sim.Minute)
	for bid, ba := range a.nn.blocks {
		bb := b.nn.blocks[bid]
		if bb == nil || ba.NumReplicas() != bb.NumReplicas() {
			t.Fatalf("post-move replica counts diverge for block %d", bid)
		}
		for id := range ba.replicas {
			if _, ok := bb.replicas[id]; !ok {
				t.Fatalf("post-move placement diverges for block %d", bid)
			}
		}
	}
}

// TestBlockRingFIFO pins the ring buffer's ordering and wrap-around.
func TestBlockRingFIFO(t *testing.T) {
	var q blockRing
	next, got := BlockID(0), BlockID(0)
	// Interleave pushes and pops so head wraps many times.
	for round := 0; round < 200; round++ {
		for i := 0; i < 7; i++ {
			q.push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			if v := q.pop(); v != got {
				t.Fatalf("pop = %d, want %d", v, got)
			}
			got++
		}
	}
	for q.len() > 0 {
		if v := q.pop(); v != got {
			t.Fatalf("drain pop = %d, want %d", v, got)
		}
		got++
	}
	if got != next {
		t.Fatalf("drained %d items, pushed %d", got, next)
	}
}

// TestBlockRingMemoryBounded is the regression test for the old
// slice-advance queue, which retained the backing array of every block ever
// queued. The ring's capacity must track the concurrent backlog, not the
// total throughput, and must shrink after a churn burst drains.
func TestBlockRingMemoryBounded(t *testing.T) {
	var q blockRing
	// One huge burst, then a long steady trickle.
	for i := 0; i < 100000; i++ {
		q.push(BlockID(i))
	}
	for q.len() > 0 {
		q.pop()
	}
	for i := 0; i < 500000; i++ {
		q.push(BlockID(i))
		q.pop()
	}
	if cap := len(q.buf); cap > 1024 {
		t.Fatalf("ring capacity %d after drain; burst memory was not released", cap)
	}
}

// TestReplicationQueueBounded drives the namenode-level queue through churn
// — a succession of node deaths, each re-queueing that node's replicas —
// and asserts the queue's backing memory stays bounded by the concurrent
// backlog rather than growing with everything ever queued.
func TestReplicationQueueBounded(t *testing.T) {
	h := newHarness(t, 3, 4, Config{Replication: 3, DeadTimeout: 20 * sim.Second, CheckInterval: 5 * sim.Second})
	h.nn.SeedFile("/in/data", 20*DefaultBlockSize, 0)
	dead := map[netmodel.NodeID]bool{}
	tick := h.heartbeatAll(dead)
	defer tick.Stop()
	for round := 0; round < 6; round++ {
		dead[h.all[round]] = true
		h.eng.RunUntil(h.eng.Now() + 2*sim.Minute)
	}
	if c := len(h.nn.replQueue.buf); c > 4*len(h.nn.blocks)+64 {
		t.Fatalf("replication ring capacity %d for %d blocks", c, len(h.nn.blocks))
	}
}
