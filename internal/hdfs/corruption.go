package hdfs

import (
	"sort"

	"hog/internal/event"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// This file models the faults beyond crash-stop (docs/FAULTS.md): silent
// block corruption with checksum detection on read, client read retry with
// replica failover and capped exponential backoff, gray-node flagging for
// placement avoidance, and partition-heal recovery that hands a dead-marked
// node's preserved replica inventory back to the namenode.

// Client read retry parameters: a read that finds no usable replica (or
// detects corruption) fails over and retries with capped exponential backoff,
// like a real DFS client's block-recovery loop. The jitter draws from the
// engine RNG only on these fault paths; fault-free reads never retry, so
// fault-free runs make zero draws here (determinism contract, docs/DESIGN.md).
const (
	readRetryBase   = 1 * sim.Second
	readRetryMax    = 15 * sim.Second
	maxReadAttempts = 6
)

// CorruptReplica silently flips bits in the replica of bid stored on node id:
// physical truth the namenode does not learn until a reader's checksum
// verification catches it. Reports whether a replica was actually corrupted
// (the node must physically hold one, live or preserved across a dead-marking).
func (nn *Namenode) CorruptReplica(bid BlockID, id netmodel.NodeID) bool {
	b := nn.blocks[bid]
	d := nn.datanodes[id]
	if b == nil || d == nil {
		return false
	}
	if _, live := d.blocks[bid]; !live {
		if _, held := d.held[bid]; !held {
			return false
		}
	}
	if b.corrupt == nil {
		b.corrupt = make(map[netmodel.NodeID]struct{})
	}
	if _, already := b.corrupt[id]; already {
		return false
	}
	b.corrupt[id] = struct{}{}
	nn.corruptCount++
	nn.stats.ReplicasCorrupted++
	if nn.Events.Active() {
		ev := event.At(event.ReplicaCorrupted, nn.eng.Now())
		ev.Node = id
		ev.Site = d.Site
		ev.Block = int64(bid)
		nn.Events.Emit(ev)
	}
	return true
}

// CorruptReplicaCount returns the number of known-to-the-model (not to the
// namenode) corrupt replicas currently in existence.
func (nn *Namenode) CorruptReplicaCount() int { return nn.corruptCount }

// forgetCorrupt drops every corruption marker on a block being deleted.
func (nn *Namenode) forgetCorrupt(b *BlockInfo) {
	nn.corruptCount -= len(b.corrupt)
	b.corrupt = nil
}

// VerifyRead is the checksum verification a consumer runs on bytes fetched
// from src: a clean replica returns true. A corrupt one is detected — never
// acknowledged as good data — invalidated out of the block map, its space
// reclaimed, and the block queued for re-replication; false tells the caller
// to fail over to another replica.
func (nn *Namenode) VerifyRead(bid BlockID, src netmodel.NodeID) bool {
	b := nn.blocks[bid]
	if b == nil {
		return true
	}
	if _, bad := b.corrupt[src]; !bad {
		return true
	}
	nn.stats.CorruptReadsDetected++
	if nn.Events.Active() {
		ev := event.At(event.CorruptReadDetected, nn.eng.Now())
		ev.Node = src
		ev.Block = int64(bid)
		nn.Events.Emit(ev)
	}
	nn.invalidateCorrupt(b, src)
	return false
}

// invalidateCorrupt removes a detected-corrupt replica from the block map and
// the node's physical inventory, reclaims its disk space, and queues the
// block for recovery — rarest-first orders see the diminished count at once.
func (nn *Namenode) invalidateCorrupt(b *BlockInfo, id netmodel.NodeID) {
	delete(b.corrupt, id)
	nn.corruptCount--
	nn.stats.ReplicasInvalidated++
	if d := nn.datanodes[id]; d != nil {
		delete(d.blocks, b.ID)
	}
	nn.disk.Release(id, b.Size)
	nn.dropReplica(b, id)
	if nn.Events.Active() {
		ev := event.At(event.ReplicaInvalidated, nn.eng.Now())
		ev.Node = id
		ev.Block = int64(b.ID)
		nn.Events.Emit(ev)
	}
	if nn.Degraded() {
		// The safe-mode exit sweep re-derives loss and recovery work.
		return
	}
	if len(b.replicas) == 0 && len(b.pending) == 0 {
		nn.loseBlock(b)
		return
	}
	if nn.effectiveReplicas(b)+len(b.pending) < nn.targetReplication(b) {
		nn.queueReplication(b.ID)
		nn.pumpReplication()
	}
}

// recoverPipelineHop records a write-pipeline hop dropped because its node
// was partitioned away or went gray mid-write; the chain closes around it.
func (nn *Namenode) recoverPipelineHop(bid BlockID, tid netmodel.NodeID) {
	nn.stats.PipelineRecoveries++
	if nn.Events.Active() {
		ev := event.At(event.PipelineRecovered, nn.eng.Now())
		ev.Node = tid
		ev.Block = int64(bid)
		nn.Events.Emit(ev)
	}
}

// SetNodeGray flags (or unflags) a node as gray-degraded: it still
// heartbeats, but placement refuses it until the flag clears. Idempotent.
func (nn *Namenode) SetNodeGray(id netmodel.NodeID, gray bool) {
	d := nn.datanodes[id]
	if d == nil || d.gray == gray {
		return
	}
	d.gray = gray
	if gray {
		nn.grayCount++
	} else {
		nn.grayCount--
	}
}

// GrayDatanodes returns the number of nodes currently flagged gray.
func (nn *Namenode) GrayDatanodes() int { return nn.grayCount }

// MarkPhysicallyLost records that a node's hardware is genuinely gone
// (preemption, kill, disk overflow): its preserved inventory, corruption
// markers, and gray flag die with it, and a later partition heal has nothing
// to recover. Safe in either order relative to the dead-timeout markDead.
func (nn *Namenode) MarkPhysicallyLost(id netmodel.NodeID) {
	d := nn.datanodes[id]
	if d == nil || d.physLost {
		return
	}
	d.physLost = true
	scrub := func(bid BlockID) {
		if b := nn.blocks[bid]; b != nil {
			if _, bad := b.corrupt[id]; bad {
				delete(b.corrupt, id)
				nn.corruptCount--
			}
		}
	}
	for bid := range d.blocks {
		scrub(bid)
	}
	for bid := range d.held {
		scrub(bid)
	}
	d.held = nil
	nn.SetNodeGray(id, false)
}

// RecoverDatanode brings back a node the namenode declared dead while its
// hardware kept running behind a network partition: the heal-side complement
// of markDead's held capture. The node re-registers with its preserved
// inventory — replicas the cluster re-replicated in the meantime come back as
// tolerated over-replication (set semantics, like a late block report), never
// double-counted. Returns the number of replicas restored to the block map.
func (nn *Namenode) RecoverDatanode(id netmodel.NodeID) int {
	if nn.down {
		return 0
	}
	d := nn.datanodes[id]
	if d == nil || d.Alive || d.physLost {
		return 0
	}
	d.Alive = true
	d.LastHeartbeat = nn.eng.Now()
	held := d.held
	d.held = nil
	bids := make([]BlockID, 0, len(held))
	for bid := range held {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	restored := 0
	for _, bid := range bids {
		b := nn.blocks[bid]
		if b == nil {
			// The file was deleted while the node was unreachable: its copy
			// is garbage, and no deletion path could reach the space it pins.
			nn.disk.Release(id, held[bid])
			continue
		}
		nn.addReplica(b, id)
		restored++
	}
	nn.stats.NodesRecovered++
	nn.stats.ReplicasRecovered += restored
	if nn.Events.Active() {
		ev := event.At(event.NodeRecovered, nn.eng.Now())
		ev.Node = id
		ev.Site = d.Site
		ev.Value = restored
		nn.Events.Emit(ev)
	}
	if nn.safeMode {
		nn.maybeExitSafeMode()
		return restored
	}
	// Mirror a late block report: top up anything still short (a recovered
	// corrupt replica does not help a block whose other copies also died).
	for _, bid := range bids {
		if b := nn.blocks[bid]; b != nil && nn.effectiveReplicas(b)+len(b.pending) < nn.targetReplication(b) {
			nn.queueReplication(bid)
		}
	}
	nn.pumpReplication()
	return restored
}

// ReadBlock transfers a block to the reader with the checksum verification a
// real DFS client performs: a corrupt replica is detected (never returned as
// good data), reported and invalidated, and the read fails over to another
// copy with capped exponential backoff. A read that finds no usable replica
// while a partition is live retries the same way — the replicas may be on the
// far side of a cut that heals. done(false) fires only when the retry budget
// is exhausted or the block is gone. Local reads are disk I/O.
func (nn *Namenode) ReadBlock(reader netmodel.NodeID, bid BlockID, done func(ok bool)) {
	nn.readAttempt(reader, bid, 0, done)
}

func (nn *Namenode) readAttempt(reader netmodel.NodeID, bid BlockID, attempt int, done func(ok bool)) {
	fail := func() {
		if done != nil {
			done(false)
		}
	}
	b := nn.blocks[bid]
	if b == nil {
		fail()
		return
	}
	retry := func() {
		if attempt+1 >= maxReadAttempts {
			fail()
			return
		}
		nn.eng.After(nn.readBackoff(attempt), func() {
			nn.readAttempt(reader, bid, attempt+1, done)
		})
	}
	src, local, ok := nn.ReadSource(reader, bid)
	if !ok {
		// Preserve pre-fault behaviour exactly when no fault is in play: a
		// block with no replicas fails fast (and draws no randomness) unless
		// a partition could be hiding them or a failover is already underway.
		if attempt == 0 && !nn.net.AnyPartition() {
			fail()
			return
		}
		retry()
		return
	}
	deliver := func() {
		if nn.blocks[bid] == nil {
			fail()
			return
		}
		if !nn.VerifyRead(bid, src) {
			retry()
			return
		}
		if done != nil {
			done(true)
		}
	}
	if local {
		nn.net.StartDiskIO(reader, b.Size, deliver)
		return
	}
	nn.net.StartFlow(src, reader, b.Size, deliver)
}

// readBackoff is the capped exponential client retry delay, jittered from the
// engine RNG — a fault-path-only draw (see the constants above).
func (nn *Namenode) readBackoff(attempt int) sim.Time {
	d := readRetryBase
	for i := 0; i < attempt && d < readRetryMax; i++ {
		d *= 2
	}
	if d > readRetryMax {
		d = readRetryMax
	}
	return d + sim.Time(nn.eng.Rand().Int63n(int64(d)/2+1))
}
