package hdfs

import (
	"sort"

	"hog/internal/netmodel"
)

// gatherCandidates fills the namenode's candidate scratch buffer with every
// live, non-excluded, non-draining datanode that has room for a block of
// the given size — in ascending ID order (dnOrder is maintained sorted, so
// no per-call sort) — then shuffles it with the engine's RNG so ties break
// randomly but reproducibly. The scan plus shuffle is O(datanodes); the old
// per-call sort made it O(datanodes log datanodes), the largest single cost
// of a LARGE-GRID run.
func (nn *Namenode) gatherCandidates(size float64, exclude map[netmodel.NodeID]struct{}) []*DatanodeInfo {
	cands := nn.candBuf[:0]
	for _, d := range nn.dnOrder {
		if !d.Alive {
			continue
		}
		if _, ex := exclude[d.ID]; ex {
			continue
		}
		if _, draining := nn.decommissioning[d.ID]; draining {
			continue
		}
		if nn.disk.Free(d.ID) >= size {
			cands = append(cands, d)
		}
	}
	nn.candBuf = cands
	if len(cands) == 0 {
		return cands
	}
	r := nn.eng.Rand()
	r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return cands
}

// spreadAcrossSites appends up to n targets chosen from cands (in shuffled
// order, skipping skipIx) to targets, greedily preferring sites hosting the
// fewest replicas chosen so far, so ten replicas of a block land on all
// five sites before doubling up anywhere. nn.siteCounts must hold the
// per-site seed counts (existing replicas) on entry; it is scratch and is
// left dirty.
//
// The greedy rule — "first candidate in shuffled order whose site count is
// minimal" — is evaluated through per-site FIFO queues of candidate
// positions: the winner is the earliest queue head among minimum-count
// sites, which is the same candidate the original O(replicas × candidates)
// rescan picked, at O(replicas × sites).
func (nn *Namenode) spreadAcrossSites(cands []*DatanodeInfo, skipIx int, n int, targets []netmodel.NodeID) []netmodel.NodeID {
	for s := range nn.siteCands {
		nn.siteCands[s] = nn.siteCands[s][:0]
	}
	remaining := 0
	for i, d := range cands {
		if i == skipIx {
			continue
		}
		nn.siteCands[d.siteIx] = append(nn.siteCands[d.siteIx], int32(i))
		remaining++
	}
	heads := nn.siteHeads
	for s := range heads {
		heads[s] = 0
	}
	for len(targets) < n && remaining > 0 {
		bestSite := -1
		bestCount := int(^uint(0) >> 1)
		bestPos := int32(0)
		for s := range nn.siteCands {
			if heads[s] >= len(nn.siteCands[s]) {
				continue
			}
			c := nn.siteCounts[s]
			if c < bestCount || (c == bestCount && nn.siteCands[s][heads[s]] < bestPos) {
				bestSite, bestCount, bestPos = s, c, nn.siteCands[s][heads[s]]
			}
		}
		d := cands[bestPos]
		nn.siteCounts[bestSite]++
		heads[bestSite]++
		remaining--
		targets = append(targets, d.ID)
	}
	return targets
}

// chooseTargets picks n distinct live datanodes with room for a block of the
// given size, excluding the nodes in exclude. writer, if a live datanode, is
// preferred for the first replica (Hadoop places replica one on the writing
// node). With SiteAware placement, the second replica goes to a different
// site than the first and subsequent replicas are spread so that replicas
// cover as many sites as possible — the paper's generalisation of Hadoop's
// source-rack + one-other-rack rule to the site failure domain. Without site
// awareness, targets are uniformly random.
//
// Fewer than n targets are returned when the cluster cannot satisfy the
// request; callers queue the block for later re-replication.
func (nn *Namenode) chooseTargets(writer netmodel.NodeID, size float64, n int, exclude map[netmodel.NodeID]struct{}) []netmodel.NodeID {
	if n <= 0 {
		return nil
	}
	cands := nn.gatherCandidates(size, exclude)
	if len(cands) == 0 {
		return nil
	}

	var targets []netmodel.NodeID
	skipIx := -1

	// Replica 1: the writer itself when possible (data locality for the
	// producing task).
	if w, ok := nn.datanodes[writer]; ok && w.Alive {
		if _, ex := exclude[writer]; !ex && nn.disk.Free(writer) >= size {
			for i := range cands {
				if cands[i].ID == writer {
					targets = append(targets, writer)
					skipIx = i
					break
				}
			}
		}
	}

	if !nn.cfg.SiteAware {
		for i := 0; len(targets) < n && i < len(cands); i++ {
			if i == skipIx {
				continue
			}
			targets = append(targets, cands[i].ID)
		}
		return targets
	}

	// Site-aware spreading, seeded with the replicas chosen so far.
	for s := range nn.siteCounts {
		nn.siteCounts[s] = 0
	}
	for _, id := range targets {
		nn.siteCounts[nn.datanodes[id].siteIx]++
	}
	return nn.spreadAcrossSites(cands, skipIx, n, targets)
}

// chooseReplicationTargets picks targets for re-replicating block b,
// counting its existing replicas toward the site spread.
func (nn *Namenode) chooseReplicationTargets(b *BlockInfo, n int) []netmodel.NodeID {
	exclude := make(map[netmodel.NodeID]struct{}, len(b.replicas)+len(b.pending))
	for id := range b.replicas {
		exclude[id] = struct{}{}
	}
	for id := range b.pending {
		exclude[id] = struct{}{}
	}
	if !nn.cfg.SiteAware {
		return nn.chooseTargets(-1, b.Size, n, exclude)
	}
	if n <= 0 {
		return nil
	}
	cands := nn.gatherCandidates(b.Size, exclude)
	if len(cands) == 0 {
		return nil
	}
	// Candidate pool as in chooseTargets, but seeded with the existing
	// replicas' site counts.
	for s := range nn.siteCounts {
		nn.siteCounts[s] = 0
	}
	for id := range b.replicas {
		if d, ok := nn.datanodes[id]; ok {
			nn.siteCounts[d.siteIx]++
		}
	}
	for id := range b.pending {
		if d, ok := nn.datanodes[id]; ok {
			nn.siteCounts[d.siteIx]++
		}
	}
	return nn.spreadAcrossSites(cands, -1, n, nil)
}

// SitesOf returns the distinct awareness sites currently hosting replicas of
// the block, for invariant checks and experiments.
func (nn *Namenode) SitesOf(b *BlockInfo) []string {
	seen := make(map[string]bool)
	var out []string
	for id := range b.replicas {
		if d, ok := nn.datanodes[id]; ok && !seen[d.Site] {
			seen[d.Site] = true
			out = append(out, d.Site)
		}
	}
	sort.Strings(out)
	return out
}
