package hdfs

import (
	"sort"

	"hog/internal/netmodel"
)

// gatherCandidates fills the namenode's candidate scratch buffer with every
// live, non-excluded, non-draining datanode that has room for a block of
// the given size — in ascending ID order (dnOrder is maintained sorted, so
// no per-call sort) — then shuffles it with the engine's RNG so ties break
// randomly but reproducibly. The scan plus shuffle is O(datanodes); the old
// per-call sort made it O(datanodes log datanodes), the largest single cost
// of a LARGE-GRID run.
func (nn *Namenode) gatherCandidates(size float64, exclude map[netmodel.NodeID]struct{}) []*DatanodeInfo {
	cands := nn.candBuf[:0]
	for _, d := range nn.dnOrder {
		if !d.Alive {
			continue
		}
		if d.gray {
			// A node flagged for gray degradation still heartbeats, but giving
			// it new replicas would stash data behind a slow disk and widen the
			// failure's blast radius; placement routes around it until the
			// degradation is lifted.
			continue
		}
		if _, ex := exclude[d.ID]; ex {
			continue
		}
		if _, draining := nn.decommissioning[d.ID]; draining {
			continue
		}
		if nn.disk.Free(d.ID) >= size {
			cands = append(cands, d)
		}
	}
	nn.candBuf = cands
	if len(cands) == 0 {
		return cands
	}
	r := nn.eng.Rand()
	r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return cands
}

// spreadAcrossSites appends up to n targets chosen from cands (in shuffled
// order, skipping skipIx) to targets, greedily preferring sites hosting the
// fewest replicas chosen so far, so ten replicas of a block land on all
// five sites before doubling up anywhere. nn.siteCounts must hold the
// per-site seed counts (existing replicas) on entry; it is scratch and is
// left dirty.
//
// The greedy rule — "first candidate in shuffled order whose site count is
// minimal" — is evaluated through per-site FIFO queues of candidate
// positions: the winner is the earliest queue head among minimum-count
// sites, which is the same candidate the original O(replicas × candidates)
// rescan picked, at O(replicas × sites).
func (nn *Namenode) spreadAcrossSites(cands []*DatanodeInfo, skipIx int, n int, targets []netmodel.NodeID) []netmodel.NodeID {
	for s := range nn.siteCands {
		nn.siteCands[s] = nn.siteCands[s][:0]
	}
	remaining := 0
	for i, d := range cands {
		if i == skipIx {
			continue
		}
		nn.siteCands[d.siteIx] = append(nn.siteCands[d.siteIx], int32(i))
		remaining++
	}
	heads := nn.siteHeads
	for s := range heads {
		heads[s] = 0
	}
	for len(targets) < n && remaining > 0 {
		bestSite := -1
		bestCount := int(^uint(0) >> 1)
		bestPos := int32(0)
		for s := range nn.siteCands {
			if heads[s] >= len(nn.siteCands[s]) {
				continue
			}
			c := nn.siteCounts[s]
			if c < bestCount || (c == bestCount && nn.siteCands[s][heads[s]] < bestPos) {
				bestSite, bestCount, bestPos = s, c, nn.siteCands[s][heads[s]]
			}
		}
		d := cands[bestPos]
		nn.siteCounts[bestSite]++
		heads[bestSite]++
		remaining--
		targets = append(targets, d.ID)
	}
	return targets
}

// chooseTargets picks replica targets for a new block through the active
// placement policy (policy.go; the default "grid" policy documents the
// paper's rule). Fewer than n targets are returned when the cluster cannot
// satisfy the request; callers queue the block for later re-replication.
func (nn *Namenode) chooseTargets(writer netmodel.NodeID, size float64, n int, exclude map[netmodel.NodeID]struct{}) []netmodel.NodeID {
	return nn.place.ChooseTargets(nn, writer, size, n, exclude)
}

// chooseReplicationTargets picks targets for re-replicating block b through
// the active placement policy, counting its existing replicas toward the
// spread.
func (nn *Namenode) chooseReplicationTargets(b *BlockInfo, n int) []netmodel.NodeID {
	return nn.place.ReplicationTargets(nn, b, n)
}

// SitesOf returns the distinct awareness sites currently hosting replicas of
// the block, for invariant checks and experiments.
func (nn *Namenode) SitesOf(b *BlockInfo) []string {
	seen := make(map[string]bool)
	var out []string
	for id := range b.replicas {
		if d, ok := nn.datanodes[id]; ok && !seen[d.Site] {
			seen[d.Site] = true
			out = append(out, d.Site)
		}
	}
	sort.Strings(out)
	return out
}
