package hdfs

import (
	"sort"

	"hog/internal/netmodel"
)

// chooseTargets picks n distinct live datanodes with room for a block of the
// given size, excluding the nodes in exclude. writer, if a live datanode, is
// preferred for the first replica (Hadoop places replica one on the writing
// node). With SiteAware placement, the second replica goes to a different
// site than the first and subsequent replicas are spread so that replicas
// cover as many sites as possible — the paper's generalisation of Hadoop's
// source-rack + one-other-rack rule to the site failure domain. Without site
// awareness, targets are uniformly random.
//
// Fewer than n targets are returned when the cluster cannot satisfy the
// request; callers queue the block for later re-replication.
func (nn *Namenode) chooseTargets(writer netmodel.NodeID, size float64, n int, exclude map[netmodel.NodeID]struct{}) []netmodel.NodeID {
	type cand struct {
		d    *DatanodeInfo
		free float64
	}
	var cands []cand
	for _, d := range nn.datanodes {
		if !d.Alive {
			continue
		}
		if _, ex := exclude[d.ID]; ex {
			continue
		}
		if _, draining := nn.decommissioning[d.ID]; draining {
			continue
		}
		if free := nn.disk.Free(d.ID); free >= size {
			cands = append(cands, cand{d, free})
		}
	}
	if len(cands) == 0 || n <= 0 {
		return nil
	}
	// Deterministic base order, then shuffle with the engine's RNG so ties
	// break randomly but reproducibly.
	sort.Slice(cands, func(i, j int) bool { return cands[i].d.ID < cands[j].d.ID })
	r := nn.eng.Rand()
	r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	var targets []netmodel.NodeID
	take := func(i int) {
		targets = append(targets, cands[i].d.ID)
		cands = append(cands[:i], cands[i+1:]...)
	}

	// Replica 1: the writer itself when possible (data locality for the
	// producing task).
	if w, ok := nn.datanodes[writer]; ok && w.Alive {
		if _, ex := exclude[writer]; !ex && nn.disk.Free(writer) >= size {
			for i := range cands {
				if cands[i].d.ID == writer {
					take(i)
					break
				}
			}
		}
	}

	if !nn.cfg.SiteAware {
		for len(targets) < n && len(cands) > 0 {
			take(0)
		}
		return targets
	}

	// Site-aware spreading: greedily prefer sites hosting the fewest
	// replicas chosen so far, so ten replicas of a block land on all five
	// sites before doubling up anywhere.
	siteCount := make(map[string]int)
	for _, id := range targets {
		siteCount[nn.datanodes[id].Site]++
	}
	for len(targets) < n && len(cands) > 0 {
		best := -1
		bestCount := int(^uint(0) >> 1)
		for i := range cands {
			c := siteCount[cands[i].d.Site]
			if c < bestCount {
				bestCount = c
				best = i
			}
		}
		siteCount[cands[best].d.Site]++
		take(best)
	}
	return targets
}

// chooseReplicationTargets picks targets for re-replicating block b,
// counting its existing replicas toward the site spread.
func (nn *Namenode) chooseReplicationTargets(b *BlockInfo, n int) []netmodel.NodeID {
	exclude := make(map[netmodel.NodeID]struct{}, len(b.replicas)+len(b.pending))
	siteCount := make(map[string]int)
	for id := range b.replicas {
		exclude[id] = struct{}{}
		if d, ok := nn.datanodes[id]; ok {
			siteCount[d.Site]++
		}
	}
	for id := range b.pending {
		exclude[id] = struct{}{}
		if d, ok := nn.datanodes[id]; ok {
			siteCount[d.Site]++
		}
	}
	if !nn.cfg.SiteAware {
		return nn.chooseTargets(-1, b.Size, n, exclude)
	}
	// Candidate pool as in chooseTargets, but seeded with the existing
	// replicas' site counts.
	type cand struct{ d *DatanodeInfo }
	var cands []cand
	for _, d := range nn.datanodes {
		if !d.Alive {
			continue
		}
		if _, ex := exclude[d.ID]; ex {
			continue
		}
		if _, draining := nn.decommissioning[d.ID]; draining {
			continue
		}
		if nn.disk.Free(d.ID) >= b.Size {
			cands = append(cands, cand{d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d.ID < cands[j].d.ID })
	r := nn.eng.Rand()
	r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	var targets []netmodel.NodeID
	for len(targets) < n && len(cands) > 0 {
		best := -1
		bestCount := int(^uint(0) >> 1)
		for i := range cands {
			c := siteCount[cands[i].d.Site]
			if c < bestCount {
				bestCount = c
				best = i
			}
		}
		siteCount[cands[best].d.Site]++
		targets = append(targets, cands[best].d.ID)
		cands = append(cands[:best], cands[best+1:]...)
	}
	return targets
}

// SitesOf returns the distinct awareness sites currently hosting replicas of
// the block, for invariant checks and experiments.
func (nn *Namenode) SitesOf(b *BlockInfo) []string {
	seen := make(map[string]bool)
	var out []string
	for id := range b.replicas {
		if d, ok := nn.datanodes[id]; ok && !seen[d.Site] {
			seen[d.Site] = true
			out = append(out, d.Site)
		}
	}
	sort.Strings(out)
	return out
}
