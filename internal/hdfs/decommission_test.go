package hdfs

import (
	"testing"

	"hog/internal/netmodel"
	"hog/internal/sim"
)

func TestDecommissionDrainsNode(t *testing.T) {
	h := newHarness(t, 41, 4, Config{Replication: 3, SiteAware: true})
	tk := h.heartbeatAll(nil)
	defer tk.Stop()
	for i := 0; i < 6; i++ {
		h.nn.SeedFile("/in/dec"+string(rune('a'+i)), DefaultBlockSize, 3)
	}
	// Pick a node hosting at least one block.
	var victim netmodel.NodeID = -1
	for _, id := range h.all {
		if h.nn.Datanode(id).Blocks() > 0 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Skip("no loaded node with this seed")
	}
	hosted := h.nn.Datanode(victim).Blocks()
	done := false
	h.nn.Decommission(victim, func() { done = true })
	if !h.nn.Decommissioning(victim) && !done {
		t.Fatal("node not marked decommissioning")
	}
	h.eng.RunUntil(30 * sim.Minute)
	if !done {
		t.Fatalf("decommission of node with %d blocks never completed (queue %d)", hosted, h.nn.UnderReplicated())
	}
	if h.nn.Datanode(victim).Blocks() != 0 {
		t.Fatalf("drained node still hosts %d blocks", h.nn.Datanode(victim).Blocks())
	}
	if h.dt.Used(victim) != 0 {
		t.Fatalf("drained node still charges %.0f bytes", h.dt.Used(victim))
	}
	// Every block still fully replicated without the victim.
	for i := 0; i < 6; i++ {
		f := h.nn.File("/in/dec" + string(rune('a'+i)))
		for _, bid := range f.Blocks {
			b := h.nn.Block(bid)
			if b.NumReplicas() < 3 {
				t.Fatalf("block %d has %d replicas after drain", bid, b.NumReplicas())
			}
			for _, r := range b.Replicas() {
				if r == victim {
					t.Fatal("block still lists drained node")
				}
			}
		}
	}
}

func TestDecommissionEmptyNodeImmediate(t *testing.T) {
	h := newHarness(t, 42, 2, Config{Replication: 2})
	// Find an empty node (no files seeded yet: all empty).
	done := false
	h.nn.Decommission(h.all[0], func() { done = true })
	if !done {
		t.Fatal("empty node decommission should complete synchronously")
	}
	if h.nn.Decommissioning(h.all[0]) {
		t.Fatal("empty node still draining")
	}
}

func TestDecommissionDeadNodeNoop(t *testing.T) {
	h := newHarness(t, 43, 2, Config{Replication: 2})
	h.nn.ForceDead(h.all[0])
	done := false
	h.nn.Decommission(h.all[0], func() { done = true })
	if !done {
		t.Fatal("decommission of dead node should call done immediately")
	}
}

// TestDecommissionRacesPreemption kills a node mid-drain — the elastic-shrink
// path racing a site preemption. The drain must resolve (done fires exactly
// once, the node stops draining) and the dead-node recovery path must restore
// every block to target with nothing stranded under-replicated.
func TestDecommissionRacesPreemption(t *testing.T) {
	h := newHarness(t, 45, 4, Config{Replication: 3, SiteAware: true, DeadTimeout: 30 * sim.Second})
	for i := 0; i < 6; i++ {
		h.nn.SeedFile("/in/race"+string(rune('a'+i)), DefaultBlockSize, 3)
	}
	var victim netmodel.NodeID = -1
	for _, id := range h.all {
		if h.nn.Datanode(id).Blocks() > 0 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Skip("no loaded node with this seed")
	}
	doneCalls := 0
	h.nn.Decommission(victim, func() { doneCalls++ })
	if !h.nn.Decommissioning(victim) {
		t.Fatal("drain completed synchronously; race not exercised")
	}
	// Preempt the draining node before its extra copies finish.
	h.nn.ForceDead(victim)
	if doneCalls != 1 {
		t.Fatalf("done called %d times after mid-drain death, want 1", doneCalls)
	}
	if h.nn.Decommissioning(victim) {
		t.Fatal("dead node still marked decommissioning")
	}
	tk := h.heartbeatAll(map[netmodel.NodeID]bool{victim: true})
	defer tk.Stop()
	h.eng.RunUntil(30 * sim.Minute)
	if doneCalls != 1 {
		t.Fatalf("done called %d times after recovery, want exactly 1", doneCalls)
	}
	if n := h.nn.UnderReplicated(); n != 0 {
		t.Fatalf("%d blocks stranded under-replicated after recovery", n)
	}
	for i := 0; i < 6; i++ {
		f := h.nn.File("/in/race" + string(rune('a'+i)))
		for _, bid := range f.Blocks {
			b := h.nn.Block(bid)
			if b.NumReplicas() < 3 {
				t.Fatalf("block %d has %d replicas after recovery", bid, b.NumReplicas())
			}
			for _, r := range b.Replicas() {
				if r == victim {
					t.Fatal("block still lists the preempted node")
				}
			}
		}
	}
}

func TestDecommissioningNodeNotATarget(t *testing.T) {
	h := newHarness(t, 44, 2, Config{Replication: 3})
	tk := h.heartbeatAll(nil)
	defer tk.Stop()
	h.nn.SeedFile("/in/x", DefaultBlockSize, 3)
	var empty netmodel.NodeID = -1
	for _, id := range h.all {
		if h.nn.Datanode(id).Blocks() == 0 {
			empty = id
			break
		}
	}
	if empty < 0 {
		t.Skip("no empty node")
	}
	h.nn.Decommission(empty, nil)
	// New files must not place replicas on the draining node... but an
	// empty node drains instantly, so decommission again on a loaded one
	// and verify placement avoidance while draining.
	var loaded netmodel.NodeID = -1
	for _, id := range h.all {
		if h.nn.Datanode(id).Blocks() > 0 {
			loaded = id
			break
		}
	}
	h.nn.Decommission(loaded, nil)
	if h.nn.Decommissioning(loaded) {
		for i := 0; i < 5; i++ {
			f := h.nn.SeedFile("/in/y"+string(rune('a'+i)), DefaultBlockSize, 3)
			for _, r := range h.nn.Block(f.Blocks[0]).Replicas() {
				if r == loaded {
					t.Fatal("placement chose a decommissioning node")
				}
			}
		}
	}
	h.eng.RunUntil(30 * sim.Minute)
}
