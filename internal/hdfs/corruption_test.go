package hdfs

import (
	"testing"

	"hog/internal/netmodel"
	"hog/internal/sim"
)

// TestCorruptReadDetectsFailsOverAndRepairs drives the full corruption loop:
// a silently corrupted replica is caught by checksum verification on read
// (never acknowledged as data), invalidated out of the block map, the read
// fails over to a clean copy and succeeds, and the re-replication queue
// restores full replication.
func TestCorruptReadDetectsFailsOverAndRepairs(t *testing.T) {
	h := newHarness(t, 21, 4, Config{Replication: 3, DeadTimeout: 30 * sim.Second, SiteAware: true})
	tk := h.heartbeatAll(nil)
	defer tk.Stop()
	f := h.nn.SeedFile("/in/rot", 2*DefaultBlockSize, 3)
	bid := f.Blocks[0]

	// The reader holds a replica itself, so ReadSource deterministically
	// serves the local copy first; corrupting that copy forces the first
	// attempt to detect and fail over.
	src := h.nn.Block(bid).Replicas()[0]
	reader := src
	if !h.nn.CorruptReplica(bid, src) {
		t.Fatal("CorruptReplica refused a held replica")
	}
	if h.nn.CorruptReplicaCount() != 1 {
		t.Fatalf("corrupt count = %d, want 1", h.nn.CorruptReplicaCount())
	}

	var got, called bool
	h.nn.ReadBlock(reader, bid, func(ok bool) { got, called = ok, true })
	h.eng.RunUntil(10 * sim.Minute)

	if !called || !got {
		t.Fatalf("read (called=%v ok=%v) did not recover via failover", called, got)
	}
	st := h.nn.Stats()
	if st.CorruptReadsDetected != 1 {
		t.Fatalf("CorruptReadsDetected = %d, want 1", st.CorruptReadsDetected)
	}
	if st.ReplicasInvalidated != 1 {
		t.Fatalf("ReplicasInvalidated = %d, want 1", st.ReplicasInvalidated)
	}
	if st.CorruptAcked != 0 {
		t.Fatalf("CorruptAcked = %d — corrupt bytes were returned as good data", st.CorruptAcked)
	}
	if h.nn.CorruptReplicaCount() != 0 {
		t.Fatalf("corrupt replicas left after invalidation: %d", h.nn.CorruptReplicaCount())
	}
	b := h.nn.Block(bid)
	if b.NumReplicas() != 3 {
		t.Fatalf("replicas = %d after repair, want 3", b.NumReplicas())
	}
	if b.CorruptOn(src) {
		t.Fatal("invalidated replica still marked corrupt")
	}
}

// TestReadBackoffIsCappedExponential pins the failover retry budget: a block
// whose every replica is corrupt burns all attempts with capped exponential
// backoff and then fails — it must not retry forever, and it must not hand
// back corrupt data.
func TestReadBackoffIsCappedExponential(t *testing.T) {
	h := newHarness(t, 22, 2, Config{Replication: 3, DeadTimeout: 30 * sim.Second})
	tk := h.heartbeatAll(nil)
	defer tk.Stop()
	f := h.nn.SeedFile("/in/doomed", DefaultBlockSize, 3)
	bid := f.Blocks[0]
	// Corrupt every current replica AND keep corrupting what re-replication
	// rebuilds from corrupt sources; the reader must eventually give up.
	for _, nid := range h.nn.Block(bid).Replicas() {
		h.nn.CorruptReplica(bid, nid)
	}
	var got, called bool
	start := h.eng.Now()
	h.nn.ReadBlock(h.all[len(h.all)-1], bid, func(ok bool) { got, called = ok, true })
	h.eng.RunUntil(start + 30*sim.Minute)
	if !called {
		t.Fatal("read never completed — retry loop is unbounded")
	}
	if got {
		// Re-replication may legitimately rebuild a clean copy from an
		// uncorrupted source before the budget runs out; what is forbidden
		// is acknowledging corrupt bytes.
		if h.nn.Stats().CorruptAcked != 0 {
			t.Fatal("read succeeded by acknowledging corrupt data")
		}
	}
	if h.nn.Stats().CorruptReadsDetected == 0 {
		t.Fatal("no corruption detected on an all-corrupt block")
	}
}

// TestGrayNodeExcludedFromPlacement flags nodes gray and checks both new
// placement and re-replication refuse them until the flag clears.
func TestGrayNodeExcludedFromPlacement(t *testing.T) {
	h := newHarness(t, 23, 2, Config{Replication: 3, DeadTimeout: 30 * sim.Second, SiteAware: true})
	gray := map[netmodel.NodeID]bool{h.all[0]: true, h.all[1]: true, h.all[2]: true}
	for id := range gray {
		h.nn.SetNodeGray(id, true)
	}
	if h.nn.GrayDatanodes() != 3 {
		t.Fatalf("GrayDatanodes = %d, want 3", h.nn.GrayDatanodes())
	}
	f := h.nn.SeedFile("/in/clean", 4*DefaultBlockSize, 3)
	for _, bid := range f.Blocks {
		for _, nid := range h.nn.Block(bid).Replicas() {
			if gray[nid] {
				t.Fatalf("block %d placed a replica on gray node %d", bid, nid)
			}
		}
	}
	for id := range gray {
		h.nn.SetNodeGray(id, false)
	}
	if h.nn.GrayDatanodes() != 0 {
		t.Fatalf("GrayDatanodes = %d after restore, want 0", h.nn.GrayDatanodes())
	}
}

// TestRecoverDatanodeRestoresHeldInventory walks the partitioned-not-dead
// path: a node silenced long enough to be declared dead keeps its physical
// replica inventory; when the partition heals, RecoverDatanode re-registers
// it and hands the preserved replicas back without double-counting what the
// cluster re-replicated in the meantime.
func TestRecoverDatanodeRestoresHeldInventory(t *testing.T) {
	h := newHarness(t, 24, 4, Config{Replication: 3, DeadTimeout: 30 * sim.Second, SiteAware: true})
	f := h.nn.SeedFile("/in/parted", 4*DefaultBlockSize, 3)
	victim := h.nn.Block(f.Blocks[0]).Replicas()[0]
	heldBlocks := 0
	for _, bid := range f.Blocks {
		b := h.nn.Block(bid)
		for _, nid := range b.Replicas() {
			if nid == victim {
				heldBlocks++
			}
		}
	}
	if heldBlocks == 0 {
		t.Fatal("victim holds no replicas of the test file")
	}

	// Silence the victim (a partition, not a crash): the dead timeout fires
	// and the cluster re-replicates around it.
	dead := map[netmodel.NodeID]bool{victim: true}
	tk := h.heartbeatAll(dead)
	defer tk.Stop()
	h.eng.RunUntil(20 * sim.Minute)
	if h.nn.Datanode(victim).Alive {
		t.Fatal("victim not declared dead")
	}
	for _, bid := range f.Blocks {
		if b := h.nn.Block(bid); b.NumReplicas() != 3 {
			t.Fatalf("block %d not re-replicated while victim down: %d", bid, b.NumReplicas())
		}
	}

	// Heal: the preserved inventory comes back as tolerated
	// over-replication, like a late block report.
	restored := h.nn.RecoverDatanode(victim)
	if restored != heldBlocks {
		t.Fatalf("restored %d replicas, held %d", restored, heldBlocks)
	}
	if !h.nn.Datanode(victim).Alive {
		t.Fatal("recovered node not alive")
	}
	for _, bid := range f.Blocks {
		b := h.nn.Block(bid)
		if n := b.NumReplicas(); n < 3 || n > 4 {
			t.Fatalf("block %d has %d replicas after heal, want 3 or 4 (set semantics)", bid, n)
		}
	}
	st := h.nn.Stats()
	if st.NodesRecovered != 1 || st.ReplicasRecovered != restored {
		t.Fatalf("stats NodesRecovered=%d ReplicasRecovered=%d, want 1, %d",
			st.NodesRecovered, st.ReplicasRecovered, restored)
	}
	// Recovering twice is a no-op.
	if again := h.nn.RecoverDatanode(victim); again != 0 {
		t.Fatalf("second recovery restored %d replicas, want 0", again)
	}
}

// TestPhysicallyLostNodeHasNothingToRecover pins the crash/partition
// distinction: a node whose hardware is actually gone (preempt, overflow)
// must not hand stale replicas back on a later heal.
func TestPhysicallyLostNodeHasNothingToRecover(t *testing.T) {
	h := newHarness(t, 25, 4, Config{Replication: 3, DeadTimeout: 30 * sim.Second, SiteAware: true})
	f := h.nn.SeedFile("/in/lost", 2*DefaultBlockSize, 3)
	victim := h.nn.Block(f.Blocks[0]).Replicas()[0]
	h.nn.MarkPhysicallyLost(victim)
	dead := map[netmodel.NodeID]bool{victim: true}
	tk := h.heartbeatAll(dead)
	defer tk.Stop()
	h.eng.RunUntil(20 * sim.Minute)
	if h.nn.Datanode(victim).Alive {
		t.Fatal("victim not declared dead")
	}
	if restored := h.nn.RecoverDatanode(victim); restored != 0 {
		t.Fatalf("physically lost node recovered %d replicas, want 0", restored)
	}
	if h.nn.Datanode(victim).Alive {
		t.Fatal("physically lost node came back alive")
	}
}

// TestFileDeletedDuringOutageReleasesHeldSpace covers the orphan-reclaim arm
// of RecoverDatanode: a file deleted while its holder was partitioned away
// pins disk space no deletion path could reach; the heal must release it.
func TestFileDeletedDuringOutageReleasesHeldSpace(t *testing.T) {
	h := newHarness(t, 26, 4, Config{Replication: 3, DeadTimeout: 30 * sim.Second, SiteAware: true})
	f := h.nn.SeedFile("/in/ephemeral", 2*DefaultBlockSize, 3)
	victim := h.nn.Block(f.Blocks[0]).Replicas()[0]
	dead := map[netmodel.NodeID]bool{victim: true}
	tk := h.heartbeatAll(dead)
	defer tk.Stop()
	h.eng.RunUntil(20 * sim.Minute)
	if h.nn.Datanode(victim).Alive {
		t.Fatal("victim not declared dead")
	}
	h.nn.DeleteFile("/in/ephemeral")
	before := h.dt.Used(victim)
	if restored := h.nn.RecoverDatanode(victim); restored != 0 {
		t.Fatalf("recovered %d replicas of a deleted file, want 0", restored)
	}
	if after := h.dt.Used(victim); after >= before {
		t.Fatalf("held space not released: %g -> %g bytes", before, after)
	}
}
