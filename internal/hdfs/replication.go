package hdfs

import (
	"sort"

	"hog/internal/event"
	"hog/internal/netmodel"
)

// replStream is one in-flight re-replication transfer.
type replStream struct {
	bid  BlockID
	src  netmodel.NodeID
	dst  netmodel.NodeID
	flow *netmodel.Flow
}

// blockRing is the FIFO recovery queue, backed by a circular buffer. The
// previous representation — append to a slice, advance with q = q[1:] —
// pinned the backing array of every block ever queued for the life of the
// namenode, O(total-ever-queued) memory under long churn scenarios; the
// ring bounds memory to the maximum concurrent backlog and shrinks again
// when a churn burst drains.
type blockRing struct {
	buf  []BlockID
	head int
	n    int
}

func (q *blockRing) len() int { return q.n }

func (q *blockRing) push(bid BlockID) {
	if q.n == len(q.buf) {
		q.resize(2 * max(q.n, 8))
	}
	q.buf[(q.head+q.n)%len(q.buf)] = bid
	q.n++
}

func (q *blockRing) pop() BlockID {
	bid := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	if len(q.buf) > 64 && q.n <= len(q.buf)/4 {
		q.resize(len(q.buf) / 2)
	}
	return bid
}

func (q *blockRing) resize(size int) {
	buf := make([]BlockID, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = buf, 0
}

// at returns the i-th queued block (0 is the head) without removing it.
func (q *blockRing) at(i int) BlockID { return q.buf[(q.head+i)%len(q.buf)] }

// removeAt removes and returns the i-th queued block, shifting later entries
// forward — O(n-i), used by non-FIFO replication orders; removeAt(0) is pop.
func (q *blockRing) removeAt(i int) BlockID {
	bid := q.at(i)
	for ; i < q.n-1; i++ {
		q.buf[(q.head+i)%len(q.buf)] = q.buf[(q.head+i+1)%len(q.buf)]
	}
	q.n--
	if len(q.buf) > 64 && q.n <= len(q.buf)/4 {
		q.resize(len(q.buf) / 2)
	}
	return bid
}

// queueReplication marks a block under-replicated. Duplicate enqueues are
// coalesced.
func (nn *Namenode) queueReplication(bid BlockID) {
	if _, ok := nn.replQueued[bid]; ok {
		return
	}
	if b := nn.blocks[bid]; b == nil {
		return
	}
	nn.replQueued[bid] = struct{}{}
	nn.replQueue.push(bid)
}

// pumpReplication starts recovery transfers up to the stream limit. Each
// transfer copies the block from a live replica to a placement-chosen
// target; on completion the replica count is re-checked and the block is
// re-queued if still short (e.g. the source died mid-copy, or the factor is
// 10 and one stream only adds one copy at a time).
func (nn *Namenode) pumpReplication() {
	if nn.down || nn.safeMode {
		// Recovery work is deferred while degraded: the queue keeps accruing
		// and the safe-mode exit sweep rebuilds it from the reported state.
		return
	}
	for nn.replStreams < nn.cfg.MaxReplicationStreams {
		// The active replication order (policy.go) picks which queued block
		// recovers next; the default "fifo" order pops the ring head.
		bid, ok := nn.replOrder.Next(nn)
		if !ok {
			break
		}
		delete(nn.replQueued, bid)
		b := nn.blocks[bid]
		if b == nil {
			continue
		}
		want := nn.targetReplication(b)
		have := nn.effectiveReplicas(b) + len(b.pending)
		if have >= want {
			continue
		}
		src, ok := nn.anyReplica(b)
		if !ok {
			if len(b.pending) == 0 {
				nn.loseBlock(b)
			}
			continue
		}
		targets := nn.chooseReplicationTargets(b, 1)
		if len(targets) == 0 {
			// No capacity anywhere right now; retry after a beat so new
			// nodes joining the pool can pick it up.
			nn.eng.After(nn.cfg.CheckInterval, func() {
				nn.queueReplication(bid)
				nn.pumpReplication()
			})
			continue
		}
		dst := targets[0]
		if !nn.net.Reachable(src, dst) {
			// A live partition severs the chosen source from the chosen
			// target. Retry after a beat: by then either the partition healed
			// or the dead scan retired whichever side is unreachable.
			nn.eng.After(nn.cfg.CheckInterval, func() {
				nn.queueReplication(bid)
				nn.pumpReplication()
			})
			continue
		}
		if !nn.disk.Reserve(dst, b.Size) {
			nn.queueReplication(bid)
			continue
		}
		b.pending[dst] = struct{}{}
		nn.replStreams++
		st := &replStream{bid: bid, src: src, dst: dst}
		nn.streams[st] = struct{}{}
		st.flow = nn.net.StartFlow(src, dst, b.Size, func() {
			delete(nn.streams, st)
			nn.replStreams--
			delete(b.pending, dst)
			if d, ok := nn.datanodes[dst]; ok && d.Alive && nn.blocks[bid] != nil {
				nn.addReplica(b, dst)
				nn.stats.ReplicationsDone++
				nn.stats.BytesReplicated += b.Size
				if nn.Events.Active() {
					ev := event.At(event.ReplicationDone, nn.eng.Now())
					ev.Block = int64(bid)
					ev.Node = dst
					nn.Events.Emit(ev)
				}
			} else {
				nn.disk.Release(dst, b.Size)
			}
			if nn.blocks[bid] != nil && nn.effectiveReplicas(b)+len(b.pending) < nn.targetReplication(b) {
				nn.queueReplication(bid)
			}
			nn.checkAllDecommissions()
			nn.pumpReplication()
		})
	}
}

// effectiveReplicas counts replicas on nodes that are staying: replicas on
// decommissioning nodes do not satisfy the target.
func (nn *Namenode) effectiveReplicas(b *BlockInfo) int {
	n := 0
	for id := range b.replicas {
		if _, draining := nn.decommissioning[id]; !draining {
			n++
		}
	}
	return n
}

func (nn *Namenode) checkAllDecommissions() {
	if len(nn.decommissioning) == 0 {
		return
	}
	ids := make([]netmodel.NodeID, 0, len(nn.decommissioning))
	for id := range nn.decommissioning {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		nn.checkDecommission(id)
	}
}

// cancelStreamsTouching aborts in-flight replication streams whose source or
// destination died: a copy cannot proceed from a dead source, and a copy to
// a dead target is wasted. Affected blocks are re-queued (or declared lost).
func (nn *Namenode) cancelStreamsTouching(id netmodel.NodeID) {
	var doomed []*replStream
	for st := range nn.streams {
		if st.src == id || st.dst == id {
			doomed = append(doomed, st)
		}
	}
	sort.Slice(doomed, func(i, j int) bool {
		// A block can have several in-flight streams; break bid ties on the
		// endpoints so cancellation order never depends on map iteration.
		if doomed[i].bid != doomed[j].bid {
			return doomed[i].bid < doomed[j].bid
		}
		if doomed[i].dst != doomed[j].dst {
			return doomed[i].dst < doomed[j].dst
		}
		return doomed[i].src < doomed[j].src
	})
	for _, st := range doomed {
		st.flow.Cancel()
		delete(nn.streams, st)
		nn.replStreams--
		b := nn.blocks[st.bid]
		if b == nil {
			nn.disk.Release(st.dst, 0)
			continue
		}
		delete(b.pending, st.dst)
		nn.disk.Release(st.dst, b.Size)
		if len(b.replicas) == 0 && len(b.pending) == 0 {
			nn.loseBlock(b)
		} else if len(b.replicas)+len(b.pending) < nn.targetReplication(b) {
			nn.queueReplication(st.bid)
		}
	}
}

func (nn *Namenode) targetReplication(b *BlockInfo) int {
	if f, ok := nn.files[b.File]; ok {
		return f.Replication
	}
	return nn.cfg.Replication
}

func (nn *Namenode) anyReplica(b *BlockInfo) (src netmodel.NodeID, ok bool) {
	ids := make([]netmodel.NodeID, 0, len(b.replicas))
	for id := range b.replicas {
		if d, okd := nn.datanodes[id]; okd && d.Alive {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return 0, false
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[nn.eng.Rand().Intn(len(ids))], true
}
