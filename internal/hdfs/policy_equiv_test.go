package hdfs

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hog/internal/event"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// placementFingerprint serializes everything the placement and replication
// policies decided: every block's final replica set (sorted), the recovery
// statistics, and the full ReplicationDone event order. Two runs with
// identical fingerprints made bit-identical placement decisions.
func placementFingerprint(h *harness, log *event.Log) []string {
	var out []string
	bids := make([]BlockID, 0, len(h.nn.blocks))
	for bid := range h.nn.blocks {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	for _, bid := range bids {
		b := h.nn.blocks[bid]
		reps := b.Replicas()
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
		out = append(out, fmt.Sprintf("block %d replicas=%v lost=%v", bid, reps, b.Lost()))
	}
	out = append(out, fmt.Sprintf("stats repl=%d bytes=%.0f lost=%d",
		h.nn.stats.ReplicationsDone, h.nn.stats.BytesReplicated, h.nn.stats.BlocksLost))
	for _, ev := range log.Events() {
		out = append(out, fmt.Sprintf("ev %v t=%d block=%d node=%d", ev.Type, ev.Time, ev.Block, ev.Node))
	}
	return out
}

// runPlacementChurn seeds files, kills a seeded subset of nodes under
// heartbeats so recovery has real work, and returns the placement
// fingerprint. mod edits the namenode config before construction — the hook
// that pins explicit policy names against the defaults on identical inputs.
func runPlacementChurn(t *testing.T, seed int64, churn int, mod func(*Config)) []string {
	t.Helper()
	cfg := Config{Replication: 3, SiteAware: true, DeadTimeout: 20 * sim.Second, CheckInterval: 5 * sim.Second}
	if mod != nil {
		mod(&cfg)
	}
	h := newHarness(t, seed, 4, cfg) // 20 nodes over 5 sites
	log := event.NewLog(event.ReplicationDone, event.BlockLost)
	h.nn.Events = &event.Bus{}
	h.nn.Events.Subscribe(log)
	for f := 0; f < 4; f++ {
		h.nn.SeedFile(fmt.Sprintf("/in/f%d", f), 6*DefaultBlockSize, 0)
	}
	dead := map[netmodel.NodeID]bool{}
	tick := h.heartbeatAll(dead)
	defer tick.Stop()
	r := h.eng.Rand()
	for i := 0; i < churn; i++ {
		// Kill distinct nodes at staggered instants; draws come from the
		// engine RNG, identical under every policy-naming variant.
		at := h.eng.Now() + sim.Time(int64(30*sim.Second)+r.Int63n(int64(sim.Minute)))
		node := h.all[r.Intn(len(h.all))]
		h.eng.Schedule(at, func() {
			if !dead[node] {
				dead[node] = true
				h.dt.Clear(node)
			}
		})
		h.eng.RunUntil(at)
	}
	h.eng.RunUntil(h.eng.Now() + 10*sim.Minute)
	return placementFingerprint(h, log)
}

// TestDefaultPlacementPolicyEquivalence is the extraction contract for the
// hdfs decision points: naming the default policies explicitly ("grid",
// "fifo") must reproduce the empty-name run bit for bit — same replica
// targets, same recovery order, same event stream — across seeds and churn
// intensities.
func TestDefaultPlacementPolicyEquivalence(t *testing.T) {
	explicit := func(c *Config) {
		c.PlacementPolicy = PlacementGrid
		c.ReplicationOrder = ReplicationFIFO
	}
	for _, churn := range []int{0, 3, 6} {
		for seed := int64(1); seed <= 3; seed++ {
			base := runPlacementChurn(t, seed, churn, nil)
			named := runPlacementChurn(t, seed, churn, explicit)
			if len(base) != len(named) {
				t.Fatalf("churn %d seed %d: fingerprint lengths diverge: default %d, named %d",
					churn, seed, len(base), len(named))
			}
			for i := range base {
				if base[i] != named[i] {
					t.Fatalf("churn %d seed %d line %d:\ndefault: %s\nnamed:   %s",
						churn, seed, i, base[i], named[i])
				}
			}
		}
	}
}

// TestAlternatePlacementPoliciesDeterministic: the alternatives must be
// exactly reproducible across identical runs.
func TestAlternatePlacementPoliciesDeterministic(t *testing.T) {
	alt := func(c *Config) {
		c.PlacementPolicy = PlacementRandom
		c.ReplicationOrder = ReplicationRarest
	}
	a := runPlacementChurn(t, 42, 5, alt)
	b := runPlacementChurn(t, 42, 5, alt)
	if len(a) != len(b) {
		t.Fatalf("fingerprint lengths diverge across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("line %d diverges across identical runs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestRarestOrderRecoversMostEndangeredFirst: with one singly-replicated
// block queued behind a backlog of healthier blocks, the rarest-first order
// must serve it first while FIFO serves the queue head.
func TestRarestOrderRecoversMostEndangeredFirst(t *testing.T) {
	h := newHarness(t, 9, 2, Config{Replication: 3, MaxReplicationStreams: 1})
	// Build a queue by hand: healthy-ish blocks first, the endangered block
	// last, so FIFO and rarest-first must disagree on the next pick.
	f := h.nn.SeedFile("/in/data", 4*DefaultBlockSize, 0)
	for _, bid := range f.Blocks {
		h.nn.queueReplication(bid)
	}
	endangered := f.Blocks[len(f.Blocks)-1]
	b := h.nn.blocks[endangered]
	var victims []netmodel.NodeID
	for id := range b.replicas {
		victims = append(victims, id)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, id := range victims[1:] { // leave one replica
		h.nn.dropReplica(b, id)
	}
	fifo, _ := NewReplicationOrder("")
	if bid, ok := fifo.Next(h.nn); !ok || bid != f.Blocks[0] {
		t.Fatalf("fifo served block %d, want queue head %d", bid, f.Blocks[0])
	}
	rarest, _ := NewReplicationOrder(ReplicationRarest)
	if bid, ok := rarest.Next(h.nn); !ok || bid != endangered {
		t.Fatalf("rarest-first served block %d, want endangered block %d", bid, endangered)
	}
}

// TestRandomPlacementIgnoresWriter: the random policy must not prefer the
// writer node, where the grid policy pins replica one to it.
func TestRandomPlacementIgnoresWriter(t *testing.T) {
	onWriter := func(cfg Config, seed int64) int {
		h := newHarness(t, seed, 4, cfg)
		writer := h.all[0]
		n := 0
		for i := 0; i < 20; i++ {
			targets := h.nn.chooseTargets(writer, DefaultBlockSize, 3, nil)
			if len(targets) != 3 {
				t.Fatalf("placement returned %d targets, want 3", len(targets))
			}
			for _, id := range targets {
				if id == writer {
					n++
				}
			}
		}
		return n
	}
	grid := onWriter(Config{Replication: 3, SiteAware: true}, 4)
	if grid != 20 {
		t.Fatalf("grid policy placed %d/20 first replicas on the writer", grid)
	}
	random := onWriter(Config{Replication: 3, SiteAware: true, PlacementPolicy: PlacementRandom}, 4)
	if random == 20 {
		t.Fatal("random policy always hit the writer; it should not prefer it")
	}
}

// TestHDFSPolicyRegistry pins the registry surface: defaults, unknown-name
// errors listing the valid names, and sorted listings.
func TestHDFSPolicyRegistry(t *testing.T) {
	if p, err := NewPlacementPolicy(""); err != nil || p.Name() != PlacementGrid {
		t.Fatalf("empty placement name: got %v, %v", p, err)
	}
	if p, err := NewReplicationOrder(""); err != nil || p.Name() != ReplicationFIFO {
		t.Fatalf("empty replication name: got %v, %v", p, err)
	}
	if _, err := NewPlacementPolicy("nope"); err == nil || !strings.Contains(err.Error(), PlacementRandom) {
		t.Fatalf("unknown placement name error %v should list valid names", err)
	}
	if _, err := NewReplicationOrder("nope"); err == nil || !strings.Contains(err.Error(), ReplicationRarest) {
		t.Fatalf("unknown replication name error %v should list valid names", err)
	}
	if got := PlacementPolicyNames(); strings.Join(got, ",") != "grid,random" {
		t.Fatalf("placement names %v", got)
	}
	if got := ReplicationOrderNames(); strings.Join(got, ",") != "fifo,rarest" {
		t.Fatalf("replication order names %v", got)
	}
}
