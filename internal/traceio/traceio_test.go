package traceio

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"hog/internal/metrics"
	"hog/internal/sim"
)

func sampleSeries() *metrics.Series {
	s := metrics.NewSeries("nodes")
	s.Add(0, 55)
	s.Add(10*sim.Second, 52)
	s.Add(25*sim.Second, 55)
	return s
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want header + 3", len(rows))
	}
	if rows[0][0] != "t_s" || rows[0][1] != "nodes" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[2][0] != "10.000" || rows[2][1] != "52.000" {
		t.Fatalf("row = %v", rows[2])
	}
}

func TestWriteSeriesJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesJSON(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	var got SeriesJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "nodes" || len(got.Points) != 3 {
		t.Fatalf("decoded %+v", got)
	}
	if got.Points[1] != [2]float64{10, 52} {
		t.Fatalf("point = %v", got.Points[1])
	}
}

func TestWriteSweepCSV(t *testing.T) {
	rows := []ResponseRow{
		{X: 55, Label: "hog", Responses: []sim.Time{4396 * sim.Second, 3896 * sim.Second}},
		{X: 100, Label: "hog", Responses: []sim.Time{2600 * sim.Second}},
		{X: 0, Label: "cluster"},
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, "nodes", rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	if !strings.HasPrefix(recs[0][2], "run1") || recs[0][4] != "mean_s" {
		t.Fatalf("header = %v", recs[0])
	}
	// Mean of 4396 and 3896 is 4146.
	if recs[1][4] != "4146.0" {
		t.Fatalf("mean = %q", recs[1][4])
	}
	// Missing runs are blank, empty responses give blank mean.
	if recs[2][3] != "" || recs[3][4] != "" {
		t.Fatalf("padding wrong: %v / %v", recs[2], recs[3])
	}
}
