package grid

import (
	"testing"
	"testing/quick"

	"hog/internal/event"
	"hog/internal/netmodel"
	"hog/internal/sim"
	"hog/internal/topology"
)

func newTestPool(seed int64, sites []SiteConfig, cfg PoolConfig) (*sim.Engine, *netmodel.Network, *Pool) {
	eng := sim.New(seed)
	net := netmodel.New(eng, netmodel.Config{})
	return eng, net, NewPool(eng, net, sites, cfg)
}

func quietSites(n int) []SiteConfig {
	sites := OSGSites(ChurnNone)
	return sites[:n]
}

func TestPoolReachesTarget(t *testing.T) {
	eng, _, p := newTestPool(1, quietSites(5), DefaultPoolConfig())
	joins := 0
	p.OnJoin = func(*Node) { joins++ }
	p.SetTarget(100)
	eng.RunUntil(30 * sim.Minute)
	if p.AliveCount() != 100 {
		t.Fatalf("alive = %d, want 100", p.AliveCount())
	}
	if joins != 100 {
		t.Fatalf("join callbacks = %d, want 100", joins)
	}
	if p.Stats().Provisioned != 100 {
		t.Fatalf("provisioned = %d, want 100", p.Stats().Provisioned)
	}
}

func TestPoolReplacesPreemptedNodes(t *testing.T) {
	sites := OSGSites(ChurnUnstable)
	eng, _, p := newTestPool(2, sites, DefaultPoolConfig())
	preempts := 0
	p.OnPreempt = func(n *Node) {
		preempts++
		if n.Alive {
			t.Error("OnPreempt called with Alive node")
		}
	}
	p.SetTarget(55)
	eng.RunUntil(4 * sim.Hour)
	if preempts == 0 {
		t.Fatal("no preemptions under unstable churn in 4h")
	}
	if got := p.AliveCount(); got < 45 || got > 55 {
		t.Fatalf("alive after churn = %d, want near 55", got)
	}
	st := p.Stats()
	if st.Provisioned != p.AliveCount()+st.Preempted+st.BatchPreempted+st.Killed {
		t.Fatalf("replacement accounting off: %+v alive=%d", st, p.AliveCount())
	}
}

func TestTargetDecreaseReleasesNodes(t *testing.T) {
	eng, _, p := newTestPool(3, quietSites(5), DefaultPoolConfig())
	p.SetTarget(50)
	eng.RunUntil(30 * sim.Minute)
	p.SetTarget(20)
	eng.RunUntil(35 * sim.Minute)
	if p.AliveCount() != 20 {
		t.Fatalf("alive = %d after shrink, want 20", p.AliveCount())
	}
	if p.Stats().Released != 30 {
		t.Fatalf("released = %d, want 30", p.Stats().Released)
	}
	// Grow again: elastic.
	p.SetTarget(40)
	eng.RunUntil(60 * sim.Minute)
	if p.AliveCount() != 40 {
		t.Fatalf("alive = %d after regrow, want 40", p.AliveCount())
	}
}

func TestInFlightNotOverProvisioned(t *testing.T) {
	eng, _, p := newTestPool(4, quietSites(5), DefaultPoolConfig())
	p.SetTarget(100)
	// Shrink before any provisioning completes.
	p.SetTarget(10)
	eng.RunUntil(time30())
	if p.AliveCount() != 10 {
		t.Fatalf("alive = %d, want 10 (requests in flight must not overshoot)", p.AliveCount())
	}
}

func time30() sim.Time { return 30 * sim.Minute }

func TestSiteCapacityRespected(t *testing.T) {
	sites := quietSites(2)
	sites[0].Capacity = 5
	sites[1].Capacity = 7
	eng, _, p := newTestPool(5, sites, DefaultPoolConfig())
	p.SetTarget(50) // far above total capacity 12
	eng.RunUntil(20 * sim.Minute)
	if got := p.AliveCount(); got != 12 {
		t.Fatalf("alive = %d, want capacity-bound 12", got)
	}
	if p.AliveAtSite(0) != 5 || p.AliveAtSite(1) != 7 {
		t.Fatalf("per-site alive = %d,%d, want 5,7", p.AliveAtSite(0), p.AliveAtSite(1))
	}
}

func TestKillRequestsReplacement(t *testing.T) {
	eng, _, p := newTestPool(6, quietSites(5), DefaultPoolConfig())
	p.SetTarget(10)
	eng.RunUntil(20 * sim.Minute)
	victim := p.AliveNodes()[0]
	p.Kill(victim.ID)
	if victim.Alive {
		t.Fatal("killed node still alive")
	}
	eng.RunUntil(40 * sim.Minute)
	if p.AliveCount() != 10 {
		t.Fatalf("alive = %d after kill+replace, want 10", p.AliveCount())
	}
	if p.Stats().Killed != 1 {
		t.Fatalf("killed = %d, want 1", p.Stats().Killed)
	}
	if p.Node(victim.ID) == nil {
		t.Fatal("dead node should remain queryable")
	}
}

func TestPreemptSiteFraction(t *testing.T) {
	eng, _, p := newTestPool(7, quietSites(5), DefaultPoolConfig())
	p.SetTarget(100)
	eng.RunUntil(30 * sim.Minute)
	before := p.AliveAtSite(0)
	if before == 0 {
		t.Skip("no nodes at site 0 with this seed")
	}
	k := p.PreemptSite(0, 1.0)
	if k != before {
		t.Fatalf("PreemptSite(1.0) removed %d, want all %d", k, before)
	}
	if p.AliveAtSite(0) != 0 {
		t.Fatalf("site 0 alive = %d after full preempt", p.AliveAtSite(0))
	}
}

func TestHostnamesMapToSiteDomains(t *testing.T) {
	eng, net, p := newTestPool(8, quietSites(5), DefaultPoolConfig())
	p.SetTarget(60)
	eng.RunUntil(30 * sim.Minute)
	m := topology.NewMapper()
	domains := map[string]bool{}
	for _, sc := range quietSites(5) {
		domains[topology.SiteFromHostname("x."+sc.Domain)] = true
	}
	for _, n := range p.AliveNodes() {
		site := m.Site(n.Hostname)
		if !domains[site] {
			t.Fatalf("hostname %q mapped to unknown site %q", n.Hostname, site)
		}
		if net.Hostname(n.ID) != n.Hostname {
			t.Fatal("netmodel hostname mismatch")
		}
	}
	if len(m.Sites()) < 2 {
		t.Fatalf("expected nodes spread over >=2 sites, got %v", m.Sites())
	}
}

func TestNodeSlotsFromConfig(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.MapSlots = 3
	cfg.ReduceSlots = 2
	eng, _, p := newTestPool(9, quietSites(5), cfg)
	p.SetTarget(5)
	eng.RunUntil(20 * sim.Minute)
	for _, n := range p.AliveNodes() {
		if n.MapSlots != 3 || n.ReduceSlots != 2 {
			t.Fatalf("slots = %d/%d, want 3/2", n.MapSlots, n.ReduceSlots)
		}
	}
}

func TestChurnProfilesOrdering(t *testing.T) {
	run := func(profile ChurnProfile) int {
		eng, _, p := newTestPool(11, OSGSites(profile), DefaultPoolConfig())
		p.SetTarget(55)
		eng.RunUntil(3 * sim.Hour)
		st := p.Stats()
		return st.Preempted + st.BatchPreempted
	}
	none, stable, unstable := run(ChurnNone), run(ChurnStable), run(ChurnUnstable)
	if none != 0 {
		t.Fatalf("ChurnNone produced %d preemptions", none)
	}
	if !(unstable > stable) {
		t.Fatalf("unstable (%d) should preempt more than stable (%d)", unstable, stable)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, int) {
		eng, _, p := newTestPool(42, OSGSites(ChurnUnstable), DefaultPoolConfig())
		p.SetTarget(55)
		eng.RunUntil(2 * sim.Hour)
		st := p.Stats()
		return st.Provisioned, st.Preempted + st.BatchPreempted
	}
	p1, l1 := run()
	p2, l2 := run()
	if p1 != p2 || l1 != l2 {
		t.Fatalf("pool not deterministic: (%d,%d) vs (%d,%d)", p1, l1, p2, l2)
	}
}

// Property: for any target within capacity, the pool converges to exactly
// that many alive nodes and never exceeds per-site capacity.
func TestTargetConvergenceProperty(t *testing.T) {
	f := func(raw uint8) bool {
		target := int(raw)%120 + 1
		eng, _, p := newTestPool(int64(raw)+1, quietSites(5), DefaultPoolConfig())
		p.SetTarget(target)
		eng.RunUntil(time30())
		if p.AliveCount() != target {
			return false
		}
		for i := range p.SiteNames() {
			if p.AliveAtSite(i) > quietSites(5)[i].Capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNoSitesPanics(t *testing.T) {
	eng := sim.New(1)
	net := netmodel.New(eng, netmodel.Config{})
	defer func() {
		if recover() == nil {
			t.Error("NewPool with no sites did not panic")
		}
	}()
	NewPool(eng, net, nil, PoolConfig{})
}

func TestSiteIndexByName(t *testing.T) {
	_, _, p := newTestPool(1, quietSites(5), DefaultPoolConfig())
	for i, name := range p.SiteNames() {
		if got := p.SiteIndexByName(name); got != i {
			t.Fatalf("SiteIndexByName(%q) = %d, want %d", name, got, i)
		}
	}
	if got := p.SiteIndexByName("NO_SUCH_SITE"); got != -1 {
		t.Fatalf("unknown site resolved to %d", got)
	}
}

// TestPreemptSiteNamedMatchesIndex pins the name-based site preemption to
// the index-based one: same seed, same site, identical kill decision.
func TestPreemptSiteNamedMatchesIndex(t *testing.T) {
	run := func(byName bool) (killed, alive int) {
		eng, _, p := newTestPool(9, quietSites(5), DefaultPoolConfig())
		p.SetTarget(60)
		eng.RunUntil(time30())
		if byName {
			n, err := p.PreemptSiteNamed("FNAL_FERMIGRID", 1.0)
			if err != nil {
				t.Fatal(err)
			}
			killed = n
		} else {
			killed = p.PreemptSite(0, 1.0)
		}
		return killed, p.AliveCount()
	}
	ik, ia := run(false)
	nk, na := run(true)
	if ik != nk || ia != na {
		t.Fatalf("name-based preemption diverged: index (%d,%d) vs name (%d,%d)", ik, ia, nk, na)
	}
	if ik == 0 {
		t.Fatal("outage killed nothing")
	}
	_, _, p := newTestPool(9, quietSites(5), DefaultPoolConfig())
	if _, err := p.PreemptSiteNamed("NO_SUCH_SITE", 1.0); err == nil {
		t.Fatal("unknown site name did not error")
	}
}

func TestBurstAndKillFraction(t *testing.T) {
	eng, _, p := newTestPool(4, quietSites(5), DefaultPoolConfig())
	p.SetTarget(80)
	eng.RunUntil(time30())
	if n := p.BurstPreempt(0.5); n < 30 || n > 50 {
		t.Fatalf("BurstPreempt(0.5) killed %d of 80", n)
	}
	eng.RunUntil(eng.Now() + time30()) // pool heals
	if p.AliveCount() != 80 {
		t.Fatalf("pool did not heal after burst: alive=%d", p.AliveCount())
	}
	if n := p.KillFraction(0.25); n != 20 {
		t.Fatalf("KillFraction(0.25) killed %d of 80, want 20", n)
	}
	if p.Stats().Killed < 20 {
		t.Fatalf("killed counter = %d", p.Stats().Killed)
	}
}

func TestPoolEmitsLifecycleEvents(t *testing.T) {
	eng, _, p := newTestPool(3, quietSites(5), DefaultPoolConfig())
	log := event.NewLog()
	p.Events = &event.Bus{}
	p.Events.Subscribe(log)
	p.SetTarget(30)
	eng.RunUntil(time30())
	p.KillFraction(0.5)
	if got := log.Count(event.PoolRetarget); got != 1 {
		t.Fatalf("PoolRetarget events = %d, want 1", got)
	}
	if got := log.Count(event.NodeJoined); got < 30 {
		t.Fatalf("NodeJoined events = %d, want >= 30", got)
	}
	if got := log.Count(event.NodePreempted); got != 15 {
		t.Fatalf("NodePreempted events = %d, want 15", got)
	}
	for _, e := range log.Events() {
		if e.Type == event.NodePreempted && e.Detail != "killed" {
			t.Fatalf("kill preemption labelled %q", e.Detail)
		}
		if e.Type == event.NodeJoined && e.Site == "" {
			t.Fatal("NodeJoined without site name")
		}
	}
}
