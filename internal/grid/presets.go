package grid

import "hog/internal/sim"

// ChurnProfile selects how hostile the grid is. The paper's Figure 5 shows
// two "stable" 55-node runs and one "unstable" run; profiles parameterise
// that difference.
type ChurnProfile int

// Churn profiles, from friendliest to most hostile.
const (
	// ChurnNone disables preemption entirely (used to isolate other effects).
	ChurnNone ChurnProfile = iota
	// ChurnStable models a quiet week: long node lifetimes, rare small
	// batch preemptions (Figures 5a/5b).
	ChurnStable
	// ChurnUnstable models contention from higher-priority users: shorter
	// lifetimes and frequent batch preemptions (Figure 5c).
	ChurnUnstable
)

// OSGSites returns the five sites from the paper's Condor submission file
// (Listing 1) with the given churn profile applied.
//
// Domains: the two Fermilab clusters (FNAL_FERMIGRID, USCMS-FNAL-WC1) really
// share the fnal.gov DNS suffix; we give the WC1 cluster a distinct synthetic
// domain so each site remains its own failure domain for site awareness, and
// note the substitution in DESIGN.md. UCSDT2, AGLT2 and MIT_CMS use their
// hosting institutions' domains.
func OSGSites(profile ChurnProfile) []SiteConfig {
	sites := []SiteConfig{
		{Name: "FNAL_FERMIGRID", Domain: "fnal.gov", Capacity: 400},
		{Name: "USCMS-FNAL-WC1", Domain: "wc1-fnal.gov", Capacity: 350},
		{Name: "UCSDT2", Domain: "ucsd.edu", Capacity: 250},
		{Name: "AGLT2", Domain: "aglt2.org", Capacity: 200},
		{Name: "MIT_CMS", Domain: "mit.edu", Capacity: 150},
	}
	for i := range sites {
		sites[i].UplinkBps = 300e6 // ~2.4 Gbps WAN uplink per site
		sites[i].DownlinkBps = 300e6
		switch profile {
		case ChurnStable:
			sites[i].NodeLifetime = sim.Exponential{M: 14 * sim.Hour}
			sites[i].BatchPreemptEvery = sim.Exponential{M: 3 * sim.Hour}
			sites[i].BatchPreemptFrac = 0.04
		case ChurnUnstable:
			sites[i].NodeLifetime = sim.Exponential{M: 90 * sim.Minute}
			sites[i].BatchPreemptEvery = sim.Exponential{M: 25 * sim.Minute}
			sites[i].BatchPreemptFrac = 0.18
		}
	}
	return sites
}

// DefaultPoolConfig returns HOG's worker configuration: one map and one
// reduce slot per node (§IV.A), 40 GB scratch disk, and a provisioning delay
// covering batch queue wait plus the 75 MB package download and startup.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{
		ProvisionDelay:   sim.Shifted{Offset: 45 * sim.Second, D: sim.Exponential{M: 90 * sim.Second}},
		DiskBytesPerNode: 250e9,
		MapSlots:         1,
		ReduceSlots:      1,
	}
}
