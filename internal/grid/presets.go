package grid

import (
	"fmt"

	"hog/internal/sim"
)

// ChurnProfile selects how hostile the grid is. The paper's Figure 5 shows
// two "stable" 55-node runs and one "unstable" run; profiles parameterise
// that difference.
type ChurnProfile int

// Churn profiles, from friendliest to most hostile.
const (
	// ChurnNone disables preemption entirely (used to isolate other effects).
	ChurnNone ChurnProfile = iota
	// ChurnStable models a quiet week: long node lifetimes, rare small
	// batch preemptions (Figures 5a/5b).
	ChurnStable
	// ChurnUnstable models contention from higher-priority users: shorter
	// lifetimes and frequent batch preemptions (Figure 5c).
	ChurnUnstable
)

// OSGSites returns the five sites from the paper's Condor submission file
// (Listing 1) with the given churn profile applied.
//
// Domains: the two Fermilab clusters (FNAL_FERMIGRID, USCMS-FNAL-WC1) really
// share the fnal.gov DNS suffix; we give the WC1 cluster a distinct synthetic
// domain so each site remains its own failure domain for site awareness, and
// note the substitution in DESIGN.md. UCSDT2, AGLT2 and MIT_CMS use their
// hosting institutions' domains.
func OSGSites(profile ChurnProfile) []SiteConfig {
	sites := []SiteConfig{
		{Name: "FNAL_FERMIGRID", Domain: "fnal.gov", Capacity: 400},
		{Name: "USCMS-FNAL-WC1", Domain: "wc1-fnal.gov", Capacity: 350},
		{Name: "UCSDT2", Domain: "ucsd.edu", Capacity: 250},
		{Name: "AGLT2", Domain: "aglt2.org", Capacity: 200},
		{Name: "MIT_CMS", Domain: "mit.edu", Capacity: 150},
	}
	for i := range sites {
		sites[i].UplinkBps = 300e6 // ~2.4 Gbps WAN uplink per site
		sites[i].DownlinkBps = 300e6
		applyChurn(&sites[i], profile)
	}
	return sites
}

// applyChurn fills a site's preemption distributions for the profile.
func applyChurn(s *SiteConfig, profile ChurnProfile) {
	switch profile {
	case ChurnStable:
		s.NodeLifetime = sim.Exponential{M: 14 * sim.Hour}
		s.BatchPreemptEvery = sim.Exponential{M: 3 * sim.Hour}
		s.BatchPreemptFrac = 0.04
	case ChurnUnstable:
		s.NodeLifetime = sim.Exponential{M: 90 * sim.Minute}
		s.BatchPreemptEvery = sim.Exponential{M: 25 * sim.Minute}
		s.BatchPreemptFrac = 0.18
	}
}

// LargeGridSites returns a synthetic twelve-site, ~1300-slot grid for
// scale-out runs far beyond the paper's 180 nodes: the five OSG sites from
// Listing 1 plus seven more opportunistic pools patterned on large OSG
// resource providers. Uplinks stay at the OSG preset's 2.4 Gbps, so WAN
// contention grows with the pool exactly as the fluid-flow model predicts.
func LargeGridSites(profile ChurnProfile) []SiteConfig {
	sites := OSGSites(profile)
	extra := []SiteConfig{
		{Name: "BNL_ATLAS", Domain: "bnl.gov", Capacity: 180},
		{Name: "SLAC_OSG", Domain: "slac.stanford.edu", Capacity: 160},
		{Name: "PURDUE_RCAC", Domain: "purdue.edu", Capacity: 140},
		{Name: "NEBRASKA_HCC", Domain: "unl.edu", Capacity: 120},
		{Name: "WISC_CHTC", Domain: "wisc.edu", Capacity: 110},
		{Name: "TTU_ANTAEUS", Domain: "ttu.edu", Capacity: 90},
		{Name: "UFL_HPC", Domain: "ufl.edu", Capacity: 80},
	}
	for i := range extra {
		extra[i].UplinkBps = 300e6
		extra[i].DownlinkBps = 300e6
		applyChurn(&extra[i], profile)
	}
	return append(sites, extra...)
}

// MegaGridSites returns a synthetic forty-site, ~11,000-slot grid — the
// MEGA-GRID preset for ten-thousand-node runs, two orders of magnitude past
// the paper's 180 nodes. The first twelve sites are the LargeGridSites
// preset; the rest are patterned on the long tail of OSG resource
// providers, with capacities from 140 to 520 slots. Uplinks stay at the OSG
// preset's 2.4 Gbps, so WAN contention grows with the pool exactly as the
// fluid-flow model predicts — at this scale the simulation itself is the
// benchmark: tens of thousands of clustered periodic timers are what the
// timing-wheel engine exists for.
func MegaGridSites(profile ChurnProfile) []SiteConfig {
	sites := LargeGridSites(profile)
	extra := []SiteConfig{
		{Name: "CALTECH_T2", Domain: "caltech.edu", Capacity: 520},
		{Name: "FLORIDA_T2", Domain: "phys.ufl.edu", Capacity: 500},
		{Name: "NERSC_PDSF", Domain: "nersc.gov", Capacity: 480},
		{Name: "OU_OSCER", Domain: "ou.edu", Capacity: 470},
		{Name: "UCR_HEP", Domain: "ucr.edu", Capacity: 460},
		{Name: "IU_OSG", Domain: "iu.edu", Capacity: 450},
		{Name: "UCHICAGO_MWT2", Domain: "uchicago.edu", Capacity: 440},
		{Name: "VANDERBILT_ACCRE", Domain: "vanderbilt.edu", Capacity: 430},
		{Name: "RICE_RCSG", Domain: "rice.edu", Capacity: 420},
		{Name: "UMICH_AGLT2B", Domain: "umich.edu", Capacity: 410},
		{Name: "LSU_CCT", Domain: "lsu.edu", Capacity: 400},
		{Name: "RENCI_OSG", Domain: "renci.org", Capacity: 390},
		{Name: "CORNELL_CAC", Domain: "cornell.edu", Capacity: 280},
		{Name: "UCSB_CSC", Domain: "ucsb.edu", Capacity: 270},
		{Name: "BUFFALO_CCR", Domain: "buffalo.edu", Capacity: 260},
		{Name: "UVA_ITC", Domain: "virginia.edu", Capacity: 250},
		{Name: "CLEMSON_PALMETTO", Domain: "clemson.edu", Capacity: 245},
		{Name: "UTA_SWT2", Domain: "uta.edu", Capacity: 240},
		{Name: "OSU_OSC", Domain: "osu.edu", Capacity: 230},
		{Name: "UNM_CARC", Domain: "unm.edu", Capacity: 220},
		{Name: "UIOWA_HPC", Domain: "uiowa.edu", Capacity: 210},
		{Name: "UMISS_HPC", Domain: "olemiss.edu", Capacity: 200},
		{Name: "COLORADO_RC", Domain: "colorado.edu", Capacity: 190},
		{Name: "UKY_LCC", Domain: "uky.edu", Capacity: 180},
		{Name: "DUKE_SCSC", Domain: "duke.edu", Capacity: 170},
		{Name: "GATECH_PACE", Domain: "gatech.edu", Capacity: 160},
		{Name: "USC_HPCC", Domain: "usc.edu", Capacity: 150},
		{Name: "ND_CRC", Domain: "nd.edu", Capacity: 140},
	}
	for i := range extra {
		extra[i].UplinkBps = 300e6
		extra[i].DownlinkBps = 300e6
		applyChurn(&extra[i], profile)
	}
	return append(sites, extra...)
}

// GigaGridSites returns a synthetic ~104-site, ~100,000-slot grid — the
// GIGA-GRID preset for hundred-thousand-node runs, three orders of
// magnitude past the paper's 180 nodes and the scale the site-sharded
// parallel engine targets. The first forty sites are the MegaGridSites
// preset; the other sixty-four are generated opportunistic pools patterned
// on a national-scale federation's mid-size providers, with capacities
// cycling through 1150–1640 slots (deterministic in the site index, so the
// preset is identical on every run). Uplinks stay at the OSG preset's
// 2.4 Gbps: WAN contention per site grows with pool size exactly as the
// fluid-flow model predicts, which is what keeps cross-site traffic — and
// therefore the sharded engine's lookahead structure — honest at this
// scale.
func GigaGridSites(profile ChurnProfile) []SiteConfig {
	sites := MegaGridSites(profile)
	for i := 0; i < 64; i++ {
		s := SiteConfig{
			Name:        fmt.Sprintf("OSG_POOL_%02d", i),
			Domain:      fmt.Sprintf("pool%02d.osg-federation.org", i),
			Capacity:    1150 + 70*(i%8),
			UplinkBps:   300e6,
			DownlinkBps: 300e6,
		}
		applyChurn(&s, profile)
		sites = append(sites, s)
	}
	return sites
}

// DefaultPoolConfig returns HOG's worker configuration: one map and one
// reduce slot per node (§IV.A), 40 GB scratch disk, and a provisioning delay
// covering batch queue wait plus the 75 MB package download and startup.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{
		ProvisionDelay:   sim.Shifted{Offset: 45 * sim.Second, D: sim.Exponential{M: 90 * sim.Second}},
		DiskBytesPerNode: 250e9,
		MapSlots:         1,
		ReduceSlots:      1,
	}
}
