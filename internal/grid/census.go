package grid

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"hog/internal/netmodel"
)

// Census is a deterministic digest of the pool's state, recorded in
// snapshots and re-checked after a deterministic replay: any field diverging
// means the replay did not reconstruct the pool the snapshot saw.
type Census struct {
	Target   int   `json:"target"`
	InFlight int   `json:"in_flight"`
	Alive    int   `json:"alive"`
	Nodes    int   `json:"nodes"`
	Stats    Stats `json:"stats"`
	// SiteAlive and SiteHostSeq are per-site (site-list order) alive counts
	// and hostname sequence counters — the state that decides which hostname
	// the next glide-in at each site receives.
	SiteAlive   []int  `json:"site_alive"`
	SiteHostSeq []int  `json:"site_host_seq"`
	Hash        uint64 `json:"hash"`
}

// Census digests the pool's current state. The hash folds in per-node
// membership (ascending node ID, alive flag), so two pools agreeing on every
// count but differing in which nodes are alive still differ.
func (p *Pool) Census() Census {
	c := Census{
		Target:   p.target,
		InFlight: p.inflight,
		Alive:    p.alive,
		Nodes:    len(p.nodes),
		Stats:    p.stats,
	}
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, s := range p.sites {
		c.SiteAlive = append(c.SiteAlive, s.alive)
		c.SiteHostSeq = append(c.SiteHostSeq, s.hostSeq)
		put(uint64(s.alive))
		put(uint64(s.hostSeq))
	}
	ids := make([]netmodel.NodeID, 0, len(p.nodes))
	for id := range p.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := p.nodes[id]
		put(uint64(id))
		if n.Alive {
			put(1)
		} else {
			put(0)
		}
	}
	c.Hash = h.Sum64()
	return c
}
