// Package grid simulates the Open Science Grid substrate HOG runs on: sites
// with opportunistic worker-node slots, a Condor/GlideinWMS-style glide-in
// pool that submits worker-node requests and elastically maintains a target
// size, and the preemption behaviour the paper identifies as the largest
// barrier (§I): individual node preemption at any time, and simultaneous
// batch preemptions when a higher-priority user claims many slots at once
// (§III.B.1).
package grid

import (
	"fmt"

	"hog/internal/event"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// SiteConfig describes one grid site (paper Listing 1 restricts execution to
// five sites with publicly reachable worker nodes).
type SiteConfig struct {
	// Name is the GLIDEIN_ResourceName, e.g. "FNAL_FERMIGRID".
	Name string
	// Domain is the last-two-label DNS suffix of the site's worker nodes;
	// HOG's site awareness groups nodes by this value.
	Domain string
	// Capacity is the maximum number of glide-ins the site will run for us.
	Capacity int
	// Weight biases provisioning toward larger sites. Zero means use
	// Capacity as the weight.
	Weight float64
	// NodeLifetime is the distribution of time until an individual glide-in
	// is preempted by the remote batch system.
	NodeLifetime sim.Dist
	// BatchPreemptEvery is the distribution of time between site-wide batch
	// preemption events; nil disables them.
	BatchPreemptEvery sim.Dist
	// BatchPreemptFrac is the fraction of our nodes at the site preempted
	// per batch event.
	BatchPreemptFrac float64
	// UplinkBps and DownlinkBps size the site's WAN links.
	UplinkBps, DownlinkBps float64
}

// PoolConfig holds glide-in pool parameters.
type PoolConfig struct {
	// ProvisionDelay is the time from requesting a worker node to the
	// Hadoop daemons reporting in: batch queue wait, executable download
	// (the 75 MB package, §III.A), extraction and startup.
	ProvisionDelay sim.Dist
	// DiskBytesPerNode is scratch space available on each worker.
	DiskBytesPerNode float64
	// MapSlots and ReduceSlots per worker; HOG uses 1 and 1 because a grid
	// job is allocated one core (§IV.A).
	MapSlots, ReduceSlots int
}

// Node is one glide-in worker. A preempted node is never resurrected: its
// replacement is a fresh Node with a new ID, matching the paper's model where
// replacements "have no data".
type Node struct {
	ID           netmodel.NodeID
	Hostname     string
	Site         int // index into the pool's site list
	SiteName     string
	Alive        bool
	JoinedAt     sim.Time
	PreemptedAt  sim.Time
	DiskCapacity float64
	MapSlots     int
	ReduceSlots  int

	lifetime *sim.Timer
}

// Stats counts pool events for reporting.
type Stats struct {
	Provisioned       int // nodes that joined
	Preempted         int // individual lifetime preemptions
	BatchPreempted    int // nodes lost to batch events
	BatchEvents       int // number of batch events that hit >= 1 node
	Killed            int // externally killed (e.g. disk overflow)
	Released          int // voluntarily released on target decrease
	RequestsSubmitted int
}

// Pool is the glide-in pool. All methods must be called from the simulation
// loop.
type Pool struct {
	eng   *sim.Engine
	net   *netmodel.Network
	cfg   PoolConfig
	sites []*siteRuntime

	target   int
	inflight int
	alive    int
	nodes    map[netmodel.NodeID]*Node
	stats    Stats

	// OnJoin is invoked when a node has started its daemons; OnPreempt when
	// the site kills it (the process tree and working directory are gone).
	OnJoin    func(*Node)
	OnPreempt func(*Node)

	// Events receives NodeJoined, NodePreempted, and PoolRetarget events
	// when observers are subscribed; nil is a valid, inactive bus.
	Events *event.Bus
}

type siteRuntime struct {
	cfg     SiteConfig
	netSite netmodel.SiteID
	alive   int
	hostSeq int
}

// NewPool registers the sites on net and returns a pool with target zero.
func NewPool(eng *sim.Engine, net *netmodel.Network, sites []SiteConfig, cfg PoolConfig) *Pool {
	if len(sites) == 0 {
		panic("grid: NewPool with no sites")
	}
	if cfg.MapSlots <= 0 {
		cfg.MapSlots = 1
	}
	if cfg.ReduceSlots <= 0 {
		cfg.ReduceSlots = 1
	}
	if cfg.ProvisionDelay == nil {
		cfg.ProvisionDelay = sim.Shifted{Offset: 30 * sim.Second, D: sim.Exponential{M: 60 * sim.Second}}
	}
	if cfg.DiskBytesPerNode <= 0 {
		cfg.DiskBytesPerNode = 40e9
	}
	p := &Pool{eng: eng, net: net, cfg: cfg, nodes: make(map[netmodel.NodeID]*Node)}
	for _, sc := range sites {
		sr := &siteRuntime{cfg: sc}
		sr.netSite = net.AddSite(sc.Name, sc.UplinkBps, sc.DownlinkBps)
		p.sites = append(p.sites, sr)
		p.scheduleBatchPreemption(sr)
	}
	return p
}

// SetTarget changes the desired pool size, submitting new worker requests or
// releasing surplus nodes (the paper: "the number of nodes can grow and
// shrink elastically by submitting and removing the worker node jobs").
func (p *Pool) SetTarget(n int) {
	if n < 0 {
		n = 0
	}
	if n != p.target && p.Events.Active() {
		ev := event.At(event.PoolRetarget, p.eng.Now())
		ev.Value = n
		p.Events.Emit(ev)
	}
	p.target = n
	for p.alive > p.target {
		victim := p.anyAliveNode()
		if victim == nil {
			break
		}
		p.preempt(victim, &p.stats.Released, false, "released")
	}
	p.maintain()
}

// Target returns the current desired pool size.
func (p *Pool) Target() int { return p.target }

// AliveCount returns the number of running workers.
func (p *Pool) AliveCount() int { return p.alive }

// InFlight returns the number of submitted-but-not-started worker requests.
func (p *Pool) InFlight() int { return p.inflight }

// Stats returns a copy of the pool's counters.
func (p *Pool) Stats() Stats { return p.stats }

// Node returns the node with the given ID, or nil.
func (p *Pool) Node(id netmodel.NodeID) *Node { return p.nodes[id] }

// AliveNodes returns all currently alive nodes in ID order.
func (p *Pool) AliveNodes() []*Node {
	var out []*Node
	for id := netmodel.NodeID(0); int(id) < p.net.NumNodes(); id++ {
		if n, ok := p.nodes[id]; ok && n.Alive {
			out = append(out, n)
		}
	}
	return out
}

// SiteNames returns configured site names in order.
func (p *Pool) SiteNames() []string {
	out := make([]string, len(p.sites))
	for i, s := range p.sites {
		out[i] = s.cfg.Name
	}
	return out
}

// AliveAtSite returns the number of alive nodes at site index i.
func (p *Pool) AliveAtSite(i int) int { return p.sites[i].alive }

func (p *Pool) maintain() {
	for p.alive+p.inflight < p.target {
		p.inflight++
		p.stats.RequestsSubmitted++
		delay := p.cfg.ProvisionDelay.Sample(p.eng.Rand())
		p.eng.After(delay, p.provision)
	}
}

// provision starts one worker at a weighted-random site with free capacity.
func (p *Pool) provision() {
	p.inflight--
	if p.alive >= p.target {
		return // target shrank while the request was queued
	}
	sr := p.chooseSite()
	if sr == nil {
		// All sites full: re-queue the request.
		p.inflight++
		p.eng.After(p.cfg.ProvisionDelay.Sample(p.eng.Rand()), p.provision)
		return
	}
	sr.hostSeq++
	host := fmt.Sprintf("wn%04d.%s", sr.hostSeq, sr.cfg.Domain)
	id := p.net.AddNode(sr.netSite, host)
	n := &Node{
		ID:           id,
		Hostname:     host,
		Site:         p.siteIndex(sr),
		SiteName:     sr.cfg.Name,
		Alive:        true,
		JoinedAt:     p.eng.Now(),
		DiskCapacity: p.cfg.DiskBytesPerNode,
		MapSlots:     p.cfg.MapSlots,
		ReduceSlots:  p.cfg.ReduceSlots,
	}
	p.nodes[id] = n
	p.alive++
	sr.alive++
	p.stats.Provisioned++
	// Everything the join triggers — the lifetime timer here, plus the
	// registration fallout in OnJoin — is site-local work; tag it onto the
	// site's engine shard so the sharded queue settles it there.
	p.eng.SetShard(int(sr.netSite))
	if sr.cfg.NodeLifetime != nil {
		life := sr.cfg.NodeLifetime.Sample(p.eng.Rand())
		n.lifetime = p.eng.After(life, func() { p.preempt(n, &p.stats.Preempted, true, "lifetime") })
	}
	if p.OnJoin != nil {
		p.OnJoin(n)
	}
	if p.Events.Active() {
		ev := event.At(event.NodeJoined, p.eng.Now())
		ev.Node = n.ID
		ev.Site = n.SiteName
		p.Events.Emit(ev)
	}
	p.maintain()
}

func (p *Pool) siteIndex(sr *siteRuntime) int {
	for i, s := range p.sites {
		if s == sr {
			return i
		}
	}
	return -1
}

func (p *Pool) chooseSite() *siteRuntime {
	var total float64
	for _, s := range p.sites {
		if s.alive < s.cfg.Capacity {
			w := s.cfg.Weight
			if w <= 0 {
				w = float64(s.cfg.Capacity)
			}
			total += w
		}
	}
	if total == 0 {
		return nil
	}
	x := p.eng.Rand().Float64() * total
	for _, s := range p.sites {
		if s.alive < s.cfg.Capacity {
			w := s.cfg.Weight
			if w <= 0 {
				w = float64(s.cfg.Capacity)
			}
			x -= w
			if x <= 0 {
				return s
			}
		}
	}
	return nil
}

// preempt removes a node; counter receives the increment, replace controls
// whether the pool should request a replacement, and kind labels the removal
// in the event stream (lifetime, batch, released, killed).
func (p *Pool) preempt(n *Node, counter *int, replace bool, kind string) {
	if !n.Alive {
		return
	}
	*counter++
	n.Alive = false
	n.PreemptedAt = p.eng.Now()
	if n.lifetime != nil {
		n.lifetime.Cancel()
	}
	p.alive--
	p.sites[n.Site].alive--
	if p.Events.Active() {
		ev := event.At(event.NodePreempted, p.eng.Now())
		ev.Node = n.ID
		ev.Site = n.SiteName
		ev.Detail = kind
		p.Events.Emit(ev)
	}
	if p.OnPreempt != nil {
		p.OnPreempt(n)
	}
	if replace {
		p.maintain()
	}
}

// Kill removes a node for an internal reason (e.g. disk overflow shutting
// down the daemons, §IV.D.2) and requests a replacement.
func (p *Pool) Kill(id netmodel.NodeID) {
	if n, ok := p.nodes[id]; ok {
		p.preempt(n, &p.stats.Killed, true, "killed")
	}
}

// PreemptSite immediately preempts fraction frac of our nodes at site index
// i (failure injection for site-outage experiments).
func (p *Pool) PreemptSite(i int, frac float64) int {
	return p.batchPreempt(p.sites[i], frac)
}

// SiteIndexByName returns the index of the named site, or -1 when the pool
// has no site with that GLIDEIN_ResourceName.
func (p *Pool) SiteIndexByName(name string) int {
	for i, s := range p.sites {
		if s.cfg.Name == name {
			return i
		}
	}
	return -1
}

// PreemptSiteNamed preempts fraction frac of our nodes at the named site.
// Unlike the index-based PreemptSite it cannot silently hit the wrong site:
// an unknown name is an error.
func (p *Pool) PreemptSiteNamed(name string, frac float64) (int, error) {
	i := p.SiteIndexByName(name)
	if i < 0 {
		return 0, fmt.Errorf("grid: no site named %q", name)
	}
	return p.batchPreempt(p.sites[i], frac), nil
}

// BurstPreempt preempts fraction frac of our nodes at every site at once (a
// grid-wide preemption storm: a higher-priority campaign claiming slots
// everywhere simultaneously). It returns the number of nodes lost.
func (p *Pool) BurstPreempt(frac float64) int {
	killed := 0
	for _, sr := range p.sites {
		if n := p.batchPreempt(sr, frac); n > 0 {
			p.stats.BatchEvents++
			killed += n
		}
	}
	return killed
}

// KillFraction kills fraction frac of all alive workers, chosen uniformly
// across the pool regardless of site (failure injection; the pool requests
// replacements as it does for any external kill). It returns the number of
// nodes killed.
func (p *Pool) KillFraction(frac float64) int {
	var victims []*Node
	for _, n := range p.nodes {
		if n.Alive {
			victims = append(victims, n)
		}
	}
	sortNodesByID(victims)
	r := p.eng.Rand()
	r.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
	k := int(frac*float64(len(victims)) + 0.5)
	if k > len(victims) {
		k = len(victims)
	}
	for _, n := range victims[:k] {
		p.preempt(n, &p.stats.Killed, true, "killed")
	}
	return k
}

func (p *Pool) scheduleBatchPreemption(sr *siteRuntime) {
	if sr.cfg.BatchPreemptEvery == nil || sr.cfg.BatchPreemptFrac <= 0 {
		return
	}
	p.eng.SetShard(int(sr.netSite)) // batch preemptions are site-local work
	p.eng.After(sr.cfg.BatchPreemptEvery.Sample(p.eng.Rand()), func() {
		if n := p.batchPreempt(sr, sr.cfg.BatchPreemptFrac); n > 0 {
			p.stats.BatchEvents++
		}
		p.scheduleBatchPreemption(sr)
	})
}

func (p *Pool) batchPreempt(sr *siteRuntime, frac float64) int {
	var victims []*Node
	for _, n := range p.nodes {
		if n.Alive && n.Site == p.siteIndex(sr) {
			victims = append(victims, n)
		}
	}
	// Deterministic order before shuffling: map iteration is random.
	sortNodesByID(victims)
	r := p.eng.Rand()
	r.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
	k := int(frac*float64(len(victims)) + 0.5)
	if k > len(victims) {
		k = len(victims)
	}
	for _, n := range victims[:k] {
		p.preempt(n, &p.stats.BatchPreempted, true, "batch")
	}
	return k
}

func sortNodesByID(ns []*Node) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].ID < ns[j-1].ID; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func (p *Pool) anyAliveNode() *Node {
	var best *Node
	for _, n := range p.nodes {
		if n.Alive && (best == nil || n.ID > best.ID) {
			best = n // release the newest first
		}
	}
	return best
}
