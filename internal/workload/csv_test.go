package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate(9, Config{Scale: 0.5})
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(orig.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(got.Jobs), len(orig.Jobs))
	}
	for i := range got.Jobs {
		a, b := orig.Jobs[i], got.Jobs[i]
		if a.Name != b.Name || a.Bin != b.Bin || a.Maps != b.Maps ||
			a.Reduces != b.Reduces || a.InputBytes != b.InputBytes {
			t.Fatalf("row %d differs: %+v vs %+v", i, a, b)
		}
		// Submit times round-trip at millisecond precision.
		diff := a.Submit - b.Submit
		if diff < 0 {
			diff = -diff
		}
		if diff.Seconds() > 0.002 {
			t.Fatalf("row %d submit drift: %v vs %v", i, a.Submit, b.Submit)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"bad header", "x,y\n1,2\n"},
		{"bad number", "submit_s,name,bin,maps,reduces,input_bytes\nzzz,j1,1,1,1,64\n"},
		{"empty name", "submit_s,name,bin,maps,reduces,input_bytes\n0,,1,1,1,64\n"},
		{"dup name", "submit_s,name,bin,maps,reduces,input_bytes\n0,j,1,1,1,64\n1,j,1,1,1,64\n"},
		{"zero maps", "submit_s,name,bin,maps,reduces,input_bytes\n0,j,1,0,1,64\n"},
		{"negative reduces", "submit_s,name,bin,maps,reduces,input_bytes\n0,j,1,1,-1,64\n"},
		{"out of order", "submit_s,name,bin,maps,reduces,input_bytes\n5,j1,1,1,1,64\n1,j2,1,1,1,64\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestReadCSVHandAuthored(t *testing.T) {
	in := `submit_s,name,bin,maps,reduces,input_bytes
0.000,tiny,1,1,1,64000000
10.500,mid,4,50,10,3200000000
`
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Jobs) != 2 || s.Jobs[1].Maps != 50 {
		t.Fatalf("parsed %+v", s.Jobs)
	}
	if s.Span().Seconds() != 10.5 {
		t.Fatalf("span = %v", s.Span())
	}
}
