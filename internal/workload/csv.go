package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"hog/internal/sim"
)

// WriteCSV emits the schedule in the cmd/genworkload CSV format:
// submit_s,name,bin,maps,reduces,input_bytes.
func (s *Schedule) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"submit_s", "name", "bin", "maps", "reduces", "input_bytes"}); err != nil {
		return err
	}
	for _, j := range s.Jobs {
		if err := cw.Write([]string{
			strconv.FormatFloat(j.Submit.Seconds(), 'f', 3, 64),
			j.Name,
			strconv.Itoa(j.Bin),
			strconv.Itoa(j.Maps),
			strconv.Itoa(j.Reduces),
			strconv.FormatFloat(j.InputBytes, 'f', 0, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a schedule written by WriteCSV (or hand-authored in the
// same format), enabling replay of external traces through the simulator.
// Rows must be sorted by submit time; names must be non-empty and unique.
func ReadCSV(r io.Reader) (*Schedule, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: parsing schedule CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("workload: empty schedule CSV")
	}
	if len(recs[0]) < 6 || recs[0][0] != "submit_s" {
		return nil, fmt.Errorf("workload: unexpected header %v", recs[0])
	}
	s := &Schedule{}
	seen := make(map[string]bool)
	var prev sim.Time
	for i, rec := range recs[1:] {
		rowErr := func(err error) error {
			return fmt.Errorf("workload: schedule CSV row %d: %w", i+2, err)
		}
		submitS, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, rowErr(err)
		}
		bin, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, rowErr(err)
		}
		maps, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, rowErr(err)
		}
		reduces, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, rowErr(err)
		}
		input, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, rowErr(err)
		}
		name := rec[1]
		if name == "" {
			return nil, rowErr(fmt.Errorf("empty job name"))
		}
		if seen[name] {
			return nil, rowErr(fmt.Errorf("duplicate job name %q", name))
		}
		seen[name] = true
		if maps < 1 || reduces < 0 || input <= 0 {
			return nil, rowErr(fmt.Errorf("invalid shape maps=%d reduces=%d input=%.0f", maps, reduces, input))
		}
		submit := sim.Seconds(submitS)
		if submit < prev {
			return nil, rowErr(fmt.Errorf("submissions out of order"))
		}
		prev = submit
		s.Jobs = append(s.Jobs, JobSpec{
			Name: name, Bin: bin, Maps: maps, Reduces: reduces,
			InputBytes: input, Submit: submit,
		})
	}
	return s, nil
}
