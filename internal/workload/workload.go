// Package workload reconstructs the paper's evaluation workload (§IV.A): a
// submission schedule derived from Facebook's October 2009 production trace
// as binned by Zaharia et al. (Table I), truncated to the first six bins
// (Table II) because "most jobs at Facebook are small and our test cluster
// is limited in size", with exponential inter-arrival times of mean 14
// seconds giving a roughly 21-minute submission schedule of 88 jobs.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"hog/internal/sim"
)

// Bin is one row of the paper's Table I / Table II.
type Bin struct {
	// Bin number, 1-9.
	Bin int
	// MapsAtFacebook describes the bin's range in the original trace
	// (reporting only).
	MapsAtFacebook string
	// PercentAtFacebook is the share of Facebook jobs in this bin.
	PercentAtFacebook float64
	// Maps is the number of map tasks used in the benchmark.
	Maps int
	// Reduces is the number of reduce tasks (Table II; zero for bins the
	// paper excludes).
	Reduces int
	// Jobs is the number of benchmark jobs drawn from this bin.
	Jobs int
}

// Table1 returns the paper's Table I: the nine Facebook bins with the
// benchmark job counts of the 100-job schedule.
func Table1() []Bin {
	return []Bin{
		{1, "1", 39, 1, 1, 38},
		{2, "2", 16, 2, 1, 16},
		{3, "3-20", 14, 10, 5, 14},
		{4, "21-60", 9, 50, 10, 8},
		{5, "61-150", 6, 100, 20, 6},
		{6, "151-300", 6, 200, 30, 6},
		{7, "301-500", 4, 400, 0, 4},
		{8, "501-1500", 4, 800, 0, 4},
		{9, ">1501", 3, 4800, 0, 4},
	}
}

// Table2 returns the paper's Table II: the truncated six-bin workload with
// the reduce counts the paper introduces ("They number in a non-decreasing
// pattern compared to job's map tasks").
func Table2() []Bin {
	t := Table1()[:6]
	return t
}

// TotalJobs sums the job counts of the given bins.
func TotalJobs(bins []Bin) int {
	n := 0
	for _, b := range bins {
		n += b.Jobs
	}
	return n
}

// TotalMaps sums maps over all jobs in the given bins.
func TotalMaps(bins []Bin) int {
	n := 0
	for _, b := range bins {
		n += b.Jobs * b.Maps
	}
	return n
}

// JobSpec is one job in a submission schedule.
type JobSpec struct {
	// Name is unique within the schedule.
	Name string
	// Bin is the Table I bin the job was drawn from.
	Bin int
	// Maps and Reduces are the task counts.
	Maps, Reduces int
	// InputBytes is Maps * the block size (one map per 64 MB block).
	InputBytes float64
	// Submit is the offset from schedule start.
	Submit sim.Time
}

// Schedule is a reproducible submission schedule.
type Schedule struct {
	Jobs []JobSpec
	// MeanInterarrival is the exponential mean used (14 s in the paper).
	MeanInterarrival sim.Time
	Seed             int64
}

// Span returns the time of the last submission.
func (s *Schedule) Span() sim.Time {
	if len(s.Jobs) == 0 {
		return 0
	}
	return s.Jobs[len(s.Jobs)-1].Submit
}

// Config parameterises schedule generation.
type Config struct {
	// Bins to draw from; defaults to Table2.
	Bins []Bin
	// MeanInterarrival between submissions; defaults to 14 s.
	MeanInterarrival sim.Time
	// BlockSize for sizing inputs; defaults to 64 MB.
	BlockSize float64
	// Scale multiplies every bin's job count (1 = the paper's 88 jobs).
	// Fractional scales round half-up per bin but keep at least one job in
	// every scaled bin.
	Scale float64
}

// Generate builds the schedule: the bins' jobs in randomized order with
// exponential inter-arrival gaps, exactly as the paper constructs its
// benchmark from the Facebook distribution.
func Generate(seed int64, cfg Config) *Schedule {
	bins := cfg.Bins
	if bins == nil {
		bins = Table2()
	}
	mean := cfg.MeanInterarrival
	if mean <= 0 {
		mean = 14 * sim.Second
	}
	bs := cfg.BlockSize
	if bs <= 0 {
		bs = 64e6
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seed))
	var jobs []JobSpec
	for _, b := range bins {
		n := int(float64(b.Jobs)*scale + 0.5)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			jobs = append(jobs, JobSpec{
				Bin:        b.Bin,
				Maps:       b.Maps,
				Reduces:    b.Reduces,
				InputBytes: float64(b.Maps) * bs,
			})
		}
	}
	r.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	var t sim.Time
	gap := sim.Exponential{M: mean}
	for i := range jobs {
		if i > 0 {
			t += gap.Sample(r)
		}
		jobs[i].Submit = t
		jobs[i].Name = fmt.Sprintf("job-%03d-bin%d", i, jobs[i].Bin)
	}
	return &Schedule{Jobs: jobs, MeanInterarrival: mean, Seed: seed}
}

// BinSummary aggregates per-bin results of a finished run.
type BinSummary struct {
	Bin       int
	Jobs      int
	Maps      int
	Reduces   int
	MeanResp  sim.Time
	WorstResp sim.Time
}

// SummarizeByBin groups (bin, responseTime) pairs into per-bin rows.
func SummarizeByBin(bins []int, resp []sim.Time) []BinSummary {
	if len(bins) != len(resp) {
		panic("workload: bins and resp length mismatch")
	}
	agg := map[int]*BinSummary{}
	for i, b := range bins {
		s := agg[b]
		if s == nil {
			s = &BinSummary{Bin: b}
			agg[b] = s
		}
		s.Jobs++
		s.MeanResp += resp[i]
		if resp[i] > s.WorstResp {
			s.WorstResp = resp[i]
		}
	}
	var out []BinSummary
	for _, s := range agg {
		s.MeanResp /= sim.Time(s.Jobs)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bin < out[j].Bin })
	return out
}
