package workload

import (
	"testing"
	"testing/quick"

	"hog/internal/sim"
)

func TestTable1MatchesPaper(t *testing.T) {
	bins := Table1()
	if len(bins) != 9 {
		t.Fatalf("bins = %d, want 9", len(bins))
	}
	wantMaps := []int{1, 2, 10, 50, 100, 200, 400, 800, 4800}
	wantJobs := []int{38, 16, 14, 8, 6, 6, 4, 4, 4}
	wantPct := []float64{39, 16, 14, 9, 6, 6, 4, 4, 3}
	total := 0
	for i, b := range bins {
		if b.Bin != i+1 {
			t.Errorf("bin %d numbered %d", i, b.Bin)
		}
		if b.Maps != wantMaps[i] || b.Jobs != wantJobs[i] || b.PercentAtFacebook != wantPct[i] {
			t.Errorf("bin %d = %+v, want maps=%d jobs=%d pct=%v", b.Bin, b, wantMaps[i], wantJobs[i], wantPct[i])
		}
		total += b.Jobs
	}
	if total != 100 {
		t.Fatalf("Table I benchmark jobs = %d, want 100", total)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	bins := Table2()
	if len(bins) != 6 {
		t.Fatalf("bins = %d, want 6 (paper truncates to the first six)", len(bins))
	}
	wantReduces := []int{1, 1, 5, 10, 20, 30}
	for i, b := range bins {
		if b.Reduces != wantReduces[i] {
			t.Errorf("bin %d reduces = %d, want %d", b.Bin, b.Reduces, wantReduces[i])
		}
		if b.Reduces > b.Maps {
			t.Errorf("bin %d: reduces %d exceed maps %d", b.Bin, b.Reduces, b.Maps)
		}
	}
	if TotalJobs(bins) != 88 {
		t.Fatalf("truncated workload jobs = %d, want 88", TotalJobs(bins))
	}
	if TotalMaps(bins) != 38+32+140+400+600+1200 {
		t.Fatalf("total maps = %d, want 2410", TotalMaps(bins))
	}
	// Reduces non-decreasing with maps, as the paper specifies.
	for i := 1; i < len(bins); i++ {
		if bins[i].Reduces < bins[i-1].Reduces {
			t.Fatalf("reduce counts not non-decreasing: %v", bins)
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	s := Generate(1, Config{})
	if len(s.Jobs) != 88 {
		t.Fatalf("jobs = %d, want 88", len(s.Jobs))
	}
	// ~21 minute span: mean gap 14 s * 87 gaps = 1218 s expected; allow
	// wide stochastic tolerance.
	span := s.Span().Seconds()
	if span < 600 || span > 2500 {
		t.Fatalf("span = %.0fs, want about 1218s", span)
	}
	// Submissions sorted, first at zero.
	if s.Jobs[0].Submit != 0 {
		t.Fatal("first submission not at t=0")
	}
	for i := 1; i < len(s.Jobs); i++ {
		if s.Jobs[i].Submit < s.Jobs[i-1].Submit {
			t.Fatal("submissions out of order")
		}
	}
	// Input sizing: one 64 MB block per map.
	for _, j := range s.Jobs {
		if j.InputBytes != float64(j.Maps)*64e6 {
			t.Fatalf("job %s input %.0f, want %d blocks", j.Name, j.InputBytes, j.Maps)
		}
	}
}

func TestGenerateBinCounts(t *testing.T) {
	s := Generate(7, Config{})
	count := map[int]int{}
	for _, j := range s.Jobs {
		count[j.Bin]++
	}
	want := map[int]int{1: 38, 2: 16, 3: 14, 4: 8, 5: 6, 6: 6}
	for b, n := range want {
		if count[b] != n {
			t.Fatalf("bin %d count = %d, want %d", b, count[b], n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, Config{})
	b := Generate(42, Config{})
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	c := Generate(43, Config{})
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical schedules")
	}
}

func TestGenerateScale(t *testing.T) {
	s := Generate(1, Config{Scale: 0.25})
	// Each bin keeps at least one job.
	count := map[int]int{}
	for _, j := range s.Jobs {
		count[j.Bin]++
	}
	for b := 1; b <= 6; b++ {
		if count[b] < 1 {
			t.Fatalf("scaled schedule lost bin %d", b)
		}
	}
	if len(s.Jobs) >= 88 {
		t.Fatalf("scale 0.25 produced %d jobs", len(s.Jobs))
	}
}

func TestSummarizeByBin(t *testing.T) {
	bins := []int{1, 1, 2}
	resp := []sim.Time{10 * sim.Second, 20 * sim.Second, 30 * sim.Second}
	sum := SummarizeByBin(bins, resp)
	if len(sum) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sum))
	}
	if sum[0].Bin != 1 || sum[0].Jobs != 2 || sum[0].MeanResp != 15*sim.Second || sum[0].WorstResp != 20*sim.Second {
		t.Fatalf("bin1 summary = %+v", sum[0])
	}
	if sum[1].MeanResp != 30*sim.Second {
		t.Fatalf("bin2 summary = %+v", sum[1])
	}
}

func TestSummarizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	SummarizeByBin([]int{1}, nil)
}

// Property: generated schedules preserve per-bin map/reduce shape for any
// seed, and the empirical mean gap approximates the configured mean.
func TestScheduleShapeProperty(t *testing.T) {
	shape := map[int][2]int{}
	for _, b := range Table2() {
		shape[b.Bin] = [2]int{b.Maps, b.Reduces}
	}
	f := func(seed int64) bool {
		s := Generate(seed, Config{})
		for _, j := range s.Jobs {
			w := shape[j.Bin]
			if j.Maps != w[0] || j.Reduces != w[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanInterarrival(t *testing.T) {
	// Average over many seeds: mean gap should be near 14 s.
	var total float64
	const n = 50
	for seed := int64(0); seed < n; seed++ {
		s := Generate(seed, Config{})
		total += s.Span().Seconds() / float64(len(s.Jobs)-1)
	}
	mean := total / n
	if mean < 12.5 || mean > 15.5 {
		t.Fatalf("empirical mean gap %.2fs, want ~14s", mean)
	}
}
