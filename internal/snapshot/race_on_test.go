//go:build race

package snapshot

// raceDetector reports whether the test binary was built with -race; the
// heavy scale tests shrink or skip themselves under it.
const raceDetector = true
