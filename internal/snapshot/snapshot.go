// Package snapshot captures a running HOG simulation into a versioned,
// deterministic binary blob and restores it into an identical live system —
// the foundation for what-if forking (one expensive warm-up, N divergent
// branches) and the hogsim service mode.
//
// A v1 snapshot is generative: it records the system's complete recipe —
// normalized config, workload schedule, applied scenarios, and the exact
// instant reached — plus a cross-layer census of the live state (engine
// clock/sequence/RNG position and per-layer digests of grid, network, HDFS,
// MapReduce, and disk state). Restore rebuilds the system from the recipe
// and deterministically replays it to the recorded instant, then verifies
// the replayed state against the census field by field: because every
// engine (heap, sequential wheel, sharded wheels at any shard count) fires
// events in the identical (at, seq) order, the restored system is not
// approximately equal but *the same state*, and every later event fires
// identically — restored runs are byte-identical to uninterrupted ones.
// The census turns any violation of that contract (a hidden rand source, a
// nondeterministic map walk) into a loud, named error instead of silent
// drift. The cost model is explicit: restore re-executes the events up to
// the snapshot instant, trading restore time for a compact encoding and an
// end-to-end determinism check; see docs/SNAPSHOT.md for the planned
// materialized-state v2.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"

	"hog/internal/core"
	"hog/internal/disk"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/hdfs"
	"hog/internal/mapred"
	"hog/internal/netmodel"
	"hog/internal/sim"
	"hog/internal/workload"
)

// Version is the current snapshot encoding version. A snapshot is readable
// only by the version that wrote it: the payload embeds live config structs,
// so any change to them (or to replay semantics) must bump this. v2 added
// the beyond-crash-stop fault model: Config.MasterRetryTotal, the counted
// "gray" RNG stream in the engine census, and the partition/gray/corruption
// scenario verbs and census fields.
const Version = 2

// magic identifies a HOG snapshot; the trailing NUL pins the length to 8.
var magic = [8]byte{'H', 'O', 'G', 'S', 'N', 'A', 'P', 0}

// Sentinel errors for the failure classes a reader distinguishes.
var (
	// ErrNotSnapshot: the data does not begin with the snapshot magic.
	ErrNotSnapshot = errors.New("snapshot: not a HOG snapshot (bad magic)")
	// ErrVersion: written by a different encoding version.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrTruncated: shorter than its header claims.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrCorrupt: checksum mismatch.
	ErrCorrupt = errors.New("snapshot: payload checksum mismatch")
	// ErrReplayDiverged: the deterministic replay did not reproduce the
	// recorded census — the snapshot was taken on a different build, or
	// something nondeterministic crept into the simulator.
	ErrReplayDiverged = errors.New("snapshot: replay diverged from recorded census")
)

// EngineCensus digests the simulation engine: the clock, the event sequence
// counter (a strict order signature — every scheduled event draws one), and
// every named RNG stream's position.
type EngineCensus struct {
	Now     sim.Time         `json:"now"`
	Seq     uint64           `json:"seq"`
	Streams []core.RNGStream `json:"streams"`
}

// Census is the cross-layer state digest recorded at Save time and
// re-verified after the Restore replay.
type Census struct {
	Engine  EngineCensus    `json:"engine"`
	Grid    *grid.Census    `json:"grid,omitempty"` // nil for static clusters
	Net     netmodel.Census `json:"net"`
	Disk    disk.Census     `json:"disk"`
	HDFS    hdfs.Census     `json:"hdfs"`
	MapRed  mapred.Census   `json:"mapred"`
	Zombies int             `json:"zombies"`
}

// TakeCensus digests a live system's state across every layer.
func TakeCensus(sys *core.System) Census {
	c := Census{
		Engine: EngineCensus{
			Now:     sys.Eng.Now(),
			Seq:     sys.Eng.SeqCount(),
			Streams: sys.RNGStreams(),
		},
		Net:     sys.Net.Census(),
		Disk:    sys.Disk.Census(),
		HDFS:    sys.NN.Census(),
		MapRed:  sys.JT.Census(),
		Zombies: sys.Zombies(),
	}
	if sys.Pool != nil {
		g := sys.Pool.Census()
		c.Grid = &g
	}
	return c
}

// payload is the JSON body of a v1 snapshot.
type payload struct {
	Config    configDTO           `json:"config"`
	Schedule  *workload.Schedule  `json:"schedule,omitempty"`
	Scenarios []core.ScenarioSpec `json:"scenarios,omitempty"`
	Phase     core.RunPhase       `json:"phase"`
	Start     sim.Time            `json:"start"`
	Now       sim.Time            `json:"now"`
	Census    Census              `json:"census"`
}

// Save captures sys into a self-contained snapshot. The system must be
// freshly built (time zero) or mid-workload (between StartWorkload/RunTo
// calls); a finished run has nothing left to fork, and a diverged fork
// branch (ApplyDivergence) is not reproducible from its recipe, so both are
// rejected.
func Save(sys *core.System) ([]byte, error) {
	switch sys.Phase() {
	case core.PhaseFinished:
		return nil, errors.New("snapshot: cannot save a finished run (nothing left to fork)")
	case core.PhaseBuilt:
		if sys.Eng.Now() != 0 {
			return nil, errors.New("snapshot: system advanced before StartWorkload; save at time zero or mid-workload")
		}
	}
	if sys.Diverged() {
		return nil, errors.New("snapshot: cannot save a diverged fork branch (its history is not reproducible from its recipe)")
	}
	cfgDTO, err := encodeConfig(sys.Config())
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	specs, err := sys.ScenarioSpecs()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	p := payload{
		Config:    cfgDTO,
		Scenarios: specs,
		Phase:     sys.Phase(),
		Now:       sys.Eng.Now(),
		Census:    TakeCensus(sys),
	}
	if sys.Phase() == core.PhaseStarted {
		p.Schedule = sys.RunSchedule()
		p.Start = sys.RunStart()
	}
	body, err := json.Marshal(&p)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding payload: %w", err)
	}
	return frame(body), nil
}

// frame wraps a payload in the container: magic, version, length, body,
// FNV-64a checksum — all fixed-width little-endian.
func frame(body []byte) []byte {
	out := make([]byte, 0, len(magic)+4+8+len(body)+8)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	out = append(out, body...)
	h := fnv.New64a()
	h.Write(body)
	out = binary.LittleEndian.AppendUint64(out, h.Sum64())
	return out
}

// unframe validates the container and returns the payload body.
func unframe(data []byte) ([]byte, error) {
	if len(data) < len(magic)+4+8 {
		if len(data) >= len(magic) && !bytes.Equal(data[:len(magic)], magic[:]) {
			return nil, ErrNotSnapshot
		}
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrTruncated, len(data), len(magic)+4+8)
	}
	if !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, ErrNotSnapshot
	}
	ver := binary.LittleEndian.Uint32(data[8:12])
	if ver != Version {
		return nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d", ErrVersion, ver, Version)
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	rest := data[20:]
	if uint64(len(rest)) < n+8 {
		return nil, fmt.Errorf("%w: header claims %d payload bytes, %d present", ErrTruncated, n+8, len(rest))
	}
	body := rest[:n]
	want := binary.LittleEndian.Uint64(rest[n : n+8])
	h := fnv.New64a()
	h.Write(body)
	if got := h.Sum64(); got != want {
		return nil, fmt.Errorf("%w: have %016x, want %016x", ErrCorrupt, got, want)
	}
	return body, nil
}

// Restore rebuilds a live system from a snapshot. The system is
// reconstructed from its recipe and deterministically replayed to the
// recorded instant; the replayed state is then verified against the
// recorded cross-layer census, so a successful Restore guarantees the
// returned system is in exactly the saved state — every subsequent event
// fires identically to the uninterrupted run. Observers are subscribed
// before construction and therefore see the full replayed event history
// from time zero (see docs/SNAPSHOT.md).
func Restore(data []byte, obs ...event.Observer) (*core.System, error) {
	body, err := unframe(data)
	if err != nil {
		return nil, err
	}
	var p payload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("snapshot: decoding payload: %w", err)
	}
	cfg, err := decodeConfig(p.Config)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	sys, err := core.NewSystem(cfg, obs...)
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuilding system: %w", err)
	}
	for _, ss := range p.Scenarios {
		sc, err := core.ScenarioFromSpec(ss)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		if err := sys.Apply(sc); err != nil {
			return nil, fmt.Errorf("snapshot: re-applying scenario: %w", err)
		}
	}
	if p.Phase == core.PhaseStarted {
		if p.Schedule == nil {
			return nil, errors.New("snapshot: mid-run snapshot carries no schedule")
		}
		if err := sys.StartWorkload(p.Schedule); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		if err := sys.RunTo(p.Now); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	if err := verifyCensus(p.Census, TakeCensus(sys)); err != nil {
		return nil, err
	}
	return sys, nil
}

// verifyCensus compares the recorded and replayed censuses section by
// section, naming the diverging layer and showing both digests.
func verifyCensus(want, got Census) error {
	sections := []struct {
		name       string
		want, have any
	}{
		{"engine", want.Engine, got.Engine},
		{"grid", want.Grid, got.Grid},
		{"net", want.Net, got.Net},
		{"disk", want.Disk, got.Disk},
		{"hdfs", want.HDFS, got.HDFS},
		{"mapred", want.MapRed, got.MapRed},
		{"zombies", want.Zombies, got.Zombies},
	}
	for _, s := range sections {
		wj, err := json.Marshal(s.want)
		if err != nil {
			return fmt.Errorf("snapshot: encoding %s census: %w", s.name, err)
		}
		gj, err := json.Marshal(s.have)
		if err != nil {
			return fmt.Errorf("snapshot: encoding %s census: %w", s.name, err)
		}
		if !bytes.Equal(wj, gj) {
			return fmt.Errorf("%w: %s layer\n  saved:    %s\n  replayed: %s", ErrReplayDiverged, s.name, wj, gj)
		}
	}
	return nil
}

// Fork restores len(divergences) independent systems from one snapshot.
// Each non-nil entry is applied to its branch as a divergence scenario,
// anchored at the snapshot instant — the what-if primitive: one warm-up,
// N branches replaying the same day under different fault schedules. A nil
// entry restores an unmodified control branch. Branches share nothing;
// each is replayed and verified independently.
func Fork(data []byte, divergences []*core.Scenario, obs ...event.Observer) ([]*core.System, error) {
	if len(divergences) == 0 {
		return nil, errors.New("snapshot: Fork needs at least one branch")
	}
	out := make([]*core.System, len(divergences))
	for i, div := range divergences {
		sys, err := Restore(data, obs...)
		if err != nil {
			return nil, fmt.Errorf("branch %d: %w", i, err)
		}
		if div != nil {
			if err := sys.ApplyDivergence(div); err != nil {
				return nil, fmt.Errorf("snapshot: branch %d: %w", i, err)
			}
		}
		out[i] = sys
	}
	return out, nil
}
