package snapshot

import (
	"fmt"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/hdfs"
	"hog/internal/mapred"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// distDTO is the kind-discriminated wire form of a sim.Dist. Every
// distribution the presets use round-trips; an unknown implementation is a
// Save-time error rather than a silently wrong restore.
type distDTO struct {
	Kind     string   `json:"kind"`
	V        sim.Time `json:"v,omitempty"`       // constant
	M        sim.Time `json:"m,omitempty"`       // exponential mean
	Lo       sim.Time `json:"lo,omitempty"`      // uniform
	Hi       sim.Time `json:"hi,omitempty"`      // uniform
	Mu       sim.Time `json:"mu,omitempty"`      // normal
	Sigma    sim.Time `json:"sigma,omitempty"`   // normal
	Offset   sim.Time `json:"offset,omitempty"`  // shifted
	D        *distDTO `json:"d,omitempty"`       // shifted inner
	MuLog    float64  `json:"mu_log,omitempty"`  // lognormal
	SigmaLog float64  `json:"sig_log,omitempty"` // lognormal
}

func encodeDist(d sim.Dist) (*distDTO, error) {
	switch v := d.(type) {
	case nil:
		return nil, nil
	case sim.Constant:
		return &distDTO{Kind: "constant", V: v.V}, nil
	case sim.Exponential:
		return &distDTO{Kind: "exponential", M: v.M}, nil
	case sim.Uniform:
		return &distDTO{Kind: "uniform", Lo: v.Lo, Hi: v.Hi}, nil
	case sim.Normal:
		return &distDTO{Kind: "normal", Mu: v.Mu, Sigma: v.Sigma}, nil
	case sim.Shifted:
		inner, err := encodeDist(v.D)
		if err != nil {
			return nil, err
		}
		return &distDTO{Kind: "shifted", Offset: v.Offset, D: inner}, nil
	case sim.LogNormal:
		return &distDTO{Kind: "lognormal", MuLog: v.MuLog, SigmaLog: v.SigmaLog}, nil
	default:
		return nil, fmt.Errorf("snapshot: cannot encode distribution type %T", d)
	}
}

func decodeDist(d *distDTO) (sim.Dist, error) {
	if d == nil {
		return nil, nil
	}
	switch d.Kind {
	case "constant":
		return sim.Constant{V: d.V}, nil
	case "exponential":
		return sim.Exponential{M: d.M}, nil
	case "uniform":
		return sim.Uniform{Lo: d.Lo, Hi: d.Hi}, nil
	case "normal":
		return sim.Normal{Mu: d.Mu, Sigma: d.Sigma}, nil
	case "shifted":
		inner, err := decodeDist(d.D)
		if err != nil {
			return nil, err
		}
		return sim.Shifted{Offset: d.Offset, D: inner}, nil
	case "lognormal":
		return sim.LogNormal{MuLog: d.MuLog, SigmaLog: d.SigmaLog}, nil
	default:
		return nil, fmt.Errorf("snapshot: unknown distribution kind %q", d.Kind)
	}
}

type siteDTO struct {
	Name              string   `json:"name"`
	Domain            string   `json:"domain"`
	Capacity          int      `json:"capacity"`
	Weight            float64  `json:"weight"`
	NodeLifetime      *distDTO `json:"node_lifetime,omitempty"`
	BatchPreemptEvery *distDTO `json:"batch_preempt_every,omitempty"`
	BatchPreemptFrac  float64  `json:"batch_preempt_frac,omitempty"`
	UplinkBps         float64  `json:"uplink_bps"`
	DownlinkBps       float64  `json:"downlink_bps"`
}

type poolCfgDTO struct {
	ProvisionDelay   *distDTO `json:"provision_delay,omitempty"`
	DiskBytesPerNode float64  `json:"disk_bytes_per_node"`
	MapSlots         int      `json:"map_slots"`
	ReduceSlots      int      `json:"reduce_slots"`
}

type gridDTO struct {
	TargetNodes    int        `json:"target_nodes"`
	Sites          []siteDTO  `json:"sites"`
	Pool           poolCfgDTO `json:"pool"`
	ProvisionBound sim.Time   `json:"provision_bound"`
}

// configDTO is core.Config with the sim.Dist interface fields replaced by
// their kind-discriminated wire forms; everything else is plain data and
// rides through as-is.
type configDTO struct {
	Seed                 int64              `json:"seed"`
	Grid                 *gridDTO           `json:"grid,omitempty"`
	Static               []core.StaticGroup `json:"static,omitempty"`
	Net                  netmodel.Config    `json:"net"`
	HDFS                 hdfs.Config        `json:"hdfs"`
	MapRed               mapred.Config      `json:"mapred"`
	Costs                core.JobCosts      `json:"costs"`
	Policies             core.Policies      `json:"policies"`
	HeapScheduler        bool               `json:"heap_scheduler,omitempty"`
	SequentialEngine     bool               `json:"sequential_engine,omitempty"`
	Shards               int                `json:"shards,omitempty"`
	Zombie               core.ZombieMode    `json:"zombie"`
	DiskCheckInterval    sim.Time           `json:"disk_check_interval"`
	SampleInterval       sim.Time           `json:"sample_interval"`
	RunBound             sim.Time           `json:"run_bound"`
	MasterBackoffInitial sim.Time           `json:"master_backoff_initial"`
	MasterBackoffMax     sim.Time           `json:"master_backoff_max"`
	MasterRetryTotal     sim.Time           `json:"master_retry_total"`
}

func encodeConfig(cfg core.Config) (configDTO, error) {
	dto := configDTO{
		Seed:                 cfg.Seed,
		Static:               cfg.Static,
		Net:                  cfg.Net,
		HDFS:                 cfg.HDFS,
		MapRed:               cfg.MapRed,
		Costs:                cfg.Costs,
		Policies:             cfg.Policies,
		HeapScheduler:        cfg.HeapScheduler,
		SequentialEngine:     cfg.SequentialEngine,
		Shards:               cfg.Shards,
		Zombie:               cfg.Zombie,
		DiskCheckInterval:    cfg.DiskCheckInterval,
		SampleInterval:       cfg.SampleInterval,
		RunBound:             cfg.RunBound,
		MasterBackoffInitial: cfg.MasterBackoffInitial,
		MasterBackoffMax:     cfg.MasterBackoffMax,
		MasterRetryTotal:     cfg.MasterRetryTotal,
	}
	if cfg.Grid != nil {
		g := &gridDTO{TargetNodes: cfg.Grid.TargetNodes, ProvisionBound: cfg.Grid.ProvisionBound}
		for _, s := range cfg.Grid.Sites {
			life, err := encodeDist(s.NodeLifetime)
			if err != nil {
				return configDTO{}, fmt.Errorf("site %q lifetime: %w", s.Name, err)
			}
			batch, err := encodeDist(s.BatchPreemptEvery)
			if err != nil {
				return configDTO{}, fmt.Errorf("site %q batch-preempt: %w", s.Name, err)
			}
			g.Sites = append(g.Sites, siteDTO{
				Name: s.Name, Domain: s.Domain, Capacity: s.Capacity, Weight: s.Weight,
				NodeLifetime: life, BatchPreemptEvery: batch, BatchPreemptFrac: s.BatchPreemptFrac,
				UplinkBps: s.UplinkBps, DownlinkBps: s.DownlinkBps,
			})
		}
		delay, err := encodeDist(cfg.Grid.Pool.ProvisionDelay)
		if err != nil {
			return configDTO{}, fmt.Errorf("pool provision delay: %w", err)
		}
		g.Pool = poolCfgDTO{
			ProvisionDelay:   delay,
			DiskBytesPerNode: cfg.Grid.Pool.DiskBytesPerNode,
			MapSlots:         cfg.Grid.Pool.MapSlots,
			ReduceSlots:      cfg.Grid.Pool.ReduceSlots,
		}
		dto.Grid = g
	}
	return dto, nil
}

func decodeConfig(dto configDTO) (core.Config, error) {
	cfg := core.Config{
		Seed:                 dto.Seed,
		Static:               dto.Static,
		Net:                  dto.Net,
		HDFS:                 dto.HDFS,
		MapRed:               dto.MapRed,
		Costs:                dto.Costs,
		Policies:             dto.Policies,
		HeapScheduler:        dto.HeapScheduler,
		SequentialEngine:     dto.SequentialEngine,
		Shards:               dto.Shards,
		Zombie:               dto.Zombie,
		DiskCheckInterval:    dto.DiskCheckInterval,
		SampleInterval:       dto.SampleInterval,
		RunBound:             dto.RunBound,
		MasterBackoffInitial: dto.MasterBackoffInitial,
		MasterBackoffMax:     dto.MasterBackoffMax,
		MasterRetryTotal:     dto.MasterRetryTotal,
	}
	if dto.Grid != nil {
		g := &core.GridConfig{TargetNodes: dto.Grid.TargetNodes, ProvisionBound: dto.Grid.ProvisionBound}
		for _, s := range dto.Grid.Sites {
			life, err := decodeDist(s.NodeLifetime)
			if err != nil {
				return core.Config{}, fmt.Errorf("site %q lifetime: %w", s.Name, err)
			}
			batch, err := decodeDist(s.BatchPreemptEvery)
			if err != nil {
				return core.Config{}, fmt.Errorf("site %q batch-preempt: %w", s.Name, err)
			}
			g.Sites = append(g.Sites, grid.SiteConfig{
				Name: s.Name, Domain: s.Domain, Capacity: s.Capacity, Weight: s.Weight,
				NodeLifetime: life, BatchPreemptEvery: batch, BatchPreemptFrac: s.BatchPreemptFrac,
				UplinkBps: s.UplinkBps, DownlinkBps: s.DownlinkBps,
			})
		}
		delay, err := decodeDist(dto.Grid.Pool.ProvisionDelay)
		if err != nil {
			return core.Config{}, fmt.Errorf("pool provision delay: %w", err)
		}
		g.Pool = grid.PoolConfig{
			ProvisionDelay:   delay,
			DiskBytesPerNode: dto.Grid.Pool.DiskBytesPerNode,
			MapSlots:         dto.Grid.Pool.MapSlots,
			ReduceSlots:      dto.Grid.Pool.ReduceSlots,
		}
		cfg.Grid = g
	}
	return cfg, nil
}
