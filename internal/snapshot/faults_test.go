package snapshot

import (
	"testing"

	"hog/internal/core"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
)

// faultStraight runs cfg+sc uninterrupted and returns the fingerprint plus
// the final RNG stream positions, so the mid-fault round trips below can
// check the gray stream's replayed position, not just the engine's.
func faultStraight(t *testing.T, cfg core.Config, sc *core.Scenario) (fingerprint, []core.RNGStream) {
	t.Helper()
	log := event.NewLog()
	sys, err := core.NewSystem(cfg, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Apply(sc); err != nil {
		t.Fatal(err)
	}
	res := sys.RunWorkload(sched(cfg.Seed, 0.1))
	return fp(log, sys, res), sys.RNGStreams()
}

// faultCutRun starts the same run, drives it to RunStart+cut (which the
// caller places strictly inside the fault window), hands the live system to
// check for a mid-fault assertion, snapshots, restores, and finishes the
// restored system.
func faultCutRun(t *testing.T, cfg core.Config, sc *core.Scenario, cut sim.Time,
	check func(*core.System, string)) (fingerprint, []core.RNGStream, *event.Log) {
	t.Helper()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Apply(sc); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartWorkload(sched(cfg.Seed, 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunTo(sys.RunStart() + cut); err != nil {
		t.Fatal(err)
	}
	check(sys, "at the cut instant")
	data, err := Save(sys)
	if err != nil {
		t.Fatal(err)
	}
	log := event.NewLog()
	restored, err := Restore(data, log)
	if err != nil {
		t.Fatal(err)
	}
	check(restored, "after restore")
	res := restored.FinishWorkload()
	return fp(log, restored, res), restored.RNGStreams(), log
}

// TestRoundTripMidPartition snapshots a run while a whole site is cut off —
// after PartitionStarted, with the silenced nodes heading for the dead
// timeout, before the heal — and verifies the restored continuation is
// byte-identical to the uninterrupted run, including the PartitionHealed and
// NodeRecovered events that only fire after the cut instant.
func TestRoundTripMidPartition(t *testing.T) {
	sc := func() *core.Scenario {
		return core.NewScenario("site cut").
			PartitionSiteAt(60*sim.Second, "UCSDT2", "both").
			HealPartitionAt(600*sim.Second, "UCSDT2")
	}
	cfg := core.HOGConfig(50, grid.ChurnNone, 13)
	want, wantStreams := faultStraight(t, cfg, sc())

	// Cut inside the partition window: after the cut at start+60, before the
	// heal at start+600.
	got, gotStreams, log := faultCutRun(t, cfg, sc(), 200*sim.Second,
		func(s *core.System, where string) {
			if s.PartitionedSites() == 0 {
				t.Fatalf("no site partitioned %s", where)
			}
		})
	if want != got {
		t.Fatalf("mid-partition restored run diverged:\n want %+v\n got  %+v", want, got)
	}
	for i := range wantStreams {
		if wantStreams[i] != gotStreams[i] {
			t.Fatalf("stream %q diverged: straight %+v restored %+v",
				wantStreams[i].Name, wantStreams[i], gotStreams[i])
		}
	}
	// The healing half of the loop happened in the restored continuation.
	if got := log.Count(event.PartitionStarted); got != 1 {
		t.Fatalf("PartitionStarted = %d in restored log, want 1", got)
	}
	if got := log.Count(event.PartitionHealed); got != 1 {
		t.Fatalf("PartitionHealed = %d in restored log, want 1", got)
	}
	if log.Count(event.NodeRecovered) == 0 {
		t.Fatal("no NodeRecovered after the heal in the restored continuation")
	}
}

// TestRoundTripMidGrayDegradation snapshots a run while nodes are in the
// gray state — slow disks and lossy heartbeats, so the gray RNG stream is
// live at the cut — and verifies the restored continuation matches the
// straight run bit for bit, including the gray stream's final position and
// the NodeRestored events that fire after the cut.
func TestRoundTripMidGrayDegradation(t *testing.T) {
	sc := func() *core.Scenario {
		return core.NewScenario("gray patch").
			DegradeNodesAt(60*sim.Second, "AGLT2", 3, 4, 0.25).
			RestoreNodesAt(600*sim.Second, "AGLT2")
	}
	cfg := core.HOGConfig(50, grid.ChurnNone, 17)
	want, wantStreams := faultStraight(t, cfg, sc())
	if len(wantStreams) != 2 || wantStreams[1].Name != "gray" || wantStreams[1].Draws == 0 {
		t.Fatalf("straight run streams = %+v, want a gray stream with draws", wantStreams)
	}

	got, gotStreams, log := faultCutRun(t, cfg, sc(), 200*sim.Second,
		func(s *core.System, where string) {
			if s.DegradedNodes() == 0 {
				t.Fatalf("no node degraded %s", where)
			}
		})
	if want != got {
		t.Fatalf("mid-gray restored run diverged:\n want %+v\n got  %+v", want, got)
	}
	for i := range wantStreams {
		if wantStreams[i] != gotStreams[i] {
			t.Fatalf("stream %q diverged: straight %+v restored %+v",
				wantStreams[i].Name, wantStreams[i], gotStreams[i])
		}
	}
	deg, rst := log.Count(event.NodeDegraded), log.Count(event.NodeRestored)
	if deg == 0 || deg != rst {
		t.Fatalf("NodeDegraded = %d, NodeRestored = %d in restored log, want equal and > 0", deg, rst)
	}
}
