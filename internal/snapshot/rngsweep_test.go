package snapshot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// rngAllowlist names every file allowed to import math/rand, with the named
// stream (or generator) each belongs to. The snapshot census records each
// simulator stream's (seed, draws) position, so a new rand source anywhere
// else would either have to join this list (and the core.RNGStreams
// registry) or break this test — there is no way to grow an untracked
// source of nondeterminism silently.
var rngAllowlist = map[string]string{
	"internal/sim/engine.go":         "the engine stream (core.RNGStreams \"engine\")",
	"internal/sim/rngsource.go":      "the CountingSource wrapper itself",
	"internal/sim/dist.go":           "distributions sampling the engine stream (no own source)",
	"internal/workload/workload.go":  "pre-sim schedule generator (output rides in snapshots as data)",
	"internal/experiments/chaos.go":  "pre-sim chaos-schedule generator (seeded, generation-time only)",
	"internal/experiments/chaos2.go": "pre-sim beyond-crash-stop schedule generator (seeded, generation-time only)",
	"internal/core/faults.go":        "the gray heartbeat-loss stream (core.RNGStreams \"gray\", counted)",
}

// TestNoHiddenRandSources walks every Go file in the module and fails if a
// file outside the allowlist imports math/rand. The simulator has exactly
// one RNG stream (the engine's counting source); snapshot restore verifies
// its position after replay, and that guarantee only holds while this sweep
// stays clean.
func TestNoHiddenRandSources(t *testing.T) {
	root := "../.."
	var offenders []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == ".git" || name == "testdata" || name == "examples" {
				return filepath.SkipDir
			}
			return nil
		}
		// Test files drive the simulator from outside; their own input
		// generation cannot leak into a simulation run.
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !strings.Contains(string(data), `"math/rand"`) {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if _, ok := rngAllowlist[rel]; !ok {
			offenders = append(offenders, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Fatalf("files import math/rand outside the named-stream allowlist: %v\n"+
			"Either route the randomness through the engine stream (sim.Engine.Rand), or register "+
			"a named stream in core.RNGStreams and add the file here with a justification.", offenders)
	}
}
