package snapshot

import (
	"errors"
	"strings"
	"testing"

	"hog/internal/core"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
	"hog/internal/workload"
)

// fingerprint collapses a finished run into a comparable struct: the full
// event-log fingerprint plus the Result fields the experiments report.
type fingerprint struct {
	Events       uint64
	Total        int
	ResponseTime sim.Time
	Start, End   sim.Time
	JobsFailed   int
	Jobs         int
	TaskSeconds  float64
	NNHash       uint64
	NetHash      uint64
	GridHash     uint64
	Draws        uint64
	Seq          uint64
}

func fp(log *event.Log, sys *core.System, res *core.Result) fingerprint {
	f := fingerprint{
		Events:       log.Fingerprint(),
		Total:        log.Total(),
		ResponseTime: res.ResponseTime,
		Start:        res.Start,
		End:          res.End,
		JobsFailed:   res.JobsFailed,
		Jobs:         len(res.JobResponses),
		TaskSeconds:  res.TaskSeconds,
		NNHash:       sys.NN.Census().Hash,
		NetHash:      sys.Net.Census().Hash,
		Draws:        sys.Eng.RandDraws(),
		Seq:          sys.Eng.SeqCount(),
	}
	if sys.Pool != nil {
		f.GridHash = sys.Pool.Census().Hash
	}
	return f
}

func sched(seed int64, scale float64) *workload.Schedule {
	return workload.Generate(seed, workload.Config{Scale: scale})
}

// straightRun runs cfg to completion uninterrupted.
func straightRun(t *testing.T, cfg core.Config, sc *core.Scenario) fingerprint {
	t.Helper()
	log := event.NewLog()
	sys, err := core.NewSystem(cfg, log)
	if err != nil {
		t.Fatal(err)
	}
	if sc != nil {
		if err := sys.Apply(sc); err != nil {
			t.Fatal(err)
		}
	}
	res := sys.RunWorkload(sched(cfg.Seed, 0.1))
	return fp(log, sys, res)
}

// snapshotRun starts the same run, snapshots at frac of the schedule span,
// restores from the bytes, and finishes the restored system.
func snapshotRun(t *testing.T, cfg core.Config, sc *core.Scenario, frac float64) fingerprint {
	t.Helper()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc != nil {
		if err := sys.Apply(sc); err != nil {
			t.Fatal(err)
		}
	}
	s := sched(cfg.Seed, 0.1)
	if err := sys.StartWorkload(s); err != nil {
		t.Fatal(err)
	}
	cut := sys.RunStart() + sim.Time(float64(s.Span())*frac)
	if err := sys.RunTo(cut); err != nil {
		t.Fatal(err)
	}
	data, err := Save(sys)
	if err != nil {
		t.Fatal(err)
	}
	log := event.NewLog()
	restored, err := Restore(data, log)
	if err != nil {
		t.Fatal(err)
	}
	res := restored.FinishWorkload()
	return fp(log, restored, res)
}

// policyPoints covers every decision point's non-default choice plus the
// default, per the PR-8 registries.
var policyPoints = []struct {
	name string
	pol  core.Policies
}{
	{"default", core.Policies{}},
	{"fair", core.Policies{Scheduler: "fair"}},
	{"site-load", core.Policies{Speculation: "site-load"}},
	{"random", core.Policies{Placement: "random"}},
	{"rarest", core.Policies{Replication: "rarest"}},
}

// TestRoundTrip1k: a 1k-node LARGE-GRID run snapshotted mid-run and
// restored is byte-identical to the uninterrupted run — across shard
// counts, under the sequential oracle, and under every registered policy's
// non-default choice.
func TestRoundTrip1k(t *testing.T) {
	engines := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"shards1", func(c *core.Config) { c.Shards = 1 }},
		{"shards4", func(c *core.Config) { c.Shards = 4 }},
		{"seq", func(c *core.Config) { c.SequentialEngine = true }},
	}
	for _, pp := range policyPoints {
		for _, eng := range engines {
			pp, eng := pp, eng
			t.Run(pp.name+"/"+eng.name, func(t *testing.T) {
				t.Parallel()
				cfg := core.LargeGridConfig(1000, grid.ChurnStable, 7)
				cfg.Policies = pp.pol
				eng.mut(&cfg)
				want := straightRun(t, cfg, nil)
				got := snapshotRun(t, cfg, nil, 0.5)
				if want != got {
					t.Fatalf("restored run diverged from straight run:\n want %+v\n got  %+v", want, got)
				}
			})
		}
	}
}

// TestRoundTrip10k: the MEGA-GRID acceptance point, shard counts 1 and 4
// plus the sequential oracle. Heavy; skipped in -short and race runs.
func TestRoundTrip10k(t *testing.T) {
	if testing.Short() || raceDetector {
		t.Skip("10k-node round trip is heavy; skipped in -short/race runs")
	}
	for _, eng := range []struct {
		name string
		mut  func(*core.Config)
	}{
		{"shards1", func(c *core.Config) { c.Shards = 1 }},
		{"shards4", func(c *core.Config) { c.Shards = 4 }},
		{"seq", func(c *core.Config) { c.SequentialEngine = true }},
	} {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			t.Parallel()
			cfg := core.MegaGridConfig(10000, grid.ChurnStable, 7)
			eng.mut(&cfg)
			want := straightRun(t, cfg, nil)
			got := snapshotRun(t, cfg, nil, 0.5)
			if want != got {
				t.Fatalf("restored MEGA-GRID run diverged:\n want %+v\n got  %+v", want, got)
			}
		})
	}
}

// TestRoundTripWithScenario: scenarios (including master faults) ride in
// the snapshot and replay identically — here with the snapshot cut placed
// mid-safe-mode, after a namenode crash and before its restart completes.
func TestRoundTripMidMasterCrash(t *testing.T) {
	sc := func() *core.Scenario {
		return core.NewScenario("crash").
			CrashNameNodeAt(60 * sim.Second).
			RestartMastersAfter(240 * sim.Second)
	}
	cfg := core.LargeGridConfig(1000, grid.ChurnStable, 11)
	want := straightRun(t, cfg, sc())

	// Cut inside the crash window: after the crash at start+60, before the
	// restart at start+240.
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Apply(sc()); err != nil {
		t.Fatal(err)
	}
	s := sched(cfg.Seed, 0.1)
	if err := sys.StartWorkload(s); err != nil {
		t.Fatal(err)
	}
	cut := sys.RunStart() + 90*sim.Second
	if err := sys.RunTo(cut); err != nil {
		t.Fatal(err)
	}
	if !sys.NN.Down() {
		t.Fatalf("test setup: namenode not down at cut instant %v", cut)
	}
	data, err := Save(sys)
	if err != nil {
		t.Fatal(err)
	}
	log := event.NewLog()
	restored, err := Restore(data, log)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.NN.Down() {
		t.Fatal("restored system lost the mid-crash state: namenode is up")
	}
	res := restored.FinishWorkload()
	if got := fp(log, restored, res); want != got {
		t.Fatalf("mid-crash restored run diverged:\n want %+v\n got  %+v", want, got)
	}
}

// TestRoundTripMidSafeMode cuts during the namenode's safe-mode window
// right after restart.
func TestRoundTripMidSafeMode(t *testing.T) {
	sc := func() *core.Scenario {
		return core.NewScenario("crash").
			CrashNameNodeAt(60 * sim.Second).
			RestartMastersAfter(120 * sim.Second)
	}
	cfg := core.LargeGridConfig(1000, grid.ChurnStable, 11)
	want := straightRun(t, cfg, sc())

	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Apply(sc()); err != nil {
		t.Fatal(err)
	}
	s := sched(cfg.Seed, 0.1)
	if err := sys.StartWorkload(s); err != nil {
		t.Fatal(err)
	}
	// Probe forward in small steps from the restart instant until the
	// namenode is observably in safe mode (awaiting block reports); the
	// window closes as heartbeats deliver reports, so its width depends on
	// heartbeat phase. Incremental RunTo calls compose without changing
	// the run.
	start := sys.RunStart()
	for off := 120*sim.Second + 50*sim.Millisecond; off < 220*sim.Second; off += 500 * sim.Millisecond {
		if err := sys.RunTo(start + off); err != nil {
			t.Fatal(err)
		}
		if sys.NN.InSafeMode() {
			break
		}
	}
	if !sys.NN.InSafeMode() {
		t.Skipf("namenode never observed in safe mode in the probe window")
	}
	data, err := Save(sys)
	if err != nil {
		t.Fatal(err)
	}
	log := event.NewLog()
	restored, err := Restore(data, log)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.NN.InSafeMode() {
		t.Fatal("restored system lost the safe-mode state")
	}
	res := restored.FinishWorkload()
	if got := fp(log, restored, res); want != got {
		t.Fatalf("mid-safe-mode restored run diverged:\n want %+v\n got  %+v", want, got)
	}
}

// TestForkDeterminism: forking one snapshot into N branches yields
// identical results per branch across repeated forks, and a divergence
// branch actually diverges from the control.
func TestForkDeterminism(t *testing.T) {
	cfg := core.LargeGridConfig(1000, grid.ChurnStable, 5)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sched(cfg.Seed, 0.1)
	if err := sys.StartWorkload(s); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunTo(sys.RunStart() + s.Span()/2); err != nil {
		t.Fatal(err)
	}
	data, err := Save(sys)
	if err != nil {
		t.Fatal(err)
	}
	outage := func() *core.Scenario {
		return core.NewScenario("outage").SiteOutageAt(30*sim.Second, "BNL_ATLAS", 0.9)
	}
	run := func() (control, diverged fingerprint) {
		branches, err := Fork(data, []*core.Scenario{nil, outage()})
		if err != nil {
			t.Fatal(err)
		}
		c := branches[0].FinishWorkload()
		d := branches[1].FinishWorkload()
		return fp(event.NewLog(), branches[0], c), fp(event.NewLog(), branches[1], d)
	}
	c1, d1 := run()
	c2, d2 := run()
	if c1 != c2 || d1 != d2 {
		t.Fatalf("fork branches are not deterministic:\n c1 %+v\n c2 %+v\n d1 %+v\n d2 %+v", c1, c2, d1, d2)
	}
	if c1 == d1 {
		t.Fatal("divergence branch produced the identical run; the scenario did not apply")
	}
	// A diverged branch must refuse to snapshot.
	branches, err := Fork(data, []*core.Scenario{outage()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Save(branches[0]); err == nil {
		t.Fatal("Save accepted a diverged fork branch")
	}
}

// TestContainerRejection: corrupted, truncated, and version-mismatched
// snapshots are rejected with the right sentinel errors.
func TestContainerRejection(t *testing.T) {
	cfg := core.HOGConfig(60, grid.ChurnStable, 3)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Save(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	bad := append([]byte("not a snapshot, promise"), data...)
	if _, err := Restore(bad); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("bad magic: got %v, want ErrNotSnapshot", err)
	}

	short := data[:len(data)-9]
	if _, err := Restore(short); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: got %v, want ErrTruncated", err)
	}
	if _, err := Restore(data[:5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("tiny: got %v, want ErrTruncated", err)
	}

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Restore(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted: got %v, want ErrCorrupt", err)
	}

	vbad := append([]byte(nil), data...)
	vbad[8] = 99
	err = func() error { _, err := Restore(vbad); return err }()
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version mismatch: got %v, want ErrVersion", err)
	}
	if !strings.Contains(err.Error(), "v99") {
		t.Fatalf("version error does not name the found version: %v", err)
	}
}

// TestSaveRejections: finished runs and When-scenario systems cannot save.
func TestSaveRejections(t *testing.T) {
	cfg := core.HOGConfig(60, grid.ChurnStable, 3)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunWorkload(sched(cfg.Seed, 0.05))
	if _, err := Save(sys); err == nil {
		t.Fatal("Save accepted a finished run")
	}

	sys2, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	when := core.NewScenario("custom").When("noop", func(*core.System) bool { return false }, func(*core.System) {})
	if err := sys2.Apply(when); err != nil {
		t.Fatal(err)
	}
	if _, err := Save(sys2); err == nil {
		t.Fatal("Save accepted a When scenario it cannot serialize")
	} else if !strings.Contains(err.Error(), "When") {
		t.Fatalf("Save error does not explain the When limitation: %v", err)
	}
}

// TestScenarioSpecRoundTrip: every typed verb survives Spec →
// ScenarioFromSpec.
func TestScenarioSpecRoundTrip(t *testing.T) {
	sc := core.NewScenario("all-verbs").
		Poll(7*sim.Second).
		SiteOutageAt(10*sim.Second, "BNL_ATLAS", 0.5).
		ChurnBurst(20*sim.Second, 0.25).
		KillFraction(30*sim.Second, 0.1).
		RetargetPool(40*sim.Second, 50).
		RebalanceAt(50*sim.Second, 0.1, 10).
		DegradeNetwork(60*sim.Second, "BNL_ATLAS", 0.5).
		CrashNameNodeAt(70*sim.Second).
		CrashJobTrackerAt(80*sim.Second).
		RestartMastersAfter(90*sim.Second).
		RetargetWhenAliveBelow(10, 100)
	spec, err := sc.Spec()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.ScenarioFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := back.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Steps) != len(spec2.Steps) || spec.Name != spec2.Name || spec.Poll != spec2.Poll {
		t.Fatalf("spec round trip changed shape: %+v vs %+v", spec, spec2)
	}
	for i := range spec.Steps {
		if spec.Steps[i] != spec2.Steps[i] {
			t.Fatalf("step %d changed: %+v vs %+v", i, spec.Steps[i], spec2.Steps[i])
		}
	}
	if _, err := core.ScenarioFromSpec(core.ScenarioSpec{Name: "x", Steps: []core.StepSpec{{Verb: "no-such-verb"}}}); err == nil {
		t.Fatal("unknown verb accepted")
	}
}
