package experiments

import (
	"fmt"
	"io"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/metrics"
	"hog/internal/sim"
	"hog/internal/snapshot"
)

// WHATIF: the paper's central questions — what happens to the *same*
// cluster day under a site outage, a churn burst, a degraded WAN? — asked
// the way an operator would: warm up one MEGA-GRID run to three quarters of
// the submission window, snapshot it, and fork the snapshot into divergent
// branches. Every branch replays the identical history up to the fork
// instant (snapshot restore is byte-identical by construction), so each
// delta against the baseline branch is attributable to the injected fault
// alone — no seed noise, no warm-up variance.

// whatIfFork is the divergence instant, offset from the snapshot cut.
const whatIfFork = 30 * sim.Second

// WhatIfBranches names the fault branches, in report order. The baseline
// branch restores the snapshot unmodified.
var WhatIfBranches = []string{"baseline", "outage", "churn", "wan"}

// whatIfDivergence builds the named branch's divergence scenario; baseline
// returns nil. CALTECH_T2 is MEGA-GRID's largest site.
func whatIfDivergence(name string) *core.Scenario {
	switch name {
	case "baseline":
		return nil
	case "outage":
		return core.NewScenario("whatif-outage").SiteOutageAt(whatIfFork, "CALTECH_T2", 0.9)
	case "churn":
		return core.NewScenario("whatif-churn").ChurnBurst(whatIfFork, 0.3)
	case "wan":
		return core.NewScenario("whatif-wan").DegradeNetwork(whatIfFork, "CALTECH_T2", 0.1)
	default:
		panic(fmt.Sprintf("experiments: unknown what-if branch %q", name))
	}
}

// WhatIfBranchResult is one branch of a what-if fork.
type WhatIfBranchResult struct {
	Branch     string
	WarmAt     sim.Time // fork instant (absolute simulated time)
	Response   sim.Time
	P50        sim.Time
	P95        sim.Time
	P99        sim.Time
	Jobs       int
	JobsFailed int
}

// whatIfWarm builds the MEGA-GRID system, starts the Facebook workload,
// runs to three quarters of the submission window, and snapshots.
func whatIfWarm(opts Options) ([]byte, sim.Time) {
	sys := core.New(opts.tune(core.MegaGridConfig(10000, grid.ChurnStable, opts.Seeds[0])))
	s := sched(opts.Seeds[0], opts.Scale)
	if err := sys.StartWorkload(s); err != nil {
		panic(err)
	}
	cut := sys.RunStart() + s.Span()*3/4
	if err := sys.RunTo(cut); err != nil {
		panic(err)
	}
	data, err := snapshot.Save(sys)
	if err != nil {
		panic(err)
	}
	return data, sys.Eng.Now()
}

// whatIfBranchFrom forks one branch off a warm snapshot and runs it to
// completion.
func whatIfBranchFrom(snap []byte, warmAt sim.Time, branch string) WhatIfBranchResult {
	sys, err := snapshot.Restore(snap)
	if err != nil {
		panic(err)
	}
	if div := whatIfDivergence(branch); div != nil {
		if err := sys.ApplyDivergence(div); err != nil {
			panic(err)
		}
	}
	res := sys.FinishWorkload()
	sum := metrics.Summarize(res.JobResponses)
	return WhatIfBranchResult{
		Branch:     branch,
		WarmAt:     warmAt,
		Response:   res.ResponseTime,
		P50:        sum.P50,
		P95:        sum.P95,
		P99:        sum.P99,
		Jobs:       len(res.JobResponses),
		JobsFailed: res.JobsFailed,
	}
}

// WhatIfBranch runs one branch end to end — warm-up, snapshot, fork,
// divergence, completion — self-contained so harness trials stay
// independent and any subset can run on any worker in any order.
func WhatIfBranch(opts Options, branch string) WhatIfBranchResult {
	opts = opts.WithDefaults()
	snap, warmAt := whatIfWarm(opts)
	return whatIfBranchFrom(snap, warmAt, branch)
}

// WhatIf warms up once and forks every branch from the same snapshot — the
// warm-start mode: N what-if branches for one warm-up's worth of
// simulation plus the branch tails.
func WhatIf(opts Options) []WhatIfBranchResult {
	opts = opts.WithDefaults()
	snap, warmAt := whatIfWarm(opts)
	out := make([]WhatIfBranchResult, 0, len(WhatIfBranches))
	for _, b := range WhatIfBranches {
		out = append(out, whatIfBranchFrom(snap, warmAt, b))
	}
	return out
}

// PrintWhatIf prints every branch with deltas against the baseline.
func PrintWhatIf(w io.Writer, opts Options) {
	rs := WhatIf(opts)
	base := rs[0]
	fmt.Fprintln(w, "WHATIF: one MEGA-GRID warm-up forked into fault branches")
	fmt.Fprintf(w, "warm-up snapshot at t=%.0f s (3/4 of the submission window), divergence at +%.0f s\n",
		base.WarmAt.Seconds(), whatIfFork.Seconds())
	for _, r := range rs {
		fmt.Fprintf(w, "%-9s response=%7.0f s  p50=%6.0f s  p95=%6.0f s  p99=%6.0f s  failed=%d\n",
			r.Branch, r.Response.Seconds(), r.P50.Seconds(), r.P95.Seconds(), r.P99.Seconds(), r.JobsFailed)
		if r.Branch != base.Branch {
			fmt.Fprintf(w, "          Δresponse=%+.0f s  Δp50=%+.0f s  Δp95=%+.0f s  Δp99=%+.0f s  Δfailed=%+d\n",
				(r.Response - base.Response).Seconds(), (r.P50 - base.P50).Seconds(),
				(r.P95 - base.P95).Seconds(), (r.P99 - base.P99).Seconds(), r.JobsFailed-base.JobsFailed)
		}
	}
}
