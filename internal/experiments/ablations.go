package experiments

import (
	"fmt"
	"io"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/hod"
	"hog/internal/sim"
	"hog/internal/workload"
)

// SiteFailureCase is one A-SITE configuration.
type SiteFailureCase struct {
	Label     string
	Repl      int
	SiteAware bool
}

// SiteFailureCases returns the paper's configuration (replication 10, site
// aware) and a naive one (replication 2, flat).
func SiteFailureCases() []SiteFailureCase {
	return []SiteFailureCase{
		{"HOG (repl 10, site-aware)", 10, true},
		{"naive (repl 2, flat)", 2, false},
	}
}

// SiteFailureResult is one configuration's outcome under a whole-site
// outage (A-SITE).
type SiteFailureResult struct {
	Label      string
	Repl       int
	SiteAware  bool
	BlocksLost int
	JobsFailed int
	Response   sim.Time
}

// SiteFailureSite is the site A-SITE takes down: the largest OSG site,
// addressed by name rather than by its index in the site list.
const SiteFailureSite = "FNAL_FERMIGRID"

// SiteFailureTrial kills the largest site mid-run under one configuration.
// The outage is a scripted scenario step: timed steps anchor to the workload
// start, so the outage hits 300 s after provisioning completes and the data
// is staged — a populated, data-bearing site, per the paper's §IV.B
// procedure.
func SiteFailureTrial(c SiteFailureCase, opts Options) SiteFailureResult {
	opts = opts.WithDefaults()
	cfg := core.HOGConfig(60, grid.ChurnNone, opts.Seeds[0])
	cfg.HDFS.Replication = c.Repl
	cfg.HDFS.SiteAware = c.SiteAware
	sys := core.New(opts.tune(cfg))
	outage := core.NewScenario("whole-site outage").
		SiteOutageAt(300*sim.Second, SiteFailureSite, 1.0)
	if err := sys.Apply(outage); err != nil {
		panic(err)
	}
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	return SiteFailureResult{
		Label: c.Label, Repl: c.Repl, SiteAware: c.SiteAware,
		BlocksLost: res.NN.BlocksLost, JobsFailed: res.JobsFailed,
		Response: res.ResponseTime,
	}
}

// SiteFailure runs A-SITE under every configuration.
func SiteFailure(opts Options) []SiteFailureResult {
	var out []SiteFailureResult
	for _, c := range SiteFailureCases() {
		out = append(out, SiteFailureTrial(c, opts))
	}
	return out
}

// PrintSiteFailure prints A-SITE.
func PrintSiteFailure(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-SITE: whole-site failure (site awareness ablation)")
	fmt.Fprintln(w, "Config                       BlocksLost  JobsFailed  Response(s)")
	for _, r := range SiteFailure(opts) {
		fmt.Fprintf(w, "%-28s %10d  %10d  %11.0f\n", r.Label, r.BlocksLost, r.JobsFailed, r.Response.Seconds())
	}
}

// ReplicationFactors returns the A-REPL sweep points.
func ReplicationFactors() []int { return []int{3, 5, 10, 15} }

// ReplicationResult is one replication factor's outcome (A-REPL).
type ReplicationResult struct {
	Repl            int
	JobsFailed      int
	BlocksLost      int
	Response        sim.Time
	BytesReplicated float64
	CrossSiteBytes  float64
}

// ReplicationTrial runs one replication factor under unstable churn,
// exposing the paper's trade-off: "Too many replicas would impose extra
// replication overhead ... Too few would cause frequent data failures."
func ReplicationTrial(repl int, opts Options) ReplicationResult {
	opts = opts.WithDefaults()
	cfg := core.HOGConfig(60, grid.ChurnUnstable, opts.Seeds[0])
	cfg.HDFS.Replication = repl
	sys := core.New(opts.tune(cfg))
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	return ReplicationResult{
		Repl: repl, JobsFailed: res.JobsFailed, BlocksLost: res.NN.BlocksLost,
		Response: res.ResponseTime, BytesReplicated: res.NN.BytesReplicated,
		CrossSiteBytes: res.Net.BytesCrossSite,
	}
}

// ReplicationSweep varies the replication factor under unstable churn.
func ReplicationSweep(opts Options) []ReplicationResult {
	var out []ReplicationResult
	for _, repl := range ReplicationFactors() {
		out = append(out, ReplicationTrial(repl, opts))
	}
	return out
}

// PrintReplicationSweep prints A-REPL.
func PrintReplicationSweep(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-REPL: replication factor under unstable churn (60 nodes)")
	fmt.Fprintln(w, "Repl  JobsFailed  BlocksLost  Response(s)  ReplTraffic(GB)  CrossSite(GB)")
	for _, r := range ReplicationSweep(opts) {
		fmt.Fprintf(w, "%4d  %10d  %10d  %11.0f  %15.1f  %13.1f\n",
			r.Repl, r.JobsFailed, r.BlocksLost, r.Response.Seconds(),
			r.BytesReplicated/1e9, r.CrossSiteBytes/1e9)
	}
}

// HeartbeatTimeouts returns the A-HB sweep points: HOG's 30 s dead timeout
// and the traditional 15 minutes.
func HeartbeatTimeouts() []sim.Time { return []sim.Time{30 * sim.Second, 900 * sim.Second} }

// HeartbeatResult is one dead-timeout setting's outcome (A-HB).
type HeartbeatResult struct {
	Timeout    sim.Time
	Response   sim.Time
	JobsFailed int
}

// HeartbeatTrial runs one dead-timeout setting under unstable churn.
func HeartbeatTrial(timeout sim.Time, opts Options) HeartbeatResult {
	opts = opts.WithDefaults()
	cfg := core.HOGConfig(60, grid.ChurnUnstable, opts.Seeds[0])
	cfg.HDFS.DeadTimeout = timeout
	cfg.MapRed.TrackerTimeout = timeout
	sys := core.New(opts.tune(cfg))
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	return HeartbeatResult{Timeout: timeout, Response: res.ResponseTime, JobsFailed: res.JobsFailed}
}

// HeartbeatSweep compares the dead-timeout settings under unstable churn.
func HeartbeatSweep(opts Options) []HeartbeatResult {
	var out []HeartbeatResult
	for _, timeout := range HeartbeatTimeouts() {
		out = append(out, HeartbeatTrial(timeout, opts))
	}
	return out
}

// PrintHeartbeatSweep prints A-HB.
func PrintHeartbeatSweep(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-HB: dead-node timeout under unstable churn (60 nodes)")
	fmt.Fprintln(w, "Timeout(s)  Response(s)  JobsFailed")
	for _, r := range HeartbeatSweep(opts) {
		fmt.Fprintf(w, "%10.0f  %11.0f  %10d\n", r.Timeout.Seconds(), r.Response.Seconds(), r.JobsFailed)
	}
}

// ZombieModes returns the three §IV.D.1 behaviours.
func ZombieModes() []core.ZombieMode {
	return []core.ZombieMode{core.ZombieUnfixed, core.ZombieDiskCheck, core.ZombieFixed}
}

// ZombieResult is one zombie-handling mode's outcome (A-ZOMBIE).
type ZombieResult struct {
	Mode           core.ZombieMode
	Response       sim.Time
	FailedAttempts int
	FetchFailures  int
	JobsFailed     int
}

// ZombieTrial runs one zombie-handling mode under unstable churn.
func ZombieTrial(mode core.ZombieMode, opts Options) ZombieResult {
	opts = opts.WithDefaults()
	cfg := core.HOGConfig(55, grid.ChurnUnstable, opts.Seeds[0])
	cfg.Zombie = mode
	sys := core.New(opts.tune(cfg))
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	return ZombieResult{
		Mode:           mode,
		Response:       res.ResponseTime,
		FailedAttempts: res.Counters.MapAttemptsFailed + res.Counters.ReduceAttemptsFailed,
		FetchFailures:  res.Counters.FetchFailures,
		JobsFailed:     res.JobsFailed,
	}
}

// ZombieSweep compares the three §IV.D.1 behaviours under unstable churn.
func ZombieSweep(opts Options) []ZombieResult {
	var out []ZombieResult
	for _, mode := range ZombieModes() {
		out = append(out, ZombieTrial(mode, opts))
	}
	return out
}

// PrintZombieSweep prints A-ZOMBIE.
func PrintZombieSweep(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-ZOMBIE: abandoned datanodes (55 nodes, unstable churn)")
	fmt.Fprintln(w, "Mode        Response(s)  FailedAttempts  FetchFailures  JobsFailed")
	for _, r := range ZombieSweep(opts) {
		fmt.Fprintf(w, "%-10s  %11.0f  %14d  %13d  %10d\n",
			r.Mode, r.Response.Seconds(), r.FailedAttempts, r.FetchFailures, r.JobsFailed)
	}
}

// DiskFactors returns the A-DISK scratch sizes relative to the workload's
// replicated input footprint per node: ample (10x), tight (1.6x), and
// overflowing (1.15x — input fits, but lingering intermediate output does
// not).
func DiskFactors() []float64 { return []float64{10, 1.6, 1.15} }

// DiskOverflowResult is one scratch-size outcome (A-DISK).
type DiskOverflowResult struct {
	DiskGB    float64
	Overflows int
	Killed    int
	Response  sim.Time
}

// DiskOverflowTrial runs one scratch-size factor (§IV.D.2). Disk sizes are
// set relative to the workload's replicated input footprint per node, so
// the experiment is meaningful at any Scale.
func DiskOverflowTrial(factor float64, opts Options) DiskOverflowResult {
	opts = opts.WithDefaults()
	const nodes = 60
	s := sched(opts.Seeds[0], opts.Scale)
	var inputBytes float64
	for _, j := range s.Jobs {
		inputBytes += j.InputBytes
	}
	perNode := inputBytes * 10 / nodes // replication 10
	diskGB := perNode * factor / 1e9
	cfg := core.HOGConfig(nodes, grid.ChurnNone, opts.Seeds[0])
	cfg.Grid.Pool.DiskBytesPerNode = diskGB * 1e9
	// Slow the reduces so intermediate output lingers, as the paper's
	// WAN-bound reduces did.
	cfg.Costs.ReduceCostPerMB = 400 * sim.Millisecond
	sys := core.New(opts.tune(cfg))
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	return DiskOverflowResult{
		DiskGB:    diskGB,
		Overflows: sys.Disk.Overflows(),
		Killed:    res.Pool.Killed,
		Response:  res.ResponseTime,
	}
}

// DiskOverflow shrinks worker scratch space until intermediate map output
// accumulation kills workers (§IV.D.2).
func DiskOverflow(opts Options) []DiskOverflowResult {
	var out []DiskOverflowResult
	for _, factor := range DiskFactors() {
		out = append(out, DiskOverflowTrial(factor, opts))
	}
	return out
}

// PrintDiskOverflow prints A-DISK.
func PrintDiskOverflow(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-DISK: worker scratch size vs. disk overflow (60 nodes)")
	fmt.Fprintln(w, "Disk(GB)  Overflows  WorkersKilled  Response(s)")
	for _, r := range DiskOverflow(opts) {
		fmt.Fprintf(w, "%8.0f  %9d  %13d  %11.0f\n", r.DiskGB, r.Overflows, r.Killed, r.Response.Seconds())
	}
}

// NCopyCase is one redundant-copy configuration.
type NCopyCase struct {
	Copies      int
	Eager       bool
	Speculative bool
}

// NCopyCases returns the A-NCOPY configurations: no speculation, stock
// Hadoop speculation, and the paper's §VI future work (eager duplicates and
// triple execution).
func NCopyCases() []NCopyCase {
	return []NCopyCase{
		{1, false, false}, // no speculation at all
		{2, false, true},  // stock Hadoop speculation
		{2, true, true},   // future work: eager duplicates
		{3, true, true},   // future work: triple execution
	}
}

// NCopyResult is one redundant-copy setting's outcome (A-NCOPY).
type NCopyResult struct {
	Copies      int
	Eager       bool
	Response    sim.Time
	Speculative int
}

// RedundantCopiesTrial runs one copy configuration under unstable churn,
// with the fastest copy taken as the result.
func RedundantCopiesTrial(c NCopyCase, opts Options) NCopyResult {
	opts = opts.WithDefaults()
	cfg := core.HOGConfig(80, grid.ChurnUnstable, opts.Seeds[0])
	cfg.MapRed.Speculative = c.Speculative
	cfg.MapRed.MaxTaskCopies = c.Copies
	cfg.MapRed.EagerRedundancy = c.Eager
	sys := core.New(opts.tune(cfg))
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	return NCopyResult{
		Copies: c.Copies, Eager: c.Eager,
		Response:    res.ResponseTime,
		Speculative: res.Counters.SpeculativeMaps + res.Counters.SpeculativeReduces,
	}
}

// RedundantCopies explores the paper's future work (§VI): configurable
// numbers of task copies versus stock speculation and no speculation.
func RedundantCopies(opts Options) []NCopyResult {
	var out []NCopyResult
	for _, c := range NCopyCases() {
		out = append(out, RedundantCopiesTrial(c, opts))
	}
	return out
}

// PrintRedundantCopies prints A-NCOPY.
func PrintRedundantCopies(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-NCOPY: redundant task copies under unstable churn (80 nodes)")
	fmt.Fprintln(w, "Copies  Eager  Response(s)  ExtraAttempts")
	for _, r := range RedundantCopies(opts) {
		fmt.Fprintf(w, "%6d  %5v  %11.0f  %13d\n", r.Copies, r.Eager, r.Response.Seconds(), r.Speculative)
	}
}

// DelayWaits returns the A-DELAY locality-wait sweep points.
func DelayWaits() []sim.Time { return []sim.Time{0, 15 * sim.Second, 45 * sim.Second} }

// DelayResult is one scheduler setting's outcome (A-DELAY).
type DelayResult struct {
	Wait         sim.Time
	Response     sim.Time
	NodeLocal    int
	NonLocal     int
	LocalityRate float64
}

// DelayTrial runs one locality-wait setting at a low replication factor
// where locality is scarce.
func DelayTrial(wait sim.Time, opts Options) DelayResult {
	opts = opts.WithDefaults()
	cfg := core.HOGConfig(60, grid.ChurnStable, opts.Seeds[0])
	cfg.HDFS.Replication = 2 // make locality contended
	cfg.MapRed.LocalityWait = wait
	sys := core.New(opts.tune(cfg))
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	local := res.MapLocality[0]
	nonLocal := res.MapLocality[1] + res.MapLocality[2]
	rate := 0.0
	if local+nonLocal > 0 {
		rate = float64(local) / float64(local+nonLocal)
	}
	return DelayResult{
		Wait: wait, Response: res.ResponseTime,
		NodeLocal: local, NonLocal: nonLocal, LocalityRate: rate,
	}
}

// DelayScheduling compares HOG's plain FIFO against delay scheduling
// (Zaharia et al. [3], the paper's workload source).
func DelayScheduling(opts Options) []DelayResult {
	var out []DelayResult
	for _, wait := range DelayWaits() {
		out = append(out, DelayTrial(wait, opts))
	}
	return out
}

// PrintDelayScheduling prints A-DELAY.
func PrintDelayScheduling(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-DELAY: FIFO vs delay scheduling (60 nodes, replication 2)")
	fmt.Fprintln(w, "Wait(s)  Response(s)  NodeLocal  NonLocal  LocalityRate")
	for _, r := range DelayScheduling(opts) {
		fmt.Fprintf(w, "%7.0f  %11.0f  %9d  %8d  %11.1f%%\n",
			r.Wait.Seconds(), r.Response.Seconds(), r.NodeLocal, r.NonLocal, 100*r.LocalityRate)
	}
}

// HODSystems returns the two compared systems of A-HOD.
func HODSystems() []string { return []string{"HOD (per-job clusters)", "HOG (persistent pool)"} }

// HODResultRow compares HOD with HOG on the same schedule (A-HOD).
type HODResultRow struct {
	System         string
	Response       sim.Time
	Reconstruction sim.Time
	// TimedOut counts jobs truncated at HOD's per-job simulation cap; a
	// nonzero count means Response is a lower bound, not a completion time
	// (always 0 for HOG, whose run is not per-job capped).
	TimedOut int
}

// hodSchedule builds the A-HOD schedule: the workload's small-job bins
// (1-3, ~77% of Facebook jobs), where the paper's critique of HOD —
// per-request reconstruction overhead — dominates. For rare long jobs HOD's
// private clusters can win; that is not the regime either system targets.
func hodSchedule(opts Options) *workload.Schedule {
	scale := opts.Scale
	if scale > 0.5 {
		scale = 0.5
	}
	return workload.Generate(opts.Seeds[0], workload.Config{
		Bins:  workload.Table2()[:3],
		Scale: scale,
	})
}

// HODTrial runs the A-HOD schedule under one of the HODSystems labels: HOD
// (a fresh per-job cluster) or a persistent HOG pool of the same size.
// Unknown labels panic rather than silently running the wrong system.
func HODTrial(system string, opts Options) HODResultRow {
	opts = opts.WithDefaults()
	s := hodSchedule(opts)
	switch system {
	case HODSystems()[0]:
		cfg := hod.DefaultConfig(30, opts.Seeds[0])
		cfg.ScanScheduler = opts.ScanScheduler
		hodRes := hod.Run(s, cfg)
		return HODResultRow{system, hodRes.ResponseTime, hodRes.ReconstructionOverhead, hodRes.TimedOut}
	case HODSystems()[1]:
		sys := core.New(opts.tune(core.HOGConfig(30, grid.ChurnStable, opts.Seeds[0])))
		return HODResultRow{system, sys.RunWorkload(s).ResponseTime, 0, 0}
	default:
		panic(fmt.Sprintf("experiments: unknown HOD system %q", system))
	}
}

// HODComparison runs a schedule under HOD (per-job clusters) and under a
// persistent HOG pool of the same size.
func HODComparison(opts Options) []HODResultRow {
	var out []HODResultRow
	for _, system := range HODSystems() {
		out = append(out, HODTrial(system, opts))
	}
	return out
}

// PrintHODComparison prints A-HOD. Rows with timed-out jobs are marked: their
// response times are lower bounds, not completion times, and must not be
// read as a finished-workload comparison.
func PrintHODComparison(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-HOD: Hadoop On Demand vs. HOG (30 nodes)")
	fmt.Fprintln(w, "System                   Response(s)  Reconstruction(s)  TimedOut")
	for _, r := range HODComparison(opts) {
		mark := ""
		if r.TimedOut > 0 {
			mark = "  (response is a lower bound)"
		}
		fmt.Fprintf(w, "%-24s %11.0f  %17.0f  %8d%s\n",
			r.System, r.Response.Seconds(), r.Reconstruction.Seconds(), r.TimedOut, mark)
	}
}
