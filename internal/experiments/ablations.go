package experiments

import (
	"fmt"
	"io"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/hod"
	"hog/internal/sim"
	"hog/internal/workload"
)

// SiteFailureResult is one configuration's outcome under a whole-site
// outage (A-SITE).
type SiteFailureResult struct {
	Label      string
	Repl       int
	SiteAware  bool
	BlocksLost int
	JobsFailed int
	Response   sim.Time
}

// SiteFailure kills the largest site mid-run under the paper's configuration
// (replication 10, site aware) and under a naive one (replication 2, flat).
func SiteFailure(opts Options) []SiteFailureResult {
	opts = opts.withDefaults()
	cases := []struct {
		label     string
		repl      int
		siteAware bool
	}{
		{"HOG (repl 10, site-aware)", 10, true},
		{"naive (repl 2, flat)", 2, false},
	}
	var out []SiteFailureResult
	for _, c := range cases {
		cfg := core.HOGConfig(60, grid.ChurnNone, opts.Seeds[0])
		cfg.HDFS.Replication = c.repl
		cfg.HDFS.SiteAware = c.siteAware
		sys := core.New(cfg)
		// Provision first so the outage hits a populated, data-bearing site.
		sys.AwaitNodes()
		sys.Eng.After(300*sim.Second, func() { sys.Pool.PreemptSite(0, 1.0) })
		res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
		out = append(out, SiteFailureResult{
			Label: c.label, Repl: c.repl, SiteAware: c.siteAware,
			BlocksLost: res.NN.BlocksLost, JobsFailed: res.JobsFailed,
			Response: res.ResponseTime,
		})
	}
	return out
}

// PrintSiteFailure prints A-SITE.
func PrintSiteFailure(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-SITE: whole-site failure (site awareness ablation)")
	fmt.Fprintln(w, "Config                       BlocksLost  JobsFailed  Response(s)")
	for _, r := range SiteFailure(opts) {
		fmt.Fprintf(w, "%-28s %10d  %10d  %11.0f\n", r.Label, r.BlocksLost, r.JobsFailed, r.Response.Seconds())
	}
}

// ReplicationResult is one replication factor's outcome (A-REPL).
type ReplicationResult struct {
	Repl            int
	JobsFailed      int
	BlocksLost      int
	Response        sim.Time
	BytesReplicated float64
	CrossSiteBytes  float64
}

// ReplicationSweep varies the replication factor under unstable churn,
// exposing the paper's trade-off: "Too many replicas would impose extra
// replication overhead ... Too few would cause frequent data failures."
func ReplicationSweep(opts Options) []ReplicationResult {
	opts = opts.withDefaults()
	var out []ReplicationResult
	for _, repl := range []int{3, 5, 10, 15} {
		cfg := core.HOGConfig(60, grid.ChurnUnstable, opts.Seeds[0])
		cfg.HDFS.Replication = repl
		sys := core.New(cfg)
		res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
		out = append(out, ReplicationResult{
			Repl: repl, JobsFailed: res.JobsFailed, BlocksLost: res.NN.BlocksLost,
			Response: res.ResponseTime, BytesReplicated: res.NN.BytesReplicated,
			CrossSiteBytes: res.Net.BytesCrossSite,
		})
	}
	return out
}

// PrintReplicationSweep prints A-REPL.
func PrintReplicationSweep(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-REPL: replication factor under unstable churn (60 nodes)")
	fmt.Fprintln(w, "Repl  JobsFailed  BlocksLost  Response(s)  ReplTraffic(GB)  CrossSite(GB)")
	for _, r := range ReplicationSweep(opts) {
		fmt.Fprintf(w, "%4d  %10d  %10d  %11.0f  %15.1f  %13.1f\n",
			r.Repl, r.JobsFailed, r.BlocksLost, r.Response.Seconds(),
			r.BytesReplicated/1e9, r.CrossSiteBytes/1e9)
	}
}

// HeartbeatResult is one dead-timeout setting's outcome (A-HB).
type HeartbeatResult struct {
	Timeout    sim.Time
	Response   sim.Time
	JobsFailed int
}

// HeartbeatSweep compares HOG's 30 s dead timeout against the traditional
// 15 minutes under unstable churn.
func HeartbeatSweep(opts Options) []HeartbeatResult {
	opts = opts.withDefaults()
	var out []HeartbeatResult
	for _, timeout := range []sim.Time{30 * sim.Second, 900 * sim.Second} {
		cfg := core.HOGConfig(60, grid.ChurnUnstable, opts.Seeds[0])
		cfg.HDFS.DeadTimeout = timeout
		cfg.MapRed.TrackerTimeout = timeout
		sys := core.New(cfg)
		res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
		out = append(out, HeartbeatResult{Timeout: timeout, Response: res.ResponseTime, JobsFailed: res.JobsFailed})
	}
	return out
}

// PrintHeartbeatSweep prints A-HB.
func PrintHeartbeatSweep(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-HB: dead-node timeout under unstable churn (60 nodes)")
	fmt.Fprintln(w, "Timeout(s)  Response(s)  JobsFailed")
	for _, r := range HeartbeatSweep(opts) {
		fmt.Fprintf(w, "%10.0f  %11.0f  %10d\n", r.Timeout.Seconds(), r.Response.Seconds(), r.JobsFailed)
	}
}

// ZombieResult is one zombie-handling mode's outcome (A-ZOMBIE).
type ZombieResult struct {
	Mode           core.ZombieMode
	Response       sim.Time
	FailedAttempts int
	FetchFailures  int
	JobsFailed     int
}

// ZombieSweep compares the three §IV.D.1 behaviours under unstable churn.
func ZombieSweep(opts Options) []ZombieResult {
	opts = opts.withDefaults()
	var out []ZombieResult
	for _, mode := range []core.ZombieMode{core.ZombieUnfixed, core.ZombieDiskCheck, core.ZombieFixed} {
		cfg := core.HOGConfig(55, grid.ChurnUnstable, opts.Seeds[0])
		cfg.Zombie = mode
		sys := core.New(cfg)
		res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
		out = append(out, ZombieResult{
			Mode:           mode,
			Response:       res.ResponseTime,
			FailedAttempts: res.Counters.MapAttemptsFailed + res.Counters.ReduceAttemptsFailed,
			FetchFailures:  res.Counters.FetchFailures,
			JobsFailed:     res.JobsFailed,
		})
	}
	return out
}

// PrintZombieSweep prints A-ZOMBIE.
func PrintZombieSweep(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-ZOMBIE: abandoned datanodes (55 nodes, unstable churn)")
	fmt.Fprintln(w, "Mode        Response(s)  FailedAttempts  FetchFailures  JobsFailed")
	for _, r := range ZombieSweep(opts) {
		fmt.Fprintf(w, "%-10s  %11.0f  %14d  %13d  %10d\n",
			r.Mode, r.Response.Seconds(), r.FailedAttempts, r.FetchFailures, r.JobsFailed)
	}
}

// DiskOverflowResult is one scratch-size outcome (A-DISK).
type DiskOverflowResult struct {
	DiskGB    float64
	Overflows int
	Killed    int
	Response  sim.Time
}

// DiskOverflow shrinks worker scratch space until intermediate map output
// accumulation kills workers (§IV.D.2). Disk sizes are set relative to the
// workload's replicated input footprint per node, so the experiment is
// meaningful at any Scale: ample (10x), tight (1.6x), and overflowing
// (1.15x — input fits, but lingering intermediate output does not).
func DiskOverflow(opts Options) []DiskOverflowResult {
	opts = opts.withDefaults()
	const nodes = 60
	s := sched(opts.Seeds[0], opts.Scale)
	var inputBytes float64
	for _, j := range s.Jobs {
		inputBytes += j.InputBytes
	}
	perNode := inputBytes * 10 / nodes // replication 10
	var out []DiskOverflowResult
	for _, factor := range []float64{10, 1.6, 1.15} {
		diskGB := perNode * factor / 1e9
		cfg := core.HOGConfig(nodes, grid.ChurnNone, opts.Seeds[0])
		cfg.Grid.Pool.DiskBytesPerNode = diskGB * 1e9
		// Slow the reduces so intermediate output lingers, as the paper's
		// WAN-bound reduces did.
		cfg.Costs.ReduceCostPerMB = 400 * sim.Millisecond
		sys := core.New(cfg)
		res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
		out = append(out, DiskOverflowResult{
			DiskGB:    diskGB,
			Overflows: sys.Disk.Overflows(),
			Killed:    res.Pool.Killed,
			Response:  res.ResponseTime,
		})
	}
	return out
}

// PrintDiskOverflow prints A-DISK.
func PrintDiskOverflow(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-DISK: worker scratch size vs. disk overflow (60 nodes)")
	fmt.Fprintln(w, "Disk(GB)  Overflows  WorkersKilled  Response(s)")
	for _, r := range DiskOverflow(opts) {
		fmt.Fprintf(w, "%8.0f  %9d  %13d  %11.0f\n", r.DiskGB, r.Overflows, r.Killed, r.Response.Seconds())
	}
}

// NCopyResult is one redundant-copy setting's outcome (A-NCOPY).
type NCopyResult struct {
	Copies      int
	Eager       bool
	Response    sim.Time
	Speculative int
}

// RedundantCopies explores the paper's future work (§VI): configurable
// numbers of task copies with the fastest taken as the result, versus stock
// speculation (2 copies, stragglers only) and no speculation.
func RedundantCopies(opts Options) []NCopyResult {
	opts = opts.withDefaults()
	cases := []struct {
		copies int
		eager  bool
		spec   bool
	}{
		{1, false, false}, // no speculation at all
		{2, false, true},  // stock Hadoop speculation
		{2, true, true},   // future work: eager duplicates
		{3, true, true},   // future work: triple execution
	}
	var out []NCopyResult
	for _, c := range cases {
		cfg := core.HOGConfig(80, grid.ChurnUnstable, opts.Seeds[0])
		cfg.MapRed.Speculative = c.spec
		cfg.MapRed.MaxTaskCopies = c.copies
		cfg.MapRed.EagerRedundancy = c.eager
		sys := core.New(cfg)
		res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
		out = append(out, NCopyResult{
			Copies: c.copies, Eager: c.eager,
			Response:    res.ResponseTime,
			Speculative: res.Counters.SpeculativeMaps + res.Counters.SpeculativeReduces,
		})
	}
	return out
}

// PrintRedundantCopies prints A-NCOPY.
func PrintRedundantCopies(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-NCOPY: redundant task copies under unstable churn (80 nodes)")
	fmt.Fprintln(w, "Copies  Eager  Response(s)  ExtraAttempts")
	for _, r := range RedundantCopies(opts) {
		fmt.Fprintf(w, "%6d  %5v  %11.0f  %13d\n", r.Copies, r.Eager, r.Response.Seconds(), r.Speculative)
	}
}

// DelayResult is one scheduler setting's outcome (A-DELAY).
type DelayResult struct {
	Wait         sim.Time
	Response     sim.Time
	NodeLocal    int
	NonLocal     int
	LocalityRate float64
}

// DelayScheduling compares HOG's plain FIFO against delay scheduling
// (Zaharia et al. [3], the paper's workload source) at a low replication
// factor where locality is scarce.
func DelayScheduling(opts Options) []DelayResult {
	opts = opts.withDefaults()
	var out []DelayResult
	for _, wait := range []sim.Time{0, 15 * sim.Second, 45 * sim.Second} {
		cfg := core.HOGConfig(60, grid.ChurnStable, opts.Seeds[0])
		cfg.HDFS.Replication = 2 // make locality contended
		cfg.MapRed.LocalityWait = wait
		sys := core.New(cfg)
		res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
		local := res.MapLocality[0]
		nonLocal := res.MapLocality[1] + res.MapLocality[2]
		rate := 0.0
		if local+nonLocal > 0 {
			rate = float64(local) / float64(local+nonLocal)
		}
		out = append(out, DelayResult{
			Wait: wait, Response: res.ResponseTime,
			NodeLocal: local, NonLocal: nonLocal, LocalityRate: rate,
		})
	}
	return out
}

// PrintDelayScheduling prints A-DELAY.
func PrintDelayScheduling(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-DELAY: FIFO vs delay scheduling (60 nodes, replication 2)")
	fmt.Fprintln(w, "Wait(s)  Response(s)  NodeLocal  NonLocal  LocalityRate")
	for _, r := range DelayScheduling(opts) {
		fmt.Fprintf(w, "%7.0f  %11.0f  %9d  %8d  %11.1f%%\n",
			r.Wait.Seconds(), r.Response.Seconds(), r.NodeLocal, r.NonLocal, 100*r.LocalityRate)
	}
}

// HODResultRow compares HOD with HOG on the same schedule (A-HOD).
type HODResultRow struct {
	System         string
	Response       sim.Time
	Reconstruction sim.Time
}

// HODComparison runs a schedule under HOD (per-job clusters) and under a
// persistent HOG pool of the same size. The comparison uses the workload's
// small-job bins (1-3, ~77% of Facebook jobs): the paper's critique of HOD
// is per-request reconstruction overhead, which dominates exactly for
// "frequent MapReduce requests" of short jobs. For rare long jobs HOD's
// private clusters can win — that is not the regime either system targets.
func HODComparison(opts Options) []HODResultRow {
	opts = opts.withDefaults()
	scale := opts.Scale
	if scale > 0.5 {
		scale = 0.5
	}
	s := workload.Generate(opts.Seeds[0], workload.Config{
		Bins:  workload.Table2()[:3],
		Scale: scale,
	})
	hodRes := hod.Run(s, hod.DefaultConfig(30, opts.Seeds[0]))
	sys := core.New(core.HOGConfig(30, grid.ChurnStable, opts.Seeds[0]))
	hogRes := sys.RunWorkload(s)
	return []HODResultRow{
		{"HOD (per-job clusters)", hodRes.ResponseTime, hodRes.ReconstructionOverhead},
		{"HOG (persistent pool)", hogRes.ResponseTime, 0},
	}
}

// PrintHODComparison prints A-HOD.
func PrintHODComparison(w io.Writer, opts Options) {
	fmt.Fprintln(w, "A-HOD: Hadoop On Demand vs. HOG (30 nodes)")
	fmt.Fprintln(w, "System                   Response(s)  Reconstruction(s)")
	for _, r := range HODComparison(opts) {
		fmt.Fprintf(w, "%-24s %11.0f  %17.0f\n", r.System, r.Response.Seconds(), r.Reconstruction.Seconds())
	}
}
