package experiments

import (
	"fmt"
	"io"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/hdfs"
	"hog/internal/mapred"
	"hog/internal/metrics"
	"hog/internal/sim"
)

// POLICY ablation: each extracted decision point (job ordering, straggler
// criterion, block placement, recovery order) is swept between its default
// and its alternative on identical workloads — same seed, same schedule,
// same pool — so every difference in the row pair is attributable to the
// policy alone. Stable churn for the scheduling and placement pairs;
// unstable churn for speculation and recovery, whose policies only have
// work to do when nodes strain and die.

// PolicyPair is one decision point with its default and alternative policy.
type PolicyPair struct {
	// Kind names the decision point: "sched", "place", "spec", or "repl"
	// (matching the hogbench flag that forces it globally).
	Kind string
	// Baseline is the default policy (the paper's behaviour); Variant is
	// the shipped alternative.
	Baseline, Variant string
	// Churn is the grid hostility the pair runs under.
	Churn grid.ChurnProfile
}

// PolicyPairs returns the swept decision points in fixed order.
func PolicyPairs() []PolicyPair {
	return []PolicyPair{
		{"sched", mapred.SchedulerFIFO, mapred.SchedulerFair, grid.ChurnStable},
		{"place", hdfs.PlacementGrid, hdfs.PlacementRandom, grid.ChurnStable},
		{"spec", mapred.SpeculationThreshold, mapred.SpeculationSiteLoad, grid.ChurnUnstable},
		{"repl", hdfs.ReplicationFIFO, hdfs.ReplicationRarest, grid.ChurnUnstable},
	}
}

// PolicyTrialResult is one (decision point, policy, seed) execution.
type PolicyTrialResult struct {
	Response      sim.Time
	P50, P95, P99 sim.Time
	// LocalityRate is the node-local fraction of map executions.
	LocalityRate float64
	// SlotUtil is completed task-seconds over available slot-seconds
	// (HOG preset: one map and one reduce slot per node).
	SlotUtil   float64
	JobsFailed int
}

// PolicyTrial runs one 60-node workload with the named policy forced at the
// given decision point; every other decision point keeps its default (or the
// global option override), so pairs sharing (kind, seed) differ only in the
// swept policy.
func PolicyTrial(kind, name string, churn grid.ChurnProfile, seed int64, opts Options) PolicyTrialResult {
	opts = opts.WithDefaults()
	cfg := opts.tune(core.HOGConfig(60, churn, seed))
	switch kind {
	case "sched":
		cfg.Policies.Scheduler = name
	case "place":
		cfg.Policies.Placement = name
	case "spec":
		cfg.Policies.Speculation = name
	case "repl":
		cfg.Policies.Replication = name
	default:
		panic(fmt.Sprintf("experiments: unknown policy kind %q", kind))
	}
	sys := core.New(cfg)
	res := sys.RunWorkload(sched(seed, opts.Scale))
	sum := res.Summary()
	out := PolicyTrialResult{
		Response:   res.ResponseTime,
		P50:        sum.P50,
		P95:        sum.P95,
		P99:        sum.P99,
		JobsFailed: res.JobsFailed,
	}
	if tot := res.MapLocality[0] + res.MapLocality[1] + res.MapLocality[2]; tot > 0 {
		out.LocalityRate = float64(res.MapLocality[0]) / float64(tot)
	}
	if res.Area > 0 {
		out.SlotUtil = res.TaskSeconds / (2 * res.Area)
	}
	return out
}

// PolicyRow aggregates one policy of one pair across seeds.
type PolicyRow struct {
	Kind, Name string
	Response   metrics.FloatSummary
	P95        metrics.FloatSummary
	Locality   metrics.FloatSummary
	SlotUtil   metrics.FloatSummary
	JobsFailed int
}

// Policy sweeps every pair and both policies across the option seeds.
func Policy(opts Options) []PolicyRow {
	opts = opts.WithDefaults()
	var out []PolicyRow
	for _, p := range PolicyPairs() {
		for _, name := range []string{p.Baseline, p.Variant} {
			row := PolicyRow{Kind: p.Kind, Name: name}
			var resp, p95, loc, util []float64
			for _, seed := range opts.Seeds {
				r := PolicyTrial(p.Kind, name, p.Churn, seed, opts)
				resp = append(resp, r.Response.Seconds())
				p95 = append(p95, r.P95.Seconds())
				loc = append(loc, r.LocalityRate)
				util = append(util, r.SlotUtil)
				row.JobsFailed += r.JobsFailed
			}
			row.Response = metrics.SummarizeFloats(resp)
			row.P95 = metrics.SummarizeFloats(p95)
			row.Locality = metrics.SummarizeFloats(loc)
			row.SlotUtil = metrics.SummarizeFloats(util)
			out = append(out, row)
		}
	}
	return out
}

// PrintPolicy prints the ablation table, baseline and variant adjacent.
func PrintPolicy(w io.Writer, opts Options) {
	rows := Policy(opts)
	fmt.Fprintln(w, "POLICY: pluggable-policy ablation (60 nodes, identical workloads per pair)")
	fmt.Fprintln(w, "Point  Policy      Response(s)  P95(s)   Locality  SlotUtil  JobsFailed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s  %-10s  %11.0f  %7.0f  %8.3f  %8.3f  %10d\n",
			r.Kind, r.Name, r.Response.Mean, r.P95.Mean, r.Locality.Mean,
			r.SlotUtil.Mean, r.JobsFailed)
	}
	fmt.Fprintln(w, "defaults (fifo/grid/threshold/fifo) reproduce the paper's configuration;")
	fmt.Fprintln(w, "each variant isolates one decision point on the same seeded workload.")
}
