package experiments

import (
	"testing"

	"hog/internal/core"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
)

// TestLargeGridShardedEngineEquivalence is the 1000-node fingerprint gate
// for the site-sharded parallel engine: the full LARGE-GRID system —
// provisioning, churn, workload — must produce exactly the same result
// struct under the sharded default and the sequential timing-wheel oracle.
func TestLargeGridShardedEngineEquivalence(t *testing.T) {
	sharded := LargeGrid(Options{Scale: 0.1, Seeds: []int64{1}})
	seq := LargeGrid(Options{Scale: 0.1, Seeds: []int64{1}, SequentialEngine: true})
	if sharded != seq {
		t.Fatalf("engine paths diverge at 1000 nodes:\nsharded:    %+v\nsequential: %+v", sharded, seq)
	}
	if sharded.Response <= 0 || sharded.EventsFired == 0 {
		t.Fatalf("degenerate run: %+v", sharded)
	}
}

// TestMegaGridShardedEngineEquivalence is the 10,000-node fingerprint gate:
// at MEGA-GRID scale the sharded engine crosses thousands of lookahead
// barriers with forty concurrent wheels and the parallel model scans active
// (the worker list exceeds their fan-out threshold), and the result must
// still match the sequential oracle bit for bit.
//
// The detector build skips it: the 1000-node gate above plus the engine
// fingerprint tests already run under -race, and the detector's slowdown at
// ten thousand nodes buys no additional interleavings in a simulation whose
// parallel sections are read-only by contract.
func TestMegaGridShardedEngineEquivalence(t *testing.T) {
	if raceDetector || testing.Short() {
		t.Skip("10k-node equivalence is covered at 1k under -race/-short")
	}
	sharded := MegaGrid(Options{Scale: 0.1, Seeds: []int64{1}})
	seq := MegaGrid(Options{Scale: 0.1, Seeds: []int64{1}, SequentialEngine: true})
	if sharded != seq {
		t.Fatalf("engine paths diverge at 10000 nodes:\nsharded:    %+v\nsequential: %+v", sharded, seq)
	}
	if sharded.Response <= 0 || sharded.EventsFired == 0 {
		t.Fatalf("degenerate run: %+v", sharded)
	}
}

// crashFingerprint is the cross-engine comparison record for the
// master-outage run: headline result plus the recovery event census.
type crashFingerprint struct {
	Response   sim.Time
	Fired      uint64
	Flows      int
	JobsFailed int
	Crashed    int
	Recovered  int
	Rereg      int
}

// masterCrashRun drives the 1000-node grid through a double master outage
// whose crash instants sit deliberately off the lookahead grid (301.017 s,
// 302 s) and whose two-minute repair delay spans dozens of barrier windows,
// then returns the run's fingerprint.
func masterCrashRun(t *testing.T, seqEngine bool) crashFingerprint {
	t.Helper()
	cfg := core.LargeGridConfig(1000, grid.ChurnStable, 7)
	cfg.SequentialEngine = seqEngine
	sys := core.New(cfg)
	log := event.NewLog(event.MasterCrashed, event.MasterRecovered, event.TrackerReregistered)
	sys.Subscribe(log)
	sc := core.NewScenario("window-spanning outage").
		CrashNameNodeAt(301*sim.Second + 17*sim.Millisecond).
		CrashJobTrackerAt(302 * sim.Second).
		RestartMastersAfter(421*sim.Second + 300*sim.Millisecond)
	if err := sys.Apply(sc); err != nil {
		t.Fatal(err)
	}
	res := sys.RunWorkload(sched(7, 0.1))
	return crashFingerprint{
		Response:   res.ResponseTime,
		Fired:      sys.Eng.Fired(),
		Flows:      res.Net.FlowsStarted,
		JobsFailed: res.JobsFailed,
		Crashed:    log.Count(event.MasterCrashed),
		Recovered:  log.Count(event.MasterRecovered),
		Rereg:      log.Count(event.TrackerReregistered),
	}
}

// TestMasterCrashAcrossWindowEquivalence crashes both masters mid-window
// and restarts them minutes of simulated time later, so the outage and the
// recovery traffic (safe-mode block reports, tracker re-registrations)
// straddle many conservative-lookahead barriers. The sharded engine must
// reproduce the sequential oracle's run exactly, recovery events included.
func TestMasterCrashAcrossWindowEquivalence(t *testing.T) {
	sharded := masterCrashRun(t, false)
	seq := masterCrashRun(t, true)
	if sharded != seq {
		t.Fatalf("engine paths diverge across the master outage:\nsharded:    %+v\nsequential: %+v", sharded, seq)
	}
	if sharded.Crashed != 2 || sharded.Recovered != 2 {
		t.Fatalf("outage census off: %+v", sharded)
	}
	if sharded.Rereg == 0 {
		t.Fatal("no tracker re-registered after the JobTracker restart")
	}
}
