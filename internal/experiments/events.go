package experiments

import (
	"fmt"
	"io"
	"strings"

	"hog/internal/core"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
)

// EventCountsResult is the EVENTS experiment outcome: the full per-type
// event census of a scenario-rich run, plus the stream's determinism
// fingerprint (same seed and options, same fingerprint — asserted by the
// facade's determinism tests and visible here for manual comparison).
type EventCountsResult struct {
	Response    sim.Time
	JobsFailed  int
	Counts      [event.NumTypes]int
	Total       int
	Fingerprint uint64
}

// EventCountsTrial drives the observer and scenario APIs end to end: a
// 60-node pool under unstable churn and disk-check zombie handling, hit by a
// whole-site outage with scripted self-healing (retarget when the pool
// thins) and a balancer round, with an EventLog subscribed from construction
// so every join, preemption, zombie, block loss, re-replication, and task
// launch is counted.
func EventCountsTrial(opts Options) EventCountsResult {
	opts = opts.WithDefaults()
	cfg := core.HOGConfig(60, grid.ChurnUnstable, opts.Seeds[0])
	cfg.Zombie = core.ZombieDiskCheck
	log := event.NewLog()
	sys, err := core.NewSystem(opts.tune(cfg), log)
	if err != nil {
		panic(err)
	}
	sc := core.NewScenario("event-stream exercise").
		SiteOutageAt(300*sim.Second, SiteFailureSite, 1.0).
		RetargetWhenAliveBelow(45, 80).
		RebalanceAt(600*sim.Second, 0.05, 100)
	if err := sys.Apply(sc); err != nil {
		panic(err)
	}
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	r := EventCountsResult{
		Response:    res.ResponseTime,
		JobsFailed:  res.JobsFailed,
		Total:       log.Total(),
		Fingerprint: log.Fingerprint(),
	}
	for t := event.Type(0); t < event.NumTypes; t++ {
		r.Counts[t] = log.Count(t)
	}
	return r
}

// EventMetricName converts an event type to its harness metric key
// ("node-preempted" -> "ev_node_preempted").
func EventMetricName(t event.Type) string {
	return "ev_" + strings.ReplaceAll(t.String(), "-", "_")
}

// PrintEventCounts prints EVENTS.
func PrintEventCounts(w io.Writer, opts Options) {
	r := EventCountsTrial(opts)
	fmt.Fprintln(w, "EVENTS: typed event stream census (60 nodes, unstable churn, site outage + self-healing)")
	fmt.Fprintln(w, "Event              Count")
	for t := event.Type(0); t < event.NumTypes; t++ {
		fmt.Fprintf(w, "%-16s  %7d\n", t, r.Counts[t])
	}
	fmt.Fprintf(w, "total %d events, response %.0f s, jobs failed %d, fingerprint %016x\n",
		r.Total, r.Response.Seconds(), r.JobsFailed, r.Fingerprint)
}
