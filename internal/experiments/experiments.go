// Package experiments implements the paper's evaluation section as callable
// experiment harnesses: one pure Run*/Trial function per table and figure
// returning typed rows, plus the ablation studies DESIGN.md calls out. The
// Print* functions are thin formatters over those rows; internal/harness
// expands them into a parallel trial matrix; cmd/hogbench prints or
// serializes them; bench_test.go wraps them in testing.B benchmarks;
// EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/metrics"
	"hog/internal/sim"
	"hog/internal/workload"
)

// Options controls experiment cost.
type Options struct {
	// Scale multiplies the workload's per-bin job counts (1.0 = the paper's
	// 88 jobs).
	Scale float64
	// Seeds are the per-point repetitions (the paper performs 3 runs per
	// sampling point).
	Seeds []int64
	// Nodes overrides the Figure 4 sweep points.
	Nodes []int
	// ScanScheduler forces the retained linear-scan assignment path in every
	// simulated system (hogbench -scan). The indexed and scan schedulers are
	// bit-identical, so results documents must not differ — CI's
	// scan-vs-indexed cmp gate enforces exactly that, which is also why this
	// knob is deliberately absent from the JSON document's options block.
	ScanScheduler bool
	// HeapScheduler forces the retained binary-heap event queue in every
	// simulated system (hogbench -heap). Like ScanScheduler it is
	// bit-identical to the default path, enforced by CI's heap cmp gate,
	// and therefore absent from the JSON document.
	HeapScheduler bool
	// SequentialEngine forces the sequential timing-wheel engine in every
	// simulated system (hogbench -seq) instead of the default site-sharded
	// parallel engine. The sequential wheel is the oracle the sharded
	// engine is pinned against: CI's sharded-vs-sequential cmp gate
	// requires bit-identical documents, so — like the other engine knobs —
	// it is absent from the JSON document.
	SequentialEngine bool

	// SchedulerPolicy, SpeculationPolicy, PlacementPolicy, and
	// ReplicationOrder force the named policy in every simulated system
	// (hogbench -sched, -spec, -place, -repl). Unlike the engine knobs
	// above these CAN change results — they are ablation selectors, not
	// equivalence oracles — but the empty string keeps each decision
	// point's default, under which every run is bit-identical to the
	// pre-policy behaviour. The POLICY experiment ignores them for the
	// decision point it is sweeping.
	SchedulerPolicy   string
	SpeculationPolicy string
	PlacementPolicy   string
	ReplicationOrder  string
}

// tune applies the option-level knobs to a built core config.
func (o Options) tune(cfg core.Config) core.Config {
	cfg.MapRed.ScanScheduler = o.ScanScheduler
	cfg.HeapScheduler = o.HeapScheduler
	cfg.SequentialEngine = o.SequentialEngine
	if o.SchedulerPolicy != "" {
		cfg.Policies.Scheduler = o.SchedulerPolicy
	}
	if o.SpeculationPolicy != "" {
		cfg.Policies.Speculation = o.SpeculationPolicy
	}
	if o.PlacementPolicy != "" {
		cfg.Policies.Placement = o.PlacementPolicy
	}
	if o.ReplicationOrder != "" {
		cfg.Policies.Replication = o.ReplicationOrder
	}
	return cfg
}

// fig4Nodes returns the sampling points on the paper's Figure 4 x-axis.
func fig4Nodes() []int {
	return []int{40, 50, 55, 60, 99, 100, 132, 160, 171, 180, 974, 1101}
}

// WithDefaults fills unset fields with the paper-scale defaults, including
// the Figure 4 node sweep — callers never need per-call fallbacks.
func (o Options) WithDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if len(o.Nodes) == 0 {
		o.Nodes = fig4Nodes()
	}
	return o
}

// Quick returns cheap options for smoke runs and benchmarks.
func Quick() Options {
	return Options{Scale: 0.25, Seeds: []int64{1}, Nodes: []int{40, 55, 100, 180}}
}

// Full returns the paper-scale options.
func Full() Options {
	return Options{
		Scale: 1.0,
		Seeds: []int64{1, 2, 3},
		Nodes: fig4Nodes(),
	}
}

func sched(seed int64, scale float64) *workload.Schedule {
	return workload.Generate(seed, workload.Config{Scale: scale})
}

// ---------------------------------------------------------------- Table I/II

// Table1Result is the Facebook bin distribution plus a generated schedule's
// audit against it.
type Table1Result struct {
	Bins        []workload.Bin
	Jobs        int
	BinCounts   []int
	SpanSeconds float64
}

// RunTable1 validates a generated schedule against the Facebook bins.
func RunTable1() Table1Result {
	s := sched(1, 1.0)
	count := map[int]int{}
	for _, j := range s.Jobs {
		count[j.Bin]++
	}
	return Table1Result{
		Bins:        workload.Table1(),
		Jobs:        len(s.Jobs),
		BinCounts:   countsInOrder(count),
		SpanSeconds: s.Span().Seconds(),
	}
}

// PrintTable1 prints the Facebook bin distribution and the schedule audit.
func PrintTable1(w io.Writer) {
	r := RunTable1()
	fmt.Fprintln(w, "Table I: Facebook production workload bins")
	fmt.Fprintln(w, "Bin  #Maps  %Jobs@FB  #Maps(bench)  #Jobs(bench)")
	for _, b := range r.Bins {
		fmt.Fprintf(w, "%3d  %-9s %5.0f%%  %12d  %12d\n",
			b.Bin, b.MapsAtFacebook, b.PercentAtFacebook, b.Maps, b.Jobs)
	}
	fmt.Fprintf(w, "generated schedule: %d jobs, bins %v, span %.0fs\n",
		r.Jobs, r.BinCounts, r.SpanSeconds)
}

// Table2Result is the truncated six-bin workload with its totals.
type Table2Result struct {
	Bins      []workload.Bin
	TotalJobs int
	TotalMaps int
}

// RunTable2 returns the truncated workload rows.
func RunTable2() Table2Result {
	bins := workload.Table2()
	return Table2Result{
		Bins:      bins,
		TotalJobs: workload.TotalJobs(bins),
		TotalMaps: workload.TotalMaps(bins),
	}
}

// PrintTable2 prints the truncated six-bin workload.
func PrintTable2(w io.Writer) {
	r := RunTable2()
	fmt.Fprintln(w, "Table II: truncated workload (bins 1-6, 88 jobs)")
	fmt.Fprintln(w, "Bin  MapTasks  ReduceTasks  Jobs")
	for _, b := range r.Bins {
		fmt.Fprintf(w, "%3d  %8d  %11d  %4d\n", b.Bin, b.Maps, b.Reduces, b.Jobs)
	}
	fmt.Fprintf(w, "total: %d jobs, %d map tasks\n", r.TotalJobs, r.TotalMaps)
}

func countsInOrder(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// ----------------------------------------------------------------- Table III

// Table3Result is the dedicated-cluster baseline measurement.
type Table3Result struct {
	Nodes, MapSlots, ReduceSlots int
	Response                     sim.Time
}

// Table3 builds the Table III cluster, audits its shape, and measures the
// workload response that forms Figure 4's dashed line.
func Table3(opts Options) Table3Result {
	opts = opts.WithDefaults()
	sys := core.New(opts.tune(core.DedicatedClusterConfig(opts.Seeds[0])))
	r := Table3Result{}
	for _, t := range sys.JT.AliveTrackers() {
		r.Nodes++
		r.MapSlots += t.MapSlots
		r.ReduceSlots += t.ReduceSlots
	}
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	r.Response = res.ResponseTime
	return r
}

// PrintTable3 prints the cluster audit and baseline.
func PrintTable3(w io.Writer, opts Options) {
	r := Table3(opts)
	fmt.Fprintln(w, "Table III: dedicated MapReduce cluster")
	fmt.Fprintf(w, "nodes=%d (paper: 30)  map slots=%d (paper: 100 cores -> 100)  reduce slots=%d (paper: 30)\n",
		r.Nodes, r.MapSlots, r.ReduceSlots)
	fmt.Fprintf(w, "workload response: %.0f s (Figure 4 dashed line)\n", r.Response.Seconds())
}

// ----------------------------------------------------------------- Figure 4

// Fig4Point is one x-position of Figure 4.
type Fig4Point struct {
	Nodes     int
	Responses []sim.Time
	Mean      sim.Time
	// Summary aggregates the per-seed responses in seconds.
	Summary metrics.FloatSummary
}

// Fig4Result is the equivalent-performance experiment.
type Fig4Result struct {
	Cluster   sim.Time
	Points    []Fig4Point
	Crossover int // smallest HOG size whose mean beats the cluster
}

// Fig4TrialResult is one Figure 4 execution: the headline response time and
// the completed-job count behind throughput metrics.
type Fig4TrialResult struct {
	Response  sim.Time
	Completed int // jobs that finished (scheduled minus failed)
}

// Fig4Cluster runs the dedicated-cluster reference trial (Figure 4's dashed
// line) for the given seed.
func Fig4Cluster(seed int64, opts Options) Fig4TrialResult {
	opts = opts.WithDefaults()
	cl := core.New(opts.tune(core.DedicatedClusterConfig(seed)))
	res := cl.RunWorkload(sched(seed, opts.Scale))
	return Fig4TrialResult{Response: res.ResponseTime, Completed: len(res.JobResponses)}
}

// Fig4Trial runs one (pool size, seed) sampling point: reach the target
// size under stable churn, then upload data and run (the paper's §IV.B
// procedure).
func Fig4Trial(nodes int, seed int64, opts Options) Fig4TrialResult {
	opts = opts.WithDefaults()
	sys := core.New(opts.tune(core.HOGConfig(nodes, grid.ChurnStable, seed)))
	res := sys.RunWorkload(sched(seed, opts.Scale))
	return Fig4TrialResult{Response: res.ResponseTime, Completed: len(res.JobResponses)}
}

// Fig4 sweeps HOG pool sizes against the dedicated cluster (several runs per
// sampling point).
func Fig4(opts Options) Fig4Result {
	opts = opts.WithDefaults()
	res := Fig4Result{Crossover: -1}
	res.Cluster = Fig4Cluster(opts.Seeds[0], opts).Response
	for _, n := range opts.Nodes {
		p := Fig4Point{Nodes: n}
		var sum sim.Time
		var secs []float64
		for _, seed := range opts.Seeds {
			resp := Fig4Trial(n, seed, opts).Response
			p.Responses = append(p.Responses, resp)
			secs = append(secs, resp.Seconds())
			sum += resp
		}
		p.Mean = sum / sim.Time(len(opts.Seeds))
		p.Summary = metrics.SummarizeFloats(secs)
		res.Points = append(res.Points, p)
		if res.Crossover < 0 && p.Mean <= res.Cluster {
			res.Crossover = n
		}
	}
	return res
}

// PrintFig4 prints the equivalent-performance series.
func PrintFig4(w io.Writer, opts Options) {
	r := Fig4(opts)
	fmt.Fprintln(w, "Figure 4: HOG vs. cluster equivalent performance")
	fmt.Fprintf(w, "cluster (100 cores): %.0f s\n", r.Cluster.Seconds())
	fmt.Fprintln(w, "HOG nodes   runs(s)                    mean(s)   vs cluster")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%9d   ", p.Nodes)
		for _, resp := range p.Responses {
			fmt.Fprintf(w, "%7.0f ", resp.Seconds())
		}
		fmt.Fprintf(w, "  %7.0f   %+6.1f%%\n", p.Mean.Seconds(),
			100*(p.Mean.Seconds()/r.Cluster.Seconds()-1))
	}
	if r.Crossover >= 0 {
		fmt.Fprintf(w, "crossover (equivalent performance) at %d nodes (paper: [99,100])\n", r.Crossover)
	} else {
		fmt.Fprintln(w, "no crossover within the swept range")
	}
}

// ---------------------------------------------------------- Figure 5 / T IV

// FluctuationCase identifies one Figure 5 sub-figure's configuration.
type FluctuationCase struct {
	Label string
	Churn grid.ChurnProfile
	Seed  int64
}

// FluctuationCases returns the three 55-node executions of Figure 5: two
// stable, one unstable.
func FluctuationCases() []FluctuationCase {
	return []FluctuationCase{
		{"5a (55 stable nodes)", grid.ChurnStable, 31},
		{"5b (55 stable nodes)", grid.ChurnStable, 32},
		{"5c (55 unstable nodes)", grid.ChurnUnstable, 31},
	}
}

// FluctuationRun is one Figure 5 sub-figure with its Table IV row.
type FluctuationRun struct {
	Label    string
	Response sim.Time
	Area     float64
	Series   *metrics.Series
	Start    sim.Time
	End      sim.Time
}

// FluctuationTrial performs one Figure 5 execution, reporting response time
// and area beneath the availability curve.
func FluctuationTrial(c FluctuationCase, opts Options) FluctuationRun {
	opts = opts.WithDefaults()
	sys := core.New(opts.tune(core.HOGConfig(55, c.Churn, c.Seed)))
	res := sys.RunWorkload(sched(7, opts.Scale))
	return FluctuationRun{
		Label:    c.Label,
		Response: res.ResponseTime,
		Area:     res.Area,
		Series:   res.Reported,
		Start:    res.Start,
		End:      res.End,
	}
}

// Fig5Table4 performs the three 55-node executions.
func Fig5Table4(opts Options) []FluctuationRun {
	opts = opts.WithDefaults()
	var out []FluctuationRun
	for _, c := range FluctuationCases() {
		out = append(out, FluctuationTrial(c, opts))
	}
	return out
}

// PrintFig5Table4 prints the fluctuation plots and the Table IV rows.
func PrintFig5Table4(w io.Writer, opts Options) {
	runs := Fig5Table4(opts)
	fmt.Fprintln(w, "Figure 5 / Table IV: node fluctuation at 55 nodes")
	fmt.Fprintln(w, "Run                       Response(s)   Area(node-s)")
	for _, r := range runs {
		fmt.Fprintf(w, "%-25s %11.0f   %12.0f\n", r.Label, r.Response.Seconds(), r.Area)
	}
	for _, r := range runs {
		fmt.Fprintln(w)
		fmt.Fprint(w, r.Series.ASCIIPlot(68, 8, r.Start, r.End))
	}
	fmt.Fprintln(w, "\npaper shape: the unstable run has both the longest response time and")
	fmt.Fprintln(w, "the largest fluctuation; response time tracks node-curve area.")
}
