// Package experiments implements the paper's evaluation section as callable
// experiment harnesses: one function per table and figure, plus the ablation
// studies DESIGN.md calls out. cmd/hogbench prints their rows; bench_test.go
// wraps them in testing.B benchmarks; EXPERIMENTS.md records paper-versus-
// measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/metrics"
	"hog/internal/sim"
	"hog/internal/workload"
)

// Options controls experiment cost.
type Options struct {
	// Scale multiplies the workload's per-bin job counts (1.0 = the paper's
	// 88 jobs).
	Scale float64
	// Seeds are the per-point repetitions (the paper performs 3 runs per
	// sampling point).
	Seeds []int64
	// Nodes overrides the Figure 4 sweep points.
	Nodes []int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	return o
}

// Quick returns cheap options for smoke runs and benchmarks.
func Quick() Options {
	return Options{Scale: 0.25, Seeds: []int64{1}, Nodes: []int{40, 55, 100, 180}}
}

// Full returns the paper-scale options.
func Full() Options {
	return Options{
		Scale: 1.0,
		Seeds: []int64{1, 2, 3},
		// The sampling points on the paper's Figure 4 x-axis.
		Nodes: []int{40, 50, 55, 60, 99, 100, 132, 160, 171, 180, 974, 1101},
	}
}

func sched(seed int64, scale float64) *workload.Schedule {
	return workload.Generate(seed, workload.Config{Scale: scale})
}

// ---------------------------------------------------------------- Table I/II

// PrintTable1 prints the Facebook bin distribution and validates a generated
// schedule against it.
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table I: Facebook production workload bins")
	fmt.Fprintln(w, "Bin  #Maps  %Jobs@FB  #Maps(bench)  #Jobs(bench)")
	for _, b := range workload.Table1() {
		fmt.Fprintf(w, "%3d  %-9s %5.0f%%  %12d  %12d\n",
			b.Bin, b.MapsAtFacebook, b.PercentAtFacebook, b.Maps, b.Jobs)
	}
	s := sched(1, 1.0)
	count := map[int]int{}
	for _, j := range s.Jobs {
		count[j.Bin]++
	}
	fmt.Fprintf(w, "generated schedule: %d jobs, bins %v, span %.0fs\n",
		len(s.Jobs), countsInOrder(count), s.Span().Seconds())
}

// PrintTable2 prints the truncated six-bin workload.
func PrintTable2(w io.Writer) {
	fmt.Fprintln(w, "Table II: truncated workload (bins 1-6, 88 jobs)")
	fmt.Fprintln(w, "Bin  MapTasks  ReduceTasks  Jobs")
	for _, b := range workload.Table2() {
		fmt.Fprintf(w, "%3d  %8d  %11d  %4d\n", b.Bin, b.Maps, b.Reduces, b.Jobs)
	}
	fmt.Fprintf(w, "total: %d jobs, %d map tasks\n",
		workload.TotalJobs(workload.Table2()), workload.TotalMaps(workload.Table2()))
}

func countsInOrder(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// ----------------------------------------------------------------- Table III

// Table3Result is the dedicated-cluster baseline measurement.
type Table3Result struct {
	Nodes, MapSlots, ReduceSlots int
	Response                     sim.Time
}

// Table3 builds the Table III cluster, audits its shape, and measures the
// workload response that forms Figure 4's dashed line.
func Table3(opts Options) Table3Result {
	opts = opts.withDefaults()
	sys := core.New(core.DedicatedClusterConfig(opts.Seeds[0]))
	r := Table3Result{}
	for _, t := range sys.JT.AliveTrackers() {
		r.Nodes++
		r.MapSlots += t.MapSlots
		r.ReduceSlots += t.ReduceSlots
	}
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	r.Response = res.ResponseTime
	return r
}

// PrintTable3 prints the cluster audit and baseline.
func PrintTable3(w io.Writer, opts Options) {
	r := Table3(opts)
	fmt.Fprintln(w, "Table III: dedicated MapReduce cluster")
	fmt.Fprintf(w, "nodes=%d (paper: 30)  map slots=%d (paper: 100 cores -> 100)  reduce slots=%d (paper: 30)\n",
		r.Nodes, r.MapSlots, r.ReduceSlots)
	fmt.Fprintf(w, "workload response: %.0f s (Figure 4 dashed line)\n", r.Response.Seconds())
}

// ----------------------------------------------------------------- Figure 4

// Fig4Point is one x-position of Figure 4.
type Fig4Point struct {
	Nodes     int
	Responses []sim.Time
	Mean      sim.Time
}

// Fig4Result is the equivalent-performance experiment.
type Fig4Result struct {
	Cluster   sim.Time
	Points    []Fig4Point
	Crossover int // smallest HOG size whose mean beats the cluster
}

// Fig4 sweeps HOG pool sizes against the dedicated cluster (stable churn,
// the paper's §IV.B procedure: reach the target size, then upload data and
// run; several runs per sampling point).
func Fig4(opts Options) Fig4Result {
	opts = opts.withDefaults()
	if len(opts.Nodes) == 0 {
		opts.Nodes = Full().Nodes
	}
	res := Fig4Result{Crossover: -1}
	cl := core.New(core.DedicatedClusterConfig(opts.Seeds[0]))
	res.Cluster = cl.RunWorkload(sched(opts.Seeds[0], opts.Scale)).ResponseTime
	for _, n := range opts.Nodes {
		p := Fig4Point{Nodes: n}
		var sum sim.Time
		for _, seed := range opts.Seeds {
			sys := core.New(core.HOGConfig(n, grid.ChurnStable, seed))
			r := sys.RunWorkload(sched(seed, opts.Scale))
			p.Responses = append(p.Responses, r.ResponseTime)
			sum += r.ResponseTime
		}
		p.Mean = sum / sim.Time(len(opts.Seeds))
		res.Points = append(res.Points, p)
		if res.Crossover < 0 && p.Mean <= res.Cluster {
			res.Crossover = n
		}
	}
	return res
}

// PrintFig4 prints the equivalent-performance series.
func PrintFig4(w io.Writer, opts Options) {
	r := Fig4(opts)
	fmt.Fprintln(w, "Figure 4: HOG vs. cluster equivalent performance")
	fmt.Fprintf(w, "cluster (100 cores): %.0f s\n", r.Cluster.Seconds())
	fmt.Fprintln(w, "HOG nodes   runs(s)                    mean(s)   vs cluster")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%9d   ", p.Nodes)
		for _, resp := range p.Responses {
			fmt.Fprintf(w, "%7.0f ", resp.Seconds())
		}
		fmt.Fprintf(w, "  %7.0f   %+6.1f%%\n", p.Mean.Seconds(),
			100*(p.Mean.Seconds()/r.Cluster.Seconds()-1))
	}
	if r.Crossover >= 0 {
		fmt.Fprintf(w, "crossover (equivalent performance) at %d nodes (paper: [99,100])\n", r.Crossover)
	} else {
		fmt.Fprintln(w, "no crossover within the swept range")
	}
}

// ---------------------------------------------------------- Figure 5 / T IV

// FluctuationRun is one Figure 5 sub-figure with its Table IV row.
type FluctuationRun struct {
	Label    string
	Response sim.Time
	Area     float64
	Series   *metrics.Series
	Start    sim.Time
	End      sim.Time
}

// Fig5Table4 performs the three 55-node executions: two stable, one
// unstable, reporting response time and area beneath the availability curve.
func Fig5Table4(opts Options) []FluctuationRun {
	opts = opts.withDefaults()
	runs := []struct {
		label string
		churn grid.ChurnProfile
		seed  int64
	}{
		{"5a (55 stable nodes)", grid.ChurnStable, 31},
		{"5b (55 stable nodes)", grid.ChurnStable, 32},
		{"5c (55 unstable nodes)", grid.ChurnUnstable, 31},
	}
	var out []FluctuationRun
	for _, rn := range runs {
		sys := core.New(core.HOGConfig(55, rn.churn, rn.seed))
		res := sys.RunWorkload(sched(7, opts.Scale))
		out = append(out, FluctuationRun{
			Label:    rn.label,
			Response: res.ResponseTime,
			Area:     res.Area,
			Series:   res.Reported,
			Start:    res.Start,
			End:      res.End,
		})
	}
	return out
}

// PrintFig5Table4 prints the fluctuation plots and the Table IV rows.
func PrintFig5Table4(w io.Writer, opts Options) {
	runs := Fig5Table4(opts)
	fmt.Fprintln(w, "Figure 5 / Table IV: node fluctuation at 55 nodes")
	fmt.Fprintln(w, "Run                       Response(s)   Area(node-s)")
	for _, r := range runs {
		fmt.Fprintf(w, "%-25s %11.0f   %12.0f\n", r.Label, r.Response.Seconds(), r.Area)
	}
	for _, r := range runs {
		fmt.Fprintln(w)
		fmt.Fprint(w, r.Series.ASCIIPlot(68, 8, r.Start, r.End))
	}
	fmt.Fprintln(w, "\npaper shape: the unstable run has both the longest response time and")
	fmt.Fprintln(w, "the largest fluctuation; response time tracks node-curve area.")
}
