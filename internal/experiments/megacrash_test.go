package experiments

import (
	"testing"

	"hog/internal/audit"
	"hog/internal/core"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
)

// TestMegaGridMasterCrashRecovery runs the Facebook workload on the
// forty-site mega grid and crashes both masters mid-run: the namenode loses
// its soft state and must rebuild it from block reports behind safe mode,
// the jobtracker loses its task state and the trackers must back off and
// re-register. Every job still completes, the recovery events appear on the
// bus, and the cross-layer audit stays clean at every sweep.
//
// Under the race detector the pool shrinks an order of magnitude — the
// recovery machinery is scale-free and the detector's slowdown is not.
func TestMegaGridMasterCrashRecovery(t *testing.T) {
	target := 10000
	if raceDetector || testing.Short() {
		target = 1000
	}
	cfg := core.MegaGridConfig(target, grid.ChurnStable, 41)
	sys := core.New(cfg)
	log := event.NewLog(event.MasterCrashed, event.MasterRecovered,
		event.SafeModeEntered, event.SafeModeExited, event.TrackerReregistered)
	sys.Subscribe(log)
	aud := audit.New()
	aud.Attach(sys.NN, sys.JT)
	sys.Subscribe(aud)
	sys.Eng.Every(60*sim.Second, func() { aud.Sweep(sys.Eng.Now()) })

	sc := core.NewScenario("mega master outage").
		CrashNameNodeAt(300 * sim.Second).
		CrashJobTrackerAt(330 * sim.Second).
		RestartMastersAfter(700 * sim.Second)
	if err := sys.Apply(sc); err != nil {
		t.Fatal(err)
	}
	res := sys.RunWorkload(sched(41, 0.1))
	aud.Sweep(sys.Eng.Now())

	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs failed across the master outage at %d nodes", res.JobsFailed, target)
	}
	if got := log.Count(event.SafeModeEntered); got != 1 {
		t.Fatalf("SafeModeEntered count = %d, want 1", got)
	}
	if got := log.Count(event.SafeModeExited); got != 1 {
		t.Fatalf("SafeModeExited count = %d, want 1", got)
	}
	if got, want := log.Count(event.MasterRecovered), log.Count(event.MasterCrashed); got != want {
		t.Fatalf("MasterRecovered count = %d, want %d (one per crash)", got, want)
	}
	if log.Count(event.TrackerReregistered) == 0 {
		t.Fatal("no tracker re-registered after the JobTracker restart")
	}
	if sys.NN.Down() || sys.NN.InSafeMode() || sys.JT.Down() {
		t.Fatal("masters did not fully recover")
	}
	if n := aud.Count(); n != 0 {
		t.Fatalf("%d audit violations at %d nodes; first: %v", n, target, aud.Violations()[0])
	}
}
