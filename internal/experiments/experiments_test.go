package experiments

import (
	"bytes"
	"strings"
	"testing"

	"hog/internal/grid"
	"hog/internal/sim"
	"hog/internal/workload"
)

// tiny returns very cheap options for unit-testing the harnesses.
func tiny() Options {
	return Options{Scale: 0.1, Seeds: []int64{1}, Nodes: []int{20, 40}}
}

func TestPrintTables(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf)
	if !strings.Contains(buf.String(), "88 jobs") {
		t.Fatalf("Table1 output missing schedule: %s", buf.String())
	}
	buf.Reset()
	PrintTable2(&buf)
	if !strings.Contains(buf.String(), "2410 map tasks") {
		t.Fatalf("Table2 output missing total: %s", buf.String())
	}
}

func TestTable3Audit(t *testing.T) {
	r := Table3(tiny())
	if r.Nodes != 30 || r.MapSlots != 100 || r.ReduceSlots != 30 {
		t.Fatalf("cluster shape %+v", r)
	}
	if r.Response <= 0 {
		t.Fatal("no response measured")
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4(tiny())
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// More nodes must be at least as fast at this scale.
	if r.Points[1].Mean > r.Points[0].Mean {
		t.Fatalf("40 nodes (%v) slower than 20 (%v)", r.Points[1].Mean, r.Points[0].Mean)
	}
	var buf bytes.Buffer
	PrintFig4(&buf, tiny())
	if !strings.Contains(buf.String(), "cluster") {
		t.Fatal("Fig4 output missing cluster line")
	}
}

func TestFig5Table4Runs(t *testing.T) {
	runs := Fig5Table4(tiny())
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if r.Response <= 0 || r.Area <= 0 || r.Series.Len() == 0 {
			t.Fatalf("degenerate run %+v", r.Label)
		}
	}
}

func TestSiteFailureShape(t *testing.T) {
	rs := SiteFailure(tiny())
	if rs[0].BlocksLost != 0 {
		t.Fatalf("HOG lost %d blocks", rs[0].BlocksLost)
	}
	if rs[1].BlocksLost == 0 {
		t.Log("naive config lost nothing at tiny scale (possible); rerun at larger scale in hogbench")
	}
}

func TestHeartbeatSweepShape(t *testing.T) {
	rs := HeartbeatSweep(tiny())
	if len(rs) != 2 || rs[0].Timeout != 30*sim.Second || rs[1].Timeout != 900*sim.Second {
		t.Fatalf("sweep shape %+v", rs)
	}
}

func TestZombieSweepShape(t *testing.T) {
	rs := ZombieSweep(tiny())
	if len(rs) != 3 {
		t.Fatalf("rows = %d", len(rs))
	}
	// The fixed mode must not fail jobs.
	if rs[2].JobsFailed != 0 {
		t.Fatalf("fixed mode failed %d jobs", rs[2].JobsFailed)
	}
}

func TestDiskOverflowShape(t *testing.T) {
	rs := DiskOverflow(tiny())
	if rs[0].Killed != 0 {
		t.Fatalf("ample disk killed %d workers", rs[0].Killed)
	}
	if rs[len(rs)-1].Overflows == 0 {
		t.Fatal("tiny disk never overflowed")
	}
}

func TestRedundantCopiesShape(t *testing.T) {
	rs := RedundantCopies(tiny())
	if len(rs) != 4 {
		t.Fatalf("rows = %d", len(rs))
	}
	if rs[0].Speculative != 0 {
		t.Fatal("no-speculation row speculated")
	}
	if rs[2].Speculative == 0 {
		t.Fatal("eager mode never duplicated")
	}
}

func TestDelaySchedulingShape(t *testing.T) {
	rs := DelayScheduling(tiny())
	if len(rs) != 3 || rs[0].Wait != 0 {
		t.Fatalf("rows %+v", rs)
	}
	if rs[2].LocalityRate < rs[0].LocalityRate {
		t.Fatalf("delay scheduling reduced locality: %.2f < %.2f", rs[2].LocalityRate, rs[0].LocalityRate)
	}
}

func TestHODComparisonShape(t *testing.T) {
	rs := HODComparison(tiny())
	if rs[0].Response <= rs[1].Response {
		t.Fatalf("HOD (%v) not slower than HOG (%v)", rs[0].Response, rs[1].Response)
	}
	if rs[0].Reconstruction <= 0 {
		t.Fatal("HOD reconstruction overhead missing")
	}
}

func TestRunTables(t *testing.T) {
	r1 := RunTable1()
	if r1.Jobs != 88 || len(r1.Bins) == 0 || r1.SpanSeconds <= 0 {
		t.Fatalf("Table1 result %+v", r1)
	}
	r2 := RunTable2()
	if r2.TotalJobs != 88 || r2.TotalMaps != 2410 || len(r2.Bins) != 6 {
		t.Fatalf("Table2 result %+v", r2)
	}
}

func TestWithDefaultsNodes(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Scale != 1.0 || len(o.Seeds) != 3 {
		t.Fatalf("defaults %+v", o)
	}
	if len(o.Nodes) != 12 {
		t.Fatalf("Nodes not defaulted centrally: %v", o.Nodes)
	}
	// Explicit fields survive.
	o = Options{Scale: 0.5, Seeds: []int64{9}, Nodes: []int{7}}.WithDefaults()
	if o.Scale != 0.5 || o.Seeds[0] != 9 || len(o.Nodes) != 1 || o.Nodes[0] != 7 {
		t.Fatalf("explicit options clobbered: %+v", o)
	}
}

func TestFig4TrialAtom(t *testing.T) {
	// The per-trial atom must agree with the composed sweep.
	trial := Fig4Trial(20, 1, tiny())
	if trial.Completed <= 0 {
		t.Fatalf("trial completed %d jobs", trial.Completed)
	}
	r := Fig4(tiny())
	if r.Points[0].Responses[0] != trial.Response {
		t.Fatalf("Fig4Trial (%v) != Fig4 point response (%v)", trial.Response, r.Points[0].Responses[0])
	}
	if r.Points[0].Summary.N != 1 || r.Points[0].Summary.Mean != trial.Response.Seconds() {
		t.Fatalf("point summary %+v", r.Points[0].Summary)
	}
}

// TestSchedScaleEquivalence runs SCHED-SCALE at reduced scale: the indexed
// and scan schedulers must agree bit-for-bit on the full 1000-node system —
// same response time, same event count, same failures.
func TestSchedScaleEquivalence(t *testing.T) {
	rs := SchedScale(Options{Scale: 0.1, Seeds: []int64{1}})
	if len(rs) != 2 || rs[0].Scan || !rs[1].Scan {
		t.Fatalf("unexpected case shape: %+v", rs)
	}
	if rs[0].Response != rs[1].Response || rs[0].EventsFired != rs[1].EventsFired || rs[0].JobsFailed != rs[1].JobsFailed {
		t.Fatalf("scheduler paths diverge at 1000 nodes:\nindexed: %+v\nscan:    %+v", rs[0], rs[1])
	}
	if rs[0].Response <= 0 {
		t.Fatal("non-positive response time")
	}
}

func TestQuickAndFullPresets(t *testing.T) {
	q, f := Quick(), Full()
	if q.Scale >= f.Scale {
		t.Fatal("quick not cheaper than full")
	}
	if len(f.Nodes) != 12 {
		t.Fatalf("full sweep has %d points, want the paper's 12", len(f.Nodes))
	}
	if len(f.Seeds) != 3 {
		t.Fatal("full sweep must use 3 seeds (paper: 3 runs per point)")
	}
	_ = workload.Table1()
}

// TestLargeGridEngineEquivalence runs the full LARGE-GRID system — ~1000
// nodes, provisioning, churn, workload — under the timing wheel and the
// retained binary heap. The engines must agree bit-for-bit: same response,
// same event count, same flow census, same failures.
func TestLargeGridEngineEquivalence(t *testing.T) {
	wheel := LargeGrid(Options{Scale: 0.1, Seeds: []int64{1}})
	heap := LargeGrid(Options{Scale: 0.1, Seeds: []int64{1}, HeapScheduler: true})
	if wheel != heap {
		t.Fatalf("engine paths diverge at 1000 nodes:\nwheel: %+v\nheap:  %+v", wheel, heap)
	}
	if wheel.Response <= 0 || wheel.EventsFired == 0 {
		t.Fatalf("degenerate run: %+v", wheel)
	}
}

// TestMegaGridShape pins the MEGA-GRID preset's shape: forty sites and
// enough aggregate capacity for the ten-thousand-node target.
func TestMegaGridShape(t *testing.T) {
	sites := grid.MegaGridSites(grid.ChurnStable)
	if len(sites) != 40 {
		t.Fatalf("MegaGridSites has %d sites, want 40", len(sites))
	}
	total := 0
	seen := map[string]bool{}
	for _, s := range sites {
		if seen[s.Name] {
			t.Fatalf("duplicate site %q", s.Name)
		}
		seen[s.Name] = true
		total += s.Capacity
	}
	if total < 10500 {
		t.Fatalf("aggregate capacity %d too small for a 10000-node target", total)
	}
}
