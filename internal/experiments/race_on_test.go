//go:build race

package experiments

// raceDetector reports whether the test binary was built with -race; the
// mega-grid crash test shrinks its pool under the detector's ~10x slowdown.
const raceDetector = true
