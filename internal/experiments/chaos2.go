package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"hog/internal/audit"
	"hog/internal/core"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
	"hog/internal/workload"
)

// CHAOS2 extends CHAOS beyond crash-stop: seeded random schedules mixing
// network partitions (site- and node-level, symmetric and asymmetric), gray
// degradation (slow disks, flaky heartbeats), and silent block corruption —
// layered on an unstable churn profile — each run twice. It checks the same
// two properties as CHAOS under the richer fault vocabulary: every audit
// invariant (including the new partition/gray/corruption families) holds at
// every sweep, and reruns are bit-identical through detection, degradation,
// and recovery. Any violation or fingerprint mismatch is a failure.

// Chaos2ScheduleCount is the number of random fault schedules CHAOS2 samples.
const Chaos2ScheduleCount = 4

// chaos2Salt decorrelates CHAOS2's schedule stream from CHAOS's for the same
// experiment seed.
const chaos2Salt = 0x2c4a05

// Chaos2Scenario derives beyond-crash-stop fault schedule idx from the
// experiment seed. Like ChaosScenario it draws from its own rand.Rand at
// construction time — a pure function of (seed, idx, jobs) that never
// perturbs the simulation's streams — and keeps instants strictly
// increasing so the script is conflict-free by construction. jobs is the
// workload the run will submit (from the same deterministic generator);
// corruption steps use it to target input files whose blocks are still
// unread when the fault fires, so the checksum detection path actually
// runs instead of corrupting data nobody will touch again.
func Chaos2Scenario(seed int64, idx int, jobs []workload.JobSpec) *core.Scenario {
	rng := rand.New(rand.NewSource(seed<<8 + int64(idx) + chaos2Salt))
	sc := core.NewScenario(fmt.Sprintf("chaos2-%d", idx))
	at := sim.Time(60+rng.Intn(120)) * sim.Second
	step := func() sim.Time {
		at += sim.Time(30+rng.Intn(90)) * sim.Second
		return at
	}
	site := func() string { return chaosSiteNames[rng.Intn(len(chaosSiteNames))] }
	modes := []string{"both", "out", "in"}
	mode := func() string { return modes[rng.Intn(len(modes))] }
	// liveFile picks an input with unread blocks at instant t: prefer jobs
	// not yet submitted then (reads guaranteed to follow the corruption),
	// falling back to the widest job — its maps start over a long stretch of
	// the run, so late corruption still lands ahead of real reads. Scenario
	// instants and job submits share the same anchor (workload start).
	liveFile := func(t sim.Time) string {
		var pending []workload.JobSpec
		widest := jobs[0]
		for _, js := range jobs {
			if js.Submit > t {
				pending = append(pending, js)
			}
			if js.Maps > widest.Maps {
				widest = js
			}
		}
		pick := widest
		if len(pending) > 0 {
			pick = pending[rng.Intn(len(pending))]
		}
		return "/in/" + pick.Name
	}

	// Every schedule partitions one site (any cut direction), grays a few
	// nodes at another, and corrupts replicas of staged input files; all
	// three detection→recovery loops must close before the run ends, so the
	// partition heals and the gray nodes are restored a few minutes later.
	// Odd schedules add node-granular cuts at a third site; churn bursts
	// ride along throughout.
	partSite := site()
	graySite := site()
	sc.PartitionSiteAt(at, partSite, mode())
	sc.DegradeNodesAt(step(), graySite, 2+rng.Intn(3), 4, 0.15+0.25*rng.Float64())
	if len(jobs) > 0 {
		t := step()
		sc.CorruptReplicasAt(t, liveFile(t), 4+rng.Intn(5))
	}
	sc.ChurnBurst(step(), 0.05+0.15*rng.Float64())
	if idx%2 == 1 {
		nodeSite := site()
		sc.PartitionNodesAt(step(), nodeSite, 1+rng.Intn(2), mode())
		sc.HealPartitionAt(step(), nodeSite)
	}
	sc.HealPartitionAt(step(), partSite)
	if len(jobs) > 0 {
		t := step()
		sc.CorruptReplicasAt(t, liveFile(t), 3+rng.Intn(4))
	}
	sc.RestoreNodesAt(step(), graySite)
	return sc
}

// Chaos2ScheduleResult is one fault schedule's outcome across its two runs.
type Chaos2ScheduleResult struct {
	Schedule    int
	Response    sim.Time
	JobsFailed  int
	BlocksLost  int
	Partitions  int // partition-started events
	Healed      int // partition-healed events
	Degraded    int // node-degraded events
	Corrupted   int // replica-corrupted events
	Detected    int // corrupt-read-detected events
	Recovered   int // node-recovered events (datanodes back with inventory)
	GrayDraws   uint64
	PairedOK    bool   // partitions healed, degradations restored, masters paired
	Violations  int    // audit violations (both runs)
	FirstBreach string // first violation, for diagnostics
	Fingerprint uint64
	Mismatch    bool // reruns disagreed — determinism broken
}

type chaos2RunOutcome struct {
	response    sim.Time
	jobsFailed  int
	blocksLost  int
	partitions  int
	healed      int
	degraded    int
	corrupted   int
	detected    int
	recovered   int
	grayDraws   uint64
	pairedOK    bool
	violations  int
	firstBreach string
	fingerprint uint64
}

func chaos2Run(idx int, opts Options) chaos2RunOutcome {
	cfg := core.HOGConfig(60, grid.ChurnUnstable, opts.Seeds[0])
	log := event.NewLog()
	sys, err := core.NewSystem(opts.tune(cfg), log)
	if err != nil {
		panic(err)
	}
	aud := audit.New()
	aud.Attach(sys.NN, sys.JT)
	sys.Subscribe(aud)
	sys.Eng.Every(30*sim.Second, func() { aud.Sweep(sys.Eng.Now()) })
	schedule := sched(opts.Seeds[0], opts.Scale)
	if err := sys.Apply(Chaos2Scenario(opts.Seeds[0], idx, schedule.Jobs)); err != nil {
		panic(err)
	}
	res := sys.RunWorkload(schedule)
	aud.Sweep(sys.Eng.Now())
	out := chaos2RunOutcome{
		response:   res.ResponseTime,
		jobsFailed: res.JobsFailed,
		blocksLost: res.NN.BlocksLost,
		partitions: log.Count(event.PartitionStarted),
		healed:     log.Count(event.PartitionHealed),
		degraded:   log.Count(event.NodeDegraded),
		corrupted:  log.Count(event.ReplicaCorrupted),
		detected:   log.Count(event.CorruptReadDetected),
		recovered:  log.Count(event.NodeRecovered),
		grayDraws:  sys.GrayDraws(),
		pairedOK: sys.PartitionedSites() == 0 && sys.PartitionedNodes() == 0 &&
			sys.DegradedNodes() == 0 &&
			log.Count(event.NodeDegraded) == log.Count(event.NodeRestored) &&
			log.Count(event.MasterCrashed) == log.Count(event.MasterRecovered),
		violations:  aud.Count(),
		fingerprint: log.Fingerprint(),
	}
	if v := aud.Violations(); len(v) > 0 {
		out.firstBreach = v[0].String()
	}
	return out
}

// Chaos2Schedule runs fault schedule idx twice and folds the two runs into
// one result row; Mismatch is the determinism verdict (the comparison spans
// every event emitted, so detection latencies, recovery order, and read
// retries must all replay exactly).
func Chaos2Schedule(idx int, opts Options) Chaos2ScheduleResult {
	opts = opts.WithDefaults()
	a := chaos2Run(idx, opts)
	b := chaos2Run(idx, opts)
	r := Chaos2ScheduleResult{
		Schedule:    idx,
		Response:    a.response,
		JobsFailed:  a.jobsFailed,
		BlocksLost:  a.blocksLost,
		Partitions:  a.partitions,
		Healed:      a.healed,
		Degraded:    a.degraded,
		Corrupted:   a.corrupted,
		Detected:    a.detected,
		Recovered:   a.recovered,
		GrayDraws:   a.grayDraws,
		PairedOK:    a.pairedOK && b.pairedOK,
		Violations:  a.violations + b.violations,
		FirstBreach: a.firstBreach,
		Fingerprint: a.fingerprint,
		Mismatch:    a.fingerprint != b.fingerprint || a.grayDraws != b.grayDraws,
	}
	if r.FirstBreach == "" {
		r.FirstBreach = b.firstBreach
	}
	return r
}

// Chaos2 runs every schedule.
func Chaos2(opts Options) []Chaos2ScheduleResult {
	out := make([]Chaos2ScheduleResult, 0, Chaos2ScheduleCount)
	for i := 0; i < Chaos2ScheduleCount; i++ {
		out = append(out, Chaos2Schedule(i, opts))
	}
	return out
}

// PrintChaos2 prints the beyond-crash-stop chaos sampling run.
func PrintChaos2(w io.Writer, opts Options) {
	rs := Chaos2(opts)
	fmt.Fprintln(w, "CHAOS2: partitions + gray failures + corruption (60 nodes, unstable churn)")
	fmt.Fprintln(w, "Sched  Response(s)  JobsFailed  Parts  Healed  Gray  Corrupt  Detect  Recov  Violations  Deterministic")
	bad := 0
	for _, r := range rs {
		det := "yes"
		if r.Mismatch {
			det = "NO"
		}
		fmt.Fprintf(w, "%5d  %11.0f  %10d  %5d  %6d  %4d  %7d  %6d  %5d  %10d  %13s\n",
			r.Schedule, r.Response.Seconds(), r.JobsFailed, r.Partitions, r.Healed,
			r.Degraded, r.Corrupted, r.Detected, r.Recovered, r.Violations, det)
		if r.Violations > 0 {
			bad += r.Violations
			fmt.Fprintf(w, "       first breach: %s\n", r.FirstBreach)
		}
		if r.Mismatch {
			bad++
		}
		if !r.PairedOK {
			bad++
			fmt.Fprintf(w, "       unhealed partition, unrestored degradation, or unpaired events\n")
		}
	}
	if bad == 0 {
		fmt.Fprintln(w, "all schedules clean: zero audit violations, every fault healed, reruns bit-identical")
	} else {
		fmt.Fprintf(w, "CHAOS2 FOUND %d PROBLEM(S)\n", bad)
	}
}
