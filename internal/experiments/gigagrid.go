package experiments

import (
	"fmt"
	"io"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/sim"
)

// GigaGridResult is one scale-out run on the ~104-site ~100,000-node grid.
type GigaGridResult struct {
	Target        int
	Sites         int
	Reached       int
	Response      sim.Time
	EventsFired   uint64
	FlowsStarted  int
	CrossSiteFrac float64 // fraction of network bytes that crossed a WAN link
	JobsFailed    int
}

// GigaGrid runs the Facebook workload on a ~100,000-node pool spread over
// the GigaGridSites preset — three orders of magnitude past the paper's 180
// nodes and an order past MEGA-GRID. This is the scale the site-sharded
// parallel engine exists for: roughly a hundred per-site timing wheels
// settle concurrently between conservative lookahead barriers (WAN latency
// plus the heartbeat interval) while callbacks still execute in the exact
// global (at, seq) order. hogbench -exp giga -seq runs the same experiment
// on the sequential oracle and must produce bit-identical results — that
// cmp gate is what lets the parallel engine be the default everywhere.
func GigaGrid(opts Options) GigaGridResult {
	opts = opts.WithDefaults()
	target := 100000
	sys := core.New(opts.tune(core.GigaGridConfig(target, grid.ChurnStable, opts.Seeds[0])))
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	out := GigaGridResult{
		Target:       target,
		Sites:        sys.Net.NumSites(),
		Reached:      sys.Pool.AliveCount(),
		Response:     res.ResponseTime,
		EventsFired:  sys.Eng.Fired(),
		FlowsStarted: res.Net.FlowsStarted,
		JobsFailed:   res.JobsFailed,
	}
	if res.Net.BytesTotal > 0 {
		out.CrossSiteFrac = res.Net.BytesCrossSite / res.Net.BytesTotal
	}
	return out
}

// PrintGigaGrid prints the scale-out run. Like every printer it is
// engine-agnostic: hogbench -exp giga -seq must print byte-identical text.
func PrintGigaGrid(w io.Writer, opts Options) {
	r := GigaGrid(opts)
	fmt.Fprintf(w, "GIGA-GRID: Facebook workload at ~100,000 nodes, %d sites\n", r.Sites)
	fmt.Fprintf(w, "target=%d nodes over %d sites (reached %d)\n", r.Target, r.Sites, r.Reached)
	fmt.Fprintf(w, "workload response: %.0f s  (jobs failed: %d)\n", r.Response.Seconds(), r.JobsFailed)
	fmt.Fprintf(w, "simulation: %d events fired, %d flows, %.0f%% of bytes cross-site\n",
		r.EventsFired, r.FlowsStarted, 100*r.CrossSiteFrac)
}
