package experiments

import (
	"fmt"
	"io"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/sim"
)

// SchedScaleCase is one SCHED-SCALE configuration: the same 1000-node
// LARGE-GRID workload under the indexed scheduler or the retained scan
// baseline.
type SchedScaleCase struct {
	Label string
	Scan  bool
}

// SchedScaleCases returns the two scheduler paths.
func SchedScaleCases() []SchedScaleCase {
	return []SchedScaleCase{
		{"indexed", false},
		{"scan", true},
	}
}

// SchedScaleResult is one scheduler path's outcome. The two paths must
// report identical Response/JobsFailed/EventsFired for a fixed seed — that
// is the schedulers' equivalence contract at system scale; only wall-clock
// cost (measured by BenchmarkScheduler, not recorded here) may differ.
type SchedScaleResult struct {
	Label       string
	Scan        bool
	Nodes       int
	Response    sim.Time
	EventsFired uint64
	JobsFailed  int
}

// SchedScaleTrial runs the Facebook workload on the twelve-site ~1000-node
// preset under one scheduler path.
func SchedScaleTrial(c SchedScaleCase, opts Options) SchedScaleResult {
	opts = opts.WithDefaults()
	const nodes = 1000
	cfg := core.LargeGridConfig(nodes, grid.ChurnStable, opts.Seeds[0])
	cfg.MapRed.ScanScheduler = c.Scan
	sys := core.New(cfg)
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	return SchedScaleResult{
		Label:       c.Label,
		Scan:        c.Scan,
		Nodes:       nodes,
		Response:    res.ResponseTime,
		EventsFired: sys.Eng.Fired(),
		JobsFailed:  res.JobsFailed,
	}
}

// SchedScale runs SCHED-SCALE under both scheduler paths.
func SchedScale(opts Options) []SchedScaleResult {
	var out []SchedScaleResult
	for _, c := range SchedScaleCases() {
		out = append(out, SchedScaleTrial(c, opts))
	}
	return out
}

// PrintSchedScale prints SCHED-SCALE and flags any divergence between the
// paths, which would break the equivalence contract.
func PrintSchedScale(w io.Writer, opts Options) {
	rs := SchedScale(opts)
	fmt.Fprintln(w, "SCHED-SCALE: indexed vs scan-path scheduler at ~1000 nodes")
	fmt.Fprintln(w, "Scheduler  Response(s)  Events      JobsFailed")
	for _, r := range rs {
		fmt.Fprintf(w, "%-9s  %11.0f  %10d  %10d\n", r.Label, r.Response.Seconds(), r.EventsFired, r.JobsFailed)
	}
	if rs[0].Response == rs[1].Response && rs[0].EventsFired == rs[1].EventsFired && rs[0].JobsFailed == rs[1].JobsFailed {
		fmt.Fprintln(w, "paths agree bit-for-bit (equivalence contract holds)")
	} else {
		fmt.Fprintln(w, "WARNING: scheduler paths diverge — equivalence contract broken")
	}
}
