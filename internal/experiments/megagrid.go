package experiments

import (
	"fmt"
	"io"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/sim"
)

// MegaGridResult is one scale-out run on the forty-site ~10,000-node grid.
type MegaGridResult struct {
	Target        int
	Sites         int
	Reached       int
	Response      sim.Time
	EventsFired   uint64
	FlowsStarted  int
	CrossSiteFrac float64 // fraction of network bytes that crossed a WAN link
	JobsFailed    int
}

// MegaGrid runs the Facebook workload on a ~10,000-node pool spread over
// the MegaGridSites preset — two orders of magnitude past the paper's 180
// nodes, and an order past LARGE-GRID. At this scale the pending-event set
// is tens of thousands of clustered periodic timers (tracker heartbeats,
// dead scans, node lifetimes), which is exactly the workload the
// timing-wheel engine was built for; hogbench -exp mega -heap runs the same
// experiment on the retained binary heap and must produce bit-identical
// results.
func MegaGrid(opts Options) MegaGridResult {
	opts = opts.WithDefaults()
	target := 10000
	sys := core.New(opts.tune(core.MegaGridConfig(target, grid.ChurnStable, opts.Seeds[0])))
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	out := MegaGridResult{
		Target:       target,
		Sites:        sys.Net.NumSites(),
		Reached:      sys.Pool.AliveCount(),
		Response:     res.ResponseTime,
		EventsFired:  sys.Eng.Fired(),
		FlowsStarted: res.Net.FlowsStarted,
		JobsFailed:   res.JobsFailed,
	}
	if res.Net.BytesTotal > 0 {
		out.CrossSiteFrac = res.Net.BytesCrossSite / res.Net.BytesTotal
	}
	return out
}

// PrintMegaGrid prints the scale-out run.
func PrintMegaGrid(w io.Writer, opts Options) {
	r := MegaGrid(opts)
	fmt.Fprintln(w, "MEGA-GRID: Facebook workload at ~10,000 nodes, 40 sites")
	fmt.Fprintf(w, "target=%d nodes over %d sites (reached %d)\n", r.Target, r.Sites, r.Reached)
	fmt.Fprintf(w, "workload response: %.0f s  (jobs failed: %d)\n", r.Response.Seconds(), r.JobsFailed)
	fmt.Fprintf(w, "simulation: %d events fired, %d flows, %.0f%% of bytes cross-site\n",
		r.EventsFired, r.FlowsStarted, 100*r.CrossSiteFrac)
}
