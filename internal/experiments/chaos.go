package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"hog/internal/audit"
	"hog/internal/core"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
)

// CHAOS samples seeded random fault schedules — master crashes, site
// outages, churn bursts, WAN degradation — against a 60-node unstable pool,
// runs each schedule twice, and checks two things no single scripted
// experiment covers: the cross-layer audit invariants hold at every sweep
// under arbitrary fault interleavings, and the run is bit-deterministic
// (identical event fingerprints across reruns) even through master
// recovery. Any violation or fingerprint mismatch is a failure.

// chaosSiteNames are the fault targets, the OSG sites of the HOG preset.
var chaosSiteNames = []string{"FNAL_FERMIGRID", "USCMS-FNAL-WC1", "UCSDT2", "AGLT2", "MIT_CMS"}

// ChaosScheduleCount is the number of random fault schedules CHAOS samples.
const ChaosScheduleCount = 4

// ChaosScenario derives fault schedule idx from the experiment seed. The
// script is drawn from its own rand.Rand at construction time — not from
// the engine RNG — so it is a pure function of (seed, idx) and injecting it
// never perturbs the simulation's own random stream. Instants are strictly
// increasing, keeping the script free of same-instant conflicts by
// construction (Apply rejects those).
func ChaosScenario(seed int64, idx int) *core.Scenario {
	rng := rand.New(rand.NewSource(seed<<8 + int64(idx)))
	sc := core.NewScenario(fmt.Sprintf("chaos-%d", idx))
	at := sim.Time(60+rng.Intn(120)) * sim.Second
	step := func() sim.Time {
		at += sim.Time(30+rng.Intn(90)) * sim.Second
		return at
	}
	site := func() string { return chaosSiteNames[rng.Intn(len(chaosSiteNames))] }
	// Every schedule loses a site and the namenode; odd schedules lose the
	// JobTracker too. Churn bursts and WAN degradation ride along, and both
	// masters restart before the dust settles.
	sc.SiteOutageAt(at, site(), 0.3+0.4*rng.Float64())
	sc.CrashNameNodeAt(step())
	if idx%2 == 1 {
		sc.CrashJobTrackerAt(step())
	}
	sc.ChurnBurst(step(), 0.1+0.2*rng.Float64())
	sc.DegradeNetwork(step(), site(), 0.2+0.3*rng.Float64())
	sc.RestartMastersAfter(step())
	return sc
}

// ChaosScheduleResult is one fault schedule's outcome across its two runs.
type ChaosScheduleResult struct {
	Schedule     int
	Response     sim.Time
	JobsFailed   int
	BlocksLost   int
	Reregistered int // trackers that re-registered after JobTracker recovery
	SafeModeOK   bool
	Violations   int    // audit violations (both runs)
	FirstBreach  string // first violation, for diagnostics
	Fingerprint  uint64
	Mismatch     bool // reruns disagreed — determinism broken
}

type chaosRunOutcome struct {
	response     sim.Time
	jobsFailed   int
	blocksLost   int
	reregistered int
	safeModeOK   bool
	violations   int
	firstBreach  string
	fingerprint  uint64
}

func chaosRun(idx int, opts Options) chaosRunOutcome {
	cfg := core.HOGConfig(60, grid.ChurnUnstable, opts.Seeds[0])
	log := event.NewLog()
	sys, err := core.NewSystem(opts.tune(cfg), log)
	if err != nil {
		panic(err)
	}
	aud := audit.New()
	aud.Attach(sys.NN, sys.JT)
	sys.Subscribe(aud)
	sys.Eng.Every(30*sim.Second, func() { aud.Sweep(sys.Eng.Now()) })
	if err := sys.Apply(ChaosScenario(opts.Seeds[0], idx)); err != nil {
		panic(err)
	}
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	aud.Sweep(sys.Eng.Now())
	out := chaosRunOutcome{
		response:     res.ResponseTime,
		jobsFailed:   res.JobsFailed,
		blocksLost:   res.NN.BlocksLost,
		reregistered: log.Count(event.TrackerReregistered),
		safeModeOK: log.Count(event.SafeModeEntered) == log.Count(event.SafeModeExited) &&
			log.Count(event.MasterCrashed) == log.Count(event.MasterRecovered),
		violations:  aud.Count(),
		fingerprint: log.Fingerprint(),
	}
	if v := aud.Violations(); len(v) > 0 {
		out.firstBreach = v[0].String()
	}
	return out
}

// ChaosSchedule runs fault schedule idx twice and folds the two runs into
// one result row; Mismatch is the determinism verdict.
func ChaosSchedule(idx int, opts Options) ChaosScheduleResult {
	opts = opts.WithDefaults()
	a := chaosRun(idx, opts)
	b := chaosRun(idx, opts)
	r := ChaosScheduleResult{
		Schedule:     idx,
		Response:     a.response,
		JobsFailed:   a.jobsFailed,
		BlocksLost:   a.blocksLost,
		Reregistered: a.reregistered,
		SafeModeOK:   a.safeModeOK,
		Violations:   a.violations + b.violations,
		FirstBreach:  a.firstBreach,
		Fingerprint:  a.fingerprint,
		Mismatch:     a.fingerprint != b.fingerprint,
	}
	if r.FirstBreach == "" {
		r.FirstBreach = b.firstBreach
	}
	return r
}

// Chaos runs every schedule.
func Chaos(opts Options) []ChaosScheduleResult {
	out := make([]ChaosScheduleResult, 0, ChaosScheduleCount)
	for i := 0; i < ChaosScheduleCount; i++ {
		out = append(out, ChaosSchedule(i, opts))
	}
	return out
}

// PrintChaos prints the chaos sampling run.
func PrintChaos(w io.Writer, opts Options) {
	rs := Chaos(opts)
	fmt.Fprintln(w, "CHAOS: randomized fault schedules (60 nodes, unstable churn, masters crash+recover)")
	fmt.Fprintln(w, "Sched  Response(s)  JobsFailed  BlocksLost  Reregs  Violations  Deterministic")
	bad := 0
	for _, r := range rs {
		det := "yes"
		if r.Mismatch {
			det = "NO"
		}
		fmt.Fprintf(w, "%5d  %11.0f  %10d  %10d  %6d  %10d  %13s\n",
			r.Schedule, r.Response.Seconds(), r.JobsFailed, r.BlocksLost,
			r.Reregistered, r.Violations, det)
		if r.Violations > 0 {
			bad += r.Violations
			fmt.Fprintf(w, "       first breach: %s\n", r.FirstBreach)
		}
		if r.Mismatch {
			bad++
		}
		if !r.SafeModeOK {
			bad++
			fmt.Fprintf(w, "       unpaired safe-mode or crash/recovery events\n")
		}
	}
	if bad == 0 {
		fmt.Fprintln(w, "all schedules clean: zero audit violations, reruns bit-identical")
	} else {
		fmt.Fprintf(w, "CHAOS FOUND %d PROBLEM(S)\n", bad)
	}
}
