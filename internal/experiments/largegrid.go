package experiments

import (
	"fmt"
	"io"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/sim"
)

// LargeGridResult is one scale-out run on the twelve-site ~1000-node grid.
type LargeGridResult struct {
	Target        int
	Sites         int
	Response      sim.Time
	EventsFired   uint64
	FlowsStarted  int
	CrossSiteFrac float64 // fraction of network bytes that crossed a WAN link
	JobsFailed    int
}

// LargeGrid runs the Facebook workload on a ~1000-node pool spread over the
// LargeGridSites preset. The paper stops at 180 nodes; this experiment is
// the ROADMAP's beyond-the-paper scale point and the end-to-end stress for
// the incremental flow rebalancer (thousands of concurrent flows sharing
// twelve WAN uplinks).
func LargeGrid(opts Options) LargeGridResult {
	opts = opts.WithDefaults()
	target := 1000
	sys := core.New(opts.tune(core.LargeGridConfig(target, grid.ChurnStable, opts.Seeds[0])))
	res := sys.RunWorkload(sched(opts.Seeds[0], opts.Scale))
	out := LargeGridResult{
		Target:       target,
		Sites:        sys.Net.NumSites(),
		Response:     res.ResponseTime,
		EventsFired:  sys.Eng.Fired(),
		FlowsStarted: res.Net.FlowsStarted,
		JobsFailed:   res.JobsFailed,
	}
	if res.Net.BytesTotal > 0 {
		out.CrossSiteFrac = res.Net.BytesCrossSite / res.Net.BytesTotal
	}
	return out
}

// PrintLargeGrid prints the scale-out run.
func PrintLargeGrid(w io.Writer, opts Options) {
	r := LargeGrid(opts)
	fmt.Fprintln(w, "LARGE-GRID: Facebook workload at ~1000 nodes, 12 sites")
	fmt.Fprintf(w, "target=%d nodes over %d sites\n", r.Target, r.Sites)
	fmt.Fprintf(w, "workload response: %.0f s  (jobs failed: %d)\n", r.Response.Seconds(), r.JobsFailed)
	fmt.Fprintf(w, "simulation: %d events fired, %d flows, %.0f%% of bytes cross-site\n",
		r.EventsFired, r.FlowsStarted, 100*r.CrossSiteFrac)
}
