package event

import (
	"testing"

	"hog/internal/sim"
)

func TestNilAndEmptyBus(t *testing.T) {
	var nilBus *Bus
	if nilBus.Active() {
		t.Fatal("nil bus reports active")
	}
	nilBus.Emit(At(NodeJoined, 0)) // must not panic
	b := &Bus{}
	if b.Active() {
		t.Fatal("empty bus reports active")
	}
	b.Subscribe(NewLog())
	if !b.Active() {
		t.Fatal("subscribed bus reports inactive")
	}
}

func TestBusDeliversInSubscriptionOrder(t *testing.T) {
	b := &Bus{}
	var order []int
	b.Subscribe(ObserverFunc(func(Event) { order = append(order, 1) }))
	b.Subscribe(ObserverFunc(func(Event) { order = append(order, 2) }))
	b.Emit(At(JobSubmitted, 5*sim.Second))
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order = %v", order)
	}
}

func TestLogFilterAndCounts(t *testing.T) {
	l := NewLog(BlockLost)
	l.HandleEvent(At(BlockLost, sim.Second))
	l.HandleEvent(At(NodeJoined, 2*sim.Second))
	l.HandleEvent(At(BlockLost, 3*sim.Second))
	if l.Len() != 2 {
		t.Fatalf("retained %d events, want 2 (filtered to BlockLost)", l.Len())
	}
	// Counts cover every observed event, filtered or not.
	if l.Count(BlockLost) != 2 || l.Count(NodeJoined) != 1 || l.Count(SiteOutage) != 0 {
		t.Fatalf("counts wrong: lost=%d joined=%d", l.Count(BlockLost), l.Count(NodeJoined))
	}
	if l.Total() != 3 {
		t.Fatalf("total = %d, want 3", l.Total())
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	mk := func(mutate func(*Event)) uint64 {
		l := NewLog()
		e := At(TaskLaunched, 7*sim.Second)
		e.Job, e.Task, e.Node, e.Locality, e.Site = 3, 9, 12, 1, "UCSDT2"
		if mutate != nil {
			mutate(&e)
		}
		l.HandleEvent(e)
		return l.Fingerprint()
	}
	base := mk(nil)
	if base != mk(nil) {
		t.Fatal("identical sequences fingerprint differently")
	}
	for name, mut := range map[string]func(*Event){
		"time":     func(e *Event) { e.Time++ },
		"type":     func(e *Event) { e.Type = TaskFinished },
		"node":     func(e *Event) { e.Node++ },
		"site":     func(e *Event) { e.Site = "MIT_CMS" },
		"locality": func(e *Event) { e.Locality = 2 },
		"detail":   func(e *Event) { e.Detail = "x" },
	} {
		if mk(mut) == base {
			t.Fatalf("fingerprint insensitive to %s", name)
		}
	}
	if NewLog().Fingerprint() == base {
		t.Fatal("empty log shares fingerprint with non-empty log")
	}
}

func TestTypeNames(t *testing.T) {
	seen := map[string]bool{}
	for ty := Type(0); ty < NumTypes; ty++ {
		name := ty.String()
		if name == "unknown" || name == "" {
			t.Fatalf("type %d has no name", ty)
		}
		if seen[name] {
			t.Fatalf("duplicate type name %q", name)
		}
		seen[name] = true
	}
	if NumTypes.String() != "unknown" {
		t.Fatal("out-of-range type should be unknown")
	}
}
