// Package event defines the typed event stream emitted by the simulated
// system: a flat Event union covering the worker-node lifecycle (join,
// preemption, death, zombies), HDFS data events (block loss, re-replication),
// MapReduce progress (job and task lifecycle with map locality), and
// injected faults (site outages, pool retargets).
//
// Events are delivered synchronously through a Bus the subsystems share.
// Emission is pull-free and allocation-free: Event is a value struct, and
// every emission site is guarded by Bus.Active() so an unsubscribed run pays
// one nil/len check per would-be event and nothing else. Observers must not
// mutate the simulation — the bus hands them facts, not control; the
// determinism contract (same seed, same event sequence) holds exactly
// because emission consumes no randomness and schedules nothing.
package event

import (
	"encoding/binary"
	"hash/fnv"

	"hog/internal/netmodel"
	"hog/internal/sim"
)

// Type discriminates the Event union.
type Type uint8

// Event types.
const (
	// JobSubmitted fires when a job enters the JobTracker queue.
	JobSubmitted Type = iota
	// JobFinished fires when a job succeeds or fails (Detail holds the state).
	JobFinished
	// TaskLaunched fires when a map or reduce attempt starts; for maps,
	// Locality records the placement level achieved.
	TaskLaunched
	// TaskFinished fires when a task completes durably (winning attempt).
	TaskFinished
	// NodeJoined fires when a worker's daemons report in.
	NodeJoined
	// NodePreempted fires when the grid takes a worker back (Detail holds
	// the preemption kind: lifetime, batch, released, killed).
	NodePreempted
	// NodeDead fires when the namenode declares a datanode dead after its
	// heartbeat timeout.
	NodeDead
	// ZombieDetected fires when a preemption leaves daemons running without
	// a working directory (paper §IV.D.1).
	ZombieDetected
	// BlockLost fires when the last replica of a block disappears.
	BlockLost
	// ReplicationDone fires when a re-replication transfer lands a copy.
	ReplicationDone
	// SiteOutage fires when a scenario takes a whole site down (Value holds
	// the number of workers lost).
	SiteOutage
	// PoolRetarget fires when the pool's target size changes (Value holds
	// the new target).
	PoolRetarget
	// MasterCrashed fires when a master daemon loses its soft state (Detail
	// names the master: "namenode" or "jobtracker").
	MasterCrashed
	// MasterRecovered fires when a crashed master restarts (Detail names
	// the master: "namenode" or "jobtracker").
	MasterRecovered
	// SafeModeEntered fires when a restarted namenode begins rebuilding its
	// block map from datanode block reports.
	SafeModeEntered
	// SafeModeExited fires when the namenode reaches its reported-replica
	// threshold (or times out) and resumes normal service (Value holds the
	// number of blocks reported during safe mode).
	SafeModeExited
	// TrackerReregistered fires when a task tracker re-registers with a
	// recovered JobTracker after detecting the crash.
	TrackerReregistered
	// PartitionStarted fires when a scenario installs a network partition
	// (Site or Node names the cut target; Detail holds the cut directions:
	// "full", "in", or "out").
	PartitionStarted
	// PartitionHealed fires when a partition is removed (same target fields
	// as PartitionStarted).
	PartitionHealed
	// NodeDegraded fires when a gray failure is injected on a worker (Detail
	// describes it, e.g. "disk-slow 4x" or "heartbeat-loss 0.30").
	NodeDegraded
	// NodeRestored fires when a gray degradation is lifted from a worker.
	NodeRestored
	// NodeRecovered fires when a partitioned worker, declared dead by the
	// masters, re-registers after the partition heals (Value holds the number
	// of block replicas restored to the namenode's map).
	NodeRecovered
	// ReplicaCorrupted fires when a scenario silently corrupts a block
	// replica on a datanode (the namenode does not know yet).
	ReplicaCorrupted
	// CorruptReadDetected fires when a reader's checksum verification catches
	// a corrupt replica and fails over to another copy.
	CorruptReadDetected
	// ReplicaInvalidated fires when the namenode drops a corrupt replica from
	// its block map and queues the block for re-replication.
	ReplicaInvalidated
	// PipelineRecovered fires when a write pipeline drops an unreachable or
	// dead hop mid-write and continues with the surviving targets.
	PipelineRecovered
	// MasterGiveUp fires when a worker exhausts its total master-retry budget
	// and stops retrying (Detail names the master: "namenode" or
	// "jobtracker").
	MasterGiveUp

	// NumTypes is the number of event types (for per-type tables).
	NumTypes
)

// String names the type.
func (t Type) String() string {
	switch t {
	case JobSubmitted:
		return "job-submitted"
	case JobFinished:
		return "job-finished"
	case TaskLaunched:
		return "task-launched"
	case TaskFinished:
		return "task-finished"
	case NodeJoined:
		return "node-joined"
	case NodePreempted:
		return "node-preempted"
	case NodeDead:
		return "node-dead"
	case ZombieDetected:
		return "zombie-detected"
	case BlockLost:
		return "block-lost"
	case ReplicationDone:
		return "replication-done"
	case SiteOutage:
		return "site-outage"
	case PoolRetarget:
		return "pool-retarget"
	case MasterCrashed:
		return "master-crashed"
	case MasterRecovered:
		return "master-recovered"
	case SafeModeEntered:
		return "safe-mode-entered"
	case SafeModeExited:
		return "safe-mode-exited"
	case TrackerReregistered:
		return "tracker-reregistered"
	case PartitionStarted:
		return "partition-started"
	case PartitionHealed:
		return "partition-healed"
	case NodeDegraded:
		return "node-degraded"
	case NodeRestored:
		return "node-restored"
	case NodeRecovered:
		return "node-recovered"
	case ReplicaCorrupted:
		return "replica-corrupted"
	case CorruptReadDetected:
		return "corrupt-read-detected"
	case ReplicaInvalidated:
		return "replica-invalidated"
	case PipelineRecovered:
		return "pipeline-recovered"
	case MasterGiveUp:
		return "master-give-up"
	}
	return "unknown"
}

// TaskKind distinguishes map from reduce in task events.
type TaskKind uint8

// Task kinds.
const (
	MapTask TaskKind = iota
	ReduceTask
)

// String names the kind.
func (k TaskKind) String() string {
	if k == ReduceTask {
		return "reduce"
	}
	return "map"
}

// Event is one fact about the run. It is a flat union: Type selects which
// fields are meaningful; unused numeric fields are -1 and unused strings
// empty, so an Event is comparable and hashable field-by-field.
type Event struct {
	// Time is the simulated instant of the event.
	Time sim.Time
	// Type discriminates the union.
	Type Type
	// Node is the worker involved, or -1.
	Node netmodel.NodeID
	// Site names the grid site involved, or "".
	Site string
	// Job is the job id for job/task events, or -1.
	Job int
	// Task is the task index within the job for task events, or -1.
	Task int
	// Kind is the task kind for task events.
	Kind TaskKind
	// Locality is the map placement level (0 node-local, 1 site-local,
	// 2 remote) for TaskLaunched map events, or -1.
	Locality int8
	// Block is the HDFS block id for block events, or -1.
	Block int64
	// Value carries a type-specific count: workers lost for SiteOutage,
	// the new target for PoolRetarget; otherwise -1.
	Value int
	// Detail carries a type-specific label: the job name for JobSubmitted,
	// the final state for JobFinished, the preemption kind for NodePreempted.
	Detail string
}

// At returns an Event of the given type at the given instant with every
// optional numeric field set to its -1 "absent" value; emitters fill in the
// fields their type defines.
func At(t Type, now sim.Time) Event {
	return Event{Time: now, Type: t, Node: -1, Job: -1, Task: -1, Locality: -1, Block: -1, Value: -1}
}

// Observer receives events. Implementations must treat events as read-only
// facts and must not call back into the simulation.
type Observer interface {
	HandleEvent(Event)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(Event)

// HandleEvent implements Observer.
func (f ObserverFunc) HandleEvent(e Event) { f(e) }

// Bus fans events out to subscribed observers. The zero value and the nil
// bus are valid, inactive buses, so subsystems can carry an optional *Bus
// field with no wiring required when nobody listens.
type Bus struct {
	obs []Observer
}

// Active reports whether any observer is subscribed. Emission sites guard on
// it so an unsubscribed run does not even build the Event value.
func (b *Bus) Active() bool { return b != nil && len(b.obs) > 0 }

// Subscribe adds an observer. Observers are invoked in subscription order.
func (b *Bus) Subscribe(o Observer) { b.obs = append(b.obs, o) }

// Emit delivers e to every observer, synchronously, in subscription order.
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	for _, o := range b.obs {
		o.HandleEvent(e)
	}
}

// Log is a bundled Observer that records events, optionally filtered to a
// set of types, and maintains per-type counts over everything it saw (counts
// are kept even for filtered-out types).
type Log struct {
	keep   uint64 // bitmask of types to retain; keepAll short-circuits
	all    bool
	events []Event
	counts [NumTypes]int
}

// NewLog returns a collector. With no arguments it retains every event;
// otherwise only the listed types are retained (counts still cover all).
func NewLog(types ...Type) *Log {
	l := &Log{all: len(types) == 0}
	for _, t := range types {
		l.keep |= 1 << t
	}
	return l
}

// HandleEvent implements Observer.
func (l *Log) HandleEvent(e Event) {
	if e.Type < NumTypes {
		l.counts[e.Type]++
	}
	if l.all || l.keep&(1<<e.Type) != 0 {
		l.events = append(l.events, e)
	}
}

// Events returns the retained events in emission order. The slice is owned
// by the log; callers must not mutate it.
func (l *Log) Events() []Event { return l.events }

// Len returns the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Count returns how many events of type t were observed (filtered or not).
func (l *Log) Count(t Type) int {
	if t >= NumTypes {
		return 0
	}
	return l.counts[t]
}

// Total returns the number of observed events across all types.
func (l *Log) Total() int {
	n := 0
	for _, c := range l.counts {
		n += c
	}
	return n
}

// Fingerprint hashes the retained event sequence — every field of every
// event, in order — into a single value. Two runs with the same seed must
// produce identical fingerprints; the determinism tests assert exactly that.
func (l *Log) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	ws := func(s string) {
		wi(int64(len(s)))
		h.Write([]byte(s))
	}
	for i := range l.events {
		e := &l.events[i]
		wi(int64(e.Time))
		wi(int64(e.Type))
		wi(int64(e.Node))
		ws(e.Site)
		wi(int64(e.Job))
		wi(int64(e.Task))
		wi(int64(e.Kind))
		wi(int64(e.Locality))
		wi(e.Block)
		wi(int64(e.Value))
		ws(e.Detail)
	}
	return h.Sum64()
}
