package core

import (
	"strings"
	"testing"

	"hog/internal/grid"
	"hog/internal/mapred"
)

// TestValidatePolicies is the table-driven gate on the policy surface:
// unknown names at every decision point (top-level Policies block or direct
// subsystem config), the scan-scheduler conflict, and pool parameter
// bounds — each rejected with a message naming the problem.
func TestValidatePolicies(t *testing.T) {
	base := func() Config { return HOGConfig(10, grid.ChurnNone, 1) }
	cases := []struct {
		name string
		cfg  Config
		want string // "" accepts
	}{
		{"all defaults", base(), ""},
		{"explicit defaults", func() Config {
			c := base()
			c.Policies = Policies{Scheduler: "fifo", Speculation: "threshold", Placement: "grid", Replication: "fifo"}
			return c
		}(), ""},
		{"all alternatives", func() Config {
			c := base()
			c.Policies = Policies{Scheduler: "fair", Speculation: "site-load", Placement: "random", Replication: "rarest"}
			return c
		}(), ""},
		{"unknown scheduler", func() Config {
			c := base()
			c.Policies.Scheduler = "lottery"
			return c
		}(), `unknown scheduler policy "lottery"`},
		{"unknown speculation", func() Config {
			c := base()
			c.Policies.Speculation = "psychic"
			return c
		}(), `unknown speculation policy "psychic"`},
		{"unknown placement", func() Config {
			c := base()
			c.Policies.Placement = "antigravity"
			return c
		}(), `unknown placement policy "antigravity"`},
		{"unknown replication order", func() Config {
			c := base()
			c.Policies.Replication = "loudest"
			return c
		}(), `unknown replication order "loudest"`},
		{"unknown name on subsystem config", func() Config {
			c := base()
			c.MapRed.SchedulerPolicy = "lottery"
			return c
		}(), `unknown scheduler policy "lottery"`},
		{"scan scheduler with fair policy", func() Config {
			c := base()
			c.MapRed.ScanScheduler = true
			c.Policies.Scheduler = "fair"
			return c
		}(), "cannot be combined with ScanScheduler"},
		{"scan scheduler with explicit fifo", func() Config {
			c := base()
			c.MapRed.ScanScheduler = true
			c.Policies.Scheduler = "fifo"
			return c
		}(), ""},
		{"scan scheduler with default", func() Config {
			c := base()
			c.MapRed.ScanScheduler = true
			return c
		}(), ""},
		{"negative pool weight", func() Config {
			c := base()
			c.MapRed.Pools = map[string]mapred.PoolConfig{"a": {Weight: -1}}
			return c
		}(), `pool "a" has negative weight`},
		{"negative pool cap", func() Config {
			c := base()
			c.MapRed.Pools = map[string]mapred.PoolConfig{"a": {MaxRunning: -2}}
			return c
		}(), `pool "a" has negative running cap`},
	}
	for _, tc := range cases {
		err := Validate(tc.cfg)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: Validate rejected a valid config: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestPoliciesReachSubsystems: NewSystem must fold the top-level Policies
// block into the masters it builds, and leave the defaults in place when the
// block is empty.
func TestPoliciesReachSubsystems(t *testing.T) {
	def, err := NewSystem(HOGConfig(10, grid.ChurnNone, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := def.JT.SchedulerPolicyName(); got != "fifo" {
		t.Errorf("default scheduler policy %q, want fifo", got)
	}
	if got := def.JT.SpeculationPolicyName(); got != "threshold" {
		t.Errorf("default speculation policy %q, want threshold", got)
	}
	if got := def.NN.PlacementPolicyName(); got != "grid" {
		t.Errorf("default placement policy %q, want grid", got)
	}
	if got := def.NN.ReplicationOrderName(); got != "fifo" {
		t.Errorf("default replication order %q, want fifo", got)
	}

	cfg := HOGConfig(10, grid.ChurnNone, 1)
	cfg.Policies = Policies{Scheduler: "fair", Speculation: "site-load", Placement: "random", Replication: "rarest"}
	alt, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := alt.JT.SchedulerPolicyName(); got != "fair" {
		t.Errorf("scheduler policy %q, want fair", got)
	}
	if got := alt.JT.SpeculationPolicyName(); got != "site-load" {
		t.Errorf("speculation policy %q, want site-load", got)
	}
	if got := alt.NN.PlacementPolicyName(); got != "random" {
		t.Errorf("placement policy %q, want random", got)
	}
	if got := alt.NN.ReplicationOrderName(); got != "rarest" {
		t.Errorf("replication order %q, want rarest", got)
	}
}
