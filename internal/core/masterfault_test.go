package core

import (
	"testing"

	"hog/internal/audit"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
)

// TestMasterCrashRecoveryMidWorkload crashes both masters mid-run and
// restarts them later: every job must still complete, the recovery events
// must appear on the bus in matched pairs, and the cross-layer audit must
// stay clean through the outage and after it.
func TestMasterCrashRecoveryMidWorkload(t *testing.T) {
	cfg := HOGConfig(50, grid.ChurnNone, 31)
	sys := New(cfg)
	log := event.NewLog(event.MasterCrashed, event.MasterRecovered,
		event.SafeModeEntered, event.SafeModeExited, event.TrackerReregistered)
	sys.Subscribe(log)
	aud := audit.New()
	aud.Attach(sys.NN, sys.JT)
	sys.Subscribe(aud)
	sys.Eng.Every(30*sim.Second, func() { aud.Sweep(sys.Eng.Now()) })

	sc := NewScenario("master outage").
		CrashNameNodeAt(200 * sim.Second).
		CrashJobTrackerAt(230 * sim.Second).
		RestartMastersAfter(500 * sim.Second)
	if err := sys.Apply(sc); err != nil {
		t.Fatal(err)
	}
	res := sys.RunWorkload(tinySchedule(31))
	aud.Sweep(sys.Eng.Now())

	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs failed across the master outage", res.JobsFailed)
	}
	if got := log.Count(event.MasterCrashed); got != 2 {
		t.Fatalf("MasterCrashed count = %d, want 2", got)
	}
	if got := log.Count(event.MasterRecovered); got != 2 {
		t.Fatalf("MasterRecovered count = %d, want 2", got)
	}
	if got := log.Count(event.SafeModeEntered); got != 1 {
		t.Fatalf("SafeModeEntered count = %d, want 1", got)
	}
	if got := log.Count(event.SafeModeExited); got != 1 {
		t.Fatalf("SafeModeExited count = %d, want 1", got)
	}
	if log.Count(event.TrackerReregistered) == 0 {
		t.Fatal("no tracker re-registered after the JobTracker restart")
	}
	if sys.NN.Down() || sys.NN.InSafeMode() || sys.JT.Down() {
		t.Fatal("masters did not fully recover")
	}
	if n := aud.Count(); n != 0 {
		t.Fatalf("%d audit violations; first: %v", n, aud.Violations()[0])
	}
}

// TestMasterCrashDeterministic pins the recovery machinery to the
// determinism contract: two runs of the same crash schedule under the same
// seed produce identical event fingerprints.
func TestMasterCrashDeterministic(t *testing.T) {
	run := func() uint64 {
		sys := New(HOGConfig(40, grid.ChurnUnstable, 32))
		log := event.NewLog()
		sys.Subscribe(log)
		sc := NewScenario("chaos").
			CrashJobTrackerAt(150 * sim.Second).
			CrashNameNodeAt(180 * sim.Second).
			RestartMastersAfter(420 * sim.Second)
		if err := sys.Apply(sc); err != nil {
			t.Fatal(err)
		}
		sys.RunWorkload(tinySchedule(32))
		return log.Fingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different fingerprints: %x vs %x", a, b)
	}
}

// TestMasterRetryTotalGiveUp pins the retry budget: when a master outage
// outlasts Config.MasterRetryTotal, every orphaned worker emits exactly one
// MasterGiveUp and stops retrying for good — the master coming back later
// does not resurrect it. Under the default budget (far above any scripted
// outage here) the same schedule produces zero give-ups.
func TestMasterRetryTotalGiveUp(t *testing.T) {
	run := func(budget sim.Time) *event.Log {
		cfg := HOGConfig(40, grid.ChurnNone, 34)
		cfg.MasterRetryTotal = budget
		sys := New(cfg)
		log := event.NewLog(event.MasterGiveUp, event.MasterCrashed,
			event.MasterRecovered, event.TrackerReregistered)
		sys.Subscribe(log)
		sc := NewScenario("long nn outage").
			CrashNameNodeAt(120 * sim.Second).
			RestartMastersAfter(720 * sim.Second)
		if err := sys.Apply(sc); err != nil {
			t.Fatal(err)
		}
		sys.RunWorkload(tinySchedule(34))
		return log
	}

	gaveUp := run(2 * sim.Minute)
	if got := gaveUp.Count(event.MasterGiveUp); got == 0 {
		t.Fatal("no MasterGiveUp with a 2-minute retry budget against a 10-minute outage")
	}
	seen := map[int64]bool{}
	for _, e := range gaveUp.Events() {
		if e.Type != event.MasterGiveUp {
			continue
		}
		if e.Detail != "namenode" {
			t.Fatalf("MasterGiveUp detail = %q, want namenode (only the NameNode crashed)", e.Detail)
		}
		if seen[int64(e.Node)] {
			t.Fatalf("node %d gave up twice — the budget must trip at most once per master", e.Node)
		}
		seen[int64(e.Node)] = true
	}

	patient := run(0) // 0 selects the default 30-minute budget
	if got := patient.Count(event.MasterGiveUp); got != 0 {
		t.Fatalf("MasterGiveUp count = %d under the default budget, want 0", got)
	}
	if patient.Count(event.MasterRecovered) == 0 {
		t.Fatal("masters never recovered in the control run")
	}
}

// TestAuditorDoesNotPerturbRun verifies the auditor is a pure observer: a
// run with the auditor attached and sweeping matches the fingerprint of the
// same run without it.
func TestAuditorDoesNotPerturbRun(t *testing.T) {
	run := func(withAudit bool) uint64 {
		sys := New(HOGConfig(30, grid.ChurnStable, 33))
		log := event.NewLog()
		sys.Subscribe(log)
		if withAudit {
			aud := audit.New()
			aud.Attach(sys.NN, sys.JT)
			sys.Subscribe(aud)
			sys.Eng.Every(20*sim.Second, func() { aud.Sweep(sys.Eng.Now()) })
		}
		sc := NewScenario("nn outage").
			CrashNameNodeAt(120 * sim.Second).
			RestartMastersAfter(300 * sim.Second)
		if err := sys.Apply(sc); err != nil {
			t.Fatal(err)
		}
		sys.RunWorkload(tinySchedule(33))
		return log.Fingerprint()
	}
	if bare, audited := run(false), run(true); bare != audited {
		t.Fatalf("auditor perturbed the run: %x vs %x", bare, audited)
	}
}
