package core

import (
	"errors"
	"fmt"

	"hog/internal/event"
	"hog/internal/sim"
)

// Scenario is an ordered, validated script of fault-injection and operations
// actions — the paper's evaluation vocabulary (site-wide preemption, churn
// bursts, elastic retargets, balancer rounds) as first-class data instead of
// ad-hoc engine callbacks poking simulation internals.
//
// A scenario is built fluently (NewScenario(...).SiteOutageAt(...)...) and
// installed with System.Apply, which validates every step against the target
// system up front: unknown site names, fractions outside (0,1], pool actions
// on a static cluster, and negative offsets are rejected before the run
// starts instead of misfiring mid-simulation. Timed steps are anchored to
// the workload start (the instant provisioning completes and RunWorkload
// begins submitting, the paper's §IV.B procedure); same-instant steps fire
// in declaration order. Condition-triggered steps are polled on the
// scenario's Poll interval and fire at most once.
//
// Scenarios hold no per-run state: the same Scenario value can be applied to
// any number of systems.
type Scenario struct {
	name string
	poll sim.Time

	steps []*scenarioStep
	errs  []error
}

// scenarioStep is one action. Timed steps carry an offset from workload
// start; conditional steps carry a predicate polled until it first holds.
type scenarioStep struct {
	at    sim.Time
	timed bool
	desc  string
	keys  []string            // targets a timed step acts on, for conflict detection
	check func(*System) error // static validation against the target system
	cond  func(*System) bool  // conditional steps only
	run   func(*System)
	spec  *StepSpec // serializable form; nil for When's arbitrary closures
}

// StepSpec is the serializable form of one typed scenario step. Every
// builder verb except When records one, so an applied scenario can be
// encoded into a snapshot and rebuilt verb-for-verb on restore
// (ScenarioFromSpec). Fields not used by a verb are zero and omitted from
// JSON.
type StepSpec struct {
	// Verb names the builder method: "site-outage", "churn-burst",
	// "kill-fraction", "retarget-pool", "rebalance", "degrade-network",
	// "crash-namenode", "crash-jobtracker", "restart-masters",
	// "retarget-alive-below", "partition-site", "partition-nodes",
	// "heal-partition", "degrade-nodes", "restore-nodes",
	// "corrupt-replicas".
	Verb      string   `json:"verb"`
	At        sim.Time `json:"at,omitempty"`
	Site      string   `json:"site,omitempty"`
	Frac      float64  `json:"frac,omitempty"`
	Target    int      `json:"target,omitempty"`
	Threshold float64  `json:"threshold,omitempty"`
	MaxMoves  int      `json:"max_moves,omitempty"`
	Factor    float64  `json:"factor,omitempty"`
	Below     int      `json:"below,omitempty"`
	// Beyond-crash-stop fault fields (faults.go): Mode is a partition's cut
	// direction ("both"/"in"/"out"), Count a node-granular verb's victim
	// count, Loss a gray node's heartbeat-drop probability, File a
	// corruption target.
	Mode  string  `json:"mode,omitempty"`
	Count int     `json:"count,omitempty"`
	Loss  float64 `json:"loss,omitempty"`
	File  string  `json:"file,omitempty"`
}

// ScenarioSpec is the serializable form of a whole scenario.
type ScenarioSpec struct {
	Name  string     `json:"name"`
	Poll  sim.Time   `json:"poll"`
	Steps []StepSpec `json:"steps"`
}

// Spec returns the scenario's serializable form. It fails when the scenario
// carries build errors or contains a step the typed vocabulary cannot
// express — a When step's arbitrary closures cannot be serialized, so a
// scenario using When cannot ride along in a snapshot.
func (sc *Scenario) Spec() (ScenarioSpec, error) {
	if len(sc.errs) > 0 {
		return ScenarioSpec{}, fmt.Errorf("core: scenario %q invalid: %w", sc.name, errors.Join(sc.errs...))
	}
	out := ScenarioSpec{Name: sc.name, Poll: sc.poll}
	for _, st := range sc.steps {
		if st.spec == nil {
			return ScenarioSpec{}, fmt.Errorf("core: scenario %q: step %q has no serializable form (When closures cannot be snapshotted)", sc.name, st.desc)
		}
		out.Steps = append(out.Steps, *st.spec)
	}
	return out, nil
}

// ScenarioFromSpec rebuilds a scenario from its serializable form by
// replaying the builder verbs, so a restored scenario behaves exactly like
// the original. Unknown verbs are an error (a snapshot written by a newer
// version, or a corrupted one).
func ScenarioFromSpec(spec ScenarioSpec) (*Scenario, error) {
	sc := NewScenario(spec.Name)
	if spec.Poll > 0 {
		sc.Poll(spec.Poll)
	}
	for _, st := range spec.Steps {
		switch st.Verb {
		case "site-outage":
			sc.SiteOutageAt(st.At, st.Site, st.Frac)
		case "churn-burst":
			sc.ChurnBurst(st.At, st.Frac)
		case "kill-fraction":
			sc.KillFraction(st.At, st.Frac)
		case "retarget-pool":
			sc.RetargetPool(st.At, st.Target)
		case "rebalance":
			sc.RebalanceAt(st.At, st.Threshold, st.MaxMoves)
		case "degrade-network":
			sc.DegradeNetwork(st.At, st.Site, st.Factor)
		case "crash-namenode":
			sc.CrashNameNodeAt(st.At)
		case "crash-jobtracker":
			sc.CrashJobTrackerAt(st.At)
		case "restart-masters":
			sc.RestartMastersAfter(st.At)
		case "retarget-alive-below":
			sc.RetargetWhenAliveBelow(st.Below, st.Target)
		case "partition-site":
			sc.PartitionSiteAt(st.At, st.Site, st.Mode)
		case "partition-nodes":
			sc.PartitionNodesAt(st.At, st.Site, st.Count, st.Mode)
		case "heal-partition":
			sc.HealPartitionAt(st.At, st.Site)
		case "degrade-nodes":
			sc.DegradeNodesAt(st.At, st.Site, st.Count, st.Factor, st.Loss)
		case "restore-nodes":
			sc.RestoreNodesAt(st.At, st.Site)
		case "corrupt-replicas":
			sc.CorruptReplicasAt(st.At, st.File, st.Count)
		default:
			return nil, fmt.Errorf("core: scenario %q: unknown step verb %q", spec.Name, st.Verb)
		}
	}
	if len(sc.errs) > 0 {
		return nil, fmt.Errorf("core: scenario %q invalid: %w", spec.Name, errors.Join(sc.errs...))
	}
	return sc, nil
}

// NewScenario returns an empty scenario. The name labels validation errors.
func NewScenario(name string) *Scenario {
	return &Scenario{name: name, poll: 5 * sim.Second}
}

// Name returns the scenario's label.
func (sc *Scenario) Name() string { return sc.name }

// Steps returns the number of scripted actions.
func (sc *Scenario) Steps() int { return len(sc.steps) }

// Poll sets the predicate polling period for condition-triggered steps
// (default 5 simulated seconds).
func (sc *Scenario) Poll(interval sim.Time) *Scenario {
	if interval <= 0 {
		sc.errs = append(sc.errs, fmt.Errorf("non-positive poll interval %v", interval))
		return sc
	}
	sc.poll = interval
	return sc
}

func (sc *Scenario) addTimed(at sim.Time, desc string, keys []string, check func(*System) error, run func(*System), spec *StepSpec) *Scenario {
	if at < 0 {
		sc.errs = append(sc.errs, fmt.Errorf("%s at negative offset %v", desc, at))
		return sc
	}
	sc.steps = append(sc.steps, &scenarioStep{at: at, timed: true, desc: desc, keys: keys, check: check, run: run, spec: spec})
	return sc
}

func (sc *Scenario) addCond(desc string, check func(*System) error, cond func(*System) bool, run func(*System), spec *StepSpec) *Scenario {
	sc.steps = append(sc.steps, &scenarioStep{desc: desc, check: check, cond: cond, run: run, spec: spec})
	return sc
}

// checkFrac validates a preemption/kill fraction at build time.
func (sc *Scenario) checkFrac(desc string, frac float64) bool {
	if frac <= 0 || frac > 1 {
		sc.errs = append(sc.errs, fmt.Errorf("%s fraction %g outside (0,1]", desc, frac))
		return false
	}
	return true
}

// needPool is the Apply-time check for actions that drive the glide-in pool.
func needPool(desc string) func(*System) error {
	return func(s *System) error {
		if s.Pool == nil {
			return fmt.Errorf("%s requires a grid system (static cluster has no pool)", desc)
		}
		return nil
	}
}

// needSite validates a site name against the pool's site list.
func needSite(desc, site string) func(*System) error {
	return func(s *System) error {
		if s.Pool == nil {
			return fmt.Errorf("%s requires a grid system (static cluster has no pool)", desc)
		}
		if s.Pool.SiteIndexByName(site) < 0 {
			return fmt.Errorf("%s: no site named %q (have %v)", desc, site, s.Pool.SiteNames())
		}
		return nil
	}
}

// SiteOutageAt takes fraction frac of the named site's workers down at
// offset at from workload start — the paper's §III.B.1 batch-preemption
// failure domain as a scripted fault. A SiteOutage event is emitted with the
// number of workers lost.
func (sc *Scenario) SiteOutageAt(at sim.Time, site string, frac float64) *Scenario {
	desc := fmt.Sprintf("site outage %q", site)
	if !sc.checkFrac(desc, frac) {
		return sc
	}
	return sc.addTimed(at, desc, []string{"site:" + site}, needSite(desc, site), func(s *System) {
		killed, _ := s.Pool.PreemptSiteNamed(site, frac)
		if s.bus.Active() {
			ev := event.At(event.SiteOutage, s.Eng.Now())
			ev.Site = site
			ev.Value = killed
			s.bus.Emit(ev)
		}
	}, &StepSpec{Verb: "site-outage", At: at, Site: site, Frac: frac})
}

// ChurnBurst preempts fraction frac of the pool's workers at every site
// simultaneously at offset at — a grid-wide preemption storm from a
// higher-priority campaign.
func (sc *Scenario) ChurnBurst(at sim.Time, frac float64) *Scenario {
	const desc = "churn burst"
	if !sc.checkFrac(desc, frac) {
		return sc
	}
	return sc.addTimed(at, desc, []string{"pool:members"}, needPool(desc), func(s *System) {
		s.Pool.BurstPreempt(frac)
	}, &StepSpec{Verb: "churn-burst", At: at, Frac: frac})
}

// KillFraction kills fraction frac of all alive workers at offset at, chosen
// uniformly across the pool; the pool requests replacements.
func (sc *Scenario) KillFraction(at sim.Time, frac float64) *Scenario {
	const desc = "kill fraction"
	if !sc.checkFrac(desc, frac) {
		return sc
	}
	return sc.addTimed(at, desc, []string{"pool:members"}, needPool(desc), func(s *System) {
		s.Pool.KillFraction(frac)
	}, &StepSpec{Verb: "kill-fraction", At: at, Frac: frac})
}

// RetargetPool changes the pool's target size at offset at (the paper's
// elastic growth: "the number of nodes can grow and shrink elastically").
func (sc *Scenario) RetargetPool(at sim.Time, target int) *Scenario {
	desc := fmt.Sprintf("retarget pool to %d", target)
	if target < 0 {
		sc.errs = append(sc.errs, fmt.Errorf("%s: negative target", desc))
		return sc
	}
	return sc.addTimed(at, desc, []string{"pool:target"}, needPool(desc), func(s *System) {
		s.Pool.SetTarget(target)
	}, &StepSpec{Verb: "retarget-pool", At: at, Target: target})
}

// RebalanceAt runs one HDFS balancer round at offset at, moving replicas
// from nodes above the mean utilisation by more than threshold to nodes
// below it, bounded by maxMoves.
func (sc *Scenario) RebalanceAt(at sim.Time, threshold float64, maxMoves int) *Scenario {
	const desc = "hdfs rebalance"
	if threshold < 0 || maxMoves <= 0 {
		sc.errs = append(sc.errs, fmt.Errorf("%s: threshold %g / maxMoves %d invalid", desc, threshold, maxMoves))
		return sc
	}
	return sc.addTimed(at, desc, []string{"balancer"}, nil, func(s *System) {
		s.NN.BalanceOnce(threshold, maxMoves)
	}, &StepSpec{Verb: "rebalance", At: at, Threshold: threshold, MaxMoves: maxMoves})
}

// DegradeNetwork scales the named site's WAN uplink and downlink capacity by
// factor at offset at (factor 0.1 = a 10x-degraded WAN path; factors above 1
// model an upgrade). Works on grid sites and the static cluster's
// "cluster.local" site alike.
func (sc *Scenario) DegradeNetwork(at sim.Time, site string, factor float64) *Scenario {
	desc := fmt.Sprintf("degrade network %q", site)
	if factor <= 0 {
		sc.errs = append(sc.errs, fmt.Errorf("%s: non-positive factor %g", desc, factor))
		return sc
	}
	check := func(s *System) error {
		if _, ok := s.Net.SiteByName(site); !ok {
			return fmt.Errorf("%s: no network site named %q", desc, site)
		}
		return nil
	}
	return sc.addTimed(at, desc, []string{"net:" + site}, check, func(s *System) {
		id, ok := s.Net.SiteByName(site)
		if !ok {
			return
		}
		up, down := s.Net.SiteBandwidth(id)
		s.Net.SetSiteBandwidth(id, up*factor, down*factor)
	}, &StepSpec{Verb: "degrade-network", At: at, Site: site, Factor: factor})
}

// CrashNameNodeAt fails the namenode at offset at from workload start. Its
// soft state (the block map) is lost; physical blocks on datanodes survive.
// Writes stall and replication stops until RestartMastersAfter brings it
// back through safe mode (docs/FAULTS.md).
func (sc *Scenario) CrashNameNodeAt(at sim.Time) *Scenario {
	return sc.addTimed(at, "crash namenode", []string{"master:nn"}, nil, func(s *System) {
		s.CrashNameNode()
	}, &StepSpec{Verb: "crash-namenode", At: at})
}

// CrashJobTrackerAt fails the JobTracker at offset at from workload start.
// In-flight task state is lost; completed map output on surviving nodes is
// kept across restart.
func (sc *Scenario) CrashJobTrackerAt(at sim.Time) *Scenario {
	return sc.addTimed(at, "crash jobtracker", []string{"master:jt"}, nil, func(s *System) {
		s.CrashJobTracker()
	}, &StepSpec{Verb: "crash-jobtracker", At: at})
}

// RestartMastersAfter restarts whichever masters are down at offset at from
// workload start. The namenode re-enters service through safe mode; trackers
// re-register with the JobTracker as their backed-off retries land.
func (sc *Scenario) RestartMastersAfter(at sim.Time) *Scenario {
	return sc.addTimed(at, "restart masters", []string{"master:nn", "master:jt"}, nil, func(s *System) {
		s.RestartMasters()
	}, &StepSpec{Verb: "restart-masters", At: at})
}

// RetargetWhenAliveBelow raises the pool target to target the first time the
// alive worker count drops below threshold — scripted self-healing for
// outage scenarios.
func (sc *Scenario) RetargetWhenAliveBelow(threshold, target int) *Scenario {
	desc := fmt.Sprintf("retarget to %d when alive < %d", target, threshold)
	if threshold <= 0 || target < 0 {
		sc.errs = append(sc.errs, fmt.Errorf("%s: invalid threshold/target", desc))
		return sc
	}
	return sc.addCond(desc, needPool(desc),
		func(s *System) bool { return s.Pool.AliveCount() < threshold },
		func(s *System) { s.Pool.SetTarget(target) },
		&StepSpec{Verb: "retarget-alive-below", Below: threshold, Target: target})
}

// needNetSite validates a site name against the network's site registry at
// Apply time — unlike needSite it accepts the static cluster's
// "cluster.local" too.
func needNetSite(desc, site string) func(*System) error {
	return func(s *System) error {
		if _, ok := s.Net.SiteByName(site); !ok {
			return fmt.Errorf("%s: no network site named %q", desc, site)
		}
		return nil
	}
}

// checkMode validates a partition mode string at build time.
func (sc *Scenario) checkMode(desc, mode string) bool {
	if _, _, err := partitionCuts(mode); err != nil {
		sc.errs = append(sc.errs, fmt.Errorf("%s: %w", desc, err))
		return false
	}
	return true
}

// PartitionSiteAt cuts the named site off from the rest of the fabric at
// offset at (mode "both", "in", or "out" — see faults.go). Heartbeats and
// data across the cut stop; the masters' dead timeouts fire exactly as for
// a mass crash, but the daemons survive and HealPartitionAt revives them.
func (sc *Scenario) PartitionSiteAt(at sim.Time, site, mode string) *Scenario {
	desc := fmt.Sprintf("partition site %q", site)
	if !sc.checkMode(desc, mode) {
		return sc
	}
	return sc.addTimed(at, desc, []string{"net-part:" + site}, needNetSite(desc, site), func(s *System) {
		s.PartitionSiteNamed(site, mode)
	}, &StepSpec{Verb: "partition-site", At: at, Site: site, Mode: mode})
}

// PartitionNodesAt installs node-level cuts on the count lowest-ID healthy
// workers of the named site at offset at — victims are resolved when the
// step fires, because node IDs do not exist before provisioning.
func (sc *Scenario) PartitionNodesAt(at sim.Time, site string, count int, mode string) *Scenario {
	desc := fmt.Sprintf("partition %d nodes at %q", count, site)
	if !sc.checkMode(desc, mode) {
		return sc
	}
	if count <= 0 {
		sc.errs = append(sc.errs, fmt.Errorf("%s: non-positive count", desc))
		return sc
	}
	return sc.addTimed(at, desc, []string{"net-part-nodes:" + site}, needNetSite(desc, site), func(s *System) {
		s.PartitionNodesNamed(site, count, mode)
	}, &StepSpec{Verb: "partition-nodes", At: at, Site: site, Count: count, Mode: mode})
}

// HealPartitionAt lifts the site-level cut on the named site and every
// node-level cut on workers there at offset at, running heal-side recovery
// (datanode re-registration with preserved inventory, tracker revival,
// zombie-task resolution — faults.go).
func (sc *Scenario) HealPartitionAt(at sim.Time, site string) *Scenario {
	desc := fmt.Sprintf("heal partition %q", site)
	return sc.addTimed(at, desc, []string{"net-part:" + site, "net-part-nodes:" + site}, needNetSite(desc, site), func(s *System) {
		s.HealPartitionNamed(site)
	}, &StepSpec{Verb: "heal-partition", At: at, Site: site})
}

// DegradeNodesAt puts the count lowest-ID healthy workers of the named site
// under gray degradation at offset at: disks derated to 1/factor of nominal,
// compute slowed by the same factor, each heartbeat dropped with probability
// loss, and the nodes excluded from replica placement while flagged.
func (sc *Scenario) DegradeNodesAt(at sim.Time, site string, count int, factor, loss float64) *Scenario {
	desc := fmt.Sprintf("degrade %d nodes at %q", count, site)
	if count <= 0 || factor < 1 || loss < 0 || loss >= 1 {
		sc.errs = append(sc.errs, fmt.Errorf("%s: count %d / factor %g / loss %g invalid", desc, count, factor, loss))
		return sc
	}
	return sc.addTimed(at, desc, []string{"degrade:" + site}, needNetSite(desc, site), func(s *System) {
		s.DegradeNodesNamed(site, count, factor, loss)
	}, &StepSpec{Verb: "degrade-nodes", At: at, Site: site, Count: count, Factor: factor, Loss: loss})
}

// RestoreNodesAt lifts gray degradation from every degraded worker at the
// named site at offset at.
func (sc *Scenario) RestoreNodesAt(at sim.Time, site string) *Scenario {
	desc := fmt.Sprintf("restore nodes at %q", site)
	return sc.addTimed(at, desc, []string{"degrade:" + site}, needNetSite(desc, site), func(s *System) {
		s.RestoreNodesNamed(site)
	}, &StepSpec{Verb: "restore-nodes", At: at, Site: site})
}

// CorruptReplicasAt silently corrupts up to count replicas of the named file
// at offset at (lowest block, lowest holder IDs first — fire-time
// resolution). The namenode learns nothing until a reader's checksum
// verification catches a bad copy; workload input files are staged as
// "/in/<job-name>".
func (sc *Scenario) CorruptReplicasAt(at sim.Time, file string, count int) *Scenario {
	desc := fmt.Sprintf("corrupt %d replicas of %q", count, file)
	if count <= 0 || file == "" {
		sc.errs = append(sc.errs, fmt.Errorf("%s: invalid count or empty file", desc))
		return sc
	}
	return sc.addTimed(at, desc, []string{"corrupt:" + file}, nil, func(s *System) {
		s.CorruptFileReplicas(file, count)
	}, &StepSpec{Verb: "corrupt-replicas", At: at, File: file, Count: count})
}

// When adds a generic condition-triggered step: cond is polled on the
// scenario's Poll interval and do fires once, the first time it holds. It is
// the escape hatch for conditions the typed vocabulary does not cover; cond
// must be a pure read of system state.
func (sc *Scenario) When(desc string, cond func(*System) bool, do func(*System)) *Scenario {
	if cond == nil || do == nil {
		sc.errs = append(sc.errs, fmt.Errorf("when %q: nil condition or action", desc))
		return sc
	}
	return sc.addCond("when "+desc, nil, cond, do, nil)
}

// Apply validates the scenario against this system and installs it. Every
// step is checked up front — builder-time errors (bad fractions, negative
// offsets) and system-dependent ones (unknown sites, pool actions on a
// static cluster) all surface here, before anything runs. Scenarios must be
// applied before RunWorkload; their timed steps are anchored to the workload
// start it establishes.
func (s *System) Apply(sc *Scenario) error {
	if s.scenariosArmed {
		return fmt.Errorf("core: scenario %q applied after the workload started", sc.name)
	}
	if len(sc.errs) > 0 {
		return fmt.Errorf("core: scenario %q invalid: %w", sc.name, errors.Join(sc.errs...))
	}
	if len(sc.steps) == 0 {
		return fmt.Errorf("core: scenario %q has no actions", sc.name)
	}
	for _, st := range sc.steps {
		if st.check != nil {
			if err := st.check(s); err != nil {
				return fmt.Errorf("core: scenario %q: %w", sc.name, err)
			}
		}
	}
	// Same-instant steps fire in declaration order, so two actions on the
	// same target at the same offset have an order-dependent outcome the
	// author almost certainly did not intend (crash+restart at t, two
	// outages of one site at t). Reject them — within this scenario and
	// against every scenario already applied to this system.
	staged := make(map[string]string)
	for _, st := range sc.steps {
		if !st.timed {
			continue
		}
		for _, key := range st.keys {
			k := fmt.Sprintf("%v|%s", st.at, key)
			if prev, ok := s.timedKeys[k]; ok {
				return fmt.Errorf("core: scenario %q: %s at %v conflicts with already-applied %s (same instant, same target %s)",
					sc.name, st.desc, st.at, prev, key)
			}
			if prev, ok := staged[k]; ok {
				return fmt.Errorf("core: scenario %q: %s at %v conflicts with %s (same instant, same target %s)",
					sc.name, st.desc, st.at, prev, key)
			}
			staged[k] = st.desc
		}
	}
	if s.timedKeys == nil {
		s.timedKeys = make(map[string]string)
	}
	for k, d := range staged {
		s.timedKeys[k] = d
	}
	s.scenarios = append(s.scenarios, sc)
	return nil
}

// armScenarios schedules every installed scenario's steps relative to the
// current instant (the workload start). Timed steps become engine events in
// declaration order; conditional steps share one poller per scenario that
// stops itself once every condition has fired.
func (s *System) armScenarios() {
	if s.scenariosArmed {
		return
	}
	s.scenariosArmed = true
	start := s.Eng.Now()
	for _, sc := range s.scenarios {
		s.armScenario(sc, start)
	}
}

// armScenario schedules one scenario's steps relative to anchor.
func (s *System) armScenario(sc *Scenario, anchor sim.Time) {
	var conds []*scenarioStep
	for _, st := range sc.steps {
		if st.timed {
			st := st
			s.Eng.Schedule(anchor+st.at, func() { st.run(s) })
		} else {
			conds = append(conds, st)
		}
	}
	if len(conds) > 0 {
		fired := make([]bool, len(conds))
		var tk *sim.Ticker
		tk = s.Eng.Every(sc.poll, func() {
			remaining := false
			for i, st := range conds {
				if fired[i] {
					continue
				}
				if st.cond(s) {
					fired[i] = true
					st.run(s)
				} else {
					remaining = true
				}
			}
			if !remaining {
				tk.Stop()
			}
		})
	}
}

// ApplyDivergence validates sc against this system and arms it immediately,
// anchored at the current instant instead of the workload start — the
// divergence half of a what-if fork: restore a snapshot, diverge, run on.
// Only an in-flight run (phase started) can diverge, and a diverged system
// can no longer be snapshotted (snapshot.Save rejects it): its history is
// not reproducible from config + pre-start scenarios alone.
func (s *System) ApplyDivergence(sc *Scenario) error {
	if s.phase != PhaseStarted {
		return fmt.Errorf("core: divergence %q applied to a %v system (restore a mid-run snapshot first)", sc.name, s.phase)
	}
	if len(sc.errs) > 0 {
		return fmt.Errorf("core: divergence %q invalid: %w", sc.name, errors.Join(sc.errs...))
	}
	if len(sc.steps) == 0 {
		return fmt.Errorf("core: divergence %q has no actions", sc.name)
	}
	for _, st := range sc.steps {
		if st.check != nil {
			if err := st.check(s); err != nil {
				return fmt.Errorf("core: divergence %q: %w", sc.name, err)
			}
		}
	}
	s.diverged = true
	s.armScenario(sc, s.Eng.Now())
	return nil
}
