package core

import (
	"testing"

	"hog/internal/grid"
	"hog/internal/sim"
)

// TestSiteOutageMidWorkload injects a full-site failure during execution and
// checks HOG's configuration rides it out with zero data loss and zero job
// failures (the §III.B.1 design goal).
func TestSiteOutageMidWorkload(t *testing.T) {
	cfg := HOGConfig(50, grid.ChurnNone, 21)
	sys := New(cfg)
	sys.AwaitNodes()
	lostWorkers := 0
	sys.Eng.After(200*sim.Second, func() { lostWorkers = sys.Pool.PreemptSite(1, 1.0) })
	res := sys.RunWorkload(tinySchedule(21))
	if lostWorkers == 0 {
		t.Fatal("outage injection killed nothing")
	}
	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs failed despite replication 10 + site awareness", res.JobsFailed)
	}
	if res.NN.BlocksLost != 0 {
		t.Fatalf("%d blocks lost despite site-aware placement", res.NN.BlocksLost)
	}
	if res.NN.ReplicationsDone == 0 {
		t.Fatal("no recovery replication after losing a site")
	}
	// The pool replaced the lost workers.
	if got := sys.Pool.AliveCount(); got != 50 {
		t.Fatalf("pool did not recover: %d alive, want 50", got)
	}
}

// TestDiskOverflowKillPath checks §IV.D.2 end to end at the system level:
// tiny scratch disks cause overflow kills and pool replacement.
func TestDiskOverflowKillPath(t *testing.T) {
	cfg := HOGConfig(25, grid.ChurnNone, 22)
	cfg.Grid.Pool.DiskBytesPerNode = 3e9
	cfg.Costs.ReduceCostPerMB = 500 * sim.Millisecond // keep intermediate around
	sys := New(cfg)
	res := sys.RunWorkload(tinySchedule(22))
	if sys.Disk.Overflows() == 0 {
		t.Skip("no overflow with this seed/scale; covered at larger scale by hogbench")
	}
	if res.Pool.Killed == 0 {
		t.Fatal("overflowing workers were not shut down")
	}
}

// TestRunBoundTerminates ensures a run that cannot finish still returns.
func TestRunBoundTerminates(t *testing.T) {
	cfg := HOGConfig(3, grid.ChurnNone, 23)
	cfg.RunBound = 10 * sim.Minute // far too short for the workload
	sys := New(cfg)
	res := sys.RunWorkload(tinySchedule(23))
	if res.ResponseTime > 11*sim.Minute {
		t.Fatalf("run bound not enforced: %v", res.ResponseTime)
	}
}

// TestStaticClusterNeverChurns sanity-checks the dedicated baseline: no
// pool, no preemptions, flat reported series.
func TestStaticClusterNeverChurns(t *testing.T) {
	sys := New(DedicatedClusterConfig(24))
	res := sys.RunWorkload(tinySchedule(24))
	if sys.Pool != nil {
		t.Fatal("static cluster has a pool")
	}
	if res.Reported.Min() != 30 || res.Reported.Max() != 30 {
		t.Fatalf("reported series fluctuated on a static cluster: [%v,%v]",
			res.Reported.Min(), res.Reported.Max())
	}
	if res.Counters.MapsReExecuted != 0 {
		t.Fatal("re-executions on a healthy static cluster")
	}
}

// TestDecommissionIntegration shrinks the pool gracefully via HDFS
// decommission before releasing nodes: no under-replication spike.
func TestDecommissionIntegration(t *testing.T) {
	cfg := HOGConfig(30, grid.ChurnNone, 25)
	sys := New(cfg)
	sys.AwaitNodes()
	// Seed data so nodes actually hold blocks.
	sys.NN.SeedFile("/in/data", 20*64e6, 0)
	victim := sys.Pool.AliveNodes()[0]
	done := false
	sys.NN.Decommission(victim.ID, func() { done = true })
	sys.Eng.RunUntil(sys.Eng.Now() + 30*sim.Minute)
	if !done {
		t.Fatalf("decommission never completed (queue %d)", sys.NN.UnderReplicated())
	}
	if sys.NN.Stats().BlocksLost != 0 {
		t.Fatal("graceful drain lost blocks")
	}
}

// TestZombieDiskCheckConverges verifies disk-check zombies disappear within
// the probe interval.
func TestZombieDiskCheckConverges(t *testing.T) {
	cfg := HOGConfig(25, grid.ChurnNone, 26)
	cfg.Zombie = ZombieDiskCheck
	sys := New(cfg)
	sys.AwaitNodes()
	// Preempt a handful of nodes at once.
	sys.Pool.PreemptSite(0, 0.5)
	if sys.Zombies() == 0 {
		t.Skip("no zombies created (site empty with this seed)")
	}
	peak := sys.Zombies()
	sys.Eng.RunUntil(sys.Eng.Now() + cfg.DiskCheckInterval + 10*sim.Second)
	if sys.Zombies() != 0 {
		t.Fatalf("zombies remaining after probe interval: %d (peak %d)", sys.Zombies(), peak)
	}
}
