package core

import (
	"strings"
	"testing"

	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
)

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no supply", Config{Seed: 1}, "no worker supply"},
		{"both supplies", func() Config {
			c := HOGConfig(10, grid.ChurnNone, 1)
			c.Static = []StaticGroup{{Count: 1, MapSlots: 1}}
			return c
		}(), "mutually exclusive"},
		{"no sites", Config{Seed: 1, Grid: &GridConfig{TargetNodes: 10}}, "no sites"},
		{"negative target", func() Config {
			c := HOGConfig(10, grid.ChurnNone, 1)
			c.Grid.TargetNodes = -5
			return c
		}(), "negative grid target"},
		{"unnamed site", func() Config {
			c := HOGConfig(10, grid.ChurnNone, 1)
			c.Grid.Sites[2].Name = ""
			return c
		}(), "has no name"},
		{"duplicate site", func() Config {
			c := HOGConfig(10, grid.ChurnNone, 1)
			c.Grid.Sites[1].Name = c.Grid.Sites[0].Name
			return c
		}(), "duplicate site name"},
	}
	for _, tc := range cases {
		sys, err := NewSystem(tc.cfg)
		if err == nil || sys != nil {
			t.Fatalf("%s: NewSystem accepted invalid config", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		// The legacy facade panics with the same validator message.
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: New did not panic", tc.name)
				}
				if msg, ok := r.(string); !ok || msg != err.Error() {
					t.Fatalf("%s: panic %v != validator error %q", tc.name, r, err)
				}
			}()
			New(tc.cfg)
		}()
	}
}

func TestScenarioValidation(t *testing.T) {
	grids := New(HOGConfig(10, grid.ChurnNone, 1))
	static := New(DedicatedClusterConfig(1))
	cases := []struct {
		name string
		sys  *System
		sc   *Scenario
		want string
	}{
		{"unknown site", grids, NewScenario("x").SiteOutageAt(sim.Second, "NOPE", 1.0), `no site named "NOPE"`},
		{"bad fraction", grids, NewScenario("x").SiteOutageAt(sim.Second, "UCSDT2", 1.5), "outside (0,1]"},
		{"zero fraction", grids, NewScenario("x").ChurnBurst(sim.Second, 0), "outside (0,1]"},
		{"negative offset", grids, NewScenario("x").RetargetPool(-sim.Second, 5), "negative offset"},
		{"empty", grids, NewScenario("x"), "no actions"},
		{"pool action on static", static, NewScenario("x").KillFraction(sim.Second, 0.5), "static cluster has no pool"},
		{"unknown net site", static, NewScenario("x").DegradeNetwork(sim.Second, "NOPE", 0.5), "no network site"},
		{"bad poll", grids, NewScenario("x").Poll(0).RetargetPool(sim.Second, 5), "poll interval"},
	}
	for _, tc := range cases {
		if err := tc.sys.Apply(tc.sc); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: Apply error %v does not mention %q", tc.name, err, tc.want)
		}
	}
	// A valid scenario applies cleanly, and degrading the static cluster's
	// own site is allowed.
	if err := grids.Apply(NewScenario("ok").SiteOutageAt(sim.Second, "UCSDT2", 0.5)); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	if err := static.Apply(NewScenario("ok").DegradeNetwork(sim.Second, "cluster.local", 0.5)); err != nil {
		t.Fatalf("static DegradeNetwork rejected: %v", err)
	}
}

// TestScenarioSameInstantConflicts exercises Apply's rejection of two
// same-instant steps acting on the same target, whose declaration-order
// outcome the author cannot have meant — and the combinations that must
// stay legal.
func TestScenarioSameInstantConflicts(t *testing.T) {
	cases := []struct {
		name string
		sc   *Scenario
		want string // substring of the Apply error; "" = must be accepted
	}{
		{"crash and restart namenode same instant",
			NewScenario("x").CrashNameNodeAt(sim.Minute).RestartMastersAfter(sim.Minute), "same instant"},
		{"restart then crash same instant",
			NewScenario("x").RestartMastersAfter(sim.Minute).CrashJobTrackerAt(sim.Minute), "same instant"},
		{"two outages of one site same instant",
			NewScenario("x").SiteOutageAt(sim.Minute, "UCSDT2", 0.5).SiteOutageAt(sim.Minute, "UCSDT2", 1.0), "same instant"},
		{"churn burst and kill fraction same instant",
			NewScenario("x").ChurnBurst(sim.Minute, 0.1).KillFraction(sim.Minute, 0.1), "same instant"},
		{"both masters crash same instant",
			NewScenario("x").CrashNameNodeAt(sim.Minute).CrashJobTrackerAt(sim.Minute), ""},
		{"different sites same instant",
			NewScenario("x").SiteOutageAt(sim.Minute, "UCSDT2", 0.5).SiteOutageAt(sim.Minute, "FNAL_FERMIGRID", 0.5), ""},
		{"same site different instants",
			NewScenario("x").SiteOutageAt(sim.Minute, "UCSDT2", 0.5).SiteOutageAt(2*sim.Minute, "UCSDT2", 0.5), ""},
		{"outage and network degrade of one site same instant",
			NewScenario("x").SiteOutageAt(sim.Minute, "UCSDT2", 0.5).DegradeNetwork(sim.Minute, "UCSDT2", 0.1), ""},
		{"crash with unrelated outage same instant",
			NewScenario("x").CrashNameNodeAt(sim.Minute).SiteOutageAt(sim.Minute, "UCSDT2", 0.5), ""},
	}
	for _, tc := range cases {
		sys := New(HOGConfig(10, grid.ChurnNone, 1))
		err := sys.Apply(tc.sc)
		if tc.want == "" {
			if err != nil {
				t.Fatalf("%s: Apply rejected legal scenario: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: Apply error %v does not mention %q", tc.name, err, tc.want)
		}
	}
	// Conflicts are also caught across separately applied scenarios, and a
	// rejected scenario leaves no residue blocking a corrected one.
	sys := New(HOGConfig(10, grid.ChurnNone, 1))
	if err := sys.Apply(NewScenario("first").CrashNameNodeAt(sim.Minute)); err != nil {
		t.Fatal(err)
	}
	err := sys.Apply(NewScenario("second").RestartMastersAfter(sim.Minute))
	if err == nil || !strings.Contains(err.Error(), "already-applied") {
		t.Fatalf("cross-scenario conflict error = %v", err)
	}
	if err := sys.Apply(NewScenario("second").RestartMastersAfter(2 * sim.Minute)); err != nil {
		t.Fatalf("corrected scenario rejected: %v", err)
	}
}

func TestScenarioRejectedAfterWorkloadStart(t *testing.T) {
	sys := New(HOGConfig(10, grid.ChurnNone, 1))
	sys.RunWorkload(tinySchedule(1))
	err := sys.Apply(NewScenario("late").RetargetPool(sim.Second, 5))
	if err == nil || !strings.Contains(err.Error(), "after the workload started") {
		t.Fatalf("late Apply error = %v", err)
	}
}

// TestScenarioMatchesManualInjection pins the scenario path to the raw
// engine scripting it replaced: a scripted site outage must reproduce the
// legacy AwaitNodes + Eng.After + index-based PreemptSite sequence exactly —
// same response, same data damage, same pool accounting.
func TestScenarioMatchesManualInjection(t *testing.T) {
	build := func() *System {
		cfg := HOGConfig(60, grid.ChurnNone, 11)
		cfg.HDFS.Replication = 2
		cfg.HDFS.SiteAware = false
		return New(cfg)
	}
	manual := build()
	manual.AwaitNodes()
	manual.Eng.After(300*sim.Second, func() { manual.Pool.PreemptSite(0, 1.0) })
	mres := manual.RunWorkload(tinySchedule(11))

	scripted := build()
	if err := scripted.Apply(NewScenario("outage").SiteOutageAt(300*sim.Second, "FNAL_FERMIGRID", 1.0)); err != nil {
		t.Fatal(err)
	}
	sres := scripted.RunWorkload(tinySchedule(11))

	if mres.ResponseTime != sres.ResponseTime {
		t.Fatalf("response: manual %v vs scenario %v", mres.ResponseTime, sres.ResponseTime)
	}
	if mres.NN.BlocksLost != sres.NN.BlocksLost || mres.JobsFailed != sres.JobsFailed {
		t.Fatalf("damage: manual (%d,%d) vs scenario (%d,%d)",
			mres.NN.BlocksLost, mres.JobsFailed, sres.NN.BlocksLost, sres.JobsFailed)
	}
	if mres.Pool != sres.Pool {
		t.Fatalf("pool stats: manual %+v vs scenario %+v", mres.Pool, sres.Pool)
	}
	if mres.Net != sres.Net {
		t.Fatalf("net stats: manual %+v vs scenario %+v", mres.Net, sres.Net)
	}
}

func TestScenarioConditionalRetarget(t *testing.T) {
	log := event.NewLog(event.SiteOutage, event.PoolRetarget)
	cfg := HOGConfig(60, grid.ChurnNone, 7)
	sys, err := NewSystem(cfg, log)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScenario("self-healing outage").
		SiteOutageAt(200*sim.Second, "FNAL_FERMIGRID", 1.0).
		RetargetWhenAliveBelow(55, 90)
	if err := sys.Apply(sc); err != nil {
		t.Fatal(err)
	}
	sys.RunWorkload(tinySchedule(7))
	if log.Count(event.SiteOutage) != 1 {
		t.Fatalf("site outages = %d, want 1", log.Count(event.SiteOutage))
	}
	// Retargets: workload start (60) + conditional self-heal (90), once.
	var targets []int
	for _, e := range log.Events() {
		if e.Type == event.PoolRetarget {
			targets = append(targets, e.Value)
		}
	}
	if len(targets) != 2 || targets[0] != 60 || targets[1] != 90 {
		t.Fatalf("retarget sequence = %v, want [60 90]", targets)
	}
	if got := sys.Pool.Target(); got != 90 {
		t.Fatalf("final target = %d, want 90", got)
	}
	for _, e := range log.Events() {
		if e.Type == event.SiteOutage && (e.Site != "FNAL_FERMIGRID" || e.Value <= 0) {
			t.Fatalf("bad SiteOutage event %+v", e)
		}
	}
}

func TestScenarioDegradeNetworkSlowsRun(t *testing.T) {
	run := func(sc *Scenario) sim.Time {
		sys := New(HOGConfig(30, grid.ChurnNone, 3))
		if sc != nil {
			if err := sys.Apply(sc); err != nil {
				t.Fatal(err)
			}
		}
		return sys.RunWorkload(tinySchedule(3)).ResponseTime
	}
	base := run(nil)
	sc := NewScenario("wan brownout")
	for _, site := range grid.OSGSites(grid.ChurnNone) {
		sc.DegradeNetwork(0, site.Name, 0.02)
	}
	degraded := run(sc)
	if degraded <= base {
		t.Fatalf("50x WAN degradation did not slow the run: base %v, degraded %v", base, degraded)
	}
}

// TestStaticJoinEventsVisible asserts that observers passed to NewSystem see
// construction-time events: the dedicated cluster's 30 node joins.
func TestStaticJoinEventsVisible(t *testing.T) {
	log := event.NewLog(event.NodeJoined)
	sys, err := NewSystem(DedicatedClusterConfig(1), log)
	if err != nil {
		t.Fatal(err)
	}
	if log.Count(event.NodeJoined) != 30 {
		t.Fatalf("static joins observed = %d, want 30", log.Count(event.NodeJoined))
	}
	// A late Subscribe misses them by design but sees later events.
	late := event.NewLog()
	sys.Subscribe(late)
	if late.Total() != 0 {
		t.Fatal("late observer saw past events")
	}
	sys.RunWorkload(tinySchedule(1))
	if late.Count(event.JobSubmitted) == 0 || late.Count(event.TaskFinished) == 0 {
		t.Fatal("late observer saw no run events")
	}
}
