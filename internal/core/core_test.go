package core

import (
	"testing"

	"hog/internal/grid"
	"hog/internal/sim"
	"hog/internal/workload"
)

// tinySchedule returns a scaled-down Facebook schedule for fast tests.
func tinySchedule(seed int64) *workload.Schedule {
	return workload.Generate(seed, workload.Config{Scale: 0.1})
}

func TestDedicatedClusterRunsWorkload(t *testing.T) {
	sys := New(DedicatedClusterConfig(1))
	if got := len(sys.order); got != 30 {
		t.Fatalf("dedicated cluster has %d nodes, want 30 (Table III)", got)
	}
	// Slot audit: 20*4 + 10*2 = 100 map slots, 30 reduce slots.
	mapSlots, reduceSlots := 0, 0
	for _, tr := range sys.JT.AliveTrackers() {
		mapSlots += tr.MapSlots
		reduceSlots += tr.ReduceSlots
	}
	if mapSlots != 100 || reduceSlots != 30 {
		t.Fatalf("slots = %d/%d, want 100/30", mapSlots, reduceSlots)
	}
	res := sys.RunWorkload(tinySchedule(1))
	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs failed on the dedicated cluster", res.JobsFailed)
	}
	if res.ResponseTime <= 0 {
		t.Fatal("non-positive workload response time")
	}
	if len(res.JobResponses) == 0 {
		t.Fatal("no job responses recorded")
	}
}

func TestHOGReachesTargetAndRuns(t *testing.T) {
	cfg := HOGConfig(30, grid.ChurnNone, 2)
	sys := New(cfg)
	if n := sys.AwaitNodes(); n != 30 {
		t.Fatalf("pool reached %d nodes, want 30", n)
	}
	res := sys.RunWorkload(tinySchedule(2))
	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs failed", res.JobsFailed)
	}
	// Replication 10 should give strong map locality on a quiet pool.
	local := res.MapLocality[0]
	total := local + res.MapLocality[1] + res.MapLocality[2]
	if total == 0 || float64(local)/float64(total) < 0.5 {
		t.Fatalf("node-local maps %d/%d, want majority", local, total)
	}
}

func TestHOGSurvivesChurn(t *testing.T) {
	cfg := HOGConfig(30, grid.ChurnUnstable, 3)
	sys := New(cfg)
	res := sys.RunWorkload(tinySchedule(3))
	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs failed under churn (replication 10 should protect them)", res.JobsFailed)
	}
	if res.Pool.Preempted+res.Pool.BatchPreempted == 0 {
		t.Fatal("no preemptions under unstable churn; test not exercising recovery")
	}
	if res.Area <= 0 {
		t.Fatal("area under node curve not measured")
	}
}

func TestZombieModesBehave(t *testing.T) {
	run := func(z ZombieMode) (*System, *Result) {
		cfg := HOGConfig(25, grid.ChurnUnstable, 4)
		cfg.Zombie = z
		sys := New(cfg)
		res := sys.RunWorkload(tinySchedule(4))
		return sys, res
	}
	sysU, resU := run(ZombieUnfixed)
	if sysU.Zombies() == 0 {
		t.Fatal("unfixed mode produced no zombies under churn")
	}
	if resU.Counters.MapAttemptsFailed+resU.Counters.ReduceAttemptsFailed == 0 {
		t.Fatal("zombies absorbed no task attempts")
	}
	sysF, _ := run(ZombieFixed)
	if sysF.Zombies() != 0 {
		t.Fatal("fixed mode left zombies")
	}
	sysD, _ := run(ZombieDiskCheck)
	// Disk-check zombies shut down within the probe interval, so at the end
	// of a long run few remain (bounded by recent preemptions).
	if sysD.Zombies() > sysU.Zombies() {
		t.Fatalf("disk-check left %d zombies vs %d unfixed", sysD.Zombies(), sysU.Zombies())
	}
	for _, m := range []ZombieMode{ZombieFixed, ZombieUnfixed, ZombieDiskCheck, ZombieMode(9)} {
		if m.String() == "" {
			t.Fatal("empty zombie mode name")
		}
	}
}

func TestReportedSeriesFluctuatesAboveTarget(t *testing.T) {
	cfg := HOGConfig(25, grid.ChurnUnstable, 5)
	sys := New(cfg)
	res := sys.RunWorkload(tinySchedule(5))
	// The paper: "the reported number of nodes in the figure fluctuated
	// above 55 momentarily as nodes left but were not reported dead for
	// their heartbeat timeout."
	if res.Reported.Max() <= 25 {
		t.Logf("reported series never exceeded target (max %.0f); acceptable but unusual", res.Reported.Max())
	}
	if res.Reported.Len() == 0 {
		t.Fatal("no node samples recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("config with neither Grid nor Static did not panic")
		}
	}()
	New(Config{Seed: 1})
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		cfg := HOGConfig(20, grid.ChurnStable, 7)
		sys := New(cfg)
		return sys.RunWorkload(tinySchedule(7)).ResponseTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic response time: %v vs %v", a, b)
	}
}

func TestSeedsDiffer(t *testing.T) {
	respFor := func(seed int64) sim.Time {
		cfg := HOGConfig(20, grid.ChurnUnstable, seed)
		sys := New(cfg)
		return sys.RunWorkload(tinySchedule(seed)).ResponseTime
	}
	if respFor(11) == respFor(12) {
		t.Fatal("different seeds produced identical runs; RNG plumbing broken")
	}
}

func TestMoreNodesFaster(t *testing.T) {
	respFor := func(n int) sim.Time {
		cfg := HOGConfig(n, grid.ChurnNone, 8)
		sys := New(cfg)
		return sys.RunWorkload(tinySchedule(8)).ResponseTime
	}
	small, large := respFor(12), respFor(60)
	if large >= small {
		t.Fatalf("60 nodes (%v) not faster than 12 nodes (%v)", large, small)
	}
}
