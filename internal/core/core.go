// Package core assembles HOG — Hadoop On the Grid — from its substrates: the
// glide-in pool (internal/grid), HDFS with site awareness (internal/hdfs),
// and MapReduce (internal/mapred) over the fluid network model
// (internal/netmodel). It owns the worker-node lifecycle the paper describes
// in §III: daemons start when a glide-in begins, report to the stable
// central masters, and disappear — cleanly or as zombies — when the site
// preempts the job. It also builds the dedicated comparison cluster of
// Table III.
package core

import (
	"fmt"

	"hog/internal/disk"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/hdfs"
	"hog/internal/mapred"
	"hog/internal/metrics"
	"hog/internal/netmodel"
	"hog/internal/sim"
	"hog/internal/topology"
	"hog/internal/workload"
)

// ZombieMode selects how preempted worker daemons behave (§IV.D.1).
type ZombieMode int

// Zombie handling modes.
const (
	// ZombieFixed is HOG's final behaviour: daemons run as direct children
	// of the wrapper script, so the site's kill of the process tree takes
	// them down immediately.
	ZombieFixed ZombieMode = iota
	// ZombieUnfixed reproduces the first HOG iteration: double-forked
	// daemons survive the kill. The site deletes the working directory, the
	// datanode fails, but the tasktracker keeps heartbeating and accepting
	// tasks that fail immediately.
	ZombieUnfixed
	// ZombieDiskCheck is the paper's first fix: double-forked daemons
	// periodically probe the working directory (every 3 minutes) and shut
	// themselves down when it is gone.
	ZombieDiskCheck
)

// String names the mode.
func (z ZombieMode) String() string {
	switch z {
	case ZombieFixed:
		return "fixed"
	case ZombieUnfixed:
		return "unfixed"
	case ZombieDiskCheck:
		return "disk-check"
	}
	return "unknown"
}

// JobCosts holds the loadgen-like cost model shared by all benchmark jobs.
type JobCosts struct {
	MapCostPerMB      sim.Time
	SortCostPerMB     sim.Time
	ReduceCostPerMB   sim.Time
	MapSelectivity    float64
	ReduceSelectivity float64
}

// DefaultJobCosts returns the calibrated cost model (see DESIGN.md §5).
// Calibration target: the Table III cluster finishes the 88-job Facebook
// schedule in the paper's observed ~3000 s band, with the map phase
// dominating — the paper's equivalence point of ~100 single-slot HOG nodes
// against the cluster's 100 map slots requires map-side work to be the
// bottleneck resource.
func DefaultJobCosts() JobCosts {
	return JobCosts{
		MapCostPerMB:      1500 * sim.Millisecond,
		SortCostPerMB:     20 * sim.Millisecond,
		ReduceCostPerMB:   150 * sim.Millisecond,
		MapSelectivity:    1.0,
		ReduceSelectivity: 0.5,
	}
}

// StaticGroup describes one homogeneous group of permanent cluster nodes
// (used for the Table III dedicated cluster).
type StaticGroup struct {
	Count       int
	MapSlots    int
	ReduceSlots int
	DiskBytes   float64
	Domain      string
	// Speed derates compute on this group (1.0 = nominal); Table III's
	// older single-core Opteron-64 slaves run slot-for-slot slower than
	// the dual-core Opteron-275 group.
	Speed float64
}

// Config describes a complete system. Exactly one of Grid or Static drives
// the worker supply.
type Config struct {
	Seed int64

	// Grid configures an elastic glide-in worker pool.
	Grid *GridConfig
	// Static configures a fixed dedicated cluster.
	Static []StaticGroup

	Net    netmodel.Config
	HDFS   hdfs.Config
	MapRed mapred.Config
	Costs  JobCosts

	// Policies selects the pluggable decision points by registry name. Empty
	// fields keep the defaults, which reproduce the pre-extraction behaviour
	// bit for bit. Non-empty names override the corresponding subsystem
	// config fields (HDFS.PlacementPolicy etc.) and are validated against
	// the registries by Validate.
	Policies Policies

	// HeapScheduler runs the simulation on the retained binary-heap event
	// queue instead of the default site-sharded engine. The engines are
	// bit-identical on every run (hogbench -heap, CI cmp gate); the knob
	// exists for equivalence testing and benchmarking only.
	HeapScheduler bool

	// SequentialEngine runs the simulation on the single sequential timing
	// wheel instead of the default site-sharded parallel engine (hogbench
	// -seq, CI cmp gate). The sequential wheel is the oracle the sharded
	// engine is pinned against; results are bit-identical either way.
	SequentialEngine bool

	// Shards fixes the sharded engine's worker count (0 = one per CPU, the
	// default). Results are bit-identical at every shard count; the knob
	// exists so equivalence tests can pin specific counts.
	Shards int

	// Zombie selects preemption daemon behaviour (grid systems only).
	Zombie ZombieMode
	// DiskCheckInterval is the zombie self-check period (ZombieDiskCheck).
	DiskCheckInterval sim.Time
	// SampleInterval for the reported-alive node series.
	SampleInterval sim.Time
	// RunBound aborts a workload run that exceeds this simulated time.
	RunBound sim.Time

	// MasterBackoffInitial is a worker's first retry delay after its
	// heartbeat to a crashed master goes unanswered; successive failed
	// retries double it (plus seeded jitter) up to MasterBackoffMax.
	// Defaults to the heartbeat interval.
	MasterBackoffInitial sim.Time
	// MasterBackoffMax caps the retry backoff. The default (15 s) is
	// deliberately below the masters' 30 s dead timeouts so a worker always
	// re-registers before a recovered master could declare it dead.
	MasterBackoffMax sim.Time
	// MasterRetryTotal caps the TOTAL time a worker keeps retrying an
	// unresponsive master before its daemons give up for good (a real
	// daemon's ipc.client.connect retry budget). Capping only the
	// per-attempt delay (MasterBackoffMax) would retry forever; this bounds
	// the whole campaign. Giving up emits MasterGiveUp and the worker never
	// reconnects. The default (30 min) is far above every scripted outage in
	// the benchmark suite, so it never fires unless a scenario asks for it.
	MasterRetryTotal sim.Time
}

// Policies names the pluggable policies for the four extracted decision
// points. Each name must be registered in the owning subsystem (see
// mapred.SchedulerPolicyNames, mapred.SpeculationPolicyNames,
// hdfs.PlacementPolicyNames, hdfs.ReplicationOrderNames); the empty string
// selects that point's default.
type Policies struct {
	// Scheduler orders jobs for slot assignment ("fifo", "fair").
	Scheduler string
	// Speculation decides when a running task is a straggler worth a
	// redundant copy ("threshold", "site-load").
	Speculation string
	// Placement chooses replica targets for writes and recovery copies
	// ("grid", "random").
	Placement string
	// Replication orders the block-recovery queue ("fifo", "rarest").
	Replication string
}

// GridConfig holds the grid-specific parts of a Config.
type GridConfig struct {
	TargetNodes int
	Sites       []grid.SiteConfig
	Pool        grid.PoolConfig
	// ProvisionBound caps the wait for the pool to first reach its target.
	ProvisionBound sim.Time
}

// HOGConfig returns the paper's HOG configuration at the given pool size and
// churn profile: five OSG sites, 1+1 slots per node, replication 10,
// site-aware placement, 30 s dead timeouts for both masters.
func HOGConfig(targetNodes int, churn grid.ChurnProfile, seed int64) Config {
	mr := mapred.DefaultConfig()
	mr.TrackerTimeout = 30 * sim.Second
	// WAN RPC between trackers and the central JobTracker inflates task
	// startup (§III.B.2: "it is expected that the startup and data transfer
	// initiations will be increased").
	mr.TaskStartupOverhead = 2000 * sim.Millisecond
	return Config{
		Seed: seed,
		Grid: &GridConfig{
			TargetNodes:    targetNodes,
			Sites:          grid.OSGSites(churn),
			Pool:           grid.DefaultPoolConfig(),
			ProvisionBound: 4 * sim.Hour,
		},
		Net:               netmodel.DefaultConfig(),
		HDFS:              hdfs.HOGConfig(),
		MapRed:            mr,
		Costs:             DefaultJobCosts(),
		Zombie:            ZombieFixed,
		DiskCheckInterval: 3 * sim.Minute,
		SampleInterval:    10 * sim.Second,
		RunBound:          48 * sim.Hour,
	}
}

// LargeGridConfig returns the HOG configuration on the twelve-site
// LargeGridSites preset, for scale-out runs around 1000 nodes (the ROADMAP's
// beyond-the-paper scenarios). Everything except the site list matches
// HOGConfig; the provisioning bound is widened because filling a
// thousand-slot pool takes longer than filling 180 slots.
func LargeGridConfig(targetNodes int, churn grid.ChurnProfile, seed int64) Config {
	c := HOGConfig(targetNodes, churn, seed)
	c.Grid.Sites = grid.LargeGridSites(churn)
	c.Grid.ProvisionBound = 8 * sim.Hour
	return c
}

// MegaGridConfig returns the HOG configuration on the forty-site
// MegaGridSites preset, for runs around 10,000 nodes — the MEGA-GRID scale
// at which the timing-wheel engine's advantage over the binary heap is the
// headline number. Everything except the site list matches HOGConfig; the
// provisioning bound is widened further than LARGE-GRID's because filling
// ten thousand slots takes correspondingly longer.
func MegaGridConfig(targetNodes int, churn grid.ChurnProfile, seed int64) Config {
	c := HOGConfig(targetNodes, churn, seed)
	c.Grid.Sites = grid.MegaGridSites(churn)
	c.Grid.ProvisionBound = 12 * sim.Hour
	return c
}

// GigaGridConfig returns the HOG configuration on the ~104-site
// GigaGridSites preset, for runs around 100,000 nodes — the GIGA-GRID
// scale the site-sharded parallel engine exists for: with roughly a
// hundred site wheels settling concurrently between lookahead barriers,
// the run parallelizes inside a single simulation while remaining
// bit-identical to the sequential oracle (hogbench -exp giga -seq).
// Everything except the site list matches HOGConfig; the provisioning
// bound is widened again because filling a hundred thousand slots takes
// correspondingly longer.
func GigaGridConfig(targetNodes int, churn grid.ChurnProfile, seed int64) Config {
	c := HOGConfig(targetNodes, churn, seed)
	c.Grid.Sites = grid.GigaGridSites(churn)
	c.Grid.ProvisionBound = 16 * sim.Hour
	return c
}

// DedicatedClusterConfig returns the Table III comparison cluster: one
// master (implicit, the stable server), 20 slave nodes with 4 map + 1 reduce
// slots and 10 with 2 map + 1 reduce slots, 1 Gbps Ethernet, one rack,
// stock Hadoop settings (replication 3).
func DedicatedClusterConfig(seed int64) Config {
	// Hardware-era calibration: the Table III boxes are 2006-generation
	// Opterons with commodity disks, whereas 2012 OSG worker nodes are
	// newer. The cluster gets slightly slower disks, and the older
	// single-core Opteron-64 group a per-slot compute derating — the two
	// free parameters of the Figure 4 calibration (see EXPERIMENTS.md).
	net := netmodel.DefaultConfig()
	net.DiskBps = 80e6
	return Config{
		Seed: seed,
		Static: []StaticGroup{
			{Count: 20, MapSlots: 4, ReduceSlots: 1, DiskBytes: 500e9, Domain: "cluster.local", Speed: 1.0},
			{Count: 10, MapSlots: 2, ReduceSlots: 1, DiskBytes: 500e9, Domain: "cluster.local", Speed: 0.85},
		},
		Net:            net,
		HDFS:           hdfs.DefaultConfig(),
		MapRed:         mapred.DefaultConfig(),
		Costs:          DefaultJobCosts(),
		SampleInterval: 10 * sim.Second,
		RunBound:       48 * sim.Hour,
	}
}

type workerHealth int

const (
	workerHealthy workerHealth = iota
	workerZombie
	workerDead
)

type worker struct {
	node   *grid.Node
	id     netmodel.NodeID
	health workerHealth
	// shard is the worker's site index, cached so the per-beat driver loop
	// can tag each worker's heartbeat work onto its site's engine shard
	// without a site lookup per beat.
	shard int
	// dn and tr are the worker's master-side records, held directly so the
	// per-beat driver loop doesn't pay a map probe per worker per master.
	dn *hdfs.DatanodeInfo
	tr *mapred.TaskTracker

	// Master-loss retry state, per master (see retryNN/retryJT). nnLost is
	// set when a heartbeat to a crashed namenode goes unanswered; the worker
	// then retries at nnRetryAt with exponential backoff nnBackoff, and
	// re-registers when the master is back. nnLostSince anchors the total
	// retry-duration cap (Config.MasterRetryTotal); once it is exceeded the
	// worker sets nnGaveUp and stops retrying for good. Likewise jt* for the
	// JobTracker.
	nnLost      bool
	jtLost      bool
	nnGaveUp    bool
	jtGaveUp    bool
	nnRetryAt   sim.Time
	jtRetryAt   sim.Time
	nnBackoff   sim.Time
	jtBackoff   sim.Time
	nnLostSince sim.Time
	jtLostSince sim.Time

	// Gray-degradation state (faults.go). grayLoss is the probability each
	// heartbeat beat is dropped, drawn from the dedicated counting "gray"
	// stream — zero fault-free, so fault-free runs make zero draws there.
	// origSpeed remembers the tracker's nominal speed across a slow-disk
	// derating so RestoreNodes can undo it exactly.
	grayLoss  float64
	origSpeed float64
}

// System is a running HOG or dedicated-cluster instance.
type System struct {
	Eng  *sim.Engine
	Net  *netmodel.Network
	Disk *disk.Tracker
	Pool *grid.Pool // nil for static clusters
	NN   *hdfs.Namenode
	JT   *mapred.JobTracker

	cfg            Config
	mapper         *topology.Mapper
	workers        map[netmodel.NodeID]*worker
	order          []netmodel.NodeID
	workerList     []*worker // join order, parallel to order
	bus            *event.Bus
	scenarios      []*Scenario
	scenariosArmed bool
	// timedKeys maps "offset|target-key" of every applied timed step to its
	// description, so Apply can reject a later scenario scheduling a
	// conflicting action on the same target at the same instant.
	timedKeys map[string]string

	// Fault-injection bookkeeping (faults.go): which sites and nodes carry
	// an installed partition (name/ID -> cut mode), which nodes are under
	// gray degradation, and the dedicated counting RNG stream gray
	// heartbeat-loss draws come from (always constructed, drawn from only
	// under injected gray loss; see RNGStreams).
	partedSites map[string]string
	partedNodes map[netmodel.NodeID]string
	degraded    map[netmodel.NodeID]struct{}
	gray        *grayStream

	// Run-phase state for the snapshot subsystem: where the system is in its
	// lifecycle, and the schedule/anchor the in-flight run was started with
	// (valid once phase reaches PhaseStarted).
	phase    RunPhase
	runStart sim.Time
	runSched *workload.Schedule
	// diverged marks a system that had a divergence scenario armed after the
	// workload started (a what-if fork branch). Such a system can no longer
	// be snapshotted: its event history is not reproducible from config +
	// applied scenarios alone.
	diverged bool

	// Reported tracks the node count the masters believe alive; it can
	// exceed the target momentarily because departed nodes linger until
	// their heartbeat timeout (paper §IV.B).
	Reported *metrics.Series

	zombies int
}

// New builds a system from cfg, panicking on an invalid configuration (the
// legacy facade behaviour). NewSystem is the error-returning constructor;
// both run the same Validate.
func New(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewSystem builds a system from cfg, returning a descriptive error when the
// configuration is invalid. Observers passed here are subscribed before any
// subsystem is built, so they see the full event stream from the first
// static-node join onward. For grid systems the pool target is set but
// provisioning has not run yet; call AwaitNodes or RunWorkload.
func NewSystem(cfg Config, obs ...event.Observer) (*System, error) {
	if err := Validate(cfg); err != nil {
		return nil, err
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 10 * sim.Second
	}
	if cfg.RunBound <= 0 {
		cfg.RunBound = 48 * sim.Hour
	}
	if cfg.DiskCheckInterval <= 0 {
		cfg.DiskCheckInterval = 3 * sim.Minute
	}
	if cfg.Costs == (JobCosts{}) {
		cfg.Costs = DefaultJobCosts()
	}
	if cfg.MasterBackoffMax <= 0 {
		cfg.MasterBackoffMax = 15 * sim.Second
	}
	if cfg.MasterRetryTotal <= 0 {
		cfg.MasterRetryTotal = 30 * sim.Minute
	}
	// Fold the top-level policy selections into the subsystem configs before
	// the masters are built; Validate has already vetted the names.
	if p := cfg.Policies; p != (Policies{}) {
		if p.Scheduler != "" {
			cfg.MapRed.SchedulerPolicy = p.Scheduler
		}
		if p.Speculation != "" {
			cfg.MapRed.SpeculationPolicy = p.Speculation
		}
		if p.Placement != "" {
			cfg.HDFS.PlacementPolicy = p.Placement
		}
		if p.Replication != "" {
			cfg.HDFS.ReplicationOrder = p.Replication
		}
	}
	// Conservative lookahead for the sharded engine: sites only couple
	// through the WAN (one-way latency) and through master heartbeats
	// (interval-paced), so no cross-site causality can act faster than
	// their sum — within a window that wide, per-site wheels settle
	// independently. Any positive window is correct (bit-identity never
	// depends on it); this one just amortizes barriers best.
	wan := cfg.Net.WANLatency
	if wan <= 0 {
		wan = netmodel.DefaultConfig().WANLatency
	}
	hb0 := cfg.MapRed.HeartbeatInterval
	if hb0 <= 0 {
		hb0 = mapred.DefaultConfig().HeartbeatInterval
	}
	s := &System{
		Eng: sim.NewEngine(sim.Config{
			Seed:             cfg.Seed,
			HeapScheduler:    cfg.HeapScheduler,
			SequentialEngine: cfg.SequentialEngine,
			Shards:           cfg.Shards,
			Lookahead:        wan + hb0,
		}),
		cfg:      cfg,
		mapper:   topology.NewMapper(),
		workers:  make(map[netmodel.NodeID]*worker),
		bus:      &event.Bus{},
		Reported: metrics.NewSeries("reported-nodes"),
		gray:     newGrayStream(cfg.Seed),
	}
	for _, o := range obs {
		s.bus.Subscribe(o)
	}
	s.Net = netmodel.New(s.Eng, cfg.Net)
	s.Disk = disk.NewTracker()
	s.NN = hdfs.NewNamenode(s.Eng, s.Net, s.Disk, cfg.HDFS)
	s.NN.Events = s.bus
	s.JT = mapred.NewJobTracker(s.Eng, s.Net, s.NN, s.Disk, cfg.MapRed)
	s.JT.Events = s.bus
	s.JT.DiskUsable = func(n netmodel.NodeID) bool {
		w := s.workers[n]
		return w != nil && w.health == workerHealthy
	}
	s.JT.DataServable = func(n netmodel.NodeID) bool {
		w := s.workers[n]
		return w != nil && w.health == workerHealthy
	}
	s.JT.OnDiskOverflow = s.onDiskOverflow
	s.NN.Start()
	s.JT.Start()

	if cfg.Grid != nil {
		s.Pool = grid.NewPool(s.Eng, s.Net, cfg.Grid.Sites, cfg.Grid.Pool)
		s.Pool.Events = s.bus
		s.Pool.OnJoin = s.onJoin
		s.Pool.OnPreempt = s.onPreempt
	} else {
		s.buildStatic()
	}

	// Heartbeat driver: healthy workers report to both masters, zombies
	// only to the JobTracker (their datanode died with the working dir).
	// The loop walks worker records directly — at MEGA-GRID scale this
	// single closure touches every worker every beat, and the old
	// three-maps-per-worker probing dominated whole runs. Master-crash
	// handling rides the same beats: a worker whose master is down flips to
	// backed-off retries (retryNN/retryJT) and re-registers on recovery.
	// With no master faults this draws zero RNG and runs the PR-5 path.
	hb := s.JT.Config().HeartbeatInterval
	if s.cfg.MasterBackoffInitial <= 0 {
		s.cfg.MasterBackoffInitial = hb
	}
	s.Eng.Every(hb, func() {
		nnDown := s.NN.Down()
		jtDown := s.JT.Down()
		now := s.Eng.Now()
		for _, w := range s.workerList {
			// Site-shard the fallout of each beat (task timers, retry
			// schedules) so the sharded engine settles it on the worker's
			// site wheel; pure load placement, never ordering.
			s.Eng.SetShard(w.shard)
			if w.health == workerDead {
				continue
			}
			// A partitioned worker's beats drop silently: the masters'
			// dead timeouts fire exactly as for a crash, but the daemons
			// are intact and heal-side recovery revives them (faults.go).
			// The worker does not enter the master-loss retry state — its
			// problem is the network, not the master.
			if !s.Net.MasterReachable(w.id) {
				continue
			}
			// Gray heartbeat loss: each beat is dropped with probability
			// grayLoss, drawn from the dedicated counting "gray" stream.
			// Fault-free grayLoss is zero everywhere and no draw happens,
			// keeping fault-free runs byte-identical draw-for-draw.
			if w.grayLoss > 0 && s.gray.rnd.Float64() < w.grayLoss {
				continue
			}
			switch w.health {
			case workerHealthy:
				if nnDown || w.nnLost {
					s.retryNN(w, now, nnDown)
				} else {
					s.NN.HeartbeatDatanode(w.dn)
				}
				if jtDown || w.jtLost {
					s.retryJT(w, now, jtDown)
				} else {
					s.JT.HeartbeatTracker(w.tr)
				}
			case workerZombie:
				if jtDown || w.jtLost {
					s.retryJT(w, now, jtDown)
				} else {
					s.JT.HeartbeatTracker(w.tr)
				}
			}
		}
	})
	s.Eng.Every(cfg.SampleInterval, func() {
		s.Reported.Add(s.Eng.Now(), float64(s.reportedAlive()))
	})
	return s, nil
}

// Subscribe attaches an observer to the system's event bus. Observers added
// here see every event from this point on; to also capture construction-time
// events (static-node joins) pass the observer to NewSystem instead.
// Observers receive facts synchronously and must not mutate the simulation:
// the same seed yields the same event sequence with zero or any number of
// observers attached.
func (s *System) Subscribe(o event.Observer) { s.bus.Subscribe(o) }

// reportedAlive counts trackers the JobTracker still believes alive. The
// count is a pure read over the worker list, so at 100k-worker scale the
// sampler fans it out across parallel chunks; integer partial sums added
// in chunk order are exactly the sequential count.
func (s *System) reportedAlive() int {
	var counts [sim.ScanChunks]int
	s.Eng.ParallelScan(len(s.workerList), 4096, func(c, lo, hi int) {
		n := 0
		for _, w := range s.workerList[lo:hi] {
			if w.tr != nil && w.tr.Alive {
				n++
			}
		}
		counts[c] = n
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// Zombies returns the number of currently zombie workers.
func (s *System) Zombies() int { return s.zombies }

// CrashNameNode fails the namenode process: soft state (the block map) is
// lost; physical blocks on datanodes survive. Restart via RestartMasters.
func (s *System) CrashNameNode() { s.NN.Crash() }

// CrashJobTracker fails the JobTracker process: in-flight task state is
// lost; completed map output on surviving nodes is kept across restart.
func (s *System) CrashJobTracker() { s.JT.Crash() }

// RestartMasters restarts whichever masters are down. The namenode enters
// safe mode until enough block reports arrive; trackers re-register with
// the JobTracker as their backed-off retries land.
func (s *System) RestartMasters() {
	if s.NN.Down() {
		s.NN.Restart()
	}
	if s.JT.Down() {
		s.JT.Restart()
	}
}

// jitter spreads a retry delay over [d, 1.5d] so a restarted master is not
// hit by every worker on the same beat. Drawn from the engine RNG, but only
// ever on fault paths — fault-free runs consume no randomness here.
func (s *System) jitter(d sim.Time) sim.Time {
	return d + sim.Time(s.Eng.Rand().Int63n(int64(d)/2+1))
}

// retryNN drives one worker's backed-off reconnection to the namenode.
// Retries are quantized to heartbeat beats: the worker acts on the first
// beat at or after its scheduled retry instant. A campaign that has been
// failing for MasterRetryTotal gives up for good: the daemon exits its
// retry loop (MasterGiveUp) and never reconnects, even if the master later
// returns — the dead scan reaps it like any silent node.
func (s *System) retryNN(w *worker, now sim.Time, down bool) {
	if !w.nnLost {
		// Heartbeat went unanswered: note the loss, back off.
		w.nnLost = true
		w.nnLostSince = now
		w.nnBackoff = s.cfg.MasterBackoffInitial
		w.nnRetryAt = now + s.jitter(w.nnBackoff)
		return
	}
	if w.nnGaveUp || now < w.nnRetryAt {
		return
	}
	if down {
		if now-w.nnLostSince >= s.cfg.MasterRetryTotal {
			w.nnGaveUp = true
			s.emitGiveUp(w, "namenode")
			return
		}
		// Retry failed: double the backoff, up to the cap.
		w.nnBackoff *= 2
		if w.nnBackoff > s.cfg.MasterBackoffMax {
			w.nnBackoff = s.cfg.MasterBackoffMax
		}
		w.nnRetryAt = now + s.jitter(w.nnBackoff)
		return
	}
	w.nnLost = false
	w.nnBackoff = 0
	s.NN.Reregister(w.id)
}

// retryJT is retryNN for the JobTracker connection.
func (s *System) retryJT(w *worker, now sim.Time, down bool) {
	if !w.jtLost {
		w.jtLost = true
		w.jtLostSince = now
		w.jtBackoff = s.cfg.MasterBackoffInitial
		w.jtRetryAt = now + s.jitter(w.jtBackoff)
		return
	}
	if w.jtGaveUp || now < w.jtRetryAt {
		return
	}
	if down {
		if now-w.jtLostSince >= s.cfg.MasterRetryTotal {
			w.jtGaveUp = true
			s.emitGiveUp(w, "jobtracker")
			return
		}
		w.jtBackoff *= 2
		if w.jtBackoff > s.cfg.MasterBackoffMax {
			w.jtBackoff = s.cfg.MasterBackoffMax
		}
		w.jtRetryAt = now + s.jitter(w.jtBackoff)
		return
	}
	w.jtLost = false
	w.jtBackoff = 0
	s.JT.ReregisterTracker(w.tr)
}

// emitGiveUp reports a worker abandoning its master-reconnect campaign.
func (s *System) emitGiveUp(w *worker, master string) {
	if s.bus.Active() {
		ev := event.At(event.MasterGiveUp, s.Eng.Now())
		ev.Node = w.id
		ev.Detail = master
		s.bus.Emit(ev)
	}
}

func (s *System) buildStatic() {
	site := s.Net.AddSite("cluster.local", 10e9, 10e9)
	seq := 0
	for _, g := range s.cfg.Static {
		for i := 0; i < g.Count; i++ {
			seq++
			host := fmt.Sprintf("node%03d.%s", seq, g.Domain)
			id := s.Net.AddNode(site, host)
			s.Disk.SetCapacity(id, g.DiskBytes)
			dn := s.NN.Register(id, host)
			tr := s.JT.RegisterTracker(id, host, s.mapper.Site(host), g.MapSlots, g.ReduceSlots)
			if g.Speed > 0 {
				tr.Speed = g.Speed
			}
			w := &worker{id: id, health: workerHealthy, dn: dn, tr: tr, shard: int(s.Net.SiteOf(id))}
			s.workers[id] = w
			s.order = append(s.order, id)
			s.workerList = append(s.workerList, w)
			if s.bus.Active() {
				ev := event.At(event.NodeJoined, s.Eng.Now())
				ev.Node = id
				ev.Site = "cluster.local"
				s.bus.Emit(ev)
			}
		}
	}
}

// onJoin starts the Hadoop daemons on a fresh glide-in.
func (s *System) onJoin(n *grid.Node) {
	s.Disk.SetCapacity(n.ID, n.DiskCapacity)
	dn := s.NN.Register(n.ID, n.Hostname)
	tr := s.JT.RegisterTracker(n.ID, n.Hostname, s.mapper.Site(n.Hostname), n.MapSlots, n.ReduceSlots)
	w := &worker{node: n, id: n.ID, health: workerHealthy, dn: dn, tr: tr, shard: int(s.Net.SiteOf(n.ID))}
	s.workers[n.ID] = w
	s.order = append(s.order, n.ID)
	s.workerList = append(s.workerList, w)
}

// onPreempt applies the configured daemon behaviour when a site kills the
// glide-in and removes its working directory.
func (s *System) onPreempt(n *grid.Node) {
	w := s.workers[n.ID]
	if w == nil || w.health == workerDead {
		return
	}
	s.Disk.Clear(n.ID)
	// The site reclaimed the machine: its disk contents are genuinely gone,
	// so a later partition heal must not "recover" replicas from it.
	s.NN.MarkPhysicallyLost(n.ID)
	switch s.cfg.Zombie {
	case ZombieFixed:
		// Direct-child daemons die with the process tree: tasks stop
		// silently and the JobTracker only notices at the heartbeat
		// timeout.
		w.health = workerDead
		s.JT.NodeCrashed(n.ID)
	case ZombieUnfixed:
		// Double-forked daemons survive, the working directory does not:
		// running tasks fail with reports and the tasktracker keeps
		// accepting doomed work.
		w.health = workerZombie
		s.zombies++
		s.emitZombie(n)
		s.JT.NodeLostWorkdir(n.ID)
	case ZombieDiskCheck:
		w.health = workerZombie
		s.zombies++
		s.emitZombie(n)
		s.JT.NodeLostWorkdir(n.ID)
		// The periodic working-directory probe notices within one interval
		// and shuts the daemons down.
		delay := sim.Time(s.Eng.Rand().Int63n(int64(s.cfg.DiskCheckInterval))) + sim.Second
		s.Eng.After(delay, func() {
			if w.health == workerZombie {
				w.health = workerDead
				s.zombies--
			}
		})
	}
}

// emitZombie reports that a preemption left daemons behind without their
// working directory (§IV.D.1).
func (s *System) emitZombie(n *grid.Node) {
	if s.bus.Active() {
		ev := event.At(event.ZombieDetected, s.Eng.Now())
		ev.Node = n.ID
		ev.Site = n.SiteName
		s.bus.Emit(ev)
	}
}

// onDiskOverflow shuts down a worker that ran out of scratch space
// (§IV.D.2): the failure is reported to the jobtracker and the daemons stop,
// so the pool requests a replacement.
func (s *System) onDiskOverflow(n netmodel.NodeID) {
	w := s.workers[n]
	if w == nil || w.health == workerDead {
		return
	}
	if w.health == workerZombie {
		s.zombies--
	}
	w.health = workerDead
	// An overflowed scratch disk takes the node's data down with the
	// daemons — nothing survives for a partition heal to hand back.
	s.NN.MarkPhysicallyLost(n)
	s.JT.NodeCrashed(n)
	if s.Pool != nil {
		s.Pool.Kill(n)
	}
}

// AwaitNodes runs the simulation until the pool reaches its configured
// target (grid systems). It returns the reached node count.
func (s *System) AwaitNodes() int {
	if s.Pool == nil {
		return len(s.order)
	}
	g := s.cfg.Grid
	s.Pool.SetTarget(g.TargetNodes)
	bound := s.Eng.Now() + g.ProvisionBound
	s.Eng.RunWhile(func() bool {
		return s.Pool.AliveCount() < g.TargetNodes && s.Eng.Now() < bound
	})
	return s.Pool.AliveCount()
}

// Result aggregates one workload execution.
type Result struct {
	// ResponseTime is the paper's headline metric: completion of the last
	// job minus submission of the first.
	ResponseTime sim.Time
	Start, End   sim.Time

	JobResponses []sim.Time
	JobBins      []int
	JobsFailed   int

	// Area is the Table IV statistic: node-seconds of reported availability
	// over the execution window.
	Area     float64
	Reported *metrics.Series

	Pool grid.Stats
	Net  netmodel.Stats
	NN   hdfs.Stats

	// MapLocality aggregates locality counters over all jobs.
	MapLocality [3]int
	// Counters aggregated over all jobs.
	Counters mapred.Counters

	// TaskSeconds sums completed map and reduce execution time over all
	// jobs — the useful-work numerator of the harness's slot-utilisation
	// metric (Area supplies the available node-seconds denominator).
	TaskSeconds float64
}

// Summary returns response-time order statistics over jobs.
func (r *Result) Summary() metrics.Summary { return metrics.Summarize(r.JobResponses) }

// RunPhase identifies where a system is in its workload lifecycle. The
// snapshot subsystem uses it to decide what a snapshot must capture and
// which systems can be captured at all.
type RunPhase int

// Lifecycle phases.
const (
	// PhaseBuilt: constructed, workload not started.
	PhaseBuilt RunPhase = iota
	// PhaseStarted: StartWorkload has run; the schedule is in flight.
	PhaseStarted
	// PhaseFinished: FinishWorkload has assembled the Result.
	PhaseFinished
)

// String names the phase.
func (p RunPhase) String() string {
	switch p {
	case PhaseBuilt:
		return "built"
	case PhaseStarted:
		return "started"
	case PhaseFinished:
		return "finished"
	}
	return "unknown"
}

// Phase returns the system's current lifecycle phase.
func (s *System) Phase() RunPhase { return s.phase }

// Diverged reports whether a divergence scenario was armed after the
// workload started (ApplyDivergence); such a system cannot be snapshotted.
func (s *System) Diverged() bool { return s.diverged }

// Config returns the system's normalized configuration — the input Config
// with defaults filled in, exactly as a snapshot must record it to rebuild
// an identical system.
func (s *System) Config() Config { return s.cfg }

// RunStart returns the workload anchor instant (valid once the phase is
// PhaseStarted): provisioning is complete and the first submission timer is
// scheduled relative to it.
func (s *System) RunStart() sim.Time { return s.runStart }

// RunSchedule returns the schedule the in-flight run was started with, or
// nil before StartWorkload.
func (s *System) RunSchedule() *workload.Schedule { return s.runSched }

// ScenarioSpecs returns the serializable form of every applied scenario, in
// application order. It fails if any applied scenario contains a When step,
// whose closures cannot be serialized.
func (s *System) ScenarioSpecs() ([]ScenarioSpec, error) {
	var out []ScenarioSpec
	for _, sc := range s.scenarios {
		spec, err := sc.Spec()
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// RNGStream describes one named simulator random stream: its seed and how
// many values it has drawn (the stream's position).
type RNGStream struct {
	Name  string `json:"name"`
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// RNGStreams enumerates every random stream that can influence the
// simulation. There are exactly two: the engine's seeded stream, which all
// model layers draw through (Eng.Rand()), and the "gray" stream gray
// heartbeat-loss decisions draw through (faults.go) — kept separate so
// injecting gray loss cannot shift the engine stream consumed by the
// fault-free model, and counted so snapshots can verify its position too.
// Fault-free runs draw zero values from the gray stream. Workload generation
// (internal/workload) and chaos-schedule generation (experiments) seed their
// own rand instances, but those run before the simulation and their output
// rides in snapshots as data — they are generators, not simulator streams.
// Snapshot equivalence tests assert the replayed draw counts match the
// recorded ones, which catches any code path growing a hidden rand source.
func (s *System) RNGStreams() []RNGStream {
	return []RNGStream{
		{Name: "engine", Seed: s.Eng.Seed(), Draws: s.Eng.RandDraws()},
		{Name: "gray", Seed: s.gray.src.SeedValue(), Draws: s.gray.src.Draws()},
	}
}

// StartWorkload provisions (if needed), stages the schedule's input files,
// and schedules the job submissions, leaving the run in flight. It is the
// first half of RunWorkload; drive the run forward with RunTo and assemble
// the Result with FinishWorkload. A workload can be started once.
func (s *System) StartWorkload(sched *workload.Schedule) error {
	if s.phase != PhaseBuilt {
		return fmt.Errorf("core: StartWorkload on a %v system", s.phase)
	}
	s.startWorkload(sched)
	return nil
}

func (s *System) startWorkload(sched *workload.Schedule) {
	s.AwaitNodes()
	s.armScenarios()
	for _, js := range sched.Jobs {
		s.NN.SeedFile("/in/"+js.Name, js.InputBytes, 0)
	}
	start := s.Eng.Now()
	for _, js := range sched.Jobs {
		js := js
		s.Eng.Schedule(start+js.Submit, func() {
			s.JT.Submit(mapred.JobConfig{
				Name:              js.Name,
				InputFile:         "/in/" + js.Name,
				Reduces:           js.Reduces,
				MapSelectivity:    s.cfg.Costs.MapSelectivity,
				ReduceSelectivity: s.cfg.Costs.ReduceSelectivity,
				MapCostPerMB:      s.cfg.Costs.MapCostPerMB,
				SortCostPerMB:     s.cfg.Costs.SortCostPerMB,
				ReduceCostPerMB:   s.cfg.Costs.ReduceCostPerMB,
				Bin:               js.Bin,
			})
		})
	}
	s.phase = PhaseStarted
	s.runStart = start
	s.runSched = sched
}

// runCond returns the workload-completion predicate: keep running until the
// submission window has passed and every job is done, or the run bound is
// hit. The predicate is a pure read and monotone in simulated time, so it
// can be re-created at any point of the run (RunTo, FinishWorkload) without
// changing which events fire.
func (s *System) runCond() func() bool {
	start := s.runStart
	span := s.runSched.Span()
	bound := start + s.cfg.RunBound
	submitted := false
	return func() bool {
		if !submitted {
			submitted = s.Eng.Now() > start+span
		}
		return !(submitted && s.JT.AllDone()) && s.Eng.Now() < bound
	}
}

// RunTo advances an in-flight run up to instant t: events at or before t
// fire exactly as an uninterrupted run would fire them, and the clock never
// advances past the last fired event (so a later RunTo or FinishWorkload
// continues seamlessly). Stops early if the workload completes first.
func (s *System) RunTo(t sim.Time) error {
	if s.phase != PhaseStarted {
		return fmt.Errorf("core: RunTo on a %v system", s.phase)
	}
	s.Eng.RunUntilWhile(t, s.runCond())
	return nil
}

// FinishWorkload runs an in-flight workload to completion and assembles the
// Result. StartWorkload + FinishWorkload is exactly RunWorkload; any number
// of RunTo calls may sit between them without changing the outcome.
func (s *System) FinishWorkload() *Result {
	if s.phase != PhaseStarted {
		panic(fmt.Sprintf("core: FinishWorkload on a %v system", s.phase))
	}
	s.Eng.RunWhile(s.runCond())
	s.phase = PhaseFinished
	start := s.runStart
	end := s.Eng.Now()

	res := &Result{
		ResponseTime: end - start,
		Start:        start,
		End:          end,
		Reported:     s.Reported,
		Area:         s.Reported.AreaBetween(start, end),
		Net:          s.Net.Stats(),
		NN:           s.NN.Stats(),
	}
	if s.Pool != nil {
		res.Pool = s.Pool.Stats()
	}
	for _, j := range s.JT.Jobs() {
		if j.State == mapred.JobFailed {
			res.JobsFailed++
		} else {
			res.JobResponses = append(res.JobResponses, j.ResponseTime())
			res.JobBins = append(res.JobBins, j.Config.Bin)
		}
		c := j.Counters()
		for l := 0; l < 3; l++ {
			res.MapLocality[l] += c.Locality[l]
		}
		res.Counters.MapAttemptsStarted += c.MapAttemptsStarted
		res.Counters.MapAttemptsFailed += c.MapAttemptsFailed
		res.Counters.ReduceAttemptsStarted += c.ReduceAttemptsStarted
		res.Counters.ReduceAttemptsFailed += c.ReduceAttemptsFailed
		res.Counters.SpeculativeMaps += c.SpeculativeMaps
		res.Counters.SpeculativeReduces += c.SpeculativeReduces
		res.Counters.MapsReExecuted += c.MapsReExecuted
		res.Counters.FetchFailures += c.FetchFailures
		res.TaskSeconds += j.CompletedWork().Seconds()
	}
	return res
}

// RunWorkload provisions (if needed), stages the schedule's input files,
// submits jobs on schedule, and runs to completion. It mirrors the paper's
// procedure: "we first configure a given number of nodes that HOG will
// achieve and wait until HOG reaches this number. Then, we start to upload
// input data and execute the evaluation workload."
func (s *System) RunWorkload(sched *workload.Schedule) *Result {
	s.startWorkload(sched)
	return s.FinishWorkload()
}
