package core

import (
	"errors"
	"fmt"

	"hog/internal/hdfs"
	"hog/internal/mapred"
)

// Validate checks a Config for structural errors before any simulation state
// is built. It is the single validation path for both constructors: the
// error-returning NewSystem surfaces the message, and the legacy panicking
// New facade panics with the same one.
func Validate(cfg Config) error {
	if cfg.Grid != nil && len(cfg.Static) > 0 {
		return errors.New("core: Grid and Static are mutually exclusive; configure exactly one worker supply")
	}
	if cfg.Grid == nil && len(cfg.Static) == 0 {
		return errors.New("core: no worker supply; configure exactly one of Grid or Static")
	}
	if g := cfg.Grid; g != nil {
		if len(g.Sites) == 0 {
			return errors.New("core: grid config has no sites")
		}
		if g.TargetNodes < 0 {
			return fmt.Errorf("core: negative grid target %d", g.TargetNodes)
		}
		seen := make(map[string]bool, len(g.Sites))
		for i, sc := range g.Sites {
			if sc.Name == "" {
				return fmt.Errorf("core: site %d has no name", i)
			}
			if seen[sc.Name] {
				return fmt.Errorf("core: duplicate site name %q", sc.Name)
			}
			seen[sc.Name] = true
			if sc.Capacity < 0 {
				return fmt.Errorf("core: site %q has negative capacity %d", sc.Name, sc.Capacity)
			}
			if sc.BatchPreemptFrac < 0 || sc.BatchPreemptFrac > 1 {
				return fmt.Errorf("core: site %q batch preemption fraction %g outside [0,1]", sc.Name, sc.BatchPreemptFrac)
			}
		}
	}
	for i, g := range cfg.Static {
		if g.Count < 0 {
			return fmt.Errorf("core: static group %d has negative count %d", i, g.Count)
		}
		if g.Count > 0 && g.MapSlots <= 0 && g.ReduceSlots <= 0 {
			return fmt.Errorf("core: static group %d has no task slots", i)
		}
	}
	if err := validatePolicies(cfg); err != nil {
		return err
	}
	if cfg.SampleInterval < 0 {
		return fmt.Errorf("core: negative sample interval %v", cfg.SampleInterval)
	}
	if cfg.RunBound < 0 {
		return fmt.Errorf("core: negative run bound %v", cfg.RunBound)
	}
	return nil
}

// validatePolicies vets every policy name — whether set through the
// top-level Policies block or directly on the subsystem configs — against
// the owning registry, rejects combinations that cannot work, and checks
// fair-share pool parameters. Construction never re-checks: NewSystem folds
// Policies into the subsystem configs after this passes.
func validatePolicies(cfg Config) error {
	sched := cfg.Policies.Scheduler
	if sched == "" {
		sched = cfg.MapRed.SchedulerPolicy
	}
	if _, err := mapred.NewSchedulerPolicy(sched); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if cfg.MapRed.ScanScheduler && sched != "" && sched != mapred.SchedulerFIFO {
		return fmt.Errorf("core: scheduler policy %q requires the indexed scheduler; it cannot be combined with ScanScheduler", sched)
	}
	spec := cfg.Policies.Speculation
	if spec == "" {
		spec = cfg.MapRed.SpeculationPolicy
	}
	if _, err := mapred.NewSpeculationPolicy(spec); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	place := cfg.Policies.Placement
	if place == "" {
		place = cfg.HDFS.PlacementPolicy
	}
	if _, err := hdfs.NewPlacementPolicy(place); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	repl := cfg.Policies.Replication
	if repl == "" {
		repl = cfg.HDFS.ReplicationOrder
	}
	if _, err := hdfs.NewReplicationOrder(repl); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	for name, pc := range cfg.MapRed.Pools {
		if pc.Weight < 0 {
			return fmt.Errorf("core: pool %q has negative weight %g", name, pc.Weight)
		}
		if pc.MaxRunning < 0 {
			return fmt.Errorf("core: pool %q has negative running cap %d", name, pc.MaxRunning)
		}
	}
	return nil
}
