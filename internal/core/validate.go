package core

import (
	"errors"
	"fmt"
)

// Validate checks a Config for structural errors before any simulation state
// is built. It is the single validation path for both constructors: the
// error-returning NewSystem surfaces the message, and the legacy panicking
// New facade panics with the same one.
func Validate(cfg Config) error {
	if cfg.Grid != nil && len(cfg.Static) > 0 {
		return errors.New("core: Grid and Static are mutually exclusive; configure exactly one worker supply")
	}
	if cfg.Grid == nil && len(cfg.Static) == 0 {
		return errors.New("core: no worker supply; configure exactly one of Grid or Static")
	}
	if g := cfg.Grid; g != nil {
		if len(g.Sites) == 0 {
			return errors.New("core: grid config has no sites")
		}
		if g.TargetNodes < 0 {
			return fmt.Errorf("core: negative grid target %d", g.TargetNodes)
		}
		seen := make(map[string]bool, len(g.Sites))
		for i, sc := range g.Sites {
			if sc.Name == "" {
				return fmt.Errorf("core: site %d has no name", i)
			}
			if seen[sc.Name] {
				return fmt.Errorf("core: duplicate site name %q", sc.Name)
			}
			seen[sc.Name] = true
			if sc.Capacity < 0 {
				return fmt.Errorf("core: site %q has negative capacity %d", sc.Name, sc.Capacity)
			}
			if sc.BatchPreemptFrac < 0 || sc.BatchPreemptFrac > 1 {
				return fmt.Errorf("core: site %q batch preemption fraction %g outside [0,1]", sc.Name, sc.BatchPreemptFrac)
			}
		}
	}
	for i, g := range cfg.Static {
		if g.Count < 0 {
			return fmt.Errorf("core: static group %d has negative count %d", i, g.Count)
		}
		if g.Count > 0 && g.MapSlots <= 0 && g.ReduceSlots <= 0 {
			return fmt.Errorf("core: static group %d has no task slots", i)
		}
	}
	if cfg.SampleInterval < 0 {
		return fmt.Errorf("core: negative sample interval %v", cfg.SampleInterval)
	}
	if cfg.RunBound < 0 {
		return fmt.Errorf("core: negative run bound %v", cfg.RunBound)
	}
	return nil
}
