package core

import (
	"fmt"
	"math/rand"
	"sort"

	"hog/internal/event"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// This file is the system-level face of the beyond-crash-stop fault model
// (docs/FAULTS.md): network partitions (site- and node-level, optionally
// asymmetric), gray degradation (slow disks, probabilistic heartbeat loss),
// and block corruption. Each verb here is what a scenario step fires; the
// mechanics live in the substrates (netmodel's reachability oracle, hdfs's
// corruption/recovery paths, mapred's ghost resolution) and this layer wires
// them into the worker lifecycle: who gets cut, who gets ghosted at install
// time, and who gets revived when the fault heals.

// grayStream is the dedicated counting RNG stream behind probabilistic gray
// heartbeat loss. It is deliberately separate from the engine stream: gray
// draws happen on every gated beat, and routing them through Eng.Rand()
// would shift every later fault-path jitter draw, destroying the property
// that a gray scenario perturbs only what it touches. The counting source
// makes its position snapshot-verifiable (core.RNGStreams "gray").
type grayStream struct {
	src *sim.CountingSource
	rnd *rand.Rand
}

// graySeedSalt separates the gray stream's seed from the engine's so the two
// never produce correlated sequences for any config seed.
const graySeedSalt = 0x6772617973747265 // "graystre"

func newGrayStream(seed int64) *grayStream {
	src := sim.NewCountingSource(seed ^ graySeedSalt)
	return &grayStream{src: src, rnd: rand.New(src)}
}

// partitionCuts maps a scenario mode string onto cut directions. "both" (or
// empty) is a full partition; "in" drops only traffic toward the target (the
// masters keep hearing its heartbeats — the asymmetric gray zone); "out"
// drops only traffic from it (silent to the masters, like a crash, but the
// daemons live on).
func partitionCuts(mode string) (cutIn, cutOut bool, err error) {
	switch mode {
	case "", "both":
		return true, true, nil
	case "in":
		return true, false, nil
	case "out":
		return false, true, nil
	}
	return false, false, fmt.Errorf("unknown partition mode %q (want both, in, or out)", mode)
}

// pickWorkers returns up to count healthy workers at the named site that
// pass ok, in ascending node-ID order — the deterministic fire-time target
// resolution scenario verbs use (node IDs do not exist at Apply time on a
// grid system, so targets must be chosen when the step fires).
func (s *System) pickWorkers(site string, count int, ok func(*worker) bool) []*worker {
	id, found := s.Net.SiteByName(site)
	if !found {
		return nil
	}
	var cands []*worker
	for _, w := range s.workerList {
		if w.health != workerHealthy || s.Net.SiteOf(w.id) != id {
			continue
		}
		if ok != nil && !ok(w) {
			continue
		}
		cands = append(cands, w)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
	if count > 0 && len(cands) > count {
		cands = cands[:count]
	}
	return cands
}

// ghostPartitioned converts the running attempts of every worker being cut
// off outbound into ghosts: the partitioned daemons keep executing out
// there, but nothing they do can reach the masters, so master-side state
// must stop hearing from them the moment the cut lands. The JobTracker's
// dead timeout then fires exactly as for a crash — the master cannot tell a
// partition from a death, which is the point.
func (s *System) ghostPartitioned(w *worker) {
	s.JT.NodeCrashed(w.id)
}

// PartitionSiteNamed installs a directed cut between the named site and the
// rest of the fabric (mode per partitionCuts). Heartbeats, block reports,
// shuffle fetches, and replication transfers across the cut all stop; nodes
// within the site still reach each other. Emits PartitionStarted with the
// number of healthy workers behind the cut.
func (s *System) PartitionSiteNamed(site, mode string) error {
	cutIn, cutOut, err := partitionCuts(mode)
	if err != nil {
		return fmt.Errorf("core: partition site %q: %w", site, err)
	}
	id, ok := s.Net.SiteByName(site)
	if !ok {
		return fmt.Errorf("core: partition: no network site named %q", site)
	}
	s.Net.PartitionSite(id, cutIn, cutOut)
	if s.partedSites == nil {
		s.partedSites = make(map[string]string)
	}
	s.partedSites[site] = mode
	affected := 0
	for _, w := range s.workerList {
		if w.health != workerHealthy || s.Net.SiteOf(w.id) != id {
			continue
		}
		affected++
		if cutOut {
			s.ghostPartitioned(w)
		}
	}
	s.emitPartition(event.PartitionStarted, site, mode, affected)
	return nil
}

// PartitionNodesNamed installs node-level cuts on the count lowest-ID healthy
// workers of the named site (mode per partitionCuts). Node cuts sever the
// victims even from their own site's nodes.
func (s *System) PartitionNodesNamed(site string, count int, mode string) error {
	cutIn, cutOut, err := partitionCuts(mode)
	if err != nil {
		return fmt.Errorf("core: partition nodes at %q: %w", site, err)
	}
	picked := s.pickWorkers(site, count, func(w *worker) bool {
		_, already := s.partedNodes[w.id]
		return !already
	})
	if s.partedNodes == nil {
		s.partedNodes = make(map[netmodel.NodeID]string)
	}
	for _, w := range picked {
		s.Net.PartitionNode(w.id, cutIn, cutOut)
		s.partedNodes[w.id] = mode
		if cutOut {
			s.ghostPartitioned(w)
		}
	}
	s.emitPartition(event.PartitionStarted, site, "node:"+mode, len(picked))
	return nil
}

// HealPartitionNamed removes the site-level cut on the named site and every
// node-level cut on workers there, then runs heal-side recovery for each
// healthy worker that was behind a cut: a datanode the namenode dead-marked
// (but whose hardware survived) re-registers with its preserved replica
// inventory, a dead-marked tracker revives, and a tracker the JobTracker
// still believes alive gets its ghost beliefs resolved immediately instead
// of waiting out the timeout.
func (s *System) HealPartitionNamed(site string) error {
	id, ok := s.Net.SiteByName(site)
	if !ok {
		return fmt.Errorf("core: heal: no network site named %q", site)
	}
	_, siteCut := s.partedSites[site]
	healed := 0
	for _, w := range s.workerList {
		if s.Net.SiteOf(w.id) != id {
			continue
		}
		_, nodeCut := s.partedNodes[w.id]
		if !siteCut && !nodeCut {
			continue
		}
		if nodeCut {
			s.Net.HealNode(w.id)
			delete(s.partedNodes, w.id)
		}
		if w.health != workerHealthy {
			continue
		}
		healed++
	}
	if siteCut {
		s.Net.HealSite(id)
		delete(s.partedSites, site)
	}
	// Recovery runs after every cut is lifted so re-replication and
	// reassignment triggered by one worker's revival can already reach the
	// others.
	for _, w := range s.workerList {
		if w.health != workerHealthy || s.Net.SiteOf(w.id) != id {
			continue
		}
		s.recoverWorker(w)
	}
	s.emitPartition(event.PartitionHealed, site, "", healed)
	return nil
}

// recoverWorker reconciles one healthy worker with the masters after the
// network between them heals.
func (s *System) recoverWorker(w *worker) {
	if w.dn != nil && !w.dn.Alive {
		s.NN.RecoverDatanode(w.id)
	}
	if w.tr != nil {
		if !w.tr.Alive {
			s.JT.ReviveTracker(w.id)
		} else {
			s.JT.DropGhostsOn(w.id)
		}
	}
}

func (s *System) emitPartition(t event.Type, site, detail string, n int) {
	if !s.bus.Active() {
		return
	}
	ev := event.At(t, s.Eng.Now())
	ev.Site = site
	ev.Detail = detail
	ev.Value = n
	s.bus.Emit(ev)
}

// DegradeNodesNamed puts the count lowest-ID healthy workers of the named
// site under gray degradation: their disks run at 1/factor of nominal
// bandwidth (factor 1 leaves disks alone), their compute slows by the same
// factor, each heartbeat beat is dropped with probability loss (drawn from
// the counted "gray" stream), and the namenode excludes them from replica
// placement while flagged. The nodes stay registered and mostly responsive —
// the "limping, not dead" failure the dead-timeout machinery cannot see.
func (s *System) DegradeNodesNamed(site string, count int, factor, loss float64) error {
	if factor < 1 {
		return fmt.Errorf("core: degrade at %q: factor %g below 1", site, factor)
	}
	if loss < 0 || loss >= 1 {
		return fmt.Errorf("core: degrade at %q: heartbeat loss %g outside [0,1)", site, loss)
	}
	if s.degraded == nil {
		s.degraded = make(map[netmodel.NodeID]struct{})
	}
	picked := s.pickWorkers(site, count, func(w *worker) bool {
		_, already := s.degraded[w.id]
		return !already
	})
	for _, w := range picked {
		s.degraded[w.id] = struct{}{}
		w.grayLoss = loss
		if w.tr != nil {
			w.origSpeed = w.tr.Speed
			if factor > 1 {
				w.tr.Speed = w.origSpeed / factor
			}
		}
		if factor > 1 {
			s.Net.SetNodeDiskFactor(w.id, factor)
		}
		s.NN.SetNodeGray(w.id, true)
		if s.bus.Active() {
			ev := event.At(event.NodeDegraded, s.Eng.Now())
			ev.Node = w.id
			ev.Site = site
			ev.Detail = fmt.Sprintf("disk/%gx loss/%.2f", factor, loss)
			s.bus.Emit(ev)
		}
	}
	return nil
}

// RestoreNodesNamed lifts gray degradation from every degraded worker at the
// named site: disk and compute return to nominal, heartbeat loss stops, and
// the namenode accepts the nodes for placement again.
func (s *System) RestoreNodesNamed(site string) error {
	id, ok := s.Net.SiteByName(site)
	if !ok {
		return fmt.Errorf("core: restore: no network site named %q", site)
	}
	ids := make([]netmodel.NodeID, 0, len(s.degraded))
	for nid := range s.degraded {
		if s.Net.SiteOf(nid) == id {
			ids = append(ids, nid)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, nid := range ids {
		w := s.workers[nid]
		delete(s.degraded, nid)
		if w == nil {
			continue
		}
		w.grayLoss = 0
		if w.tr != nil && w.origSpeed > 0 {
			w.tr.Speed = w.origSpeed
		}
		if s.Net.NodeDiskFactor(nid) != 1 {
			s.Net.SetNodeDiskFactor(nid, 1)
		}
		s.NN.SetNodeGray(nid, false)
		if s.bus.Active() {
			ev := event.At(event.NodeRestored, s.Eng.Now())
			ev.Node = nid
			ev.Site = site
			s.bus.Emit(ev)
		}
	}
	return nil
}

// CorruptFileReplicas silently corrupts up to count replicas of the named
// file, spreading the damage round-robin across its blocks (replica holders
// visited in ascending node-ID order; fire-time resolution, since the file
// and its placement exist only once the workload staged it). A block's last
// healthy replica is never corrupted, so every damaged block keeps a clean
// copy for read failover and re-replication — corruption here models silent
// bit rot that the checksum path must detect and repair, not data loss.
// Returns how many replicas were actually corrupted — zero when the file
// does not exist (yet) or no block can spare another replica.
func (s *System) CorruptFileReplicas(file string, count int) int {
	fi := s.NN.File(file)
	if fi == nil {
		return 0
	}
	corrupted := 0
	for progressed := true; progressed && corrupted < count; {
		progressed = false
		for _, bid := range fi.Blocks {
			if corrupted >= count {
				break
			}
			b := s.NN.Block(bid)
			if b == nil {
				continue
			}
			reps := b.Replicas()
			sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
			healthy := 0
			for _, nid := range reps {
				if !b.CorruptOn(nid) {
					healthy++
				}
			}
			if healthy < 2 {
				continue
			}
			for _, nid := range reps {
				if !b.CorruptOn(nid) && s.NN.CorruptReplica(bid, nid) {
					corrupted++
					progressed = true
					break
				}
			}
		}
	}
	return corrupted
}

// PartitionedSites returns the number of sites with an installed cut.
func (s *System) PartitionedSites() int { return len(s.partedSites) }

// PartitionedNodes returns the number of nodes with an installed cut.
func (s *System) PartitionedNodes() int { return len(s.partedNodes) }

// DegradedNodes returns the number of workers under gray degradation.
func (s *System) DegradedNodes() int { return len(s.degraded) }

// GrayDraws returns the number of values drawn from the gray heartbeat-loss
// stream — zero on any fault-free run (determinism contract).
func (s *System) GrayDraws() uint64 { return s.gray.src.Draws() }
