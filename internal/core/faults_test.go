package core

import (
	"testing"

	"hog/internal/audit"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/sim"
)

// TestNamedStreamDraws pins the determinism contract for the fault model's
// randomness: every stream that can influence a run is enumerated in
// RNGStreams, the gray heartbeat-loss stream is drawn from exactly when a
// gray-loss fault is live (zero draws on fault-free runs and on every other
// fault family), and two runs of the same schedule land every stream on the
// same position with the same event fingerprint.
func TestNamedStreamDraws(t *testing.T) {
	cases := []struct {
		name     string
		scenario func(file string) *Scenario
		wantGray bool // the gray stream must see draws
	}{
		{"fault-free", nil, false},
		{"site-partition", func(string) *Scenario {
			return NewScenario("part").
				PartitionSiteAt(120*sim.Second, "UCSDT2", "both").
				HealPartitionAt(420*sim.Second, "UCSDT2")
		}, false},
		{"node-partition-asymmetric", func(string) *Scenario {
			return NewScenario("npart").
				PartitionNodesAt(120*sim.Second, "AGLT2", 2, "in").
				HealPartitionAt(360*sim.Second, "AGLT2")
		}, false},
		{"corruption", func(file string) *Scenario {
			return NewScenario("rot").CorruptReplicasAt(90*sim.Second, file, 3)
		}, false},
		{"gray-degradation", func(string) *Scenario {
			return NewScenario("gray").
				DegradeNodesAt(120*sim.Second, "UCSDT2", 2, 4, 0.3).
				RestoreNodesAt(600*sim.Second, "UCSDT2")
		}, true},
		{"gray-slow-disk-only", func(string) *Scenario {
			// Slow disk without heartbeat loss: gray placement exclusion and
			// disk derating engage, but the loss stream is never consulted.
			return NewScenario("slow").
				DegradeNodesAt(120*sim.Second, "MIT_CMS", 2, 4, 0).
				RestoreNodesAt(600*sim.Second, "MIT_CMS")
		}, false},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seed := int64(40 + i)
			run := func() ([]RNGStream, uint64, uint64) {
				sys := New(HOGConfig(40, grid.ChurnNone, seed))
				log := event.NewLog()
				sys.Subscribe(log)
				sched := tinySchedule(seed)
				if tc.scenario != nil {
					if err := sys.Apply(tc.scenario("/in/" + sched.Jobs[0].Name)); err != nil {
						t.Fatal(err)
					}
				}
				sys.RunWorkload(sched)
				return sys.RNGStreams(), sys.GrayDraws(), log.Fingerprint()
			}
			streams, grayDraws, fp := run()

			if len(streams) != 2 || streams[0].Name != "engine" || streams[1].Name != "gray" {
				t.Fatalf("RNGStreams = %+v, want exactly [engine, gray]", streams)
			}
			if streams[1].Draws != grayDraws {
				t.Fatalf("registry reports %d gray draws, accessor %d", streams[1].Draws, grayDraws)
			}
			if tc.wantGray && grayDraws == 0 {
				t.Fatal("gray-loss fault live but the gray stream was never drawn")
			}
			if !tc.wantGray && grayDraws != 0 {
				t.Fatalf("gray stream drew %d times with no gray-loss fault live", grayDraws)
			}

			streams2, grayDraws2, fp2 := run()
			if fp != fp2 {
				t.Fatalf("same schedule, different fingerprints: %x vs %x", fp, fp2)
			}
			for j := range streams {
				if streams[j] != streams2[j] {
					t.Fatalf("stream %q position diverged across reruns: %+v vs %+v",
						streams[j].Name, streams[j], streams2[j])
				}
			}
			_ = grayDraws2
		})
	}
}

// TestPartitionHealEndToEnd partitions a whole site mid-workload and heals
// it: the masters must declare the silenced nodes dead via the ordinary
// timeout, the heal must re-register them with their preserved replica
// inventory (NodeRecovered), every partition event must pair, the workload
// must finish, and the cross-layer audit must stay clean throughout.
func TestPartitionHealEndToEnd(t *testing.T) {
	sys := New(HOGConfig(50, grid.ChurnNone, 41))
	log := event.NewLog()
	sys.Subscribe(log)
	aud := audit.New()
	aud.Attach(sys.NN, sys.JT)
	sys.Subscribe(aud)
	sys.Eng.Every(30*sim.Second, func() { aud.Sweep(sys.Eng.Now()) })

	sc := NewScenario("site cut").
		PartitionSiteAt(180*sim.Second, "UCSDT2", "both").
		HealPartitionAt(600*sim.Second, "UCSDT2")
	if err := sys.Apply(sc); err != nil {
		t.Fatal(err)
	}
	res := sys.RunWorkload(tinySchedule(41))
	aud.Sweep(sys.Eng.Now())

	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs failed across the partition", res.JobsFailed)
	}
	if got := log.Count(event.PartitionStarted); got != 1 {
		t.Fatalf("PartitionStarted = %d, want 1", got)
	}
	if got := log.Count(event.PartitionHealed); got != 1 {
		t.Fatalf("PartitionHealed = %d, want 1", got)
	}
	if log.Count(event.NodeRecovered) == 0 {
		t.Fatal("no datanode recovered its preserved inventory after the heal")
	}
	if sys.PartitionedSites() != 0 || sys.PartitionedNodes() != 0 {
		t.Fatal("partition state left installed after the heal")
	}
	if n := aud.Count(); n != 0 {
		t.Fatalf("%d audit violations; first: %v", n, aud.Violations()[0])
	}
}

// TestDegradeRestoreEndToEnd puts nodes into the gray state (slow disk +
// lossy heartbeats) and restores them: degrade/restore events must pair, the
// fault must actually drop heartbeats (gray stream draws), placement must be
// avoiding the gray nodes while flagged, and the audit must stay clean.
func TestDegradeRestoreEndToEnd(t *testing.T) {
	sys := New(HOGConfig(50, grid.ChurnNone, 42))
	log := event.NewLog()
	sys.Subscribe(log)
	aud := audit.New()
	aud.Attach(sys.NN, sys.JT)
	sys.Subscribe(aud)
	sys.Eng.Every(30*sim.Second, func() { aud.Sweep(sys.Eng.Now()) })

	sc := NewScenario("gray patch").
		DegradeNodesAt(150*sim.Second, "AGLT2", 3, 4, 0.25).
		RestoreNodesAt(750*sim.Second, "AGLT2")
	if err := sys.Apply(sc); err != nil {
		t.Fatal(err)
	}
	res := sys.RunWorkload(tinySchedule(42))
	aud.Sweep(sys.Eng.Now())

	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs failed across the gray episode", res.JobsFailed)
	}
	deg, rst := log.Count(event.NodeDegraded), log.Count(event.NodeRestored)
	if deg == 0 || deg != rst {
		t.Fatalf("NodeDegraded = %d, NodeRestored = %d, want equal and > 0", deg, rst)
	}
	if sys.GrayDraws() == 0 {
		t.Fatal("heartbeat-loss draws = 0 under a live gray fault")
	}
	if sys.DegradedNodes() != 0 {
		t.Fatalf("%d nodes still degraded after restore", sys.DegradedNodes())
	}
	if n := aud.Count(); n != 0 {
		t.Fatalf("%d audit violations; first: %v", n, aud.Violations()[0])
	}
}
