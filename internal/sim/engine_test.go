package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(3*Second, func() { got = append(got, 3) })
	e.Schedule(1*Second, func() { got = append(got, 1) })
	e.Schedule(2*Second, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3*Second {
		t.Fatalf("end = %v, want 3s", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order %v not FIFO", got)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := New(1)
	var at Time
	e.After(5*Second, func() {
		at = e.Now()
		e.After(2*Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 7*Second {
		t.Fatalf("nested After fired at %v, want 7s", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.After(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(0, func() {})
	})
	e.Run()
}

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("timer should be inactive after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestCancelFromCallback(t *testing.T) {
	e := New(1)
	fired := false
	var tm *Timer
	e.Schedule(Second, func() { tm.Cancel() })
	tm = e.Schedule(Second, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("timer canceled at same instant still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	e.Every(Second, func() { count++ })
	e.RunUntil(10 * Second)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if e.Now() != 10*Second {
		t.Fatalf("now = %v, want 10s", e.Now())
	}
	if e.Pending() == 0 {
		t.Fatal("ticker should still be pending after RunUntil")
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New(1)
	e.RunUntil(42 * Second)
	if e.Now() != 42*Second {
		t.Fatalf("now = %v, want 42s", e.Now())
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := New(1)
	count := 0
	var tk *Ticker
	tk = e.Every(Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	count := 0
	e.Every(Second, func() {
		count++
		if count == 5 {
			e.Stop()
		}
	})
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestRunWhile(t *testing.T) {
	e := New(1)
	count := 0
	e.Every(Second, func() { count++ })
	e.RunWhile(func() bool { return count < 7 })
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := New(seed)
		var fires []Time
		var spawn func()
		spawn = func() {
			fires = append(fires, e.Now())
			if len(fires) < 50 {
				e.After(Exponential{M: Second}.Sample(e.Rand()), spawn)
			}
		}
		e.After(0, spawn)
		e.Run()
		return fires
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

// Property: any batch of scheduled times executes in sorted order.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := New(1)
		var fired []Time
		for _, o := range offsets {
			e.Schedule(Time(o)*Millisecond, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset of timers fires exactly the complement.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(offsets []uint16, mask []bool) bool {
		e := New(1)
		fired := make([]bool, len(offsets))
		timers := make([]*Timer, len(offsets))
		for i, o := range offsets {
			i := i
			timers[i] = e.Schedule(Time(o)*Millisecond, func() { fired[i] = true })
		}
		for i := range timers {
			if i < len(mask) && mask[i] {
				timers[i].Cancel()
			}
		}
		e.Run()
		for i := range fired {
			canceled := i < len(mask) && mask[i]
			if fired[i] == canceled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %d", Seconds(1.5))
	}
	if got := (90 * Second).Seconds(); got != 90 {
		t.Fatalf("Seconds() = %v", got)
	}
	if Milliseconds(2.5) != 2500*Microsecond {
		t.Fatalf("Milliseconds(2.5) = %d", Milliseconds(2.5))
	}
	if s := (1500 * Millisecond).String(); s != "1.500s" {
		t.Fatalf("String() = %q", s)
	}
}

func TestDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	dists := []struct {
		name string
		d    Dist
	}{
		{"constant", Constant{V: 3 * Second}},
		{"exponential", Exponential{M: 3 * Second}},
		{"uniform", Uniform{Lo: Second, Hi: 5 * Second}},
		{"normal", Normal{Mu: 3 * Second, Sigma: Second / 2}},
		{"shifted", Shifted{Offset: Second, D: Exponential{M: 2 * Second}}},
		{"lognormal", LogNormal{MuLog: 1.0, SigmaLog: 0.5}},
	}
	for _, tc := range dists {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			v := tc.d.Sample(r)
			if v < 0 {
				t.Fatalf("%s produced negative sample %v", tc.name, v)
			}
			sum += float64(v)
		}
		mean := sum / n
		want := float64(tc.d.Mean())
		if want == 0 {
			continue
		}
		if mean < 0.9*want || mean > 1.1*want {
			t.Errorf("%s empirical mean %.0f, want ~%.0f", tc.name, mean, want)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := Uniform{Lo: 5 * Second, Hi: 5 * Second}
	if d.Sample(r) != 5*Second {
		t.Fatal("degenerate uniform should return Lo")
	}
	inverted := Uniform{Lo: 5 * Second, Hi: Second}
	if inverted.Sample(r) != 5*Second {
		t.Fatal("inverted uniform should clamp to Lo")
	}
}

func TestEveryInvalidInterval(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	e.Every(0, func() {})
}

func TestFiredCounter(t *testing.T) {
	e := New(1)
	for i := 0; i < 5; i++ {
		e.After(Time(i)*Second, func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("fired = %d, want 5", e.Fired())
	}
}
