package sim

import (
	"fmt"
	"testing"
)

// shardedCfg builds a sharded-queue config that forces the parallel staging
// path at toy scale.
func shardedCfg(shards int, lookahead Time) Config {
	return Config{Seed: 1, Shards: shards, Lookahead: lookahead, StageThreshold: 1}
}

// TestShardCountInvariance pins that the shard count and lookahead are pure
// performance knobs: the randomized fingerprint is identical for every
// partitioning, including a single shard and a pathological 1 µs window.
func TestShardCountInvariance(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		oracle := fingerprintRun(Config{SequentialEngine: true}, seed)
		shapes := []Config{
			shardedCfg(1, 0),
			shardedCfg(2, 10*Millisecond),
			shardedCfg(8, Second),
			shardedCfg(13, Minute),
			shardedCfg(4, Microsecond),
			{Seed: 1}, // stock defaults: threshold high enough to stage inline
		}
		for _, cfg := range shapes {
			if got := fingerprintRun(cfg, seed); got != oracle {
				t.Fatalf("seed %d: sharded %+v fingerprint %016x != sequential %016x", seed, cfg, got, oracle)
			}
		}
	}
}

// TestBarrierBoundaryEvent covers an event landing exactly on a window
// barrier: with lookahead L and the first event at t0, the window is
// [t0, t0+L), so an event at exactly t0+L must wait for the next window
// while t0+L-1 rides the current one. Both must fire, in order, at their
// exact times, on every engine.
func TestBarrierBoundaryEvent(t *testing.T) {
	const L = 100 * Millisecond
	run := func(cfg Config) []Time {
		e := NewEngine(cfg)
		var fires []Time
		rec := func() { fires = append(fires, e.Now()) }
		e.SetShard(0)
		e.Schedule(Millisecond, rec) // opens window [1ms, 1ms+L)
		e.SetShard(1)
		e.Schedule(Millisecond+L, rec)   // exactly on the barrier
		e.Schedule(Millisecond+L-1, rec) // last instant inside the window
		e.SetShard(2)
		e.Schedule(Millisecond+2*L, rec) // exactly on the *next* barrier
		e.Run()
		return fires
	}
	want := fmt.Sprint([]Time{Millisecond, Millisecond + L - 1, Millisecond + L, Millisecond + 2*L})
	for _, cfg := range []Config{shardedCfg(4, L), shardedCfg(1, L), {Seed: 1, SequentialEngine: true}, {Seed: 1, HeapScheduler: true}} {
		if got := fmt.Sprint(run(cfg)); got != want {
			t.Fatalf("cfg %+v: fires %v, want %v", cfg, got, want)
		}
	}
}

// TestEmptyShardWindow covers shards with zero pending events: all work
// tagged onto one shard of many, windows where some shards drained dry, and
// a shard that only receives work after several barriers have passed.
func TestEmptyShardWindow(t *testing.T) {
	const L = 10 * Millisecond
	run := func(cfg Config) []Time {
		e := NewEngine(cfg)
		var fires []Time
		rec := func() { fires = append(fires, e.Now()) }
		e.SetShard(3) // every event on one shard; 0,1,2,4..7 stay empty
		for i := Time(1); i <= 5; i++ {
			e.Schedule(i*25*Millisecond, rec) // one event per window, gaps between
		}
		e.Schedule(200*Millisecond, func() {
			rec()
			e.SetShard(5) // a silent shard wakes up mid-run
			e.Schedule(e.Now()+30*Millisecond, rec)
		})
		e.Run()
		return fires
	}
	seq := run(Config{Seed: 1, SequentialEngine: true})
	for _, shards := range []int{1, 2, 8} {
		if got, want := fmt.Sprint(run(shardedCfg(shards, L))), fmt.Sprint(seq); got != want {
			t.Fatalf("shards=%d: fires %v, want %v", shards, got, want)
		}
	}
	if len(seq) != 7 {
		t.Fatalf("fired %d events, want 7", len(seq))
	}
}

// TestIntraWindowScheduling covers the overlay path: a callback scheduling
// new events inside the already-staged window, both before and after other
// staged events, including zero-delay chains at the same instant.
func TestIntraWindowScheduling(t *testing.T) {
	const L = Second
	run := func(cfg Config) []string {
		e := NewEngine(cfg)
		var order []string
		e.SetShard(0)
		e.Schedule(Millisecond, func() {
			order = append(order, "a")
			// Inside window [1ms, 1ms+1s): both land in the overlay.
			e.Schedule(500*Millisecond, func() { order = append(order, "overlay-late") })
			e.After(0, func() { order = append(order, "overlay-now") })
		})
		e.SetShard(1)
		e.Schedule(400*Millisecond, func() { order = append(order, "staged-mid") })
		e.Run()
		return order
	}
	want := "[a overlay-now staged-mid overlay-late]"
	for _, cfg := range []Config{shardedCfg(4, L), {Seed: 1, SequentialEngine: true}} {
		if got := fmt.Sprint(run(cfg)); got != want {
			t.Fatalf("cfg %+v: order %v, want %v", cfg, got, want)
		}
	}
}

// TestRescheduleStagedAndOverlay moves timers between every storage class
// of the sharded queue: staged -> wheel, staged -> overlay, overlay ->
// wheel, wheel -> overlay; and cancels a staged event. Firing times must
// match the sequential engine's exactly.
func TestRescheduleStagedAndOverlay(t *testing.T) {
	const L = Second
	run := func(cfg Config) []Time {
		e := NewEngine(cfg)
		var fires []Time
		rec := func() { fires = append(fires, e.Now()) }
		e.SetShard(0)
		tStaged := e.Schedule(800*Millisecond, rec)
		tStaged2 := e.Schedule(900*Millisecond, rec)
		tGone := e.Schedule(850*Millisecond, rec)
		e.SetShard(1)
		e.Schedule(Millisecond, func() { // opens window [1ms, 1ms+1s)
			rec()
			tStaged.Reschedule(5 * Second)         // staged -> future window (wheel)
			tStaged2.Reschedule(400 * Millisecond) // staged -> earlier, same window (overlay)
			tGone.Cancel()                         // staged tombstone
			tOv := e.After(200*Millisecond, rec)   // overlay
			tOv.Reschedule(e.Now() + 10*Second)    // overlay -> wheel
			tFar := e.Schedule(8*Second, rec)      // wheel
			tFar.Reschedule(e.Now() + Millisecond) // wheel -> overlay
		})
		e.Run()
		return fires
	}
	seq := run(Config{Seed: 1, SequentialEngine: true})
	for _, shards := range []int{1, 4} {
		if got, want := fmt.Sprint(run(shardedCfg(shards, L))), fmt.Sprint(seq); got != want {
			t.Fatalf("shards=%d: fires %v, want %v", shards, got, want)
		}
	}
	if len(seq) != 5 {
		t.Fatalf("fired %d events, want 5", len(seq))
	}
}

// TestTickerKeepsItsShard pins the inheritance rule: a ticker stays on the
// shard it was created under even when its callback retags the engine, and
// events scheduled inside a callback inherit the firing event's shard.
func TestTickerKeepsItsShard(t *testing.T) {
	e := NewEngine(shardedCfg(4, 50*Millisecond))
	e.SetShard(2)
	ticks := 0
	var tk *Ticker
	tk = e.Every(30*Millisecond, func() {
		ticks++
		if e.Shard() != 2 {
			t.Fatalf("tick %d ran under shard %d, want 2", ticks, e.Shard())
		}
		e.SetShard(0) // must not migrate the ticker
		if ticks == 5 {
			tk.Stop()
		}
	})
	e.Run()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

// TestRunUntilAcrossWindows decomposes a run into many RunUntil slices whose
// deadlines fall inside, exactly on, and beyond barrier boundaries; the
// result must match one uninterrupted Run on the sequential engine.
func TestRunUntilAcrossWindows(t *testing.T) {
	const L = 100 * Millisecond
	schedule := func(e *Engine, fires *[]Time) {
		rec := func() { *fires = append(*fires, e.Now()) }
		for i := 1; i <= 12; i++ {
			e.SetShard(i)
			e.Schedule(Time(i)*37*Millisecond, rec)
		}
	}
	var want []Time
	seqE := NewEngine(Config{Seed: 1, SequentialEngine: true})
	schedule(seqE, &want)
	seqE.Run()

	var got []Time
	e := NewEngine(shardedCfg(5, L))
	schedule(e, &got)
	deadlines := []Time{30 * Millisecond, 37 * Millisecond, 101 * Millisecond, 137 * Millisecond, 300 * Millisecond}
	for _, d := range deadlines {
		e.RunUntil(d)
		if e.Now() != d {
			t.Fatalf("now = %v after RunUntil(%v)", e.Now(), d)
		}
	}
	e.Run()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fires %v, want %v", got, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
}

// TestParallelScan checks the model layer's scan helper: chunks must
// exactly partition the range in ascending order, per-chunk results merged
// in chunk order must equal the sequential scan, and the non-sharded
// engines must get the single inline call the oracle contract promises.
func TestParallelScan(t *testing.T) {
	const n = 10_000
	e := NewEngine(Config{Seed: 1})
	if !e.Sharded() {
		t.Fatal("default engine is not sharded")
	}
	var parts [ScanChunks][]int
	e.ParallelScan(n, 1, func(c, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i%3 == 0 {
				parts[c] = append(parts[c], i)
			}
		}
	})
	var got []int
	for _, p := range parts {
		got = append(got, p...)
	}
	want := 0
	for _, i := range got {
		if i != want {
			t.Fatalf("merged scan yielded %d, want %d", i, want)
		}
		want += 3
	}
	if len(got) != (n+2)/3 {
		t.Fatalf("merged %d hits, want %d", len(got), (n+2)/3)
	}

	// Below minN the scan must collapse to one inline chunk.
	calls := 0
	e.ParallelScan(100, 4096, func(c, lo, hi int) {
		calls++
		if c != 0 || lo != 0 || hi != 100 {
			t.Fatalf("inline chunk = (%d, %d, %d)", c, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("inline scan made %d calls", calls)
	}

	// The sequential oracle never fans out, whatever the size.
	seq := NewEngine(Config{Seed: 1, SequentialEngine: true})
	calls = 0
	seq.ParallelScan(n, 1, func(c, lo, hi int) {
		calls++
		if c != 0 || lo != 0 || hi != n {
			t.Fatalf("sequential chunk = (%d, %d, %d)", c, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential scan made %d calls", calls)
	}
}
