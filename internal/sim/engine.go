// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events. All
// model code (network transfers, heartbeats, task executions, preemptions)
// runs as callbacks scheduled on the engine; two runs with the same seed and
// the same schedule of calls produce byte-identical results. Determinism is
// what makes the paper's three-runs-per-point evaluation reproducible: each
// "run" is just a different seed.
package sim

import (
	"container/heap"
	"math/rand"
)

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so ordering is insertion order, never map order.
// Events are pooled: gen is bumped on every recycle so stale Timer handles
// from a previous use of the same event cannot observe or mutate it.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
	gen      uint64
}

// Timer is a handle to a scheduled event that can be canceled or moved.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint64
}

// live reports whether the handle still refers to its original scheduling
// (the pooled event has not been recycled for another callback).
func (t *Timer) live() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the timer's callback from running. Canceling an already
// fired or already canceled timer is a no-op. Cancel is safe to call from
// inside event callbacks.
func (t *Timer) Cancel() {
	if !t.live() || t.ev.canceled {
		return
	}
	t.ev.canceled = true
	if t.ev.index >= 0 {
		t.e.pending--
	}
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t.live() && !t.ev.canceled && t.ev.index >= 0
}

// Reschedule moves a pending timer to absolute time at, adjusting the event
// heap in place (no tombstone is left behind, unlike Cancel + re-Schedule).
// The timer is given a fresh tie-breaking sequence number, so rescheduling
// to an instant shared with other events behaves exactly like canceling and
// scheduling anew. Rescheduling into the past or rescheduling a fired or
// canceled timer panics: both are model bugs.
func (t *Timer) Reschedule(at Time) {
	if !t.Active() {
		panic("sim: Reschedule of inactive timer")
	}
	if at < t.e.now {
		panic("sim: Reschedule in the past")
	}
	t.ev.at = at
	t.ev.seq = t.e.seq
	t.e.seq++
	heap.Fix(&t.e.heap, t.ev.index)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs on the engine's loop.
type Engine struct {
	now     Time
	heap    eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
	pending int      // live count of scheduled, non-canceled events
	free    []*event // recycled events awaiting reuse
}

// New returns an engine with its clock at zero and a deterministic random
// source seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All stochastic model
// decisions must draw from this source to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of scheduled (non-canceled) events. It is O(1):
// the engine keeps a live counter instead of scanning the heap.
func (e *Engine) Pending() int { return e.pending }

// Fired returns the number of events executed so far; useful as a progress
// and complexity metric in benchmarks.
func (e *Engine) Fired() uint64 { return e.fired }

// alloc takes an event from the free list, or allocates one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped event to the free list. Bumping gen invalidates
// every outstanding Timer handle to this scheduling.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.canceled = false
	ev.gen++
	e.free = append(e.free, ev)
}

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a model bug, and silently reordering events would corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) *Timer {
	if at < e.now {
		panic("sim: Schedule in the past")
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.heap, ev)
	e.pending++
	return &Timer{e: e, ev: ev, gen: ev.gen}
}

// After runs fn d after the current time. Negative d panics via Schedule.
func (e *Engine) After(d Time, fn func()) *Timer {
	return e.Schedule(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop is
// called. It returns the time of the last executed event.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped && e.heap[0].at <= deadline {
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events while cond() holds and the queue is non-empty.
// cond is evaluated before each event.
func (e *Engine) RunWhile(cond func() bool) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped && cond() {
		e.step()
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.heap).(*event)
	if ev.canceled {
		e.recycle(ev)
		return
	}
	e.pending--
	e.now = ev.at
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	fn()
}

// Every schedules fn to run every interval, starting interval from now, until
// the returned Ticker is stopped. fn runs before the next tick is scheduled,
// so fn may stop the ticker to prevent further ticks.
type Ticker struct {
	stopped bool
	timer   *Timer
}

// Stop cancels all future ticks.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.timer.Cancel()
}

// Every creates a Ticker invoking fn at the given period.
func (e *Engine) Every(interval Time, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every with non-positive interval")
	}
	tk := &Ticker{}
	var tick func()
	tick = func() {
		if tk.stopped {
			return
		}
		fn()
		if !tk.stopped {
			tk.timer = e.After(interval, tick)
		}
	}
	tk.timer = e.After(interval, tick)
	return tk
}
