// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event queue. All model code
// (network transfers, heartbeats, task executions, preemptions) runs as
// callbacks scheduled on the engine; two runs with the same seed and the
// same schedule of calls produce byte-identical results. Determinism is
// what makes the paper's three-runs-per-point evaluation reproducible: each
// "run" is just a different seed.
//
// Three interchangeable queue implementations back the engine: the default
// site-sharded parallel queue (shard.go), which settles per-shard timing
// wheels on parallel goroutines at conservative lookahead boundaries; the
// sequential hierarchical timing wheel (wheel.go), selected with
// Config.SequentialEngine, which makes schedule/cancel O(1) for the
// near-future timers that dominate grid simulations; and the retained
// binary heap, selected with Config.HeapScheduler. All three fire events in
// exactly the same (at, seq) order, so every simulation is bit-identical
// under any queue — the equivalence tests and CI cmp gates pin that.
package sim

import (
	"container/heap"
	"math/rand"
)

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so ordering is insertion order, never map order.
// Events are pooled: gen is bumped on every recycle so stale Timer handles
// from a previous use of the same event cannot observe or mutate it.
//
// The callback is either fn, or the pre-bound pair (afn, arg). The bound
// form lets recurring work — ticker fires, heartbeat loops — schedule
// without allocating a fresh closure per event; see ScheduleArg.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	afn      func(any)
	arg      any
	canceled bool
	index    int // position in the queue (heap index or bucket offset), -1 once popped
	level    int8
	slot     int16
	shard    int32 // owning logical process under the sharded queue
	gen      uint64
}

// Timer is a handle to a scheduled event that can be canceled or moved.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint64
}

// live reports whether the handle still refers to its original scheduling
// (the pooled event has not been recycled for another callback).
func (t *Timer) live() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the timer's callback from running. Canceling an already
// fired or already canceled timer is a no-op. Cancel is safe to call from
// inside event callbacks.
func (t *Timer) Cancel() {
	if !t.live() || t.ev.canceled {
		return
	}
	t.ev.canceled = true
	if t.ev.index >= 0 {
		t.e.pending--
	}
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t.live() && !t.ev.canceled && t.ev.index >= 0
}

// Reschedule moves a pending timer to absolute time at, adjusting the event
// queue in place (no tombstone is left behind, unlike Cancel + re-Schedule).
// The timer is given a fresh tie-breaking sequence number, so rescheduling
// to an instant shared with other events behaves exactly like canceling and
// scheduling anew. Rescheduling into the past or rescheduling a fired or
// canceled timer panics: both are model bugs.
func (t *Timer) Reschedule(at Time) {
	if !t.Active() {
		panic("sim: Reschedule of inactive timer")
	}
	if at < t.e.now {
		panic("sim: Reschedule in the past")
	}
	t.ev.at = at
	t.ev.seq = t.e.seq
	t.e.seq++
	t.e.q.update(t.ev)
}

// evqueue orders pending events by (at, seq). Canceled events stay queued
// as tombstones and are returned by pop like any other event; the engine
// skips and recycles them. peek must not have observable side effects
// beyond internal reorganisation bounded by limit (the wheel advances its
// cursor at most to limit, never past a pending event).
type evqueue interface {
	push(ev *event)
	update(ev *event) // relocate after at/seq changed
	peek(limit Time) (Time, bool)
	pop() *event
	size() int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// heapQ is the retained binary-heap queue (Config.HeapScheduler). It is the
// pre-wheel engine, kept as the equivalence baseline and benchmark foil.
type heapQ struct {
	h eventHeap
}

func (q *heapQ) push(ev *event)   { heap.Push(&q.h, ev) }
func (q *heapQ) update(ev *event) { heap.Fix(&q.h, ev.index) }
func (q *heapQ) peek(limit Time) (Time, bool) {
	if len(q.h) == 0 || q.h[0].at > limit {
		return 0, false
	}
	return q.h[0].at, true
}
func (q *heapQ) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}
func (q *heapQ) size() int { return len(q.h) }

// Config selects engine parameters beyond the seed.
type Config struct {
	// Seed for the deterministic random source.
	Seed int64
	// HeapScheduler selects the retained binary-heap event queue instead of
	// the default site-sharded queue. It is bit-identical on every run; the
	// heap is kept for equivalence gates and benchmarks. It implies a
	// sequential engine.
	HeapScheduler bool
	// SequentialEngine selects the single sequential timing wheel instead of
	// the default site-sharded parallel queue. The sequential wheel is the
	// oracle the sharded queue is pinned against: for any Shards and
	// Lookahead values the two fire events in exactly the same (at, seq)
	// order, so every simulation is bit-identical under either.
	SequentialEngine bool
	// Shards is the number of logical processes in the sharded queue
	// (default 8). Shard assignment affects only which goroutine settles an
	// event's timing wheel, never the merged firing order.
	Shards int
	// Lookahead is the conservative synchronization window of the sharded
	// queue (default 1 s). Any positive value is correct; a window derived
	// from the model's minimum cross-shard latency (WAN latency plus the
	// master heartbeat interval, for the grid model) amortizes barrier
	// overhead best.
	Lookahead Time
	// StageThreshold is the minimum number of wheel-resident events before a
	// barrier stages shards on parallel goroutines instead of inline
	// (default 256). Tests set it to 1 to force the parallel path at toy
	// scale; either path yields identical results.
	StageThreshold int
}

// Engine is a discrete-event simulator. All model code runs sequentially on
// the engine's loop — callbacks are never concurrent with each other — but
// the default sharded queue settles its per-shard timing wheels on parallel
// goroutines between callbacks. The Engine API itself is not safe for
// concurrent use.
type Engine struct {
	now      Time
	q        evqueue
	seq      uint64
	rng      *rand.Rand
	src      *CountingSource
	stopped  bool
	fired    uint64
	pending  int      // live count of scheduled, non-canceled events
	free     []*event // recycled events awaiting reuse
	heapQ    bool
	sharded  bool
	curShard int32 // shard tag stamped on newly scheduled events
}

// New returns an engine with its clock at zero and a deterministic random
// source seeded with seed, using the default sharded queue.
func New(seed int64) *Engine { return NewEngine(Config{Seed: seed}) }

// NewEngine returns an engine configured by cfg.
func NewEngine(cfg Config) *Engine {
	// The counting wrapper forwards rand.NewSource's stream unchanged, so
	// every pre-existing run stays bit-identical; the draw count it maintains
	// is what snapshots record as the stream position (see CountingSource).
	src := NewCountingSource(cfg.Seed)
	e := &Engine{rng: rand.New(src), src: src, heapQ: cfg.HeapScheduler}
	switch {
	case cfg.HeapScheduler:
		e.q = &heapQ{}
	case cfg.SequentialEngine:
		e.q = newWheelQ()
	default:
		e.q = newShardQ(cfg.Shards, cfg.Lookahead, cfg.StageThreshold)
		e.sharded = true
	}
	return e
}

// HeapScheduler reports whether the engine runs on the retained binary heap
// rather than a timing wheel.
func (e *Engine) HeapScheduler() bool { return e.heapQ }

// Sharded reports whether the engine runs on the site-sharded parallel
// queue (the default) rather than one of the sequential oracles.
func (e *Engine) Sharded() bool { return e.sharded }

// SetShard tags subsequently scheduled events with logical process k (any
// int; the sharded queue folds it into its shard range). Model layers call
// it with a site index before scheduling site-local work so each site's
// timers land on that site's timing wheel. Events scheduled inside a
// callback inherit the firing event's shard unless overridden, so recurring
// timers stay put. The tag is load-balancing metadata only: the merged
// firing order — and therefore every simulation result — is identical for
// any tagging.
func (e *Engine) SetShard(k int) { e.curShard = int32(k) }

// Shard returns the current shard tag (see SetShard).
func (e *Engine) Shard() int { return int(e.curShard) }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All stochastic model
// decisions must draw from this source to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of scheduled (non-canceled) events. It is O(1):
// the engine keeps a live counter instead of scanning the queue.
func (e *Engine) Pending() int { return e.pending }

// Fired returns the number of events executed so far; useful as a progress
// and complexity metric in benchmarks.
func (e *Engine) Fired() uint64 { return e.fired }

// Seed returns the seed the engine's random source was created with.
func (e *Engine) Seed() int64 { return e.src.SeedValue() }

// RandDraws returns the number of values drawn from the engine's random
// source so far — the stream's position, recorded by snapshots and verified
// on restore (a replay that lands on a different count consumed randomness
// the original run did not).
func (e *Engine) RandDraws() uint64 { return e.src.Draws() }

// SeqCount returns the number of tie-breaking sequence numbers issued so
// far. Together with Now, Fired, and Pending it pins the engine's scheduling
// state for the snapshot census.
func (e *Engine) SeqCount() uint64 { return e.seq }

// alloc takes an event from the free list, or allocates one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped event to the free list. Bumping gen invalidates
// every outstanding Timer handle to this scheduling.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.canceled = false
	ev.gen++
	e.free = append(e.free, ev)
}

// scheduleInto fills a caller-provided Timer handle with a fresh scheduling,
// so recurring callers (tickers) pay no per-event Timer allocation.
func (e *Engine) scheduleInto(t *Timer, at Time, fn func(), afn func(any), arg any) {
	if at < e.now {
		panic("sim: Schedule in the past")
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.afn = afn
	ev.arg = arg
	ev.shard = e.curShard
	e.seq++
	e.q.push(ev)
	e.pending++
	t.e, t.ev, t.gen = e, ev, ev.gen
}

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a model bug, and silently reordering events would corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) *Timer {
	t := &Timer{}
	e.scheduleInto(t, at, fn, nil, nil)
	return t
}

// ScheduleArg runs fn(arg) at absolute time at. It is the pre-bound form of
// Schedule for recurring callbacks: binding the receiver through arg instead
// of a closure means a heartbeat or ticker that reschedules itself allocates
// nothing per event.
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) *Timer {
	t := &Timer{}
	e.scheduleInto(t, at, nil, fn, arg)
	return t
}

// After runs fn d after the current time. Negative d panics via Schedule.
func (e *Engine) After(d Time, fn func()) *Timer {
	return e.Schedule(e.now+d, fn)
}

// AfterArg runs fn(arg) d after the current time; the pre-bound form of
// After (see ScheduleArg).
func (e *Engine) AfterArg(d Time, fn func(any), arg any) *Timer {
	return e.ScheduleArg(e.now+d, fn, arg)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop is
// called. It returns the time of the last executed event.
func (e *Engine) Run() Time {
	e.stopped = false
	for e.q.size() > 0 && !e.stopped {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if _, ok := e.q.peek(deadline); !ok {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunUntilWhile executes events with timestamps <= deadline while cond()
// holds; cond is evaluated before each event. Unlike RunUntil the clock is
// left at the last executed event, never advanced to the deadline: a later
// continuation of the run (RunWhile, another RunUntilWhile) then fires
// exactly the event sequence an uninterrupted run would have fired, which is
// the property mid-run snapshots rely on.
func (e *Engine) RunUntilWhile(deadline Time, cond func() bool) {
	e.stopped = false
	for !e.stopped && cond() {
		if _, ok := e.q.peek(deadline); !ok {
			break
		}
		e.step()
	}
}

// RunWhile executes events while cond() holds and the queue is non-empty.
// cond is evaluated before each event.
func (e *Engine) RunWhile(cond func() bool) {
	e.stopped = false
	for e.q.size() > 0 && !e.stopped && cond() {
		e.step()
	}
}

func (e *Engine) step() {
	ev := e.q.pop()
	if ev == nil {
		return
	}
	if ev.canceled {
		e.recycle(ev)
		return
	}
	e.pending--
	e.now = ev.at
	e.fired++
	e.curShard = ev.shard // callbacks schedule into their own shard by default
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	e.recycle(ev)
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
}

// Ticker schedules fn to run every interval until stopped. Each tick reuses
// the ticker's own pre-bound callback and embedded Timer handle, so a
// running ticker allocates nothing per fire — the periodic heartbeats and
// scan loops that dominate grid simulations ride the event free list alone.
type Ticker struct {
	e        *Engine
	interval Time
	fn       func()
	stopped  bool
	t        Timer
}

// Stop cancels all future ticks.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.t.Cancel()
}

// tickerTick fires one tick and schedules the next; fn runs before the next
// tick is scheduled, so fn may stop the ticker to prevent further ticks.
func tickerTick(x any) {
	tk := x.(*Ticker)
	if tk.stopped {
		return
	}
	shard := tk.e.curShard // fn may retag; the ticker itself stays put
	tk.fn()
	if !tk.stopped {
		tk.e.curShard = shard
		tk.e.scheduleInto(&tk.t, tk.e.now+tk.interval, nil, tickerTick, tk)
	}
}

// Every creates a Ticker invoking fn at the given period, starting interval
// from now.
func (e *Engine) Every(interval Time, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every with non-positive interval")
	}
	tk := &Ticker{e: e, interval: interval, fn: fn}
	e.scheduleInto(&tk.t, e.now+interval, nil, tickerTick, tk)
	return tk
}
