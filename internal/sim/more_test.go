package sim

import (
	"testing"
	"testing/quick"
)

// Property: RunUntil in pieces is equivalent to one long RunUntil for
// ticker-driven state (time decomposition).
func TestRunUntilDecompositionProperty(t *testing.T) {
	f := func(cutRaw uint8) bool {
		cut := Time(cutRaw%99+1) * Second
		run := func(split bool) int {
			e := New(1)
			count := 0
			e.Every(Second, func() { count++ })
			if split {
				e.RunUntil(cut)
				e.RunUntil(100 * Second)
			} else {
				e.RunUntil(100 * Second)
			}
			return count
		}
		return run(true) == run(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(Millisecond, recurse)
		}
	}
	e.After(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if e.Now() != 99*Millisecond {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestTimerCancelIdempotent(t *testing.T) {
	e := New(1)
	tm := e.After(Second, func() {})
	tm.Cancel()
	tm.Cancel() // must not panic
	var nilTimer *Timer
	nilTimer.Cancel() // nil-safe
	if nilTimer.Active() {
		t.Fatal("nil timer active")
	}
	e.Run()
}

func TestStopThenRunResumes(t *testing.T) {
	e := New(1)
	count := 0
	e.Every(Second, func() {
		count++
		if count == 3 {
			e.Stop()
		}
	})
	e.RunUntil(10 * Second)
	if count != 3 {
		t.Fatalf("count = %d after stop", count)
	}
	// Run resumes from where Stop left off.
	e.RunUntil(10 * Second)
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

// Property: Exponential sampling is memoryless-ish: the mean of samples
// conditioned on exceeding a threshold is threshold + mean (within noise).
func TestExponentialMemoryless(t *testing.T) {
	e := New(5)
	d := Exponential{M: 10 * Second}
	thr := 5 * Second
	var condSum float64
	n := 0
	for i := 0; i < 200000; i++ {
		v := d.Sample(e.Rand())
		if v > thr {
			condSum += float64(v - thr)
			n++
		}
	}
	condMean := condSum / float64(n)
	want := float64(10 * Second)
	if condMean < 0.95*want || condMean > 1.05*want {
		t.Fatalf("conditional mean %.0f, want ~%.0f", condMean, want)
	}
}
