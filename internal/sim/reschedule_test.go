package sim

import (
	"testing"
)

func TestRescheduleMovesEarlierAndLater(t *testing.T) {
	e := New(1)
	var order []string
	a := e.Schedule(10, func() { order = append(order, "a") })
	e.Schedule(20, func() { order = append(order, "b") })
	c := e.Schedule(30, func() { order = append(order, "c") })
	a.Reschedule(25) // later: now between b and c
	c.Reschedule(5)  // earlier: now first
	e.Run()
	want := []string{"c", "b", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestRescheduleTieOrder: a rescheduled timer draws a fresh sequence number,
// so landing on an instant shared with an existing event fires after it —
// exactly like cancel + re-schedule.
func TestRescheduleTieOrder(t *testing.T) {
	e := New(1)
	var order []string
	a := e.Schedule(5, func() { order = append(order, "a") })
	e.Schedule(10, func() { order = append(order, "b") })
	a.Reschedule(10)
	e.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestReschedulePastPanics(t *testing.T) {
	e := New(1)
	tm := e.Schedule(50, func() {})
	e.Schedule(20, func() {
		defer func() {
			if recover() == nil {
				t.Error("Reschedule into the past did not panic")
			}
		}()
		tm.Reschedule(10) // now is 20
	})
	e.Run()
}

func TestRescheduleCanceledPanics(t *testing.T) {
	e := New(1)
	tm := e.Schedule(10, func() {})
	tm.Cancel()
	defer func() {
		if recover() == nil {
			t.Error("Reschedule of canceled timer did not panic")
		}
	}()
	tm.Reschedule(20)
}

func TestRescheduleFiredPanics(t *testing.T) {
	e := New(1)
	tm := e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("Reschedule of fired timer did not panic")
		}
	}()
	tm.Reschedule(20)
}

// TestRescheduleHeapInvariant stresses heap.Fix against a churn of moves in
// both directions and checks global firing order.
func TestRescheduleHeapInvariant(t *testing.T) {
	e := New(1)
	const n = 200
	timers := make([]*Timer, n)
	var fired []Time
	for i := 0; i < n; i++ {
		timers[i] = e.Schedule(Time(100+i), func() { fired = append(fired, e.Now()) })
	}
	// Deterministically shuffle deadlines via the engine RNG.
	for i := 0; i < n; i++ {
		timers[i].Reschedule(Time(100 + e.Rand().Intn(500)))
	}
	e.Run()
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order: %v then %v", fired[i-1], fired[i])
		}
	}
}

// TestPendingCounter: Pending must track schedule, cancel and fire exactly —
// it is a live counter now, not a heap scan.
func TestPendingCounter(t *testing.T) {
	e := New(1)
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d at start, want 0", e.Pending())
	}
	a := e.Schedule(10, func() {})
	b := e.Schedule(20, func() {})
	e.Schedule(30, func() {})
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d after 3 schedules, want 3", e.Pending())
	}
	a.Cancel()
	a.Cancel() // double-cancel must not double-decrement
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d after cancel, want 2", e.Pending())
	}
	e.RunUntil(20)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after firing b, want 1", e.Pending())
	}
	_ = b
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}

// TestPooledEventStaleHandle: events are recycled through a free list; a
// Timer handle from a fired event must go inert even when the underlying
// event object is reused by a later Schedule.
func TestPooledEventStaleHandle(t *testing.T) {
	e := New(1)
	first := e.Schedule(1, func() {})
	e.Run()
	if first.Active() {
		t.Fatal("fired timer still Active")
	}
	ran := false
	second := e.Schedule(2, func() { ran = true })
	// Likely reuses first's event object. Canceling the stale handle must
	// not cancel the new scheduling.
	first.Cancel()
	if !second.Active() {
		t.Fatal("new timer inactive after stale Cancel")
	}
	e.Run()
	if !ran {
		t.Fatal("recycled event's callback suppressed by stale handle")
	}
}

// TestCancelInsideCallback: canceling a not-yet-fired timer from within an
// event callback keeps Pending consistent and suppresses the callback.
func TestCancelInsideCallback(t *testing.T) {
	e := New(1)
	ran := false
	victim := e.Schedule(10, func() { ran = true })
	e.Schedule(5, func() { victim.Cancel() })
	e.Run()
	if ran {
		t.Fatal("canceled event still ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", e.Pending())
	}
}

// TestRescheduleSameTime: rescheduling to the event's current deadline is
// legal and keeps it firing exactly once.
func TestRescheduleSameTime(t *testing.T) {
	e := New(1)
	count := 0
	tm := e.Schedule(10, func() { count++ })
	tm.Reschedule(10)
	e.Run()
	if count != 1 {
		t.Fatalf("event fired %d times, want 1", count)
	}
}
