package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// engineConfig names one engine configuration for table-driven edge tests.
type engineConfig struct {
	name string
	cfg  Config
}

// engineConfigs returns every engine configuration; each edge-case test in
// this file runs against all of them, since the sharded queue, the
// sequential wheel and the heap must be indistinguishable. The sharded
// entries force StageThreshold 1 so the parallel staging path runs even at
// toy scale (and so the race detector sees it), and include a deliberately
// tiny lookahead so tests cross many barrier windows.
func engineConfigs() []engineConfig {
	return []engineConfig{
		{"sharded", Config{Seed: 1, StageThreshold: 1}},
		{"sharded-narrow", Config{Seed: 1, Shards: 3, Lookahead: 50 * Millisecond, StageThreshold: 1}},
		{"wheel", Config{Seed: 1, SequentialEngine: true}},
		{"heap", Config{Seed: 1, HeapScheduler: true}},
	}
}

func forBothEngines(t *testing.T, f func(t *testing.T, cfg Config)) {
	t.Helper()
	for _, ec := range engineConfigs() {
		t.Run(ec.name, func(t *testing.T) { f(t, ec.cfg) })
	}
}

// fingerprintRun drives one engine through a randomized schedule of
// schedules, cancels, reschedules, tickers and bounded runs — including
// far-future events that overflow the wheel — and hashes the exact firing
// sequence (time, marker). The op stream comes from its own rand source, so
// it is identical for both engines by construction; the hash then certifies
// the firing order is too.
func fingerprintRun(cfg Config, seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	cfg.Seed = seed
	e := NewEngine(cfg)
	h := fnv.New64a()
	record := func(marker int) {
		var buf [16]byte
		now := uint64(e.Now())
		m := uint64(marker)
		for i := 0; i < 8; i++ {
			buf[i] = byte(now >> (8 * i))
			buf[8+i] = byte(m >> (8 * i))
		}
		h.Write(buf[:])
	}
	var timers []*Timer
	var tickers []*Ticker
	nextMarker := 0
	finishing := false
	var mutate func()
	mutate = func() {
		for k := 0; k < 4; k++ {
			if r.Intn(3) == 0 {
				// Retag the current logical process; under the sharded queue
				// this spreads the schedule across shard wheels (including
				// out-of-range tags, which must fold in), and under the
				// sequential engines it must change nothing at all.
				e.SetShard(r.Intn(11) - 2)
			}
			switch r.Intn(12) {
			case 0, 1, 2: // near-future event that keeps the churn going
				m := nextMarker
				nextMarker++
				d := Time(r.Int63n(int64(10 * Minute)))
				timers = append(timers, e.After(d, func() {
					record(m)
					if nextMarker < 4000 {
						mutate()
					}
				}))
			case 3, 4: // same-instant event (tie-order coverage)
				m := nextMarker
				nextMarker++
				timers = append(timers, e.After(0, func() { record(m) }))
			case 5: // spans several wheel levels
				m := nextMarker
				nextMarker++
				d := Time(r.Int63n(int64(18 * Hour)))
				timers = append(timers, e.After(d, func() { record(m) }))
			case 6: // beyond the wheel horizon: overflow heap territory
				m := nextMarker
				nextMarker++
				d := 20*Hour + Time(r.Int63n(int64(30*Hour)))
				timers = append(timers, e.After(d, func() { record(m) }))
			case 7, 8: // cancel a random timer
				if len(timers) > 0 {
					timers[r.Intn(len(timers))].Cancel()
				}
			case 9, 10: // reschedule a random live timer in either direction
				if len(timers) > 0 {
					tm := timers[r.Intn(len(timers))]
					if tm.Active() {
						tm.Reschedule(e.Now() + Time(r.Int63n(int64(25*Hour))))
					}
				}
			case 11: // ticker churn: start one, sometimes stop one
				if len(tickers) > 0 && r.Intn(2) == 0 {
					tickers[r.Intn(len(tickers))].Stop()
				} else if len(tickers) < 20 && !finishing {
					m := nextMarker
					nextMarker++
					iv := Time(1+r.Int63n(int64(3*Minute))) * 17
					tickers = append(tickers, e.Every(iv, func() { record(m) }))
				}
			}
		}
	}
	e.After(0, mutate)
	// Mix bounded and unbounded execution so RunUntil's deadline handling is
	// part of the fingerprint.
	for i := 0; i < 10; i++ {
		e.RunUntil(e.Now() + Time(r.Int63n(int64(2*Hour))))
	}
	// Drain: no new tickers from here on, stop the live ones, run dry. The
	// drain phase still fires remaining one-shot events, including the
	// far-future overflow population.
	finishing = true
	for _, tk := range tickers {
		tk.Stop()
	}
	e.Run()
	record(-1) // final clock position
	return h.Sum64()
}

// TestEngineFingerprintEquivalence pins the tentpole contract: every engine
// configuration — sharded parallel queues of several shapes, the sequential
// timing wheel, the binary heap — fires exactly the same events at exactly
// the same times in exactly the same order, across randomized schedules
// that cover cancels, reschedules, tickers, ties, and overflow.
func TestEngineFingerprintEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		oracle := fingerprintRun(Config{HeapScheduler: true}, seed)
		for _, ec := range engineConfigs() {
			if got := fingerprintRun(ec.cfg, seed); got != oracle {
				t.Fatalf("seed %d: %s fingerprint %016x != heap fingerprint %016x", seed, ec.name, got, oracle)
			}
		}
	}
}

// TestRescheduleAcrossWheelLevels moves timers across every wheel level
// boundary — microseconds to hours — in both directions and checks the
// firing order.
func TestRescheduleAcrossWheelLevels(t *testing.T) {
	forBothEngines(t, func(t *testing.T, cfg Config) {
		e := NewEngine(cfg)
		var order []string
		a := e.Schedule(10*Microsecond, func() { order = append(order, "a") })
		b := e.Schedule(2*Hour, func() { order = append(order, "b") })
		c := e.Schedule(5*Second, func() { order = append(order, "c") })
		a.Reschedule(3 * Hour)         // level 0 → near the top of the wheel
		b.Reschedule(20 * Millisecond) // high level → level ~2
		c.Reschedule(30 * Hour)        // mid level → overflow
		d := e.Schedule(time500ms, func() { order = append(order, "d") })
		_ = d
		e.Run()
		want := "[b d a c]"
		if got := fmt.Sprint(order); got != want {
			t.Fatalf("order = %v, want %v", got, want)
		}
		if e.Pending() != 0 {
			t.Fatalf("pending = %d after run", e.Pending())
		}
	})
}

const time500ms = 500 * Millisecond

// TestOverflowCancelBeforePromotion cancels far-future events while they
// still sit in the overflow heap — before the wheel cursor ever gets close
// enough to promote them — and checks they neither fire nor leak.
func TestOverflowCancelBeforePromotion(t *testing.T) {
	forBothEngines(t, func(t *testing.T, cfg Config) {
		e := NewEngine(cfg)
		fired := 0
		far1 := e.Schedule(25*Hour, func() { fired++ })
		far2 := e.Schedule(40*Hour, func() { fired++ })
		kept := e.Schedule(30*Hour, func() { fired++ })
		far1.Cancel()
		if far1.Active() || !far2.Active() {
			t.Fatal("cancel state wrong before promotion")
		}
		if e.Pending() != 2 {
			t.Fatalf("pending = %d, want 2", e.Pending())
		}
		// Advance within the wheel's first block, then cancel the second
		// far event mid-run, still pre-promotion.
		e.Schedule(Hour, func() { far2.Cancel() })
		e.RunUntil(2 * Hour)
		if e.Pending() != 1 {
			t.Fatalf("pending = %d after mid-run cancel, want 1", e.Pending())
		}
		end := e.Run()
		if fired != 1 {
			t.Fatalf("fired = %d, want only the kept event", fired)
		}
		if end != 30*Hour || !(!kept.Active()) {
			t.Fatalf("end = %v, want 30h", end)
		}
	})
}

// TestOverflowRescheduleToNear reschedules an overflow event into the near
// future and a near event into overflow; both must fire exactly once at
// their final times.
func TestOverflowRescheduleToNear(t *testing.T) {
	forBothEngines(t, func(t *testing.T, cfg Config) {
		e := NewEngine(cfg)
		var fires []Time
		far := e.Schedule(30*Hour, func() { fires = append(fires, e.Now()) })
		near := e.Schedule(Second, func() { fires = append(fires, e.Now()) })
		far.Reschedule(2 * Second)
		near.Reschedule(25 * Hour)
		e.Run()
		if len(fires) != 2 || fires[0] != 2*Second || fires[1] != 25*Hour {
			t.Fatalf("fires = %v, want [2s 25h]", fires)
		}
	})
}

// TestSameInstantAtBucketBoundary schedules events for the same instant
// from very different distances — some land in level-0 buckets, some park
// at high wheel levels or overflow first — and checks FIFO tie order
// survives the cascades. The instants sit exactly on 64^k µs boundaries,
// where cascading is busiest.
func TestSameInstantAtBucketBoundary(t *testing.T) {
	boundaries := []Time{
		1 << (6 * 1), // level-1 boundary (64 µs)
		1 << (6 * 2), // level-2 boundary (4096 µs)
		1 << (6 * 3), // level-3 boundary
		1 << (6 * 4), // level-4 boundary
		3 << (6 * 4), // mid-range multiple
	}
	forBothEngines(t, func(t *testing.T, cfg Config) {
		for _, at := range boundaries {
			e := NewEngine(cfg)
			var got []int
			// Scheduled far in advance: parks at a high level.
			e.Schedule(at, func() { got = append(got, 0) })
			// Stepping stones pull the cursor forward so later schedules of
			// the same instant file at progressively lower levels.
			e.Schedule(at/2, func() {
				e.Schedule(at, func() { got = append(got, 1) })
			})
			e.Schedule(at-1, func() {
				e.Schedule(at, func() { got = append(got, 2) })
			})
			e.Run()
			if fmt.Sprint(got) != "[0 1 2]" {
				t.Fatalf("at boundary %d: order %v, want [0 1 2]", at, got)
			}
		}
	})
}

// TestTickerStopRestart stops a ticker, verifies silence, then starts a
// replacement and verifies it ticks on its own schedule — under both
// engines, since tickers are the wheel's hottest recurring clients.
func TestTickerStopRestart(t *testing.T) {
	forBothEngines(t, func(t *testing.T, cfg Config) {
		e := NewEngine(cfg)
		first, second := 0, 0
		tk := e.Every(Second, func() { first++ })
		e.RunUntil(3 * Second)
		tk.Stop()
		e.RunUntil(10 * Second)
		if first != 3 {
			t.Fatalf("first ticker ticked %d times, want 3", first)
		}
		tk2 := e.Every(2*Second, func() { second++ })
		e.RunUntil(20 * Second)
		tk2.Stop()
		e.RunUntil(30 * Second)
		if second != 5 {
			t.Fatalf("second ticker ticked %d times, want 5", second)
		}
		if e.Pending() != 0 {
			t.Fatalf("pending = %d after both stops", e.Pending())
		}
	})
}

// TestTickerRestartFromCallback stops and replaces a ticker from inside its
// own callback — the reentrant pattern model code uses for backoff.
func TestTickerRestartFromCallback(t *testing.T) {
	forBothEngines(t, func(t *testing.T, cfg Config) {
		e := NewEngine(cfg)
		var ticks []Time
		var tk *Ticker
		tk = e.Every(Second, func() {
			ticks = append(ticks, e.Now())
			if len(ticks) == 2 {
				tk.Stop()
				tk = e.Every(5*Second, func() {
					ticks = append(ticks, e.Now())
					if len(ticks) == 4 {
						tk.Stop()
					}
				})
			}
		})
		e.Run()
		want := []Time{Second, 2 * Second, 7 * Second, 12 * Second}
		if len(ticks) != len(want) {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
		for i := range want {
			if ticks[i] != want[i] {
				t.Fatalf("ticks = %v, want %v", ticks, want)
			}
		}
	})
}

// TestScheduleArgFiresLikeSchedule pins the pre-bound form to the closure
// form: same times, same order, argument delivered.
func TestScheduleArgFiresLikeSchedule(t *testing.T) {
	forBothEngines(t, func(t *testing.T, cfg Config) {
		e := NewEngine(cfg)
		var got []int
		e.ScheduleArg(2*Second, func(x any) { got = append(got, x.(int)) }, 2)
		e.AfterArg(Second, func(x any) { got = append(got, x.(int)) }, 1)
		e.Schedule(3*Second, func() { got = append(got, 3) })
		e.Run()
		if fmt.Sprint(got) != "[1 2 3]" {
			t.Fatalf("got %v", got)
		}
	})
}

// TestRunUntilThenScheduleBehindCursor advances the clock with RunUntil past
// stretches of empty time, then schedules between the deadline and the next
// pending event — the case where a naive wheel cursor would have overshot.
func TestRunUntilThenScheduleBehindCursor(t *testing.T) {
	forBothEngines(t, func(t *testing.T, cfg Config) {
		e := NewEngine(cfg)
		var fires []Time
		e.Schedule(10*Hour, func() { fires = append(fires, e.Now()) })
		e.RunUntil(Hour) // idle advance: next event far beyond the deadline
		if e.Now() != Hour {
			t.Fatalf("now = %v, want 1h", e.Now())
		}
		// Must land between the deadline and the parked 10h event.
		e.Schedule(2*Hour, func() { fires = append(fires, e.Now()) })
		e.Run()
		if len(fires) != 2 || fires[0] != 2*Hour || fires[1] != 10*Hour {
			t.Fatalf("fires = %v, want [2h 10h]", fires)
		}
	})
}
