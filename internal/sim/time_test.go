package sim

import "testing"

func TestDurationHelpers(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Minutes(5) != 300*Second || Minutes(0.5) != 30*Second {
		t.Fatalf("Minutes broken: %v %v", Minutes(5), Minutes(0.5))
	}
	if Hours(2) != 120*Minute || Hours(0.25) != 15*Minute {
		t.Fatalf("Hours broken: %v %v", Hours(2), Hours(0.25))
	}
	if Hours(1) != Minutes(60) || Minutes(1) != Seconds(60) {
		t.Fatal("unit helpers disagree")
	}
}
