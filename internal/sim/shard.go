package sim

import (
	"container/heap"
	"sync"
)

// Site-sharded parallel event queue, the engine's default. The grid model
// only couples sites through the WAN and through master heartbeats, so any
// window shorter than the minimum cross-site latency is a conservative
// lookahead: within it, each site's timer wheel can be settled independently.
// shardQ exploits exactly that structure — it partitions pending events into
// per-shard timing wheels (model layers tag events with their site via
// Engine.SetShard) and advances in windows of that lookahead:
//
//   - At each window barrier the queue picks the next window start (the
//     minimum lowerBound across shard wheels), then *stages* every shard in
//     parallel: one goroutine per shard settles that shard's wheel up to the
//     window end and extracts its due events, already (at, seq)-sorted.
//   - Between barriers, execution is serial and merged: pop returns the
//     global minimum (at, seq) across the staged lists' heads and the
//     overlay heap, so callbacks fire in exactly the order the sequential
//     wheel would fire them — bit-identical results, by construction, for
//     any shard count, lookahead, or tagging.
//   - Events scheduled by callbacks *inside* the current window (at <
//     windowEnd) cannot go to a shard wheel — the window is already staged —
//     so they land in the overlay heap, which the merge treats as one more
//     sorted source. Events at or beyond the window end go to their shard's
//     wheel; the wheel cursor never passes windowEnd-1, so no push can land
//     behind a cursor.
//
// The parallel phase touches only per-shard state (each wheel, each staged
// list, each event — an event belongs to exactly one shard); the engine's
// allocator, RNG, and sequence counter are touched only in the serial phase.
// That phase separation is what makes the queue race-free without locks.
const (
	stagedLevel  int8 = wheelLevels + 1 // in its shard's staged list at ev.index
	overlayLevel int8 = wheelLevels + 2 // in the overlay heap at ev.index

	defaultShards         = 8
	defaultLookahead      = Second
	defaultStageThreshold = 256
)

type shardQ struct {
	wheels []*wheelQ
	staged [][]*event // per shard: due events, (at, seq)-sorted, nil holes
	head   []int      // per shard: first unconsumed staged index
	over   eventHeap  // intra-window arrivals (at < windowEnd)

	windowEnd Time // exclusive: every event < windowEnd is staged or overlay
	resident  int  // events stored in shard wheels (all at >= windowEnd)
	stagedN   int  // events stored in staged lists (excluding holes)

	lookahead Time
	threshold int // resident count below which staging stays inline
}

func newShardQ(shards int, lookahead Time, threshold int) *shardQ {
	if shards <= 0 {
		shards = defaultShards
	}
	if lookahead <= 0 {
		lookahead = defaultLookahead
	}
	if threshold <= 0 {
		threshold = defaultStageThreshold
	}
	q := &shardQ{
		wheels:    make([]*wheelQ, shards),
		staged:    make([][]*event, shards),
		head:      make([]int, shards),
		lookahead: lookahead,
		threshold: threshold,
	}
	for i := range q.wheels {
		q.wheels[i] = newWheelQ()
	}
	return q
}

func (q *shardQ) size() int { return q.resident + q.stagedN + len(q.over) }

// push routes ev by time: inside the current window it joins the overlay
// heap (its shard's wheel is already staged past it), otherwise its shard's
// wheel. The shard tag is folded into range here, once, so every later
// unlink can index wheels[ev.shard] directly.
func (q *shardQ) push(ev *event) {
	if ev.at < q.windowEnd {
		heap.Push(&q.over, ev)
		ev.level = overlayLevel
		return
	}
	s := int(ev.shard)
	if s < 0 || s >= len(q.wheels) {
		s = s % len(q.wheels)
		if s < 0 {
			s += len(q.wheels)
		}
		ev.shard = int32(s)
	}
	q.wheels[s].push(ev)
	q.resident++
}

// update relocates ev after Reschedule changed its at and seq: unlink from
// wherever it lives now, then re-route. A staged entry leaves a nil hole —
// the sorted list is consumed from the head, so compaction would break the
// index invariant of its neighbours.
func (q *shardQ) update(ev *event) {
	switch ev.level {
	case stagedLevel:
		q.staged[ev.shard][ev.index] = nil
		ev.index = -1
		q.stagedN--
	case overlayLevel:
		heap.Remove(&q.over, ev.index)
	default:
		q.wheels[ev.shard].unlink(ev)
		q.resident--
	}
	q.push(ev)
}

func (q *shardQ) peek(limit Time) (Time, bool) {
	ev := q.ensure(limit)
	if ev == nil || ev.at > limit {
		return 0, false
	}
	return ev.at, true
}

func (q *shardQ) pop() *event {
	ev := q.ensure(maxTime)
	if ev == nil {
		return nil
	}
	switch ev.level {
	case overlayLevel:
		heap.Pop(&q.over)
	default: // stagedLevel: ev sits at its shard's head
		q.staged[ev.shard][q.head[ev.shard]] = nil
		q.head[ev.shard]++
		q.stagedN--
		ev.index = -1
	}
	return ev
}

// minPending returns the globally minimum (at, seq) event among the staged
// heads and the overlay, or nil when both are exhausted. Staged and overlay
// events all precede windowEnd while wheel residents are all at or beyond
// it, so this minimum — when it exists — is the queue's true minimum.
func (q *shardQ) minPending() *event {
	var best *event
	for i, st := range q.staged {
		h := q.head[i]
		for h < len(st) && st[h] == nil {
			h++ // holes left by Reschedule
		}
		q.head[i] = h
		if h < len(st) {
			if ev := st[h]; best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best = ev
			}
		}
	}
	if len(q.over) > 0 {
		if ev := q.over[0]; best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
			best = ev
		}
	}
	return best
}

// ensure opens synchronization windows until some pending event is exposed,
// or until every remaining event provably lies beyond limit. Each round
// either stages events or strictly tightens the binding shard's lowerBound
// (the bound's candidate is within the attempted window, so that shard's
// settle must cascade), so the loop terminates.
func (q *shardQ) ensure(limit Time) *event {
	for {
		if ev := q.minPending(); ev != nil {
			return ev
		}
		if q.resident == 0 {
			return nil
		}
		lb := maxTime
		for _, w := range q.wheels {
			if t, ok := w.lowerBound(); ok && t < lb {
				lb = t
			}
		}
		if lb > limit {
			return nil // even the loosest bound clears the deadline
		}
		q.startWindow(lb)
	}
}

// startWindow advances the barrier to [start, start+lookahead) and stages
// every shard: settle each wheel to the window end and extract its due
// events in (at, seq) order. With enough resident work the shards stage on
// parallel goroutines — the phase that buys multi-core wall-clock at
// GIGA-GRID scale — and inline below the threshold, where goroutine
// handoff would cost more than it saves. Both paths produce identical
// staged lists.
func (q *shardQ) startWindow(start Time) {
	end := start + q.lookahead
	if end < start { // arithmetic overflow near maxTime
		end = maxTime
	}
	q.windowEnd = end
	stageLimit := end - 1 // wheel cursors must stay short of windowEnd
	work := 0
	for i, w := range q.wheels {
		q.staged[i] = q.staged[i][:0] // consumed last window; keep backing array
		q.head[i] = 0
		if w.size() > 0 {
			work++
		}
	}
	if work >= 2 && q.resident >= q.threshold {
		var wg sync.WaitGroup
		for i, w := range q.wheels {
			if w.size() == 0 {
				continue
			}
			wg.Add(1)
			go func(i int, w *wheelQ) {
				defer wg.Done()
				q.stageShard(i, w, stageLimit)
			}(i, w)
		}
		wg.Wait()
	} else {
		for i, w := range q.wheels {
			if w.size() > 0 {
				q.stageShard(i, w, stageLimit)
			}
		}
	}
	for i := range q.staged {
		n := len(q.staged[i])
		q.stagedN += n
		q.resident -= n
	}
}

// stageShard drains shard i's due events into its staged list. It touches
// only shard-i state, so concurrent calls for distinct shards never race.
func (q *shardQ) stageShard(i int, w *wheelQ, limit Time) {
	dst := q.staged[i]
	for w.settle(limit) {
		ev := w.popReady()
		ev.level = stagedLevel
		ev.index = len(dst)
		dst = append(dst, ev)
	}
	q.staged[i] = dst
}
