package sim

import "math/rand"

// CountingSource wraps the standard library's seeded PRNG source and counts
// how many values have been drawn from it. The wrapper forwards every draw
// unchanged, so a Rand built on a CountingSource produces exactly the same
// stream as one built on rand.NewSource with the same seed — swapping it in
// changes no simulation result.
//
// The count is the snapshot representation of the stream's position: a
// snapshot records (seed, draws), and a deterministic replay from the same
// seed must land on the same draw count — any divergence means some code
// path consumed randomness it did not consume in the original run (a hidden
// or unregistered random source, the exact bug the snapshot census exists
// to catch).
type CountingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// NewCountingSource returns a counting wrapper around rand.NewSource(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count with the stream.
func (s *CountingSource) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// SeedValue returns the seed the stream was created (or last re-seeded) with.
func (s *CountingSource) SeedValue() int64 { return s.seed }

// Draws returns the number of values drawn since the last seeding.
func (s *CountingSource) Draws() uint64 { return s.draws }
