package sim

import (
	"runtime"
	"sync"
)

// ScanChunks is the fixed number of chunks ParallelScan splits a range
// into. It is a constant — not GOMAXPROCS — so per-chunk intermediate
// state a caller keeps (candidate slices, partial counts) has the same
// layout on every machine.
const ScanChunks = 8

// ParallelScan runs f over the index range [0, n). Under the sharded
// engine, when the range is at least minN and more than one CPU is
// available, the range is split into ScanChunks half-open chunks
// f(chunk, lo, hi) executed on parallel goroutines; otherwise f runs
// once, inline, over the whole range.
//
// This is the escape hatch for the model layer's big periodic scans
// (dead-tracker checks, reported-alive sampling): the event callbacks
// themselves must stay serial to preserve the global firing order, but a
// read-only scan *inside* one callback can fan out freely. The contract
// that keeps results bit-identical to a sequential run is the caller's:
// f must only read simulation state and write state owned by its chunk
// index, and the caller must merge per-chunk results in chunk order —
// chunks cover contiguous ascending ranges, so that merge reproduces the
// plain loop's order exactly.
func (e *Engine) ParallelScan(n, minN int, f func(chunk, lo, hi int)) {
	if !e.sharded || n < minN || runtime.NumCPU() < 2 {
		f(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(ScanChunks)
	for c := 0; c < ScanChunks; c++ {
		go func(c int) {
			defer wg.Done()
			f(c, c*n/ScanChunks, (c+1)*n/ScanChunks)
		}(c)
	}
	wg.Wait()
}
