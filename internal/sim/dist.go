package sim

import (
	"math"
	"math/rand"
)

// Dist is a distribution of durations used for stochastic model parameters
// (node lifetimes, provisioning delays, inter-arrival gaps). Samples are
// drawn from the engine's random source so runs stay deterministic.
type Dist interface {
	// Sample draws one duration. Implementations must never return a
	// negative duration.
	Sample(r *rand.Rand) Time
	// Mean returns the distribution's expected value, used by schedulers
	// and by documentation/reporting.
	Mean() Time
}

// Constant is a degenerate distribution that always returns V.
type Constant struct{ V Time }

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) Time { return c.V }

// Mean implements Dist.
func (c Constant) Mean() Time { return c.V }

// Exponential is an exponential distribution with the given mean, the
// classic memoryless model for preemption lifetimes and job inter-arrival
// times (the paper samples inter-arrival gaps from an exponential with a
// 14 second mean).
type Exponential struct{ M Time }

// Sample implements Dist.
func (d Exponential) Sample(r *rand.Rand) Time {
	return Time(r.ExpFloat64() * float64(d.M))
}

// Mean implements Dist.
func (d Exponential) Mean() Time { return d.M }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi Time }

// Sample implements Dist.
func (d Uniform) Sample(r *rand.Rand) Time {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	return d.Lo + Time(r.Int63n(int64(d.Hi-d.Lo)+1))
}

// Mean implements Dist.
func (d Uniform) Mean() Time { return (d.Lo + d.Hi) / 2 }

// Normal is a truncated-at-zero normal distribution.
type Normal struct{ Mu, Sigma Time }

// Sample implements Dist.
func (d Normal) Sample(r *rand.Rand) Time {
	v := r.NormFloat64()*float64(d.Sigma) + float64(d.Mu)
	if v < 0 {
		v = 0
	}
	return Time(v)
}

// Mean implements Dist. The truncation bias is ignored; for the parameters
// used in this repo (sigma << mu) it is negligible.
func (d Normal) Mean() Time { return d.Mu }

// Shifted adds a fixed offset to another distribution, e.g. a constant
// startup cost plus an exponential queueing delay for glide-in provisioning.
type Shifted struct {
	Offset Time
	D      Dist
}

// Sample implements Dist.
func (d Shifted) Sample(r *rand.Rand) Time { return d.Offset + d.D.Sample(r) }

// Mean implements Dist.
func (d Shifted) Mean() Time { return d.Offset + d.D.Mean() }

// LogNormal is a log-normal distribution parameterised by the mean and
// sigma of the underlying normal (in log-space of seconds). Heavy-tailed
// delays such as batch-queue waits are commonly log-normal.
type LogNormal struct {
	MuLog, SigmaLog float64
}

// Sample implements Dist.
func (d LogNormal) Sample(r *rand.Rand) Time {
	v := math.Exp(r.NormFloat64()*d.SigmaLog + d.MuLog)
	return Seconds(v)
}

// Mean implements Dist.
func (d LogNormal) Mean() Time {
	return Seconds(math.Exp(d.MuLog + d.SigmaLog*d.SigmaLog/2))
}
