package sim

import "fmt"

// Time is a virtual timestamp measured in integer microseconds since the
// start of the simulation. Integer arithmetic keeps event ordering exact and
// runs deterministic across platforms.
type Time int64

// Duration units. A Duration and a Time share the same representation; the
// engine only ever adds durations to timestamps, so a single type keeps the
// arithmetic free of conversions.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Milliseconds converts a floating-point number of milliseconds to a Time.
func Milliseconds(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Minutes converts a floating-point number of minutes to a Time.
func Minutes(m float64) Time { return Time(m * float64(Minute)) }

// Hours converts a floating-point number of hours to a Time.
func Hours(h float64) Time { return Time(h * float64(Hour)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }
