package sim

import (
	"container/heap"
	"math"
	"math/bits"
)

// Hierarchical timing wheel (Varghese & Lauer), the engine's default event
// queue. Six levels of 64 slots each cover the 64^6 µs (~19.1 h) block of
// virtual time around the wheel cursor; events in a later block wait in an
// overflow heap and are promoted as the cursor approaches. Scheduling and
// canceling are O(1); firing pays amortized O(levels) cursor movement
// instead of the heap's O(log pending) — the win that matters when
// thousands of periodic heartbeat and scan timers keep the pending set
// large.
//
// Placement follows the kernel-timer rule: an event is filed at the level
// of the highest base-64 digit where its timestamp differs from the cursor,
// in the slot named by the event's digit at that level. That keeps every
// occupied slot unambiguous (one slot, one time window) and strictly ahead
// of the cursor, because a stored event always shares all digits above its
// level with the cursor.
//
// Ordering contract: events fire in exactly (at, seq) order, bit-identical
// to the binary heap. Level-0 slots span a single microsecond, so a ready
// bucket holds only events of one instant and firing picks the minimum
// seq; settle never advances the cursor past an occupied slot's window
// start, cascading higher-level slots down (ties prefer the higher level)
// before any same-instant level-0 bucket fires.
const (
	wheelSlotBits = 6
	wheelSlots    = 1 << wheelSlotBits
	wheelSlotMask = wheelSlots - 1
	wheelLevels   = 6
	wheelBits     = wheelSlotBits * wheelLevels

	overflowLevel int8 = wheelLevels
	maxTime       Time = math.MaxInt64
)

// wheelQ implements evqueue on the hierarchical wheel plus overflow heap.
type wheelQ struct {
	base  Time // cursor: all stored events have at >= base
	count int  // events stored in wheel buckets (including canceled)

	occ   [wheelLevels]uint64 // per-level slot occupancy bitmaps
	slots [wheelLevels][wheelSlots][]*event

	over eventHeap // events whose top digits differ from the cursor's

	// settle caches the location of the global minimum: a level-0 bucket
	// whose events all share at == readyTime. Buckets keep their backing
	// arrays when drained (per-bucket free lists), so steady-state ticking
	// allocates nothing.
	readyValid bool
	readyTime  Time
	readySlot  int
}

func newWheelQ() *wheelQ { return &wheelQ{} }

func (w *wheelQ) size() int { return w.count + len(w.over) }

// push files ev at the level of its highest digit differing from the
// cursor; events beyond the cursor's top-level block go to the overflow
// heap. Callers guarantee at >= base (the engine never schedules in the
// past, and the cursor never passes now).
func (w *wheelQ) push(ev *event) {
	if w.readyValid && ev.at < w.readyTime {
		w.readyValid = false
	}
	diff := uint64(ev.at ^ w.base)
	if diff>>wheelBits != 0 {
		heap.Push(&w.over, ev)
		ev.level = overflowLevel
		return
	}
	l := 0
	if diff != 0 {
		l = (bits.Len64(diff) - 1) / wheelSlotBits
	}
	slot := int(ev.at>>(wheelSlotBits*l)) & wheelSlotMask
	b := w.slots[l][slot]
	ev.level = int8(l)
	ev.slot = int16(slot)
	ev.index = len(b)
	w.slots[l][slot] = append(b, ev)
	w.occ[l] |= 1 << slot
	w.count++
}

// unlink removes a stored event from its bucket or the overflow heap.
func (w *wheelQ) unlink(ev *event) {
	if ev.level == overflowLevel {
		heap.Remove(&w.over, ev.index)
	} else {
		l, slot := int(ev.level), int(ev.slot)
		b := w.slots[l][slot]
		last := len(b) - 1
		if ev.index != last {
			moved := b[last]
			b[ev.index] = moved
			moved.index = ev.index
		}
		b[last] = nil
		w.slots[l][slot] = b[:last]
		if last == 0 {
			w.occ[l] &^= 1 << slot
		}
		w.count--
		ev.index = -1
	}
	w.readyValid = false
}

// update relocates ev after Reschedule changed its at and seq. The old
// location fields (level, slot, index) still describe where it is stored.
func (w *wheelQ) update(ev *event) {
	w.unlink(ev)
	w.push(ev)
}

// settle advances the cursor — cascading higher-level slots and promoting
// overflow events — until the globally earliest event sits in a level-0
// bucket, then caches that bucket. It never advances the cursor past limit,
// so a bounded RunUntil leaves the wheel able to accept events between the
// last fire and the deadline. Returns whether a minimum exists with
// readyTime <= limit.
//
// Every cursor advance is to the minimum candidate window start, which is a
// lower bound on every stored event: the cursor can therefore never skip an
// event, and — because an advance stays at or below each level's earliest
// occupied window — the digit-sharing placement invariant survives every
// advance without re-filing untouched slots.
func (w *wheelQ) settle(limit Time) bool {
	if w.readyValid {
		return w.readyTime <= limit
	}
	for {
		if w.count == 0 && len(w.over) == 0 {
			return false
		}
		// Earliest candidate across levels: the lowest occupied slot (slots
		// never trail the cursor digit, so slot order is time order); its
		// window start is a lower bound for every event it holds, exact at
		// level 0 where a slot spans a single µs. Ties prefer higher levels
		// so same-instant events always merge down before firing.
		bestLevel := -1
		var bestTime Time
		bestSlot := 0
		for l := 0; l < wheelLevels; l++ {
			if w.occ[l] == 0 {
				continue
			}
			shift := uint(wheelSlotBits * l)
			s := bits.TrailingZeros64(w.occ[l])
			span := Time(1) << shift
			align := w.base &^ (span*wheelSlots - 1)
			start := align + Time(s)*span
			if bestLevel < 0 || start <= bestTime {
				bestLevel, bestTime, bestSlot = l, start, s
			}
		}
		promote := false
		if len(w.over) > 0 && (bestLevel < 0 || w.over[0].at <= bestTime) {
			promote, bestTime = true, w.over[0].at
		}
		if bestTime > limit && (promote || bestLevel != 0) {
			return false // lower bound already beyond limit; min is too
		}
		if promote {
			w.base = bestTime
			for len(w.over) > 0 && uint64(w.over[0].at^w.base)>>wheelBits == 0 {
				w.push(heap.Pop(&w.over).(*event))
			}
			continue
		}
		if bestLevel == 0 {
			w.readyValid, w.readyTime, w.readySlot = true, bestTime, bestSlot
			return bestTime <= limit
		}
		// Cascade: advance the cursor to the slot's window start and re-file
		// its events; each now shares its level digit with the cursor, so
		// each lands at a strictly lower level. The bucket keeps its backing
		// array for reuse.
		w.base = bestTime
		b := w.slots[bestLevel][bestSlot]
		w.slots[bestLevel][bestSlot] = b[:0]
		w.occ[bestLevel] &^= 1 << bestSlot
		w.count -= len(b)
		for i, ev := range b {
			w.push(ev) // strictly lower level: never appends to b itself
			b[i] = nil
		}
	}
}

// lowerBound returns a lower bound on the earliest stored event without
// moving the cursor: the minimum candidate window start across levels (the
// same candidates settle considers) and the overflow head. The bound is
// exact once the minimum sits in a level-0 bucket; otherwise a following
// settle tightens it by cascading, so repeated lowerBound/settle rounds
// converge on the true minimum within wheelLevels cascades. The sharded
// queue uses it to pick the next synchronization window without settling
// a shard past the window's end.
func (w *wheelQ) lowerBound() (Time, bool) {
	if w.readyValid {
		return w.readyTime, true
	}
	if w.count == 0 && len(w.over) == 0 {
		return 0, false
	}
	best := maxTime
	for l := 0; l < wheelLevels; l++ {
		if w.occ[l] == 0 {
			continue
		}
		shift := uint(wheelSlotBits * l)
		s := bits.TrailingZeros64(w.occ[l])
		span := Time(1) << shift
		align := w.base &^ (span*wheelSlots - 1)
		if start := align + Time(s)*span; start < best {
			best = start
		}
	}
	if len(w.over) > 0 && w.over[0].at < best {
		best = w.over[0].at
	}
	return best, true
}

func (w *wheelQ) peek(limit Time) (Time, bool) {
	if !w.settle(limit) {
		return 0, false
	}
	return w.readyTime, true
}

// pop removes and returns the minimum-(at, seq) event. All events in the
// ready bucket share the same at, so the minimum seq decides.
func (w *wheelQ) pop() *event {
	if !w.settle(maxTime) {
		return nil
	}
	return w.popReady()
}

// popReady removes the minimum-seq event from the settled ready bucket.
// Callers guarantee a preceding settle returned true.
func (w *wheelQ) popReady() *event {
	b := w.slots[0][w.readySlot]
	mi := 0
	for i := 1; i < len(b); i++ {
		if b[i].seq < b[mi].seq {
			mi = i
		}
	}
	ev := b[mi]
	last := len(b) - 1
	if mi != last {
		b[mi] = b[last]
		b[mi].index = mi
	}
	b[last] = nil
	w.slots[0][w.readySlot] = b[:last]
	w.count--
	if last == 0 {
		w.occ[0] &^= 1 << w.readySlot
		w.readyValid = false
	}
	ev.index = -1
	return ev
}
