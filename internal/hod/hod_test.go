package hod

import (
	"testing"

	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/sim"
	"hog/internal/workload"
)

func smallSchedule(seed int64) *workload.Schedule {
	// A handful of small jobs keeps the per-job simulations fast.
	bins := workload.Table2()[:3]
	for i := range bins {
		bins[i].Jobs = 2
	}
	return workload.Generate(seed, workload.Config{Bins: bins})
}

func TestHODRunsSchedule(t *testing.T) {
	sched := smallSchedule(1)
	res := Run(sched, DefaultConfig(20, 1))
	if len(res.Jobs) != len(sched.Jobs) {
		t.Fatalf("results = %d, want %d", len(res.Jobs), len(sched.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.Provision <= 0 {
			t.Fatalf("job %s has no provisioning overhead", jr.Name)
		}
		if jr.Runtime <= 0 {
			t.Fatalf("job %s has no runtime", jr.Name)
		}
		if jr.Response != jr.Provision+jr.Staging+jr.Runtime {
			t.Fatalf("job %s response arithmetic wrong: %+v", jr.Name, jr)
		}
	}
	if res.ReconstructionOverhead <= 0 {
		t.Fatal("no reconstruction overhead accumulated")
	}
	if res.ResponseTime <= sched.Span() {
		t.Fatal("workload response time earlier than last submission")
	}
	if res.TimedOut != 0 {
		t.Fatalf("%d small jobs flagged as timed out", res.TimedOut)
	}
}

// TestHODTimeoutFlagged: a job that cannot finish inside the simulation cap
// must be flagged TimedOut, not silently reported as a completed job whose
// Runtime equals the cap (the old behaviour skewed the §V comparison).
func TestHODTimeoutFlagged(t *testing.T) {
	// 60 maps on a 2-slot ephemeral cluster needs ~48 min of map compute
	// (96 s per 64 MB block at the default cost model); cap at 20 minutes.
	sched := &workload.Schedule{Jobs: []workload.JobSpec{{
		Name: "stuck", Bin: 6, Maps: 60, Reduces: 0, InputBytes: 60 * 64e6,
	}}}
	cfg := Config{
		NodesPerJob: 2, Churn: grid.ChurnNone, StageRateBps: 200e6,
		RunBound: 20 * sim.Minute, Seed: 5,
	}
	res := Run(sched, cfg)
	if res.TimedOut != 1 || !res.Jobs[0].TimedOut {
		t.Fatalf("timeout not flagged: doc=%d job=%v", res.TimedOut, res.Jobs[0].TimedOut)
	}
	if res.Jobs[0].Runtime < cfg.RunBound {
		t.Fatalf("timed-out runtime %v below the %v cap", res.Jobs[0].Runtime, cfg.RunBound)
	}
}

func TestHODOverheadDominatesSmallJobs(t *testing.T) {
	// HOD's defining weakness: for tiny jobs, cluster reconstruction
	// (provision + staging) exceeds the useful runtime.
	bins := []workload.Bin{{Bin: 1, Maps: 1, Reduces: 1, Jobs: 3}}
	sched := workload.Generate(2, workload.Config{Bins: bins})
	res := Run(sched, DefaultConfig(20, 2))
	for _, jr := range res.Jobs {
		if jr.Provision+jr.Staging < jr.Runtime/4 {
			t.Fatalf("job %s reconstruction %v negligible vs runtime %v — HOD model not penalising", jr.Name, jr.Provision+jr.Staging, jr.Runtime)
		}
	}
}

func TestHODSlowerThanHOGForSchedule(t *testing.T) {
	// HOG runs the same schedule on a persistent 20-node platform.
	sched := smallSchedule(3)
	hodRes := Run(sched, DefaultConfig(20, 3))
	sys := core.New(core.HOGConfig(20, grid.ChurnStable, 3))
	hogRes := sys.RunWorkload(sched)
	// HOG's response excludes provisioning (platform pre-built, as in the
	// paper's procedure), so add nothing; HOD pays per-job reconstruction.
	if hodRes.ResponseTime <= hogRes.ResponseTime {
		t.Fatalf("HOD (%v) not slower than HOG (%v) on small-job schedule", hodRes.ResponseTime, hogRes.ResponseTime)
	}
}

func TestHODDeterministic(t *testing.T) {
	sched := smallSchedule(4)
	a := Run(sched, DefaultConfig(15, 4))
	b := Run(sched, DefaultConfig(15, 4))
	if a.ResponseTime != b.ResponseTime {
		t.Fatalf("HOD non-deterministic: %v vs %v", a.ResponseTime, b.ResponseTime)
	}
}

func TestHODDefaults(t *testing.T) {
	sched := workload.Generate(5, workload.Config{Bins: []workload.Bin{{Bin: 1, Maps: 1, Reduces: 1, Jobs: 1}}})
	res := Run(sched, Config{Seed: 5, NodesPerJob: 0, StageRateBps: 0, Churn: grid.ChurnNone})
	if len(res.Jobs) != 1 {
		t.Fatal("defaulted config did not run")
	}
	if res.Jobs[0].Staging <= 0 {
		t.Fatal("staging time missing")
	}
	_ = sim.Second
}
