// Package hod models Hadoop On Demand, the related-work baseline of §V: for
// every job, HOD allocates nodes from the grid scheduler, constructs a
// temporary Hadoop cluster, stages the input, runs the job, and tears the
// cluster down. Its weaknesses versus HOG — per-job reconstruction overhead,
// a fixed node count, and cold HDFS — fall out of exactly that sequence.
//
// Each HOD job runs in an isolated simulation: ephemeral clusters share no
// Hadoop state, and the OSG is large enough that concurrent small clusters
// do not contend for slots. Cross-cluster WAN contention is the one
// interaction this independence approximation drops; DESIGN.md records it.
package hod

import (
	"hog/internal/core"
	"hog/internal/grid"
	"hog/internal/mapred"
	"hog/internal/sim"
	"hog/internal/workload"
)

// Config parameterises the HOD baseline.
type Config struct {
	// NodesPerJob is HOD's fixed cluster size per job.
	NodesPerJob int
	// Churn applies to the ephemeral cluster's nodes too.
	Churn grid.ChurnProfile
	// StageRateBps is the rate at which input data is staged into the fresh
	// cluster's HDFS from grid storage before the job can start.
	StageRateBps float64
	// RunBound caps one job's simulated runtime; a job still unfinished at
	// the bound is reported with TimedOut set. Defaults to 24 hours.
	RunBound sim.Time
	// ScanScheduler forces the linear-scan assignment path in the ephemeral
	// clusters (the schedulers are bit-identical; see mapred.Config).
	ScanScheduler bool
	// Seed drives all per-job simulations.
	Seed int64
}

// DefaultConfig returns a HOD setup comparable to a small HOG pool.
func DefaultConfig(nodesPerJob int, seed int64) Config {
	return Config{
		NodesPerJob:  nodesPerJob,
		Churn:        grid.ChurnStable,
		StageRateBps: 200e6,
		Seed:         seed,
	}
}

// JobResult is one HOD job execution.
type JobResult struct {
	Name      string
	Bin       int
	Provision sim.Time // wait for the per-job cluster
	Staging   sim.Time // input upload into cold HDFS
	Runtime   sim.Time // the job itself
	Response  sim.Time // provision + staging + runtime
	// TimedOut marks a job whose simulation hit the 24-hour cap without
	// completing: Runtime is the cap, not a completion time. §V comparisons
	// must flag or exclude such jobs instead of counting them as finished.
	TimedOut bool
}

// Result is a whole-schedule HOD execution.
type Result struct {
	Jobs []JobResult
	// ResponseTime is when the last job finishes, measured from schedule
	// start (jobs run on independent ephemeral clusters, concurrently).
	// When TimedOut > 0 it is a lower bound, not a completion time.
	ResponseTime sim.Time
	// ReconstructionOverhead sums provision+staging across jobs — the work
	// HOG does not repeat per job.
	ReconstructionOverhead sim.Time
	// TimedOut counts jobs truncated at the 24-hour simulation cap.
	TimedOut int
}

// Run executes the schedule under HOD semantics.
func Run(sched *workload.Schedule, cfg Config) *Result {
	if cfg.NodesPerJob <= 0 {
		cfg.NodesPerJob = 30
	}
	if cfg.StageRateBps <= 0 {
		cfg.StageRateBps = 200e6
	}
	if cfg.RunBound <= 0 {
		cfg.RunBound = 24 * sim.Hour
	}
	res := &Result{}
	for i, js := range sched.Jobs {
		jr := runOne(js, cfg, cfg.Seed+int64(i)*7919)
		res.Jobs = append(res.Jobs, jr)
		if end := js.Submit + jr.Response; end > res.ResponseTime {
			res.ResponseTime = end
		}
		res.ReconstructionOverhead += jr.Provision + jr.Staging
		if jr.TimedOut {
			res.TimedOut++
		}
	}
	return res
}

func runOne(js workload.JobSpec, cfg Config, seed int64) JobResult {
	sys := core.New(hodClusterConfig(cfg, seed))
	sys.AwaitNodes()
	provision := sys.Eng.Now()

	// Stage the input into the cold per-job HDFS at the staging rate, then
	// seed the replicas.
	staging := sim.Time(js.InputBytes / cfg.StageRateBps * float64(sim.Second))
	sys.Eng.RunUntil(sys.Eng.Now() + staging)
	sys.NN.SeedFile("/in/"+js.Name, js.InputBytes, 0)

	costs := core.DefaultJobCosts()
	start := sys.Eng.Now()
	j := sys.JT.Submit(mapred.JobConfig{
		Name:              js.Name,
		InputFile:         "/in/" + js.Name,
		Reduces:           js.Reduces,
		MapSelectivity:    costs.MapSelectivity,
		ReduceSelectivity: costs.ReduceSelectivity,
		MapCostPerMB:      costs.MapCostPerMB,
		SortCostPerMB:     costs.SortCostPerMB,
		ReduceCostPerMB:   costs.ReduceCostPerMB,
		Bin:               js.Bin,
	})
	bound := start + cfg.RunBound
	sys.Eng.RunWhile(func() bool {
		return !sys.JT.AllDone() && sys.Eng.Now() < bound
	})
	runtime := sys.Eng.Now() - start
	_ = j
	return JobResult{
		Name:      js.Name,
		Bin:       js.Bin,
		Provision: provision,
		Staging:   staging,
		Runtime:   runtime,
		Response:  provision + staging + runtime,
		// A job still unfinished at the cap used to be reported as completed
		// with Runtime = RunBound; flag the truncation instead.
		TimedOut: !sys.JT.AllDone(),
	}
}

// hodClusterConfig builds a HOG-like grid config for one ephemeral cluster,
// with stock Hadoop HDFS settings: HOD deploys vanilla Hadoop, so no site
// awareness tuning, replication 3, traditional timeouts.
func hodClusterConfig(cfg Config, seed int64) core.Config {
	c := core.HOGConfig(cfg.NodesPerJob, cfg.Churn, seed)
	c.HDFS.Replication = 3
	c.HDFS.DeadTimeout = 900 * sim.Second
	c.HDFS.SiteAware = false
	c.MapRed.TrackerTimeout = 900 * sim.Second
	c.MapRed.ScanScheduler = cfg.ScanScheduler
	return c
}
