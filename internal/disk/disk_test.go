package disk

import (
	"testing"
	"testing/quick"

	"hog/internal/netmodel"
)

func TestReserveRelease(t *testing.T) {
	tr := NewTracker()
	n := netmodel.NodeID(1)
	tr.SetCapacity(n, 100)
	if !tr.Reserve(n, 60) {
		t.Fatal("reserve within capacity failed")
	}
	if tr.Used(n) != 60 || tr.Free(n) != 40 {
		t.Fatalf("used/free = %v/%v", tr.Used(n), tr.Free(n))
	}
	if tr.Utilization(n) != 0.6 {
		t.Fatalf("utilization = %v", tr.Utilization(n))
	}
	tr.Release(n, 20)
	if tr.Used(n) != 40 {
		t.Fatalf("used = %v after release", tr.Used(n))
	}
}

func TestOverflow(t *testing.T) {
	tr := NewTracker()
	n := netmodel.NodeID(2)
	tr.SetCapacity(n, 100)
	var fired []float64
	tr.OnOverflow = func(id netmodel.NodeID, req float64) {
		if id != n {
			t.Errorf("overflow on wrong node %d", id)
		}
		fired = append(fired, req)
	}
	if tr.Reserve(n, 150) {
		t.Fatal("overflow reserve succeeded")
	}
	if tr.Used(n) != 0 {
		t.Fatal("failed reserve consumed space")
	}
	if len(fired) != 1 || fired[0] != 150 {
		t.Fatalf("overflow callback = %v", fired)
	}
	if tr.Overflows() != 1 {
		t.Fatalf("overflows = %d", tr.Overflows())
	}
}

func TestUnknownNode(t *testing.T) {
	tr := NewTracker()
	n := netmodel.NodeID(3)
	if tr.Capacity(n) != 0 || tr.Utilization(n) != 0 || tr.Free(n) != 0 {
		t.Fatal("unknown node should read as zero")
	}
	if tr.Reserve(n, 1) {
		t.Fatal("reserve on zero-capacity node succeeded")
	}
}

func TestClearAndClampedRelease(t *testing.T) {
	tr := NewTracker()
	n := netmodel.NodeID(4)
	tr.SetCapacity(n, 100)
	tr.Reserve(n, 80)
	tr.Clear(n)
	if tr.Used(n) != 0 {
		t.Fatal("clear did not zero usage")
	}
	tr.Release(n, 50) // late release after wipe must clamp
	if tr.Used(n) != 0 {
		t.Fatalf("used went negative: %v", tr.Used(n))
	}
}

func TestNegativeOpsPanic(t *testing.T) {
	tr := NewTracker()
	tr.SetCapacity(1, 10)
	for _, f := range []func(){
		func() { tr.Reserve(1, -1) },
		func() { tr.Release(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative byte op did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: any sequence of successful reserves and matching releases leaves
// used in [0, capacity].
func TestAccountingProperty(t *testing.T) {
	f := func(ops []int16) bool {
		tr := NewTracker()
		n := netmodel.NodeID(0)
		tr.SetCapacity(n, 1000)
		var held []float64
		for _, op := range ops {
			if op >= 0 {
				b := float64(op)
				if tr.Reserve(n, b) {
					held = append(held, b)
				}
			} else if len(held) > 0 {
				tr.Release(n, held[len(held)-1])
				held = held[:len(held)-1]
			}
			if tr.Used(n) < 0 || tr.Used(n) > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
