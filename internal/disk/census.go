package disk

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Census is a deterministic digest of scratch-disk accounting, recorded in
// snapshots and re-checked after a deterministic replay.
type Census struct {
	Nodes     int     `json:"nodes"`
	UsedTotal float64 `json:"used_total"`
	Overflows int     `json:"overflows"`
	Hash      uint64  `json:"hash"`
}

// Census digests the tracker's state; the hash covers every node's used
// bytes in node-ID order.
func (t *Tracker) Census() Census {
	c := Census{Nodes: len(t.used), Overflows: t.overflows}
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, u := range t.used {
		c.UsedTotal += u
		put(math.Float64bits(u))
	}
	put(uint64(t.overflows))
	c.Hash = h.Sum64()
	return c
}
