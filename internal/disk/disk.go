// Package disk tracks per-node scratch-disk usage shared between HDFS block
// replicas and MapReduce intermediate output.
//
// The paper's §IV.D.2 ("Disk Overflow") observes that the high replication
// factor plus slow WAN reduces let intermediate map output accumulate until
// worker nodes run out of disk and fail. Modelling that failure mode requires
// a single accounting of both consumers per node, which this package
// provides.
package disk

import "hog/internal/netmodel"

// Tracker accounts disk space per node. It is driven from the simulation
// loop and is not safe for concurrent use. Node IDs are dense small
// integers (netmodel hands them out sequentially), so the accounting lives
// in flat slices: Free sits on the HDFS placement hot path, where it is
// called once per candidate datanode per block write, and an array load is
// far cheaper than a map probe at 10k-node scale.
type Tracker struct {
	capacity []float64
	used     []float64
	// OnOverflow, if set, is invoked when a Reserve fails; HOG wires this
	// to the "worker node out of disk" failure path.
	OnOverflow func(n netmodel.NodeID, requested float64)
	overflows  int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// grow ensures the accounting arrays cover node n.
func (t *Tracker) grow(n netmodel.NodeID) {
	if int(n) < len(t.capacity) {
		return
	}
	need := int(n) + 1
	if need < 2*len(t.capacity) {
		need = 2 * len(t.capacity)
	}
	cap2 := make([]float64, need)
	used2 := make([]float64, need)
	copy(cap2, t.capacity)
	copy(used2, t.used)
	t.capacity, t.used = cap2, used2
}

// SetCapacity registers (or updates) a node's scratch capacity in bytes.
func (t *Tracker) SetCapacity(n netmodel.NodeID, bytes float64) {
	t.grow(n)
	t.capacity[n] = bytes
}

// Capacity returns the node's capacity (0 for unknown nodes).
func (t *Tracker) Capacity(n netmodel.NodeID) float64 {
	if int(n) >= len(t.capacity) {
		return 0
	}
	return t.capacity[n]
}

// Used returns the bytes currently reserved on the node.
func (t *Tracker) Used(n netmodel.NodeID) float64 {
	if int(n) >= len(t.used) {
		return 0
	}
	return t.used[n]
}

// Free returns capacity minus used, never negative.
func (t *Tracker) Free(n netmodel.NodeID) float64 {
	if int(n) >= len(t.capacity) {
		return 0
	}
	f := t.capacity[n] - t.used[n]
	if f < 0 {
		return 0
	}
	return f
}

// Utilization returns used/capacity in [0,1]; 0 for unknown or zero-capacity
// nodes.
func (t *Tracker) Utilization(n netmodel.NodeID) float64 {
	if int(n) >= len(t.capacity) {
		return 0
	}
	c := t.capacity[n]
	if c <= 0 {
		return 0
	}
	return t.used[n] / c
}

// Reserve claims bytes on the node. It returns false — and fires OnOverflow —
// if the claim does not fit; no space is consumed in that case.
func (t *Tracker) Reserve(n netmodel.NodeID, bytes float64) bool {
	if bytes < 0 {
		panic("disk: negative reservation")
	}
	t.grow(n)
	if t.used[n]+bytes > t.capacity[n] {
		t.overflows++
		if t.OnOverflow != nil {
			t.OnOverflow(n, bytes)
		}
		return false
	}
	t.used[n] += bytes
	return true
}

// Release returns bytes to the node. Releasing more than is used clamps to
// zero: a node whose data was already cleared may receive late releases.
func (t *Tracker) Release(n netmodel.NodeID, bytes float64) {
	if bytes < 0 {
		panic("disk: negative release")
	}
	t.grow(n)
	t.used[n] -= bytes
	if t.used[n] < 0 {
		t.used[n] = 0
	}
}

// Clear drops all usage on a node (the site wiped the working directory
// after preemption) but keeps its capacity registered.
func (t *Tracker) Clear(n netmodel.NodeID) {
	t.grow(n)
	t.used[n] = 0
}

// Overflows returns the number of failed reservations so far.
func (t *Tracker) Overflows() int { return t.overflows }
