package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestTrialPanicIsolation asserts that a panicking trial yields an
// error-carrying result row while every other trial — before and after it,
// sequential or pooled — still runs and lands in its slot.
func TestTrialPanicIsolation(t *testing.T) {
	mkTrials := func() []Trial {
		trials := make([]Trial, 5)
		for i := range trials {
			i := i
			if i == 2 {
				trials[i] = Trial{
					Experiment: "synthetic", Point: "boom", Seed: int64(i),
					run: func() Metrics { panic("trial exploded") },
				}
				continue
			}
			trials[i] = Trial{
				Experiment: "synthetic", Point: "ok", Seed: int64(i),
				run: func() Metrics { return Metrics{"i": float64(i)} },
			}
		}
		return trials
	}
	for _, workers := range []int{1, 3} {
		results := Run(mkTrials(), workers)
		if len(results) != 5 {
			t.Fatalf("workers=%d: got %d results, want 5", workers, len(results))
		}
		for i, r := range results {
			if i == 2 {
				if !strings.Contains(r.Error, "trial exploded") {
					t.Fatalf("workers=%d: panicking trial error = %q", workers, r.Error)
				}
				if r.Point != "boom" || r.Seed != 2 {
					t.Fatalf("workers=%d: panicking trial lost its coordinates: %+v", workers, r)
				}
				continue
			}
			if r.Error != "" {
				t.Fatalf("workers=%d: clean trial %d has error %q", workers, i, r.Error)
			}
			if r.Metrics["i"] != float64(i) {
				t.Fatalf("workers=%d: result %d out of order: %+v", workers, i, r)
			}
		}
	}
}

// TestCleanTrialJSONUnchanged pins that the error field stays out of the
// JSON encoding of healthy trials — existing output comparisons depend on
// byte-identical rows.
func TestCleanTrialJSONUnchanged(t *testing.T) {
	b, err := json.Marshal(TrialResult{Experiment: "e", Point: "p", Metrics: Metrics{"m": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "error") {
		t.Fatalf("clean trial JSON mentions error: %s", b)
	}
}
