package harness

import (
	"context"
	"sync"
)

// Run executes trials across a bounded worker pool and returns the results
// in trial order. workers <= 1 runs sequentially. Each trial's System is
// self-contained and deterministic per seed, so the returned slice is
// identical for any worker count.
func Run(trials []Trial, workers int) []TrialResult {
	out, _ := RunContext(context.Background(), trials, workers)
	return out
}

// RunContext is Run with cancellation: when ctx is canceled, in-flight
// trials finish but no further trials start, and ctx's error is returned.
func RunContext(ctx context.Context, trials []Trial, workers int) ([]TrialResult, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(trials) {
		workers = len(trials)
	}
	results := make([]TrialResult, len(trials))
	if workers <= 1 {
		for i, t := range trials {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[i] = t.Run()
		}
		return results, nil
	}

	// Feed trial indices to the pool; each worker writes its result into the
	// slot the index names, so output order never depends on scheduling.
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range trials {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Drain but don't run once canceled, so a cancel takes
				// effect after the in-flight trials rather than after the
				// whole queue.
				if ctx.Err() == nil {
					results[i] = trials[i].Run()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
