package harness

import (
	"context"
	"fmt"
	"sync"
)

// runTrial executes one trial with panic isolation: a panicking simulation
// becomes an error-carrying result row instead of taking down the whole
// multi-trial run — and, pooled, the worker goroutine of unrelated trials.
func runTrial(t Trial) (res TrialResult) {
	defer func() {
		if r := recover(); r != nil {
			res = TrialResult{
				Experiment: t.Experiment,
				Point:      t.Point,
				Seed:       t.Seed,
				Nodes:      t.Nodes,
				Scale:      t.Scale,
				Error:      fmt.Sprintf("panic: %v", r),
			}
		}
	}()
	return t.Run()
}

// Run executes trials across a bounded worker pool and returns the results
// in trial order. workers <= 1 runs sequentially. Each trial's System is
// self-contained and deterministic per seed, so the returned slice is
// identical for any worker count.
func Run(trials []Trial, workers int) []TrialResult {
	out, _ := RunContext(context.Background(), trials, workers)
	return out
}

// RunContext is Run with cancellation: when ctx is canceled, in-flight
// trials finish but no further trials start, and ctx's error is returned.
func RunContext(ctx context.Context, trials []Trial, workers int) ([]TrialResult, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(trials) {
		workers = len(trials)
	}
	results := make([]TrialResult, len(trials))
	if workers <= 1 {
		for i, t := range trials {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[i] = runTrial(t)
		}
		return results, nil
	}

	// Feed trial indices to the pool; each worker writes its result into the
	// slot the index names, so output order never depends on scheduling.
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range trials {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Drain but don't run once canceled, so a cancel takes
				// effect after the in-flight trials rather than after the
				// whole queue.
				if ctx.Err() == nil {
					results[i] = runTrial(trials[i])
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
