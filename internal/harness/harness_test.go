package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hog/internal/experiments"
)

// tinyOpts keeps simulation trials cheap enough for unit tests.
func tinyOpts() experiments.Options {
	return experiments.Options{Scale: 0.1, Seeds: []int64{1, 2}, Nodes: []int{20, 40}}
}

// docBytes runs ids at the given worker count and returns the JSON document.
func docBytes(t *testing.T, ids []string, opts experiments.Options, workers int) []byte {
	t.Helper()
	doc, err := RunSuite(context.Background(), ids, opts, workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSequentialParallelEquivalence is the harness's determinism contract:
// for a fixed seed set, the JSON document must be byte-identical whether
// trials ran on one worker or many.
func TestSequentialParallelEquivalence(t *testing.T) {
	ids := []string{"table1", "table2", "table3", "fig4", "fig5", "hod"}
	opts := tinyOpts()
	seq := docBytes(t, ids, opts, 1)
	par := docBytes(t, ids, opts, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel document differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if !json.Valid(seq) {
		t.Fatal("document is not valid JSON")
	}
	var doc Doc
	if err := json.Unmarshal(seq, &doc); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if doc.Schema != Schema || doc.SchemaVersion != SchemaVersion {
		t.Fatalf("schema header = %q v%d", doc.Schema, doc.SchemaVersion)
	}
	if len(doc.Experiments) != len(ids) {
		t.Fatalf("experiments = %d, want %d", len(doc.Experiments), len(ids))
	}
	// fig4 at 2 nodes x 2 seeds plus the cluster reference.
	for _, e := range doc.Experiments {
		if e.ID == "fig4" && len(e.Trials) != 5 {
			t.Fatalf("fig4 trials = %d, want 5", len(e.Trials))
		}
	}
}

// syntheticTrials builds n instrumented trials that record pool concurrency.
func syntheticTrials(n int, cur, max *int64, ran *int64) []Trial {
	trials := make([]Trial, n)
	for i := range trials {
		i := i
		trials[i] = Trial{
			Experiment: "synthetic", Point: "p", Seed: int64(i),
			run: func() Metrics {
				c := atomic.AddInt64(cur, 1)
				for {
					m := atomic.LoadInt64(max)
					if c <= m || atomic.CompareAndSwapInt64(max, m, c) {
						break
					}
				}
				time.Sleep(10 * time.Millisecond)
				atomic.AddInt64(cur, -1)
				atomic.AddInt64(ran, 1)
				return Metrics{"i": float64(i)}
			},
		}
	}
	return trials
}

// TestWorkerPoolLimit asserts the pool never exceeds its worker bound and
// still executes and places every trial.
func TestWorkerPoolLimit(t *testing.T) {
	var cur, max, ran int64
	trials := syntheticTrials(12, &cur, &max, &ran)
	results := Run(trials, 3)
	if got := atomic.LoadInt64(&max); got > 3 {
		t.Fatalf("observed %d concurrent trials, want <= 3", got)
	}
	if ran != 12 || len(results) != 12 {
		t.Fatalf("ran %d trials, got %d results, want 12", ran, len(results))
	}
	for i, r := range results {
		if r.Metrics["i"] != float64(i) {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
	// Degenerate worker counts clamp instead of misbehaving.
	atomic.StoreInt64(&ran, 0)
	if got := Run(syntheticTrials(2, &cur, &max, &ran), 0); len(got) != 2 {
		t.Fatalf("workers=0 returned %d results", len(got))
	}
	if got := Run(nil, 4); len(got) != 0 {
		t.Fatalf("empty trial list returned %d results", len(got))
	}
}

// TestCancellation checks that canceling the context stops the pool after
// the in-flight trials and surfaces the context error.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int64
	var once sync.Once
	trials := make([]Trial, 16)
	for i := range trials {
		trials[i] = Trial{
			Experiment: "synthetic", Point: "p",
			run: func() Metrics {
				once.Do(cancel) // first trial to run cancels the suite
				atomic.AddInt64(&ran, 1)
				time.Sleep(5 * time.Millisecond)
				return Metrics{}
			},
		}
	}
	results, err := RunContext(ctx, trials, 2)
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if results != nil {
		t.Fatal("canceled run returned results")
	}
	if got := atomic.LoadInt64(&ran); got >= 16 {
		t.Fatalf("cancel did not stop the pool: %d/16 trials ran", got)
	}
}

// TestAggregates verifies the per-point mean/min/max/std math across seeds.
func TestAggregates(t *testing.T) {
	results := []TrialResult{
		{Experiment: "x", Point: "a", Seed: 1, Metrics: Metrics{"response_s": 10}},
		{Experiment: "x", Point: "a", Seed: 2, Metrics: Metrics{"response_s": 14}},
		{Experiment: "x", Point: "b", Seed: 1, Metrics: Metrics{"response_s": 7}},
	}
	doc := BuildDoc([]Spec{{ID: "x", Desc: "synthetic"}}, tinyOpts(), results)
	if len(doc.Experiments) != 1 || len(doc.Experiments[0].Aggregates) != 2 {
		t.Fatalf("doc shape: %+v", doc.Experiments)
	}
	a := doc.Experiments[0].Aggregates[0]
	if a.Point != "a" {
		t.Fatalf("first aggregate point = %q (insertion order lost)", a.Point)
	}
	s := a.Metrics["response_s"]
	if s.N != 2 || s.Mean != 12 || s.Min != 10 || s.Max != 14 || math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("aggregate = %+v", s)
	}
}

// TestSelect covers id resolution: all, aliases, duplicates, unknowns.
func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(Specs()) {
		t.Fatalf("all -> %d specs, err=%v", len(all), err)
	}
	alias, err := Select("table4")
	if err != nil || len(alias) != 1 || alias[0].ID != "fig5" {
		t.Fatalf("table4 alias -> %+v, err=%v", alias, err)
	}
	dup, err := Select("fig4", "fig4", "fig5")
	if err != nil || len(dup) != 2 {
		t.Fatalf("duplicate ids -> %d specs, err=%v", len(dup), err)
	}
	if _, err := Select("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := Select(); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// TestExpandMatrixShape checks the experiment x seed x nodes expansion.
func TestExpandMatrixShape(t *testing.T) {
	specs, _ := Select("fig4")
	trials := Expand(specs, tinyOpts())
	if len(trials) != 5 { // cluster + 2 nodes x 2 seeds
		t.Fatalf("fig4 trials = %d, want 5", len(trials))
	}
	seen := map[string]int{}
	for _, tr := range trials {
		seen[tr.Point]++
		if tr.Scale != 0.1 {
			t.Fatalf("trial scale = %v", tr.Scale)
		}
	}
	if seen["cluster"] != 1 || seen["nodes=20"] != 2 || seen["nodes=40"] != 2 {
		t.Fatalf("points = %v", seen)
	}
	// Defaults flow through Expand centrally.
	defTrials := Expand(specs, experiments.Options{Scale: 0.1, Seeds: []int64{1}})
	if len(defTrials) != 1+12 {
		t.Fatalf("defaulted fig4 trials = %d, want 13 (paper's 12 points + cluster)", len(defTrials))
	}
}

// TestWriteText smoke-checks the generic table renderer.
func TestWriteText(t *testing.T) {
	doc, err := RunSuite(context.Background(), []string{"table2"}, tinyOpts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	doc.WriteText(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("table2")) || !bytes.Contains(buf.Bytes(), []byte("total_map_tasks")) {
		t.Fatalf("text output missing content:\n%s", buf.String())
	}
}
