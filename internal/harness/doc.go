package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hog/internal/experiments"
	"hog/internal/metrics"
)

// Schema identifies the results-document format; bump SchemaVersion on any
// incompatible change so CI trackers can reject documents they don't
// understand.
const (
	Schema        = "hog-results"
	SchemaVersion = 1
)

// OptionsDoc records the matrix inputs the document was produced from.
type OptionsDoc struct {
	Scale float64 `json:"scale"`
	Seeds []int64 `json:"seeds"`
	Nodes []int   `json:"nodes"`
}

// Aggregate summarizes one point's metrics across its trials (seeds).
type Aggregate struct {
	Point   string                          `json:"point"`
	Metrics map[string]metrics.FloatSummary `json:"metrics"`
}

// ExperimentResults groups one experiment's trials and per-point aggregates.
type ExperimentResults struct {
	ID          string        `json:"id"`
	Description string        `json:"description"`
	Trials      []TrialResult `json:"trials"`
	Aggregates  []Aggregate   `json:"aggregates"`
}

// Doc is the versioned results document. It deliberately carries no
// wall-clock timestamps or worker counts: for a fixed seed set the document
// is bit-identical however it was produced (sequential, parallel, CI,
// benchmark). Timing belongs on stderr and in CI logs, not in the artifact.
type Doc struct {
	Schema        string              `json:"schema"`
	SchemaVersion int                 `json:"schema_version"`
	Options       OptionsDoc          `json:"options"`
	Experiments   []ExperimentResults `json:"experiments"`
}

// BuildDoc assembles the document from executed trials, grouping by spec in
// spec order and aggregating per point across seeds.
func BuildDoc(specs []Spec, opts experiments.Options, results []TrialResult) *Doc {
	opts = opts.WithDefaults()
	doc := &Doc{
		Schema:        Schema,
		SchemaVersion: SchemaVersion,
		Options:       OptionsDoc{Scale: opts.Scale, Seeds: opts.Seeds, Nodes: opts.Nodes},
	}
	byExp := map[string][]TrialResult{}
	for _, r := range results {
		byExp[r.Experiment] = append(byExp[r.Experiment], r)
	}
	for _, s := range specs {
		rs := byExp[s.ID]
		doc.Experiments = append(doc.Experiments, ExperimentResults{
			ID:          s.ID,
			Description: s.Desc,
			Trials:      rs,
			Aggregates:  aggregate(rs),
		})
	}
	return doc
}

// aggregate groups trials by point (in first-seen order) and summarizes
// every metric across the group's trials.
func aggregate(rs []TrialResult) []Aggregate {
	var order []string
	byPoint := map[string][]TrialResult{}
	for _, r := range rs {
		if _, ok := byPoint[r.Point]; !ok {
			order = append(order, r.Point)
		}
		byPoint[r.Point] = append(byPoint[r.Point], r)
	}
	var out []Aggregate
	for _, point := range order {
		group := byPoint[point]
		keys := map[string][]float64{}
		for _, r := range group {
			for k, v := range r.Metrics {
				keys[k] = append(keys[k], v)
			}
		}
		agg := Aggregate{Point: point, Metrics: map[string]metrics.FloatSummary{}}
		for k, vs := range keys {
			agg.Metrics[k] = metrics.SummarizeFloats(vs)
		}
		out = append(out, agg)
	}
	return out
}

// WriteJSON serializes the document as stable, indented JSON. Map keys
// marshal sorted, so the bytes are a deterministic function of the trial
// results alone.
func (d *Doc) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteText renders the document as a compact generic table: one line per
// trial plus per-point mean/min/max/std where points have repetitions.
func (d *Doc) WriteText(w io.Writer) {
	for _, e := range d.Experiments {
		fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Description)
		for _, t := range e.Trials {
			fmt.Fprintf(w, "%-28s seed=%-3d %s\n", t.Point, t.Seed, formatMetrics(t.Metrics))
		}
		for _, a := range e.Aggregates {
			sum, ok := a.Metrics["response_s"]
			if !ok || sum.N < 2 {
				continue
			}
			fmt.Fprintf(w, "%-28s response_s mean=%.0f min=%.0f max=%.0f std=%.1f (n=%d)\n",
				a.Point+" (agg)", sum.Mean, sum.Min, sum.Max, sum.Std, sum.N)
		}
		fmt.Fprintln(w)
	}
}

func formatMetrics(m Metrics) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%.6g", k, m[k])
	}
	return out
}

// RunSuite expands the named experiments, executes them on workers
// goroutines, and returns the assembled document: the one-call entry point
// cmd/hogbench, bench_test.go, and the hog facade share.
func RunSuite(ctx context.Context, ids []string, opts experiments.Options, workers int) (*Doc, error) {
	specs, err := Select(ids...)
	if err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	trials := Expand(specs, opts)
	results, err := RunContext(ctx, trials, workers)
	if err != nil {
		return nil, err
	}
	return BuildDoc(specs, opts, results), nil
}
