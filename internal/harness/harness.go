// Package harness expands the paper's experiments into a trial matrix
// (experiment × seed × scale × nodes), executes the trials concurrently
// across a bounded worker pool, aggregates per-point statistics across
// seeds, and serializes everything into a versioned JSON results document.
//
// Every trial builds its own self-contained, deterministic core.System, so
// trials are safe to run concurrently and the result document is
// bit-identical regardless of worker count or completion order: results are
// written into a slice indexed by trial position, never appended in
// completion order. docs/HARNESS.md records the schema and the determinism
// contract.
package harness

import (
	"fmt"

	"hog/internal/event"
	"hog/internal/experiments"
)

// Metrics holds one trial's named scalar measurements. Keys serialize in
// sorted order (encoding/json), keeping documents byte-stable.
type Metrics map[string]float64

// Trial is one cell of the experiment matrix: a self-contained simulation
// run identified by its experiment, aggregation point, and seed.
type Trial struct {
	// Experiment is the owning experiment id (hogbench -list names).
	Experiment string
	// Point is the aggregation group within the experiment: trials sharing
	// a Point (across seeds) are summarized together.
	Point string
	// Seed is the simulation seed the trial runs under.
	Seed int64
	// Nodes is the target pool or cluster size, when meaningful.
	Nodes int
	// Scale is the workload scale factor.
	Scale float64

	run func() Metrics
}

// Run executes the trial and returns its result row.
func (t Trial) Run() TrialResult {
	return TrialResult{
		Experiment: t.Experiment,
		Point:      t.Point,
		Seed:       t.Seed,
		Nodes:      t.Nodes,
		Scale:      t.Scale,
		Metrics:    t.run(),
	}
}

// TrialResult is one executed trial: its matrix coordinates plus measured
// metrics.
type TrialResult struct {
	Experiment string  `json:"experiment"`
	Point      string  `json:"point"`
	Seed       int64   `json:"seed,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`
	Scale      float64 `json:"scale,omitempty"`
	Metrics    Metrics `json:"metrics"`
	// Error is set when the trial panicked; Metrics is then nil. Absent
	// from JSON for clean trials, so healthy output is unchanged.
	Error string `json:"error,omitempty"`
}

// Spec is one experiment the harness knows how to expand into trials.
type Spec struct {
	ID     string
	Desc   string
	Expand func(opts experiments.Options) []Trial
}

// Specs returns the full experiment registry in hogbench order.
func Specs() []Spec {
	return []Spec{
		{"table1", "Table I: Facebook workload bins", expandTable1},
		{"table2", "Table II: truncated workload", expandTable2},
		{"table3", "Table III: dedicated cluster baseline", expandTable3},
		{"fig4", "Figure 4: equivalent performance sweep", expandFig4},
		{"fig5", "Figure 5 + Table IV: node fluctuation", expandFig5},
		{"site", "A-SITE: whole-site failure ablation", expandSite},
		{"repl", "A-REPL: replication factor sweep", expandRepl},
		{"heartbeat", "A-HB: dead timeout 30s vs 15min", expandHeartbeat},
		{"zombie", "A-ZOMBIE: abandoned datanode modes", expandZombie},
		{"disk", "A-DISK: intermediate-data disk overflow", expandDisk},
		{"ncopy", "A-NCOPY: redundant task copies", expandNCopy},
		{"delay", "A-DELAY: FIFO vs delay scheduling", expandDelay},
		{"hod", "A-HOD: Hadoop On Demand baseline", expandHOD},
		{"grid", "LARGE-GRID: ~1000 nodes across 12 sites", expandLargeGrid},
		{"mega", "MEGA-GRID: ~10000 nodes across 40 sites", expandMegaGrid},
		{"giga", "GIGA-GRID: ~100000 nodes across 104 sites, sharded parallel engine", expandGigaGrid},
		{"sched", "SCHED-SCALE: indexed vs scan scheduler at 1000 nodes", expandSched},
		{"events", "EVENTS: typed event stream census under fault injection", expandEvents},
		{"chaos", "CHAOS: randomized fault schedules with audit + determinism check", expandChaos},
		{"chaos2", "CHAOS2: partition/gray/corruption fault mixes with audit + determinism check", expandChaos2},
		{"policy", "POLICY: pluggable-policy ablation across the four decision points", expandPolicy},
		{"whatif", "WHATIF: MEGA-GRID warm-up snapshot forked into fault branches", expandWhatIf},
	}
}

// Select resolves experiment ids ("all", "table4" as a fig5 alias, or any
// registry id) into specs, preserving registry order and dropping
// duplicates.
func Select(ids ...string) ([]Spec, error) {
	all := Specs()
	want := map[string]bool{}
	for _, id := range ids {
		if id == "all" {
			for _, s := range all {
				want[s.ID] = true
			}
			continue
		}
		if id == "table4" { // alias: Table IV rides along with Figure 5
			id = "fig5"
		}
		known := false
		for _, s := range all {
			if s.ID == id {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("harness: unknown experiment %q", id)
		}
		want[id] = true
	}
	var out []Spec
	for _, s := range all {
		if want[s.ID] {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: no experiments selected")
	}
	return out, nil
}

// Expand applies defaults once and expands the specs into the flat trial
// matrix, in spec order.
func Expand(specs []Spec, opts experiments.Options) []Trial {
	opts = opts.WithDefaults()
	var trials []Trial
	for _, s := range specs {
		trials = append(trials, s.Expand(opts)...)
	}
	return trials
}

// ------------------------------------------------------------- expansions

func expandTable1(opts experiments.Options) []Trial {
	return []Trial{{
		Experiment: "table1", Point: "schedule", Seed: 1, Scale: 1.0,
		run: func() Metrics {
			r := experiments.RunTable1()
			return Metrics{
				"jobs":   float64(r.Jobs),
				"bins":   float64(len(r.BinCounts)),
				"span_s": r.SpanSeconds,
			}
		},
	}}
}

func expandTable2(opts experiments.Options) []Trial {
	return []Trial{{
		Experiment: "table2", Point: "workload", Scale: 1.0,
		run: func() Metrics {
			r := experiments.RunTable2()
			return Metrics{
				"bins":            float64(len(r.Bins)),
				"total_jobs":      float64(r.TotalJobs),
				"total_map_tasks": float64(r.TotalMaps),
			}
		},
	}}
}

func expandTable3(opts experiments.Options) []Trial {
	return []Trial{{
		Experiment: "table3", Point: "cluster", Seed: opts.Seeds[0], Nodes: 30, Scale: opts.Scale,
		run: func() Metrics {
			r := experiments.Table3(opts)
			return Metrics{
				"nodes":        float64(r.Nodes),
				"map_slots":    float64(r.MapSlots),
				"reduce_slots": float64(r.ReduceSlots),
				"response_s":   r.Response.Seconds(),
			}
		},
	}}
}

// fig4Metrics is the workload-run metric pair of every Figure 4 trial: the
// paper's headline response time plus completed-job throughput (failed jobs
// don't count toward throughput).
func fig4Metrics(r experiments.Fig4TrialResult) Metrics {
	m := Metrics{"response_s": r.Response.Seconds()}
	if r.Response > 0 {
		m["throughput_jobs_per_h"] = float64(r.Completed) / (r.Response.Seconds() / 3600)
	}
	return m
}

func expandFig4(opts experiments.Options) []Trial {
	trials := []Trial{{
		Experiment: "fig4", Point: "cluster", Seed: opts.Seeds[0], Nodes: 30, Scale: opts.Scale,
		run: func() Metrics {
			return fig4Metrics(experiments.Fig4Cluster(opts.Seeds[0], opts))
		},
	}}
	for _, n := range opts.Nodes {
		for _, seed := range opts.Seeds {
			n, seed := n, seed
			trials = append(trials, Trial{
				Experiment: "fig4", Point: fmt.Sprintf("nodes=%d", n),
				Seed: seed, Nodes: n, Scale: opts.Scale,
				run: func() Metrics {
					return fig4Metrics(experiments.Fig4Trial(n, seed, opts))
				},
			})
		}
	}
	return trials
}

func expandFig5(opts experiments.Options) []Trial {
	var trials []Trial
	for _, c := range experiments.FluctuationCases() {
		c := c
		trials = append(trials, Trial{
			Experiment: "fig5", Point: c.Label, Seed: c.Seed, Nodes: 55, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.FluctuationTrial(c, opts)
				return Metrics{
					"response_s":  r.Response.Seconds(),
					"area_node_s": r.Area,
					"samples":     float64(r.Series.Len()),
				}
			},
		})
	}
	return trials
}

func expandSite(opts experiments.Options) []Trial {
	var trials []Trial
	for _, c := range experiments.SiteFailureCases() {
		c := c
		trials = append(trials, Trial{
			Experiment: "site", Point: c.Label, Seed: opts.Seeds[0], Nodes: 60, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.SiteFailureTrial(c, opts)
				return Metrics{
					"blocks_lost": float64(r.BlocksLost),
					"jobs_failed": float64(r.JobsFailed),
					"response_s":  r.Response.Seconds(),
				}
			},
		})
	}
	return trials
}

func expandRepl(opts experiments.Options) []Trial {
	var trials []Trial
	for _, repl := range experiments.ReplicationFactors() {
		repl := repl
		trials = append(trials, Trial{
			Experiment: "repl", Point: fmt.Sprintf("repl=%d", repl),
			Seed: opts.Seeds[0], Nodes: 60, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.ReplicationTrial(repl, opts)
				return Metrics{
					"jobs_failed":     float64(r.JobsFailed),
					"blocks_lost":     float64(r.BlocksLost),
					"response_s":      r.Response.Seconds(),
					"repl_traffic_gb": r.BytesReplicated / 1e9,
					"cross_site_gb":   r.CrossSiteBytes / 1e9,
				}
			},
		})
	}
	return trials
}

func expandHeartbeat(opts experiments.Options) []Trial {
	var trials []Trial
	for _, timeout := range experiments.HeartbeatTimeouts() {
		timeout := timeout
		trials = append(trials, Trial{
			Experiment: "heartbeat", Point: fmt.Sprintf("timeout=%.0fs", timeout.Seconds()),
			Seed: opts.Seeds[0], Nodes: 60, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.HeartbeatTrial(timeout, opts)
				return Metrics{
					"timeout_s":   r.Timeout.Seconds(),
					"response_s":  r.Response.Seconds(),
					"jobs_failed": float64(r.JobsFailed),
				}
			},
		})
	}
	return trials
}

func expandZombie(opts experiments.Options) []Trial {
	var trials []Trial
	for _, mode := range experiments.ZombieModes() {
		mode := mode
		trials = append(trials, Trial{
			Experiment: "zombie", Point: "mode=" + mode.String(),
			Seed: opts.Seeds[0], Nodes: 55, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.ZombieTrial(mode, opts)
				return Metrics{
					"response_s":      r.Response.Seconds(),
					"failed_attempts": float64(r.FailedAttempts),
					"fetch_failures":  float64(r.FetchFailures),
					"jobs_failed":     float64(r.JobsFailed),
				}
			},
		})
	}
	return trials
}

func expandDisk(opts experiments.Options) []Trial {
	var trials []Trial
	for _, factor := range experiments.DiskFactors() {
		factor := factor
		trials = append(trials, Trial{
			Experiment: "disk", Point: fmt.Sprintf("disk=%.2fx", factor),
			Seed: opts.Seeds[0], Nodes: 60, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.DiskOverflowTrial(factor, opts)
				return Metrics{
					"disk_gb":        r.DiskGB,
					"overflows":      float64(r.Overflows),
					"workers_killed": float64(r.Killed),
					"response_s":     r.Response.Seconds(),
				}
			},
		})
	}
	return trials
}

func expandNCopy(opts experiments.Options) []Trial {
	var trials []Trial
	for _, c := range experiments.NCopyCases() {
		c := c
		point := fmt.Sprintf("copies=%d", c.Copies)
		if c.Eager {
			point += "+eager"
		}
		trials = append(trials, Trial{
			Experiment: "ncopy", Point: point, Seed: opts.Seeds[0], Nodes: 80, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.RedundantCopiesTrial(c, opts)
				return Metrics{
					"response_s":     r.Response.Seconds(),
					"extra_attempts": float64(r.Speculative),
				}
			},
		})
	}
	return trials
}

func expandDelay(opts experiments.Options) []Trial {
	var trials []Trial
	for _, wait := range experiments.DelayWaits() {
		wait := wait
		trials = append(trials, Trial{
			Experiment: "delay", Point: fmt.Sprintf("wait=%.0fs", wait.Seconds()),
			Seed: opts.Seeds[0], Nodes: 60, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.DelayTrial(wait, opts)
				return Metrics{
					"response_s":    r.Response.Seconds(),
					"node_local":    float64(r.NodeLocal),
					"non_local":     float64(r.NonLocal),
					"locality_rate": r.LocalityRate,
				}
			},
		})
	}
	return trials
}

func expandHOD(opts experiments.Options) []Trial {
	var trials []Trial
	for _, system := range experiments.HODSystems() {
		system := system
		trials = append(trials, Trial{
			Experiment: "hod", Point: system, Seed: opts.Seeds[0], Nodes: 30, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.HODTrial(system, opts)
				return Metrics{
					"response_s":       r.Response.Seconds(),
					"reconstruction_s": r.Reconstruction.Seconds(),
					"timed_out":        float64(r.TimedOut),
				}
			},
		})
	}
	return trials
}

func expandLargeGrid(opts experiments.Options) []Trial {
	return []Trial{{
		Experiment: "grid", Point: "nodes=1000", Seed: opts.Seeds[0], Nodes: 1000, Scale: opts.Scale,
		run: func() Metrics {
			r := experiments.LargeGrid(opts)
			return Metrics{
				"response_s":      r.Response.Seconds(),
				"events_fired":    float64(r.EventsFired),
				"flows_started":   float64(r.FlowsStarted),
				"cross_site_frac": r.CrossSiteFrac,
				"jobs_failed":     float64(r.JobsFailed),
			}
		},
	}}
}

func expandMegaGrid(opts experiments.Options) []Trial {
	return []Trial{{
		Experiment: "mega", Point: "nodes=10000", Seed: opts.Seeds[0], Nodes: 10000, Scale: opts.Scale,
		run: func() Metrics {
			r := experiments.MegaGrid(opts)
			return Metrics{
				"response_s":      r.Response.Seconds(),
				"reached_nodes":   float64(r.Reached),
				"events_fired":    float64(r.EventsFired),
				"flows_started":   float64(r.FlowsStarted),
				"cross_site_frac": r.CrossSiteFrac,
				"jobs_failed":     float64(r.JobsFailed),
			}
		},
	}}
}

func expandGigaGrid(opts experiments.Options) []Trial {
	return []Trial{{
		Experiment: "giga", Point: "nodes=100000", Seed: opts.Seeds[0], Nodes: 100000, Scale: opts.Scale,
		run: func() Metrics {
			r := experiments.GigaGrid(opts)
			return Metrics{
				"response_s":      r.Response.Seconds(),
				"reached_nodes":   float64(r.Reached),
				"events_fired":    float64(r.EventsFired),
				"flows_started":   float64(r.FlowsStarted),
				"cross_site_frac": r.CrossSiteFrac,
				"jobs_failed":     float64(r.JobsFailed),
			}
		},
	}}
}

func expandEvents(opts experiments.Options) []Trial {
	return []Trial{{
		Experiment: "events", Point: "scenario", Seed: opts.Seeds[0], Nodes: 60, Scale: opts.Scale,
		run: func() Metrics {
			r := experiments.EventCountsTrial(opts)
			m := Metrics{
				"response_s":   r.Response.Seconds(),
				"jobs_failed":  float64(r.JobsFailed),
				"total_events": float64(r.Total),
			}
			for t := event.Type(0); t < event.NumTypes; t++ {
				m[experiments.EventMetricName(t)] = float64(r.Counts[t])
			}
			return m
		},
	}}
}

func expandChaos(opts experiments.Options) []Trial {
	var trials []Trial
	for i := 0; i < experiments.ChaosScheduleCount; i++ {
		i := i
		trials = append(trials, Trial{
			Experiment: "chaos", Point: fmt.Sprintf("schedule=%d", i),
			Seed: opts.Seeds[0], Nodes: 60, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.ChaosSchedule(i, opts)
				mismatch := 0.0
				if r.Mismatch {
					mismatch = 1
				}
				unpaired := 0.0
				if !r.SafeModeOK {
					unpaired = 1
				}
				return Metrics{
					"response_s":   r.Response.Seconds(),
					"jobs_failed":  float64(r.JobsFailed),
					"blocks_lost":  float64(r.BlocksLost),
					"reregistered": float64(r.Reregistered),
					"violations":   float64(r.Violations),
					"fp_mismatch":  mismatch,
					"unpaired":     unpaired,
				}
			},
		})
	}
	return trials
}

func expandChaos2(opts experiments.Options) []Trial {
	var trials []Trial
	for i := 0; i < experiments.Chaos2ScheduleCount; i++ {
		i := i
		trials = append(trials, Trial{
			Experiment: "chaos2", Point: fmt.Sprintf("schedule=%d", i),
			Seed: opts.Seeds[0], Nodes: 60, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.Chaos2Schedule(i, opts)
				mismatch := 0.0
				if r.Mismatch {
					mismatch = 1
				}
				unpaired := 0.0
				if !r.PairedOK {
					unpaired = 1
				}
				return Metrics{
					"response_s":  r.Response.Seconds(),
					"jobs_failed": float64(r.JobsFailed),
					"blocks_lost": float64(r.BlocksLost),
					"partitions":  float64(r.Partitions),
					"healed":      float64(r.Healed),
					"degraded":    float64(r.Degraded),
					"corrupted":   float64(r.Corrupted),
					"detected":    float64(r.Detected),
					"recovered":   float64(r.Recovered),
					"gray_draws":  float64(r.GrayDraws),
					"violations":  float64(r.Violations),
					"fp_mismatch": mismatch,
					"unpaired":    unpaired,
				}
			},
		})
	}
	return trials
}

func expandPolicy(opts experiments.Options) []Trial {
	var trials []Trial
	for _, p := range experiments.PolicyPairs() {
		for _, name := range []string{p.Baseline, p.Variant} {
			for _, seed := range opts.Seeds {
				p, name, seed := p, name, seed
				trials = append(trials, Trial{
					Experiment: "policy", Point: fmt.Sprintf("%s=%s", p.Kind, name),
					Seed: seed, Nodes: 60, Scale: opts.Scale,
					run: func() Metrics {
						r := experiments.PolicyTrial(p.Kind, name, p.Churn, seed, opts)
						return Metrics{
							"response_s":    r.Response.Seconds(),
							"p50_s":         r.P50.Seconds(),
							"p95_s":         r.P95.Seconds(),
							"p99_s":         r.P99.Seconds(),
							"locality_rate": r.LocalityRate,
							"slot_util":     r.SlotUtil,
							"jobs_failed":   float64(r.JobsFailed),
						}
					},
				})
			}
		}
	}
	return trials
}

func expandWhatIf(opts experiments.Options) []Trial {
	var trials []Trial
	for _, branch := range experiments.WhatIfBranches {
		branch := branch
		trials = append(trials, Trial{
			Experiment: "whatif", Point: "branch=" + branch,
			Seed: opts.Seeds[0], Nodes: 10000, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.WhatIfBranch(opts, branch)
				return Metrics{
					"response_s":  r.Response.Seconds(),
					"p50_s":       r.P50.Seconds(),
					"p95_s":       r.P95.Seconds(),
					"p99_s":       r.P99.Seconds(),
					"warm_at_s":   r.WarmAt.Seconds(),
					"jobs":        float64(r.Jobs),
					"jobs_failed": float64(r.JobsFailed),
				}
			},
		})
	}
	return trials
}

func expandSched(opts experiments.Options) []Trial {
	var trials []Trial
	for _, c := range experiments.SchedScaleCases() {
		c := c
		trials = append(trials, Trial{
			Experiment: "sched", Point: c.Label, Seed: opts.Seeds[0], Nodes: 1000, Scale: opts.Scale,
			run: func() Metrics {
				r := experiments.SchedScaleTrial(c, opts)
				return Metrics{
					"response_s":   r.Response.Seconds(),
					"events_fired": float64(r.EventsFired),
					"jobs_failed":  float64(r.JobsFailed),
				}
			},
		})
	}
	return trials
}
