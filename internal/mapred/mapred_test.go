package mapred

import (
	"fmt"
	"testing"
	"testing/quick"

	"hog/internal/disk"
	"hog/internal/hdfs"
	"hog/internal/netmodel"
	"hog/internal/sim"
	"hog/internal/topology"
)

type nodeState int

const (
	healthy nodeState = iota
	zombie            // tasktracker heartbeats, datanode and data gone (§IV.D.1)
	dead
)

// cluster is a self-contained MapReduce test cluster over 5 sites.
type cluster struct {
	eng   *sim.Engine
	net   *netmodel.Network
	dt    *disk.Tracker
	nn    *hdfs.Namenode
	jt    *JobTracker
	nodes []netmodel.NodeID
	state map[netmodel.NodeID]nodeState
}

var clusterDomains = []string{"fnal.gov", "wc1-fnal.gov", "ucsd.edu", "aglt2.org", "mit.edu"}

func newCluster(seed int64, nodesPerSite int, nnCfg hdfs.Config, jtCfg Config) *cluster {
	c := newQuietCluster(seed, nodesPerSite, nnCfg, jtCfg)
	// One global heartbeat driver: healthy nodes report to both masters,
	// zombies only to the JobTracker.
	c.eng.Every(3*sim.Second, func() {
		for _, id := range c.nodes {
			switch c.state[id] {
			case healthy:
				c.nn.Heartbeat(id)
				c.jt.Heartbeat(id)
			case zombie:
				c.jt.Heartbeat(id)
			}
		}
	})
	return c
}

// newQuietCluster builds the cluster without the periodic heartbeat driver,
// for tests that drive assignment heartbeats by hand.
func newQuietCluster(seed int64, nodesPerSite int, nnCfg hdfs.Config, jtCfg Config) *cluster {
	c := &cluster{
		eng:   sim.New(seed),
		state: make(map[netmodel.NodeID]nodeState),
	}
	c.net = netmodel.New(c.eng, netmodel.Config{})
	c.dt = disk.NewTracker()
	c.nn = hdfs.NewNamenode(c.eng, c.net, c.dt, nnCfg)
	c.jt = NewJobTracker(c.eng, c.net, c.nn, c.dt, jtCfg)
	c.jt.DiskUsable = func(n netmodel.NodeID) bool { return c.state[n] == healthy }
	c.jt.DataServable = func(n netmodel.NodeID) bool { return c.state[n] == healthy }
	mapper := topology.NewMapper()
	for _, dom := range clusterDomains {
		sid := c.net.AddSite(dom, 300e6, 300e6)
		for i := 0; i < nodesPerSite; i++ {
			host := fmt.Sprintf("wn%d.%s", i, dom)
			id := c.net.AddNode(sid, host)
			c.dt.SetCapacity(id, 40e9)
			c.nn.Register(id, host)
			c.jt.RegisterTracker(id, host, mapper.Site(host), 1, 1)
			c.nodes = append(c.nodes, id)
			c.state[id] = healthy
		}
	}
	c.nn.Start()
	c.jt.Start()
	return c
}

func (c *cluster) kill(id netmodel.NodeID) {
	c.state[id] = dead
	c.dt.Clear(id)
	c.jt.NodeCrashed(id)
}

func (c *cluster) makeZombie(id netmodel.NodeID) {
	c.state[id] = zombie
	c.dt.Clear(id)
	c.jt.NodeLostWorkdir(id)
}

// runUntilDone drives the simulation until all jobs finish or the bound hits.
func (c *cluster) runUntilDone(t *testing.T, bound sim.Time) {
	t.Helper()
	c.eng.RunWhile(func() bool { return !c.jt.AllDone() && c.eng.Now() < bound })
	if !c.jt.AllDone() {
		for _, j := range c.jt.Jobs() {
			t.Logf("%v: maps %d/%d reduces %d/%d", j, j.completedMaps, len(j.maps), j.completedReduces, len(j.reduces))
		}
		t.Fatalf("jobs not done by %v", bound)
	}
}

func smallJob(c *cluster, name string, blocks, reduces int) JobConfig {
	c.nn.SeedFile("/in/"+name, float64(blocks)*hdfs.DefaultBlockSize, 0)
	return JobConfig{Name: name, InputFile: "/in/" + name, Reduces: reduces}
}

func hogNNCfg() hdfs.Config {
	cfg := hdfs.HOGConfig()
	cfg.Replication = 3 // keep small tests fast
	return cfg
}

func hogJTCfg() Config {
	cfg := DefaultConfig()
	cfg.TrackerTimeout = 30 * sim.Second
	return cfg
}

func TestSingleJobCompletes(t *testing.T) {
	c := newCluster(1, 4, hogNNCfg(), hogJTCfg())
	j := c.jt.Submit(smallJob(c, "j1", 6, 2))
	c.runUntilDone(t, 4*sim.Hour)
	if j.State != JobSucceeded {
		t.Fatalf("job state = %v (%s)", j.State, j.FailReason())
	}
	if j.ResponseTime() <= 0 {
		t.Fatal("non-positive response time")
	}
	if j.StartTime < j.SubmitTime || j.FinishTime < j.StartTime {
		t.Fatal("timestamps out of order")
	}
	ctr := j.Counters()
	if ctr.MapAttemptsStarted < 6 || ctr.ReduceAttemptsStarted < 2 {
		t.Fatalf("attempts %d/%d, want >= 6/2", ctr.MapAttemptsStarted, ctr.ReduceAttemptsStarted)
	}
	// Outputs exist with the right replication.
	for i := 0; i < 2; i++ {
		found := false
		for a := int64(0); a < 50 && !found; a++ {
			if c.nn.File(fmt.Sprintf("out/j1/part-%05d-a%d", i, a)) != nil {
				found = true
			}
		}
		if !found {
			t.Fatalf("no output file for partition %d", i)
		}
	}
}

func TestMapOnlyJob(t *testing.T) {
	c := newCluster(2, 3, hogNNCfg(), hogJTCfg())
	j := c.jt.Submit(smallJob(c, "maponly", 5, 0))
	c.runUntilDone(t, sim.Hour)
	if j.State != JobSucceeded {
		t.Fatalf("map-only job state = %v", j.State)
	}
	if j.Counters().ReduceAttemptsStarted != 0 {
		t.Fatal("map-only job started reduces")
	}
}

func TestFIFOOrdering(t *testing.T) {
	c := newCluster(3, 2, hogNNCfg(), hogJTCfg())
	j1 := c.jt.Submit(smallJob(c, "first", 8, 2))
	j2 := c.jt.Submit(smallJob(c, "second", 8, 2))
	c.runUntilDone(t, 4*sim.Hour)
	if !(j1.FinishTime <= j2.FinishTime) {
		t.Fatalf("FIFO violated: first %v, second %v", j1.FinishTime, j2.FinishTime)
	}
}

func TestMapLocalityPreferred(t *testing.T) {
	c := newCluster(4, 4, hogNNCfg(), hogJTCfg())
	j := c.jt.Submit(smallJob(c, "local", 10, 1))
	c.runUntilDone(t, 4*sim.Hour)
	loc := j.Counters().Locality
	if loc[NodeLocal] == 0 {
		t.Fatalf("no node-local maps at all: %v", loc)
	}
	if loc[NodeLocal] < loc[Remote] {
		t.Fatalf("remote maps (%d) outnumber node-local (%d) on an idle cluster", loc[Remote], loc[NodeLocal])
	}
}

func TestNodeDeathRecovery(t *testing.T) {
	c := newCluster(5, 4, hogNNCfg(), hogJTCfg())
	j := c.jt.Submit(smallJob(c, "death", 12, 3))
	// Kill two nodes shortly after work starts.
	c.eng.After(40*sim.Second, func() {
		c.kill(c.nodes[0])
		c.kill(c.nodes[5])
	})
	c.runUntilDone(t, 6*sim.Hour)
	if j.State != JobSucceeded {
		t.Fatalf("job did not survive node deaths: %v (%s)", j.State, j.FailReason())
	}
	if tr := c.jt.Tracker(c.nodes[0]); tr.Alive {
		t.Fatal("dead tracker still alive after timeout")
	}
}

func TestCompletedMapOutputLossReExecutes(t *testing.T) {
	c := newCluster(6, 4, hogNNCfg(), hogJTCfg())
	// Large-ish maps and slow reduces ensure maps complete well before
	// shuffle drains, so killing a map host loses completed output.
	cfg := smallJob(c, "reexec", 10, 2)
	cfg.ReduceCostPerMB = 2 * sim.Second
	j := c.jt.Submit(cfg)
	var killed bool
	c.eng.Every(5*sim.Second, func() {
		if killed || j.completedMaps == 0 {
			return
		}
		for _, m := range j.maps {
			if m.done && c.state[m.outputNode] == healthy {
				c.kill(m.outputNode)
				killed = true
				return
			}
		}
	})
	c.runUntilDone(t, 8*sim.Hour)
	if !killed {
		t.Fatal("never killed a map output host")
	}
	if j.State != JobSucceeded {
		t.Fatalf("job state = %v (%s)", j.State, j.FailReason())
	}
	if j.Counters().MapsReExecuted == 0 {
		t.Fatal("no maps re-executed after output loss")
	}
}

func TestZombieTrackerFailsFastAndBlacklisted(t *testing.T) {
	c := newCluster(7, 3, hogNNCfg(), hogJTCfg())
	j := c.jt.Submit(smallJob(c, "zombie", 10, 2))
	c.eng.After(10*sim.Second, func() { c.makeZombie(c.nodes[0]) })
	c.runUntilDone(t, 6*sim.Hour)
	if j.State != JobSucceeded {
		t.Fatalf("job state = %v (%s)", j.State, j.FailReason())
	}
	// The zombie kept heartbeating, so the JobTracker assigned it work that
	// failed fast.
	if j.Counters().MapAttemptsFailed == 0 && j.Counters().ReduceAttemptsFailed == 0 {
		t.Fatal("zombie absorbed no attempts — model not exercising §IV.D.1")
	}
	if tr := c.jt.Tracker(c.nodes[0]); !tr.Alive {
		t.Fatal("zombie tracker should still look alive to the JobTracker")
	}
}

func TestDiskOverflowKillsWorker(t *testing.T) {
	c := newCluster(8, 3, hogNNCfg(), hogJTCfg())
	// Shrink every disk so intermediate output can't fit comfortably.
	for _, id := range c.nodes {
		c.dt.SetCapacity(id, 450e6)
	}
	overflowed := map[netmodel.NodeID]bool{}
	c.jt.OnDiskOverflow = func(n netmodel.NodeID) {
		if !overflowed[n] {
			overflowed[n] = true
			c.kill(n) // HOG: the daemons shut themselves down
		}
	}
	// 3 jobs x 6 blocks with identity map selectivity overflows 450 MB
	// nodes (each holds ~2 input replicas already).
	var jobs []*Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, c.jt.Submit(smallJob(c, fmt.Sprintf("ovf%d", i), 6, 1)))
	}
	c.eng.RunWhile(func() bool { return !c.jt.AllDone() && c.eng.Now() < 6*sim.Hour })
	if len(overflowed) == 0 {
		t.Fatal("no disk overflow on deliberately tiny disks")
	}
	_ = jobs
}

func TestLostInputFailsJob(t *testing.T) {
	cfgNN := hogNNCfg()
	cfgNN.Replication = 2
	c := newCluster(9, 2, cfgNN, hogJTCfg())
	cfg := smallJob(c, "lost", 4, 1)
	// Destroy all replicas of the input before submitting.
	fi := c.nn.File("/in/lost")
	for _, bid := range fi.Blocks {
		for _, rep := range c.nn.Block(bid).Replicas() {
			c.kill(rep)
			c.nn.ForceDead(rep)
			c.jt.ForceTrackerDead(rep)
		}
	}
	j := c.jt.Submit(cfg)
	c.eng.RunWhile(func() bool { return !c.jt.AllDone() && c.eng.Now() < 2*sim.Hour })
	if j.State != JobFailed {
		t.Fatalf("job state = %v, want failed (input lost)", j.State)
	}
	if j.FailReason() == "" {
		t.Fatal("failed job has no reason")
	}
}

// TestTaskExhaustionFailsJob: when one task burns through MaxTaskAttempts
// with every other task already done, the job must transition to JobFailed —
// not leave the scheduler silently hanging with an unschedulable task.
func TestTaskExhaustionFailsJob(t *testing.T) {
	jtCfg := hogJTCfg()
	jtCfg.MaxTaskAttempts = 3
	jtCfg.Speculative = false
	c := newCluster(21, 1, hogNNCfg(), jtCfg) // 5 nodes, 1 map slot each
	j := c.jt.Submit(smallJob(c, "exhaust", 6, 0))
	zombified := false
	c.eng.Every(2*sim.Second, func() {
		// Once the first wave of maps is done, turn every node into a
		// zombie: the remaining task's attempts fail fast on each node it
		// is retried on until its budget is exhausted.
		if zombified || j.CompletedMaps() < 5 {
			return
		}
		zombified = true
		for _, id := range c.nodes {
			if c.state[id] == healthy {
				c.makeZombie(id)
			}
		}
	})
	c.eng.RunWhile(func() bool { return !c.jt.AllDone() && c.eng.Now() < 2*sim.Hour })
	if !zombified {
		t.Fatal("never reached the 5-maps-done trigger")
	}
	if !c.jt.AllDone() {
		t.Fatalf("scheduler hung: job still %v with %d/%d maps after task exhaustion",
			j.State, j.CompletedMaps(), j.NumMaps())
	}
	if j.State != JobFailed {
		t.Fatalf("job state = %v, want failed after a task exhausted %d attempts", j.State, jtCfg.MaxTaskAttempts)
	}
	if j.FailReason() == "" {
		t.Fatal("exhausted job has no failure reason")
	}
}

func TestEagerRedundancyRunsCopies(t *testing.T) {
	jtCfg := hogJTCfg()
	jtCfg.EagerRedundancy = true
	jtCfg.MaxTaskCopies = 2
	c := newCluster(10, 4, hogNNCfg(), jtCfg)
	j := c.jt.Submit(smallJob(c, "eager", 4, 1))
	c.runUntilDone(t, 2*sim.Hour)
	ctr := j.Counters()
	if ctr.SpeculativeMaps == 0 {
		t.Fatal("eager redundancy launched no extra copies")
	}
	if j.completedMaps != 4 {
		t.Fatalf("completedMaps = %d, want 4 (copies must not double-complete)", j.completedMaps)
	}
}

func TestStragglerCriterion(t *testing.T) {
	c := newCluster(11, 2, hogNNCfg(), hogJTCfg())
	j := c.jt.Submit(smallJob(c, "strag", 2, 1))
	// White-box: with two completed maps of 10 s average, a task running
	// since t-60 s is a straggler (60 > 1.33*10), but one started 5 s ago
	// is not, and nothing is a straggler below the minimum runtime. The
	// duration aggregates are kept in step by hand, as mapDone would.
	for _, m := range j.maps[:2] {
		m.done = true
		m.duration = 10 * sim.Second
		j.doneMapDur += m.duration
		j.doneMapN++
	}
	c.eng.RunUntil(100 * sim.Second)
	now := c.eng.Now()
	tr := c.jt.Tracker(c.nodes[0])
	if !c.jt.spec.IsStraggler(c.jt, j, KindMap, tr, now-60*sim.Second) {
		t.Fatal("60s-old task not flagged with 10s average")
	}
	if c.jt.spec.IsStraggler(c.jt, j, KindMap, tr, now-5*sim.Second) {
		t.Fatal("5s-old task flagged despite min runtime guard")
	}
	if c.jt.spec.IsStraggler(c.jt, j, KindMap, tr, -1) {
		t.Fatal("idle task flagged")
	}
}

func TestSpeculativeDisabled(t *testing.T) {
	jtCfg := hogJTCfg()
	jtCfg.Speculative = false
	c := newCluster(12, 3, hogNNCfg(), jtCfg)
	j := c.jt.Submit(smallJob(c, "nospec", 6, 2))
	c.runUntilDone(t, 2*sim.Hour)
	ctr := j.Counters()
	if ctr.SpeculativeMaps != 0 || ctr.SpeculativeReduces != 0 {
		t.Fatalf("speculation happened while disabled: %+v", ctr)
	}
}

func TestSubmitUnknownInputPanics(t *testing.T) {
	c := newCluster(13, 1, hogNNCfg(), hogJTCfg())
	defer func() {
		if recover() == nil {
			t.Error("Submit with unknown input did not panic")
		}
	}()
	c.jt.Submit(JobConfig{Name: "x", InputFile: "/nope", Reduces: 1})
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() sim.Time {
		c := newCluster(99, 3, hogNNCfg(), hogJTCfg())
		j1 := c.jt.Submit(smallJob(c, "d1", 5, 2))
		c.eng.After(20*sim.Second, func() { c.kill(c.nodes[2]) })
		c.runUntilDone(t, 4*sim.Hour)
		return j1.FinishTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic makespan: %v vs %v", a, b)
	}
}

func TestJobStateString(t *testing.T) {
	want := map[JobState]string{
		JobPending: "pending", JobRunning: "running",
		JobSucceeded: "succeeded", JobFailed: "failed", JobState(9): "unknown",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("JobState(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
	lvls := map[LocalityLevel]string{NodeLocal: "node-local", SiteLocal: "site-local", Remote: "remote", LocalityLevel(9): "unknown"}
	for l, w := range lvls {
		if l.String() != w {
			t.Errorf("LocalityLevel(%d) = %q, want %q", l, l.String(), w)
		}
	}
}

// Property: jobs with any small map/reduce shape complete successfully on a
// healthy cluster, and disk usage returns to the seeded baseline after all
// intermediate data is released.
func TestJobShapesProperty(t *testing.T) {
	f := func(mRaw, rRaw uint8) bool {
		maps := int(mRaw)%6 + 1
		reduces := int(rRaw)%4 + 1
		c := newCluster(int64(mRaw)*7+int64(rRaw)+1, 3, hogNNCfg(), hogJTCfg())
		baseline := totalUsed(c)
		cfg := smallJob(c, "p", maps, reduces)
		inputBytes := float64(maps) * hdfs.DefaultBlockSize * 3 // replication 3
		j := c.jt.Submit(cfg)
		c.eng.RunWhile(func() bool { return !c.jt.AllDone() && c.eng.Now() < 6*sim.Hour })
		if j.State != JobSucceeded {
			return false
		}
		// After completion: input + output remain, intermediate gone.
		var outBytes float64
		for i := 0; i < reduces; i++ {
			for a := int64(0); a < 100; a++ {
				if fi := c.nn.File(fmt.Sprintf("out/p/part-%05d-a%d", i, a)); fi != nil {
					outBytes += fi.Size * float64(fi.Replication)
				}
			}
		}
		used := totalUsed(c)
		_ = baseline
		slack := 1e6 // pipeline rounding
		return used <= inputBytes+outBytes+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func totalUsed(c *cluster) float64 {
	var sum float64
	for _, id := range c.nodes {
		sum += c.dt.Used(id)
	}
	return sum
}
