package mapred

import (
	"fmt"
	"sort"

	"hog/internal/disk"
	"hog/internal/event"
	"hog/internal/hdfs"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// TaskTracker is the JobTracker's view of a worker's task daemon.
type TaskTracker struct {
	Node          netmodel.NodeID
	Hostname      string
	Site          string
	MapSlots      int
	ReduceSlots   int
	Alive         bool
	LastHeartbeat sim.Time
	// Speed scales compute rates on this worker (1.0 = nominal). Table
	// III's cluster mixes dual-core Opteron-275 and older single-core
	// Opteron-64 nodes; the latter run slot-for-slot slower.
	Speed float64

	runningMaps    int
	runningReduces int
	attempts       map[*attempt]struct{}
	// awaitingReregister is set while a recovered JobTracker waits for this
	// tracker to re-register (see recovery.go).
	awaitingReregister bool
}

// FreeMapSlots returns currently unoccupied map slots.
func (t *TaskTracker) FreeMapSlots() int { return t.MapSlots - t.runningMaps }

// FreeReduceSlots returns currently unoccupied reduce slots.
func (t *TaskTracker) FreeReduceSlots() int { return t.ReduceSlots - t.runningReduces }

// RunningMaps returns occupied map slots (audit accessor).
func (t *TaskTracker) RunningMaps() int { return t.runningMaps }

// RunningReduces returns occupied reduce slots (audit accessor).
func (t *TaskTracker) RunningReduces() int { return t.runningReduces }

// LiveAttempts counts the tracker's live attempts by kind (audit accessor;
// must equal the slot counters).
func (t *TaskTracker) LiveAttempts() (maps, reduces int) {
	for a := range t.attempts {
		if a.mt != nil {
			maps++
		} else {
			reduces++
		}
	}
	return maps, reduces
}

// JobTracker is the MapReduce master. Like the namenode it lives on HOG's
// stable central server, but even the central server can crash: Crash drops
// all in-flight task state and Restart reconstructs job state while trackers
// re-register (see recovery.go and docs/FAULTS.md).
type JobTracker struct {
	eng  *sim.Engine
	net  *netmodel.Network
	nn   *hdfs.Namenode
	disk *disk.Tracker
	cfg  Config

	trackers map[netmodel.NodeID]*TaskTracker
	// trackerOrder holds every registered tracker in ascending node order:
	// the deterministic scan order for dead detection, without per-scan
	// sorting at ten-thousand-tracker scale.
	trackerOrder []*TaskTracker
	jobs         []*Job
	nextID       JobID
	active       int // running or pending jobs
	attemptSeq   int64
	// down is true between Crash and Restart; heartbeats are lost then and
	// the senders back off and retry (see the master backoff in internal/core).
	down bool

	// sched and spec are the active scheduling and speculation policies
	// (policy.go), resolved by name from the configuration.
	sched SchedulerPolicy
	spec  SpeculationPolicy
	// poolRunning counts live attempts per fair-share pool and siteLoads
	// tracks per-site slot occupancy for the site-load speculation policy;
	// both are maintained on launch/detach regardless of the active policy,
	// so switching policies never changes the bookkeeping the equivalence
	// tests fingerprint.
	poolRunning map[string]int
	siteLoads   map[string]*siteLoad

	// activeList holds unfinished jobs in submission order; the indexed
	// assignment path iterates it instead of re-skipping finished jobs.
	activeList []*Job
	// blockMaps maps an input block to the active map tasks reading it, for
	// the namenode placement-change hook. Empty under Config.ScanScheduler.
	blockMaps map[hdfs.BlockID][]*mapTask

	// DiskUsable reports whether a node's scratch directory is readable and
	// writable. Zombie datanodes (§IV.D.1) heartbeat while their working
	// directory is gone; assignments to them fail fast. nil means always
	// usable.
	DiskUsable func(n netmodel.NodeID) bool
	// DataServable reports whether a node can serve stored bytes (map
	// output, HDFS replicas) — false once the physical node is gone even if
	// the JobTracker has not yet noticed. nil means alive trackers serve.
	DataServable func(n netmodel.NodeID) bool
	// OnDiskOverflow fires when a task fails to reserve scratch space; HOG
	// wires this to killing the worker ("worker nodes out of disk error").
	OnDiskOverflow func(n netmodel.NodeID)
	// OnJobComplete fires when a job succeeds or fails.
	OnJobComplete func(*Job)

	// Events receives JobSubmitted, JobFinished, TaskLaunched, and
	// TaskFinished events when observers are subscribed; nil is a valid,
	// inactive bus.
	Events *event.Bus

	checker *sim.Ticker
}

// NewJobTracker creates a JobTracker; Start begins dead-tracker scanning.
// The tracker subscribes to the namenode's placement-change hook (chaining
// onto any existing subscriber) so the scheduler index follows replica
// add/remove and node death.
func NewJobTracker(eng *sim.Engine, net *netmodel.Network, nn *hdfs.Namenode, dt *disk.Tracker, cfg Config) *JobTracker {
	jt := &JobTracker{
		eng:         eng,
		net:         net,
		nn:          nn,
		disk:        dt,
		cfg:         cfg.withDefaults(),
		trackers:    make(map[netmodel.NodeID]*TaskTracker),
		blockMaps:   make(map[hdfs.BlockID][]*mapTask),
		poolRunning: make(map[string]int),
		siteLoads:   make(map[string]*siteLoad),
	}
	var err error
	if jt.sched, err = NewSchedulerPolicy(jt.cfg.SchedulerPolicy); err != nil {
		panic(err)
	}
	if jt.spec, err = NewSpeculationPolicy(jt.cfg.SpeculationPolicy); err != nil {
		panic(err)
	}
	if nn != nil {
		prev := nn.OnPlacementChange
		nn.OnPlacementChange = func(bid hdfs.BlockID, node netmodel.NodeID, added bool) {
			if prev != nil {
				prev(bid, node, added)
			}
			jt.placementChanged(bid, node, added)
		}
	}
	return jt
}

// Config returns the effective configuration.
func (jt *JobTracker) Config() Config { return jt.cfg }

// Start begins periodic dead-tracker detection.
func (jt *JobTracker) Start() {
	if jt.checker == nil {
		jt.checker = jt.eng.Every(jt.cfg.CheckInterval, jt.checkDead)
	}
}

// Stop halts periodic scanning.
func (jt *JobTracker) Stop() {
	if jt.checker != nil {
		jt.checker.Stop()
		jt.checker = nil
	}
}

// RegisterTracker adds a worker's task daemon with the given slot counts.
func (jt *JobTracker) RegisterTracker(node netmodel.NodeID, hostname, site string, mapSlots, reduceSlots int) *TaskTracker {
	if _, ok := jt.trackers[node]; ok {
		panic(fmt.Sprintf("mapred: tracker %d registered twice", node))
	}
	t := &TaskTracker{
		Node:          node,
		Hostname:      hostname,
		Site:          site,
		MapSlots:      mapSlots,
		ReduceSlots:   reduceSlots,
		Alive:         true,
		LastHeartbeat: jt.eng.Now(),
		Speed:         1.0,
		attempts:      make(map[*attempt]struct{}),
	}
	jt.trackers[node] = t
	sl := jt.siteLoads[site]
	if sl == nil {
		sl = &siteLoad{}
		jt.siteLoads[site] = sl
	}
	sl.slots += mapSlots + reduceSlots
	// Trackers register with ascending node IDs in practice; the insertion
	// walk keeps trackerOrder correct if they ever do not.
	jt.trackerOrder = append(jt.trackerOrder, t)
	for i := len(jt.trackerOrder) - 1; i > 0 && jt.trackerOrder[i-1].Node > node; i-- {
		jt.trackerOrder[i], jt.trackerOrder[i-1] = jt.trackerOrder[i-1], jt.trackerOrder[i]
	}
	return t
}

// Tracker returns the tracker for node, or nil.
func (jt *JobTracker) Tracker(node netmodel.NodeID) *TaskTracker { return jt.trackers[node] }

// AliveTrackers returns live trackers in node order.
func (jt *JobTracker) AliveTrackers() []*TaskTracker {
	var out []*TaskTracker
	for _, t := range jt.trackerOrder {
		if t.Alive {
			out = append(out, t)
		}
	}
	return out
}

// Heartbeat records a tracker heartbeat and, as in Hadoop, triggers task
// assignment for its free slots.
func (jt *JobTracker) Heartbeat(node netmodel.NodeID) {
	jt.HeartbeatTracker(jt.trackers[node])
}

// HeartbeatTracker is Heartbeat for callers that already hold the tracker —
// the per-beat driver loop over ten thousand workers skips ten thousand map
// probes this way.
func (jt *JobTracker) HeartbeatTracker(t *TaskTracker) {
	if jt.down || t == nil || !t.Alive {
		return
	}
	t.LastHeartbeat = jt.eng.Now()
	jt.assign(t)
}

// Submit enqueues a job built from its input file's blocks (one map task per
// block, §II.A) and returns it. Scheduling is FIFO in submission order.
func (jt *JobTracker) Submit(cfg JobConfig) *Job {
	cfg = cfg.withDefaults()
	fi := jt.nn.File(cfg.InputFile)
	if fi == nil {
		panic(fmt.Sprintf("mapred: input file %q does not exist", cfg.InputFile))
	}
	j := &Job{
		ID:            jt.nextID,
		Config:        cfg,
		State:         JobPending,
		SubmitTime:    jt.eng.Now(),
		pool:          cfg.pool(),
		skipSince:     -1,
		specMapMin:    specMinInvalid,
		specReduceMin: specMinInvalid,
	}
	jt.nextID++
	for i, bid := range fi.Blocks {
		b := jt.nn.Block(bid)
		j.maps = append(j.maps, &mapTask{job: j, idx: i, block: bid, inputBytes: b.Size})
	}
	for i := 0; i < cfg.Reduces; i++ {
		j.reduces = append(j.reduces, &reduceTask{job: j, idx: i})
	}
	jt.jobs = append(jt.jobs, j)
	jt.active++
	jt.registerJobIndex(j)
	if jt.Events.Active() {
		ev := event.At(event.JobSubmitted, jt.eng.Now())
		ev.Job = int(j.ID)
		ev.Detail = cfg.Name
		jt.Events.Emit(ev)
	}
	// Kick the schedulers: idle trackers assign on their next heartbeat,
	// which is at most one interval away, so nothing else is needed here.
	return j
}

// Jobs returns all submitted jobs in submission order.
func (jt *JobTracker) Jobs() []*Job { return jt.jobs }

// ActiveJobs returns the number of unfinished jobs.
func (jt *JobTracker) ActiveJobs() int { return jt.active }

func (jt *JobTracker) checkDead() {
	now := jt.eng.Now()
	// trackerOrder is already the ascending-node order the old per-scan
	// sort produced; markDead consumes RNG, so order must stay exact. The
	// scan is read-only, so at scale it fans out across parallel chunks —
	// merging candidates in chunk order reproduces the plain loop's order
	// before the mutating markDead pass runs serially.
	var parts [sim.ScanChunks][]*TaskTracker
	jt.eng.ParallelScan(len(jt.trackerOrder), 4096, func(c, lo, hi int) {
		for _, t := range jt.trackerOrder[lo:hi] {
			if t.Alive && now-t.LastHeartbeat > jt.cfg.TrackerTimeout {
				parts[c] = append(parts[c], t)
			}
		}
	})
	for _, doomed := range parts {
		for _, t := range doomed {
			jt.markDead(t)
		}
	}
}

// NodeCrashed records that a worker's processes died silently (clean
// preemption kills the whole process tree, §IV.D.1). Live attempts stop
// making progress immediately, but the JobTracker keeps believing they run —
// as ghosts — until the tracker's heartbeat timeout expires or a speculative
// copy finishes first. This is precisely the latency the paper's 30-second
// timeout attacks.
func (jt *JobTracker) NodeCrashed(node netmodel.NodeID) {
	t, ok := jt.trackers[node]
	if !ok {
		return
	}
	var atts []*attempt
	for a := range t.attempts {
		atts = append(atts, a)
	}
	sort.Slice(atts, func(i, j int) bool { return atts[i].seq < atts[j].seq })
	for _, a := range atts {
		if a.mt != nil {
			a.mt.ghosts = append(a.mt.ghosts, ghost{node: node, started: a.started})
		} else {
			a.rt.ghosts = append(a.rt.ghosts, ghost{node: node, started: a.started})
		}
		a.cancel("node crashed")
	}
}

// NodeLostWorkdir records that the site deleted the job's working directory
// while the tasktracker survived (the zombie scenario): running tasks die
// and report failure immediately, so the JobTracker learns right away.
func (jt *JobTracker) NodeLostWorkdir(node netmodel.NodeID) {
	t, ok := jt.trackers[node]
	if !ok {
		return
	}
	var atts []*attempt
	for a := range t.attempts {
		atts = append(atts, a)
	}
	sort.Slice(atts, func(i, j int) bool { return atts[i].seq < atts[j].seq })
	for _, a := range atts {
		a.fail("working directory removed", true)
	}
}

// markDead declares a tracker lost: running attempts (and ghost beliefs)
// fail and re-queue, and completed map output that lived on the node is
// re-executed for any job that still needs it (Hadoop re-runs maps whose
// output became unreachable).
func (jt *JobTracker) markDead(t *TaskTracker) {
	if !t.Alive {
		return
	}
	t.Alive = false
	if sl := jt.siteLoads[t.Site]; sl != nil {
		sl.slots -= t.MapSlots + t.ReduceSlots
	}
	// Fail running attempts.
	var atts []*attempt
	for a := range t.attempts {
		atts = append(atts, a)
	}
	sort.Slice(atts, func(i, j int) bool { return atts[i].seq < atts[j].seq })
	for _, a := range atts {
		a.fail("tracker lost", false)
	}
	// Clear ghost beliefs: the timeout has expired, so these tasks return
	// to pending and reschedule.
	for _, j := range jt.jobs {
		if j.State != JobRunning && j.State != JobPending {
			continue
		}
		for _, m := range j.maps {
			if before := len(m.ghosts); before > 0 {
				m.ghosts = dropGhosts(m.ghosts, t.Node)
				if len(m.ghosts) != before {
					jt.noteMapTask(m)
				}
			}
		}
		for _, r := range j.reduces {
			if before := len(r.ghosts); before > 0 {
				r.ghosts = dropGhosts(r.ghosts, t.Node)
				if len(r.ghosts) != before {
					jt.noteReduceTask(r)
				}
			}
		}
	}
	// Re-execute completed maps whose output is gone — but only those some
	// reduce still needs; output every reducer has already pulled is not
	// worth recomputing.
	for _, j := range jt.jobs {
		if j.State != JobRunning && j.State != JobPending {
			continue
		}
		for _, m := range j.maps {
			if m.done && m.outputNode == t.Node && jt.outputStillNeeded(j, m) {
				jt.reExecuteMap(j, m)
			}
		}
	}
}

// outputStillNeeded reports whether any unfinished reduce has yet to fetch
// the map's partition.
func (jt *JobTracker) outputStillNeeded(j *Job, m *mapTask) bool {
	if len(j.reduces) == 0 {
		return false
	}
	for _, r := range j.reduces {
		if r.done {
			continue
		}
		fetched := false
		for _, ra := range r.attempts {
			if ra.live() && ra.fetchDone[m.idx] {
				fetched = true
				break
			}
		}
		if !fetched {
			return true
		}
	}
	return false
}

// ForceTrackerDead marks a tracker dead immediately (failure injection).
func (jt *JobTracker) ForceTrackerDead(node netmodel.NodeID) {
	if t, ok := jt.trackers[node]; ok {
		jt.markDead(t)
	}
}

func (jt *JobTracker) reExecuteMap(j *Job, m *mapTask) {
	if !m.done {
		return
	}
	m.done = false
	m.outputNode = -1
	j.completedMaps--
	j.counters.MapsReExecuted++
	// The completed duration leaves the straggler aggregate with the task.
	j.doneMapDur -= m.duration
	j.doneMapN--
	jt.noteMapTask(m)
	// Reduces waiting on this map simply keep waiting; they re-fetch when
	// the re-execution completes.
}

// assign hands tasks to a tracker's free slots under FIFO with locality
// preference and speculative execution, mirroring Hadoop 0.20's
// JobInProgress.obtainNewMapTask/obtainNewReduceTask logic.
func (jt *JobTracker) assign(t *TaskTracker) {
	// A zombie's assignments would fail immediately; Hadoop still assigns
	// (it cannot know), so we do too — the attempt fails fast and wastes
	// the slot, reproducing §IV.D.1. (No diskBroken probe here: the
	// tracker heartbeats on every beat of every worker, and the answer
	// would not change the assignment anyway.)
	for t.FreeMapSlots() > 0 {
		if !jt.assignOneMap(t) {
			break
		}
	}
	for t.FreeReduceSlots() > 0 {
		if !jt.assignOneReduce(t) {
			break
		}
	}
}

// assignOneMap hands one map task to the tracker, via the indexed path or
// the retained linear scan (Config.ScanScheduler). The two are bit-identical.
func (jt *JobTracker) assignOneMap(t *TaskTracker) bool {
	if jt.cfg.ScanScheduler {
		return jt.assignOneMapScan(t)
	}
	return jt.assignOneMapIndexed(t)
}

func (jt *JobTracker) assignOneReduce(t *TaskTracker) bool {
	if jt.cfg.ScanScheduler {
		return jt.assignOneReduceScan(t)
	}
	return jt.assignOneReduceIndexed(t)
}

func (jt *JobTracker) assignOneMapScan(t *TaskTracker) bool {
	for _, j := range jt.jobs {
		if j.State == JobFailed || j.State == JobSucceeded || j.blacklisted(t.Node) {
			continue
		}
		// Locality pass 1: node-local pending map.
		var nodeLocal, siteLocal, anyPending *mapTask
		hasPending := false
		for _, m := range j.maps {
			if m.done || m.running() > 0 || m.failures >= jt.cfg.MaxTaskAttempts {
				continue
			}
			hasPending = true
			if m.failedOn[t.Node] {
				continue
			}
			lvl := jt.localityOf(t, m)
			switch lvl {
			case NodeLocal:
				nodeLocal = m
			case SiteLocal:
				if siteLocal == nil {
					siteLocal = m
				}
			default:
				if anyPending == nil {
					anyPending = m
				}
			}
			if nodeLocal != nil {
				break
			}
		}
		pick := nodeLocal
		lvl := NodeLocal
		if pick == nil {
			pick, lvl = siteLocal, SiteLocal
		}
		if pick == nil {
			pick, lvl = anyPending, Remote
		}
		if pick != nil && lvl != NodeLocal && jt.cfg.LocalityWait > 0 {
			// Delay scheduling: skip this job's non-local work for a while
			// in the hope a data-local slot frees up.
			if j.skipSince < 0 {
				j.skipSince = jt.eng.Now()
				continue
			}
			if jt.eng.Now()-j.skipSince < jt.cfg.LocalityWait {
				continue
			}
			// Waited long enough; accept the non-local slot. The wait is NOT
			// reset here: one expired LocalityWait covers every queued
			// non-local map, so a backlog launches in the same heartbeat wave
			// instead of each map serially paying a fresh full wait. Only a
			// node-local launch ends the waiting state.
		}
		if pick != nil {
			if lvl == NodeLocal {
				j.skipSince = -1
			}
			jt.launchMap(j, pick, t, lvl, false)
			return true
		}
		if jt.cfg.LocalityWait > 0 && !hasPending {
			// Backlog drained: re-arm the wait so maps that become pending
			// later (re-executions, ghost re-queues) get a fresh chance at a
			// local slot instead of inheriting the long-expired wait.
			j.skipSince = -1
		}
		// No pending maps in this job: consider speculation before moving
		// to the next job (Hadoop speculates within the running job first).
		if m := jt.speculativeMap(j, t); m != nil {
			jt.launchMap(j, m, t, jt.localityOf(t, m), true)
			return true
		}
	}
	return false
}

func (jt *JobTracker) localityOf(t *TaskTracker, m *mapTask) LocalityLevel {
	b := jt.nn.Block(m.block)
	if b == nil {
		return Remote
	}
	site := t.Site
	lvl := Remote
	for _, r := range b.Replicas() {
		if r == t.Node {
			return NodeLocal
		}
		if d := jt.nn.Datanode(r); d != nil && d.Alive && d.Site == site {
			lvl = SiteLocal
		}
	}
	return lvl
}

func (jt *JobTracker) speculativeMap(j *Job, t *TaskTracker) *mapTask {
	if !jt.cfg.Speculative {
		return nil
	}
	for _, m := range j.maps {
		if m.done || m.failures >= jt.cfg.MaxTaskAttempts || m.failedOn[t.Node] {
			continue
		}
		r := m.running()
		if r == 0 || r >= jt.cfg.MaxTaskCopies {
			continue
		}
		if m.runningOn(t.Node) {
			continue // never two copies on one node
		}
		if jt.cfg.EagerRedundancy {
			return m
		}
		if jt.spec.IsStraggler(jt, j, KindMap, t, m.oldestRunningStart()) {
			return m
		}
	}
	return nil
}

func (jt *JobTracker) assignOneReduceScan(t *TaskTracker) bool {
	for _, j := range jt.jobs {
		if j.State == JobFailed || j.State == JobSucceeded || j.blacklisted(t.Node) {
			continue
		}
		if len(j.maps) > 0 {
			need := int(jt.cfg.SlowstartFraction * float64(len(j.maps)))
			if need < 1 {
				need = 1
			}
			if j.completedMaps < need {
				continue
			}
		}
		for _, r := range j.reduces {
			if r.done || r.running() > 0 || r.failures >= jt.cfg.MaxTaskAttempts || r.failedOn[t.Node] {
				continue
			}
			jt.launchReduce(j, r, t, false)
			return true
		}
		if r := jt.speculativeReduce(j, t); r != nil {
			jt.launchReduce(j, r, t, true)
			return true
		}
	}
	return false
}

func (jt *JobTracker) speculativeReduce(j *Job, t *TaskTracker) *reduceTask {
	if !jt.cfg.Speculative {
		return nil
	}
	for _, r := range j.reduces {
		if r.done || r.failures >= jt.cfg.MaxTaskAttempts || r.failedOn[t.Node] {
			continue
		}
		n := r.running()
		if n == 0 || n >= jt.cfg.MaxTaskCopies {
			continue
		}
		if r.runningOn(t.Node) {
			continue
		}
		if jt.cfg.EagerRedundancy {
			return r
		}
		if jt.spec.IsStraggler(jt, j, KindReduce, t, r.oldestRunningStart()) {
			return r
		}
	}
	return nil
}

func (jt *JobTracker) diskBroken(n netmodel.NodeID) bool {
	return jt.DiskUsable != nil && !jt.DiskUsable(n)
}

func (jt *JobTracker) servable(n netmodel.NodeID) bool {
	if jt.DataServable != nil {
		return jt.DataServable(n)
	}
	t, ok := jt.trackers[n]
	return ok && t.Alive
}

// AllDone reports whether every submitted job has finished.
func (jt *JobTracker) AllDone() bool { return jt.active == 0 }

func (jt *JobTracker) finishJob(j *Job, state JobState, reason string) {
	if j.State == JobSucceeded || j.State == JobFailed {
		return
	}
	j.State = state
	j.failReason = reason
	j.FinishTime = jt.eng.Now()
	jt.active--
	// Abort any stragglers still running (speculative copies, or all tasks
	// on failure).
	for _, m := range j.maps {
		m.cancelRunning("job finished")
	}
	for _, r := range j.reduces {
		r.cancelRunning("job finished")
	}
	// Intermediate map output is deleted only when the entire job is done
	// (§IV.D.2) — release it now.
	for _, res := range j.outputReservations {
		jt.disk.Release(res.node, res.bytes)
	}
	j.outputReservations = nil
	jt.unregisterJobIndex(j)
	if jt.Events.Active() {
		ev := event.At(event.JobFinished, jt.eng.Now())
		ev.Job = int(j.ID)
		ev.Detail = state.String()
		jt.Events.Emit(ev)
	}
	if jt.OnJobComplete != nil {
		jt.OnJobComplete(j)
	}
}
