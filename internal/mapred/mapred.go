// Package mapred reimplements Hadoop MapReduce 1.0 at the fidelity the paper
// depends on (§II.A, §III.B.2): a JobTracker on the stable central server,
// TaskTrackers with fixed map/reduce slots on worker nodes, heartbeat-driven
// task assignment under Apache Hadoop's FIFO policy with speculative
// execution (at most two copies of a task; the paper's future work makes the
// copy count configurable, which this package supports), locality-aware map
// placement (node-local, then site-local, then remote), a shuffle phase with
// parallel fetchers, reduce slow-start, and recovery from lost nodes: running
// attempts are rescheduled and completed map output lost with a node is
// re-executed.
//
// Task I/O and computation consume simulated time through the netmodel
// fabric; intermediate map output occupies real tracked disk space until the
// job finishes, reproducing the paper's §IV.D.2 disk-overflow failure mode.
package mapred

import (
	"fmt"
	"reflect"

	"hog/internal/netmodel"
	"hog/internal/sim"
)

// JobID identifies a submitted job.
type JobID int

// JobState is a job's lifecycle state.
type JobState int

// Job lifecycle states.
const (
	JobPending JobState = iota
	JobRunning
	JobSucceeded
	JobFailed
)

// String returns the state name.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobSucceeded:
		return "succeeded"
	case JobFailed:
		return "failed"
	}
	return "unknown"
}

// JobConfig describes one MapReduce job. The cost model mirrors loadgen: a
// data-movement job parameterised by selectivities and per-byte costs.
type JobConfig struct {
	// Name labels the job; output files are derived from it.
	Name string
	// InputFile is the HDFS input; the job gets one map task per block.
	InputFile string
	// Reduces is the number of reduce tasks.
	Reduces int
	// MapSelectivity is intermediate bytes per input byte (default 1.0,
	// loadgen's identity behaviour).
	MapSelectivity float64
	// ReduceSelectivity is output bytes per shuffled byte (default 0.5).
	ReduceSelectivity float64
	// MapCostPerMB, SortCostPerMB, ReduceCostPerMB are compute time per MB
	// of data processed in each phase.
	MapCostPerMB    sim.Time
	SortCostPerMB   sim.Time
	ReduceCostPerMB sim.Time
	// OutputReplication for the job's output files; 0 uses the HDFS default.
	OutputReplication int
	// Bin tags the job with its workload bin (reporting only).
	Bin int
	// Pool names the fair-share pool the job is scheduled under (the "fair"
	// scheduler policy; see Config.Pools). Empty derives the pool from the
	// workload bin, so multi-bin workloads are multi-tenant by default.
	Pool string
}

// pool returns the effective fair-share pool name.
func (c JobConfig) pool() string {
	if c.Pool != "" {
		return c.Pool
	}
	return fmt.Sprintf("bin%d", c.Bin)
}

func (c JobConfig) withDefaults() JobConfig {
	if c.MapSelectivity <= 0 {
		c.MapSelectivity = 1.0
	}
	if c.ReduceSelectivity <= 0 {
		c.ReduceSelectivity = 0.5
	}
	if c.MapCostPerMB <= 0 {
		c.MapCostPerMB = 250 * sim.Millisecond
	}
	if c.SortCostPerMB <= 0 {
		c.SortCostPerMB = 30 * sim.Millisecond
	}
	if c.ReduceCostPerMB <= 0 {
		c.ReduceCostPerMB = 150 * sim.Millisecond
	}
	return c
}

// Config holds JobTracker parameters.
type Config struct {
	// HeartbeatInterval is how often trackers report (drives assignment).
	HeartbeatInterval sim.Time
	// TrackerTimeout declares a silent tracker dead. HOG: 30 s (§III.B).
	TrackerTimeout sim.Time
	// CheckInterval is the dead-tracker scan period.
	CheckInterval sim.Time
	// SlowstartFraction of a job's maps must finish before its reduces
	// launch (Hadoop's mapred.reduce.slowstart.completed.maps).
	SlowstartFraction float64
	// ParallelCopies is the reduce-side shuffle fetch parallelism.
	ParallelCopies int
	// Speculative enables speculative execution of straggler tasks.
	Speculative bool
	// SpeculativeSlowdown is the lateness factor: a task is a straggler
	// when its elapsed time exceeds this multiple of the average completed
	// duration (the paper: "slower tasks (1/3 slower than average)").
	SpeculativeSlowdown float64
	// SpeculativeMinRuntime guards tiny tasks from speculation.
	SpeculativeMinRuntime sim.Time
	// MaxTaskCopies caps concurrent attempts per task: stock Hadoop 2; the
	// paper's future work raises it ("make all tasks have configurable
	// number of copies ... and take the fastest as the result").
	MaxTaskCopies int
	// EagerRedundancy launches up to MaxTaskCopies immediately when slots
	// are idle instead of waiting for the straggler criterion — the
	// future-work redundant-execution mode.
	EagerRedundancy bool
	// MaxTaskAttempts is the failure budget per task before the job fails.
	MaxTaskAttempts int
	// TaskStartupOverhead models JVM/task launch plus the WAN RPC overhead
	// the paper notes ("it is expected that the startup ... will be
	// increased").
	TaskStartupOverhead sim.Time
	// ConnectTimeout is what a client pays to discover that a peer the
	// masters still believe alive is in fact gone (TCP/IPC timeout). This
	// is the cost the paper's 30-second dead timeouts avoid: with the
	// traditional 15-minute timeout, clients keep tripping over corpses.
	ConnectTimeout sim.Time
	// LocalityWait enables delay scheduling (Zaharia et al., the paper's
	// workload source [3]): a job at the head of the FIFO queue declines
	// non-local map assignments for up to this long, letting later
	// heartbeats offer a local slot. Zero keeps plain FIFO, which is what
	// HOG runs ("we follow Apache Hadoop's FIFO job scheduling policy").
	LocalityWait sim.Time
	// ScanScheduler selects the retained linear-scan assignment path —
	// every task of every job rescanned per free slot per heartbeat,
	// O(jobs x tasks x trackers) — instead of the default incrementally
	// indexed scheduler. The two paths are bit-identical (the randomized
	// equivalence tests assert identical assignment order and completion
	// times); the scan path exists as the equivalence baseline, mirroring
	// netmodel's Config.GlobalRebalance.
	ScanScheduler bool
	// SchedulerPolicy names the job-ordering policy (policy.go registry);
	// empty selects "fifo", the paper's choice. Non-default policies
	// require the indexed scheduler (core/validate.go rejects the
	// combination with ScanScheduler).
	SchedulerPolicy string
	// SpeculationPolicy names the straggler criterion; empty selects
	// "threshold", the paper's slowdown rule.
	SpeculationPolicy string
	// Pools configures fair-share pools by name for the "fair" scheduler
	// policy. Pools absent from the map get weight 1 and no cap; the map
	// may be nil.
	Pools map[string]PoolConfig
}

// IsZero reports whether the config is entirely unset — the zero-value probe
// builders use before substituting DefaultConfig. Reflection because the
// Pools map makes Config non-comparable with ==.
func (c Config) IsZero() bool { return reflect.DeepEqual(c, Config{}) }

// PoolConfig parameterises one fair-share pool.
type PoolConfig struct {
	// Weight is the pool's share (default 1): slots go to the pool with the
	// lowest running-tasks-per-weight first.
	Weight float64
	// MaxRunning caps the pool's concurrently running tasks; 0 is uncapped.
	MaxRunning int
}

// DefaultConfig returns stock-Hadoop-like values with HOG's 30 s timeout left
// to callers (see HOGConfig in internal/core).
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval:     3 * sim.Second,
		TrackerTimeout:        900 * sim.Second,
		CheckInterval:         5 * sim.Second,
		SlowstartFraction:     0.05,
		ParallelCopies:        5,
		Speculative:           true,
		SpeculativeSlowdown:   1.33,
		SpeculativeMinRuntime: 45 * sim.Second,
		MaxTaskCopies:         2,
		MaxTaskAttempts:       4,
		TaskStartupOverhead:   1500 * sim.Millisecond,
		ConnectTimeout:        30 * sim.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = d.HeartbeatInterval
	}
	if c.TrackerTimeout <= 0 {
		c.TrackerTimeout = d.TrackerTimeout
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = d.CheckInterval
	}
	if c.SlowstartFraction <= 0 {
		c.SlowstartFraction = d.SlowstartFraction
	}
	if c.ParallelCopies <= 0 {
		c.ParallelCopies = d.ParallelCopies
	}
	if c.SpeculativeSlowdown <= 0 {
		c.SpeculativeSlowdown = d.SpeculativeSlowdown
	}
	if c.SpeculativeMinRuntime <= 0 {
		c.SpeculativeMinRuntime = d.SpeculativeMinRuntime
	}
	if c.MaxTaskCopies <= 0 {
		c.MaxTaskCopies = d.MaxTaskCopies
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = d.MaxTaskAttempts
	}
	if c.TaskStartupOverhead <= 0 {
		c.TaskStartupOverhead = d.TaskStartupOverhead
	}
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = d.ConnectTimeout
	}
	return c
}

// LocalityLevel classifies where a map ran relative to its input.
type LocalityLevel int

// Locality levels, best first.
const (
	NodeLocal LocalityLevel = iota
	SiteLocal
	Remote
)

// String returns the level name.
func (l LocalityLevel) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case SiteLocal:
		return "site-local"
	case Remote:
		return "remote"
	}
	return "unknown"
}

// Counters aggregates job execution statistics.
type Counters struct {
	MapAttemptsStarted    int
	MapAttemptsFailed     int
	ReduceAttemptsStarted int
	ReduceAttemptsFailed  int
	SpeculativeMaps       int
	SpeculativeReduces    int
	MapsReExecuted        int // completed maps re-run after output loss
	FetchFailures         int
	Locality              [3]int // indexed by LocalityLevel
}

// Job is a submitted MapReduce job.
type Job struct {
	ID     JobID
	Config JobConfig
	State  JobState

	SubmitTime sim.Time
	StartTime  sim.Time // first task launched
	FinishTime sim.Time

	maps    []*mapTask
	reduces []*reduceTask

	completedMaps    int
	completedReduces int
	counters         Counters
	failReason       string

	// outputReservations holds (node, bytes) of completed map outputs,
	// released when the job finishes.
	outputReservations []reservation

	// blacklist counts task failures per tracker. Trackers reaching 3
	// failures are excluded from this job (Hadoop's per-job tracker
	// blacklisting, which is what stops a zombie node from absorbing a
	// whole job's attempt budget) — but, as in Hadoop, a job may blacklist
	// at most a quarter of the cluster so a systemic failure still fails
	// the job instead of starving it.
	blacklist      map[netmodel.NodeID]int
	blacklistedSet map[netmodel.NodeID]bool

	// pool is the job's fair-share pool, cached at submit (JobConfig.Pool
	// or the workload bin).
	pool string

	// skipSince tracks how long the job has been declining non-local map
	// slots under delay scheduling; -1 when not waiting.
	skipSince sim.Time

	// idx is the incremental scheduler index (nil under Config.ScanScheduler).
	idx *jobIndex

	// Completed-duration aggregates for the straggler criterion, maintained
	// on task completion/re-execution so isStraggler does not re-sum every
	// completed task on each speculation probe.
	doneMapDur    sim.Time
	doneMapN      int
	doneReduceDur sim.Time
	doneReduceN   int

	// specMapMin/specReduceMin cache the minimum oldestRunningStart over
	// the job's running tasks of each kind (indexed path only): if even the
	// job's oldest running attempt is not a straggler, no task is, and the
	// per-slot speculation probe skips its whole running-task walk. The
	// cache is invalidated (specMinInvalid) by noteMapTask/noteReduceTask,
	// which every attempt or ghost mutation already funnels through, and
	// recomputed lazily; -1 means no running attempts.
	specMapMin    sim.Time
	specReduceMin sim.Time
}

// specMinInvalid marks a stale specMapMin/specReduceMin cache.
const specMinInvalid = sim.Time(-2)

// CompletedWork returns the summed durations of the job's completed map and
// reduce executions — the task-seconds of useful work, used by the harness's
// slot-utilisation metric. Re-executed maps (lost to node death after
// completing) are not counted twice: their first execution is subtracted
// when invalidated.
func (j *Job) CompletedWork() sim.Time { return j.doneMapDur + j.doneReduceDur }

// blacklisted reports whether the job refuses assignments on the node. The
// empty-set guard keeps the common case — no blacklist at all — free of a
// map probe, which matters at one call per job per free slot per heartbeat.
func (j *Job) blacklisted(n netmodel.NodeID) bool {
	return len(j.blacklistedSet) > 0 && j.blacklistedSet[n]
}

type reservation struct {
	node  netmodel.NodeID
	bytes float64
}

// ResponseTime returns finish minus submit for finished jobs.
func (j *Job) ResponseTime() sim.Time { return j.FinishTime - j.SubmitTime }

// Counters returns a copy of the job's counters.
func (j *Job) Counters() Counters { return j.counters }

// NumMaps returns the number of map tasks.
func (j *Job) NumMaps() int { return len(j.maps) }

// NumReduces returns the number of reduce tasks.
func (j *Job) NumReduces() int { return len(j.reduces) }

// CompletedMaps returns the number of finished map tasks.
func (j *Job) CompletedMaps() int { return j.completedMaps }

// CompletedReduces returns the number of finished reduce tasks.
func (j *Job) CompletedReduces() int { return j.completedReduces }

// FailReason returns why the job failed, if it did.
func (j *Job) FailReason() string { return j.failReason }

func (j *Job) String() string {
	return fmt.Sprintf("job %d %q (%dm/%dr) %s", j.ID, j.Config.Name, len(j.maps), len(j.reduces), j.State)
}
