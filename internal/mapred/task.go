package mapred

import (
	"fmt"

	"hog/internal/event"
	"hog/internal/hdfs"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// ghost is the JobTracker's stale belief that an attempt is still running on
// a node that silently died. Hadoop keeps such tasks in RUNNING state until
// the tracker expires (15 minutes traditionally, 30 seconds in HOG); only
// speculation can rescue them earlier. Ghosts occupy the task's copy budget
// and its scheduler slot-view exactly like live attempts.
type ghost struct {
	node    netmodel.NodeID
	started sim.Time
}

// mapTask is one map task: processes one input block.
type mapTask struct {
	job        *Job
	idx        int
	block      hdfs.BlockID
	inputBytes float64

	attempts []*attempt
	ghosts   []ghost
	failures int
	failedOn map[netmodel.NodeID]bool
	done     bool
	duration sim.Time

	// outputNode hosts the winning attempt's intermediate output.
	outputNode  netmodel.NodeID
	outputBytes float64

	// idxClass is the task's current scheduler-index classification.
	idxClass taskClass
}

// reduceTask is one reduce task: fetches a partition from every map, sorts,
// reduces, and writes replicated output to HDFS.
type reduceTask struct {
	job      *Job
	idx      int
	attempts []*attempt
	ghosts   []ghost
	failures int
	failedOn map[netmodel.NodeID]bool
	done     bool
	duration sim.Time

	// idxClass is the task's current scheduler-index classification.
	idxClass taskClass
}

func runningCount(atts []*attempt) int {
	n := 0
	for _, a := range atts {
		if a.live() {
			n++
		}
	}
	return n
}

func runningOn(atts []*attempt, node netmodel.NodeID) bool {
	for _, a := range atts {
		if a.live() && a.node == node {
			return true
		}
	}
	return false
}

func oldestStart(atts []*attempt) sim.Time {
	var oldest sim.Time = -1
	for _, a := range atts {
		if a.live() && (oldest < 0 || a.started < oldest) {
			oldest = a.started
		}
	}
	return oldest
}

func cancelAll(atts []*attempt, reason string) {
	for _, a := range atts {
		if a.live() {
			a.cancel(reason)
		}
	}
}

func ghostOn(gs []ghost, n netmodel.NodeID) bool {
	for _, g := range gs {
		if g.node == n {
			return true
		}
	}
	return false
}

func oldestWithGhosts(atts []*attempt, gs []ghost) sim.Time {
	oldest := oldestStart(atts)
	for _, g := range gs {
		if oldest < 0 || g.started < oldest {
			oldest = g.started
		}
	}
	return oldest
}

func dropGhosts(gs []ghost, n netmodel.NodeID) []ghost {
	out := gs[:0]
	for _, g := range gs {
		if g.node != n {
			out = append(out, g)
		}
	}
	return out
}

func (m *mapTask) running() int { return runningCount(m.attempts) + len(m.ghosts) }
func (m *mapTask) runningOn(n netmodel.NodeID) bool {
	return runningOn(m.attempts, n) || ghostOn(m.ghosts, n)
}
func (m *mapTask) oldestRunningStart() sim.Time { return oldestWithGhosts(m.attempts, m.ghosts) }
func (m *mapTask) cancelRunning(reason string)  { cancelAll(m.attempts, reason) }

func (r *reduceTask) running() int { return runningCount(r.attempts) + len(r.ghosts) }
func (r *reduceTask) runningOn(n netmodel.NodeID) bool {
	return runningOn(r.attempts, n) || ghostOn(r.ghosts, n)
}
func (r *reduceTask) oldestRunningStart() sim.Time { return oldestWithGhosts(r.attempts, r.ghosts) }
func (r *reduceTask) cancelRunning(reason string)  { cancelAll(r.attempts, reason) }

// attempt is one execution attempt of a map or reduce task. Exactly one of
// mt/rt is set. All asynchronous continuations re-check state so a canceled
// attempt never advances.
type attempt struct {
	seq     int64
	jt      *JobTracker
	job     *Job
	mt      *mapTask
	rt      *reduceTask
	tracker *TaskTracker
	node    netmodel.NodeID
	started sim.Time
	spec    bool

	flow       *netmodel.Flow
	fetchFlows []*netmodel.Flow
	timer      *sim.Timer
	reserved   []reservation
	finished   bool // done, failed, or canceled

	// map state
	tried map[netmodel.NodeID]bool // input replicas that timed out

	// reduce state
	fetchQueued  []int        // map indices awaiting fetch
	fetchQueuedS map[int]bool // membership for fetchQueued + inFlight
	fetchDone    map[int]bool
	inFlight     int
	shuffleBytes float64
	computing    bool
	outFile      string
	wroteOutput  bool
}

func (a *attempt) live() bool { return !a.finished }

func (a *attempt) reserve(bytes float64) bool {
	if !a.jt.disk.Reserve(a.node, bytes) {
		if a.jt.OnDiskOverflow != nil {
			a.jt.OnDiskOverflow(a.node)
		}
		return false
	}
	a.reserved = append(a.reserved, reservation{a.node, bytes})
	return true
}

func (a *attempt) releaseAll() {
	for _, r := range a.reserved {
		a.jt.disk.Release(r.node, r.bytes)
	}
	a.reserved = nil
}

// detach removes the attempt from its tracker and stops its activity.
func (a *attempt) detach() {
	a.finished = true
	if a.timer != nil {
		a.timer.Cancel()
	}
	if a.flow != nil {
		a.flow.Cancel()
	}
	for _, f := range a.fetchFlows {
		f.Cancel()
	}
	a.fetchFlows = nil
	if a.tracker != nil {
		delete(a.tracker.attempts, a)
		if a.mt != nil {
			a.tracker.runningMaps--
		} else {
			a.tracker.runningReduces--
		}
		a.jt.poolRunning[a.job.pool]--
		if sl := a.jt.siteLoads[a.tracker.Site]; sl != nil {
			sl.running--
		}
	}
}

// cancel kills the attempt without charging a task failure (speculative
// loser, job teardown).
func (a *attempt) cancel(string) {
	if a.finished {
		return
	}
	a.detach()
	a.releaseAll()
	a.dropOutputFile()
	a.noteTask()
}

// noteTask refreshes the attempt's task in the scheduler index.
func (a *attempt) noteTask() {
	if a.mt != nil {
		a.jt.noteMapTask(a.mt)
	} else {
		a.jt.noteReduceTask(a.rt)
	}
}

// fail kills the attempt; when charge is true it counts toward the task's
// failure budget and the tracker's per-job blacklist.
func (a *attempt) fail(reason string, charge bool) {
	if a.finished {
		return
	}
	a.detach()
	a.releaseAll()
	a.dropOutputFile()
	if a.mt != nil {
		a.job.counters.MapAttemptsFailed++
	} else {
		a.job.counters.ReduceAttemptsFailed++
	}
	if charge {
		// As in Hadoop, a failed task is never rescheduled on the tracker
		// it failed on — this is what keeps one zombie from absorbing a
		// task's whole failure budget (§IV.D.1).
		var failures *int
		if a.mt != nil {
			failures = &a.mt.failures
			if a.mt.failedOn == nil {
				a.mt.failedOn = make(map[netmodel.NodeID]bool)
			}
			a.mt.failedOn[a.node] = true
		} else {
			failures = &a.rt.failures
			if a.rt.failedOn == nil {
				a.rt.failedOn = make(map[netmodel.NodeID]bool)
			}
			a.rt.failedOn[a.node] = true
		}
		*failures++
		if a.job.blacklist == nil {
			a.job.blacklist = make(map[netmodel.NodeID]int)
			a.job.blacklistedSet = make(map[netmodel.NodeID]bool)
		}
		a.job.blacklist[a.node]++
		if a.job.blacklist[a.node] == 3 {
			cap := len(a.jt.AliveTrackers()) / 4
			if len(a.job.blacklistedSet) < cap {
				a.job.blacklistedSet[a.node] = true
			}
		}
		if *failures >= a.jt.cfg.MaxTaskAttempts {
			a.jt.finishJob(a.job, JobFailed, fmt.Sprintf("task exceeded %d attempts: %s", a.jt.cfg.MaxTaskAttempts, reason))
		}
	}
	a.noteTask()
}

// dropOutputFile deletes a reduce attempt's (possibly partial) HDFS output.
func (a *attempt) dropOutputFile() {
	if a.rt != nil && a.outFile != "" && a.wroteOutput && !a.rt.done {
		a.jt.nn.DeleteFile(a.outFile)
	}
}

// launchMap starts a map attempt on tracker t.
func (jt *JobTracker) launchMap(j *Job, m *mapTask, t *TaskTracker, lvl LocalityLevel, spec bool) {
	jt.noteJobStarted(j)
	a := &attempt{
		seq: jt.attemptSeq, jt: jt, job: j, mt: m,
		tracker: t, node: t.Node, started: jt.eng.Now(), spec: spec,
	}
	jt.attemptSeq++
	m.attempts = append(m.attempts, a)
	t.attempts[a] = struct{}{}
	t.runningMaps++
	jt.noteLaunched(j, t)
	jt.noteMapTask(m)
	j.counters.MapAttemptsStarted++
	j.counters.Locality[lvl]++
	if spec {
		j.counters.SpeculativeMaps++
	}
	if jt.Events.Active() {
		ev := event.At(event.TaskLaunched, jt.eng.Now())
		ev.Job = int(j.ID)
		ev.Task = m.idx
		ev.Kind = event.MapTask
		ev.Locality = int8(lvl)
		ev.Node = t.Node
		jt.Events.Emit(ev)
	}
	a.timer = jt.eng.After(jt.cfg.TaskStartupOverhead, func() { a.mapRead() })
}

// mapRead pulls the input block (locally or over the network).
func (a *attempt) mapRead() {
	if a.finished {
		return
	}
	if a.jt.diskBroken(a.node) {
		// Zombie tracker: the working directory is gone, so the task fails
		// as soon as it tries to localise (§IV.D.1).
		a.jt.eng.After(2*sim.Second, func() { a.fail("scratch dir unwritable", true) })
		return
	}
	m := a.mt
	src, local, ok := a.pickInputSource(m)
	if !ok {
		if a.jt.nn.Degraded() {
			// The namenode is crashed or still rebuilding its block map, so
			// "no replicas" means "unknown", not "lost": the DFS client backs
			// off and retries rather than charging the task. Safe mode is
			// bounded (threshold or timeout), so this cannot loop forever —
			// once service resumes, a genuinely lost block fails normally.
			a.timer = a.jt.eng.After(a.jt.cfg.ConnectTimeout, func() { a.mapRead() })
			return
		}
		a.fail("input block unavailable", true)
		return
	}
	if !local && (!a.jt.servable(src) || !a.jt.net.Reachable(src, a.node)) {
		// The namenode still lists this replica, but the host is gone — or a
		// partition severs it from this reader; the DFS client discovers that
		// only after a connection timeout, then moves on to the next replica.
		// With HOG's 30-second dead timeout such corpses disappear from the
		// namenode quickly; with the traditional 15 minutes, clients keep
		// paying this penalty.
		if a.tried == nil {
			a.tried = make(map[netmodel.NodeID]bool)
		}
		a.tried[src] = true
		a.timer = a.jt.eng.After(a.jt.cfg.ConnectTimeout, func() { a.mapRead() })
		return
	}
	cont := func() {
		a.flow = nil
		if !a.jt.nn.VerifyRead(m.block, src) {
			// Checksum mismatch: the corrupt replica is already reported and
			// invalidated; fail over to the next copy after a client beat.
			a.timer = a.jt.eng.After(a.jt.cfg.ConnectTimeout, func() { a.mapRead() })
			return
		}
		a.mapCompute()
	}
	if local {
		a.flow = a.jt.net.StartDiskIO(a.node, m.inputBytes, cont)
	} else {
		a.flow = a.jt.net.StartFlow(src, a.node, m.inputBytes, cont)
	}
}

// pickInputSource chooses a replica to read the map input from, preferring
// the attempt's own node, then its site, then anywhere. The candidate set is
// what the namenode believes alive — it may include dead hosts the client
// will time out against (mapRead pays that cost) — minus replicas this
// attempt already tried.
func (a *attempt) pickInputSource(m *mapTask) (src netmodel.NodeID, local, ok bool) {
	b := a.jt.nn.Block(m.block)
	if b == nil {
		return 0, false, false
	}
	var sameSite, other []netmodel.NodeID
	mySite := ""
	if t := a.tracker; t != nil {
		mySite = t.Site
	}
	for _, r := range b.Replicas() {
		if r == a.node {
			return a.node, true, true
		}
		d := a.jt.nn.Datanode(r)
		if d == nil || !d.Alive || a.tried[r] {
			continue
		}
		if d.Site == mySite {
			sameSite = append(sameSite, r)
		} else {
			other = append(other, r)
		}
	}
	pool := sameSite
	if len(pool) == 0 {
		pool = other
	}
	if len(pool) == 0 {
		return 0, false, false
	}
	sortNodeIDs(pool)
	return pool[a.jt.eng.Rand().Intn(len(pool))], false, true
}

func sortNodeIDs(ids []netmodel.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func (a *attempt) speed() float64 {
	if a.tracker != nil && a.tracker.Speed > 0 {
		return a.tracker.Speed
	}
	return 1.0
}

func (a *attempt) mapCompute() {
	if a.finished {
		return
	}
	cost := sim.Time(a.mt.inputBytes / 1e6 * float64(a.job.Config.MapCostPerMB) / a.speed())
	a.timer = a.jt.eng.After(cost, func() { a.mapWrite() })
}

func (a *attempt) mapWrite() {
	if a.finished {
		return
	}
	out := a.mt.inputBytes * a.job.Config.MapSelectivity
	if !a.reserve(out) {
		a.fail("out of disk for map output", true)
		return
	}
	a.flow = a.jt.net.StartDiskIO(a.node, out, func() {
		a.flow = nil
		a.mapDone(out)
	})
}

func (a *attempt) mapDone(out float64) {
	if a.finished {
		return
	}
	m := a.mt
	a.detach()
	if m.done {
		// A sibling won a photo-finish; drop our duplicate output.
		a.releaseAll()
		a.noteTask()
		return
	}
	m.done = true
	m.duration = a.jt.eng.Now() - a.started
	m.outputNode = a.node
	m.outputBytes = out
	a.job.doneMapDur += m.duration
	a.job.doneMapN++
	if a.jt.Events.Active() {
		ev := event.At(event.TaskFinished, a.jt.eng.Now())
		ev.Job = int(a.job.ID)
		ev.Task = m.idx
		ev.Kind = event.MapTask
		ev.Node = a.node
		a.jt.Events.Emit(ev)
	}
	a.noteTask()
	// Output space now belongs to the job until it completes (§IV.D.2:
	// "Hadoop will not delete map intermediate data until the entire job is
	// done").
	a.job.outputReservations = append(a.job.outputReservations, a.reserved...)
	a.reserved = nil
	a.job.completedMaps++
	cancelAll(m.attempts, "sibling completed")
	a.jt.mapCompleted(a.job, m)
}

// mapCompleted notifies running reduce attempts that a new partition is
// available and finishes map-only jobs.
func (jt *JobTracker) mapCompleted(j *Job, m *mapTask) {
	for _, r := range j.reduces {
		for _, ra := range r.attempts {
			if ra.live() {
				ra.offerFetch(m.idx)
			}
		}
	}
	if j.completedMaps == len(j.maps) &&
		(len(j.reduces) == 0 || j.completedReduces == len(j.reduces)) {
		// Map-only job done, or a re-executed map finished after every
		// reduce had already completed.
		jt.finishJob(j, JobSucceeded, "")
	}
}

// launchReduce starts a reduce attempt on tracker t.
func (jt *JobTracker) launchReduce(j *Job, r *reduceTask, t *TaskTracker, spec bool) {
	jt.noteJobStarted(j)
	a := &attempt{
		seq: jt.attemptSeq, jt: jt, job: j, rt: r,
		tracker: t, node: t.Node, started: jt.eng.Now(), spec: spec,
		fetchQueuedS: make(map[int]bool),
		fetchDone:    make(map[int]bool),
	}
	jt.attemptSeq++
	r.attempts = append(r.attempts, a)
	t.attempts[a] = struct{}{}
	t.runningReduces++
	jt.noteLaunched(j, t)
	jt.noteReduceTask(r)
	j.counters.ReduceAttemptsStarted++
	if spec {
		j.counters.SpeculativeReduces++
	}
	if jt.Events.Active() {
		ev := event.At(event.TaskLaunched, jt.eng.Now())
		ev.Job = int(j.ID)
		ev.Task = r.idx
		ev.Kind = event.ReduceTask
		ev.Node = t.Node
		jt.Events.Emit(ev)
	}
	a.timer = jt.eng.After(jt.cfg.TaskStartupOverhead, func() { a.reduceStart() })
}

func (a *attempt) reduceStart() {
	if a.finished {
		return
	}
	if a.jt.diskBroken(a.node) {
		a.jt.eng.After(2*sim.Second, func() { a.fail("scratch dir unwritable", true) })
		return
	}
	// Seed the fetch queue with already-completed maps.
	for _, m := range a.job.maps {
		if m.done {
			a.offerFetch(m.idx)
		}
	}
	a.maybeFinishShuffle()
}

// offerFetch enqueues a map partition for shuffling if not already handled.
func (a *attempt) offerFetch(mapIdx int) {
	if a.finished || a.computing {
		return
	}
	if a.fetchDone[mapIdx] || a.fetchQueuedS[mapIdx] {
		return
	}
	a.fetchQueuedS[mapIdx] = true
	a.fetchQueued = append(a.fetchQueued, mapIdx)
	a.pumpFetches()
}

// pumpFetches starts fetches up to the configured parallelism (Hadoop's
// mapred.reduce.parallel.copies). The wave is batched so the local-disk
// fetches it launches trigger one rate rebalance, not one per flow.
func (a *attempt) pumpFetches() {
	a.jt.net.Batch(a.pumpFetchWave)
}

func (a *attempt) pumpFetchWave() {
	for a.inFlight < a.jt.cfg.ParallelCopies && len(a.fetchQueued) > 0 {
		mapIdx := a.fetchQueued[0]
		a.fetchQueued = a.fetchQueued[1:]
		m := a.job.maps[mapIdx]
		if !m.done {
			// Output vanished between enqueue and fetch (re-execution
			// pending); it will be re-offered when the map completes again.
			delete(a.fetchQueuedS, mapIdx)
			continue
		}
		src := m.outputNode
		if (!a.jt.servable(src) || !a.jt.net.Reachable(src, a.node)) && src != a.node {
			// Fetch failure: the reducer discovers the output host is gone —
			// or partitioned away — only after a connection timeout, then
			// notifies the JobTracker so the map re-executes (§IV.D.1's
			// zombie trackers surface exactly here). The fetcher slot stays
			// busy for the timeout, as a real copier thread would.
			a.inFlight++
			a.jt.eng.After(a.jt.cfg.ConnectTimeout, func() {
				if a.finished {
					return
				}
				a.inFlight--
				delete(a.fetchQueuedS, mapIdx)
				a.jt.reportFetchFailure(a.job, m, a.node)
				a.pumpFetches()
			})
			continue
		}
		bytes := m.outputBytes / float64(len(a.job.reduces))
		if !a.reserve(bytes) {
			a.fail("out of disk for shuffle", true)
			return
		}
		a.inFlight++
		done := func() {
			if a.finished {
				return
			}
			a.inFlight--
			delete(a.fetchQueuedS, mapIdx)
			a.fetchDone[mapIdx] = true
			a.shuffleBytes += bytes
			a.pumpFetches()
			a.maybeFinishShuffle()
		}
		if src == a.node {
			a.fetchFlows = append(a.fetchFlows, a.jt.net.StartDiskIO(a.node, bytes, done))
		} else {
			a.fetchFlows = append(a.fetchFlows, a.jt.net.StartFlow(src, a.node, bytes, done))
		}
	}
}

// reportFetchFailure re-executes a completed map whose output host is gone
// or unreachable from the reducer that tried to fetch it.
func (jt *JobTracker) reportFetchFailure(j *Job, m *mapTask, from netmodel.NodeID) {
	j.counters.FetchFailures++
	if m.done && (!jt.servable(m.outputNode) || !jt.net.Reachable(m.outputNode, from)) {
		jt.reExecuteMap(j, m)
	}
}

func (a *attempt) maybeFinishShuffle() {
	if a.finished || a.computing {
		return
	}
	if len(a.fetchDone) < len(a.job.maps) || a.inFlight > 0 {
		return
	}
	a.computing = true
	sort := sim.Time(a.shuffleBytes / 1e6 * float64(a.job.Config.SortCostPerMB) / a.speed())
	a.timer = a.jt.eng.After(sort, func() { a.reduceCompute() })
}

func (a *attempt) reduceCompute() {
	if a.finished {
		return
	}
	cost := sim.Time(a.shuffleBytes / 1e6 * float64(a.job.Config.ReduceCostPerMB) / a.speed())
	a.timer = a.jt.eng.After(cost, func() { a.reduceWrite() })
}

func (a *attempt) reduceWrite() {
	if a.finished {
		return
	}
	if a.jt.nn.Degraded() {
		// Writes are refused while the namenode is crashed or in safe mode;
		// retrying from the attempt (rather than queueing inside HDFS) keeps
		// the namespace free of output files for attempts that get cancelled
		// while waiting.
		a.timer = a.jt.eng.After(a.jt.cfg.ConnectTimeout, func() { a.reduceWrite() })
		return
	}
	out := a.shuffleBytes * a.job.Config.ReduceSelectivity
	a.outFile = fmt.Sprintf("out/%s/part-%05d-a%d", a.job.Config.Name, a.rt.idx, a.seq)
	a.wroteOutput = true
	repl := a.job.Config.OutputReplication
	a.jt.nn.WriteFile(a.node, a.outFile, out, repl, func(int) {
		if a.finished {
			return
		}
		a.reduceDone()
	})
}

func (a *attempt) reduceDone() {
	r := a.rt
	a.detach()
	a.releaseAll() // shuffle scratch space freed once output is durable
	if r.done {
		a.jt.nn.DeleteFile(a.outFile)
		a.noteTask()
		return
	}
	r.done = true
	r.duration = a.jt.eng.Now() - a.started
	a.job.doneReduceDur += r.duration
	a.job.doneReduceN++
	if a.jt.Events.Active() {
		ev := event.At(event.TaskFinished, a.jt.eng.Now())
		ev.Job = int(a.job.ID)
		ev.Task = r.idx
		ev.Kind = event.ReduceTask
		ev.Node = a.node
		a.jt.Events.Emit(ev)
	}
	a.noteTask()
	a.job.completedReduces++
	// Kill the speculative losers; their partial output is deleted.
	cancelAll(r.attempts, "sibling completed")
	if a.job.completedReduces == len(a.job.reduces) && a.job.completedMaps == len(a.job.maps) {
		a.jt.finishJob(a.job, JobSucceeded, "")
	}
}

func (jt *JobTracker) noteJobStarted(j *Job) {
	if j.State == JobPending {
		j.State = JobRunning
		j.StartTime = jt.eng.Now()
	}
}
