package mapred

import (
	"sort"

	"hog/internal/event"
	"hog/internal/netmodel"
)

// This file models JobTracker failure and recovery (docs/FAULTS.md). A
// JobTracker crash loses exactly the state a real one holds only in RAM:
// which attempts run where. The job queue itself (submitted jobs, completed
// tasks, their output locations) is treated as recoverable — Hadoop's job
// recovery replays it from the job log on restart. Trackers notice the dead
// master when their heartbeats go unanswered, back off with jitter (driven
// by internal/core), and re-register once it returns; the restarted master
// re-queues orphaned running work and re-executes completed maps whose
// output did not survive.

// Crash drops the JobTracker's in-flight task state: every running attempt
// is cancelled without charging its task's failure budget (the tasks did
// nothing wrong), partial reduce output is discarded, and ghost beliefs
// about silently-dead nodes are forgotten wholesale — a restarted master
// has no memory of who was running what.
func (jt *JobTracker) Crash() {
	if jt.down {
		return
	}
	jt.down = true
	jt.Stop()
	for _, t := range jt.trackerOrder {
		if len(t.attempts) == 0 {
			continue
		}
		atts := make([]*attempt, 0, len(t.attempts))
		for a := range t.attempts {
			atts = append(atts, a)
		}
		sort.Slice(atts, func(i, j int) bool { return atts[i].seq < atts[j].seq })
		for _, a := range atts {
			a.cancel("master crashed")
		}
	}
	for _, j := range jt.jobs {
		if j.State != JobRunning && j.State != JobPending {
			continue
		}
		for _, m := range j.maps {
			if len(m.ghosts) > 0 {
				m.ghosts = nil
				jt.noteMapTask(m)
			}
		}
		for _, r := range j.reduces {
			if len(r.ghosts) > 0 {
				r.ghosts = nil
				jt.noteReduceTask(r)
			}
		}
	}
	if jt.Events.Active() {
		ev := event.At(event.MasterCrashed, jt.eng.Now())
		ev.Detail = "jobtracker"
		jt.Events.Emit(ev)
	}
}

// Restart brings a crashed JobTracker back: job state is reconstructed —
// completed maps whose output still lives on a servable node are kept,
// completed maps whose output vanished during the outage re-execute, and
// everything that was running is already back in pending (Crash re-queued
// it). Live trackers owe a re-registration; until then they are grace-
// stamped so the resumed dead scan does not charge them for the outage.
func (jt *JobTracker) Restart() {
	if !jt.down {
		return
	}
	jt.down = false
	now := jt.eng.Now()
	for _, t := range jt.trackerOrder {
		if t.Alive {
			t.awaitingReregister = true
			t.LastHeartbeat = now
		}
	}
	jt.Start()
	for _, j := range jt.jobs {
		if j.State != JobRunning && j.State != JobPending {
			continue
		}
		for _, m := range j.maps {
			if m.done && !jt.servable(m.outputNode) && jt.outputStillNeeded(j, m) {
				jt.reExecuteMap(j, m)
			}
		}
	}
	if jt.Events.Active() {
		ev := event.At(event.MasterRecovered, now)
		ev.Detail = "jobtracker"
		jt.Events.Emit(ev)
	}
}

// ReregisterTracker is a tracker's first successful contact with a restarted
// JobTracker; it counts as a heartbeat (and so triggers assignment).
func (jt *JobTracker) ReregisterTracker(t *TaskTracker) {
	if jt.down || t == nil || !t.Alive {
		return
	}
	if t.awaitingReregister {
		t.awaitingReregister = false
		if jt.Events.Active() {
			ev := event.At(event.TrackerReregistered, jt.eng.Now())
			ev.Node = t.Node
			ev.Site = t.Site
			jt.Events.Emit(ev)
		}
	}
	t.LastHeartbeat = jt.eng.Now()
	jt.assign(t)
}

// ReviveTracker brings back a tracker the JobTracker declared dead while its
// daemons kept running behind a network partition: the heal-side complement
// of markDead. Slots rejoin the site load, the tracker heartbeats again, and
// assignment resumes on it. markDead already failed its attempts and cleared
// its ghosts, so there is no task state to reconcile.
func (jt *JobTracker) ReviveTracker(node netmodel.NodeID) bool {
	t := jt.trackers[node]
	if t == nil || t.Alive {
		return false
	}
	t.Alive = true
	t.LastHeartbeat = jt.eng.Now()
	if sl := jt.siteLoads[t.Site]; sl != nil {
		sl.slots += t.MapSlots + t.ReduceSlots
	}
	if !jt.down {
		jt.assign(t)
	}
	return true
}

// DropGhostsOn resolves zombie beliefs about a node that turned out to be
// alive behind a partition that healed before the tracker timeout: the
// ghosted tasks return to pending and reschedule immediately instead of
// waiting out the timeout.
func (jt *JobTracker) DropGhostsOn(node netmodel.NodeID) {
	for _, j := range jt.jobs {
		if j.State != JobRunning && j.State != JobPending {
			continue
		}
		for _, m := range j.maps {
			if before := len(m.ghosts); before > 0 {
				m.ghosts = dropGhosts(m.ghosts, node)
				if len(m.ghosts) != before {
					jt.noteMapTask(m)
				}
			}
		}
		for _, r := range j.reduces {
			if before := len(r.ghosts); before > 0 {
				r.ghosts = dropGhosts(r.ghosts, node)
				if len(r.ghosts) != before {
					jt.noteReduceTask(r)
				}
			}
		}
	}
}

// Down reports whether the JobTracker is crashed.
func (jt *JobTracker) Down() bool { return jt.down }

// ForEachTracker visits every registered tracker in ascending node order —
// the deterministic iteration the audit sweep needs.
func (jt *JobTracker) ForEachTracker(fn func(*TaskTracker)) {
	for _, t := range jt.trackerOrder {
		fn(t)
	}
}

// MapStates partitions a job's map tasks into the audit's conservation
// classes: done, terminally failed (attempt budget exhausted), running (live
// attempts or ghosts), and pending (everything else).
func (jt *JobTracker) MapStates(j *Job) (pending, running, done, failed int) {
	for _, m := range j.maps {
		switch {
		case m.done:
			done++
		case m.failures >= jt.cfg.MaxTaskAttempts:
			failed++
		case m.running() > 0:
			running++
		default:
			pending++
		}
	}
	return
}

// ReduceStates is MapStates for the job's reduce tasks.
func (jt *JobTracker) ReduceStates(j *Job) (pending, running, done, failed int) {
	for _, r := range j.reduces {
		switch {
		case r.done:
			done++
		case r.failures >= jt.cfg.MaxTaskAttempts:
			failed++
		case r.running() > 0:
			running++
		default:
			pending++
		}
	}
	return
}
