package mapred

import (
	"fmt"
	"strings"
	"testing"

	"hog/internal/sim"
)

// TestDefaultPolicyEquivalence is the extraction contract for the mapred
// decision points: naming the default policies explicitly ("fifo",
// "threshold") must reproduce the empty-name run bit for bit — same
// attempts on the same nodes at the same instants — across churn profiles
// and seeds. Any divergence means the extraction moved behaviour instead of
// only moving code.
func TestDefaultPolicyEquivalence(t *testing.T) {
	explicit := func(c *Config) {
		c.SchedulerPolicy = SchedulerFIFO
		c.SpeculationPolicy = SpeculationThreshold
	}
	for _, profile := range []string{"calm", "eager", "kills", "zombies"} {
		for seed := int64(1); seed <= 3; seed++ {
			base := runSchedChurn(seed, false, profile)
			named := runSchedChurnWith(seed, false, profile, explicit)
			if len(base) != len(named) {
				t.Fatalf("profile %s seed %d: fingerprint lengths diverge: default %d, named %d",
					profile, seed, len(base), len(named))
			}
			for i := range base {
				if base[i] != named[i] {
					t.Fatalf("profile %s seed %d line %d:\ndefault: %s\nnamed:   %s",
						profile, seed, i, base[i], named[i])
				}
			}
		}
	}
}

// TestNonDefaultPoliciesDeterministic: the alternative policies must be
// exactly reproducible too — policy plug-in points cannot introduce map
// iteration or other nondeterminism.
func TestNonDefaultPoliciesDeterministic(t *testing.T) {
	alt := func(c *Config) {
		c.SchedulerPolicy = SchedulerFair
		c.SpeculationPolicy = SpeculationSiteLoad
	}
	a := runSchedChurnWith(42, false, "kills", alt)
	b := runSchedChurnWith(42, false, "kills", alt)
	if len(a) != len(b) {
		t.Fatalf("fingerprint lengths diverge across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("line %d diverges across identical runs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestFairSchedulerPoolCap: a capped pool must never exceed MaxRunning
// concurrent tasks while uncapped pools drain the cluster, and the capped
// jobs must still finish.
func TestFairSchedulerPoolCap(t *testing.T) {
	jtCfg := hogJTCfg()
	jtCfg.SchedulerPolicy = SchedulerFair
	jtCfg.Pools = map[string]PoolConfig{
		"capped": {Weight: 1, MaxRunning: 2},
	}
	c := newCluster(5, 4, hogNNCfg(), jtCfg) // 20 nodes
	for i := 0; i < 3; i++ {
		cfg := smallJob(c, fmt.Sprintf("cap%d", i), 6, 1)
		cfg.Pool = "capped"
		c.jt.Submit(cfg)
	}
	free := smallJob(c, "free", 8, 2)
	free.Pool = "open"
	c.jt.Submit(free)
	worst := 0
	c.eng.Every(sim.Second, func() {
		if n := c.jt.PoolRunning("capped"); n > worst {
			worst = n
		}
		if got, want := c.jt.PoolRunning("capped"), countPool(c.jt, "capped"); got != want {
			t.Fatalf("pool counter %d disagrees with recount %d at %v", got, want, c.eng.Now())
		}
	})
	c.runUntilDone(t, 4*sim.Hour)
	if worst > 2 {
		t.Fatalf("capped pool reached %d concurrent tasks, cap is 2", worst)
	}
	if worst == 0 {
		t.Fatal("capped pool never ran a task")
	}
}

// countPool recounts a pool's running tasks from tracker attempt sets.
func countPool(jt *JobTracker, pool string) int { return jt.RunningByPool()[pool] }

// TestFairSchedulerSharesAcrossPools: with one pool saturated first, the
// fair policy must start the second pool's job while the first pool still
// has running work — the defining difference from FIFO's head-of-line
// ordering.
func TestFairSchedulerSharesAcrossPools(t *testing.T) {
	jtCfg := hogJTCfg()
	jtCfg.SchedulerPolicy = SchedulerFair
	c := newCluster(9, 2, hogNNCfg(), jtCfg) // 10 nodes: contention
	for i := 0; i < 4; i++ {
		cfg := smallJob(c, fmt.Sprintf("bulk%d", i), 10, 1)
		cfg.Pool = "bulk"
		c.jt.Submit(cfg)
	}
	late := smallJob(c, "late", 2, 0)
	late.Pool = "light"
	var lateJob *Job
	c.eng.Schedule(10*sim.Second, func() { lateJob = c.jt.Submit(late) })
	c.runUntilDone(t, 4*sim.Hour)
	if lateJob == nil || lateJob.State != JobSucceeded {
		t.Fatal("light-pool job did not finish")
	}
	// Under fair sharing the light pool's lone job must not wait for the
	// bulk pool to drain: at least one bulk job finishes after it.
	bulkAfter := 0
	for _, j := range c.jt.Jobs() {
		if strings.HasPrefix(j.Config.Name, "bulk") && j.FinishTime > lateJob.FinishTime {
			bulkAfter++
		}
	}
	if bulkAfter == 0 {
		t.Fatal("light-pool job finished last; fair policy did not share slots across pools")
	}
}

// TestPolicyRegistry pins the registry surface: constructors resolve the
// empty name to the default, reject unknown names with the valid choices in
// the message, and the name listings are sorted and complete.
func TestPolicyRegistry(t *testing.T) {
	if p, err := NewSchedulerPolicy(""); err != nil || p.Name() != SchedulerFIFO {
		t.Fatalf("empty scheduler name: got %v, %v", p, err)
	}
	if p, err := NewSpeculationPolicy(""); err != nil || p.Name() != SpeculationThreshold {
		t.Fatalf("empty speculation name: got %v, %v", p, err)
	}
	if _, err := NewSchedulerPolicy("nope"); err == nil || !strings.Contains(err.Error(), SchedulerFair) {
		t.Fatalf("unknown scheduler name error %v should list valid names", err)
	}
	if _, err := NewSpeculationPolicy("nope"); err == nil || !strings.Contains(err.Error(), SpeculationSiteLoad) {
		t.Fatalf("unknown speculation name error %v should list valid names", err)
	}
	wantSched := []string{SchedulerFair, SchedulerFIFO}
	if got := SchedulerPolicyNames(); !equalStrings(got, wantSched) {
		t.Fatalf("scheduler names %v, want %v", got, wantSched)
	}
	wantSpec := []string{SpeculationSiteLoad, SpeculationThreshold}
	if got := SpeculationPolicyNames(); !equalStrings(got, wantSpec) {
		t.Fatalf("speculation names %v, want %v", got, wantSpec)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSiteLoadSpeculationTightensUnderLoad: the site-load criterion must be
// stricter (or equal) on a fully busy site than the plain threshold rule,
// and looser on an idle one — the defining property of the policy.
func TestSiteLoadSpeculationTightensUnderLoad(t *testing.T) {
	c := newCluster(3, 2, hogNNCfg(), hogJTCfg())
	j := c.jt.Submit(smallJob(c, "load", 6, 1))
	c.eng.RunWhile(func() bool { return j.completedMaps < 3 && c.eng.Now() < time4h })
	pol, err := NewSpeculationPolicy(SpeculationSiteLoad)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewSpeculationPolicy(SpeculationThreshold)
	if err != nil {
		t.Fatal(err)
	}
	tr := c.jt.Tracker(c.nodes[0])
	now := c.eng.Now()
	// A start time old enough that the plain threshold flags it: site-load
	// on a busy site must agree or be stricter, never looser.
	for _, started := range []sim.Time{now - 30*sim.Second, now - 2*sim.Minute, now - 10*sim.Minute} {
		if pol.IsStraggler(c.jt, j, KindMap, tr, started) && !base.IsStraggler(c.jt, j, KindMap, tr, started) {
			util := c.jt.siteUtilization(tr.Site)
			if util >= 0.5 {
				t.Fatalf("site-load flagged a straggler threshold would not, on a site at utilization %.2f", util)
			}
		}
	}
}

const time4h = 4 * sim.Hour
