package mapred

import (
	"slices"
	"sort"

	"hog/internal/hdfs"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// This file implements the incrementally indexed task-assignment path. The
// retained linear scan (Config.ScanScheduler) rescans every task of every
// job per free slot per heartbeat — O(jobs x tasks x trackers) — which made
// thousand-node pools scheduler-bound. The index keeps, per job:
//
//   - ordered pending/running task sets (by task index),
//   - pending-map sets keyed by replica node and by replica site, derived
//     from namenode block placement and kept in sync through the
//     hdfs.Namenode.OnPlacementChange hook,
//
// plus a JobTracker-level active-job list (finished jobs drop out) and a
// block -> map-task reverse index for the placement hook. Queries walk the
// same task order the scan does, so assignment decisions are bit-identical;
// the randomized equivalence tests assert exactly that.

// taskClass is a task's scheduler-index classification.
type taskClass int8

const (
	// classNone: done, attempt budget exhausted, or the job has finished.
	classNone taskClass = iota
	// classPending: schedulable — no live attempt or ghost belief.
	classPending
	// classRunning: at least one live attempt or ghost (speculation pool).
	classRunning
)

// idxSet is an ordered set of task indices backed by a sorted slice.
// Membership operations are idempotent. Task counts per job are small
// enough (hundreds) that O(n) insertion beats tree overhead.
type idxSet struct{ v []int }

func (s *idxSet) insert(x int) {
	i := sort.SearchInts(s.v, x)
	if i < len(s.v) && s.v[i] == x {
		return
	}
	s.v = slices.Insert(s.v, i, x)
}

func (s *idxSet) remove(x int) {
	i := sort.SearchInts(s.v, x)
	if i >= len(s.v) || s.v[i] != x {
		return
	}
	s.v = slices.Delete(s.v, i, i+1)
}

// jobIndex is one job's scheduler index.
type jobIndex struct {
	pendingMaps    idxSet
	runningMaps    idxSet
	pendingReduces idxSet
	runningReduces idxSet

	// mapsByNode holds pending maps with an input replica on the node
	// (the scan's NodeLocal class); mapsBySite holds pending maps with a
	// live input replica anywhere in the site (NodeLocal or SiteLocal).
	mapsByNode map[netmodel.NodeID]*idxSet
	mapsBySite map[string]*idxSet
}

func (x *jobIndex) nodeSet(n netmodel.NodeID) *idxSet {
	s := x.mapsByNode[n]
	if s == nil {
		s = &idxSet{}
		x.mapsByNode[n] = s
	}
	return s
}

func (x *jobIndex) siteSet(site string) *idxSet {
	s := x.mapsBySite[site]
	if s == nil {
		s = &idxSet{}
		x.mapsBySite[site] = s
	}
	return s
}

func (jt *JobTracker) indexed() bool { return !jt.cfg.ScanScheduler }

// registerJobIndex builds j's scheduler index at submit time and enters the
// job into the active list and the block->map reverse index.
func (jt *JobTracker) registerJobIndex(j *Job) {
	if !jt.indexed() {
		return
	}
	j.idx = &jobIndex{
		mapsByNode: make(map[netmodel.NodeID]*idxSet),
		mapsBySite: make(map[string]*idxSet),
	}
	jt.activeList = append(jt.activeList, j)
	for _, m := range j.maps {
		jt.blockMaps[m.block] = append(jt.blockMaps[m.block], m)
		jt.noteMapTask(m)
	}
	for _, r := range j.reduces {
		jt.noteReduceTask(r)
	}
}

// unregisterJobIndex removes a finished job from the active list and the
// block->map index so heartbeats and placement changes stop touching it.
func (jt *JobTracker) unregisterJobIndex(j *Job) {
	if j.idx == nil {
		return
	}
	if i := slices.Index(jt.activeList, j); i >= 0 {
		jt.activeList = slices.Delete(jt.activeList, i, i+1)
	}
	for _, m := range j.maps {
		list := jt.blockMaps[m.block]
		if i := slices.Index(list, m); i >= 0 {
			list = slices.Delete(list, i, i+1)
		}
		if len(list) == 0 {
			delete(jt.blockMaps, m.block)
		} else {
			jt.blockMaps[m.block] = list
		}
	}
}

// classOfMap mirrors the scan path's candidate filters exactly: pending
// candidates are !done && running()==0 && failures<Max; speculative
// candidates are !done && running()>0 && failures<Max.
func (jt *JobTracker) classOfMap(m *mapTask) taskClass {
	j := m.job
	if j.State == JobSucceeded || j.State == JobFailed {
		return classNone
	}
	if m.done || m.failures >= jt.cfg.MaxTaskAttempts {
		return classNone
	}
	if m.running() > 0 {
		return classRunning
	}
	return classPending
}

func (jt *JobTracker) classOfReduce(r *reduceTask) taskClass {
	j := r.job
	if j.State == JobSucceeded || j.State == JobFailed {
		return classNone
	}
	if r.done || r.failures >= jt.cfg.MaxTaskAttempts {
		return classNone
	}
	if r.running() > 0 {
		return classRunning
	}
	return classPending
}

// noteMapTask re-derives the task's classification and updates the index.
// Call it after any mutation that can change done/running/failures state.
func (jt *JobTracker) noteMapTask(m *mapTask) {
	if !jt.indexed() || m.job.idx == nil {
		return
	}
	m.job.specMapMin = specMinInvalid
	c := jt.classOfMap(m)
	if c == m.idxClass {
		return
	}
	idx := m.job.idx
	switch m.idxClass {
	case classPending:
		idx.pendingMaps.remove(m.idx)
		jt.placementSets(m, false)
	case classRunning:
		idx.runningMaps.remove(m.idx)
	}
	switch c {
	case classPending:
		idx.pendingMaps.insert(m.idx)
		jt.placementSets(m, true)
	case classRunning:
		idx.runningMaps.insert(m.idx)
	}
	m.idxClass = c
}

func (jt *JobTracker) noteReduceTask(r *reduceTask) {
	if !jt.indexed() || r.job.idx == nil {
		return
	}
	r.job.specReduceMin = specMinInvalid
	c := jt.classOfReduce(r)
	if c == r.idxClass {
		return
	}
	idx := r.job.idx
	switch r.idxClass {
	case classPending:
		idx.pendingReduces.remove(r.idx)
	case classRunning:
		idx.runningReduces.remove(r.idx)
	}
	switch c {
	case classPending:
		idx.pendingReduces.insert(r.idx)
	case classRunning:
		idx.runningReduces.insert(r.idx)
	}
	r.idxClass = c
}

// placementSets adds or removes a pending map from the per-node and
// per-site placement sets, driven by the block's current replicas. The site
// filter mirrors localityOf: only live datanodes contribute site locality,
// while the node set follows raw replica membership.
func (jt *JobTracker) placementSets(m *mapTask, add bool) {
	b := jt.nn.Block(m.block)
	if b == nil {
		return
	}
	idx := m.job.idx
	for _, r := range b.Replicas() {
		ns := idx.nodeSet(r)
		if add {
			ns.insert(m.idx)
		} else {
			ns.remove(m.idx)
		}
		if d := jt.nn.Datanode(r); d != nil && d.Alive {
			ss := idx.siteSet(d.Site)
			if add {
				ss.insert(m.idx)
			} else {
				ss.remove(m.idx)
			}
		}
	}
}

// placementChanged is the hdfs.Namenode.OnPlacementChange subscriber: a
// replica of bid appeared on or disappeared from node, so every pending map
// reading that block updates its per-node/per-site placement sets.
func (jt *JobTracker) placementChanged(bid hdfs.BlockID, node netmodel.NodeID, added bool) {
	if !jt.indexed() {
		return
	}
	maps := jt.blockMaps[bid]
	if len(maps) == 0 {
		return
	}
	d := jt.nn.Datanode(node)
	for _, m := range maps {
		if m.idxClass != classPending {
			continue
		}
		idx := m.job.idx
		if added {
			idx.nodeSet(node).insert(m.idx)
			if d != nil && d.Alive {
				idx.siteSet(d.Site).insert(m.idx)
			}
		} else {
			idx.nodeSet(node).remove(m.idx)
			if d != nil && !jt.blockLiveInSite(bid, d.Site) {
				idx.siteSet(d.Site).remove(m.idx)
			}
		}
	}
}

// blockLiveInSite reports whether the block still has a replica on a live
// datanode in the site (another replica may keep the site entry alive).
func (jt *JobTracker) blockLiveInSite(bid hdfs.BlockID, site string) bool {
	b := jt.nn.Block(bid)
	if b == nil {
		return false
	}
	for _, r := range b.Replicas() {
		if d := jt.nn.Datanode(r); d != nil && d.Alive && d.Site == site {
			return true
		}
	}
	return false
}

// pickMapIndexed returns the map the scan path would pick for tracker t, at
// its locality level. Level preference first (node, site, remote), lowest
// task index within a level — the scan's exact order. The three queries are
// mutually consistent: an eligible pending map with a replica on t.Node is
// always found by the node query, so later queries cannot misclassify.
func (jt *JobTracker) pickMapIndexed(j *Job, t *TaskTracker) (*mapTask, LocalityLevel) {
	if s := j.idx.mapsByNode[t.Node]; s != nil {
		for _, i := range s.v {
			m := j.maps[i]
			if m.failedOn[t.Node] {
				continue
			}
			return m, NodeLocal
		}
	}
	if s := j.idx.mapsBySite[t.Site]; s != nil {
		for _, i := range s.v {
			m := j.maps[i]
			if m.failedOn[t.Node] {
				continue
			}
			return m, SiteLocal
		}
	}
	for _, i := range j.idx.pendingMaps.v {
		m := j.maps[i]
		if m.failedOn[t.Node] {
			continue
		}
		return m, Remote
	}
	return nil, Remote
}

func (jt *JobTracker) assignOneMapIndexed(t *TaskTracker) bool {
	for _, j := range jt.sched.JobOrder(jt, t) {
		if j.blacklisted(t.Node) {
			continue
		}
		pick, lvl := jt.pickMapIndexed(j, t)
		if pick != nil && lvl != NodeLocal && jt.cfg.LocalityWait > 0 {
			if j.skipSince < 0 {
				j.skipSince = jt.eng.Now()
				continue
			}
			if jt.eng.Now()-j.skipSince < jt.cfg.LocalityWait {
				continue
			}
		}
		if pick != nil {
			if lvl == NodeLocal {
				j.skipSince = -1
			}
			jt.launchMap(j, pick, t, lvl, false)
			return true
		}
		if jt.cfg.LocalityWait > 0 && len(j.idx.pendingMaps.v) == 0 {
			// Backlog drained: re-arm the wait so maps that become pending
			// later (re-executions, ghost re-queues) get a fresh chance at a
			// local slot instead of inheriting the long-expired wait.
			j.skipSince = -1
		}
		if m := jt.speculativeMapIndexed(j, t); m != nil {
			jt.launchMap(j, m, t, jt.localityOf(t, m), true)
			return true
		}
	}
	return false
}

// speculativeMapIndexed walks only the job's running maps (in task order)
// instead of every task; membership already encodes !done && failures<Max.
// The straggler gate short-circuits the walk entirely in the common case:
// isStraggler is monotone in the attempt's start time, so if the job's
// oldest running start does not qualify, nothing does.
func (jt *JobTracker) speculativeMapIndexed(j *Job, t *TaskTracker) *mapTask {
	if !jt.cfg.Speculative {
		return nil
	}
	if !jt.cfg.EagerRedundancy {
		if j.specMapMin == specMinInvalid {
			j.specMapMin = jt.oldestRunningOfKind(j, KindMap)
		}
		if !jt.spec.IsStraggler(jt, j, KindMap, t, j.specMapMin) {
			return nil
		}
	}
	for _, i := range j.idx.runningMaps.v {
		m := j.maps[i]
		if m.failedOn[t.Node] {
			continue
		}
		if m.running() >= jt.cfg.MaxTaskCopies {
			continue
		}
		if m.runningOn(t.Node) {
			continue
		}
		if jt.cfg.EagerRedundancy {
			return m
		}
		if jt.spec.IsStraggler(jt, j, KindMap, t, m.oldestRunningStart()) {
			return m
		}
	}
	return nil
}

// oldestRunningOfKind recomputes a job's minimum running start for the
// speculation gate; runs once per invalidation, not per probe.
func (jt *JobTracker) oldestRunningOfKind(j *Job, kind TaskKind) sim.Time {
	oldest := sim.Time(-1)
	if kind == KindMap {
		for _, i := range j.idx.runningMaps.v {
			if s := j.maps[i].oldestRunningStart(); s >= 0 && (oldest < 0 || s < oldest) {
				oldest = s
			}
		}
	} else {
		for _, i := range j.idx.runningReduces.v {
			if s := j.reduces[i].oldestRunningStart(); s >= 0 && (oldest < 0 || s < oldest) {
				oldest = s
			}
		}
	}
	return oldest
}

func (jt *JobTracker) assignOneReduceIndexed(t *TaskTracker) bool {
	for _, j := range jt.sched.JobOrder(jt, t) {
		if j.blacklisted(t.Node) {
			continue
		}
		if len(j.maps) > 0 {
			need := int(jt.cfg.SlowstartFraction * float64(len(j.maps)))
			if need < 1 {
				need = 1
			}
			if j.completedMaps < need {
				continue
			}
		}
		for _, i := range j.idx.pendingReduces.v {
			r := j.reduces[i]
			if r.failedOn[t.Node] {
				continue
			}
			jt.launchReduce(j, r, t, false)
			return true
		}
		if r := jt.speculativeReduceIndexed(j, t); r != nil {
			jt.launchReduce(j, r, t, true)
			return true
		}
	}
	return false
}

func (jt *JobTracker) speculativeReduceIndexed(j *Job, t *TaskTracker) *reduceTask {
	if !jt.cfg.Speculative {
		return nil
	}
	if !jt.cfg.EagerRedundancy {
		if j.specReduceMin == specMinInvalid {
			j.specReduceMin = jt.oldestRunningOfKind(j, KindReduce)
		}
		if !jt.spec.IsStraggler(jt, j, KindReduce, t, j.specReduceMin) {
			return nil
		}
	}
	for _, i := range j.idx.runningReduces.v {
		r := j.reduces[i]
		if r.failedOn[t.Node] {
			continue
		}
		if r.running() >= jt.cfg.MaxTaskCopies {
			continue
		}
		if r.runningOn(t.Node) {
			continue
		}
		if jt.cfg.EagerRedundancy {
			return r
		}
		if jt.spec.IsStraggler(jt, j, KindReduce, t, r.oldestRunningStart()) {
			return r
		}
	}
	return nil
}
