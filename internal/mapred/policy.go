package mapred

import (
	"fmt"
	"sort"

	"hog/internal/netmodel"
	"hog/internal/sim"
)

// This file defines the pluggable scheduling and speculation policies. The
// maintained scheduler indexes (schedindex.go) are the shared substrate every
// policy queries: a policy decides job ordering or straggler criteria, never
// bookkeeping. Policies are selected by name through Config.SchedulerPolicy /
// Config.SpeculationPolicy (see internal/core's Policies block and the
// hog.WithSchedulerPolicy option); the defaults reproduce the pre-extraction
// behaviour bit for bit, which policy_equiv_test.go pins.

// TaskKind distinguishes map from reduce work in policy callbacks.
type TaskKind int8

// Task kinds.
const (
	KindMap TaskKind = iota
	KindReduce
)

// String returns the kind name.
func (k TaskKind) String() string {
	if k == KindMap {
		return "map"
	}
	return "reduce"
}

// SchedulerPolicy orders the active jobs a free slot is offered to. The
// per-slot pick within a job (locality classes, delay scheduling, task order)
// stays in the indexed substrate; a policy only chooses which jobs are
// considered and in what order. Implementations may reuse an internal scratch
// slice: the engine fires model callbacks serially, and the returned slice is
// only read until the next JobOrder call.
type SchedulerPolicy interface {
	// Name returns the registry name the policy was constructed under.
	Name() string
	// JobOrder returns the jobs to offer tracker t's free slot, in
	// preference order. It must not mutate the tracker or any job.
	JobOrder(jt *JobTracker, t *TaskTracker) []*Job
}

// SpeculationPolicy decides whether a task whose oldest copy started at
// `started` counts as a straggler worth a speculative duplicate on tracker t.
// Implementations must be monotone in started (an older start can only be
// more of a straggler at the same instant): the scheduler's cached per-job
// minimum start gate (specMapMin/specReduceMin) relies on it.
type SpeculationPolicy interface {
	// Name returns the registry name the policy was constructed under.
	Name() string
	// IsStraggler reports whether a copy started at `started` qualifies for
	// speculation on tracker t. started < 0 means no running copy.
	IsStraggler(jt *JobTracker, j *Job, kind TaskKind, t *TaskTracker, started sim.Time) bool
}

// Registry names of the built-in policies.
const (
	SchedulerFIFO        = "fifo"
	SchedulerFair        = "fair"
	SpeculationThreshold = "threshold"
	SpeculationSiteLoad  = "site-load"
)

var schedulerPolicies = map[string]func() SchedulerPolicy{
	SchedulerFIFO: func() SchedulerPolicy { return fifoScheduler{} },
	SchedulerFair: func() SchedulerPolicy { return &fairScheduler{} },
}

var speculationPolicies = map[string]func() SpeculationPolicy{
	SpeculationThreshold: func() SpeculationPolicy { return thresholdSpeculation{} },
	SpeculationSiteLoad:  func() SpeculationPolicy { return siteLoadSpeculation{} },
}

// NewSchedulerPolicy constructs the named scheduler policy; the empty name
// selects the default ("fifo", the paper's policy).
func NewSchedulerPolicy(name string) (SchedulerPolicy, error) {
	if name == "" {
		name = SchedulerFIFO
	}
	mk, ok := schedulerPolicies[name]
	if !ok {
		return nil, fmt.Errorf("mapred: unknown scheduler policy %q (have %v)", name, SchedulerPolicyNames())
	}
	return mk(), nil
}

// NewSpeculationPolicy constructs the named speculation policy; the empty
// name selects the default ("threshold", the paper's slowdown criterion).
func NewSpeculationPolicy(name string) (SpeculationPolicy, error) {
	if name == "" {
		name = SpeculationThreshold
	}
	mk, ok := speculationPolicies[name]
	if !ok {
		return nil, fmt.Errorf("mapred: unknown speculation policy %q (have %v)", name, SpeculationPolicyNames())
	}
	return mk(), nil
}

// SchedulerPolicyNames returns the registered scheduler policy names, sorted.
func SchedulerPolicyNames() []string { return sortedKeys(schedulerPolicies) }

// SpeculationPolicyNames returns the registered speculation policy names,
// sorted.
func SpeculationPolicyNames() []string { return sortedKeys(speculationPolicies) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fifoScheduler is Apache Hadoop's FIFO policy, the paper's choice: jobs in
// submission order. It returns the tracker's active list itself — the exact
// slice the pre-extraction scheduler iterated.
type fifoScheduler struct{}

func (fifoScheduler) Name() string { return SchedulerFIFO }

func (fifoScheduler) JobOrder(jt *JobTracker, _ *TaskTracker) []*Job { return jt.activeList }

// fairScheduler implements fair-share pool scheduling in the style of the
// Hadoop fair scheduler (Zaharia et al., EuroSys'10 — delay scheduling's
// home): each job belongs to a pool (JobConfig.Pool, defaulting to its
// workload bin), pools have weights and optional running-task caps
// (Config.Pools), and free slots go to the pool with the lowest
// running-tasks-per-weight usage first. Within a pool, submission order is
// kept (the sort is stable over the FIFO active list).
type fairScheduler struct {
	scratch []*Job
}

func (*fairScheduler) Name() string { return SchedulerFair }

func (f *fairScheduler) JobOrder(jt *JobTracker, _ *TaskTracker) []*Job {
	f.scratch = f.scratch[:0]
	for _, j := range jt.activeList {
		pc := jt.poolConfig(j.pool)
		if pc.MaxRunning > 0 && jt.poolRunning[j.pool] >= pc.MaxRunning {
			continue
		}
		f.scratch = append(f.scratch, j)
	}
	sort.SliceStable(f.scratch, func(a, b int) bool {
		ja, jb := f.scratch[a], f.scratch[b]
		if ja.pool == jb.pool {
			return false
		}
		ua, ub := jt.poolUsage(ja.pool), jt.poolUsage(jb.pool)
		if ua != ub {
			return ua < ub
		}
		return ja.pool < jb.pool
	})
	return f.scratch
}

// poolConfig returns the pool's configuration with defaults applied
// (weight 1, no cap): pools need no declaration to exist.
func (jt *JobTracker) poolConfig(pool string) PoolConfig {
	pc := jt.cfg.Pools[pool]
	if pc.Weight <= 0 {
		pc.Weight = 1
	}
	return pc
}

// poolUsage is the fair-share ordering key: running tasks per unit weight.
func (jt *JobTracker) poolUsage(pool string) float64 {
	return float64(jt.poolRunning[pool]) / jt.poolConfig(pool).Weight
}

// thresholdSpeculation is the paper's straggler criterion: a copy is a
// straggler when its elapsed time exceeds SpeculativeSlowdown times the
// average completed duration of its kind, guarded by SpeculativeMinRuntime.
type thresholdSpeculation struct{}

func (thresholdSpeculation) Name() string { return SpeculationThreshold }

func (thresholdSpeculation) IsStraggler(jt *JobTracker, j *Job, kind TaskKind, _ *TaskTracker, started sim.Time) bool {
	elapsed, avg, ok := jt.stragglerElapsedAvg(j, kind, started)
	if !ok {
		return false
	}
	return float64(elapsed) > jt.cfg.SpeculativeSlowdown*float64(avg)
}

// siteLoadSpeculation scales the slowdown threshold by the candidate
// tracker's site load: an idle site (spare slots that opportunistic
// preemption may reclaim any moment) speculates eagerly at half the
// configured slowdown, while a fully busy site demands a task be twice as
// late before burning one of its contended slots on a duplicate. The
// effective threshold does not depend on started, so the policy stays
// monotone in started as the interface requires.
type siteLoadSpeculation struct{}

func (siteLoadSpeculation) Name() string { return SpeculationSiteLoad }

func (siteLoadSpeculation) IsStraggler(jt *JobTracker, j *Job, kind TaskKind, t *TaskTracker, started sim.Time) bool {
	elapsed, avg, ok := jt.stragglerElapsedAvg(j, kind, started)
	if !ok {
		return false
	}
	eff := jt.cfg.SpeculativeSlowdown * (0.5 + jt.siteUtilization(t.Site))
	return float64(elapsed) > eff*float64(avg)
}

// siteUtilization returns the fraction of a site's slots running tasks,
// from the incrementally maintained per-site counters.
func (jt *JobTracker) siteUtilization(site string) float64 {
	sl := jt.siteLoads[site]
	if sl == nil || sl.slots <= 0 {
		return 0
	}
	return float64(sl.running) / float64(sl.slots)
}

// siteLoad tracks one site's slot capacity and occupancy for the site-load
// speculation policy; maintained on register/death and launch/detach.
type siteLoad struct {
	slots   int
	running int
}

// stragglerElapsedAvg is the shared straggler substrate: elapsed time of the
// oldest copy and the average completed duration of the kind. ok is false
// when no copy runs, the minimum-runtime guard applies, or nothing of the
// kind has completed — every policy short-circuits to "not a straggler"
// then. The indexed scheduler reads the job's maintained duration
// aggregates; the scan baseline re-sums every completed task, as it always
// did. Both are exact integer sums, so the two paths agree bit-for-bit.
func (jt *JobTracker) stragglerElapsedAvg(j *Job, kind TaskKind, started sim.Time) (elapsed, avg sim.Time, ok bool) {
	if started < 0 {
		return 0, 0, false
	}
	elapsed = jt.eng.Now() - started
	if elapsed < jt.cfg.SpeculativeMinRuntime {
		return 0, 0, false
	}
	var sum sim.Time
	var n int
	if jt.indexed() {
		if kind == KindMap {
			sum, n = j.doneMapDur, j.doneMapN
		} else {
			sum, n = j.doneReduceDur, j.doneReduceN
		}
	} else if kind == KindMap {
		for _, m := range j.maps {
			if m.done {
				sum += m.duration
				n++
			}
		}
	} else {
		for _, r := range j.reduces {
			if r.done {
				sum += r.duration
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0, false
	}
	return elapsed, sum / sim.Time(n), true
}

// noteLaunched maintains the pool and site occupancy counters when an
// attempt launches; detach (task.go) undoes it exactly once per attempt.
func (jt *JobTracker) noteLaunched(j *Job, t *TaskTracker) {
	jt.poolRunning[j.pool]++
	if sl := jt.siteLoads[t.Site]; sl != nil {
		sl.running++
	}
}

// SchedulerPolicyName returns the active scheduler policy's registry name.
func (jt *JobTracker) SchedulerPolicyName() string { return jt.sched.Name() }

// SpeculationPolicyName returns the active speculation policy's registry name.
func (jt *JobTracker) SpeculationPolicyName() string { return jt.spec.Name() }

// Pool returns the pool the job is scheduled under.
func (j *Job) Pool() string { return j.pool }

// PoolRunning returns the incrementally maintained running-task count for a
// pool (audit accessor; RunningByPool recomputes the same quantity from
// tracker state so the two can be cross-checked).
func (jt *JobTracker) PoolRunning(pool string) int { return jt.poolRunning[pool] }

// PoolConfigFor returns the pool's effective configuration, defaults applied
// (audit accessor).
func (jt *JobTracker) PoolConfigFor(pool string) PoolConfig { return jt.poolConfig(pool) }

// PoolsWithRunning returns the pools whose incremental counters are nonzero,
// sorted (audit accessor).
func (jt *JobTracker) PoolsWithRunning() []string {
	var out []string
	for pool, n := range jt.poolRunning {
		if n != 0 {
			out = append(out, pool)
		}
	}
	sort.Strings(out)
	return out
}

// RunningByPool recomputes per-pool live-attempt counts from the trackers'
// attempt sets — an independent code path from the incremental poolRunning
// counters, for the audit sweep's conservation check. Ghost beliefs are not
// counted: they occupy no slot.
func (jt *JobTracker) RunningByPool() map[string]int {
	out := make(map[string]int)
	for _, t := range jt.trackerOrder {
		for a := range t.attempts {
			out[a.job.pool]++
		}
	}
	return out
}

// SpeculativeLaunchCheck re-derives, at TaskLaunched emission time, whether
// the launch was speculative and whether the active speculation policy
// justifies it (audit accessor). The event fires after the new attempt is
// appended, so a task with two or more running copies was launched
// speculatively; its oldest running start is unchanged by the append (the
// new copy starts now), so re-evaluating the policy at the same instant
// reproduces the scheduler's decision. Eager redundancy justifies any
// speculative copy within budget.
func (jt *JobTracker) SpeculativeLaunchCheck(jobID, taskIdx int, kind TaskKind, node netmodel.NodeID) (speculative, justified bool) {
	var j *Job
	for _, cand := range jt.jobs {
		if int(cand.ID) == jobID {
			j = cand
			break
		}
	}
	t := jt.trackers[node]
	if j == nil || t == nil {
		return false, true
	}
	var running int
	var oldest sim.Time
	if kind == KindMap {
		if taskIdx < 0 || taskIdx >= len(j.maps) {
			return false, true
		}
		m := j.maps[taskIdx]
		running, oldest = m.running(), m.oldestRunningStart()
	} else {
		if taskIdx < 0 || taskIdx >= len(j.reduces) {
			return false, true
		}
		r := j.reduces[taskIdx]
		running, oldest = r.running(), r.oldestRunningStart()
	}
	if running < 2 {
		return false, true
	}
	if jt.cfg.EagerRedundancy {
		return true, running <= jt.cfg.MaxTaskCopies
	}
	return true, jt.spec.IsStraggler(jt, j, kind, t, oldest)
}
