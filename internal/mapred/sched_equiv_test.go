package mapred

import (
	"fmt"
	"math/rand"
	"testing"

	"hog/internal/sim"
)

// schedFingerprint serializes everything the scheduler decided: per-job
// lifecycle timestamps and counters, plus every attempt in launch order with
// its global sequence number, node, start time, and speculation flag. Two
// runs with identical fingerprints made bit-identical assignment decisions.
func schedFingerprint(c *cluster) []string {
	var out []string
	for _, j := range c.jt.Jobs() {
		out = append(out, fmt.Sprintf("job %d state=%v submit=%d start=%d finish=%d maps=%d reduces=%d counters=%+v",
			j.ID, j.State, j.SubmitTime, j.StartTime, j.FinishTime, j.completedMaps, j.completedReduces, j.counters))
		for _, m := range j.maps {
			for _, a := range m.attempts {
				out = append(out, fmt.Sprintf("  j%d m%d seq=%d node=%d started=%d spec=%v live=%v",
					j.ID, m.idx, a.seq, a.node, a.started, a.spec, a.live()))
			}
		}
		for _, r := range j.reduces {
			for _, a := range r.attempts {
				out = append(out, fmt.Sprintf("  j%d r%d seq=%d node=%d started=%d spec=%v live=%v",
					j.ID, r.idx, a.seq, a.node, a.started, a.spec, a.live()))
			}
		}
	}
	return out
}

// runSchedChurn executes one randomized workload + churn schedule under
// either scheduler path and returns the fingerprint. The schedule is drawn
// from a private RNG so both paths see identical inputs.
func runSchedChurn(seed int64, scan bool, profile string) []string {
	return runSchedChurnWith(seed, scan, profile, nil)
}

// runSchedChurnWith additionally applies mod to the JobTracker config after
// the profile knobs — the hook the policy equivalence tests use to pin
// explicit policy names against the defaults on identical inputs.
func runSchedChurnWith(seed int64, scan bool, profile string, mod func(*Config)) []string {
	nn := hogNNCfg()
	jt := hogJTCfg()
	jt.ScanScheduler = scan
	switch profile {
	case "delay":
		nn.Replication = 1
		jt.LocalityWait = 30 * sim.Second
	case "eager":
		jt.EagerRedundancy = true
		jt.SpeculativeMinRuntime = 20 * sim.Second
	case "kills", "zombies":
		nn.Replication = 2
		jt.SpeculativeMinRuntime = 20 * sim.Second
	case "delay-churn":
		// Delay scheduling under node loss: exercises the wait re-arm when
		// re-executed maps re-enter a drained backlog.
		nn.Replication = 2
		jt.LocalityWait = 30 * sim.Second
		jt.SpeculativeMinRuntime = 20 * sim.Second
	}
	if mod != nil {
		mod(&jt)
	}
	c := newCluster(seed, 6, nn, jt) // 30 nodes over 5 sites
	r := rand.New(rand.NewSource(seed * 7919))
	const nJobs = 4
	submitted := 0
	for i := 0; i < nJobs; i++ {
		cfg := smallJob(c, fmt.Sprintf("eq%d", i), 4+r.Intn(10), r.Intn(3))
		at := sim.Time(r.Int63n(int64(90 * sim.Second)))
		c.eng.Schedule(at, func() {
			c.jt.Submit(cfg)
			submitted++
		})
	}
	if profile == "kills" || profile == "zombies" || profile == "delay-churn" {
		for i := 0; i < 6; i++ {
			at := sim.Time(int64(30*sim.Second) + r.Int63n(int64(8*sim.Minute)))
			node := c.nodes[r.Intn(len(c.nodes))]
			zomb := profile == "zombies" && i%2 == 0
			c.eng.Schedule(at, func() {
				if c.state[node] != healthy {
					return
				}
				if zomb {
					c.makeZombie(node)
				} else {
					c.kill(node)
				}
			})
		}
	}
	c.eng.RunWhile(func() bool {
		return (submitted < nJobs || !c.jt.AllDone()) && c.eng.Now() < 8*sim.Hour
	})
	return schedFingerprint(c)
}

// TestSchedulerEquivalence is the tentpole's contract: across churn
// profiles and seeds, the indexed scheduler must make bit-identical
// assignment decisions — same attempts on the same nodes at the same
// instants, in the same launch order — and hence identical job completion
// times, as the retained scan path.
func TestSchedulerEquivalence(t *testing.T) {
	for _, profile := range []string{"calm", "delay", "eager", "kills", "zombies", "delay-churn"} {
		for seed := int64(1); seed <= 3; seed++ {
			indexed := runSchedChurn(seed, false, profile)
			scan := runSchedChurn(seed, true, profile)
			if len(indexed) != len(scan) {
				t.Fatalf("profile %s seed %d: fingerprint lengths diverge: indexed %d, scan %d",
					profile, seed, len(indexed), len(scan))
			}
			for i := range indexed {
				if indexed[i] != scan[i] {
					t.Fatalf("profile %s seed %d line %d:\nindexed: %s\nscan:    %s",
						profile, seed, i, indexed[i], scan[i])
				}
			}
		}
	}
}

// TestSchedulerDeterminism: the indexed path must agree with itself exactly
// across identical runs (no map-iteration order anywhere in the index).
func TestSchedulerDeterminism(t *testing.T) {
	a := runSchedChurn(42, false, "zombies")
	b := runSchedChurn(42, false, "zombies")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("line %d diverges across identical runs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestSchedulerIndexDrained: after every job finishes, the per-job indexes
// must be fully unregistered from the tracker-level structures.
func TestSchedulerIndexDrained(t *testing.T) {
	c := newCluster(77, 3, hogNNCfg(), hogJTCfg())
	c.jt.Submit(smallJob(c, "drain1", 6, 2))
	c.jt.Submit(smallJob(c, "drain2", 4, 1))
	c.runUntilDone(t, 4*sim.Hour)
	if n := len(c.jt.activeList); n != 0 {
		t.Fatalf("activeList holds %d jobs after completion", n)
	}
	if n := len(c.jt.blockMaps); n != 0 {
		t.Fatalf("blockMaps holds %d blocks after completion", n)
	}
}
