package mapred

import (
	"testing"

	"hog/internal/sim"
)

// TestDelaySchedulingImprovesLocality compares plain FIFO with delay
// scheduling on a cluster where input replicas are scarce (replication 1),
// so FIFO frequently settles for remote slots while delay scheduling waits
// for local ones.
func TestDelaySchedulingImprovesLocality(t *testing.T) {
	run := func(wait sim.Time) (local, remote int) {
		nn := hogNNCfg()
		nn.Replication = 1 // scarce locality
		jt := hogJTCfg()
		jt.LocalityWait = wait
		c := newCluster(51, 4, nn, jt)
		j := c.jt.Submit(smallJob(c, "delay", 12, 2))
		c.runUntilDone(t, 6*sim.Hour)
		if j.State != JobSucceeded {
			t.Fatalf("job state %v", j.State)
		}
		loc := j.Counters().Locality
		return loc[int(NodeLocal)], loc[int(SiteLocal)] + loc[int(Remote)]
	}
	fifoLocal, fifoNonLocal := run(0)
	delayLocal, delayNonLocal := run(30 * sim.Second)
	fifoRate := float64(fifoLocal) / float64(fifoLocal+fifoNonLocal)
	delayRate := float64(delayLocal) / float64(delayLocal+delayNonLocal)
	if delayRate < fifoRate {
		t.Fatalf("delay scheduling locality %.2f worse than FIFO %.2f", delayRate, fifoRate)
	}
	if delayRate == fifoRate && delayLocal == fifoLocal {
		t.Logf("locality unchanged (%.2f); acceptable on a lightly loaded cluster", delayRate)
	}
}

// TestDelaySchedulingEventuallyAcceptsRemote ensures the wait is bounded:
// with no local replicas at all (input on nodes without slots is impossible
// here, so instead use a tiny wait) the job must still finish.
func TestDelaySchedulingEventuallyAcceptsRemote(t *testing.T) {
	nn := hogNNCfg()
	nn.Replication = 1
	jt := hogJTCfg()
	jt.LocalityWait = 10 * sim.Second
	c := newCluster(52, 2, nn, jt)
	j := c.jt.Submit(smallJob(c, "bounded", 8, 1))
	c.runUntilDone(t, 4*sim.Hour)
	if j.State != JobSucceeded {
		t.Fatalf("job did not finish under delay scheduling: %v", j.State)
	}
}

// TestDelayWaitPaidOnce is the regression test for the delay-scheduling
// over-penalty bug: skipSince used to be reset after *accepting* a
// non-local slot, so every queued non-local map paid a fresh, serial
// LocalityWait. One expired wait must now cover the whole backlog —
// subsequent non-local offers launch immediately — and only a node-local
// launch ends the waiting state. This pins the A-DELAY sweep's behaviour:
// its response times no longer scale with maps x LocalityWait.
func TestDelayWaitPaidOnce(t *testing.T) {
	nn := hogNNCfg()
	nn.Replication = 1        // scarce locality: most trackers are non-local
	nn.DeadTimeout = sim.Hour // no background heartbeats: keep masters patient
	jt := hogJTCfg()
	jt.LocalityWait = 30 * sim.Second
	jt.TrackerTimeout = sim.Hour
	c := newQuietCluster(55, 4, nn, jt) // heartbeats driven by hand
	j := c.jt.Submit(smallJob(c, "paidonce", 10, 0))

	// trackersFor partitions trackers by whether they hold a replica of a
	// still-pending map (placement shifts as maps launch).
	trackersFor := func() (locals, remotes []*TaskTracker) {
		for _, id := range c.nodes {
			tr := c.jt.Tracker(id)
			local := false
			for _, m := range j.maps {
				if !m.done && m.running() == 0 && c.jt.localityOf(tr, m) == NodeLocal {
					local = true
					break
				}
			}
			if local {
				locals = append(locals, tr)
			} else {
				remotes = append(remotes, tr)
			}
		}
		return
	}
	_, remotes := trackersFor()
	if len(remotes) < 2 {
		t.Fatalf("placement too uniform for the scenario: only %d non-local trackers", len(remotes))
	}

	// First non-local offer starts the wait instead of launching.
	c.jt.Heartbeat(remotes[0].Node)
	if remotes[0].runningMaps != 0 {
		t.Fatal("non-local map launched before LocalityWait expired")
	}
	if j.skipSince != 0 {
		t.Fatalf("skipSince = %v, want 0 (waiting since the first declined offer)", j.skipSince)
	}

	// After the wait expires, the same tracker gets a map...
	c.eng.RunUntil(31 * sim.Second)
	c.jt.Heartbeat(remotes[0].Node)
	if remotes[0].runningMaps != 1 {
		t.Fatal("non-local map not launched after LocalityWait expired")
	}
	// ...and the waiting state persists: the expired wait covers the backlog.
	if j.skipSince != 0 {
		t.Fatalf("skipSince = %v after a non-local launch, want 0 (the bug reset it to -1)", j.skipSince)
	}
	// A second non-local tracker launches immediately, with no fresh wait.
	c.jt.Heartbeat(remotes[1].Node)
	if remotes[1].runningMaps != 1 {
		t.Fatal("second non-local map paid a fresh LocalityWait (serial over-penalty)")
	}
	// Only a node-local launch resets the waiting state.
	locals, _ := trackersFor()
	if len(locals) == 0 {
		t.Fatal("no tracker is node-local to a pending map")
	}
	c.jt.Heartbeat(locals[0].Node)
	if locals[0].runningMaps == 0 {
		t.Fatal("node-local tracker got no map")
	}
	if j.skipSince != -1 {
		t.Fatalf("skipSince = %v after a node-local launch, want -1", j.skipSince)
	}

	// After the node-local reset, the next non-local offer starts a fresh
	// wait rather than launching.
	_, rem := trackersFor()
	free := func(trs []*TaskTracker) *TaskTracker {
		for _, tr := range trs {
			if tr.FreeMapSlots() > 0 {
				return tr
			}
		}
		return nil
	}
	tr := free(rem)
	if tr == nil {
		t.Fatal("no free non-local tracker for the fresh-wait check")
	}
	c.jt.Heartbeat(tr.Node)
	if tr.runningMaps != 0 || j.skipSince != 31*sim.Second {
		t.Fatalf("fresh wait not started after node-local reset: running=%d skipSince=%v", tr.runningMaps, j.skipSince)
	}

	// Let the fresh wait expire, drain the backlog through non-local
	// launches only, and confirm the wait re-arms once nothing is pending:
	// maps that become pending later (re-executions) must pay a fresh
	// LocalityWait instead of inheriting the long-expired one.
	c.eng.RunUntil(62 * sim.Second)
	for safety := 0; ; safety++ {
		if safety > 40 {
			t.Fatal("could not drain the backlog via non-local launches")
		}
		pending := 0
		for _, m := range j.maps {
			if !m.done && m.running() == 0 {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		_, rem := trackersFor()
		tr := free(rem)
		if tr == nil {
			t.Fatal("no free non-local tracker left while draining")
		}
		before := tr.runningMaps
		c.jt.Heartbeat(tr.Node)
		if tr.runningMaps == before {
			t.Fatalf("expired wait declined a non-local launch while draining (skipSince=%v)", j.skipSince)
		}
	}
	if j.skipSince != 31*sim.Second {
		t.Fatalf("skipSince = %v changed during the remote-only drain", j.skipSince)
	}
	var all []*TaskTracker
	for _, id := range c.nodes {
		all = append(all, c.jt.Tracker(id))
	}
	idle := free(all)
	if idle == nil {
		t.Fatal("no idle tracker left for the re-arm probe")
	}
	c.jt.Heartbeat(idle.Node)
	if j.skipSince != -1 {
		t.Fatalf("skipSince = %v after the backlog drained, want -1 (wait must re-arm)", j.skipSince)
	}
}

// TestGhostHoldsSlotUntilTimeout verifies the 30s-vs-900s mechanism: a map
// running on a crashed node stays "running" (ghost) until the tracker
// timeout, after which it reschedules.
func TestGhostHoldsSlotUntilTimeout(t *testing.T) {
	jtCfg := hogJTCfg()
	jtCfg.TrackerTimeout = 120 * sim.Second
	jtCfg.Speculative = false                 // isolate the timeout path
	c := newCluster(53, 1, hogNNCfg(), jtCfg) // 5 nodes, 1 per site
	cfg := smallJob(c, "ghost", 5, 0)
	cfg.MapCostPerMB = 3 * sim.Second // long maps (~192s)
	j := c.jt.Submit(cfg)
	var crashAt sim.Time
	c.eng.After(30*sim.Second, func() {
		// Crash a node that is running a map.
		for _, m := range j.maps {
			for _, a := range m.attempts {
				if a.live() {
					crashAt = c.eng.Now()
					c.kill(a.node)
					return
				}
			}
		}
	})
	c.runUntilDone(t, 4*sim.Hour)
	if crashAt == 0 {
		t.Fatal("never crashed a node")
	}
	if j.State != JobSucceeded {
		t.Fatalf("job state %v", j.State)
	}
	// The job can only have finished after the ghost expired at
	// crashAt + TrackerTimeout (+ scan interval) and the map re-ran.
	if j.FinishTime < crashAt+120*sim.Second {
		t.Fatalf("job finished at %v, before ghost timeout (crash at %v)", j.FinishTime, crashAt)
	}
}

// TestSpeculationRescuesGhost verifies the other escape hatch: with
// speculation on, a stuck (ghost) task is duplicated before the timeout.
func TestSpeculationRescuesGhost(t *testing.T) {
	jtCfg := hogJTCfg()
	jtCfg.TrackerTimeout = 900 * sim.Second // traditional: rescue must come from speculation
	jtCfg.SpeculativeMinRuntime = 20 * sim.Second
	c := newCluster(54, 2, hogNNCfg(), jtCfg)
	cfg := smallJob(c, "rescue", 8, 0)
	cfg.MapCostPerMB = 500 * sim.Millisecond // ~32s maps
	j := c.jt.Submit(cfg)
	crashed := false
	c.eng.Every(5*sim.Second, func() {
		if crashed || j.CompletedMaps() < 4 {
			return
		}
		for _, m := range j.maps {
			for _, a := range m.attempts {
				if a.live() && c.state[a.node] == healthy {
					c.kill(a.node)
					crashed = true
					return
				}
			}
		}
	})
	c.runUntilDone(t, 2*sim.Hour)
	if !crashed {
		t.Skip("no crash opportunity with this seed")
	}
	if j.State != JobSucceeded {
		t.Fatalf("job state %v", j.State)
	}
	if j.FinishTime-j.SubmitTime >= 900*sim.Second {
		t.Fatalf("job took %v; speculation should have rescued it before the 900s timeout", j.FinishTime-j.SubmitTime)
	}
	if j.Counters().SpeculativeMaps == 0 {
		t.Fatal("no speculative map launched to rescue the ghost")
	}
}
