package mapred

import (
	"testing"

	"hog/internal/sim"
)

// TestDelaySchedulingImprovesLocality compares plain FIFO with delay
// scheduling on a cluster where input replicas are scarce (replication 1),
// so FIFO frequently settles for remote slots while delay scheduling waits
// for local ones.
func TestDelaySchedulingImprovesLocality(t *testing.T) {
	run := func(wait sim.Time) (local, remote int) {
		nn := hogNNCfg()
		nn.Replication = 1 // scarce locality
		jt := hogJTCfg()
		jt.LocalityWait = wait
		c := newCluster(51, 4, nn, jt)
		j := c.jt.Submit(smallJob(c, "delay", 12, 2))
		c.runUntilDone(t, 6*sim.Hour)
		if j.State != JobSucceeded {
			t.Fatalf("job state %v", j.State)
		}
		loc := j.Counters().Locality
		return loc[int(NodeLocal)], loc[int(SiteLocal)] + loc[int(Remote)]
	}
	fifoLocal, fifoNonLocal := run(0)
	delayLocal, delayNonLocal := run(30 * sim.Second)
	fifoRate := float64(fifoLocal) / float64(fifoLocal+fifoNonLocal)
	delayRate := float64(delayLocal) / float64(delayLocal+delayNonLocal)
	if delayRate < fifoRate {
		t.Fatalf("delay scheduling locality %.2f worse than FIFO %.2f", delayRate, fifoRate)
	}
	if delayRate == fifoRate && delayLocal == fifoLocal {
		t.Logf("locality unchanged (%.2f); acceptable on a lightly loaded cluster", delayRate)
	}
}

// TestDelaySchedulingEventuallyAcceptsRemote ensures the wait is bounded:
// with no local replicas at all (input on nodes without slots is impossible
// here, so instead use a tiny wait) the job must still finish.
func TestDelaySchedulingEventuallyAcceptsRemote(t *testing.T) {
	nn := hogNNCfg()
	nn.Replication = 1
	jt := hogJTCfg()
	jt.LocalityWait = 10 * sim.Second
	c := newCluster(52, 2, nn, jt)
	j := c.jt.Submit(smallJob(c, "bounded", 8, 1))
	c.runUntilDone(t, 4*sim.Hour)
	if j.State != JobSucceeded {
		t.Fatalf("job did not finish under delay scheduling: %v", j.State)
	}
}

// TestGhostHoldsSlotUntilTimeout verifies the 30s-vs-900s mechanism: a map
// running on a crashed node stays "running" (ghost) until the tracker
// timeout, after which it reschedules.
func TestGhostHoldsSlotUntilTimeout(t *testing.T) {
	jtCfg := hogJTCfg()
	jtCfg.TrackerTimeout = 120 * sim.Second
	jtCfg.Speculative = false                 // isolate the timeout path
	c := newCluster(53, 1, hogNNCfg(), jtCfg) // 5 nodes, 1 per site
	cfg := smallJob(c, "ghost", 5, 0)
	cfg.MapCostPerMB = 3 * sim.Second // long maps (~192s)
	j := c.jt.Submit(cfg)
	var crashAt sim.Time
	c.eng.After(30*sim.Second, func() {
		// Crash a node that is running a map.
		for _, m := range j.maps {
			for _, a := range m.attempts {
				if a.live() {
					crashAt = c.eng.Now()
					c.kill(a.node)
					return
				}
			}
		}
	})
	c.runUntilDone(t, 4*sim.Hour)
	if crashAt == 0 {
		t.Fatal("never crashed a node")
	}
	if j.State != JobSucceeded {
		t.Fatalf("job state %v", j.State)
	}
	// The job can only have finished after the ghost expired at
	// crashAt + TrackerTimeout (+ scan interval) and the map re-ran.
	if j.FinishTime < crashAt+120*sim.Second {
		t.Fatalf("job finished at %v, before ghost timeout (crash at %v)", j.FinishTime, crashAt)
	}
}

// TestSpeculationRescuesGhost verifies the other escape hatch: with
// speculation on, a stuck (ghost) task is duplicated before the timeout.
func TestSpeculationRescuesGhost(t *testing.T) {
	jtCfg := hogJTCfg()
	jtCfg.TrackerTimeout = 900 * sim.Second // traditional: rescue must come from speculation
	jtCfg.SpeculativeMinRuntime = 20 * sim.Second
	c := newCluster(54, 2, hogNNCfg(), jtCfg)
	cfg := smallJob(c, "rescue", 8, 0)
	cfg.MapCostPerMB = 500 * sim.Millisecond // ~32s maps
	j := c.jt.Submit(cfg)
	crashed := false
	c.eng.Every(5*sim.Second, func() {
		if crashed || j.CompletedMaps() < 4 {
			return
		}
		for _, m := range j.maps {
			for _, a := range m.attempts {
				if a.live() && c.state[a.node] == healthy {
					c.kill(a.node)
					crashed = true
					return
				}
			}
		}
	})
	c.runUntilDone(t, 2*sim.Hour)
	if !crashed {
		t.Skip("no crash opportunity with this seed")
	}
	if j.State != JobSucceeded {
		t.Fatalf("job state %v", j.State)
	}
	if j.FinishTime-j.SubmitTime >= 900*sim.Second {
		t.Fatalf("job took %v; speculation should have rescued it before the 900s timeout", j.FinishTime-j.SubmitTime)
	}
	if j.Counters().SpeculativeMaps == 0 {
		t.Fatal("no speculative map launched to rescue the ghost")
	}
}
