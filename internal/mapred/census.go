package mapred

import (
	"encoding/binary"
	"hash/fnv"
)

// Census is a deterministic digest of JobTracker state, recorded in
// snapshots and re-checked after a deterministic replay.
type Census struct {
	Trackers      int    `json:"trackers"`
	AliveTrackers int    `json:"alive_trackers"`
	Jobs          int    `json:"jobs"`
	ActiveJobs    int    `json:"active_jobs"`
	AttemptSeq    int64  `json:"attempt_seq"`
	Down          bool   `json:"down"`
	Hash          uint64 `json:"hash"`
}

// Census digests the JobTracker's current state. AttemptSeq is a strict
// event-order signature (every task attempt ever launched draws one); the
// hash additionally walks every tracker in registration order and every
// job's tasks in submission order, covering completion counts, failures and
// per-job counters.
func (jt *JobTracker) Census() Census {
	c := Census{
		Trackers:   len(jt.trackers),
		Jobs:       len(jt.jobs),
		ActiveJobs: jt.active,
		AttemptSeq: jt.attemptSeq,
		Down:       jt.down,
	}
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, tr := range jt.trackerOrder {
		put(uint64(tr.Node))
		if tr.Alive {
			c.AliveTrackers++
			put(1)
		} else {
			put(0)
		}
	}
	for _, j := range jt.jobs {
		put(uint64(j.ID))
		put(uint64(j.State))
		put(uint64(j.completedMaps))
		put(uint64(j.completedReduces))
		cnt := j.counters
		put(uint64(cnt.MapAttemptsStarted))
		put(uint64(cnt.MapAttemptsFailed))
		put(uint64(cnt.ReduceAttemptsStarted))
		put(uint64(cnt.ReduceAttemptsFailed))
		put(uint64(cnt.SpeculativeMaps))
		put(uint64(cnt.SpeculativeReduces))
		put(uint64(cnt.MapsReExecuted))
		put(uint64(cnt.FetchFailures))
		for _, mt := range j.maps {
			flags := uint64(0)
			if mt.done {
				flags = 1
			}
			put(flags)
			put(uint64(mt.failures))
			put(uint64(len(mt.attempts)))
		}
		for _, rt := range j.reduces {
			flags := uint64(0)
			if rt.done {
				flags = 1
			}
			put(flags)
			put(uint64(rt.failures))
			put(uint64(len(rt.attempts)))
		}
	}
	c.Hash = h.Sum64()
	return c
}
