package mrlocal

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// wordCountMapper tokenizes on whitespace.
var wordCountMapper = MapperFunc(func(_, line string, emit Emit) error {
	for _, w := range strings.Fields(line) {
		emit(strings.ToLower(w), "1")
	}
	return nil
})

var sumReducer = ReducerFunc(func(key string, values []string, emit Emit) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
	return nil
})

func TestWordCount(t *testing.T) {
	docs := []string{"the quick brown fox\njumps over the lazy dog\nthe end"}
	out, err := Run(Config{
		Name:        "wordcount",
		Mapper:      wordCountMapper,
		Reducer:     sumReducer,
		NumReducers: 3,
	}, docs)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Lookup("the"); len(got) != 1 || got[0] != "3" {
		t.Fatalf(`Lookup("the") = %v, want ["3"]`, got)
	}
	if got := out.Lookup("fox"); len(got) != 1 || got[0] != "1" {
		t.Fatalf(`Lookup("fox") = %v, want ["1"]`, got)
	}
	if got := out.Lookup("absent"); got != nil {
		t.Fatalf("Lookup(absent) = %v, want nil", got)
	}
	if out.Counters.MapInputRecords != 3 {
		t.Fatalf("map input records = %d, want 3 lines", out.Counters.MapInputRecords)
	}
	if out.Counters.ReduceTasks != 3 {
		t.Fatalf("reduce tasks = %d", out.Counters.ReduceTasks)
	}
	// Every partition sorted by key.
	for _, p := range out.Partitions {
		for i := 1; i < len(p); i++ {
			if p[i].Key < p[i-1].Key {
				t.Fatal("partition not sorted")
			}
		}
	}
}

func TestCombinerEquivalence(t *testing.T) {
	doc := strings.Repeat("alpha beta beta gamma\n", 200)
	base, err := Run(Config{Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: 2, SplitSize: 256}, []string{doc})
	if err != nil {
		t.Fatal(err)
	}
	comb, err := Run(Config{Mapper: wordCountMapper, Reducer: sumReducer, Combiner: sumReducer, NumReducers: 2, SplitSize: 256}, []string{doc})
	if err != nil {
		t.Fatal(err)
	}
	a, b := base.Flatten(), comb.Flatten()
	if len(a) != len(b) {
		t.Fatalf("output sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("combiner changed results at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if comb.Counters.CombineOutRecords >= comb.Counters.MapOutputRecords {
		t.Fatalf("combiner did not shrink map output: %d -> %d",
			comb.Counters.MapOutputRecords, comb.Counters.CombineOutRecords)
	}
}

func TestMapOnlyJob(t *testing.T) {
	grep := MapperFunc(func(off, line string, emit Emit) error {
		if strings.Contains(line, "ERROR") {
			emit(off, line)
		}
		return nil
	})
	docs := []string{"ok line\nERROR one\nfine\nERROR two"}
	out, err := Run(Config{Mapper: grep}, docs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Counters.OutputRecords != 2 {
		t.Fatalf("grep matched %d, want 2", out.Counters.OutputRecords)
	}
	if out.Counters.ReduceTasks != 0 {
		t.Fatal("map-only job ran reducers")
	}
}

func TestSplitTextRespectsLines(t *testing.T) {
	doc := "aaaa\nbbbb\ncccc\ndddd\neeee"
	splits := SplitText([]string{doc}, 10)
	if len(splits) < 2 {
		t.Fatalf("splits = %d, want >= 2", len(splits))
	}
	var all []string
	for _, sp := range splits {
		all = append(all, sp.lines...)
	}
	if strings.Join(all, "\n") != doc {
		t.Fatalf("splits lost content: %q", strings.Join(all, "\n"))
	}
	// Offsets are consistent with line lengths.
	offset := 0
	for _, sp := range splits {
		if sp.startOffset != offset {
			t.Fatalf("split offset %d, want %d", sp.startOffset, offset)
		}
		for _, l := range sp.lines {
			offset += len(l) + 1
		}
	}
}

func TestCustomPartitioner(t *testing.T) {
	firstChar := partitionerFunc(func(key string, n int) int {
		if key == "" {
			return 0
		}
		return int(key[0]) % n
	})
	out, err := Run(Config{
		Mapper:      wordCountMapper,
		Reducer:     sumReducer,
		Partitioner: firstChar,
		NumReducers: 4,
	}, []string{"apple avocado banana berry cherry"})
	if err != nil {
		t.Fatal(err)
	}
	// All 'a' words share a partition, all 'b' words share one, etc.
	for _, p := range out.Partitions {
		seen := map[byte]bool{}
		for _, kv := range p {
			seen[kv.Key[0]] = true
		}
		byMod := map[int]bool{}
		for c := range seen {
			byMod[int(c)%4] = true
		}
		if len(byMod) > 1 {
			t.Fatalf("partition mixes modulo classes: %v", p)
		}
	}
}

type partitionerFunc func(string, int) int

func (f partitionerFunc) Partition(k string, n int) int { return f(k, n) }

func TestBadPartitionerRejected(t *testing.T) {
	bad := partitionerFunc(func(string, int) int { return 99 })
	_, err := Run(Config{Mapper: wordCountMapper, Reducer: sumReducer, Partitioner: bad, NumReducers: 2}, []string{"x"})
	if err == nil {
		t.Fatal("out-of-range partition not rejected")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	m := MapperFunc(func(_, line string, _ Emit) error {
		if strings.Contains(line, "bad") {
			return boom
		}
		return nil
	})
	_, err := Run(Config{Mapper: m, Reducer: sumReducer, SplitSize: 4}, []string{"ok\nbad\nok"})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	r := ReducerFunc(func(key string, _ []string, _ Emit) error {
		if key == "bad" {
			return errors.New("reduce boom")
		}
		return nil
	})
	m := MapperFunc(func(_, line string, emit Emit) error { emit(line, "1"); return nil })
	_, err := Run(Config{Mapper: m, Reducer: r}, []string{"good\nbad"})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want reduce failure naming key", err)
	}
}

func TestMissingMapper(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Fatal("missing mapper accepted")
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	doc := strings.Repeat("one two three four five six seven\n", 300)
	var outs []string
	for _, par := range []int{1, 4, 16} {
		out, err := Run(Config{
			Mapper: wordCountMapper, Reducer: sumReducer,
			NumReducers: 3, SplitSize: 512, Parallelism: par,
		}, []string{doc})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, fmt.Sprintf("%v", out.Flatten()))
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatal("output depends on parallelism")
	}
}

// Property: word counts from the engine match a direct sequential count for
// random documents.
func TestWordCountProperty(t *testing.T) {
	f := func(words []uint8, reducersRaw uint8) bool {
		if len(words) == 0 {
			return true
		}
		vocab := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
		var sb strings.Builder
		want := map[string]int{}
		for i, w := range words {
			word := vocab[int(w)%len(vocab)]
			want[word]++
			sb.WriteString(word)
			if i%5 == 4 {
				sb.WriteByte('\n')
			} else {
				sb.WriteByte(' ')
			}
		}
		out, err := Run(Config{
			Mapper: wordCountMapper, Reducer: sumReducer,
			NumReducers: int(reducersRaw)%5 + 1, SplitSize: 64,
		}, []string{sb.String()})
		if err != nil {
			return false
		}
		for w, n := range want {
			got := out.Lookup(w)
			if len(got) != 1 || got[0] != strconv.Itoa(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
