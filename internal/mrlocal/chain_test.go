package mrlocal

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// TestChainTopWords runs the classic two-stage pipeline: word count, then a
// frequency inversion so reducers see counts as keys.
func TestChainTopWords(t *testing.T) {
	doc := "a a a b b c\na b c c c c"
	count := Config{
		Name:        "count",
		Mapper:      wordCountMapper,
		Reducer:     sumReducer,
		NumReducers: 2,
	}
	invert := Config{
		Name: "invert",
		Mapper: MapperFunc(func(_, line string, emit Emit) error {
			word, n := ParseKV(line)
			if word == "" {
				return nil
			}
			// Zero-pad so lexical key order equals numeric order.
			v, err := strconv.Atoi(n)
			if err != nil {
				return err
			}
			emit(strconv.Itoa(1000+v), word)
			return nil
		}),
		Reducer: ReducerFunc(func(count string, words []string, emit Emit) error {
			for _, w := range words {
				emit(count, w)
			}
			return nil
		}),
		NumReducers: 1,
	}
	res, err := RunChain([]Stage{{"count", count}, {"invert", invert}}, []string{doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	flat := res.Final.Flatten()
	if len(flat) != 3 {
		t.Fatalf("final records = %d, want 3 words: %v", len(flat), flat)
	}
	// Most frequent word last: c appears 5 times, a 4, b 3.
	if flat[len(flat)-1].Value != "c" || flat[len(flat)-1].Key != "1005" {
		t.Fatalf("top word = %+v, want c x5", flat[len(flat)-1])
	}
}

func TestChainErrorsPropagateWithStage(t *testing.T) {
	bad := Config{
		Mapper: MapperFunc(func(_, _ string, _ Emit) error { return errors.New("stage exploded") }),
	}
	_, err := RunChain([]Stage{{"first", Config{Mapper: wordCountMapper}}, {"boom", bad}}, []string{"x"})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want stage name in error", err)
	}
}

func TestChainEmpty(t *testing.T) {
	if _, err := RunChain(nil, nil); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestRenderParseKV(t *testing.T) {
	kvs := []KeyValue{{"a", "1"}, {"b", "x\ty"}}
	text := RenderKV(kvs)
	lines := strings.Split(text, "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	k, v := ParseKV(lines[0])
	if k != "a" || v != "1" {
		t.Fatalf("parsed %q %q", k, v)
	}
	// Value keeps embedded tabs after the first separator.
	k, v = ParseKV(lines[1])
	if k != "b" || v != "x\ty" {
		t.Fatalf("parsed %q %q", k, v)
	}
	if k, v := ParseKV("noseparator"); k != "noseparator" || v != "" {
		t.Fatalf("parsed %q %q", k, v)
	}
}
