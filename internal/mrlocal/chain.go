package mrlocal

import (
	"fmt"
	"strings"
)

// Stage is one job of a multi-stage pipeline. Each stage consumes the
// previous stage's output records, rendered one per line as "key\tvalue"
// (Hadoop streaming's TextInputFormat convention).
type Stage struct {
	Name string
	Job  Config
}

// ChainResult carries every stage's output, the last one first-class.
type ChainResult struct {
	Final  *Output
	Stages []*Output
}

// RunChain executes stages sequentially: stage 1 reads docs, each later
// stage reads its predecessor's flattened output. This mirrors the common
// Hadoop idiom of chaining MapReduce jobs through HDFS files — the paper's
// platform runs such multi-job applications unchanged, and so does this
// engine.
func RunChain(stages []Stage, docs []string) (*ChainResult, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("mrlocal: empty chain")
	}
	res := &ChainResult{}
	input := docs
	for i, st := range stages {
		out, err := Run(st.Job, input)
		if err != nil {
			name := st.Name
			if name == "" {
				name = fmt.Sprintf("stage %d", i+1)
			}
			return nil, fmt.Errorf("mrlocal: chain %s: %w", name, err)
		}
		res.Stages = append(res.Stages, out)
		res.Final = out
		input = []string{RenderKV(out.Flatten())}
	}
	return res, nil
}

// RenderKV renders records one per line as "key\tvalue".
func RenderKV(kvs []KeyValue) string {
	var sb strings.Builder
	for i, kv := range kvs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(kv.Key)
		sb.WriteByte('\t')
		sb.WriteString(kv.Value)
	}
	return sb.String()
}

// ParseKV splits a "key\tvalue" line produced by RenderKV. Lines without a
// tab become (line, "").
func ParseKV(line string) (key, value string) {
	if i := strings.IndexByte(line, '\t'); i >= 0 {
		return line[:i], line[i+1:]
	}
	return line, ""
}
