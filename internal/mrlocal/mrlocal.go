// Package mrlocal is a real, concurrent, in-process MapReduce engine with a
// Hadoop-shaped API: user-defined Mapper and Reducer (plus optional Combiner
// and Partitioner), line-oriented input splits, a sort-and-group shuffle,
// and per-partition output.
//
// The paper's §III.B.2 promise is that HOG requires no API changes: "They
// should not have to change their MapReduce code in order to run on our
// adaptation of Hadoop." This package is the repository's concrete MapReduce
// programming model — applications written against it are what a HOG-style
// platform would execute unchanged, and the examples use it to run real
// computations (the simulation stack models the same jobs at grid scale).
package mrlocal

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// KeyValue is an intermediate or output record.
type KeyValue struct {
	Key, Value string
}

// Emit receives records from map and reduce functions.
type Emit func(key, value string)

// Mapper transforms one input record into intermediate records. Map is
// invoked concurrently from multiple goroutines and must be safe for
// concurrent use (stateless mappers trivially are).
type Mapper interface {
	Map(key, value string, emit Emit) error
}

// Reducer folds all values of one key into output records. Reduce is invoked
// concurrently across partitions.
type Reducer interface {
	Reduce(key string, values []string, emit Emit) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(key, value string, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(k, v string, emit Emit) error { return f(k, v, emit) }

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key string, values []string, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(k string, vs []string, emit Emit) error { return f(k, vs, emit) }

// Partitioner assigns keys to reduce partitions.
type Partitioner interface {
	Partition(key string, numReducers int) int
}

// HashPartitioner is Hadoop's default: hash(key) mod R.
type HashPartitioner struct{}

// Partition implements Partitioner.
func (HashPartitioner) Partition(key string, numReducers int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(numReducers))
}

// Config describes a job for Run.
type Config struct {
	Name string
	// Mapper and Reducer are required (Reducer may be nil for map-only
	// jobs, mirroring Hadoop's zero-reduce mode).
	Mapper  Mapper
	Reducer Reducer
	// Combiner, if set, is applied to each map task's local output before
	// the shuffle (must be associative/commutative like Hadoop's).
	Combiner Reducer
	// Partitioner defaults to HashPartitioner.
	Partitioner Partitioner
	// NumReducers defaults to 1 (ignored for map-only jobs).
	NumReducers int
	// SplitSize is the approximate bytes per input split; defaults to 64 KB
	// (a scaled-down stand-in for HDFS's 64 MB blocks).
	SplitSize int
	// Parallelism bounds concurrent tasks; defaults to GOMAXPROCS.
	Parallelism int
}

// Counters reports job statistics.
type Counters struct {
	MapTasks          int
	ReduceTasks       int
	MapInputRecords   int
	MapOutputRecords  int
	CombineOutRecords int
	ReduceInputKeys   int
	OutputRecords     int
}

// Output is a finished job's result.
type Output struct {
	// Partitions holds each reduce partition's records sorted by key; for
	// map-only jobs there is one pseudo-partition per map task.
	Partitions [][]KeyValue
	Counters   Counters
}

// Flatten merges all partitions sorted by key (stable for equal keys).
func (o *Output) Flatten() []KeyValue {
	var all []KeyValue
	for _, p := range o.Partitions {
		all = append(all, p...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	return all
}

// Lookup returns all values emitted for a key.
func (o *Output) Lookup(key string) []string {
	var vs []string
	for _, p := range o.Partitions {
		i := sort.Search(len(p), func(i int) bool { return p[i].Key >= key })
		for ; i < len(p) && p[i].Key == key; i++ {
			vs = append(vs, p[i].Value)
		}
	}
	return vs
}

// split is one map task's input: a run of lines with byte offsets as keys.
type split struct {
	startOffset int
	lines       []string
}

// SplitText divides documents into line-aligned splits of roughly splitSize
// bytes, never breaking a line across splits (Hadoop's TextInputFormat
// contract).
func SplitText(docs []string, splitSize int) []split {
	if splitSize <= 0 {
		splitSize = 64 << 10
	}
	var splits []split
	for _, doc := range docs {
		lines := strings.Split(doc, "\n")
		cur := split{startOffset: 0}
		curBytes, offset := 0, 0
		for _, line := range lines {
			if curBytes > 0 && curBytes+len(line) > splitSize {
				splits = append(splits, cur)
				cur = split{startOffset: offset}
				curBytes = 0
			}
			cur.lines = append(cur.lines, line)
			curBytes += len(line) + 1
			offset += len(line) + 1
		}
		if len(cur.lines) > 0 {
			splits = append(splits, cur)
		}
	}
	return splits
}

// Run executes the job over the given documents and returns its output. Map
// tasks run concurrently (one per split), then each reduce partition is
// sorted, grouped and reduced concurrently. The first task error aborts the
// job.
func Run(cfg Config, docs []string) (*Output, error) {
	if cfg.Mapper == nil {
		return nil, errors.New("mrlocal: Mapper is required")
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = HashPartitioner{}
	}
	if cfg.NumReducers <= 0 {
		cfg.NumReducers = 1
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	splits := SplitText(docs, cfg.SplitSize)
	out := &Output{}
	out.Counters.MapTasks = len(splits)

	mapOuts, mapStats, err := runMapPhase(cfg, splits)
	if err != nil {
		return nil, err
	}
	out.Counters.MapInputRecords = mapStats.in
	out.Counters.MapOutputRecords = mapStats.out
	out.Counters.CombineOutRecords = mapStats.combined

	if cfg.Reducer == nil {
		// Map-only: each map task's (combined) output is a partition.
		out.Partitions = mapOuts
		for _, p := range out.Partitions {
			sortByKey(p)
			out.Counters.OutputRecords += len(p)
		}
		return out, nil
	}

	// Shuffle: scatter map outputs into reduce partitions.
	parts := make([][]KeyValue, cfg.NumReducers)
	for _, mo := range mapOuts {
		for _, kv := range mo {
			p := cfg.Partitioner.Partition(kv.Key, cfg.NumReducers)
			if p < 0 || p >= cfg.NumReducers {
				return nil, fmt.Errorf("mrlocal: partitioner returned %d for %d reducers", p, cfg.NumReducers)
			}
			parts[p] = append(parts[p], kv)
		}
	}
	out.Counters.ReduceTasks = cfg.NumReducers

	results := make([][]KeyValue, cfg.NumReducers)
	keys := make([]int, cfg.NumReducers)
	err = forEachLimit(cfg.Parallelism, cfg.NumReducers, func(i int) error {
		res, nKeys, err := reducePartition(cfg.Reducer, parts[i])
		results[i] = res
		keys[i] = nKeys
		return err
	})
	if err != nil {
		return nil, err
	}
	out.Partitions = results
	for i := range results {
		out.Counters.ReduceInputKeys += keys[i]
		out.Counters.OutputRecords += len(results[i])
	}
	return out, nil
}

type mapStats struct{ in, out, combined int }

func runMapPhase(cfg Config, splits []split) ([][]KeyValue, mapStats, error) {
	outs := make([][]KeyValue, len(splits))
	var mu sync.Mutex
	stats := mapStats{}
	err := forEachLimit(cfg.Parallelism, len(splits), func(i int) error {
		sp := splits[i]
		var local []KeyValue
		emit := func(k, v string) { local = append(local, KeyValue{k, v}) }
		in := 0
		offset := sp.startOffset
		for _, line := range sp.lines {
			in++
			if err := cfg.Mapper.Map(fmt.Sprintf("%d", offset), line, emit); err != nil {
				return fmt.Errorf("mrlocal: map task %d: %w", i, err)
			}
			offset += len(line) + 1
		}
		rawOut := len(local)
		if cfg.Combiner != nil && len(local) > 0 {
			combined, _, err := reducePartition(cfg.Combiner, local)
			if err != nil {
				return fmt.Errorf("mrlocal: combine task %d: %w", i, err)
			}
			local = combined
		}
		outs[i] = local
		mu.Lock()
		stats.in += in
		stats.out += rawOut
		stats.combined += len(local)
		mu.Unlock()
		return nil
	})
	return outs, stats, err
}

// reducePartition sorts, groups and reduces one partition.
func reducePartition(r Reducer, kvs []KeyValue) ([]KeyValue, int, error) {
	sortByKey(kvs)
	var out []KeyValue
	emit := func(k, v string) { out = append(out, KeyValue{k, v}) }
	nKeys := 0
	for i := 0; i < len(kvs); {
		j := i
		for j < len(kvs) && kvs[j].Key == kvs[i].Key {
			j++
		}
		vals := make([]string, 0, j-i)
		for _, kv := range kvs[i:j] {
			vals = append(vals, kv.Value)
		}
		nKeys++
		if err := r.Reduce(kvs[i].Key, vals, emit); err != nil {
			return nil, nKeys, fmt.Errorf("reduce key %q: %w", kvs[i].Key, err)
		}
		i = j
	}
	sortByKey(out)
	return out, nKeys, nil
}

func sortByKey(kvs []KeyValue) {
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}

// forEachLimit runs fn(0..n-1) with at most limit goroutines, returning the
// first error (remaining tasks may still run to completion; new tasks are
// not started after an error).
func forEachLimit(limit, n int, fn func(i int) error) error {
	if limit > n {
		limit = n
	}
	if limit < 1 {
		limit = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
