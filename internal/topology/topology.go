// Package topology implements HOG's site awareness: the extension of Hadoop
// rack awareness to grid sites (paper §III.B.1).
//
// On the real OSG, HOG configures Hadoop's topology.script.file.name with a
// script that maps a worker's DNS name to a "rack" identifier derived from
// the last two labels of the hostname (workername.site.edu -> site.edu). The
// namenode and jobtracker then treat each site as a failure domain. This
// package reimplements that script as a library function plus a resolver
// cache equivalent to Hadoop's CachedDNSToSwitchMapping.
package topology

import (
	"strings"
	"sync"
)

// DefaultRack is returned for hostnames a mapper cannot classify, mirroring
// Hadoop's /default-rack behaviour for unresolvable nodes.
const DefaultRack = "default-rack"

// SiteFromHostname implements the paper's site detection rule: worker nodes
// are grouped by the last two DNS labels of their public hostname. Inputs
// without at least two labels (bare hostnames, IP-like strings with no dots)
// fall back to DefaultRack so that unknown nodes share one failure domain
// rather than each becoming a singleton "site".
func SiteFromHostname(host string) string {
	host = strings.TrimSuffix(strings.TrimSpace(host), ".")
	if host == "" {
		return DefaultRack
	}
	labels := strings.Split(host, ".")
	if len(labels) < 2 {
		return DefaultRack
	}
	a, b := labels[len(labels)-2], labels[len(labels)-1]
	if a == "" || b == "" {
		return DefaultRack
	}
	return strings.ToLower(a + "." + b)
}

// Mapper resolves hostnames to site identifiers and caches results, the
// analogue of Hadoop's rack-awareness script invocation: the script runs
// once per newly discovered node and the result is remembered.
type Mapper struct {
	mu    sync.Mutex
	cache map[string]string
	// Resolve is the mapping function; defaults to SiteFromHostname.
	Resolve func(host string) string
	// calls counts resolver invocations (not cache hits) for tests that
	// verify the once-per-node contract.
	calls int
}

// NewMapper returns a Mapper using SiteFromHostname.
func NewMapper() *Mapper {
	return &Mapper{cache: make(map[string]string), Resolve: SiteFromHostname}
}

// Site returns the site identifier for host, consulting the cache first.
func (m *Mapper) Site(host string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.cache[host]; ok {
		return s
	}
	m.calls++
	s := m.Resolve(host)
	if s == "" {
		s = DefaultRack
	}
	m.cache[host] = s
	return s
}

// Calls reports how many times the resolver has been invoked.
func (m *Mapper) Calls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

// Sites returns the distinct sites seen so far, in no particular order.
func (m *Mapper) Sites() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, s := range m.cache {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
