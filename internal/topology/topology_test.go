package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSiteFromHostname(t *testing.T) {
	cases := []struct{ host, want string }{
		{"node17.fnal.gov", "fnal.gov"},
		{"worker003.cmsaf.mit.edu", "mit.edu"},
		{"a.b.c.d.ucsd.edu", "ucsd.edu"},
		{"host.aglt2.org", "aglt2.org"},
		{"Node17.FNAL.GOV", "fnal.gov"},
		{"node17.fnal.gov.", "fnal.gov"},
		{"localhost", DefaultRack},
		{"", DefaultRack},
		{"   ", DefaultRack},
		{".", DefaultRack},
		{"a..", DefaultRack},
		{"x.y", "x.y"},
	}
	for _, c := range cases {
		if got := SiteFromHostname(c.host); got != c.want {
			t.Errorf("SiteFromHostname(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestSameSiteGrouping(t *testing.T) {
	hosts := []string{"w1.fnal.gov", "w2.fnal.gov", "w9.cms.fnal.gov"}
	want := "fnal.gov"
	for _, h := range hosts {
		if got := SiteFromHostname(h); got != want {
			t.Errorf("%q mapped to %q, want %q", h, got, want)
		}
	}
}

func TestMapperCaches(t *testing.T) {
	m := NewMapper()
	for i := 0; i < 5; i++ {
		if got := m.Site("w1.fnal.gov"); got != "fnal.gov" {
			t.Fatalf("Site = %q", got)
		}
	}
	if m.Calls() != 1 {
		t.Fatalf("resolver calls = %d, want 1 (cache miss only once)", m.Calls())
	}
	m.Site("w2.ucsd.edu")
	if m.Calls() != 2 {
		t.Fatalf("resolver calls = %d, want 2", m.Calls())
	}
	sites := m.Sites()
	if len(sites) != 2 {
		t.Fatalf("Sites = %v, want 2 distinct", sites)
	}
}

func TestMapperEmptyResolverResult(t *testing.T) {
	m := NewMapper()
	m.Resolve = func(string) string { return "" }
	if got := m.Site("whatever.example.com"); got != DefaultRack {
		t.Fatalf("empty resolver result mapped to %q, want %q", got, DefaultRack)
	}
}

// Property: the site is always a suffix of the (lowercased) input for
// well-formed multi-label hostnames, and never contains whitespace.
func TestSiteSuffixProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		l1 := hostLabel(a)
		l2 := hostLabel(b)
		l3 := hostLabel(c)
		host := l1 + "." + l2 + "." + l3
		site := SiteFromHostname(host)
		return site == l2+"."+l3 && !strings.ContainsAny(site, " \t")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func hostLabel(b uint8) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	return string(alphabet[int(b)%len(alphabet)]) + string(alphabet[int(b/2)%len(alphabet)])
}
