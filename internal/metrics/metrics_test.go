package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hog/internal/sim"
)

func TestSeriesStepSemantics(t *testing.T) {
	s := NewSeries("nodes")
	s.Add(0, 10)
	s.Add(10*sim.Second, 20)
	s.Add(30*sim.Second, 5)
	if got := s.At(-sim.Second); got != 0 {
		t.Fatalf("At(before first) = %v, want 0", got)
	}
	if got := s.At(5 * sim.Second); got != 10 {
		t.Fatalf("At(5s) = %v, want 10", got)
	}
	if got := s.At(10 * sim.Second); got != 20 {
		t.Fatalf("At(10s) = %v, want 20 (inclusive step)", got)
	}
	if got := s.At(sim.Hour); got != 5 {
		t.Fatalf("At(1h) = %v, want 5", got)
	}
}

func TestAreaBetween(t *testing.T) {
	s := NewSeries("nodes")
	s.Add(0, 10)
	s.Add(10*sim.Second, 20)
	s.Add(30*sim.Second, 0)
	// [0,10): 10*10 + [10,30): 20*20 + [30,40): 0 = 500.
	if got := s.AreaBetween(0, 40*sim.Second); got != 500 {
		t.Fatalf("area = %v, want 500", got)
	}
	// Partial window starting mid-step: [5,15) = 10*5 + 20*5 = 150.
	if got := s.AreaBetween(5*sim.Second, 15*sim.Second); got != 150 {
		t.Fatalf("partial area = %v, want 150", got)
	}
	// Swapped bounds behave the same.
	if got := s.AreaBetween(15*sim.Second, 5*sim.Second); got != 150 {
		t.Fatalf("swapped-bounds area = %v, want 150", got)
	}
}

func TestAreaConstantSeries(t *testing.T) {
	s := NewSeries("flat")
	s.Add(0, 55)
	// Table IV sanity: 55 nodes for 4396 s ~ 241780 node-seconds.
	got := s.AreaBetween(0, sim.Seconds(4396))
	if math.Abs(got-55*4396) > 1 {
		t.Fatalf("area = %v, want %v", got, 55*4396)
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(10*sim.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards Add did not panic")
		}
	}()
	s.Add(5*sim.Second, 2)
}

func TestMinMax(t *testing.T) {
	s := NewSeries("x")
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series extremes should be 0")
	}
	s.Add(0, 3)
	s.Add(sim.Second, 9)
	s.Add(2*sim.Second, 1)
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 1/9", s.Min(), s.Max())
	}
}

func TestPointsCopy(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 1)
	pts := s.Points()
	pts[0].V = 99
	if s.At(0) != 1 {
		t.Fatal("Points() leaked internal storage")
	}
}

func TestSummarize(t *testing.T) {
	xs := []sim.Time{5 * sim.Second, sim.Second, 3 * sim.Second, 2 * sim.Second, 4 * sim.Second}
	s := Summarize(xs)
	if s.N != 5 || s.Min != sim.Second || s.Max != 5*sim.Second {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 3*sim.Second {
		t.Fatalf("mean = %v, want 3s", s.Mean)
	}
	if s.P50 != 3*sim.Second {
		t.Fatalf("p50 = %v, want 3s", s.P50)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should be zero")
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSummarizeFloats(t *testing.T) {
	if SummarizeFloats(nil).N != 0 {
		t.Fatal("empty float summary should be zero")
	}
	s := SummarizeFloats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Population stddev of the classic example is exactly 2.
	if math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", s.Std)
	}
	one := SummarizeFloats([]float64{3.5})
	if one.N != 1 || one.Mean != 3.5 || one.Min != 3.5 || one.Max != 3.5 || one.Std != 0 {
		t.Fatalf("single-sample summary = %+v", one)
	}
}

func TestASCIIPlot(t *testing.T) {
	s := NewSeries("nodes")
	s.Add(0, 55)
	s.Add(100*sim.Second, 40)
	out := s.ASCIIPlot(40, 8, 0, 200*sim.Second)
	if !strings.Contains(out, "nodes") || !strings.Contains(out, "*") {
		t.Fatalf("plot missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // header + 8 rows + footer
		t.Fatalf("plot has %d lines, want 10", len(lines))
	}
	// Degenerate sizes clamp instead of crashing.
	if small := s.ASCIIPlot(1, 1, 0, sim.Second); small == "" {
		t.Fatal("tiny plot empty")
	}
}

// Property: area of a constant series equals value * window for arbitrary
// windows, and area is additive over adjacent windows.
func TestAreaProperties(t *testing.T) {
	f := func(v uint8, cut uint16) bool {
		s := NewSeries("c")
		s.Add(0, float64(v))
		t1 := sim.Time(100) * sim.Second
		cutT := sim.Time(cut%100) * sim.Second
		whole := s.AreaBetween(0, t1)
		split := s.AreaBetween(0, cutT) + s.AreaBetween(cutT, t1)
		return math.Abs(whole-float64(v)*100) < 1e-6 && math.Abs(whole-split) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize order statistics are sorted: min <= p50 <= p90 <= p99 <= max.
func TestSummaryOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]sim.Time, len(raw))
		for i, r := range raw {
			xs[i] = sim.Time(r) * sim.Millisecond
		}
		s := Summarize(xs)
		order := []sim.Time{s.Min, s.P50, s.P90, s.P99, s.Max}
		return sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) ||
			isNonDecreasing(order)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func isNonDecreasing(xs []sim.Time) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}
