// Package metrics provides the measurement utilities used by the paper's
// evaluation: node-availability time series with the "area beneath the
// curve" statistic of Table IV, and summary statistics over job response
// times.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hog/internal/sim"
)

// Point is one time-series sample.
type Point struct {
	T sim.Time
	V float64
}

// Series is a step time series: the value holds from one sample until the
// next. The paper's Figure 5 plots available HOG nodes as such a series and
// Table IV integrates it ("We also use the area which is beneath the curve
// ... to demonstrate the node fluctuation").
type Series struct {
	Name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample; time must be non-decreasing.
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		panic("metrics: series time went backwards")
	}
	s.points = append(s.points, Point{t, v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns a copy of the samples.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// At returns the step value at time t (the last sample at or before t), or
// 0 before the first sample.
func (s *Series) At(t sim.Time) float64 {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.points[i-1].V
}

// AreaBetween integrates the step series from t0 to t1 in value·seconds —
// Table IV's "area beneath curves" (node-seconds of availability over the
// workload execution window).
func (s *Series) AreaBetween(t0, t1 sim.Time) float64 {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	var area float64
	prevT := t0
	prevV := s.At(t0)
	for _, p := range s.points {
		if p.T <= t0 {
			continue
		}
		if p.T >= t1 {
			break
		}
		area += prevV * (p.T - prevT).Seconds()
		prevT, prevV = p.T, p.V
	}
	area += prevV * (t1 - prevT).Seconds()
	return area
}

// Min and Max return the extreme sample values (0 for empty series).
func (s *Series) Min() float64 {
	if len(s.points) == 0 {
		return 0
	}
	m := s.points[0].V
	for _, p := range s.points {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Max returns the largest sample value.
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// ASCIIPlot renders the series as a small terminal plot (width x height
// characters), the closest a text harness gets to regenerating Figure 5.
func (s *Series) ASCIIPlot(width, height int, t0, t1 sim.Time) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	maxV := s.Max()
	if maxV <= 0 {
		maxV = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		t := t0 + sim.Time(float64(t1-t0)*float64(x)/float64(width-1))
		v := s.At(t)
		y := int(v / maxV * float64(height-1))
		if y > height-1 {
			y = height - 1
		}
		grid[height-1-y][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max %.0f)\n", s.Name, maxV)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "t=%.0fs .. t=%.0fs\n", t0.Seconds(), t1.Seconds())
	return b.String()
}

// Summary holds order statistics of a sample of durations.
type Summary struct {
	N                  int
	Mean, Std          sim.Time
	Min, Max           sim.Time
	P50, P90, P95, P99 sim.Time
}

// Summarize computes order statistics; an empty input yields a zero Summary.
func Summarize(xs []sim.Time) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	ys := make([]sim.Time, len(xs))
	copy(ys, xs)
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	var sum, sumsq float64
	for _, y := range ys {
		sum += float64(y)
		sumsq += float64(y) * float64(y)
	}
	n := float64(len(ys))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	q := func(p float64) sim.Time {
		idx := int(p * float64(len(ys)-1))
		return ys[idx]
	}
	return Summary{
		N:    len(ys),
		Mean: sim.Time(mean),
		Std:  sim.Time(math.Sqrt(variance)),
		Min:  ys[0],
		Max:  ys[len(ys)-1],
		P50:  q(0.50),
		P90:  q(0.90),
		P95:  q(0.95),
		P99:  q(0.99),
	}
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.N, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// FloatSummary holds the per-point statistics the experiment harness
// aggregates across seeds: mean, extrema, and population standard deviation.
type FloatSummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Std  float64 `json:"std"`
}

// SummarizeFloats computes FloatSummary over a sample; an empty input yields
// a zero summary.
func SummarizeFloats(xs []float64) FloatSummary {
	if len(xs) == 0 {
		return FloatSummary{}
	}
	s := FloatSummary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sqdev float64
	for _, x := range xs {
		d := x - s.Mean
		sqdev += d * d
	}
	s.Std = math.Sqrt(sqdev / float64(len(xs)))
	return s
}
