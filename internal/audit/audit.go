// Package audit checks cross-layer invariants of a running simulation. It
// observes the event bus and, on demand, sweeps the masters' state; any
// breach becomes a recorded Violation instead of a silent divergence. The
// auditor is strictly read-only — it never mutates the simulation and draws
// no randomness, so attaching it cannot change a run's event sequence
// (the determinism contract in internal/sim).
//
// The invariants it enforces (docs/FAULTS.md):
//
//   - simulated time is monotone across the event stream;
//   - master crash/recovery and safe-mode entry/exit events pair up;
//   - a block the namenode counts as replicated is physically present on
//     every alive datanode it names;
//   - outside degraded operation, no non-lost block has zero replicas,
//     zero pending copies, and no physical copy anywhere alive;
//   - per job, pending+running+done+failed tasks is conserved at the task
//     count, and the done class agrees with the completion counters;
//   - per tracker, slot usage stays within [0, slots] and matches the live
//     attempt set;
//   - no job reports success with incomplete maps or reduces;
//   - a speculative launch (a task's second or later running copy) is
//     justified by the active speculation policy's straggler criterion at
//     launch time, or by the eager-redundancy budget;
//   - under the fair scheduler, no pool's running tasks exceed its
//     configured cap, and the incremental per-pool counters agree with a
//     recount from tracker state;
//   - partition-started/healed events pair per site, and gray
//     degraded/restored events pair per node;
//   - corrupt data is never acknowledged to a reader as good (the
//     CorruptAcked counter stays zero — checksum verification is total);
//   - a recovery copy never lands on a node flagged gray, and a corruption
//     marker never survives the replica's invalidation;
//   - a node-recovered event names a datanode the namenode again counts
//     alive.
package audit

import (
	"fmt"
	"sort"

	"hog/internal/event"
	"hog/internal/hdfs"
	"hog/internal/mapred"
	"hog/internal/netmodel"
	"hog/internal/sim"
)

// Violation is one observed invariant breach.
type Violation struct {
	Time   sim.Time
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.Time, v.Rule, v.Detail)
}

// maxRecorded caps stored violations; past the cap only the count grows, so
// a systemically broken run cannot exhaust memory describing itself.
const maxRecorded = 100

// Auditor implements event.Observer. Subscribe it to a bus (or pass it to
// core.NewSystem) for the per-event checks, Attach the masters for the
// state-sweep checks, and call Sweep whenever a consistency snapshot is
// wanted — between waves, on a timer, or once at the end of a run.
type Auditor struct {
	nn *hdfs.Namenode
	jt *mapred.JobTracker

	lastTime sim.Time
	nnDown   bool
	jtDown   bool
	safeMode bool

	// Beyond-crash-stop pairing state: active partition installs per site
	// (site- and node-level cuts on one site may overlap; a heal clears
	// them all) and nodes currently under gray degradation.
	parted map[string]int
	gray   map[netmodel.NodeID]bool

	count      int
	violations []Violation
}

// New returns an Auditor with no masters attached; event-stream checks that
// need master state are skipped until Attach.
func New() *Auditor { return &Auditor{} }

// Attach points the auditor at the masters whose state Sweep examines.
// Either may be nil; the corresponding checks are skipped.
func (a *Auditor) Attach(nn *hdfs.Namenode, jt *mapred.JobTracker) {
	a.nn = nn
	a.jt = jt
}

// Violations returns the recorded breaches (at most maxRecorded; Count is
// the true total).
func (a *Auditor) Violations() []Violation { return a.violations }

// Count returns the total number of violations observed, recorded or not.
func (a *Auditor) Count() int { return a.count }

func (a *Auditor) violate(t sim.Time, rule, format string, args ...any) {
	a.count++
	if len(a.violations) < maxRecorded {
		a.violations = append(a.violations, Violation{Time: t, Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}
}

// HandleEvent implements event.Observer: stream-level invariants checked as
// facts arrive.
func (a *Auditor) HandleEvent(ev event.Event) {
	if ev.Time < a.lastTime {
		a.violate(ev.Time, "monotone-time", "event %s at %v after %v", ev.Type, ev.Time, a.lastTime)
	}
	a.lastTime = ev.Time

	switch ev.Type {
	case event.MasterCrashed:
		switch ev.Detail {
		case "namenode":
			if a.nnDown {
				a.violate(ev.Time, "master-pairing", "namenode crashed twice without recovery")
			}
			a.nnDown = true
		case "jobtracker":
			if a.jtDown {
				a.violate(ev.Time, "master-pairing", "jobtracker crashed twice without recovery")
			}
			a.jtDown = true
		default:
			a.violate(ev.Time, "master-pairing", "master-crashed with unknown detail %q", ev.Detail)
		}
	case event.MasterRecovered:
		switch ev.Detail {
		case "namenode":
			if !a.nnDown {
				a.violate(ev.Time, "master-pairing", "namenode recovered without a crash")
			}
			a.nnDown = false
		case "jobtracker":
			if !a.jtDown {
				a.violate(ev.Time, "master-pairing", "jobtracker recovered without a crash")
			}
			a.jtDown = false
		default:
			a.violate(ev.Time, "master-pairing", "master-recovered with unknown detail %q", ev.Detail)
		}
	case event.SafeModeEntered:
		if a.safeMode {
			a.violate(ev.Time, "safe-mode-pairing", "safe mode entered twice without exit")
		}
		a.safeMode = true
	case event.SafeModeExited:
		if !a.safeMode {
			a.violate(ev.Time, "safe-mode-pairing", "safe mode exited without entry")
		}
		a.safeMode = false
	case event.NodeDead:
		if a.nn != nil {
			if d := a.nn.Datanode(ev.Node); d != nil && d.Alive {
				a.violate(ev.Time, "node-dead", "node %d declared dead but datanode still alive", ev.Node)
			}
		}
	case event.BlockLost:
		if a.nn != nil {
			if b := a.nn.Block(hdfs.BlockID(ev.Block)); b != nil && !b.Lost() {
				a.violate(ev.Time, "block-lost", "block %d reported lost but not marked lost", ev.Block)
			}
		}
	case event.TrackerReregistered:
		if a.jt != nil {
			if t := a.jt.Tracker(ev.Node); t == nil || !t.Alive {
				a.violate(ev.Time, "tracker-reregister", "node %d re-registered but tracker not alive", ev.Node)
			}
		}
	case event.TaskLaunched:
		if a.jt != nil {
			kind := mapred.KindMap
			if ev.Kind == event.ReduceTask {
				kind = mapred.KindReduce
			}
			if spec, ok := a.jt.SpeculativeLaunchCheck(ev.Job, ev.Task, kind, ev.Node); spec && !ok {
				a.violate(ev.Time, "speculation-policy",
					"job %d %s task %d launched a speculative copy on node %d the %q policy does not justify",
					ev.Job, kind, ev.Task, ev.Node, a.jt.SpeculationPolicyName())
			}
		}
	case event.PartitionStarted:
		if a.parted == nil {
			a.parted = make(map[string]int)
		}
		a.parted[ev.Site]++
	case event.PartitionHealed:
		if a.parted[ev.Site] == 0 {
			a.violate(ev.Time, "partition-pairing", "site %q healed without an installed partition", ev.Site)
		}
		delete(a.parted, ev.Site)
	case event.NodeDegraded:
		if a.gray == nil {
			a.gray = make(map[netmodel.NodeID]bool)
		}
		if a.gray[ev.Node] {
			a.violate(ev.Time, "degrade-pairing", "node %d degraded twice without restore", ev.Node)
		}
		a.gray[ev.Node] = true
	case event.NodeRestored:
		if !a.gray[ev.Node] {
			a.violate(ev.Time, "degrade-pairing", "node %d restored without degradation", ev.Node)
		}
		delete(a.gray, ev.Node)
	case event.NodeRecovered:
		if a.nn != nil {
			if d := a.nn.Datanode(ev.Node); d == nil || !d.Alive {
				a.violate(ev.Time, "node-recovered", "node %d recovered but datanode not alive", ev.Node)
			}
		}
	case event.ReplicationDone:
		// Placement must exclude gray nodes; a recovery copy landing on one
		// means the placement policy saw (or ignored) the flag.
		if a.nn != nil {
			if d := a.nn.Datanode(ev.Node); d != nil && d.Gray() {
				a.violate(ev.Time, "gray-placement", "recovery copy of block %d landed on gray node %d", ev.Block, ev.Node)
			}
		}
	case event.ReplicaInvalidated:
		if a.nn != nil {
			if b := a.nn.Block(hdfs.BlockID(ev.Block)); b != nil && b.CorruptOn(ev.Node) {
				a.violate(ev.Time, "corrupt-invalidation", "block %d corruption marker on node %d survived invalidation", ev.Block, ev.Node)
			}
		}
	case event.JobFinished:
		if a.jt != nil && ev.Detail == "succeeded" {
			for _, j := range a.jt.Jobs() {
				if int(j.ID) != ev.Job {
					continue
				}
				if j.CompletedMaps() != j.NumMaps() || j.CompletedReduces() != j.NumReduces() {
					a.violate(ev.Time, "job-complete", "job %d succeeded with %d/%d maps, %d/%d reduces",
						ev.Job, j.CompletedMaps(), j.NumMaps(), j.CompletedReduces(), j.NumReduces())
				}
			}
		}
	}
}

// Sweep examines the attached masters' state at instant now. It is safe to
// call at any point, including mid-outage: checks that only hold during
// normal operation are suppressed while the relevant master is degraded.
func (a *Auditor) Sweep(now sim.Time) {
	if now < a.lastTime {
		a.violate(now, "monotone-time", "sweep at %v after last event %v", now, a.lastTime)
	}
	if a.nn != nil {
		a.sweepHDFS(now)
	}
	if a.jt != nil {
		a.sweepMapRed(now)
	}
}

func (a *Auditor) sweepHDFS(now sim.Time) {
	nn := a.nn
	degraded := nn.Degraded()
	// Checksum verification is total: a reader is never handed corrupt
	// bytes as good data, under any fault mix.
	if acked := nn.Stats().CorruptAcked; acked != 0 {
		a.violate(now, "corrupt-acked", "%d corrupt reads acknowledged as good data", acked)
	}
	nn.ForEachBlock(func(b *hdfs.BlockInfo) {
		reps := b.Replicas()
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
		for _, id := range reps {
			d := nn.Datanode(id)
			switch {
			case d == nil || !d.Alive:
				a.violate(now, "replica-liveness", "block %d replica on dead node %d", b.ID, id)
			case !d.HasBlock(b.ID):
				a.violate(now, "replica-presence", "block %d counted on node %d but not physically held", b.ID, id)
			}
		}
		if !degraded && !b.Lost() && !b.WriteInProgress() && b.NumReplicas() == 0 && b.NumPending() == 0 {
			// A restarted namenode may briefly track zero replicas for a
			// block that survives physically on a node whose block report
			// is still owed; only a block with no physical copy anywhere
			// alive is an inconsistency.
			if !a.physicallyHeld(b.ID) {
				a.violate(now, "replicated-nowhere", "block %d neither lost nor held by any alive datanode", b.ID)
			}
		}
	})
}

// physicallyHeld reports whether any alive datanode hosts a copy of bid.
func (a *Auditor) physicallyHeld(bid hdfs.BlockID) bool {
	for _, d := range a.nn.AliveDatanodes() {
		if d.HasBlock(bid) {
			return true
		}
	}
	return false
}

func (a *Auditor) sweepMapRed(now sim.Time) {
	jt := a.jt
	jt.ForEachTracker(func(t *mapred.TaskTracker) {
		rm, rr := t.RunningMaps(), t.RunningReduces()
		if rm < 0 || rm > t.MapSlots || rr < 0 || rr > t.ReduceSlots {
			a.violate(now, "slot-accounting", "node %d slots out of range: %d/%d maps, %d/%d reduces",
				t.Node, rm, t.MapSlots, rr, t.ReduceSlots)
		}
		am, ar := t.LiveAttempts()
		if am != rm || ar != rr {
			a.violate(now, "slot-accounting", "node %d slot counters (%d,%d) disagree with live attempts (%d,%d)",
				t.Node, rm, rr, am, ar)
		}
	})
	for _, j := range jt.Jobs() {
		if j.State != mapred.JobPending && j.State != mapred.JobRunning {
			continue
		}
		mp, mr, md, mf := jt.MapStates(j)
		if mp+mr+md+mf != j.NumMaps() {
			a.violate(now, "task-conservation", "job %d maps %d+%d+%d+%d != %d",
				j.ID, mp, mr, md, mf, j.NumMaps())
		}
		if md != j.CompletedMaps() {
			a.violate(now, "task-conservation", "job %d done maps %d != completed counter %d",
				j.ID, md, j.CompletedMaps())
		}
		rp, rr, rd, rf := jt.ReduceStates(j)
		if rp+rr+rd+rf != j.NumReduces() {
			a.violate(now, "task-conservation", "job %d reduces %d+%d+%d+%d != %d",
				j.ID, rp, rr, rd, rf, j.NumReduces())
		}
		if rd != j.CompletedReduces() {
			a.violate(now, "task-conservation", "job %d done reduces %d != completed counter %d",
				j.ID, rd, j.CompletedReduces())
		}
	}
	a.sweepPools(now)
}

// sweepPools cross-checks the fair scheduler's substrate: the incremental
// per-pool running counters against an independent recount from the
// trackers' attempt sets, and — when the fair policy is active — each
// pool's running tasks against its configured cap. The counters are
// maintained unconditionally (they are cheap), so the conservation check
// runs under every scheduler policy.
func (a *Auditor) sweepPools(now sim.Time) {
	jt := a.jt
	recount := jt.RunningByPool()
	pools := make([]string, 0, len(recount))
	for pool := range recount {
		pools = append(pools, pool)
	}
	sort.Strings(pools)
	fair := jt.SchedulerPolicyName() == mapred.SchedulerFair
	for _, pool := range pools {
		n := recount[pool]
		if got := jt.PoolRunning(pool); got != n {
			a.violate(now, "pool-conservation", "pool %q counter %d disagrees with recount %d", pool, got, n)
		}
		if cap := jt.PoolConfigFor(pool).MaxRunning; fair && cap > 0 && n > cap {
			a.violate(now, "pool-cap", "pool %q runs %d tasks over its cap %d", pool, n, cap)
		}
	}
	// Pools the recount never saw must not be credited with running tasks.
	for _, pool := range jt.PoolsWithRunning() {
		if _, seen := recount[pool]; !seen {
			a.violate(now, "pool-conservation", "pool %q counter %d but no live attempts", pool, jt.PoolRunning(pool))
		}
	}
}

// CheckSeededFilePlacement verifies HOG's placement invariants for one file:
// every block carries exactly the file's replication factor on distinct,
// alive, physically-holding datanodes, and any block with two or more
// replicas spans at least two sites (the paper's cross-site durability rule).
// It is the property the hdfs placement tests assert, shared with the chaos
// runner so both enforce the same contract.
func CheckSeededFilePlacement(nn *hdfs.Namenode, name string) error {
	f := nn.File(name)
	if f == nil {
		return fmt.Errorf("file %q not found", name)
	}
	for _, bid := range f.Blocks {
		b := nn.Block(bid)
		if b == nil {
			return fmt.Errorf("file %q block %d missing from block map", name, bid)
		}
		if b.NumReplicas() != f.Replication {
			return fmt.Errorf("file %q block %d has %d replicas, want %d", name, bid, b.NumReplicas(), f.Replication)
		}
		seen := make(map[netmodel.NodeID]bool, f.Replication)
		for _, id := range b.Replicas() {
			if seen[id] {
				return fmt.Errorf("file %q block %d has duplicate replica on node %d", name, bid, id)
			}
			seen[id] = true
			d := nn.Datanode(id)
			if d == nil || !d.Alive {
				return fmt.Errorf("file %q block %d replica on dead node %d", name, bid, id)
			}
			if !d.HasBlock(bid) {
				return fmt.Errorf("file %q block %d replica on node %d not physically held", name, bid, id)
			}
		}
		if f.Replication >= 2 && len(nn.SitesOf(b)) < 2 {
			return fmt.Errorf("file %q block %d with replication %d confined to one site", name, bid, f.Replication)
		}
	}
	return nil
}
