// Package netmodel provides a fluid-flow network and disk model for the
// simulated grid.
//
// The model captures the bandwidth structure the paper relies on (§III.B.1):
// bandwidth inside a site is much larger than bandwidth between sites. Each
// node has a full-duplex NIC; each site has a WAN uplink and downlink shared
// by all of its nodes; cross-site flows are additionally capped per flow to
// model TCP throughput over a high-latency WAN. Disks are modelled as one
// more shared resource per node so that concurrent task I/O on a node slows
// down proportionally.
//
// Every active transfer is a fluid flow whose instantaneous rate is the
// minimum equal share across the links it crosses. Whenever a flow starts or
// finishes, remaining bytes of affected flows are settled at the old rates
// and new rates are computed; completions are re-scheduled on the simulation
// engine. This is the classic progressive-sharing approximation used by grid
// and datacenter simulators.
package netmodel

import (
	"fmt"

	"hog/internal/sim"
)

// NodeID identifies a node in the network. IDs are dense, starting at 0, in
// the order nodes were added.
type NodeID int

// SiteID identifies a site (a shared WAN uplink/downlink domain).
type SiteID int

// Config holds the physical constants of the model. Zero fields are replaced
// by defaults (see DefaultConfig).
type Config struct {
	// NodeBps is per-node NIC bandwidth, bytes/sec, each direction.
	NodeBps float64
	// DiskBps is per-node disk bandwidth, bytes/sec, shared by reads and writes.
	DiskBps float64
	// WANFlowBps caps a single cross-site flow (TCP over WAN).
	WANFlowBps float64
	// LANLatency and WANLatency are one-way propagation delays added to the
	// start of each flow.
	LANLatency, WANLatency sim.Time
}

// DefaultConfig returns the constants used throughout the evaluation:
// 1 Gbps NICs (Table III), ~100 MB/s commodity disks, 100 Mbps per-flow WAN
// throughput, and 0.2 ms / 40 ms LAN / WAN latency.
func DefaultConfig() Config {
	return Config{
		NodeBps:    125e6,
		DiskBps:    100e6,
		WANFlowBps: 12.5e6,
		LANLatency: 200 * sim.Microsecond,
		WANLatency: 40 * sim.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.NodeBps <= 0 {
		c.NodeBps = d.NodeBps
	}
	if c.DiskBps <= 0 {
		c.DiskBps = d.DiskBps
	}
	if c.WANFlowBps <= 0 {
		c.WANFlowBps = d.WANFlowBps
	}
	if c.LANLatency <= 0 {
		c.LANLatency = d.LANLatency
	}
	if c.WANLatency <= 0 {
		c.WANLatency = d.WANLatency
	}
	return c
}

// link is a shared resource: NIC direction, site uplink/downlink, or disk.
type link struct {
	capacity float64
	active   int
}

func (l *link) share() float64 {
	if l.active <= 0 {
		return l.capacity
	}
	return l.capacity / float64(l.active)
}

type nodeState struct {
	site     SiteID
	up, down link
	disk     link
	hostname string
}

type siteState struct {
	name     string
	up, down link
}

// Stats accumulates traffic counters for experiment reporting.
type Stats struct {
	// BytesTotal is the total payload bytes moved by completed flows
	// (network flows only, not disk I/O).
	BytesTotal float64
	// BytesCrossSite is the subset of BytesTotal that crossed a WAN link.
	BytesCrossSite float64
	// BytesDisk is total disk I/O bytes completed.
	BytesDisk float64
	// FlowsStarted and FlowsCanceled count network flows.
	FlowsStarted, FlowsCanceled int
}

// Network is the simulated fabric. It is driven entirely by the sim engine
// and is not safe for concurrent use.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	nodes []*nodeState
	sites []*siteState
	flows map[*Flow]struct{}
	stats Stats
}

// New creates an empty network on eng.
func New(eng *sim.Engine, cfg Config) *Network {
	return &Network{
		eng:   eng,
		cfg:   cfg.withDefaults(),
		flows: make(map[*Flow]struct{}),
	}
}

// AddSite registers a site with the given WAN uplink/downlink capacities in
// bytes/sec and returns its ID.
func (n *Network) AddSite(name string, uplinkBps, downlinkBps float64) SiteID {
	n.sites = append(n.sites, &siteState{
		name: name,
		up:   link{capacity: uplinkBps},
		down: link{capacity: downlinkBps},
	})
	return SiteID(len(n.sites) - 1)
}

// AddNode registers a node at site and returns its ID. hostname is used only
// for reporting and topology tests.
func (n *Network) AddNode(site SiteID, hostname string) NodeID {
	if int(site) < 0 || int(site) >= len(n.sites) {
		panic(fmt.Sprintf("netmodel: AddNode with unknown site %d", site))
	}
	n.nodes = append(n.nodes, &nodeState{
		site:     site,
		up:       link{capacity: n.cfg.NodeBps},
		down:     link{capacity: n.cfg.NodeBps},
		disk:     link{capacity: n.cfg.DiskBps},
		hostname: hostname,
	})
	return NodeID(len(n.nodes) - 1)
}

// NumNodes returns the number of registered nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumSites returns the number of registered sites.
func (n *Network) NumSites() int { return len(n.sites) }

// SiteOf returns the site a node belongs to.
func (n *Network) SiteOf(id NodeID) SiteID { return n.nodes[id].site }

// SiteName returns the registered name of a site.
func (n *Network) SiteName(id SiteID) string { return n.sites[id].name }

// Hostname returns the hostname a node was registered with.
func (n *Network) Hostname(id NodeID) string { return n.nodes[id].hostname }

// SameSite reports whether two nodes share a site.
func (n *Network) SameSite(a, b NodeID) bool { return n.nodes[a].site == n.nodes[b].site }

// Stats returns a copy of the accumulated traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// ActiveFlows returns the number of in-flight flows (network and disk).
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Flow is an in-flight transfer. It is created by StartFlow or StartDiskIO
// and owned by the network until completion or cancellation.
type Flow struct {
	net        *Network
	links      []*link
	remaining  float64
	rate       float64
	lastSettle sim.Time
	capBps     float64
	done       func()
	timer      *sim.Timer
	active     bool // joined links (latency elapsed)
	finished   bool
	crossSite  bool
	diskIO     bool
	bytes      float64
}

// StartFlow begins a transfer of bytes from src to dst, invoking done when
// the last byte arrives. A cross-site flow crosses both sites' WAN links and
// is capped at cfg.WANFlowBps. src must differ from dst: a local "transfer"
// is disk traffic and must use StartDiskIO instead.
func (n *Network) StartFlow(src, dst NodeID, bytes float64, done func()) *Flow {
	if src == dst {
		panic("netmodel: StartFlow with src == dst; use StartDiskIO")
	}
	ns, nd := n.nodes[src], n.nodes[dst]
	f := &Flow{
		net:       n,
		remaining: bytes,
		bytes:     bytes,
		done:      done,
		capBps:    n.cfg.NodeBps,
	}
	latency := n.cfg.LANLatency
	f.links = append(f.links, &ns.up, &nd.down)
	if ns.site != nd.site {
		ss, sd := n.sites[ns.site], n.sites[nd.site]
		f.links = append(f.links, &ss.up, &sd.down)
		f.capBps = n.cfg.WANFlowBps
		f.crossSite = true
		latency = n.cfg.WANLatency
	}
	n.stats.FlowsStarted++
	n.admit(f, latency)
	return f
}

// StartDiskIO begins a disk read or write of bytes on node, invoking done on
// completion. Concurrent I/O on the same node shares the disk bandwidth.
func (n *Network) StartDiskIO(node NodeID, bytes float64, done func()) *Flow {
	f := &Flow{
		net:       n,
		remaining: bytes,
		bytes:     bytes,
		done:      done,
		capBps:    n.cfg.DiskBps,
		diskIO:    true,
	}
	f.links = append(f.links, &n.nodes[node].disk)
	n.admit(f, 0)
	return f
}

func (n *Network) admit(f *Flow, latency sim.Time) {
	if f.remaining <= 0 {
		// Zero-byte transfers complete after the propagation latency.
		f.finished = true
		n.eng.After(latency, func() {
			if f.done != nil {
				f.done()
			}
		})
		return
	}
	join := func() {
		if f.finished {
			return
		}
		n.flows[f] = struct{}{}
		for _, l := range f.links {
			l.active++
		}
		f.active = true
		f.lastSettle = n.eng.Now()
		n.rebalance()
	}
	if latency > 0 {
		n.eng.After(latency, join)
	} else {
		join()
	}
}

// Cancel aborts the flow without invoking done. Canceling a finished flow is
// a no-op.
func (f *Flow) Cancel() {
	if f.finished {
		return
	}
	f.finished = true
	if f.timer != nil {
		f.timer.Cancel()
	}
	if f.active {
		f.net.leave(f)
		if !f.diskIO {
			f.net.stats.FlowsCanceled++
		}
		f.net.rebalance()
	}
}

// Remaining returns the bytes not yet transferred, settled to the current
// instant.
func (f *Flow) Remaining() float64 {
	if f.finished {
		return 0
	}
	if !f.active {
		return f.remaining
	}
	dt := (f.net.eng.Now() - f.lastSettle).Seconds()
	rem := f.remaining - f.rate*dt
	if rem < 0 {
		rem = 0
	}
	return rem
}

func (n *Network) leave(f *Flow) {
	delete(n.flows, f)
	for _, l := range f.links {
		l.active--
	}
	f.active = false
}

// rebalance settles every active flow at its old rate, recomputes rates from
// the current link populations, and reschedules completion events.
func (n *Network) rebalance() {
	now := n.eng.Now()
	for f := range n.flows {
		dt := (now - f.lastSettle).Seconds()
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
			f.lastSettle = now
		}
		rate := f.capBps
		for _, l := range f.links {
			if s := l.share(); s < rate {
				rate = s
			}
		}
		if rate == f.rate && f.timer != nil && f.timer.Active() {
			continue
		}
		f.rate = rate
		if f.timer != nil {
			f.timer.Cancel()
		}
		if rate <= 0 {
			f.timer = nil
			continue
		}
		remain := f.remaining
		fin := sim.Seconds(remain / rate)
		if fin < 0 {
			fin = 0
		}
		ff := f
		f.timer = n.eng.After(fin, func() { n.complete(ff) })
	}
}

func (n *Network) complete(f *Flow) {
	if f.finished {
		return
	}
	f.finished = true
	n.leave(f)
	if f.diskIO {
		n.stats.BytesDisk += f.bytes
	} else {
		n.stats.BytesTotal += f.bytes
		if f.crossSite {
			n.stats.BytesCrossSite += f.bytes
		}
	}
	n.rebalance()
	if f.done != nil {
		f.done()
	}
}
