// Package netmodel provides a fluid-flow network and disk model for the
// simulated grid.
//
// The model captures the bandwidth structure the paper relies on (§III.B.1):
// bandwidth inside a site is much larger than bandwidth between sites. Each
// node has a full-duplex NIC; each site has a WAN uplink and downlink shared
// by all of its nodes; cross-site flows are additionally capped per flow to
// model TCP throughput over a high-latency WAN. Disks are modelled as one
// more shared resource per node so that concurrent task I/O on a node slows
// down proportionally.
//
// Every active transfer is a fluid flow whose instantaneous rate is the
// minimum equal share across the links it crosses. Whenever a flow starts or
// finishes, affected flows are settled at their old rates, new rates are
// computed, and completions are re-scheduled on the simulation engine. This
// is the classic progressive-sharing approximation used by grid and
// datacenter simulators.
//
// # Incremental rebalancing
//
// A flow's rate is the minimum of capacity/population over its own links, so
// a join or leave can only change the rates of flows that share one of the
// links whose population changed. The network therefore keeps a per-link
// registry of active flows: each join/leave marks its links dirty, and
// rebalance() recomputes rates only for the flows on dirty links — O(affected)
// instead of O(all flows) per event. Untouched flows settle lazily: their
// rate is constant between the rebalances that touch them, so remaining
// bytes are materialised only when the rate actually changes (or on demand
// via Remaining()). Because both the incremental and the global path settle
// at exactly the rate-change instants, they produce bit-identical completion
// times; Config.GlobalRebalance selects the global path for equivalence
// tests and benchmark baselines.
//
// Determinism: affected flows are processed in creation-sequence order, and
// timer rescheduling draws fresh engine tie-breaking sequence numbers, so
// same-instant completions fire in a stable order — never map order.
package netmodel

import (
	"fmt"
	"slices"
	"sort"

	"hog/internal/sim"
)

// NodeID identifies a node in the network. IDs are dense, starting at 0, in
// the order nodes were added.
type NodeID int

// SiteID identifies a site (a shared WAN uplink/downlink domain).
type SiteID int

// Config holds the physical constants of the model. Zero fields are replaced
// by defaults (see DefaultConfig).
type Config struct {
	// NodeBps is per-node NIC bandwidth, bytes/sec, each direction.
	NodeBps float64
	// DiskBps is per-node disk bandwidth, bytes/sec, shared by reads and writes.
	DiskBps float64
	// WANFlowBps caps a single cross-site flow (TCP over WAN).
	WANFlowBps float64
	// LANLatency and WANLatency are one-way propagation delays added to the
	// start of each flow.
	LANLatency, WANLatency sim.Time
	// GlobalRebalance selects the O(flows) rebalance-everything path instead
	// of the default link-scoped incremental one. Both produce identical
	// results; the global path exists as an equivalence and benchmark
	// baseline.
	GlobalRebalance bool
}

// DefaultConfig returns the constants used throughout the evaluation:
// 1 Gbps NICs (Table III), ~100 MB/s commodity disks, 100 Mbps per-flow WAN
// throughput, and 0.2 ms / 40 ms LAN / WAN latency.
func DefaultConfig() Config {
	return Config{
		NodeBps:    125e6,
		DiskBps:    100e6,
		WANFlowBps: 12.5e6,
		LANLatency: 200 * sim.Microsecond,
		WANLatency: 40 * sim.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.NodeBps <= 0 {
		c.NodeBps = d.NodeBps
	}
	if c.DiskBps <= 0 {
		c.DiskBps = d.DiskBps
	}
	if c.WANFlowBps <= 0 {
		c.WANFlowBps = d.WANFlowBps
	}
	if c.LANLatency <= 0 {
		c.LANLatency = d.LANLatency
	}
	if c.WANLatency <= 0 {
		c.WANLatency = d.WANLatency
	}
	return c
}

// link is a shared resource: NIC direction, site uplink/downlink, or disk.
// It keeps a registry of the active flows crossing it so a population change
// can find exactly the flows whose rate may have moved, and caches its
// equal-share value so the rebalance filter pass is divisions-free.
type link struct {
	capacity  float64
	shareVal  float64 // capacity / max(1, len(flows)), kept current
	prevShare float64 // shareVal when the link was first dirtied
	flows     []*Flow
	dirty     bool
}

func (l *link) share() float64 { return l.shareVal }

func (l *link) reshare() {
	if len(l.flows) == 0 {
		l.shareVal = l.capacity
	} else {
		l.shareVal = l.capacity / float64(len(l.flows))
	}
}

func (l *link) attach(f *Flow) {
	l.flows = append(l.flows, f)
	l.reshare()
}

func (l *link) detach(f *Flow) {
	for i, g := range l.flows {
		if g == f {
			last := len(l.flows) - 1
			l.flows[i] = l.flows[last]
			l.flows[last] = nil
			l.flows = l.flows[:last]
			l.reshare()
			return
		}
	}
}

type nodeState struct {
	site     SiteID
	up, down link
	disk     link
	hostname string
}

type siteState struct {
	name     string
	up, down link
}

// Stats accumulates traffic counters for experiment reporting.
type Stats struct {
	// BytesTotal is the total payload bytes moved by completed flows
	// (network flows only, not disk I/O).
	BytesTotal float64
	// BytesCrossSite is the subset of BytesTotal that crossed a WAN link.
	BytesCrossSite float64
	// BytesDisk is total disk I/O bytes completed.
	BytesDisk float64
	// FlowsStarted and FlowsCanceled count network flows.
	FlowsStarted, FlowsCanceled int
}

// Network is the simulated fabric. It is driven entirely by the sim engine
// and is not safe for concurrent use.
type Network struct {
	eng     *sim.Engine
	cfg     Config
	nodes   []*nodeState
	sites   []*siteState
	stats   Stats
	nActive int

	flowSeq  uint64  // creation-order stamp for deterministic iteration
	dirty    []*link // links whose population changed since the last rebalance
	affected []*Flow // scratch: flows touched by the current rebalance
	epoch    uint64  // rebalance generation, for affected-set dedupe
	batching int     // >0 while Batch() defers rebalancing

	// order holds all active flows sorted by creation seq; maintained only
	// in global-rebalance mode, where every event walks every flow.
	order []*Flow

	// Directed partition state (partition.go), keyed by int(SiteID) /
	// int(NodeID); nParted counts installed cuts so the fault-free Reachable
	// fast path is one integer compare. diskFactors holds the non-nominal
	// gray disk deratings.
	partInSite, partOutSite map[int]struct{}
	partInNode, partOutNode map[int]struct{}
	nParted                 int
	diskFactors             map[int]float64
}

// New creates an empty network on eng.
func New(eng *sim.Engine, cfg Config) *Network {
	return &Network{
		eng: eng,
		cfg: cfg.withDefaults(),
	}
}

// AddSite registers a site with the given WAN uplink/downlink capacities in
// bytes/sec and returns its ID.
func (n *Network) AddSite(name string, uplinkBps, downlinkBps float64) SiteID {
	n.sites = append(n.sites, &siteState{
		name: name,
		up:   link{capacity: uplinkBps, shareVal: uplinkBps},
		down: link{capacity: downlinkBps, shareVal: downlinkBps},
	})
	return SiteID(len(n.sites) - 1)
}

// AddNode registers a node at site and returns its ID. hostname is used only
// for reporting and topology tests.
func (n *Network) AddNode(site SiteID, hostname string) NodeID {
	if int(site) < 0 || int(site) >= len(n.sites) {
		panic(fmt.Sprintf("netmodel: AddNode with unknown site %d", site))
	}
	n.nodes = append(n.nodes, &nodeState{
		site:     site,
		up:       link{capacity: n.cfg.NodeBps, shareVal: n.cfg.NodeBps},
		down:     link{capacity: n.cfg.NodeBps, shareVal: n.cfg.NodeBps},
		disk:     link{capacity: n.cfg.DiskBps, shareVal: n.cfg.DiskBps},
		hostname: hostname,
	})
	return NodeID(len(n.nodes) - 1)
}

// NumNodes returns the number of registered nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumSites returns the number of registered sites.
func (n *Network) NumSites() int { return len(n.sites) }

// SiteOf returns the site a node belongs to.
func (n *Network) SiteOf(id NodeID) SiteID { return n.nodes[id].site }

// SiteName returns the registered name of a site.
func (n *Network) SiteName(id SiteID) string { return n.sites[id].name }

// SiteByName returns the ID of the site registered under name.
func (n *Network) SiteByName(name string) (SiteID, bool) {
	for i, s := range n.sites {
		if s.name == name {
			return SiteID(i), true
		}
	}
	return 0, false
}

// SiteBandwidth returns a site's current WAN uplink/downlink capacities in
// bytes/sec.
func (n *Network) SiteBandwidth(site SiteID) (uplinkBps, downlinkBps float64) {
	s := n.sites[site]
	return s.up.capacity, s.down.capacity
}

// SetSiteBandwidth changes a site's WAN capacities mid-run (failure
// injection: a degraded or congested WAN path). Active flows crossing the
// site's links are settled at their old rates and re-timed at the new
// shares, exactly as a population change would.
func (n *Network) SetSiteBandwidth(site SiteID, uplinkBps, downlinkBps float64) {
	s := n.sites[site]
	n.markDirty(&s.up)
	n.markDirty(&s.down)
	s.up.capacity = uplinkBps
	s.up.reshare()
	s.down.capacity = downlinkBps
	s.down.reshare()
	n.rebalance()
}

// Hostname returns the hostname a node was registered with.
func (n *Network) Hostname(id NodeID) string { return n.nodes[id].hostname }

// SameSite reports whether two nodes share a site.
func (n *Network) SameSite(a, b NodeID) bool { return n.nodes[a].site == n.nodes[b].site }

// Stats returns a copy of the accumulated traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// ActiveFlows returns the number of in-flight flows (network and disk).
func (n *Network) ActiveFlows() int { return n.nActive }

// Batch runs fn with rate rebalancing deferred: flows started, canceled or
// completed synchronously inside fn trigger a single rebalance when the
// outermost Batch returns, instead of one per call. Starting k same-instant
// disk I/Os (an HDFS write pipeline, a reduce shuffle wave) this way costs
// one rate recomputation rather than k. Batching is transparent to results:
// same-instant settlements are no-ops and affected flows are re-timed in
// creation order either way.
func (n *Network) Batch(fn func()) {
	n.batching++
	defer func() {
		n.batching--
		if n.batching == 0 {
			n.rebalance()
		}
	}()
	fn()
}

// Flow is an in-flight transfer. It is created by StartFlow or StartDiskIO
// and owned by the network until completion or cancellation.
type Flow struct {
	net        *Network
	links      []*link
	seq        uint64
	mark       uint64  // last rebalance epoch this flow was collected in
	newRate    float64 // scratch: pass-1 rate awaiting pass-2 application
	remaining  float64
	rate       float64
	lastSettle sim.Time
	capBps     float64
	done       func()
	timer      *sim.Timer
	active     bool // joined links (latency elapsed)
	finished   bool
	crossSite  bool
	diskIO     bool
	bytes      float64
	// shard is the destination's site index: completion timers are tagged
	// onto the receiving site's engine shard, so a WAN flow's completion is
	// settled by the wheel of the site it lands on. Load placement only;
	// never affects ordering.
	shard int
}

// StartFlow begins a transfer of bytes from src to dst, invoking done when
// the last byte arrives. A cross-site flow crosses both sites' WAN links and
// is capped at cfg.WANFlowBps. src must differ from dst: a local "transfer"
// is disk traffic and must use StartDiskIO instead.
func (n *Network) StartFlow(src, dst NodeID, bytes float64, done func()) *Flow {
	if src == dst {
		panic("netmodel: StartFlow with src == dst; use StartDiskIO")
	}
	ns, nd := n.nodes[src], n.nodes[dst]
	f := &Flow{
		net:       n,
		seq:       n.flowSeq,
		remaining: bytes,
		bytes:     bytes,
		done:      done,
		capBps:    n.cfg.NodeBps,
	}
	n.flowSeq++
	f.shard = int(nd.site)
	latency := n.cfg.LANLatency
	f.links = append(f.links, &ns.up, &nd.down)
	if ns.site != nd.site {
		ss, sd := n.sites[ns.site], n.sites[nd.site]
		f.links = append(f.links, &ss.up, &sd.down)
		f.capBps = n.cfg.WANFlowBps
		f.crossSite = true
		latency = n.cfg.WANLatency
	}
	n.stats.FlowsStarted++
	n.admit(f, latency)
	return f
}

// StartDiskIO begins a disk read or write of bytes on node, invoking done on
// completion. Concurrent I/O on the same node shares the disk bandwidth.
func (n *Network) StartDiskIO(node NodeID, bytes float64, done func()) *Flow {
	f := &Flow{
		net:       n,
		seq:       n.flowSeq,
		remaining: bytes,
		bytes:     bytes,
		done:      done,
		capBps:    n.cfg.DiskBps,
		diskIO:    true,
	}
	n.flowSeq++
	f.shard = int(n.nodes[node].site)
	f.links = append(f.links, &n.nodes[node].disk)
	n.admit(f, 0)
	return f
}

func (n *Network) admit(f *Flow, latency sim.Time) {
	cur := n.eng.Shard()
	n.eng.SetShard(f.shard)
	defer n.eng.SetShard(cur) // admit's timers carry the flow tag; callers keep theirs
	if f.remaining <= 0 {
		// Zero-byte transfers complete after the propagation latency. The
		// flow stays cancelable until then: Cancel stops the timer and
		// suppresses done.
		f.timer = n.eng.After(latency, func() {
			if f.finished {
				return
			}
			f.finished = true
			if f.done != nil {
				f.done()
			}
		})
		return
	}
	join := func() {
		if f.finished {
			return
		}
		n.nActive++
		for _, l := range f.links {
			n.markDirty(l)
			l.attach(f)
		}
		f.active = true
		f.lastSettle = n.eng.Now()
		if n.cfg.GlobalRebalance {
			n.orderInsert(f)
		}
		n.rebalance()
	}
	if latency > 0 {
		f.timer = n.eng.After(latency, join)
	} else {
		join()
	}
}

// Cancel aborts the flow without invoking done. Canceling a finished flow is
// a no-op.
func (f *Flow) Cancel() {
	if f.finished {
		return
	}
	f.finished = true
	if f.timer != nil {
		f.timer.Cancel()
	}
	if !f.diskIO {
		f.net.stats.FlowsCanceled++
	}
	if f.active {
		f.net.leave(f)
		f.net.rebalance()
	}
}

// Remaining returns the bytes not yet transferred, settled to the current
// instant.
func (f *Flow) Remaining() float64 {
	if f.finished {
		return 0
	}
	if !f.active {
		return f.remaining
	}
	dt := (f.net.eng.Now() - f.lastSettle).Seconds()
	rem := f.remaining - f.rate*dt
	if rem < 0 {
		rem = 0
	}
	return rem
}

func (n *Network) leave(f *Flow) {
	n.nActive--
	for _, l := range f.links {
		n.markDirty(l)
		l.detach(f)
	}
	f.active = false
	if n.cfg.GlobalRebalance {
		n.orderRemove(f)
	}
}

// markDirty records a link whose population is about to change. Callers
// invoke it before attach/detach so prevShare captures the share the link's
// flows were last balanced against.
func (n *Network) markDirty(l *link) {
	if !l.dirty {
		l.dirty = true
		l.prevShare = l.shareVal
		n.dirty = append(n.dirty, l)
	}
}

// orderInsert keeps the global-mode flow list sorted by creation seq (flows
// can join out of creation order: WAN latency exceeds LAN latency).
func (n *Network) orderInsert(f *Flow) {
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i].seq >= f.seq })
	n.order = append(n.order, nil)
	copy(n.order[i+1:], n.order[i:])
	n.order[i] = f
}

func (n *Network) orderRemove(f *Flow) {
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i].seq >= f.seq })
	if i < len(n.order) && n.order[i] == f {
		n.order = append(n.order[:i], n.order[i+1:]...)
	}
}

// rebalance recomputes rates for every flow whose rate may have changed and
// reschedules their completion events. In incremental mode that is the flows
// registered on dirty links; in global mode it is every active flow (skips
// are cheap: an unchanged rate with a live timer needs no settling). Flows
// are processed in creation order in both modes so same-instant completions
// acquire identical tie-breaking sequence numbers.
func (n *Network) rebalance() {
	if n.batching > 0 {
		return
	}
	now := n.eng.Now()
	if n.cfg.GlobalRebalance {
		for _, l := range n.dirty {
			l.dirty = false
		}
		n.dirty = n.dirty[:0]
		for _, f := range n.order {
			n.recompute(f, now)
		}
		return
	}
	if len(n.dirty) == 0 {
		return
	}
	// Pass 1, unordered: scan the dirty links' registries and keep only the
	// flows whose equal-share rate actually moved. Skipped flows have no
	// side effects, so ordering only matters for the survivors — sorting
	// the (usually much smaller) changed set is the hot-path saving.
	n.epoch++
	changed := n.affected[:0]
	for _, l := range n.dirty {
		l.dirty = false
		share := l.shareVal
		prev := l.prevShare
		for _, f := range l.flows {
			if f.mark == n.epoch {
				continue
			}
			// Per-link fast reject: this link cannot have moved f's rate if
			// its share did not drop below the rate (no new bottleneck) and
			// was not the old bottleneck (f.rate < prev). Fresh or stalled
			// flows (rate 0) always take the slow path so they get timed.
			if share >= f.rate && f.rate < prev && f.rate > 0 {
				continue
			}
			f.mark = n.epoch
			rate := n.flowRate(f)
			if rate != f.rate || (rate > 0 && !f.timer.Active()) {
				f.newRate = rate
				changed = append(changed, f)
			}
		}
	}
	n.dirty = n.dirty[:0]
	// Pass 2, creation order: settle and re-time. Fresh tie-breaking seqs
	// are drawn in the same order the global path would draw them.
	slices.SortFunc(changed, func(a, b *Flow) int {
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	for _, f := range changed {
		n.applyRate(f, now, f.newRate)
	}
	for i := range changed {
		changed[i] = nil
	}
	n.affected = changed[:0]
}

// flowRate returns the flow's current equal-share rate: the minimum share
// across its links, capped per flow.
func (n *Network) flowRate(f *Flow) float64 {
	rate := f.capBps
	for _, l := range f.links {
		if s := l.share(); s < rate {
			rate = s
		}
	}
	return rate
}

// recompute settles f at its old rate and re-times its completion if the
// equal-share rate moved (the global path; the incremental path splits the
// rate computation into pass 1 and calls applyRate directly).
func (n *Network) recompute(f *Flow, now sim.Time) {
	rate := n.flowRate(f)
	if rate == f.rate && (rate <= 0 || f.timer.Active()) {
		return
	}
	n.applyRate(f, now, rate)
}

// applyRate settles f at its old rate, installs the new rate, and re-times
// the completion. Settling happens only at rate changes, never in between,
// so incremental and global rebalancing accumulate byte-identical remaining
// values.
func (n *Network) applyRate(f *Flow, now sim.Time, rate float64) {
	if dt := (now - f.lastSettle).Seconds(); dt > 0 {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastSettle = now
	f.rate = rate
	if rate <= 0 {
		if f.timer != nil {
			f.timer.Cancel()
			f.timer = nil
		}
		return
	}
	fin := sim.Seconds(f.remaining / rate)
	if fin < 0 {
		fin = 0
	}
	if f.timer.Active() {
		f.timer.Reschedule(now + fin) // keeps its shard tag
	} else {
		ff := f
		cur := n.eng.Shard()
		n.eng.SetShard(f.shard)
		f.timer = n.eng.Schedule(now+fin, func() { n.complete(ff) })
		n.eng.SetShard(cur) // don't leak the flow's tag into caller scheduling
	}
}

func (n *Network) complete(f *Flow) {
	if f.finished {
		return
	}
	f.finished = true
	n.leave(f)
	if f.diskIO {
		n.stats.BytesDisk += f.bytes
	} else {
		n.stats.BytesTotal += f.bytes
		if f.crossSite {
			n.stats.BytesCrossSite += f.bytes
		}
	}
	n.rebalance()
	if f.done != nil {
		f.done()
	}
}
