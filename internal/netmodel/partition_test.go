package netmodel

import (
	"testing"

	"hog/internal/sim"
)

// Nodes 0 and 2 are at site a, nodes 1 and 3 at site b (interleaved add
// order in testNet).

func TestSitePartitionDirections(t *testing.T) {
	_, net := testNet(t, 1, 2)
	cases := []struct {
		name          string
		cutIn, cutOut bool
		intoA, outOfA bool // cross-site reachability toward / from site a
		master        bool // node 0's heartbeats reach the masters
		wantAnyAfter  bool
	}{
		{"full", true, true, false, false, false, true},
		{"inbound-only", true, false, false, true, true, true},
		{"outbound-only", false, true, true, false, false, true},
		{"healed", false, false, true, true, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net.PartitionSite(0, tc.cutIn, tc.cutOut)
			if got := net.Reachable(1, 0); got != tc.intoA {
				t.Errorf("Reachable(b→a) = %v, want %v", got, tc.intoA)
			}
			if got := net.Reachable(0, 1); got != tc.outOfA {
				t.Errorf("Reachable(a→b) = %v, want %v", got, tc.outOfA)
			}
			if got := net.MasterReachable(0); got != tc.master {
				t.Errorf("MasterReachable(0) = %v, want %v", got, tc.master)
			}
			// Intra-site traffic is never affected by a site cut.
			if !net.Reachable(0, 2) || !net.Reachable(2, 0) {
				t.Error("site cut severed intra-site traffic")
			}
			if got := net.AnyPartition(); got != tc.wantAnyAfter {
				t.Errorf("AnyPartition = %v, want %v", got, tc.wantAnyAfter)
			}
			cutIn, cutOut := net.SitePartition(0)
			if cutIn != tc.cutIn || cutOut != tc.cutOut {
				t.Errorf("SitePartition = (%v,%v), want (%v,%v)", cutIn, cutOut, tc.cutIn, tc.cutOut)
			}
		})
	}
}

func TestNodePartitionCutsIntraSite(t *testing.T) {
	_, net := testNet(t, 1, 2)
	net.PartitionNode(0, true, true)
	// A node cut severs even same-site peers — unlike a site cut.
	if net.Reachable(2, 0) || net.Reachable(0, 2) {
		t.Fatal("node cut did not sever intra-site traffic")
	}
	if net.MasterReachable(0) {
		t.Fatal("fully cut node still reaches the masters")
	}
	// Self-reachability is unconditional.
	if !net.Reachable(0, 0) {
		t.Fatal("node cannot reach itself")
	}
	// The rest of the fabric is untouched.
	if !net.Reachable(1, 2) || !net.Reachable(2, 3) {
		t.Fatal("node cut leaked onto unrelated pairs")
	}
	net.HealNode(0)
	if net.AnyPartition() {
		t.Fatal("heal left partition state behind")
	}
	if !net.Reachable(2, 0) || !net.MasterReachable(0) {
		t.Fatal("healed node still unreachable")
	}
}

func TestNodeInboundCutIsGrayToMasters(t *testing.T) {
	_, net := testNet(t, 1, 2)
	net.PartitionNode(0, true, false)
	// The masters keep hearing the node (outbound is clear) while every
	// transfer toward it fails: the asymmetric gray zone.
	if !net.MasterReachable(0) {
		t.Fatal("inbound-only cut silenced heartbeats")
	}
	if net.Reachable(1, 0) || net.Reachable(2, 0) {
		t.Fatal("inbound-only cut lets data in")
	}
	if !net.Reachable(0, 1) {
		t.Fatal("inbound-only cut blocks outbound data")
	}
}

func TestDiskFactorDeratesAndRestores(t *testing.T) {
	eng, net := testNet(t, 1, 2)
	if net.DegradedDisks() != 0 || net.NodeDiskFactor(0) != 1 {
		t.Fatal("fresh network reports degraded disks")
	}
	// 50 MB at the full 50 MB/s disk = 1 s; at quarter speed = 4 s.
	var fast, slow sim.Time
	net.StartDiskIO(0, 50e6, func() { fast = eng.Now() })
	eng.Run()
	net.SetNodeDiskFactor(0, 4)
	if net.NodeDiskFactor(0) != 4 || net.DegradedDisks() != 1 {
		t.Fatalf("factor = %v, degraded = %d; want 4, 1", net.NodeDiskFactor(0), net.DegradedDisks())
	}
	start := eng.Now()
	net.StartDiskIO(0, 50e6, func() { slow = eng.Now() - start })
	eng.Run()
	if ratio := float64(slow) / float64(fast); ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("derated read took %v vs nominal %v (ratio %.2f), want ~4x", slow, fast, ratio)
	}
	net.SetNodeDiskFactor(0, 1)
	if net.NodeDiskFactor(0) != 1 || net.DegradedDisks() != 0 {
		t.Fatal("factor 1 did not restore nominal state")
	}
}

func TestPartitionOracleDoesNotTouchFlows(t *testing.T) {
	eng, net := testNet(t, 1, 2)
	// A cut installed mid-flow must not cancel the transfer: the oracle
	// gates new connections at the layers above, never in-flight bytes.
	done := false
	net.StartFlow(0, 1, 10e6, func() { done = true })
	net.PartitionSite(0, true, true)
	eng.Run()
	if !done {
		t.Fatal("installing a partition cancelled an in-flight flow")
	}
}
