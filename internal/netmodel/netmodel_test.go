package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"hog/internal/sim"
)

// testNet builds a 2-site network with nNodes per site and round capacities.
func testNet(t *testing.T, seed int64, nodesPerSite int) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.New(seed)
	net := New(eng, Config{
		NodeBps:    100e6,
		DiskBps:    50e6,
		WANFlowBps: 10e6,
		LANLatency: sim.Millisecond,
		WANLatency: 40 * sim.Millisecond,
	})
	a := net.AddSite("a.edu", 200e6, 200e6)
	b := net.AddSite("b.edu", 200e6, 200e6)
	for i := 0; i < nodesPerSite; i++ {
		net.AddNode(a, "n.a.edu")
		net.AddNode(b, "n.b.edu")
	}
	return eng, net
}

func TestSingleLANFlow(t *testing.T) {
	eng, net := testNet(t, 1, 2)
	// Nodes 0 and 2 are both at site a (interleaved add order).
	if !net.SameSite(0, 2) {
		t.Fatal("expected nodes 0 and 2 on the same site")
	}
	var doneAt sim.Time
	net.StartFlow(0, 2, 100e6, func() { doneAt = eng.Now() })
	eng.Run()
	// 100 MB at 100 MB/s NIC = 1 s plus 1 ms latency.
	want := sim.Second + sim.Millisecond
	if diff := doneAt - want; diff < -sim.Millisecond || diff > sim.Millisecond {
		t.Fatalf("LAN flow finished at %v, want ~%v", doneAt, want)
	}
}

func TestWANFlowCapped(t *testing.T) {
	eng, net := testNet(t, 1, 2)
	if net.SameSite(0, 1) {
		t.Fatal("nodes 0 and 1 should be on different sites")
	}
	var doneAt sim.Time
	net.StartFlow(0, 1, 10e6, func() { doneAt = eng.Now() })
	eng.Run()
	// 10 MB at the 10 MB/s per-flow WAN cap = 1 s plus 40 ms latency.
	want := sim.Second + 40*sim.Millisecond
	if diff := doneAt - want; diff < -sim.Millisecond || diff > sim.Millisecond {
		t.Fatalf("WAN flow finished at %v, want ~%v", doneAt, want)
	}
}

func TestNICSharing(t *testing.T) {
	eng, net := testNet(t, 1, 3)
	// Two flows out of node 0 to two distinct same-site destinations share
	// the 100 MB/s NIC: each gets 50 MB/s.
	var t1, t2 sim.Time
	net.StartFlow(0, 2, 50e6, func() { t1 = eng.Now() })
	net.StartFlow(0, 4, 50e6, func() { t2 = eng.Now() })
	eng.Run()
	want := sim.Second + sim.Millisecond
	for _, got := range []sim.Time{t1, t2} {
		if diff := got - want; diff < -5*sim.Millisecond || diff > 5*sim.Millisecond {
			t.Fatalf("shared NIC flow finished at %v, want ~%v", got, want)
		}
	}
}

func TestRateIncreasesWhenCompetitorFinishes(t *testing.T) {
	eng, net := testNet(t, 1, 3)
	var tShort, tLong sim.Time
	net.StartFlow(0, 2, 25e6, func() { tShort = eng.Now() })
	net.StartFlow(0, 4, 75e6, func() { tLong = eng.Now() })
	eng.Run()
	// Short: 25 MB at 50 MB/s = 0.5 s. Long: 25 MB at 50 + 50 MB at full
	// 100 MB/s = 1.0 s.
	if diff := math.Abs(tShort.Seconds() - 0.501); diff > 0.01 {
		t.Fatalf("short flow at %v, want ~0.501s", tShort)
	}
	if diff := math.Abs(tLong.Seconds() - 1.001); diff > 0.01 {
		t.Fatalf("long flow at %v, want ~1.001s", tLong)
	}
}

func TestSiteUplinkSharing(t *testing.T) {
	eng, net := testNet(t, 1, 40)
	// 40 cross-site flows from distinct site-a nodes to distinct site-b
	// nodes: the 200 MB/s uplink shares to 5 MB/s each, below the 10 MB/s
	// per-flow cap.
	var finished []sim.Time
	for i := 0; i < 40; i++ {
		src := NodeID(2 * i)   // site a
		dst := NodeID(2*i + 1) // site b
		net.StartFlow(src, dst, 5e6, func() { finished = append(finished, eng.Now()) })
	}
	eng.Run()
	if len(finished) != 40 {
		t.Fatalf("finished %d flows, want 40", len(finished))
	}
	want := sim.Second + 40*sim.Millisecond
	for _, got := range finished {
		if diff := got - want; diff < -10*sim.Millisecond || diff > 10*sim.Millisecond {
			t.Fatalf("uplink-shared flow finished at %v, want ~%v", got, want)
		}
	}
}

func TestDiskIOSharing(t *testing.T) {
	eng, net := testNet(t, 1, 1)
	var t1, t2 sim.Time
	net.StartDiskIO(0, 25e6, func() { t1 = eng.Now() })
	net.StartDiskIO(0, 25e6, func() { t2 = eng.Now() })
	eng.Run()
	// 50 MB/s disk shared two ways: 25 MB at 25 MB/s = 1 s each.
	for _, got := range []sim.Time{t1, t2} {
		if math.Abs(got.Seconds()-1.0) > 0.01 {
			t.Fatalf("disk IO finished at %v, want ~1s", got)
		}
	}
}

func TestZeroByteFlow(t *testing.T) {
	eng, net := testNet(t, 1, 2)
	done := false
	net.StartFlow(0, 1, 0, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("zero-byte flow never completed")
	}
}

func TestCancelSuppressesDone(t *testing.T) {
	eng, net := testNet(t, 1, 2)
	done := false
	f := net.StartFlow(0, 2, 100e6, func() { done = true })
	eng.After(100*sim.Millisecond, func() { f.Cancel() })
	eng.Run()
	if done {
		t.Fatal("canceled flow invoked done")
	}
	if net.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after cancel, want 0", net.ActiveFlows())
	}
	if net.Stats().FlowsCanceled != 1 {
		t.Fatalf("FlowsCanceled = %d, want 1", net.Stats().FlowsCanceled)
	}
}

func TestCancelReleasesBandwidth(t *testing.T) {
	eng, net := testNet(t, 1, 3)
	var tKeep sim.Time
	f := net.StartFlow(0, 2, 1000e6, nil)
	net.StartFlow(0, 4, 75e6, func() { tKeep = eng.Now() })
	eng.After(500*sim.Millisecond, func() { f.Cancel() })
	eng.Run()
	// Survivor: ~25 MB in the first 0.5 s at 50 MB/s, then 50 MB at
	// 100 MB/s = 1.0 s total.
	if math.Abs(tKeep.Seconds()-1.001) > 0.02 {
		t.Fatalf("survivor finished at %v, want ~1.0s", tKeep)
	}
}

func TestRemainingSettles(t *testing.T) {
	eng, net := testNet(t, 1, 2)
	f := net.StartFlow(0, 2, 100e6, nil)
	var mid float64
	eng.After(501*sim.Millisecond, func() { mid = f.Remaining() })
	eng.Run()
	// After 0.5 s at 100 MB/s (minus 1 ms latency), ~50 MB remain.
	if math.Abs(mid-50e6) > 2e6 {
		t.Fatalf("Remaining at midpoint = %.0f, want ~50e6", mid)
	}
	if f.Remaining() != 0 {
		t.Fatalf("Remaining after completion = %.0f, want 0", f.Remaining())
	}
}

func TestStatsCounters(t *testing.T) {
	eng, net := testNet(t, 1, 2)
	net.StartFlow(0, 2, 10e6, nil) // LAN
	net.StartFlow(0, 1, 10e6, nil) // WAN
	net.StartDiskIO(0, 5e6, nil)
	eng.Run()
	st := net.Stats()
	if st.BytesTotal != 20e6 {
		t.Fatalf("BytesTotal = %.0f, want 20e6", st.BytesTotal)
	}
	if st.BytesCrossSite != 10e6 {
		t.Fatalf("BytesCrossSite = %.0f, want 10e6", st.BytesCrossSite)
	}
	if st.BytesDisk != 5e6 {
		t.Fatalf("BytesDisk = %.0f, want 5e6", st.BytesDisk)
	}
	if st.FlowsStarted != 2 {
		t.Fatalf("FlowsStarted = %d, want 2", st.FlowsStarted)
	}
}

func TestLocalFlowPanics(t *testing.T) {
	_, net := testNet(t, 1, 2)
	defer func() {
		if recover() == nil {
			t.Error("StartFlow(src==dst) did not panic")
		}
	}()
	net.StartFlow(0, 0, 1e6, nil)
}

func TestAddNodeUnknownSitePanics(t *testing.T) {
	eng := sim.New(1)
	net := New(eng, Config{})
	defer func() {
		if recover() == nil {
			t.Error("AddNode with bad site did not panic")
		}
	}()
	net.AddNode(SiteID(3), "x")
}

func TestAccessors(t *testing.T) {
	_, net := testNet(t, 1, 1)
	if net.NumNodes() != 2 || net.NumSites() != 2 {
		t.Fatalf("NumNodes=%d NumSites=%d", net.NumNodes(), net.NumSites())
	}
	if net.SiteName(net.SiteOf(0)) != "a.edu" {
		t.Fatalf("SiteName = %q", net.SiteName(net.SiteOf(0)))
	}
	if net.Hostname(0) != "n.a.edu" {
		t.Fatalf("Hostname = %q", net.Hostname(0))
	}
}

// Property: total bytes delivered equals total bytes requested for any set
// of concurrent LAN flows (flow conservation), and all flows complete.
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.New(1)
		net := New(eng, Config{NodeBps: 10e6, LANLatency: sim.Millisecond})
		s := net.AddSite("s.edu", 1e9, 1e9)
		a := net.AddNode(s, "a.s.edu")
		b := net.AddNode(s, "b.s.edu")
		completed := 0
		var want float64
		for _, sz := range sizes {
			bytes := float64(sz) * 1000
			want += bytes
			net.StartFlow(a, b, bytes, func() { completed++ })
		}
		eng.Run()
		if completed != len(sizes) {
			return false
		}
		return math.Abs(net.Stats().BytesTotal-want) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: n equal flows through one NIC finish together at n times the
// single-flow duration (equal sharing).
func TestEqualShareProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%8 + 1
		eng := sim.New(1)
		net := New(eng, Config{NodeBps: 10e6, LANLatency: sim.Millisecond})
		s := net.AddSite("s.edu", 1e9, 1e9)
		src := net.AddNode(s, "src.s.edu")
		var times []sim.Time
		for i := 0; i < n; i++ {
			dst := net.AddNode(s, "dst.s.edu")
			net.StartFlow(src, dst, 10e6, func() { times = append(times, eng.Now()) })
		}
		eng.Run()
		want := sim.Seconds(float64(n)) + sim.Millisecond
		for _, got := range times {
			if got < want-10*sim.Millisecond || got > want+10*sim.Millisecond {
				return false
			}
		}
		return len(times) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
