package netmodel

import (
	"math"
	"math/rand"
	"testing"

	"hog/internal/sim"
)

// opKind is one step of a randomized flow schedule.
type opKind int

const (
	opLAN opKind = iota
	opWAN
	opDisk
	opZero
	opCancel
)

type schedOp struct {
	kind     opKind
	at       sim.Time
	src, dst NodeID
	bytes    float64
	cancelAt sim.Time // opCancel: when to cancel the flow this op started
}

// randomSchedule builds a reproducible mixed workload over a 3-site network:
// LAN and WAN transfers, disk I/O, zero-byte flows, and mid-flight cancels.
func randomSchedule(r *rand.Rand, nOps, nodesPerSite int) []schedOp {
	n := 3 * nodesPerSite
	ops := make([]schedOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		op := schedOp{
			kind:  opKind(r.Intn(5)),
			at:    sim.Time(r.Int63n(int64(2 * sim.Second))),
			bytes: float64(1+r.Intn(40)) * 1e6,
		}
		op.src = NodeID(r.Intn(n))
		op.dst = NodeID(r.Intn(n))
		if op.dst == op.src {
			op.dst = NodeID((int(op.dst) + 1) % n)
		}
		if op.kind == opZero {
			op.bytes = 0
		}
		if op.kind == opCancel {
			op.cancelAt = op.at + sim.Time(r.Int63n(int64(sim.Second)))
		}
		ops = append(ops, op)
	}
	return ops
}

// runSchedule executes ops on a fresh network and returns per-op completion
// times (-1 when the op never completed) plus final stats.
func runSchedule(ops []schedOp, nodesPerSite int, global bool) ([]sim.Time, Stats) {
	eng := sim.New(1)
	net := New(eng, Config{
		NodeBps:         100e6,
		DiskBps:         50e6,
		WANFlowBps:      10e6,
		LANLatency:      sim.Millisecond,
		WANLatency:      40 * sim.Millisecond,
		GlobalRebalance: global,
	})
	for s := 0; s < 3; s++ {
		site := net.AddSite("s", 200e6, 200e6)
		for i := 0; i < nodesPerSite; i++ {
			net.AddNode(site, "n")
		}
	}
	done := make([]sim.Time, len(ops))
	for i := range done {
		done[i] = -1
	}
	for i, op := range ops {
		i, op := i, op
		eng.Schedule(op.at, func() {
			record := func() { done[i] = eng.Now() }
			var f *Flow
			switch op.kind {
			case opDisk:
				f = net.StartDiskIO(op.src, op.bytes, record)
			default:
				src, dst := op.src, op.dst
				if op.kind == opLAN {
					dst = NodeID((int(src)/nodesPerSite)*nodesPerSite + int(dst)%nodesPerSite)
					if dst == src {
						dst = NodeID((int(src)/nodesPerSite)*nodesPerSite + (int(src)+1)%nodesPerSite)
					}
				}
				f = net.StartFlow(src, dst, op.bytes, record)
			}
			if op.kind == opCancel {
				eng.Schedule(op.cancelAt, f.Cancel)
			}
		})
	}
	eng.Run()
	return done, net.Stats()
}

// TestRebalancerEquivalence asserts that the incremental link-scoped
// rebalancer and the global rebalance-everything baseline produce identical
// flow completion times and Stats on randomized schedules. Identical means
// bit-identical: both paths settle flows at exactly the rate-change
// instants, so no float drift is tolerated.
func TestRebalancerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		ops := randomSchedule(r, 200, 5)
		incDone, incStats := runSchedule(ops, 5, false)
		gloDone, gloStats := runSchedule(ops, 5, true)
		for i := range ops {
			if incDone[i] != gloDone[i] {
				t.Fatalf("seed %d op %d (kind %d): incremental done at %v, global at %v",
					seed, i, ops[i].kind, incDone[i], gloDone[i])
			}
		}
		if incStats != gloStats {
			t.Fatalf("seed %d: stats diverge: incremental %+v global %+v", seed, incStats, gloStats)
		}
	}
}

// TestRebalancerDeterminism: the same schedule twice through the incremental
// path must agree with itself exactly (stable iteration order, no map order).
func TestRebalancerDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ops := randomSchedule(r, 300, 6)
	d1, s1 := runSchedule(ops, 6, false)
	d2, s2 := runSchedule(ops, 6, false)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("op %d completed at %v then %v across identical runs", i, d1[i], d2[i])
		}
	}
	if s1 != s2 {
		t.Fatalf("stats diverge across identical runs: %+v vs %+v", s1, s2)
	}
}

// TestBatchNeutral: starting a wave of same-instant disk I/Os inside Batch
// must complete them at the same times as starting them unbatched.
func TestBatchNeutral(t *testing.T) {
	run := func(batch bool) []sim.Time {
		eng := sim.New(1)
		net := New(eng, Config{DiskBps: 50e6, LANLatency: sim.Millisecond})
		s := net.AddSite("s", 1e9, 1e9)
		node := net.AddNode(s, "n")
		var times []sim.Time
		start := func() {
			for i := 0; i < 8; i++ {
				bytes := float64(5+i) * 1e6
				net.StartDiskIO(node, bytes, func() { times = append(times, eng.Now()) })
			}
		}
		if batch {
			net.Batch(start)
		} else {
			start()
		}
		eng.Run()
		return times
	}
	plain, batched := run(false), run(true)
	if len(plain) != 8 || len(batched) != 8 {
		t.Fatalf("completions: plain %d batched %d, want 8", len(plain), len(batched))
	}
	for i := range plain {
		if plain[i] != batched[i] {
			t.Fatalf("completion %d: plain %v batched %v", i, plain[i], batched[i])
		}
	}
}

// TestZeroByteFlowCancelable: the seed marked zero-byte flows finished at
// admit time, so Cancel was a no-op and done still fired after the latency.
func TestZeroByteFlowCancelable(t *testing.T) {
	eng := sim.New(1)
	net := New(eng, Config{NodeBps: 100e6, LANLatency: sim.Millisecond})
	s := net.AddSite("s", 1e9, 1e9)
	a, b := net.AddNode(s, "a"), net.AddNode(s, "b")
	done := false
	f := net.StartFlow(a, b, 0, func() { done = true })
	f.Cancel()
	eng.Run()
	if done {
		t.Fatal("canceled zero-byte flow still invoked done")
	}
	if got := net.Stats().FlowsCanceled; got != 1 {
		t.Fatalf("FlowsCanceled = %d, want 1", got)
	}
}

// TestPreJoinCancel: canceling during the propagation latency, before the
// flow joins its links, must suppress done and leave no active flows.
func TestPreJoinCancel(t *testing.T) {
	eng := sim.New(1)
	net := New(eng, Config{NodeBps: 100e6, LANLatency: 10 * sim.Millisecond})
	s := net.AddSite("s", 1e9, 1e9)
	a, b := net.AddNode(s, "a"), net.AddNode(s, "b")
	done := false
	f := net.StartFlow(a, b, 5e6, func() { done = true })
	eng.After(sim.Millisecond, f.Cancel) // before the 10 ms latency elapses
	eng.Run()
	if done {
		t.Fatal("pre-join canceled flow invoked done")
	}
	if net.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d, want 0", net.ActiveFlows())
	}
}

// TestConservationAcrossModes: byte conservation holds in both modes for a
// heavier contended mix (sanity beyond the bit-equality tests).
func TestConservationAcrossModes(t *testing.T) {
	for _, global := range []bool{false, true} {
		r := rand.New(rand.NewSource(7))
		ops := randomSchedule(r, 150, 4)
		var want float64
		for _, op := range ops {
			if op.kind != opDisk {
				want += op.bytes // offered network load (cancel ops may or may not deliver)
			}
		}
		done, stats := runSchedule(ops, 4, global)
		_ = done
		total := stats.BytesTotal
		// Canceled flows do not deliver their bytes; just require the total
		// not to exceed the offered network load and to be positive.
		if total <= 0 || total > want+1 {
			t.Fatalf("global=%v: BytesTotal %.0f outside (0, %.0f]", global, total, want)
		}
		if math.IsNaN(total) {
			t.Fatalf("global=%v: BytesTotal is NaN", global)
		}
	}
}
