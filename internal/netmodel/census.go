package netmodel

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Census is a deterministic digest of network state, recorded in snapshots
// and re-checked after a deterministic replay. FlowSeq is the total number
// of flows ever created — a strict event-order signature: two runs that
// started the same flows in the same order agree on it, and almost nothing
// else does.
type Census struct {
	Sites       int    `json:"sites"`
	Nodes       int    `json:"nodes"`
	ActiveFlows int    `json:"active_flows"`
	FlowSeq     uint64 `json:"flow_seq"`
	Stats       Stats  `json:"stats"`
	// Partitions and DegradedDisks cover the fault-injection state installed
	// mid-run (partition.go); both are zero — and omitted — fault-free, so
	// documents from fault-free runs are byte-identical to pre-fault builds.
	Partitions    int    `json:"partitions,omitempty"`
	DegradedDisks int    `json:"degraded_disks,omitempty"`
	Hash          uint64 `json:"hash"`
}

// Census digests the network's current state. The hash folds in every
// site's WAN bandwidth (so mid-run DegradeNetwork state is covered) and the
// byte counters.
func (n *Network) Census() Census {
	c := Census{
		Sites:         len(n.sites),
		Nodes:         len(n.nodes),
		ActiveFlows:   n.nActive,
		FlowSeq:       n.flowSeq,
		Stats:         n.stats,
		Partitions:    n.nParted,
		DegradedDisks: len(n.diskFactors),
	}
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, s := range n.sites {
		put(math.Float64bits(s.up.capacity))
		put(math.Float64bits(s.down.capacity))
	}
	put(c.FlowSeq)
	put(uint64(c.ActiveFlows))
	put(math.Float64bits(n.stats.BytesTotal))
	put(math.Float64bits(n.stats.BytesCrossSite))
	put(math.Float64bits(n.stats.BytesDisk))
	put(uint64(n.stats.FlowsStarted))
	put(uint64(n.stats.FlowsCanceled))
	// Fault-injection state folds in only when present, so fault-free hashes
	// match builds that predate partitions and gray disks.
	if n.nParted > 0 {
		put(uint64(n.nParted))
		for i := range n.sites {
			in, out := n.SitePartition(SiteID(i))
			if in || out {
				put(uint64(i))
				put(cutBits(in, out))
			}
		}
		for i := range n.nodes {
			in, out := n.NodePartition(NodeID(i))
			if in || out {
				put(uint64(i))
				put(cutBits(in, out))
			}
		}
	}
	if len(n.diskFactors) > 0 {
		put(uint64(len(n.diskFactors)))
		for i := range n.nodes {
			if f, ok := n.diskFactors[i]; ok {
				put(uint64(i))
				put(math.Float64bits(f))
			}
		}
	}
	c.Hash = h.Sum64()
	return c
}

func cutBits(in, out bool) uint64 {
	var v uint64
	if in {
		v |= 1
	}
	if out {
		v |= 2
	}
	return v
}
