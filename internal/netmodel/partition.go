package netmodel

// Network partitions and gray degradation (docs/FAULTS.md). A partition is a
// directed cut between a site (or a single node) and the rest of the fabric:
// the higher layers — heartbeat driver, shuffle fetch, replication pump,
// write pipeline — consult Reachable before opening a connection, so a full
// cut silences a node exactly the way a crash does (the masters' dead
// timeouts fire), while an asymmetric cut lets heartbeats through and fails
// only the data paths, producing the gray "alive but useless" behaviour the
// paper's dead-timeout tuning cannot see.
//
// The partition state is a pure reachability oracle: it does not touch
// in-flight flows, so installing or healing a cut costs O(1) and the
// fault-free fast path (no partitions anywhere) is a single counter check on
// every Reachable call.

// PartitionSite installs a directed cut between the site and every other
// site. cutIn drops traffic into the site, cutOut drops traffic out of it;
// both true is a full partition. Intra-site traffic is never affected — nodes
// behind a site cut still reach each other. Calling again replaces the cut
// directions.
func (n *Network) PartitionSite(site SiteID, cutIn, cutOut bool) {
	n.ensurePartMaps()
	n.setCut(n.partInSite, int(site), cutIn)
	n.setCut(n.partOutSite, int(site), cutOut)
}

// HealSite removes both directions of a site cut. Healing an unpartitioned
// site is a no-op.
func (n *Network) HealSite(site SiteID) { n.PartitionSite(site, false, false) }

// PartitionNode installs a directed cut between one node and every other
// node, including its own site's. cutIn drops traffic to the node, cutOut
// drops traffic from it.
func (n *Network) PartitionNode(id NodeID, cutIn, cutOut bool) {
	n.ensurePartMaps()
	n.setCut(n.partInNode, int(id), cutIn)
	n.setCut(n.partOutNode, int(id), cutOut)
}

// HealNode removes both directions of a node cut.
func (n *Network) HealNode(id NodeID) { n.PartitionNode(id, false, false) }

func (n *Network) ensurePartMaps() {
	if n.partInSite == nil {
		n.partInSite = make(map[int]struct{})
		n.partOutSite = make(map[int]struct{})
		n.partInNode = make(map[int]struct{})
		n.partOutNode = make(map[int]struct{})
	}
}

func (n *Network) setCut(m map[int]struct{}, key int, cut bool) {
	_, have := m[key]
	switch {
	case cut && !have:
		m[key] = struct{}{}
		n.nParted++
	case !cut && have:
		delete(m, key)
		n.nParted--
	}
}

// Reachable reports whether src can open a connection to dst under the
// current partition state. A node always reaches itself. With no partitions
// installed anywhere this is a single counter check.
func (n *Network) Reachable(src, dst NodeID) bool {
	if n.nParted == 0 || src == dst {
		return true
	}
	if _, cut := n.partOutNode[int(src)]; cut {
		return false
	}
	if _, cut := n.partInNode[int(dst)]; cut {
		return false
	}
	ss, ds := n.nodes[src].site, n.nodes[dst].site
	if ss == ds {
		return true
	}
	if _, cut := n.partOutSite[int(ss)]; cut {
		return false
	}
	if _, cut := n.partInSite[int(ds)]; cut {
		return false
	}
	return true
}

// MasterReachable reports whether a node's heartbeats reach the stable
// central masters, which live outside every site. Only the node's outbound
// direction matters: under an inbound-only cut the masters keep hearing the
// node (and believe it healthy) while every data transfer toward it fails —
// the asymmetric-partition gray zone.
func (n *Network) MasterReachable(id NodeID) bool {
	if n.nParted == 0 {
		return true
	}
	if _, cut := n.partOutNode[int(id)]; cut {
		return false
	}
	_, cut := n.partOutSite[int(n.nodes[id].site)]
	return !cut
}

// AnyPartition reports whether any directed cut is installed.
func (n *Network) AnyPartition() bool { return n.nParted > 0 }

// SitePartition returns the site's current cut directions.
func (n *Network) SitePartition(site SiteID) (cutIn, cutOut bool) {
	if n.nParted == 0 {
		return false, false
	}
	_, cutIn = n.partInSite[int(site)]
	_, cutOut = n.partOutSite[int(site)]
	return
}

// NodePartition returns the node's current cut directions.
func (n *Network) NodePartition(id NodeID) (cutIn, cutOut bool) {
	if n.nParted == 0 {
		return false, false
	}
	_, cutIn = n.partInNode[int(id)]
	_, cutOut = n.partOutNode[int(id)]
	return
}

// SetNodeDiskFactor derates one node's disk to 1/factor of its configured
// bandwidth (factor 4 = a disk running at quarter speed — the gray slow-disk
// failure). factor 1 restores nominal speed. Active I/O on the node is
// settled at its old rate and re-timed at the new share, exactly as a
// population change would be.
func (n *Network) SetNodeDiskFactor(id NodeID, factor float64) {
	if factor <= 0 {
		panic("netmodel: non-positive disk degradation factor")
	}
	if n.diskFactors == nil {
		n.diskFactors = make(map[int]float64)
	}
	if factor == 1 {
		delete(n.diskFactors, int(id))
	} else {
		n.diskFactors[int(id)] = factor
	}
	d := &n.nodes[id].disk
	n.markDirty(d)
	d.capacity = n.cfg.DiskBps / factor
	d.reshare()
	n.rebalance()
}

// NodeDiskFactor returns the node's current disk derating (1 = nominal).
func (n *Network) NodeDiskFactor(id NodeID) float64 {
	if f, ok := n.diskFactors[int(id)]; ok {
		return f
	}
	return 1
}

// DegradedDisks returns the number of nodes with a non-nominal disk factor.
func (n *Network) DegradedDisks() int { return len(n.diskFactors) }
