package hog

import (
	"strings"
	"testing"
)

// TestPolicyOptionsDefaults: a system built with no policy options must come
// up on the default policy at every decision point — the nil-policy contract
// that keeps existing callers byte-identical.
func TestPolicyOptionsDefaults(t *testing.T) {
	sys, err := New(WithHOGPool(15, ChurnNone), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.JT.SchedulerPolicyName(); got != "fifo" {
		t.Errorf("default scheduler policy %q, want fifo", got)
	}
	if got := sys.JT.SpeculationPolicyName(); got != "threshold" {
		t.Errorf("default speculation policy %q, want threshold", got)
	}
	if got := sys.NN.PlacementPolicyName(); got != "grid" {
		t.Errorf("default placement policy %q, want grid", got)
	}
	if got := sys.NN.ReplicationOrderName(); got != "fifo" {
		t.Errorf("default replication order %q, want fifo", got)
	}
}

// TestPolicyOptionsSelect: each With*Policy option must reach its subsystem.
func TestPolicyOptionsSelect(t *testing.T) {
	sys, err := New(
		WithHOGPool(15, ChurnNone),
		WithSeed(1),
		WithSchedulerPolicy("fair"),
		WithSpeculationPolicy("site-load"),
		WithPlacementPolicy("random"),
		WithReplicationOrder("rarest"),
		WithPools(map[string]FairPoolConfig{"prod": {Weight: 3}, "batch": {Weight: 1, MaxRunning: 8}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.JT.SchedulerPolicyName(); got != "fair" {
		t.Errorf("scheduler policy %q, want fair", got)
	}
	if got := sys.JT.SpeculationPolicyName(); got != "site-load" {
		t.Errorf("speculation policy %q, want site-load", got)
	}
	if got := sys.NN.PlacementPolicyName(); got != "random" {
		t.Errorf("placement policy %q, want random", got)
	}
	if got := sys.NN.ReplicationOrderName(); got != "rarest" {
		t.Errorf("replication order %q, want rarest", got)
	}
}

// TestPolicyOptionsValidation: unknown names and bad pool parameters must be
// rejected at New, before any simulation runs.
func TestPolicyOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
		want string
	}{
		{"scheduler", WithSchedulerPolicy("lottery"), `unknown scheduler policy "lottery"`},
		{"speculation", WithSpeculationPolicy("psychic"), `unknown speculation policy "psychic"`},
		{"placement", WithPlacementPolicy("antigravity"), `unknown placement policy "antigravity"`},
		{"replication", WithReplicationOrder("loudest"), `unknown replication order "loudest"`},
		{"pool weight", WithPools(map[string]FairPoolConfig{"p": {Weight: -1}}), "negative weight"},
	}
	for _, tc := range cases {
		_, err := New(WithHOGPool(15, ChurnNone), WithSeed(1), tc.opt)
		if err == nil {
			t.Errorf("%s: New accepted an invalid policy option", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestPolicyNameListings pins the facade name listings hogbench -list prints.
func TestPolicyNameListings(t *testing.T) {
	if got := strings.Join(SchedulerPolicyNames(), ","); got != "fair,fifo" {
		t.Errorf("scheduler names %q", got)
	}
	if got := strings.Join(SpeculationPolicyNames(), ","); got != "site-load,threshold" {
		t.Errorf("speculation names %q", got)
	}
	if got := strings.Join(PlacementPolicyNames(), ","); got != "grid,random" {
		t.Errorf("placement names %q", got)
	}
	if got := strings.Join(ReplicationOrderNames(), ","); got != "fifo,rarest" {
		t.Errorf("replication order names %q", got)
	}
}
