package hog

import (
	"errors"
	"fmt"

	"hog/internal/core"
	"hog/internal/event"
	"hog/internal/grid"
	"hog/internal/hdfs"
	"hog/internal/mapred"
	"hog/internal/netmodel"
)

// Subsystem configuration types, for use with the WithHDFS/WithMapRed/
// WithNet options.
type (
	// HDFSConfig holds namenode parameters (replication, dead timeout,
	// site-aware placement).
	HDFSConfig = hdfs.Config
	// MapRedConfig holds JobTracker parameters (heartbeats, speculation,
	// delay scheduling).
	MapRedConfig = mapred.Config
	// NetConfig holds the fluid network model's physical constants.
	NetConfig = netmodel.Config
	// PoolConfig holds glide-in pool parameters (provisioning delay, slots,
	// scratch disk).
	PoolConfig = grid.PoolConfig
)

// builder accumulates the effect of Options before the system is built.
// Worker-supply options apply immediately (establishing the base Config);
// refinement options defer until every supply option has run, so a
// refinement is never silently clobbered by a later supply preset.
type builder struct {
	cfg       Config
	supply    bool // a worker-supply option was applied
	deferred  []func(*builder)
	observers []event.Observer
	scenarios []*Scenario
	errs      []error
}

// Option configures a System under construction by New.
type Option func(*builder)

// New builds a simulated system from functional options and returns a
// descriptive error — never a panic — when the configuration is invalid.
// Exactly one worker-supply option is required: WithHOGPool, WithLargeGrid,
// WithMegaGrid, WithGigaGrid, WithDedicatedCluster, WithStaticGroups, or
// WithConfig. The supply option
// establishes the base configuration; every other option refines it, in the
// order written, regardless of where the supply option appears:
//
//	sys, err := hog.New(
//		hog.WithHOGPool(60, hog.ChurnNone),
//		hog.WithSeed(11),
//		hog.WithHDFS(func(c *hog.HDFSConfig) { c.Replication = 2 }),
//		hog.WithScenario(hog.NewScenario("outage").
//			SiteOutageAt(hog.Minutes(5), "FNAL_FERMIGRID", 1.0)),
//	)
//
// The legacy NewSystem(Config) facade remains for existing callers; it runs
// the same validator but panics on invalid input.
func New(opts ...Option) (*System, error) {
	b := &builder{}
	for _, o := range opts {
		o(b)
	}
	if !b.supply {
		return nil, errors.New("hog: no worker supply configured; use WithHOGPool, WithLargeGrid, WithMegaGrid, WithGigaGrid, WithDedicatedCluster, WithStaticGroups, or WithConfig")
	}
	for _, f := range b.deferred {
		f(b)
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	sys, err := core.NewSystem(b.cfg, b.observers...)
	if err != nil {
		return nil, err
	}
	for _, sc := range b.scenarios {
		if err := sys.Apply(sc); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// errf records a construction error; New reports them joined.
func (b *builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("hog: "+format, args...))
}

// later registers a refinement to run after the supply options.
func (b *builder) later(f func(*builder)) { b.deferred = append(b.deferred, f) }

// WithConfig starts from a complete Config (the migration path from the
// NewSystem facade: any config that worked there works here, with errors
// instead of panics). Later options refine it.
func WithConfig(cfg Config) Option {
	return func(b *builder) {
		b.cfg = cfg
		b.supply = true
	}
}

// WithHOGPool selects the paper's HOG setup — an elastic glide-in pool over
// the five OSG sites with replication 10, site awareness, and 30-second dead
// timeouts — at the given target size and churn profile.
func WithHOGPool(targetNodes int, churn ChurnProfile) Option {
	return func(b *builder) {
		if targetNodes <= 0 {
			b.errf("WithHOGPool: non-positive target %d", targetNodes)
			return
		}
		b.cfg = core.HOGConfig(targetNodes, churn, b.cfg.Seed)
		b.supply = true
	}
}

// WithLargeGrid selects the twelve-site LargeGridSites preset for scale-out
// runs around 1000 nodes.
func WithLargeGrid(targetNodes int, churn ChurnProfile) Option {
	return func(b *builder) {
		if targetNodes <= 0 {
			b.errf("WithLargeGrid: non-positive target %d", targetNodes)
			return
		}
		b.cfg = core.LargeGridConfig(targetNodes, churn, b.cfg.Seed)
		b.supply = true
	}
}

// WithMegaGrid selects the forty-site MegaGridSites preset for runs around
// 10,000 nodes — the MEGA-GRID scale point (see docs/HARNESS.md).
func WithMegaGrid(targetNodes int, churn ChurnProfile) Option {
	return func(b *builder) {
		if targetNodes <= 0 {
			b.errf("WithMegaGrid: non-positive target %d", targetNodes)
			return
		}
		b.cfg = core.MegaGridConfig(targetNodes, churn, b.cfg.Seed)
		b.supply = true
	}
}

// WithGigaGrid selects the ~104-site GigaGridSites preset for runs around
// 100,000 nodes — the GIGA-GRID scale point built for the site-sharded
// parallel engine (see docs/PERF.md and docs/HARNESS.md).
func WithGigaGrid(targetNodes int, churn ChurnProfile) Option {
	return func(b *builder) {
		if targetNodes <= 0 {
			b.errf("WithGigaGrid: non-positive target %d", targetNodes)
			return
		}
		b.cfg = core.GigaGridConfig(targetNodes, churn, b.cfg.Seed)
		b.supply = true
	}
}

// WithDedicatedCluster selects the paper's Table III comparison cluster
// (30 nodes, 100 map and 30 reduce slots, one rack, stock Hadoop settings).
func WithDedicatedCluster() Option {
	return func(b *builder) {
		b.cfg = core.DedicatedClusterConfig(b.cfg.Seed)
		b.supply = true
	}
}

// WithStaticGroups configures a custom dedicated cluster from homogeneous
// node groups instead of a preset.
func WithStaticGroups(groups ...StaticGroup) Option {
	return func(b *builder) {
		if len(groups) == 0 {
			b.errf("WithStaticGroups: no groups")
			return
		}
		b.cfg.Grid = nil
		b.cfg.Static = append([]StaticGroup(nil), groups...)
		if b.cfg.Net == (NetConfig{}) {
			b.cfg.Net = netmodel.DefaultConfig()
		}
		if b.cfg.HDFS == (HDFSConfig{}) {
			b.cfg.HDFS = hdfs.DefaultConfig()
		}
		if b.cfg.MapRed.IsZero() {
			b.cfg.MapRed = mapred.DefaultConfig()
		}
		b.supply = true
	}
}

// WithSeed sets the simulation seed. Same seed, same options: identical run,
// identical event stream.
func WithSeed(seed int64) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.Seed = seed }) }
}

// WithSites replaces a grid supply's site list (custom topologies, custom
// churn distributions). It requires a grid supply option.
func WithSites(sites ...SiteConfig) Option {
	return func(b *builder) {
		b.later(func(b *builder) {
			if b.cfg.Grid == nil {
				b.errf("WithSites requires a grid supply (WithHOGPool, WithLargeGrid, WithMegaGrid, or WithGigaGrid)")
				return
			}
			if len(sites) == 0 {
				b.errf("WithSites: no sites")
				return
			}
			b.cfg.Grid.Sites = append([]SiteConfig(nil), sites...)
		})
	}
}

// WithPool overrides glide-in pool parameters (provisioning delay, slots per
// worker, scratch disk). It requires a grid supply option.
func WithPool(mut func(*PoolConfig)) Option {
	return func(b *builder) {
		b.later(func(b *builder) {
			if b.cfg.Grid == nil {
				b.errf("WithPool requires a grid supply (WithHOGPool, WithLargeGrid, WithMegaGrid, or WithGigaGrid)")
				return
			}
			mut(&b.cfg.Grid.Pool)
		})
	}
}

// WithHeapScheduler runs the simulation on the retained binary-heap event
// queue instead of the default site-sharded engine. The engines fire events
// in exactly the same order — every run is bit-identical either way — so
// this option only matters for equivalence testing and benchmarking the
// engines against each other.
func WithHeapScheduler() Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.HeapScheduler = true }) }
}

// WithSequentialEngine runs the simulation on the single sequential timing
// wheel instead of the default site-sharded parallel engine. The sequential
// wheel is the oracle the sharded engine is pinned against: events fire in
// exactly the same order under both, so every run is bit-identical either
// way (hogbench -seq, CI cmp gate) and the option only matters for
// equivalence testing and for measuring the sharded engine's speedup.
func WithSequentialEngine() Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.SequentialEngine = true }) }
}

// WithZombies selects the preempted-daemon behaviour (§IV.D.1): ZombieFixed,
// ZombieUnfixed, or ZombieDiskCheck.
func WithZombies(mode ZombieMode) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.Zombie = mode }) }
}

// WithSchedulerPolicy selects the job-ordering policy by registry name
// ("fifo", "fair"). The empty string keeps the default ("fifo", the paper's
// choice); unknown names and invalid combinations (a non-default policy with
// the scan scheduler) are rejected at New time.
func WithSchedulerPolicy(name string) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.Policies.Scheduler = name }) }
}

// WithSpeculationPolicy selects the straggler criterion by registry name
// ("threshold", "site-load"). The empty string keeps the default
// ("threshold", the paper's slowdown rule).
func WithSpeculationPolicy(name string) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.Policies.Speculation = name }) }
}

// WithPlacementPolicy selects the block-placement policy by registry name
// ("grid", "random"). The empty string keeps the default ("grid", the
// paper's site-aware spread).
func WithPlacementPolicy(name string) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.Policies.Placement = name }) }
}

// WithReplicationOrder selects the block-recovery ordering by registry name
// ("fifo", "rarest"). The empty string keeps the default ("fifo", recovery
// in loss order).
func WithReplicationOrder(name string) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.Policies.Replication = name }) }
}

// WithPools configures fair-share pools for the "fair" scheduler policy.
// Jobs name their pool through JobConfig.Pool (defaulting to their workload
// bin); pools absent from the map get weight 1 and no running cap.
func WithPools(pools map[string]FairPoolConfig) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.MapRed.Pools = pools }) }
}

// WithHDFS overrides namenode parameters in place:
//
//	hog.WithHDFS(func(c *hog.HDFSConfig) { c.Replication = 2; c.SiteAware = false })
func WithHDFS(mut func(*HDFSConfig)) Option {
	return func(b *builder) { b.later(func(b *builder) { mut(&b.cfg.HDFS) }) }
}

// WithMapRed overrides JobTracker parameters in place.
func WithMapRed(mut func(*MapRedConfig)) Option {
	return func(b *builder) { b.later(func(b *builder) { mut(&b.cfg.MapRed) }) }
}

// WithNet overrides the network model's physical constants in place.
func WithNet(mut func(*NetConfig)) Option {
	return func(b *builder) { b.later(func(b *builder) { mut(&b.cfg.Net) }) }
}

// WithCosts replaces the benchmark-job cost model.
func WithCosts(costs JobCosts) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.Costs = costs }) }
}

// WithRunBound caps a workload run's simulated duration.
func WithRunBound(bound Time) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.RunBound = bound }) }
}

// WithSampleInterval sets the reported-alive sampling period (Figure 5).
func WithSampleInterval(interval Time) Option {
	return func(b *builder) { b.later(func(b *builder) { b.cfg.SampleInterval = interval }) }
}

// WithObserver subscribes an observer to the system's typed event stream
// before construction, so it sees every event from the first node join.
// Repeat for multiple observers; they are invoked in subscription order.
func WithObserver(o Observer) Option {
	return func(b *builder) {
		if o == nil {
			b.errf("WithObserver: nil observer")
			return
		}
		b.observers = append(b.observers, o)
	}
}

// WithEvents subscribes a fresh EventLog filtered to the given types (all
// types when empty) and returns it alongside the option — the one-line way
// to collect events:
//
//	log, opt := hog.WithEvents(hog.EvBlockLost, hog.EvReplicationDone)
//	sys, err := hog.New(hog.WithHOGPool(60, hog.ChurnNone), opt)
func WithEvents(types ...EventType) (*EventLog, Option) {
	log := NewEventLog(types...)
	return log, WithObserver(log)
}

// WithScenario installs a scripted scenario; it is validated against the
// built system (unknown sites, pool actions on static clusters, bad
// fractions all fail construction). Repeat for multiple scenarios.
func WithScenario(sc *Scenario) Option {
	return func(b *builder) {
		if sc == nil {
			b.errf("WithScenario: nil scenario")
			return
		}
		b.scenarios = append(b.scenarios, sc)
	}
}
