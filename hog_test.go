package hog

import (
	"strings"
	"testing"
)

func TestFacadeWordCount(t *testing.T) {
	out, err := RunJob(JobConfig{
		Name: "wc",
		Mapper: MapperFunc(func(_, line string, emit Emit) error {
			for _, w := range strings.Fields(line) {
				emit(w, "1")
			}
			return nil
		}),
		Reducer: ReducerFunc(func(k string, vs []string, emit Emit) error {
			emit(k, "seen")
			return nil
		}),
		NumReducers: 2,
	}, []string{"a b a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Lookup("a"); len(got) != 1 {
		t.Fatalf("Lookup(a) = %v", got)
	}
}

func TestFacadeSimulation(t *testing.T) {
	sched := GenerateWorkload(1, 0.05)
	sys := NewSystem(HOGConfig(15, ChurnNone, 1))
	res := sys.RunWorkload(sched)
	if res.JobsFailed != 0 || res.ResponseTime <= 0 {
		t.Fatalf("facade run failed: %d failed, resp %v", res.JobsFailed, res.ResponseTime)
	}
	if s := res.Summary(); s.N != len(res.JobResponses) {
		t.Fatalf("summary N = %d", s.N)
	}
}

func TestFacadeTables(t *testing.T) {
	if len(FacebookBins()) != 9 || len(TruncatedBins()) != 6 {
		t.Fatal("bin tables wrong size")
	}
	if Seconds(2) <= 0 {
		t.Fatal("Seconds broken")
	}
	if len(OSGSites(ChurnStable)) != 5 {
		t.Fatal("OSG sites wrong count")
	}
}

// TestEventStreamDeterminism is the event-stream contract: same seed and
// options give a byte-identical event sequence (asserted via the EventLog
// fingerprint) run after run, and attaching a second observer cannot perturb
// the stream — all under unstable churn with fault injection in play.
func TestEventStreamDeterminism(t *testing.T) {
	run := func(secondObserver bool) (uint64, Time) {
		log, collect := WithEvents()
		opts := []Option{
			WithHOGPool(40, ChurnUnstable),
			WithSeed(17),
			WithZombies(ZombieDiskCheck),
			collect,
			WithScenario(NewScenario("determinism drill").
				SiteOutageAt(Minutes(4), "FNAL_FERMIGRID", 0.8).
				RetargetWhenAliveBelow(30, 50)),
		}
		if secondObserver {
			opts = append(opts, WithObserver(ObserverFunc(func(Event) {})))
		}
		sys, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		res := sys.RunWorkload(GenerateWorkload(17, 0.1))
		if log.Len() == 0 {
			t.Fatal("no events collected")
		}
		return log.Fingerprint(), res.ResponseTime
	}
	f1, r1 := run(false)
	f2, r2 := run(false)
	f3, r3 := run(true)
	if f1 != f2 || r1 != r2 {
		t.Fatalf("same seed diverged across runs: %016x/%v vs %016x/%v", f1, r1, f2, r2)
	}
	if f1 != f3 || r1 != r3 {
		t.Fatalf("second observer perturbed the run: %016x/%v vs %016x/%v", f1, r1, f3, r3)
	}
}

func TestEventStreamSeedSensitivity(t *testing.T) {
	fp := func(seed int64) uint64 {
		log, collect := WithEvents(EvNodePreempted, EvTaskFinished)
		sys, err := New(WithHOGPool(25, ChurnUnstable), WithSeed(seed), collect)
		if err != nil {
			t.Fatal(err)
		}
		sys.RunWorkload(GenerateWorkload(seed, 0.05))
		return log.Fingerprint()
	}
	if fp(1) == fp(2) {
		t.Fatal("different seeds share an event fingerprint")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("New with no supply did not error")
	}
	if _, err := New(WithHOGPool(0, ChurnNone)); err == nil {
		t.Fatal("non-positive pool target did not error")
	}
	if _, err := New(WithSites()); err == nil {
		t.Fatal("WithSites before a grid supply did not error")
	}
	_, err := New(
		WithHOGPool(10, ChurnNone),
		WithScenario(NewScenario("bad").SiteOutageAt(Seconds(1), "NO_SUCH_SITE", 1.0)),
	)
	if err == nil || !strings.Contains(err.Error(), "NO_SUCH_SITE") {
		t.Fatalf("unknown scenario site error = %v", err)
	}
	// The happy path builds and honours overrides.
	sys, err := New(
		WithHOGPool(10, ChurnNone),
		WithSeed(3),
		WithHDFS(func(c *HDFSConfig) { c.Replication = 4 }),
		WithMapRed(func(c *MapRedConfig) { c.Speculative = false }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NN.Config().Replication; got != 4 {
		t.Fatalf("replication override lost: %d", got)
	}
	if sys.JT.Config().Speculative {
		t.Fatal("mapred override lost")
	}
}

// TestOptionOrderIndependence pins the builder contract: refinements apply
// after the supply option, so writing them first cannot silently lose them
// to the preset.
func TestOptionOrderIndependence(t *testing.T) {
	sys, err := New(
		WithZombies(ZombieDiskCheck),
		WithSeed(9),
		WithHDFS(func(c *HDFSConfig) { c.Replication = 5 }),
		WithHOGPool(10, ChurnNone), // supply last
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NN.Config().Replication; got != 5 {
		t.Fatalf("replication refinement clobbered by supply preset: %d", got)
	}
	res := sys.RunWorkload(GenerateWorkload(9, 0.05))
	fwd, err := New(
		WithHOGPool(10, ChurnNone),
		WithZombies(ZombieDiskCheck),
		WithSeed(9),
		WithHDFS(func(c *HDFSConfig) { c.Replication = 5 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	fres := fwd.RunWorkload(GenerateWorkload(9, 0.05))
	if res.ResponseTime != fres.ResponseTime {
		t.Fatalf("option order changed the run: %v vs %v", res.ResponseTime, fres.ResponseTime)
	}
}

func TestDurationHelpers(t *testing.T) {
	if Minutes(5) != 300*Seconds(1) || Hours(1) != Minutes(60) {
		t.Fatal("duration helpers inconsistent")
	}
}

// TestFacadeSnapshotRestoreFork exercises the snapshot surface end to end
// through the facade: a mid-run snapshot restores into a byte-identical
// continuation, a control fork matches the uninterrupted run, and a diverged
// branch refuses to be snapshotted again.
func TestFacadeSnapshotRestoreFork(t *testing.T) {
	sys, err := New(WithHOGPool(30, ChurnStable), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartWorkload(GenerateWorkload(5, 0.05)); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunTo(sys.RunStart() + Minutes(10)); err != nil {
		t.Fatal(err)
	}
	data, err := Snapshot(sys)
	if err != nil {
		t.Fatal(err)
	}
	straight := sys.FinishWorkload()

	restored, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	res := restored.FinishWorkload()
	if res.ResponseTime != straight.ResponseTime || res.JobsFailed != straight.JobsFailed ||
		len(res.JobResponses) != len(straight.JobResponses) {
		t.Fatalf("restored run diverged: %v/%d/%d vs %v/%d/%d",
			res.ResponseTime, res.JobsFailed, len(res.JobResponses),
			straight.ResponseTime, straight.JobsFailed, len(straight.JobResponses))
	}

	branches, err := Fork(data, []*Scenario{
		nil,
		NewScenario("fork outage").SiteOutageAt(Seconds(30), "UCSDT2", 1.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	control := branches[0].FinishWorkload()
	if control.ResponseTime != straight.ResponseTime {
		t.Fatalf("control branch diverged from the uninterrupted run: %v vs %v",
			control.ResponseTime, straight.ResponseTime)
	}
	branches[1].FinishWorkload()
	if _, err := Snapshot(branches[1]); err == nil {
		t.Fatal("snapshotting a diverged, finished branch should fail")
	}

	// Scenario specs round-trip through the facade too.
	spec, err := NewScenario("drill").SiteOutageAt(Minutes(1), "UCSDT2", 0.5).Spec()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioFromSpec(spec); err != nil {
		t.Fatal(err)
	}
	if SnapshotVersion < 1 {
		t.Fatalf("SnapshotVersion = %d", SnapshotVersion)
	}
}
