package hog

import (
	"strings"
	"testing"
)

func TestFacadeWordCount(t *testing.T) {
	out, err := RunJob(JobConfig{
		Name: "wc",
		Mapper: MapperFunc(func(_, line string, emit Emit) error {
			for _, w := range strings.Fields(line) {
				emit(w, "1")
			}
			return nil
		}),
		Reducer: ReducerFunc(func(k string, vs []string, emit Emit) error {
			emit(k, "seen")
			return nil
		}),
		NumReducers: 2,
	}, []string{"a b a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Lookup("a"); len(got) != 1 {
		t.Fatalf("Lookup(a) = %v", got)
	}
}

func TestFacadeSimulation(t *testing.T) {
	sched := GenerateWorkload(1, 0.05)
	sys := NewSystem(HOGConfig(15, ChurnNone, 1))
	res := sys.RunWorkload(sched)
	if res.JobsFailed != 0 || res.ResponseTime <= 0 {
		t.Fatalf("facade run failed: %d failed, resp %v", res.JobsFailed, res.ResponseTime)
	}
	if s := res.Summary(); s.N != len(res.JobResponses) {
		t.Fatalf("summary N = %d", s.N)
	}
}

func TestFacadeTables(t *testing.T) {
	if len(FacebookBins()) != 9 || len(TruncatedBins()) != 6 {
		t.Fatal("bin tables wrong size")
	}
	if Seconds(2) <= 0 {
		t.Fatal("Seconds broken")
	}
	if len(OSGSites(ChurnStable)) != 5 {
		t.Fatal("OSG sites wrong count")
	}
}
